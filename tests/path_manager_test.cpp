// Dynamic path management tests (mptcp/path_manager.h): mid-connection
// subflow churn at the Connection level (drain / abandon / add), the
// PathManager policies layered on top (timed handovers, stuck-drain
// escalation, backup promotion, cap-N growth), the scheduler bugs churn
// flushes out (ECF's armed-hysteresis identity, RoundRobin's cursor, DAPS's
// stale plan, redundant duplication onto draining subflows), and the
// snapshot/fork and jobs-parallelism byte-identity contracts for churned
// topologies.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/http.h"
#include "check/invariants.h"
#include "check/stress.h"
#include "core/ecf.h"
#include "exp/download.h"
#include "exp/scenario_run.h"
#include "exp/snapshot.h"
#include "exp/testbed.h"
#include "mptcp/path_manager.h"
#include "scenario/json.h"
#include "scenario/spec.h"
#include "scenario/world.h"
#include "sched/registry.h"
#include "test_util.h"

namespace mps {
namespace {

namespace fs = std::filesystem;

TimePoint at_s(double s) { return TimePoint::origin() + Duration::from_seconds(s); }

TestbedConfig hetero_config() {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(2.0));
  tb.lte = lte_profile(Rate::mbps(10.0));
  return tb;
}

PathManagerConfig::TimedAction add_action(double when_s, std::size_t path) {
  return {at_s(when_s), PathManagerConfig::TimedAction::Op::kAdd, path,
          Connection::TeardownMode::kDrain};
}

PathManagerConfig::TimedAction remove_action(double when_s, std::size_t path,
                                             Connection::TeardownMode mode) {
  return {at_s(when_s), PathManagerConfig::TimedAction::Op::kRemove, path, mode};
}

// --- Connection-level churn --------------------------------------------------

TEST(ConnectionChurn, DrainDeliversEverythingThenFinalizes) {
  Testbed bed(hetero_config());
  auto conn = bed.make_connection(scheduler_factory("default"));
  BulkSender sender(*conn, 400'000);

  bed.sim().run_until(at_s(0.2));
  ASSERT_NE(conn->subflow_at(0), nullptr);
  conn->remove_subflow(0, Connection::TeardownMode::kDrain);
  EXPECT_TRUE(conn->subflow_at(0)->draining());
  EXPECT_FALSE(conn->subflow_at(0)->schedulable());

  // Drive to completion, finalizing from outside the packet stacks like the
  // PathManager tick does.
  while (conn->delivered_bytes() < 400'000 && bed.sim().now() < at_s(120)) {
    bed.sim().run_until(bed.sim().now() + Duration::millis(50));
    conn->finalize_drained();
    conn->kick();
  }
  conn->finalize_drained();
  EXPECT_EQ(conn->delivered_bytes(), 400'000u);
  // The drained slot is gone, its stats retired, its path attribution kept.
  EXPECT_EQ(conn->subflow_at(0), nullptr);
  EXPECT_GT(conn->retired_stats(0).bytes_sent, 0u);
  EXPECT_GT(conn->bytes_sent_on(bed.wifi()), 0u);
  EXPECT_EQ(conn->subflows().size(), 1u);
}

TEST(ConnectionChurn, AbandonRemapsUnackedBytesOntoSurvivor) {
  Testbed bed(hetero_config());
  auto conn = bed.make_connection(scheduler_factory("default"));
  BulkSender sender(*conn, 400'000);

  bed.sim().run_until(at_s(0.2));
  const Subflow* slow = conn->subflow_at(0);
  ASSERT_NE(slow, nullptr);
  ASSERT_GT(slow->staged_bytes() + slow->inflight_segments(), 0u);
  conn->remove_subflow(0, Connection::TeardownMode::kAbandon);
  // The slot died immediately; its unacked ranges sit on the remap queue
  // until the scheduler re-places them.
  EXPECT_EQ(conn->subflow_at(0), nullptr);

  bed.sim().run_until(at_s(120));
  EXPECT_EQ(conn->delivered_bytes(), 400'000u);
  EXPECT_EQ(conn->remap_bytes(), 0u);
  EXPECT_GT(conn->meta_stats().remapped_segments, 0u);
}

TEST(ConnectionChurn, AddSubflowMidRunCarriesTraffic) {
  // Start single-path, join the second interface mid-transfer.
  WorldConfig wc;
  wc.paths.push_back(wifi_profile(Rate::mbps(2.0)));
  wc.paths.push_back(lte_profile(Rate::mbps(10.0)));
  World world(wc);
  auto conn = world.make_connection_on({0}, scheduler_factory("default"));
  BulkSender sender(*conn, 800'000);

  world.sim().run_until(at_s(0.5));
  EXPECT_EQ(world.sim().now(), at_s(0.5));
  const std::uint32_t id = conn->add_subflow(world.path(1), world.path(1).rtt_base());
  EXPECT_EQ(id, 1u);
  EXPECT_FALSE(conn->subflow_at(1)->established());

  while (conn->delivered_bytes() < 800'000 && world.sim().now() < at_s(120)) {
    world.sim().run_until(world.sim().now() + Duration::millis(50));
    conn->kick();
  }
  EXPECT_EQ(conn->delivered_bytes(), 800'000u);
  EXPECT_GT(conn->bytes_sent_on(world.path(1)), 0u);
}

// --- PathManager policies ----------------------------------------------------

TEST(PathManagerTest, TimedHandoverDrainsAndRejoins) {
  DownloadParams p;
  p.wifi_mbps = 2.0;
  p.lte_mbps = 10.0;
  p.bytes = 512 * 1024;
  p.scheduler = "default";
  p.use_path_manager = true;
  p.path_manager.tick = Duration::millis(5);
  p.path_manager.actions = {remove_action(0.05, 0, Connection::TeardownMode::kDrain),
                            add_action(0.3, 0)};

  DownloadRun run(p);
  run.start();
  run.run_to(at_s(600));
  const DownloadResult res = run.finish();
  ASSERT_NE(run.path_manager(), nullptr);
  const PathManager::Stats& st = run.path_manager()->stats();
  EXPECT_EQ(st.drains_started, 1u);
  EXPECT_EQ(st.finalized, 1u);
  EXPECT_EQ(st.subflows_added, 1u);
  EXPECT_EQ(st.drain_timeouts, 0u);
  EXPECT_GT(res.completion, Duration::zero());
  ASSERT_EQ(res.path_bytes.size(), 2u);
  EXPECT_GT(res.path_bytes[0], 0u);
  EXPECT_GT(res.path_bytes[1], 0u);
  // Slot 0 drained away and the re-join took slot 2.
  EXPECT_EQ(run.connection().slot_count(), 3u);
  EXPECT_EQ(run.connection().subflow_at(0), nullptr);
}

TEST(PathManagerTest, AbandonHandoverRemapsSegments) {
  DownloadParams p;
  p.wifi_mbps = 2.0;
  p.lte_mbps = 10.0;
  p.bytes = 512 * 1024;
  p.scheduler = "default";
  p.use_path_manager = true;
  p.path_manager.tick = Duration::millis(5);
  // Abandon the low-RTT wifi path: min-RTT loads it first, so at 0.05 s it
  // holds unacked data that must flow through the remap queue.
  p.path_manager.actions = {remove_action(0.05, 0, Connection::TeardownMode::kAbandon),
                            add_action(0.3, 0)};

  DownloadRun run(p);
  run.start();
  run.run_to(at_s(600));
  const DownloadResult res = run.finish();
  EXPECT_EQ(run.path_manager()->stats().abandons, 1u);
  EXPECT_GT(res.completion, Duration::zero());
  // The abandoned subflow held unacked data; it had to be re-scheduled.
  EXPECT_GT(res.remapped_segments, 0u);
  EXPECT_EQ(run.connection().remap_bytes(), 0u);
}

TEST(PathManagerTest, StuckDrainEscalatesToAbandonAfterTimeout) {
  // Kill the wifi downlink right before draining it: the drain can never
  // complete (retransmissions die on the wire), so the manager must abandon
  // it at the timeout and remap its data.
  ScenarioSpec spec;
  spec.paths.push_back(wifi_path(2.0));
  spec.paths.push_back(lte_path(10.0));
  spec.paths[0].faults.outages.push_back(OutageSpec{0.04, 30.0});
  spec.workload.kind = WorkloadKind::kDownload;
  spec.workload.bytes = 256 * 1024;
  spec.path_manager.enabled = true;
  spec.path_manager.tick_ms = 5.0;
  spec.path_manager.drain_timeout_s = 0.25;
  spec.path_manager.events = {PathEventSpec{0.05, "remove", 0, "drain"}};

  DownloadParams p = download_params_from_spec(spec);
  DownloadRun run(p);
  run.start();
  run.run_to(at_s(600));
  const DownloadResult res = run.finish();
  const PathManager::Stats& st = run.path_manager()->stats();
  EXPECT_EQ(st.drains_started, 1u);
  EXPECT_EQ(st.drain_timeouts, 1u);
  EXPECT_GT(res.completion, Duration::zero());
  EXPECT_LT(res.completion, Duration::seconds(10));  // not stalled on the dead drain
}

TEST(PathManagerTest, BackupPromotedAfterRtoBackoffs) {
  // Three paths, the third held in reserve; a long outage on wifi drives its
  // subflow into RTO backoff until the manager promotes the backup.
  ScenarioSpec spec;
  spec.paths.push_back(wifi_path(4.0));
  spec.paths.push_back(lte_path(6.0));
  spec.paths.push_back(lte_path(8.0));
  spec.paths[0].faults.outages.push_back(OutageSpec{0.5, 6.0});
  spec.workload.kind = WorkloadKind::kDownload;
  spec.workload.bytes = 4 * 1024 * 1024;
  spec.path_manager.enabled = true;
  spec.path_manager.backup.enabled = true;
  spec.path_manager.backup.paths = {2};
  spec.path_manager.backup.promote_after_rtos = 2;

  DownloadParams p = download_params_from_spec(spec);
  ASSERT_EQ(p.initial_paths.size(), 2u);  // backup path held back at start
  DownloadRun run(p);
  run.start();
  EXPECT_EQ(run.connection().slot_count(), 2u);
  run.run_to(at_s(600));
  const DownloadResult res = run.finish();
  EXPECT_GE(run.path_manager()->stats().promotions, 1u);
  ASSERT_EQ(res.path_bytes.size(), 3u);
  EXPECT_GT(res.path_bytes[2], 0u);  // the promoted path carried data
  EXPECT_GT(res.completion, Duration::zero());
}

TEST(PathManagerTest, CapGrowthFollowsDeliveredBytes) {
  DownloadParams p;
  p.wifi_mbps = 8.0;
  p.lte_mbps = 8.0;
  p.bytes = 512 * 1024;
  p.scheduler = "rr";
  p.initial_paths = {0};  // start single-subflow, grow from there
  p.use_path_manager = true;
  p.path_manager.tick = Duration::millis(5);
  p.path_manager.max_subflows = 4;
  p.path_manager.bytes_per_subflow = 64 * 1024;
  p.path_manager.growth_paths = {1, 0};

  DownloadRun run(p);
  run.start();
  run.run_to(at_s(600));
  const DownloadResult res = run.finish();
  const PathManager::Stats& st = run.path_manager()->stats();
  EXPECT_GT(res.completion, Duration::zero());
  // 512 KB at 64 KB per subflow wants well past the cap: growth must have
  // fired and must have stopped at max_subflows.
  EXPECT_GE(st.cap_adds, 3u);
  EXPECT_EQ(run.path_manager()->live_subflows(), 4u);
  EXPECT_EQ(run.connection().slot_count(), 4u);
  ASSERT_EQ(res.path_bytes.size(), 2u);
  EXPECT_GT(res.path_bytes[1], 0u);  // growth alternated onto the second path
}

// --- scheduler regressions churn flushes out --------------------------------

TEST(SchedulerChurnRegression, EcfClearsArmedWaitOnIdentityChange) {
  // Drive ECF until it arms waiting_ for the fast subflow, then abandon that
  // subflow. With the pre-fix bare bool the stale bit survives into the next
  // pick against an unrelated pair; the fix ties the bit to the subflow id
  // and on_subflow_change drops it when that subflow is gone.
  TestbedConfig tb = hetero_config();
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("ecf"));
  auto& ecf = static_cast<EcfScheduler&>(conn->scheduler());
  BulkSender sender(*conn, 2'000'000);

  TimePoint cap = at_s(60);
  while (!ecf.waiting() && bed.sim().now() < cap) {
    bed.sim().run_until(bed.sim().now() + Duration::millis(10));
  }
  ASSERT_TRUE(ecf.waiting()) << "ECF never armed its hysteresis on this workload";
  const std::uint32_t armed = ecf.waiting_for();
  ASSERT_NE(armed, EcfScheduler::kNoSubflow);

  conn->remove_subflow(armed, Connection::TeardownMode::kAbandon);
  // remove_subflow notified the scheduler; the armed wait must be gone.
  EXPECT_FALSE(ecf.waiting());
  EXPECT_EQ(ecf.waiting_for(), EcfScheduler::kNoSubflow);

  bed.sim().run_until(at_s(120));
  EXPECT_EQ(conn->delivered_bytes(), 2'000'000u);
}

TEST(SchedulerChurnRegression, EcfKeepsWaitWhenOtherSubflowChanges) {
  // The identity check is precise: churn that leaves the armed subflow
  // schedulable must not drop the earned hysteresis.
  TestbedConfig tb = hetero_config();
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("ecf"));
  auto& ecf = static_cast<EcfScheduler&>(conn->scheduler());
  BulkSender sender(*conn, 2'000'000);

  while (!ecf.waiting() && bed.sim().now() < at_s(60)) {
    bed.sim().run_until(bed.sim().now() + Duration::millis(10));
  }
  ASSERT_TRUE(ecf.waiting());
  const std::uint32_t armed = ecf.waiting_for();

  // Adding a third subflow is a membership change that must not clear it.
  conn->add_subflow(bed.lte(), Duration::zero());
  EXPECT_TRUE(ecf.waiting());
  EXPECT_EQ(ecf.waiting_for(), armed);
}

TEST(SchedulerChurnRegression, RoundRobinSurvivesRemovalAndKeepsRotating) {
  // Three equal paths under rr; the middle subflow is abandoned mid-run.
  // The id cursor must step over the hole (the pre-fix index cursor skewed
  // onto the wrong subflow or ran off the compacted list).
  WorldConfig wc;
  for (int i = 0; i < 3; ++i) wc.paths.push_back(wifi_profile(Rate::mbps(8.0)));
  World world(wc);
  auto conn = world.make_connection(scheduler_factory("rr"));
  BulkSender sender(*conn, 1'500'000);

  world.sim().run_until(at_s(0.3));
  conn->remove_subflow(1, Connection::TeardownMode::kAbandon);

  while (conn->delivered_bytes() < 1'500'000 && world.sim().now() < at_s(120)) {
    world.sim().run_until(world.sim().now() + Duration::millis(50));
    conn->kick();
  }
  EXPECT_EQ(conn->delivered_bytes(), 1'500'000u);
  // Rotation still alternates over the two survivors.
  EXPECT_GT(conn->subflow_at(0)->stats().bytes_sent, 0u);
  EXPECT_GT(conn->subflow_at(2)->stats().bytes_sent, 0u);
}

TEST(SchedulerChurnRegression, DapsReplansWhenPlannedSubflowLeaves) {
  // DAPS plans onto the low-RTT wifi subflow; abandoning it invalidates the
  // plan mid-epoch. The pre-fix scheduler kept resolving the dead id.
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(6.0));
  tb.lte = lte_profile(Rate::mbps(6.0));
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("daps"));
  BulkSender sender(*conn, 1'000'000);

  bed.sim().run_until(at_s(0.3));
  conn->remove_subflow(0, Connection::TeardownMode::kAbandon);

  while (conn->delivered_bytes() < 1'000'000 && bed.sim().now() < at_s(120)) {
    bed.sim().run_until(bed.sim().now() + Duration::millis(50));
    conn->kick();
  }
  EXPECT_EQ(conn->delivered_bytes(), 1'000'000u);
  EXPECT_GT(conn->bytes_sent_on(bed.lte()), 0u);
}

TEST(SchedulerChurnRegression, RedundantDoesNotDuplicateOntoDrainingSubflow) {
  // Under the redundant scheduler every pick duplicates to all other
  // subflows. A draining subflow must be excluded — with the pre-fix
  // duplication it kept receiving staged copies and never reached drained(),
  // so the drain hung until the timeout escalated it.
  DownloadParams p;
  p.wifi_mbps = 8.0;
  p.lte_mbps = 8.0;
  p.bytes = 512 * 1024;
  p.scheduler = "redundant";
  p.use_path_manager = true;
  p.path_manager.tick = Duration::millis(5);
  p.path_manager.drain_timeout = Duration::seconds(30);
  p.path_manager.actions = {remove_action(0.05, 0, Connection::TeardownMode::kDrain)};

  DownloadRun run(p);
  run.start();
  run.run_to(at_s(600));
  const DownloadResult res = run.finish();
  const PathManager::Stats& st = run.path_manager()->stats();
  EXPECT_EQ(st.drains_started, 1u);
  EXPECT_EQ(st.finalized, 1u);       // the drain completed on its own...
  EXPECT_EQ(st.drain_timeouts, 0u);  // ...not via timeout escalation
  EXPECT_GT(res.completion, Duration::zero());
  EXPECT_LT(res.completion, Duration::seconds(20));
}

// --- invariants under churn, all schedulers ---------------------------------

TEST(PathManagerInvariants, AllSchedulersHandoverGridClean) {
  // Every registered scheduler through the handover stress profile (drain +
  // abandon + re-join of both paths under light loss), with the byte
  // conservation checker watching the whole run.
  for (const std::string& sched : scheduler_names()) {
    for (std::uint64_t seed : {1u, 2u}) {
      StressCell cell;
      cell.profile = "handover";
      cell.scheduler = sched;
      cell.seed = seed;
      const StressCellResult r = run_stress_cell(cell);
      EXPECT_TRUE(r.ok()) << sched << " seed=" << seed << ": "
                          << (r.violations.empty() ? "stalled" : r.violations.front());
      EXPECT_GT(r.checks_run, 0u);
    }
  }
}

TEST(PathManagerInvariants, CheckerSeesConservationAcrossAbandon) {
  // Direct conservation probe at the worst moment: immediately after an
  // abandon, while the remap queue holds the orphaned ranges.
  Testbed bed(hetero_config());
  InvariantChecker checker(bed.sim());
  auto conn = bed.make_connection(scheduler_factory("default"));
  checker.watch(*conn);
  BulkSender sender(*conn, 400'000);

  bed.sim().run_until(at_s(0.2));
  conn->remove_subflow(1, Connection::TeardownMode::kAbandon);
  checker.check_now("post-abandon");
  bed.sim().run_until(at_s(120));
  checker.check_now("final");
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_EQ(conn->delivered_bytes(), 400'000u);
}

// --- snapshot/fork and parallelism contracts --------------------------------

std::string download_fingerprint(const DownloadResult& r) {
  std::ostringstream os;
  os << r.completion.to_seconds() << "|" << r.fraction_fast << "|"
     << r.remapped_segments << "|" << r.ooo_delay.count();
  for (std::uint64_t b : r.path_bytes) os << "|" << b;
  return os.str();
}

TEST(PathManagerFork, ForkDuringHandoverWindowIsByteIdentical) {
  DownloadParams p;
  p.wifi_mbps = 2.0;
  p.lte_mbps = 10.0;
  p.bytes = 512 * 1024;
  p.scheduler = "ecf";
  p.seed = 7;
  p.use_path_manager = true;
  p.path_manager.tick = Duration::millis(5);
  p.path_manager.actions = {remove_action(0.05, 0, Connection::TeardownMode::kDrain),
                            remove_action(0.15, 1, Connection::TeardownMode::kAbandon),
                            add_action(0.2, 1), add_action(0.3, 0)};

  const std::string scratch = download_fingerprint(run_download(p));

  // Snapshot times straddling every churn edge: before any action, inside
  // the drain window, between the abandon and the re-joins, after the
  // topology settled.
  for (const double snap_s : {0.0, 0.07, 0.17, 0.25, 0.5}) {
    SCOPED_TRACE(snap_s);
    DownloadRun run(p);
    run.start();
    run.run_to(at_s(snap_s));
    std::unique_ptr<DownloadRun> forked = run.fork();
    EXPECT_EQ(scratch, download_fingerprint(forked->finish()));
  }
}

TEST(PathManagerFork, SourceUnperturbedByForkAtHandover) {
  DownloadParams p;
  p.wifi_mbps = 2.0;
  p.lte_mbps = 10.0;
  p.bytes = 256 * 1024;
  p.scheduler = "default";
  p.use_path_manager = true;
  p.path_manager.tick = Duration::millis(5);
  p.path_manager.actions = {remove_action(0.05, 0, Connection::TeardownMode::kDrain),
                            add_action(0.25, 0)};

  const std::string scratch = download_fingerprint(run_download(p));

  DownloadRun run(p);
  run.start();
  run.run_to(at_s(0.08));  // mid-drain
  std::unique_ptr<DownloadRun> forked = run.fork();
  // Finish the fork FIRST; the source must not notice.
  EXPECT_EQ(scratch, download_fingerprint(forked->finish()));
  EXPECT_EQ(scratch, download_fingerprint(run.finish()));
}

std::string slurp_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(PathManagerFork, HandoverPresetJobs1Vs4ByteIdentical) {
  // The commuter preset through the forked sweep at serial and parallel
  // widths: worker count must never leak into churned-topology output.
  ScenarioSpec spec = scenario_from_json(
      Json::parse(slurp_file(fs::path(MPS_SOURCE_DIR) / "scenarios" / "handover_commuter.json")));
  spec.workload.video_s = 5.0;
  spec.workload.runs = 1;

  std::string out[2];
  for (int i = 0; i < 2; ++i) {
    SweepOptions sweep;
    sweep.jobs = i == 0 ? 1 : 4;
    const ScenarioOutcome outcome = run_scenario_forked(spec, 1.0, {}, sweep);
    out[i] = format_outcome(spec, outcome);
  }
  EXPECT_EQ(out[0], out[1]);
  EXPECT_FALSE(out[0].empty());
}

// --- spec round-trip ---------------------------------------------------------

TEST(PathManagerSpec, RoundTripsThroughJson) {
  ScenarioSpec spec;
  spec.name = "pm-roundtrip";
  spec.paths.push_back(wifi_path(8.0));
  spec.paths.push_back(lte_path(10.0));
  spec.paths.push_back(lte_path(12.0));
  spec.workload.kind = WorkloadKind::kDownload;
  spec.path_manager.enabled = true;
  spec.path_manager.tick_ms = 7.5;
  spec.path_manager.drain_timeout_s = 1.25;
  spec.path_manager.join_delay_rtt = false;
  spec.path_manager.events = {PathEventSpec{0.5, "remove", 0, "drain"},
                              PathEventSpec{1.0, "add", 0, "drain"}};
  spec.path_manager.cap.enabled = true;
  spec.path_manager.cap.max_subflows = 3;
  spec.path_manager.cap.bytes_per_subflow = 128 * 1024;
  spec.path_manager.cap.paths = {0, 1};
  spec.path_manager.backup.enabled = true;
  spec.path_manager.backup.paths = {2};
  spec.path_manager.backup.promote_after_rtos = 4;

  const ScenarioSpec back = scenario_from_json(scenario_to_json(spec));
  EXPECT_EQ(spec, back);
  EXPECT_TRUE(back.path_manager.enabled);
}

TEST(PathManagerSpec, StrictValidationRejectsBadBlocks) {
  const std::string base = R"({
    "name": "bad",
    "paths": [{"profile": "wifi", "rate_mbps": 8.0}, {"profile": "lte", "rate_mbps": 10.0}],
    "workload": {"kind": "download"}, "path_manager": )";
  const auto parse_with = [&](const std::string& pm_block) {
    return scenario_from_json(Json::parse(base + pm_block + "}"));
  };
  // Unknown key, out-of-range path, unsorted events, bad mode, bad action.
  EXPECT_THROW(parse_with(R"({"ticks_ms": 5})"), std::invalid_argument);
  EXPECT_THROW(parse_with(R"({"events": [{"at_s": 1, "action": "remove", "path": 2}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_with(R"({"events": [{"at_s": 2, "action": "add", "path": 0},
                                         {"at_s": 1, "action": "add", "path": 1}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_with(R"({"events": [{"at_s": 1, "action": "remove", "path": 0,
                                          "mode": "reset"}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_with(R"({"events": [{"at_s": 1, "action": "toggle", "path": 0}]})"),
               std::invalid_argument);
  // Cap and backup blocks are strict too.
  EXPECT_THROW(parse_with(R"({"cap": {"max_subflows": 0, "bytes_per_subflow": 1,
                                      "paths": [0]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse_with(R"({"backup": {"paths": []}})"), std::invalid_argument);
  // A valid block parses.
  EXPECT_NO_THROW(parse_with(R"({"events": [{"at_s": 1, "action": "remove", "path": 0}]})"));
}

TEST(PathManagerSpec, EveryPathBackupIsRejectedByParamsConversion) {
  ScenarioSpec spec;
  spec.paths.push_back(wifi_path(8.0));
  spec.paths.push_back(lte_path(10.0));
  spec.workload.kind = WorkloadKind::kDownload;
  spec.path_manager.enabled = true;
  spec.path_manager.backup.enabled = true;
  spec.path_manager.backup.paths = {0, 1};
  EXPECT_THROW(download_params_from_spec(spec), std::invalid_argument);
}

}  // namespace
}  // namespace mps
