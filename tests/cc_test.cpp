// Tests for the congestion controllers: Reno, CUBIC, LIA, OLIA, BALIA.
// The closed-form tests recompute each controller's published update rule
// (RFC 8312 for CUBIC, RFC 6356 for LIA, Khalili et al. for OLIA,
// Peng/Walid/Hwang/Low for BALIA) independently in the test body and
// compare against the implementation — a differential check that the code
// matches the paper math, not just itself.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "tcp/cc.h"
#include "tcp/cc_balia.h"
#include "tcp/cc_cubic.h"
#include "tcp/cc_lia.h"
#include "tcp/cc_olia.h"
#include "tcp/cc_registry.h"
#include "tcp/cc_reno.h"

namespace mps {
namespace {

// A fixed group of subflows for coupled-controller tests.
class FakeGroup final : public CcGroup {
 public:
  std::vector<CcSiblingInfo> siblings;
  void cc_sibling_info(std::vector<CcSiblingInfo>& out) const override { out = siblings; }
};

CongestionController::AckContext ctx_of(double cwnd, double rtt_s,
                                        const CcGroup* group = nullptr,
                                        std::uint32_t self = 0) {
  CongestionController::AckContext ctx;
  ctx.self_id = self;
  ctx.cwnd = cwnd;
  ctx.ssthresh = 1e9;
  ctx.srtt_s = rtt_s;
  ctx.group = group;
  ctx.now = TimePoint::from_ns(1'000'000'000);
  return ctx;
}

CcSiblingInfo sibling(std::uint32_t id, double cwnd, double rtt_s,
                      double inter_loss = 1e6) {
  CcSiblingInfo s;
  s.subflow_id = id;
  s.cwnd = cwnd;
  s.srtt_s = rtt_s;
  s.established = true;
  s.inter_loss_bytes = inter_loss;
  return s;
}

// --- Reno ---------------------------------------------------------------------

TEST(RenoTest, OneSegmentPerWindow) {
  RenoCc cc;
  EXPECT_DOUBLE_EQ(cc.ca_increase(ctx_of(10, 0.1)), 0.1);
  EXPECT_DOUBLE_EQ(cc.ca_increase(ctx_of(100, 0.1)), 0.01);
}

TEST(RenoTest, HalvesOnLoss) {
  RenoCc cc;
  EXPECT_DOUBLE_EQ(cc.loss_factor(), 0.5);
}

// --- CUBIC --------------------------------------------------------------------

TEST(CubicTest, Beta07) {
  CubicCc cc;
  EXPECT_DOUBLE_EQ(cc.loss_factor(), 0.7);
}

TEST(CubicTest, GrowsTowardWmaxAfterLoss) {
  CubicCc cc;
  auto ctx = ctx_of(100, 0.05);
  cc.on_loss_event(ctx);  // w_max ~ 100
  // Immediately after the loss epoch starts, growth is slow near the
  // plateau and positive.
  ctx.cwnd = 70;
  const double inc_early = cc.ca_increase(ctx);
  EXPECT_GT(inc_early, 0.0);
  // Much later in the epoch, the cubic term dominates and growth is faster.
  ctx.now = ctx.now + Duration::seconds(10);
  ctx.cwnd = 100;
  const double inc_late = cc.ca_increase(ctx);
  EXPECT_GT(inc_late, inc_early);
}

TEST(CubicTest, PerAckIncreaseCapped) {
  CubicCc cc;
  auto ctx = ctx_of(1.0, 0.5);
  cc.on_loss_event(ctx_of(200, 0.5));
  ctx.now = ctx.now + Duration::seconds(100);
  EXPECT_LE(cc.ca_increase(ctx), 0.5);
}

TEST(CubicTest, MatchesRfc8312ClosedForm) {
  // Recompute W_cubic(t) and W_est(t) from RFC 8312 sections 4.1-4.2 by
  // hand and check the per-ack increase (W_target - cwnd) / cwnd matches.
  constexpr double kC = 0.4, kBeta = 0.7;
  const double w_max = 100.0, rtt = 0.05;
  CubicCc cc;
  auto loss = ctx_of(w_max, rtt);
  cc.on_loss_event(loss);
  auto ctx = ctx_of(80.0, rtt);
  (void)cc.ca_increase(ctx);  // starts the epoch at ctx.now
  ctx.now = ctx.now + Duration::seconds(10);
  ctx.cwnd = 160.0;
  const double t = 10.0 + rtt;  // epoch elapsed plus one srtt lookahead
  const double k = std::cbrt(w_max * (1.0 - kBeta) / kC);
  const double w_cubic = kC * std::pow(t - k, 3.0) + w_max;
  const double w_est =
      w_max * kBeta + (3.0 * (1.0 - kBeta) / (1.0 + kBeta)) * (t / rtt);
  const double target = std::max(w_cubic, w_est);
  ASSERT_GT(target, ctx.cwnd);  // the test is vacuous in the floor branch
  const double expected = std::min((target - ctx.cwnd) / ctx.cwnd, 0.5);
  EXPECT_NEAR(cc.ca_increase(ctx), expected, 1e-9);
}

TEST(CubicTest, FastConvergenceShrinksWmaxOnBackToBackLosses) {
  // RFC 8312 4.6: a loss below the previous plateau remembers
  // cwnd * (2 - beta) / 2 instead of cwnd.
  CubicCc cc;
  cc.on_loss_event(ctx_of(100.0, 0.05));
  cc.on_loss_event(ctx_of(60.0, 0.05));  // 60 < 100 -> w_max = 60 * 0.65 = 39
  auto ctx = ctx_of(10.0, 0.05);
  (void)cc.ca_increase(ctx);  // epoch starts; k derives from w_max = 39
  ctx.now = ctx.now + Duration::seconds(5);
  const double t = 5.0 + 0.05;
  const double w_max = 60.0 * (2.0 - 0.7) / 2.0;
  const double k = std::cbrt(w_max * 0.3 / 0.4);
  const double w_cubic = 0.4 * std::pow(t - k, 3.0) + w_max;
  const double w_est = w_max * 0.7 + (3.0 * 0.3 / 1.7) * (t / 0.05);
  const double target = std::max(w_cubic, w_est);
  ASSERT_GT(target, ctx.cwnd);
  EXPECT_NEAR(cc.ca_increase(ctx), std::min((target - 10.0) / 10.0, 0.5), 1e-9);
}

TEST(CubicTest, ResetClearsEpoch) {
  CubicCc cc;
  auto ctx = ctx_of(50, 0.05);
  cc.on_loss_event(ctx);
  cc.reset();
  // After reset the controller behaves as fresh (no crash, positive inc).
  EXPECT_GT(cc.ca_increase(ctx), 0.0);
}

// --- LIA ----------------------------------------------------------------------

TEST(LiaTest, SinglePathReducesToReno) {
  LiaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1)};
  const double inc = cc.ca_increase(ctx_of(10, 0.1, &group, 0));
  EXPECT_NEAR(inc, 1.0 / 10.0, 1e-9);
}

TEST(LiaTest, NoGroupReducesToReno) {
  LiaCc cc;
  EXPECT_NEAR(cc.ca_increase(ctx_of(25, 0.1)), 1.0 / 25.0, 1e-12);
}

TEST(LiaTest, CoupledIncreaseNeverExceedsReno) {
  LiaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1), sibling(1, 50, 0.05)};
  const double inc = cc.ca_increase(ctx_of(10, 0.1, &group, 0));
  EXPECT_LE(inc, 1.0 / 10.0 + 1e-12);
  EXPECT_GT(inc, 0.0);
}

TEST(LiaTest, MatchesRfc6356Alpha) {
  LiaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1), sibling(1, 40, 0.05)};
  // alpha = tot * max(w_i/rtt_i^2) / (sum w_i/rtt_i)^2
  const double tot = 50.0;
  const double best = std::max(10.0 / 0.01, 40.0 / 0.0025);
  const double sum = 10.0 / 0.1 + 40.0 / 0.05;
  const double alpha = tot * best / (sum * sum);
  const double expected = std::min(alpha / tot, 1.0 / 10.0);
  EXPECT_NEAR(cc.ca_increase(ctx_of(10, 0.1, &group, 0)), expected, 1e-9);
}

TEST(LiaTest, IgnoresUnestablishedSiblings) {
  LiaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1)};
  CcSiblingInfo dead = sibling(1, 1000, 0.001);
  dead.established = false;
  group.siblings.push_back(dead);
  EXPECT_NEAR(cc.ca_increase(ctx_of(10, 0.1, &group, 0)), 0.1, 1e-9);
}

// --- OLIA ---------------------------------------------------------------------

TEST(OliaTest, SinglePathApproximatesReno) {
  OliaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1)};
  EXPECT_NEAR(cc.ca_increase(ctx_of(10, 0.1, &group, 0)), 1.0 / 10.0, 1e-9);
}

TEST(OliaTest, CollectedPathGetsBoost) {
  OliaCc cc;
  FakeGroup group;
  // Path 0: high quality (large inter-loss), small window -> in B \ M.
  // Path 1: max window, lower quality.
  group.siblings = {sibling(0, 10, 0.1, 1e9), sibling(1, 100, 0.1, 1e3)};
  const double inc_collected = cc.ca_increase(ctx_of(10, 0.1, &group, 0));
  const double base = (10.0 / 0.01) / std::pow(10.0 / 0.1 + 100.0 / 0.1, 2.0);
  EXPECT_GT(inc_collected, base);
}

TEST(OliaTest, MaxWindowPathGetsPenalty) {
  OliaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1, 1e9), sibling(1, 100, 0.1, 1e3)};
  const double inc_max = cc.ca_increase(ctx_of(100, 0.1, &group, 1));
  const double base = (100.0 / 0.01) / std::pow(10.0 / 0.1 + 100.0 / 0.1, 2.0);
  EXPECT_LT(inc_max, base);
  EXPECT_GE(inc_max, 0.0);  // clamped non-negative
}

TEST(OliaTest, MatchesKhaliliClosedForm) {
  // Two paths, hand-evaluated: path 0 is the best-quality path (in B \ M),
  // path 1 holds the max window (in M). n = 2, |B \ M| = 1, |M| = 1, so
  // alpha_0 = +1/2 and alpha_1 = -1/2; the increase is
  //   cwnd_r / rtt_r^2 / (sum_p cwnd_p / rtt_p)^2 + alpha_r / cwnd_r.
  OliaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1, 1e9), sibling(1, 100, 0.1, 1e3)};
  const double sum = 10.0 / 0.1 + 100.0 / 0.1;
  const double expected0 = (10.0 / (0.1 * 0.1)) / (sum * sum) + 0.5 / 10.0;
  const double expected1 = (100.0 / (0.1 * 0.1)) / (sum * sum) - 0.5 / 100.0;
  EXPECT_NEAR(cc.ca_increase(ctx_of(10, 0.1, &group, 0)), expected0, 1e-12);
  EXPECT_NEAR(cc.ca_increase(ctx_of(100, 0.1, &group, 1)), expected1, 1e-12);
}

TEST(OliaTest, SymmetricPathsNoAlpha) {
  OliaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 20, 0.1, 1e6), sibling(1, 20, 0.1, 1e6)};
  // B == M (both best and max): alpha = 0 for everyone.
  const double base = (20.0 / 0.01) / std::pow(2 * 20.0 / 0.1, 2.0);
  EXPECT_NEAR(cc.ca_increase(ctx_of(20, 0.1, &group, 0)), base, 1e-9);
}

// --- BALIA --------------------------------------------------------------------

TEST(BaliaTest, SinglePathReducesToReno) {
  // With one path alpha = 1, so the increase collapses to
  // (x/rtt)/x^2 * 1 * 1 = 1/cwnd and the decrease to a plain halving.
  BaliaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1)};
  EXPECT_NEAR(cc.ca_increase(ctx_of(10, 0.1, &group, 0)), 1.0 / 10.0, 1e-12);
  cc.on_loss_event(ctx_of(10, 0.1, &group, 0));
  EXPECT_DOUBLE_EQ(cc.loss_factor(), 0.5);
}

TEST(BaliaTest, NoGroupReducesToReno) {
  BaliaCc cc;
  EXPECT_NEAR(cc.ca_increase(ctx_of(25, 0.1)), 1.0 / 25.0, 1e-12);
  EXPECT_DOUBLE_EQ(cc.loss_factor(), 0.5);
}

TEST(BaliaTest, CoupledTwoSubflowMatchesClosedForm) {
  // Hand-evaluated Peng et al. update: x_0 = 10/0.1 = 100, x_1 = 40/0.05
  // = 800, so path 0 (the slow one) sees alpha_0 = 800/100 = 8 and path 1
  // (the fast one) alpha_1 = 1. Increase per ack on r:
  //   (x_r / rtt_r) / (sum x)^2 * ((1 + alpha)/2) * ((4 + alpha)/5).
  BaliaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1), sibling(1, 40, 0.05)};
  const double sum_x = 100.0 + 800.0;
  const double a0 = 8.0, a1 = 1.0;
  const double expected0 =
      (100.0 / 0.1) / (sum_x * sum_x) * ((1.0 + a0) / 2.0) * ((4.0 + a0) / 5.0);
  const double expected1 =
      (800.0 / 0.05) / (sum_x * sum_x) * ((1.0 + a1) / 2.0) * ((4.0 + a1) / 5.0);
  EXPECT_NEAR(cc.ca_increase(ctx_of(10, 0.1, &group, 0)), expected0, 1e-12);
  EXPECT_NEAR(cc.ca_increase(ctx_of(40, 0.05, &group, 1)), expected1, 1e-12);
}

TEST(BaliaTest, LossFactorTracksAlphaAtLossAndIsBounded) {
  BaliaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1), sibling(1, 40, 0.05)};
  // Slow path: alpha = 8, clipped to 1.5 -> keep 1 - 1.5/2 = 0.25.
  cc.on_loss_event(ctx_of(10, 0.1, &group, 0));
  EXPECT_DOUBLE_EQ(cc.loss_factor(), 0.25);
  // Fast path: alpha = 1 -> plain halving.
  cc.on_loss_event(ctx_of(40, 0.05, &group, 1));
  EXPECT_DOUBLE_EQ(cc.loss_factor(), 0.5);
  // A mid ratio lands strictly between the bounds: alpha = 800/600 = 4/3.
  group.siblings = {sibling(0, 60, 0.1), sibling(1, 40, 0.05)};
  cc.on_loss_event(ctx_of(60, 0.1, &group, 0));
  EXPECT_NEAR(cc.loss_factor(), 1.0 - (4.0 / 3.0) / 2.0, 1e-12);
  // reset() forgets the captured alpha; restore_from() copies it.
  BaliaCc copy;
  cc.on_loss_event(ctx_of(10, 0.1, &group, 0));
  copy.restore_from(cc);
  EXPECT_DOUBLE_EQ(copy.loss_factor(), cc.loss_factor());
  cc.reset();
  EXPECT_DOUBLE_EQ(cc.loss_factor(), 0.5);
}

TEST(BaliaTest, IgnoresUnestablishedSiblings) {
  BaliaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1)};
  CcSiblingInfo dead = sibling(1, 1000, 0.001);
  dead.established = false;
  group.siblings.push_back(dead);
  EXPECT_NEAR(cc.ca_increase(ctx_of(10, 0.1, &group, 0)), 1.0 / 10.0, 1e-12);
}

// --- factory / registry -------------------------------------------------------

TEST(CcFactoryTest, MakesAllKinds) {
  for (CcKind kind :
       {CcKind::kReno, CcKind::kCubic, CcKind::kLia, CcKind::kOlia, CcKind::kBalia}) {
    auto cc = make_cc(kind);
    ASSERT_NE(cc, nullptr);
    EXPECT_STREQ(cc->name(), cc_kind_name(kind));
  }
}

TEST(CcRegistryTest, NamesRoundTripThroughTheFactory) {
  // cc_names() must stay in sync with what the factory can build: every
  // listed name parses, builds, and reports itself under the same name.
  for (const std::string& name : cc_names()) {
    const CcKind kind = cc_kind_from_name(name);
    auto cc = make_cc(kind);
    ASSERT_NE(cc, nullptr) << name;
    EXPECT_EQ(std::string(cc->name()), name);
  }
  EXPECT_EQ(cc_names().size(), 5u);
}

TEST(CcRegistryTest, UnknownNameErrorEnumeratesEveryRegisteredName) {
  try {
    cc_kind_from_name("bbr");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bbr"), std::string::npos);
    for (const std::string& name : cc_names()) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

}  // namespace
}  // namespace mps
