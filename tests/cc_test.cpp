// Tests for the congestion controllers: Reno, CUBIC, LIA, OLIA.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "tcp/cc.h"
#include "tcp/cc_cubic.h"
#include "tcp/cc_lia.h"
#include "tcp/cc_olia.h"
#include "tcp/cc_reno.h"

namespace mps {
namespace {

// A fixed group of subflows for coupled-controller tests.
class FakeGroup final : public CcGroup {
 public:
  std::vector<CcSiblingInfo> siblings;
  void cc_sibling_info(std::vector<CcSiblingInfo>& out) const override { out = siblings; }
};

CongestionController::AckContext ctx_of(double cwnd, double rtt_s,
                                        const CcGroup* group = nullptr,
                                        std::uint32_t self = 0) {
  CongestionController::AckContext ctx;
  ctx.self_id = self;
  ctx.cwnd = cwnd;
  ctx.ssthresh = 1e9;
  ctx.srtt_s = rtt_s;
  ctx.group = group;
  ctx.now = TimePoint::from_ns(1'000'000'000);
  return ctx;
}

CcSiblingInfo sibling(std::uint32_t id, double cwnd, double rtt_s,
                      double inter_loss = 1e6) {
  CcSiblingInfo s;
  s.subflow_id = id;
  s.cwnd = cwnd;
  s.srtt_s = rtt_s;
  s.established = true;
  s.inter_loss_bytes = inter_loss;
  return s;
}

// --- Reno ---------------------------------------------------------------------

TEST(RenoTest, OneSegmentPerWindow) {
  RenoCc cc;
  EXPECT_DOUBLE_EQ(cc.ca_increase(ctx_of(10, 0.1)), 0.1);
  EXPECT_DOUBLE_EQ(cc.ca_increase(ctx_of(100, 0.1)), 0.01);
}

TEST(RenoTest, HalvesOnLoss) {
  RenoCc cc;
  EXPECT_DOUBLE_EQ(cc.loss_factor(), 0.5);
}

// --- CUBIC --------------------------------------------------------------------

TEST(CubicTest, Beta07) {
  CubicCc cc;
  EXPECT_DOUBLE_EQ(cc.loss_factor(), 0.7);
}

TEST(CubicTest, GrowsTowardWmaxAfterLoss) {
  CubicCc cc;
  auto ctx = ctx_of(100, 0.05);
  cc.on_loss_event(ctx);  // w_max ~ 100
  // Immediately after the loss epoch starts, growth is slow near the
  // plateau and positive.
  ctx.cwnd = 70;
  const double inc_early = cc.ca_increase(ctx);
  EXPECT_GT(inc_early, 0.0);
  // Much later in the epoch, the cubic term dominates and growth is faster.
  ctx.now = ctx.now + Duration::seconds(10);
  ctx.cwnd = 100;
  const double inc_late = cc.ca_increase(ctx);
  EXPECT_GT(inc_late, inc_early);
}

TEST(CubicTest, PerAckIncreaseCapped) {
  CubicCc cc;
  auto ctx = ctx_of(1.0, 0.5);
  cc.on_loss_event(ctx_of(200, 0.5));
  ctx.now = ctx.now + Duration::seconds(100);
  EXPECT_LE(cc.ca_increase(ctx), 0.5);
}

TEST(CubicTest, ResetClearsEpoch) {
  CubicCc cc;
  auto ctx = ctx_of(50, 0.05);
  cc.on_loss_event(ctx);
  cc.reset();
  // After reset the controller behaves as fresh (no crash, positive inc).
  EXPECT_GT(cc.ca_increase(ctx), 0.0);
}

// --- LIA ----------------------------------------------------------------------

TEST(LiaTest, SinglePathReducesToReno) {
  LiaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1)};
  const double inc = cc.ca_increase(ctx_of(10, 0.1, &group, 0));
  EXPECT_NEAR(inc, 1.0 / 10.0, 1e-9);
}

TEST(LiaTest, NoGroupReducesToReno) {
  LiaCc cc;
  EXPECT_NEAR(cc.ca_increase(ctx_of(25, 0.1)), 1.0 / 25.0, 1e-12);
}

TEST(LiaTest, CoupledIncreaseNeverExceedsReno) {
  LiaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1), sibling(1, 50, 0.05)};
  const double inc = cc.ca_increase(ctx_of(10, 0.1, &group, 0));
  EXPECT_LE(inc, 1.0 / 10.0 + 1e-12);
  EXPECT_GT(inc, 0.0);
}

TEST(LiaTest, MatchesRfc6356Alpha) {
  LiaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1), sibling(1, 40, 0.05)};
  // alpha = tot * max(w_i/rtt_i^2) / (sum w_i/rtt_i)^2
  const double tot = 50.0;
  const double best = std::max(10.0 / 0.01, 40.0 / 0.0025);
  const double sum = 10.0 / 0.1 + 40.0 / 0.05;
  const double alpha = tot * best / (sum * sum);
  const double expected = std::min(alpha / tot, 1.0 / 10.0);
  EXPECT_NEAR(cc.ca_increase(ctx_of(10, 0.1, &group, 0)), expected, 1e-9);
}

TEST(LiaTest, IgnoresUnestablishedSiblings) {
  LiaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1)};
  CcSiblingInfo dead = sibling(1, 1000, 0.001);
  dead.established = false;
  group.siblings.push_back(dead);
  EXPECT_NEAR(cc.ca_increase(ctx_of(10, 0.1, &group, 0)), 0.1, 1e-9);
}

// --- OLIA ---------------------------------------------------------------------

TEST(OliaTest, SinglePathApproximatesReno) {
  OliaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1)};
  EXPECT_NEAR(cc.ca_increase(ctx_of(10, 0.1, &group, 0)), 1.0 / 10.0, 1e-9);
}

TEST(OliaTest, CollectedPathGetsBoost) {
  OliaCc cc;
  FakeGroup group;
  // Path 0: high quality (large inter-loss), small window -> in B \ M.
  // Path 1: max window, lower quality.
  group.siblings = {sibling(0, 10, 0.1, 1e9), sibling(1, 100, 0.1, 1e3)};
  const double inc_collected = cc.ca_increase(ctx_of(10, 0.1, &group, 0));
  const double base = (10.0 / 0.01) / std::pow(10.0 / 0.1 + 100.0 / 0.1, 2.0);
  EXPECT_GT(inc_collected, base);
}

TEST(OliaTest, MaxWindowPathGetsPenalty) {
  OliaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 10, 0.1, 1e9), sibling(1, 100, 0.1, 1e3)};
  const double inc_max = cc.ca_increase(ctx_of(100, 0.1, &group, 1));
  const double base = (100.0 / 0.01) / std::pow(10.0 / 0.1 + 100.0 / 0.1, 2.0);
  EXPECT_LT(inc_max, base);
  EXPECT_GE(inc_max, 0.0);  // clamped non-negative
}

TEST(OliaTest, SymmetricPathsNoAlpha) {
  OliaCc cc;
  FakeGroup group;
  group.siblings = {sibling(0, 20, 0.1, 1e6), sibling(1, 20, 0.1, 1e6)};
  // B == M (both best and max): alpha = 0 for everyone.
  const double base = (20.0 / 0.01) / std::pow(2 * 20.0 / 0.1, 2.0);
  EXPECT_NEAR(cc.ca_increase(ctx_of(20, 0.1, &group, 0)), base, 1e-9);
}

// --- factory --------------------------------------------------------------------

TEST(CcFactoryTest, MakesAllKinds) {
  for (CcKind kind : {CcKind::kReno, CcKind::kCubic, CcKind::kLia, CcKind::kOlia}) {
    auto cc = make_cc(kind);
    ASSERT_NE(cc, nullptr);
    EXPECT_STREQ(cc->name(), cc_kind_name(kind));
  }
}

}  // namespace
}  // namespace mps
