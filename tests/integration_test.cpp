// Cross-module integration tests: end-to-end throughput sanity, the paper's
// qualitative claims, and full experiment-runner flows.
#include <gtest/gtest.h>

#include "exp/download.h"
#include "exp/ideal.h"
#include "exp/streaming.h"
#include "exp/testbed.h"
#include "test_util.h"
#include "exp/webrun.h"
#include "sched/registry.h"
#include "sched/singlepath.h"

namespace mps {
namespace {

TEST(EndToEndTest, SinglePathGoodputApproachesLinkRate) {
  // A bulk transfer pinned to one 10 Mbps path must achieve most of it.
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(10));
  tb.lte = lte_profile(Rate::mbps(10));
  Testbed bed(tb);
  auto conn = bed.make_connection([] { return std::make_unique<SinglePathScheduler>(0); });
  std::uint64_t delivered = 0;
  TimePoint done_at;
  conn->on_deliver = [&](std::uint64_t b, TimePoint t) {
    delivered += b;
    done_at = t;
  };
  BulkSender sender(*conn, 4'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(60));
  ASSERT_EQ(delivered, 4'000'000u);
  const double mbps = 4'000'000 * 8.0 / done_at.to_seconds() / 1e6;
  EXPECT_GT(mbps, 7.0);
  EXPECT_LT(mbps, 10.0);
}

TEST(EndToEndTest, TwoHomogeneousPathsAggregate) {
  // 5 + 5 Mbps must clearly beat a single 5 Mbps path.
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(5));
  tb.lte = lte_profile(Rate::mbps(5));
  tb.conn.delayed_secondary_join = false;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  std::uint64_t delivered = 0;
  TimePoint done_at;
  conn->on_deliver = [&](std::uint64_t b, TimePoint t) {
    delivered += b;
    done_at = t;
  };
  BulkSender sender(*conn, 4'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(60));
  ASSERT_EQ(delivered, 4'000'000u);
  const double mbps = 4'000'000 * 8.0 / done_at.to_seconds() / 1e6;
  EXPECT_GT(mbps, 6.5);  // aggregation effective
}

TEST(PaperClaimTest, EcfBeatsDefaultOnHeterogeneousStreaming) {
  StreamingParams p;
  p.wifi_mbps = 0.3;
  p.lte_mbps = 8.6;
  p.video = Duration::seconds(120);
  p.scheduler = "default";
  const auto def = run_streaming(p);
  p.scheduler = "ecf";
  const auto ecf = run_streaming(p);
  EXPECT_GT(ecf.mean_throughput_mbps, def.mean_throughput_mbps);
  // ECF shrinks the last-packet gap (fast path no longer idles at tails).
  EXPECT_LT(ecf.last_packet_gap.quantile(0.5), def.last_packet_gap.quantile(0.5));
}

TEST(PaperClaimTest, SchedulersEquivalentOnHomogeneousStreaming) {
  StreamingParams p;
  p.wifi_mbps = 4.2;
  p.lte_mbps = 4.2;
  p.video = Duration::seconds(120);
  p.scheduler = "default";
  const auto def = run_streaming(p);
  p.scheduler = "ecf";
  const auto ecf = run_streaming(p);
  // Paper: "obtaining the same performance in homogeneous environments".
  EXPECT_NEAR(ecf.mean_bitrate_mbps, def.mean_bitrate_mbps,
              0.25 * def.mean_bitrate_mbps + 0.3);
}

TEST(PaperClaimTest, DisablingIdleResetHelpsDefault) {
  // Paper Fig. 6 premise: the CWND reset after idle costs throughput.
  StreamingParams p;
  p.wifi_mbps = 0.7;
  p.lte_mbps = 8.6;
  p.video = Duration::seconds(120);
  p.idle_cwnd_reset = true;
  const auto with_reset = run_streaming(p);
  p.idle_cwnd_reset = false;
  const auto without_reset = run_streaming(p);
  // The definitive reset events must vanish; throughput for a single ABR
  // trajectory is path-dependent (tier lock-in), so only bound the loss —
  // the Fig. 6 grid-average shape is validated by bench_fig06_cwnd_reset.
  EXPECT_GT(without_reset.mean_throughput_mbps, with_reset.mean_throughput_mbps * 0.8);
  EXPECT_LT(without_reset.iw_resets_lte, with_reset.iw_resets_lte);
}

TEST(PaperClaimTest, EcfReducesIwResets) {
  StreamingParams p;
  p.wifi_mbps = 0.3;
  p.lte_mbps = 8.6;
  p.video = Duration::seconds(120);
  p.scheduler = "default";
  const auto def = run_streaming(p);
  p.scheduler = "ecf";
  const auto ecf = run_streaming(p);
  EXPECT_LE(ecf.iw_resets_lte, def.iw_resets_lte);
}

TEST(PaperClaimTest, FractionOnFastPathNearIdealForEcf) {
  StreamingParams p;
  p.wifi_mbps = 0.3;
  p.lte_mbps = 8.6;
  p.video = Duration::seconds(120);
  p.scheduler = "ecf";
  const auto r = run_streaming(p);
  const double ideal = ideal_fast_fraction(8.6, 0.3);
  EXPECT_NEAR(r.fraction_fast, ideal, 0.08);
}

TEST(DownloadTest, CompletionTimeMonotoneInSize) {
  DownloadParams p;
  p.wifi_mbps = 1;
  p.lte_mbps = 5;
  // Strict per-step monotonicity can wobble near the send-buffer boundary
  // (the scheduler's slow-path commitment changes shape); require growth
  // over a 4x size step instead.
  std::vector<Duration> completions;
  for (std::uint64_t kb : {64, 128, 256, 512, 1024, 2048}) {
    p.bytes = kb * 1024;
    completions.push_back(run_download(p).completion);
  }
  for (std::size_t i = 2; i < completions.size(); ++i) {
    EXPECT_GT(completions[i], completions[i - 2]) << "index " << i;
  }
}

TEST(DownloadTest, FasterLteShortensLargeDownloads) {
  DownloadParams p;
  p.wifi_mbps = 1;
  p.bytes = 1024 * 1024;
  p.lte_mbps = 2;
  const auto slow = run_download(p);
  p.lte_mbps = 10;
  const auto fast = run_download(p);
  EXPECT_LT(fast.completion, slow.completion);
}

TEST(DownloadTest, EcfNeverMuchWorseThanDefault) {
  // Paper Section 5.4: "ECF does no worse statistically than the default".
  for (double lte : {2.0, 5.0, 10.0}) {
    DownloadParams p;
    p.wifi_mbps = 1;
    p.lte_mbps = lte;
    p.bytes = 512 * 1024;
    p.scheduler = "default";
    const auto def = run_download(p);
    p.scheduler = "ecf";
    const auto ecf = run_download(p);
    EXPECT_LT(ecf.completion.to_seconds(), def.completion.to_seconds() * 1.15)
        << "lte=" << lte;
  }
}

TEST(WebRunTest, CompletesAndCollectsDistributions) {
  WebRunParams p;
  p.wifi_mbps = 1;
  p.lte_mbps = 5;
  p.runs = 1;
  const auto r = run_web(p);
  EXPECT_EQ(r.object_times.count(), 107u);
  EXPECT_GT(r.ooo_delay.count(), 100u);
  EXPECT_GT(r.mean_page_load_s, 0.0);
}

TEST(WebRunTest, EcfImprovesHeterogeneousObjectTimes) {
  WebRunParams p;
  p.wifi_mbps = 1;
  p.lte_mbps = 10;
  p.runs = 1;
  p.scheduler = "default";
  const auto def = run_web(p);
  p.scheduler = "ecf";
  const auto ecf = run_web(p);
  // Paper Fig. 20(c): ECF never does worse on object completion; a single
  // run carries ~20% tail noise, so bound the regression — the full
  // distribution comparison is bench_fig20_web_completion.
  EXPECT_LT(ecf.object_times.quantile(0.9), def.object_times.quantile(0.9) * 1.25);
  EXPECT_LT(ecf.object_times.mean(), def.object_times.mean() * 1.25);
}

TEST(StreamingRunnerTest, TracesCollectedWhenRequested) {
  StreamingParams p;
  p.wifi_mbps = 0.3;
  p.lte_mbps = 8.6;
  p.video = Duration::seconds(60);
  p.collect_traces = true;
  const auto r = run_streaming(p);
  EXPECT_FALSE(r.cwnd_wifi.empty());
  EXPECT_FALSE(r.cwnd_lte.empty());
  EXPECT_FALSE(r.sndbuf_wifi.empty());
  EXPECT_GT(r.cwnd_lte.max_value(), 10.0);
}

TEST(StreamingRunnerTest, VariableBandwidthTraceApplies) {
  StreamingParams p;
  p.video = Duration::seconds(60);
  p.wifi_mbps = 1.0;
  p.lte_mbps = 1.0;
  p.wifi_trace = {{Duration::zero(), Rate::mbps(0.3)},
                  {Duration::seconds(30), Rate::mbps(8.6)}};
  const auto r = run_streaming(p);
  EXPECT_GT(r.chunks_fetched, 5);
}

TEST(StreamingRunnerTest, AveragingMergesRuns) {
  StreamingParams p;
  p.wifi_mbps = 1.1;
  p.lte_mbps = 8.6;
  p.video = Duration::seconds(60);
  const auto avg = run_streaming_avg(p, 2);
  const auto one = run_streaming(p);
  EXPECT_GT(avg.ooo_delay.count(), one.ooo_delay.count());
}

TEST(StreamingRunnerTest, MeasuredRttsReproduceTable2Shape) {
  // Paper Table 2: RTT decreases with bandwidth; WiFi < LTE at equal rate.
  StreamingParams p;
  p.video = Duration::seconds(60);
  p.wifi_mbps = 0.3;
  p.lte_mbps = 0.3;
  const auto slow = run_streaming(p);
  p.wifi_mbps = 8.6;
  p.lte_mbps = 8.6;
  const auto fast = run_streaming(p);
  EXPECT_GT(slow.mean_rtt_wifi_ms, 400.0);   // paper: 969 ms
  EXPECT_LT(fast.mean_rtt_wifi_ms, 150.0);   // paper: 40 ms
  EXPECT_LT(fast.mean_rtt_wifi_ms, fast.mean_rtt_lte_ms);
}

}  // namespace
}  // namespace mps
