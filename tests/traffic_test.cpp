// Tests for the competing-traffic engine (src/traffic/): fairness metrics
// against hand-computed values, end-to-end engine behaviour, cross-traffic
// contention, serial == parallel determinism of the bench_fairness churn
// cell, and invariant-cleanliness of churn runs under the checker.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "check/stress.h"
#include "exp/sweep.h"
#include "obs/recorder.h"
#include "traffic/engine.h"
#include "traffic/fairness.h"

namespace mps {
namespace {

// --- fairness.h -------------------------------------------------------------

TEST(JainIndex, EqualSharesAreFair) {
  EXPECT_DOUBLE_EQ(jain_index({1.0, 1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({5.5, 5.5}), 1.0);
}

TEST(JainIndex, HandComputedCases) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42 = 6/7
  EXPECT_DOUBLE_EQ(jain_index({1.0, 2.0, 3.0}), 6.0 / 7.0);
  // One starved flow out of two: (10)^2 / (2 * 100) = 0.5
  EXPECT_DOUBLE_EQ(jain_index({10.0, 0.0}), 0.5);
  // k of n flows sharing equally scores k/n: 2 of 4.
  EXPECT_DOUBLE_EQ(jain_index({3.0, 3.0, 0.0, 0.0}), 0.5);
}

TEST(JainIndex, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_index({7.0}), 1.0);        // single flow
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);           // no flows: vacuously fair
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);   // all starved: equal shares
}

TEST(FairnessSummary, AggregatesMatchInputs) {
  const FairnessSummary s = fairness_summary({4.0, 1.0, 3.0});
  EXPECT_EQ(s.flows, 3u);
  EXPECT_DOUBLE_EQ(s.total, 8.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.jain, jain_index({4.0, 1.0, 3.0}));
}

TEST(LinkUtilization, SumsAcrossMuxedFlows) {
  // Three flows muxed over an 18 Mbps aggregate: utilization is computed
  // from the summed goodput, not per-flow.
  const double total = 6.0 + 2.0 + 1.0;
  EXPECT_DOUBLE_EQ(link_utilization(total, 18.0), 0.5);
  EXPECT_DOUBLE_EQ(link_utilization(0.0, 18.0), 0.0);
  EXPECT_DOUBLE_EQ(link_utilization(9.0, 0.0), 0.0);   // degenerate capacity
  EXPECT_DOUBLE_EQ(link_utilization(9.0, -1.0), 0.0);
}

// --- engine -----------------------------------------------------------------

ScenarioSpec no_churn_spec(int flows, const std::string& sched = "ecf") {
  ScenarioSpec s;
  s.name = "traffic-test";
  s.paths.push_back(wifi_path(8.0));
  s.paths.push_back(lte_path(10.0));
  s.scheduler = sched;
  s.traffic.enabled = true;
  s.traffic.flows = flows;
  s.traffic.arrival_rate_per_s = 0.0;  // no churn: initial flows only
  s.traffic.flow_bytes = 64 * 1024;
  s.traffic.size_dist = "fixed";
  s.traffic.duration_s = 6.0;
  s.seed = 11;
  return s;
}

TEST(TrafficEngine, NoChurnFlowsAllComplete) {
  const TrafficResult res = run_traffic(no_churn_spec(3));
  EXPECT_EQ(res.started, 3u);
  EXPECT_EQ(res.completed, 3u);
  EXPECT_EQ(res.churned, 0u);
  EXPECT_EQ(res.completion_s.count(), 3u);
  EXPECT_GT(res.aggregate_goodput_mbps, 0.0);
  EXPECT_GT(res.jain, 0.0);
  EXPECT_LE(res.jain, 1.0);
  // 3 x 64 KiB over 18 Mbps nominal finishes far inside 6 s.
  EXPECT_LT(res.completion_s.max(), 6.0);
  for (const TrafficFlowRecord& f : res.flows) {
    EXPECT_TRUE(f.completed);
    EXPECT_EQ(f.delivered, f.bytes);
  }
}

TEST(TrafficEngine, RepeatRunsAreBitExact) {
  const ScenarioSpec spec = fairness_cell_spec("ecf", 4, 6.0, 65536);
  const TrafficResult a = run_traffic(spec);
  const TrafficResult b = run_traffic(spec);
  EXPECT_EQ(a.started, b.started);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.churned, b.churned);
  EXPECT_EQ(a.orphans, b.orphans);
  EXPECT_EQ(a.aggregate_goodput_mbps, b.aggregate_goodput_mbps);  // bitwise
  EXPECT_EQ(a.jain, b.jain);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].bytes, b.flows[i].bytes);
    EXPECT_EQ(a.flows[i].arrival_s, b.flows[i].arrival_s);
    EXPECT_EQ(a.flows[i].delivered, b.flows[i].delivered);
    EXPECT_EQ(a.flows[i].completion_s, b.flows[i].completion_s);
  }
}

TEST(TrafficEngine, CrossTrafficSlowsMptcpFlows) {
  ScenarioSpec quiet = no_churn_spec(4);
  // Large enough that the flows are still running once the cross flow has
  // ramped out of slow start and the LTE queue actually builds — tiny flows
  // finish before any contention materializes.
  quiet.traffic.flow_bytes = 512 * 1024;
  quiet.traffic.duration_s = 12.0;
  ScenarioSpec contended = quiet;
  contended.traffic.cross = {CrossTrafficSpec{1, 1, 0.0}};  // saturate LTE
  // Cross forks are drawn after the MPTCP flows' forks, so both runs give
  // the MPTCP flows identical plans; only the contention differs.
  const TrafficResult q = run_traffic(quiet);
  const TrafficResult c = run_traffic(contended);
  ASSERT_EQ(q.completed, 4u);
  ASSERT_EQ(c.completed, 4u);
  EXPECT_GT(c.completion_s.mean(), q.completion_s.mean());
  // mptcp_goodput_mbps is delivered-over-run-duration, identical when every
  // flow completes in both runs — per-flow goodput (over each flow's own
  // lifetime) is where contention shows.
  double q_flow_goodput = 0.0;
  double c_flow_goodput = 0.0;
  for (const TrafficFlowRecord& f : q.flows) {
    if (!f.cross) q_flow_goodput += f.goodput_mbps;
  }
  for (const TrafficFlowRecord& f : c.flows) {
    if (!f.cross) c_flow_goodput += f.goodput_mbps;
  }
  EXPECT_LT(c_flow_goodput, q_flow_goodput);
  EXPECT_GT(c.cross_goodput_mbps, 0.0);
  EXPECT_DOUBLE_EQ(q.cross_goodput_mbps, 0.0);
}

TEST(TrafficEngine, RecorderInstrumentsMatchResult) {
  FlightRecorder recorder;
  ScenarioSpec spec = fairness_cell_spec("ecf", 2, 5.0, 65536);
  const TrafficResult res = run_traffic(spec, &recorder);
  const MetricsRegistry& m = recorder.metrics();
  EXPECT_EQ(m.total("traffic.flows_started"), res.started);
  EXPECT_EQ(m.total("traffic.flows_completed"), res.completed);
  const Instrument* fct = m.find("traffic.completion_s", MetricLabels{});
  ASSERT_NE(fct, nullptr);
  EXPECT_EQ(fct->hist.count, res.completed);
}

// --- determinism: bench_fairness churn cell, serial vs parallel -------------

// Restores MPS_BENCH_JOBS on scope exit (same pattern as sweep_test.cpp).
class ScopedJobsEnv {
 public:
  explicit ScopedJobsEnv(const char* value) {
    const char* old = std::getenv("MPS_BENCH_JOBS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("MPS_BENCH_JOBS", value, 1);
  }
  ~ScopedJobsEnv() {
    if (had_old_) {
      ::setenv("MPS_BENCH_JOBS", old_.c_str(), 1);
    } else {
      ::unsetenv("MPS_BENCH_JOBS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

std::vector<TrafficResult> run_fairness_row(const char* jobs) {
  ScopedJobsEnv env(jobs);
  const std::vector<std::string> scheds = {"default", "ecf", "daps", "blest"};
  return sweep_map<TrafficResult>(scheds.size(), [&](std::size_t i) {
    return run_traffic(fairness_cell_spec(scheds[i], 4, 6.0, 65536));
  });
}

TEST(TrafficDeterminism, FourFlowChurnCellSerialEqualsParallel) {
  const auto serial = run_fairness_row("1");
  const auto parallel = run_fairness_row("4");
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("scheduler index " + std::to_string(i));
    EXPECT_EQ(serial[i].started, parallel[i].started);
    EXPECT_EQ(serial[i].completed, parallel[i].completed);
    EXPECT_EQ(serial[i].orphans, parallel[i].orphans);
    EXPECT_EQ(serial[i].aggregate_goodput_mbps, parallel[i].aggregate_goodput_mbps);
    EXPECT_EQ(serial[i].jain, parallel[i].jain);
    EXPECT_EQ(serial[i].completion_s.mean(), parallel[i].completion_s.mean());
    ASSERT_EQ(serial[i].flows.size(), parallel[i].flows.size());
    for (std::size_t f = 0; f < serial[i].flows.size(); ++f) {
      EXPECT_EQ(serial[i].flows[f].delivered, parallel[i].flows[f].delivered);
      EXPECT_EQ(serial[i].flows[f].completion_s, parallel[i].flows[f].completion_s);
    }
  }
}

// --- invariants under churn -------------------------------------------------

TEST(TrafficInvariants, ChurnStressCellIsClean) {
  StressCell cell;
  cell.profile = "churn";
  cell.scheduler = "ecf";
  cell.seed = 3;
  const StressCellResult res = run_stress_cell(cell);
  EXPECT_TRUE(res.ok()) << [&] {
    std::string all;
    for (const auto& v : res.violations) all += v + "\n";
    return all;
  }();
  EXPECT_GT(res.checks_run, 0u);
}

}  // namespace
}  // namespace mps
