// Tests for src/net: links, paths, demux, bandwidth schedules, wild profiles.
#include <gtest/gtest.h>

#include <vector>

#include "net/link.h"
#include "net/mux.h"
#include "net/path.h"
#include "net/varbw.h"
#include "net/wild.h"
#include "sim/simulator.h"

namespace mps {
namespace {

Packet data_packet(std::uint32_t payload = 1428, std::uint64_t seq = 0) {
  Packet p;
  p.payload = payload;
  p.subflow_seq = seq;
  return p;
}

class LinkTest : public ::testing::Test {
 protected:
  Simulator sim;
  std::vector<std::pair<TimePoint, Packet>> delivered;

  void attach(Link& link) {
    link.set_deliver([this](Packet p) { delivered.emplace_back(sim.now(), p); });
  }
};

TEST_F(LinkTest, DeliversAfterSerializationPlusPropagation) {
  LinkConfig cfg;
  cfg.rate = Rate::mbps(8);  // 1488 bytes -> 1.488 ms
  cfg.prop_delay = Duration::millis(10);
  Link link(sim, cfg);
  attach(link);

  link.send(data_packet());
  sim.run();

  ASSERT_EQ(delivered.size(), 1u);
  const Duration expected = cfg.rate.transmit_time(1428 + kHeaderBytes) + cfg.prop_delay;
  EXPECT_EQ((delivered[0].first - TimePoint::origin()).ns(), expected.ns());
}

TEST_F(LinkTest, SerializesBackToBack) {
  LinkConfig cfg;
  cfg.rate = Rate::mbps(8);
  cfg.prop_delay = Duration::zero();
  Link link(sim, cfg);
  attach(link);

  link.send(data_packet(1428, 1));
  link.send(data_packet(1428, 2));
  sim.run();

  ASSERT_EQ(delivered.size(), 2u);
  const Duration tx = cfg.rate.transmit_time(1428 + kHeaderBytes);
  EXPECT_EQ((delivered[1].first - delivered[0].first).ns(), tx.ns());
}

TEST_F(LinkTest, PreservesFifoOrder) {
  LinkConfig cfg;
  Link link(sim, cfg);
  attach(link);
  for (std::uint64_t i = 0; i < 20; ++i) link.send(data_packet(1428, i));
  sim.run();
  ASSERT_EQ(delivered.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(delivered[i].second.subflow_seq, i);
}

TEST_F(LinkTest, DropsWhenQueueFull) {
  LinkConfig cfg;
  cfg.queue_packets = 5;
  Link link(sim, cfg);
  attach(link);
  // 1 in service + 5 queued fit; the rest drop.
  for (int i = 0; i < 10; ++i) link.send(data_packet());
  sim.run();
  EXPECT_EQ(delivered.size(), 6u);
  EXPECT_EQ(link.stats().drops_queue, 4u);
  EXPECT_EQ(link.stats().packets_delivered, 6u);
}

TEST_F(LinkTest, RandomLossDropsApproximately) {
  LinkConfig cfg;
  cfg.rate = Rate::gbps(10);
  cfg.loss_rate = 0.3;
  cfg.queue_packets = 100000;
  Link link(sim, cfg);
  link.set_rng(Rng(123));
  attach(link);
  const int n = 20000;
  for (int i = 0; i < n; ++i) link.send(data_packet());
  sim.run();
  EXPECT_NEAR(static_cast<double>(link.stats().drops_random) / n, 0.3, 0.02);
}

TEST_F(LinkTest, ZeroLossNeverDrops) {
  LinkConfig cfg;
  cfg.rate = Rate::gbps(10);
  cfg.queue_packets = 100000;
  Link link(sim, cfg);
  attach(link);
  for (int i = 0; i < 5000; ++i) link.send(data_packet());
  sim.run();
  EXPECT_EQ(link.stats().drops_random, 0u);
  EXPECT_EQ(link.stats().packets_delivered, 5000u);
}

TEST_F(LinkTest, RateChangeAppliesToNextTransmission) {
  LinkConfig cfg;
  cfg.rate = Rate::mbps(1);
  cfg.prop_delay = Duration::zero();
  Link link(sim, cfg);
  attach(link);
  link.send(data_packet());
  link.set_rate(Rate::mbps(100));
  link.send(data_packet());
  sim.run();
  ASSERT_EQ(delivered.size(), 2u);
  const Duration first = delivered[0].first - TimePoint::origin();
  const Duration second_tx = delivered[1].first - delivered[0].first;
  // First at 1 Mbps (11.9 ms), second at 100 Mbps (0.119 ms).
  EXPECT_NEAR(first.to_seconds(), 0.0119, 1e-4);
  EXPECT_NEAR(second_tx.to_seconds(), 0.000119, 2e-5);
}

TEST_F(LinkTest, ZeroRateParksPacketUntilRateRestored) {
  LinkConfig cfg;
  cfg.rate = Rate::zero();
  cfg.prop_delay = Duration::zero();
  Link link(sim, cfg);
  attach(link);
  link.send(data_packet());
  sim.after(Duration::millis(350), [&] { link.set_rate(Rate::mbps(100)); });
  sim.run();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_GE(delivered[0].first.to_seconds(), 0.35);
  EXPECT_LT(delivered[0].first.to_seconds(), 0.6);
}

TEST(PathTest, ProfilesMatchPaperBaseRtts) {
  EXPECT_LT(wifi_profile(Rate::mbps(8.6)).rtt_base, lte_profile(Rate::mbps(8.6)).rtt_base);
  EXPECT_EQ(wifi_profile(Rate::mbps(1)).name, "wifi");
  EXPECT_EQ(lte_profile(Rate::mbps(1)).name, "lte");
}

TEST(PathTest, DownAndUpShareBaseDelay) {
  Simulator sim;
  Path path(sim, wifi_profile(Rate::mbps(10)));
  EXPECT_EQ(path.down().prop_delay().ns() + path.up().prop_delay().ns(),
            path.rtt_base().ns());
}

TEST(PathTest, SetDownRate) {
  Simulator sim;
  Path path(sim, wifi_profile(Rate::mbps(10)));
  path.set_down_rate(Rate::mbps(2.5));
  EXPECT_DOUBLE_EQ(path.down_rate().to_mbps(), 2.5);
}

TEST(MuxTest, RoutesByConnId) {
  Mux mux;
  int a = 0, b = 0;
  mux.add_route(1, [&](Packet) { ++a; });
  mux.add_route(2, [&](Packet) { ++b; });
  Packet p;
  p.conn_id = 1;
  mux.dispatch(p);
  p.conn_id = 2;
  mux.dispatch(p);
  mux.dispatch(p);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(MuxTest, OrphansCountedNotCrashed) {
  Mux mux;
  Packet p;
  p.conn_id = 42;
  mux.dispatch(p);
  EXPECT_EQ(mux.orphan_count(), 1u);
}

TEST(MuxTest, RemoveRouteOrphansLatePackets) {
  Mux mux;
  int hits = 0;
  mux.add_route(7, [&](Packet) { ++hits; });
  mux.remove_route(7);
  Packet p;
  p.conn_id = 7;
  mux.dispatch(p);
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(mux.orphan_count(), 1u);
}

TEST(VarBwTest, ScheduleAppliesRatesAtOffsets) {
  Simulator sim;
  Path path(sim, wifi_profile(Rate::mbps(1)));
  BandwidthSchedule sched(sim, path,
                          {{Duration::zero(), Rate::mbps(2)},
                           {Duration::seconds(1), Rate::mbps(5)},
                           {Duration::seconds(2), Rate::mbps(3)}});
  sched.start();
  sim.run_until(TimePoint::origin() + Duration::millis(500));
  EXPECT_DOUBLE_EQ(path.down_rate().to_mbps(), 2.0);
  sim.run_until(TimePoint::origin() + Duration::millis(1500));
  EXPECT_DOUBLE_EQ(path.down_rate().to_mbps(), 5.0);
  sim.run_until(TimePoint::origin() + Duration::millis(2500));
  EXPECT_DOUBLE_EQ(path.down_rate().to_mbps(), 3.0);
}

TEST(VarBwTest, RandomTraceCoversDurationAndLevels) {
  Rng rng(5);
  const std::vector<Rate> levels = {Rate::mbps(0.3), Rate::mbps(1.1), Rate::mbps(8.6)};
  const auto trace = make_random_bandwidth_trace(rng, levels, Duration::seconds(40),
                                                 Duration::seconds(1200));
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front().at.ns(), 0);
  EXPECT_LT(trace.back().at, Duration::seconds(1200));
  for (const auto& c : trace) {
    bool known = false;
    for (const Rate& l : levels) known = known || l.bps() == c.rate.bps();
    EXPECT_TRUE(known);
  }
  // Mean interval ~40 s over 1200 s -> ~30 changes; generously bounded.
  EXPECT_GT(trace.size(), 10u);
  EXPECT_LT(trace.size(), 90u);
}

TEST(VarBwTest, TraceIsDeterministicPerSeed) {
  const std::vector<Rate> levels = {Rate::mbps(1), Rate::mbps(2)};
  Rng a(9), b(9);
  const auto ta = make_random_bandwidth_trace(a, levels, Duration::seconds(40),
                                              Duration::seconds(600));
  const auto tb = make_random_bandwidth_trace(b, levels, Duration::seconds(40),
                                              Duration::seconds(600));
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].at.ns(), tb[i].at.ns());
    EXPECT_EQ(ta[i].rate.bps(), tb[i].rate.bps());
  }
}

TEST(WildTest, NineRunsSortedByWifiRtt) {
  const auto runs = wild_streaming_runs();
  ASSERT_EQ(runs.size(), 9u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_GT(runs[i].wifi.rtt_base, runs[i - 1].wifi.rtt_base);
    EXPECT_EQ(runs[i].run_index, static_cast<int>(i) + 1);
  }
  // LTE stays roughly constant (paper Fig. 22a).
  for (const auto& r : runs) {
    EXPECT_EQ(r.lte.rtt_base.ns(), Duration::millis(70).ns());
  }
}

TEST(WildTest, WebProfileIsHeterogeneous) {
  const auto p = wild_web_profile();
  EXPECT_GT(p.wifi.rtt_base, p.lte.rtt_base);
  EXPECT_LT(p.wifi.down_rate.to_mbps(), p.lte.down_rate.to_mbps());
}

}  // namespace
}  // namespace mps
