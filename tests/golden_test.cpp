// Golden-corpus test: every preset under scenarios/*.json is run at its
// in-file seed and the rendered summary (exactly what tools/mps_run prints,
// via the shared exp/scenario_run.h format_outcome) is compared byte-for-byte
// against tests/goldens/<stem>.golden. Any change to scheduler behaviour,
// RNG fork order, or output formatting shows up here as a diff.
//
// To keep ctest fast, non-traffic presets run at smoke scale before the
// golden is rendered: workload.runs=1, streaming video_s=5, download
// bytes=65536. Traffic presets run exactly as written — they are already
// sized for short runs and their churn plan depends on every field.
//
// Refreshing after an intentional behaviour change:
//   MPS_UPDATE_GOLDENS=1 ./build/tests/golden_test
// then review the diff under tests/goldens/ and commit it with the change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/scenario_run.h"
#include "obs/recorder.h"

namespace mps {
namespace {

namespace fs = std::filesystem;

const fs::path kScenarioDir = fs::path(MPS_SOURCE_DIR) / "scenarios";
const fs::path kGoldenDir = fs::path(MPS_SOURCE_DIR) / "tests" / "goldens";

bool update_goldens() {
  const char* v = std::getenv("MPS_UPDATE_GOLDENS");
  return v != nullptr && std::string(v) == "1";
}

std::vector<fs::path> scenario_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(kScenarioDir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Smoke scale for non-traffic presets (see file header). Traffic presets are
// left untouched: the arrival plan draws one RNG fork per planned flow, so
// every traffic field is load-bearing for the golden.
void apply_smoke_overrides(ScenarioSpec& spec) {
  if (spec.traffic.enabled) return;
  spec.workload.runs = 1;
  if (spec.workload.kind == WorkloadKind::kStream) spec.workload.video_s = 5.0;
  if (spec.workload.kind == WorkloadKind::kDownload) spec.workload.bytes = 65536;
}

// Mirrors tools/mps_run.cpp main(): name line, outcome, optional recorder
// summary. Kept in lockstep so the goldens certify the CLI's actual output.
std::string render(const ScenarioSpec& spec) {
  std::string out;
  if (!spec.name.empty()) out += "scenario: " + spec.name + "\n";

  ScenarioRunOptions opts;
  FlightRecorder recorder;
  if (spec.record.summarize &&
      (spec.traffic.enabled || spec.workload.kind == WorkloadKind::kStream)) {
    opts.recorder = &recorder;
  }
  const ScenarioOutcome outcome = run_scenario(spec, opts);
  out += format_outcome(spec, outcome);
  if (opts.recorder) {
    out += "\n--- flight recorder ---\n";
    std::ostringstream report;
    recorder.summarize(report);
    out += report.str();
  }
  return out;
}

TEST(GoldenCorpus, EveryScenarioMatchesGolden) {
  const auto files = scenario_files();
  ASSERT_FALSE(files.empty()) << "no scenario presets found in " << kScenarioDir;

  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    ScenarioSpec spec;
    ASSERT_NO_THROW(spec = scenario_from_json(Json::parse(slurp(file))))
        << "preset failed to parse: " << file;
    apply_smoke_overrides(spec);

    const std::string actual = render(spec);
    const fs::path golden = kGoldenDir / (file.stem().string() + ".golden");

    if (update_goldens()) {
      std::ofstream out(golden, std::ios::binary);
      out << actual;
      continue;
    }

    ASSERT_TRUE(fs::exists(golden))
        << "missing golden " << golden << "\n"
        << "run: MPS_UPDATE_GOLDENS=1 ./tests/golden_test  (then review + commit)";
    const std::string expected = slurp(golden);
    EXPECT_EQ(expected, actual)
        << "output drifted from " << golden << "\n"
        << "if intentional: MPS_UPDATE_GOLDENS=1 ./tests/golden_test, review, commit";
  }
}

// A golden with no matching preset is dead weight that silently stops being
// checked — fail loudly instead.
TEST(GoldenCorpus, NoStaleGoldens) {
  for (const auto& entry : fs::directory_iterator(kGoldenDir)) {
    if (entry.path().extension() != ".golden") continue;
    const fs::path preset = kScenarioDir / (entry.path().stem().string() + ".json");
    EXPECT_TRUE(fs::exists(preset))
        << "stale golden " << entry.path() << " has no preset " << preset;
  }
}

// Re-running a preset in the same process must be bit-exact — the corpus
// would otherwise depend on test ordering.
TEST(GoldenCorpus, RenderIsDeterministic) {
  const auto files = scenario_files();
  ASSERT_FALSE(files.empty());
  ScenarioSpec spec = scenario_from_json(Json::parse(slurp(files.front())));
  apply_smoke_overrides(spec);
  EXPECT_EQ(render(spec), render(spec));
}

}  // namespace
}  // namespace mps
