// Tests for src/tcp: RTT estimation and the Subflow sender state machine,
// driven through a real path + receiver loop.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/path.h"
#include "sim/simulator.h"
#include "tcp/cc_reno.h"
#include "tcp/rtt.h"
#include "tcp/subflow.h"

namespace mps {
namespace {

// --- RttEstimator -----------------------------------------------------------

TEST(RttEstimatorTest, FirstSamplePerRfc6298) {
  RttEstimator est;
  est.add_sample(Duration::millis(100));
  EXPECT_EQ(est.srtt().ns(), Duration::millis(100).ns());
  EXPECT_EQ(est.rttvar().ns(), Duration::millis(50).ns());
  // RTO = 100 + 4*50 = 300 ms.
  EXPECT_EQ(est.rto().ns(), Duration::millis(300).ns());
}

TEST(RttEstimatorTest, EwmaSmoothing) {
  RttEstimator est;
  est.add_sample(Duration::millis(100));
  est.add_sample(Duration::millis(200));
  // srtt = 7/8*100 + 1/8*200 = 112.5 ms
  EXPECT_NEAR(est.srtt().to_millis(), 112.5, 0.01);
  // rttvar = 3/4*50 + 1/4*|200-100| = 62.5 ms
  EXPECT_NEAR(est.rttvar().to_millis(), 62.5, 0.01);
}

TEST(RttEstimatorTest, RtoClampedToMinimum) {
  RttEstimator est;
  for (int i = 0; i < 50; ++i) est.add_sample(Duration::millis(10));
  EXPECT_EQ(est.rto().ns(), Duration::millis(200).ns());  // TCP_RTO_MIN
}

TEST(RttEstimatorTest, InitialRtoOneSecond) {
  RttEstimator est;
  EXPECT_EQ(est.rto().ns(), Duration::seconds(1).ns());
}

TEST(RttEstimatorTest, MinAndLifetimeTrackAllSamples) {
  RttEstimator est;
  est.add_sample(Duration::millis(30));
  est.add_sample(Duration::millis(10));
  est.add_sample(Duration::millis(20));
  EXPECT_EQ(est.min_rtt().ns(), Duration::millis(10).ns());
  EXPECT_EQ(est.lifetime().count(), 3u);
  EXPECT_NEAR(est.lifetime().mean(), 0.020, 1e-9);
}

TEST(RttEstimatorTest, StddevReflectsVariability) {
  RttEstimator stable, jittery;
  for (int i = 0; i < 16; ++i) {
    stable.add_sample(Duration::millis(100));
    jittery.add_sample(Duration::millis(i % 2 == 0 ? 50 : 150));
  }
  EXPECT_LT(stable.stddev().to_seconds(), 1e-6);
  EXPECT_GT(jittery.stddev().to_seconds(), 0.04);
}

TEST(RttEstimatorTest, NegativeSampleIgnored) {
  RttEstimator est;
  est.add_sample(Duration::millis(-5));
  EXPECT_FALSE(est.has_sample());
}

// --- Subflow harness ---------------------------------------------------------

// Minimal meta sink: acks everything immediately at the meta level.
class FakeSink final : public MetaSink {
 public:
  void on_subflow_deliver(std::uint32_t, std::uint64_t data_seq, std::uint32_t payload,
                          TimePoint) override {
    delivered_bytes += payload;
    data_ack = std::max(data_ack, data_seq + payload);
  }
  std::uint64_t meta_data_ack() const override { return data_ack; }
  std::uint64_t meta_rwnd() const override { return 64 << 20; }

  std::uint64_t delivered_bytes = 0;
  std::uint64_t data_ack = 0;
};

class SubflowHarness {
 public:
  explicit SubflowHarness(PathConfig path_config = wifi_profile(Rate::mbps(10)),
                          SubflowConfig sf_config = {})
      : path(sim, path_config),
        receiver(sim, 0, 0, path, &sink),
        subflow(sim, sf_config, path, std::make_unique<RenoCc>(), nullptr) {
    path.down().set_deliver([this](Packet p) { receiver.on_data_packet(p); });
    path.up().set_deliver([this](Packet p) { subflow.on_ack_packet(p); });
  }

  // Sends as much of [next_data_seq, total) as CWND allows; call repeatedly.
  void pump(std::uint64_t total_bytes) {
    while (subflow.can_send() && next_data_seq < total_bytes) {
      const std::uint32_t payload = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(subflow.mss(), total_bytes - next_data_seq));
      subflow.send_segment(next_data_seq, payload);
      next_data_seq += payload;
    }
  }

  // Runs the transfer of `total` bytes to completion (with periodic
  // pumping); the clock stops at delivery of the last byte.
  void transfer(std::uint64_t total, Duration deadline = Duration::seconds(120)) {
    std::function<void()> driver = [this, total, &driver] {
      if (sink.delivered_bytes >= total) {
        sim.request_stop();
        return;
      }
      pump(total);
      sim.after(Duration::millis(1), driver);
    };
    driver();
    sim.run_until(TimePoint::origin() + deadline);
  }

  Simulator sim;
  FakeSink sink;
  Path path;
  SubflowReceiver receiver;
  Subflow subflow;
  std::uint64_t next_data_seq = 0;
};

TEST(SubflowTest, SlowStartDoublesPerRtt) {
  SubflowHarness h;
  h.pump(10 * 1428);  // exactly IW
  EXPECT_FALSE(h.subflow.can_send());
  // One RTT plus the 10-segment serialization time, with margin.
  h.sim.run_until(TimePoint::origin() + h.path.rtt_base() + Duration::millis(25));
  // All 10 acked, +1 per ack in slow start.
  EXPECT_NEAR(h.subflow.cwnd(), 20.0, 0.01);
  EXPECT_EQ(h.subflow.inflight_segments(), 0u);
}

TEST(SubflowTest, TransferCompletesAtApproximatelyLinkRate) {
  SubflowHarness h(wifi_profile(Rate::mbps(10)));
  const std::uint64_t total = 4 * 1024 * 1024;
  h.transfer(total);
  ASSERT_EQ(h.sink.delivered_bytes, total);
  const double secs = h.sim.now().to_seconds();
  const double goodput_mbps = total * 8.0 / secs / 1e6;
  // Within 70-100% of the regulated 10 Mbps (slow start + header overhead).
  EXPECT_GT(goodput_mbps, 7.0);
  EXPECT_LT(goodput_mbps, 10.0);
}

TEST(SubflowTest, RttSamplesTrackPathRtt) {
  SubflowHarness h(wifi_profile(Rate::mbps(10)));
  h.transfer(200 * 1428);
  EXPECT_GT(h.subflow.stats().rtt_samples, 50u);
  // Base RTT 16 ms + queueing; srtt must be in a sane band.
  EXPECT_GT(h.subflow.srtt().to_millis(), 15.0);
  EXPECT_LT(h.subflow.srtt().to_millis(), 150.0);
}

TEST(SubflowTest, LossTriggersFastRecoveryNotRto) {
  PathConfig pc = wifi_profile(Rate::mbps(10));
  pc.queue_packets = 8;  // force overflow during slow start
  SubflowHarness h(pc);
  h.transfer(1000 * 1428);
  EXPECT_EQ(h.sink.delivered_bytes, 1000u * 1428u);
  EXPECT_GT(h.subflow.stats().fast_retransmits, 0u);
  EXPECT_EQ(h.subflow.stats().rto_events, 0u);
  EXPECT_GT(h.subflow.stats().retransmits, 0u);
}

TEST(SubflowTest, AllBytesDeliveredDespiteRandomLoss) {
  PathConfig pc = wifi_profile(Rate::mbps(10));
  pc.loss_rate = 0.02;
  SubflowHarness h(pc);
  h.path.down().set_rng(Rng(7));
  h.transfer(2000 * 1428, Duration::seconds(300));
  EXPECT_EQ(h.sink.delivered_bytes, 2000u * 1428u);
  EXPECT_GT(h.subflow.stats().retransmits, 10u);
}

TEST(SubflowTest, TailLossRecoveredByRto) {
  SubflowHarness h;
  // Send 5 segments; drop the last by shrinking the queue mid-flight is
  // fiddly — instead use a lossy one-shot: set 100% loss for the last send.
  h.pump(4 * 1428);
  h.path.down().set_loss_rate(1.0);
  h.path.down().set_rng(Rng(1));
  h.subflow.send_segment(4 * 1428, 1428);
  h.path.down().set_loss_rate(0.0);
  h.sim.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(h.sink.delivered_bytes, 5u * 1428u);
  EXPECT_GE(h.subflow.stats().rto_events, 1u);
}

TEST(SubflowTest, IdleResetRestoresInitialWindowAndKeepsSsthreshMemory) {
  SubflowConfig sc;
  sc.idle_cwnd_reset = true;
  SubflowHarness h(wifi_profile(Rate::mbps(10)), sc);
  h.transfer(500 * 1428);
  h.sim.run();  // drain in-flight acks so the window is quiescent
  const double cwnd_before = h.subflow.cwnd();
  ASSERT_GT(cwnd_before, 20.0);

  // Go idle well past the RTO, then poll (as the connection does).
  h.sim.run_until(h.sim.now() + Duration::seconds(5));
  h.subflow.poll();
  EXPECT_NEAR(h.subflow.cwnd(), 10.0, 0.01);
  EXPECT_EQ(h.subflow.stats().idle_resets, 1u);
  // RFC 2861: ssthresh remembers 3/4 of the achieved window.
  EXPECT_GE(h.subflow.ssthresh(), 0.75 * cwnd_before - 0.01);
  EXPECT_TRUE(h.subflow.in_slow_start());
}

TEST(SubflowTest, IdleResetDisabledKeepsWindow) {
  SubflowConfig sc;
  sc.idle_cwnd_reset = false;
  SubflowHarness h(wifi_profile(Rate::mbps(10)), sc);
  h.transfer(500 * 1428);
  h.sim.run();  // drain in-flight acks so the window is quiescent
  const double cwnd_before = h.subflow.cwnd();
  h.sim.run_until(h.sim.now() + Duration::seconds(5));
  h.subflow.poll();
  EXPECT_DOUBLE_EQ(h.subflow.cwnd(), cwnd_before);
  EXPECT_EQ(h.subflow.stats().idle_resets, 0u);
}

TEST(SubflowTest, IdleResetCountedOncePerIdlePeriod) {
  SubflowHarness h;
  h.transfer(500 * 1428);
  h.sim.run_until(h.sim.now() + Duration::seconds(5));
  h.subflow.poll();
  h.subflow.poll();
  h.subflow.poll();
  EXPECT_EQ(h.subflow.stats().idle_resets, 1u);
}

TEST(SubflowTest, PenalizeHalvesCwndOncePerRtt) {
  SubflowHarness h;
  h.transfer(500 * 1428);
  const double before = h.subflow.cwnd();
  h.subflow.penalize();
  EXPECT_NEAR(h.subflow.cwnd(), before / 2, 0.01);
  h.subflow.penalize();  // rate-limited: no further halving within one RTT
  EXPECT_NEAR(h.subflow.cwnd(), before / 2, 0.01);
  EXPECT_EQ(h.subflow.stats().penalizations, 1u);
}

TEST(SubflowTest, JoinDelayGatesEstablishment) {
  SubflowConfig sc;
  sc.join_delay = Duration::millis(80);
  Simulator sim;
  Path path(sim, lte_profile(Rate::mbps(10)));
  Subflow sf(sim, sc, path, std::make_unique<RenoCc>(), nullptr);
  EXPECT_FALSE(sf.established());
  EXPECT_FALSE(sf.can_send());
  sim.run_until(TimePoint::origin() + Duration::millis(81));
  EXPECT_TRUE(sf.established());
  EXPECT_TRUE(sf.can_send());
}

TEST(SubflowTest, RttEstimateFallsBackToPathBase) {
  Simulator sim;
  Path path(sim, lte_profile(Rate::mbps(10)));
  Subflow sf(sim, SubflowConfig{}, path, std::make_unique<RenoCc>(), nullptr);
  EXPECT_EQ(sf.rtt_estimate().ns(), path.rtt_base().ns());
}

TEST(SubflowTest, AvailableCwndNeverNegative) {
  SubflowHarness h;
  h.pump(10 * 1428);
  EXPECT_GE(h.subflow.available_cwnd(), 0);
  EXPECT_EQ(h.subflow.inflight_segments(), 10u);
}

TEST(SubflowTest, ByteCountersTrackOriginalTransmissionsOnly) {
  SubflowHarness h;
  h.transfer(100 * 1428);
  EXPECT_EQ(h.subflow.stats().segments_sent, 100u);
  EXPECT_EQ(h.subflow.stats().bytes_sent, 100u * 1428u);
  EXPECT_EQ(h.subflow.stats().reinjected_segments, 0u);
}

TEST(SubflowTest, ReceiverDeliversSubflowInOrderAfterLoss) {
  PathConfig pc = wifi_profile(Rate::mbps(10));
  pc.queue_packets = 6;
  SubflowHarness h(pc);
  std::vector<std::uint64_t> seqs;
  // Track order at the sink via a richer sink: replace deliver hook by
  // checking monotone data_ack growth instead.
  h.transfer(500 * 1428);
  EXPECT_EQ(h.sink.data_ack, 500u * 1428u);
  EXPECT_EQ(h.receiver.ooo_held(), 0u);
}

TEST(SubflowTest, CwndNotInflatedWhenAppLimited) {
  SubflowHarness h;
  // Trickle one segment per RTT: app-limited, cwnd must stay near IW even
  // though every ack succeeds.
  for (int i = 0; i < 30; ++i) {
    h.subflow.send_segment(static_cast<std::uint64_t>(i) * 1428, 1428);
    h.sim.run_until(h.sim.now() + Duration::millis(40));
  }
  EXPECT_LT(h.subflow.cwnd(), 13.0);
}

}  // namespace
}  // namespace mps
