// Tests for the observability subsystem (src/obs): metrics registry
// semantics, the JSONL event schema, multi-listener hooks, and the flight
// recorder's scheduler decision log — including the replay contract that a
// recorded ECF decision's Algorithm 1 terms reproduce the live verdict.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "core/ecf.h"
#include "exp/testbed.h"
#include "obs/hook.h"
#include "obs/recorder.h"
#include "sched/registry.h"
#include "test_util.h"
#include "trace/collect.h"

namespace mps {
namespace {

MetricLabels labels(std::int64_t conn = -1, std::int64_t subflow = -1) {
  MetricLabels l;
  l.conn = conn;
  l.subflow = subflow;
  return l;
}

// --- metrics registry -------------------------------------------------------

TEST(MetricsTest, CounterSharedStorageAndDetachedNoop) {
  MetricsRegistry reg;
  Counter a = reg.counter("x.count", labels(1));
  Counter b = reg.counter("x.count", labels(1));  // same name+labels: shared
  Counter c = reg.counter("x.count", labels(2));  // different labels: distinct
  a.inc();
  b.inc(4);
  c.inc(7);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(reg.total("x.count"), 12u);

  Counter detached;  // default-constructed handle: every operation is a no-op
  EXPECT_FALSE(detached.attached());
  detached.inc(100);
  EXPECT_EQ(detached.value(), 0u);
}

TEST(MetricsTest, GaugeKeepsSeriesWhenEnabled) {
  MetricsRegistry reg;
  Gauge plain = reg.gauge("g.plain");
  reg.set_keep_series(true);
  Gauge traced = reg.gauge("g.traced", labels(-1, 0));

  plain.set(TimePoint::from_ns(0), 1.0);
  plain.set(TimePoint::from_ns(5), 2.0);
  traced.set(TimePoint::from_ns(0), 10.0);
  traced.set(TimePoint::from_ns(5), 20.0);

  EXPECT_DOUBLE_EQ(plain.value(), 2.0);
  EXPECT_EQ(reg.series("g.plain", {}), nullptr);  // created before keep_series

  const TimeSeries* ts = reg.series("g.traced", labels(-1, 0));
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->size(), 2u);
  EXPECT_DOUBLE_EQ(ts->points()[1].value, 20.0);
}

TEST(MetricsTest, HistogramAggregatesAndQuantiles) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("h.lat");
  for (double v : {0.5, 1.0, 2.0, 4.0, 8.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.5);

  const Instrument* inst = reg.find("h.lat", {});
  ASSERT_NE(inst, nullptr);
  EXPECT_DOUBLE_EQ(inst->hist.mean(), 3.1);
  EXPECT_DOUBLE_EQ(inst->hist.quantile(0.0), 0.5);  // exact min
  EXPECT_DOUBLE_EQ(inst->hist.quantile(1.0), 8.0);  // exact max
  // Median falls in the bucket whose upper bound is 2^1.
  EXPECT_DOUBLE_EQ(inst->hist.quantile(0.5), 2.0);

  Histogram detached;
  detached.record(42.0);
  EXPECT_EQ(detached.count(), 0u);
}

// --- JSONL sink -------------------------------------------------------------

TEST(JsonlSinkTest, GoldenSchema) {
  std::ostringstream os;
  JsonlSink sink(os);
  FlightRecorder rec;
  rec.set_event_sink(&sink);

  const TimePoint t = TimePoint::origin() + Duration::millis(1500);
  rec.record_event(t, EventType::kPktSend, 1, 0,
                   {{"seq", std::uint64_t{42}},
                    {"rtt", 0.25},
                    {"dup", true},
                    {"why", "queue \"x\""}});

  EXPECT_EQ(os.str(),
            "{\"t\":1.500000000,\"ev\":\"pkt_send\",\"conn\":1,\"sf\":0,"
            "\"seq\":42,\"rtt\":0.25,\"dup\":true,\"why\":\"queue \\\"x\\\"\"}\n");
  EXPECT_EQ(sink.events_written(), 1u);
  EXPECT_EQ(rec.events_recorded(), 1u);
}

TEST(JsonlSinkTest, UnscopedEventOmitsConnAndSubflow) {
  std::ostringstream os;
  JsonlSink sink(os);
  sink.on_event(TimePoint::origin(), EventType::kLinkDrop, -1, -1, nullptr, 0);
  EXPECT_EQ(os.str(), "{\"t\":0.000000000,\"ev\":\"link_drop\"}\n");
}

TEST(TraceMacroTest, FieldsNotEvaluatedWithoutSink) {
  Simulator sim;
  int evals = 0;

  // No recorder attached: the site must not materialize its fields.
  MPS_TRACE_EVENT(sim, EventType::kPktSend, 1, 0, {"n", (++evals, 1.0)});
  EXPECT_EQ(evals, 0);

  FlightRecorder rec;
  sim.set_recorder(&rec);
  // Recorder but no sink: still short-circuits.
  MPS_TRACE_EVENT(sim, EventType::kPktSend, 1, 0, {"n", (++evals, 1.0)});
  EXPECT_EQ(evals, 0);

  VectorSink sink;
  rec.set_event_sink(&sink);
  MPS_TRACE_EVENT(sim, EventType::kPktSend, 1, 0, {"n", (++evals, 1.0)});
#ifdef MPS_TRACE_DISABLED
  // -DMPS_TRACE_EVENTS=OFF compiles every site out entirely.
  EXPECT_EQ(evals, 0);
  EXPECT_TRUE(sink.events().empty());
#else
  EXPECT_EQ(evals, 1);
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_DOUBLE_EQ(sink.events()[0].f64("n"), 1.0);
#endif
}

// --- hooks ------------------------------------------------------------------

TEST(HookTest, MultipleListenersFireInOrderAndDetach) {
  Hook<int> hook;
  std::vector<int> seen;
  const auto id_a = hook.add([&](int v) { seen.push_back(v); });
  hook.add([&](int v) { seen.push_back(v * 10); });

  hook(3);
  EXPECT_EQ(seen, (std::vector<int>{3, 30}));

  hook.remove(id_a);
  hook(4);
  EXPECT_EQ(seen, (std::vector<int>{3, 30, 40}));
  hook.remove(id_a);  // double-remove is a no-op
  EXPECT_EQ(hook.size(), 1u);
}

TEST(HookTest, SingleSlotAssignmentCompatibility) {
  Hook<int> hook;
  EXPECT_FALSE(static_cast<bool>(hook));
  int last = 0;
  hook = [&](int v) { last = v; };
  hook.add([&](int v) { last += v; });
  EXPECT_EQ(hook.size(), 2u);

  hook = [&](int v) { last = -v; };  // assignment replaces all listeners
  hook(5);
  EXPECT_EQ(last, -5);
  EXPECT_EQ(hook.size(), 1u);

  hook = Hook<int>::Fn{};  // assigning an empty function clears the hook
  EXPECT_TRUE(hook.empty());
}

TEST(HookTest, TwoCwndTracersObserveTheSameSubflow) {
  Testbed bed(TestbedConfig{});
  auto conn = bed.make_connection(scheduler_factory("default"));
  Subflow& sf = *conn->subflows()[0];

  CwndTracer first(sf);
  {
    CwndTracer second(sf);
    BulkSender sender(*conn, 500'000);
    bed.sim().run_until(TimePoint::origin() + Duration::seconds(2));
    EXPECT_GT(second.series().size(), 1u);
    EXPECT_EQ(second.series().size(), first.series().size());
  }
  // `second` detached on destruction; the subflow keeps serving `first`.
  EXPECT_TRUE(static_cast<bool>(sf.on_cwnd_change));
}

// --- periodic sampler -------------------------------------------------------

TEST(PeriodicSamplerTest, DeadlineLetsRunDrainTheQueue) {
  Simulator sim;
  PeriodicSampler sampler(sim, Duration::millis(100), [] { return 1.0; },
                          TimePoint::origin() + Duration::seconds(1));
  sim.run();  // would never return with a free-running sampler
  EXPECT_FALSE(sampler.running());
  EXPECT_EQ(sampler.series().size(), 11u);  // samples at 0, 100, ..., 1000 ms
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(1));
}

TEST(PeriodicSamplerTest, StopCancelsFutureSamples) {
  Simulator sim;
  PeriodicSampler sampler(sim, Duration::millis(100), [] { return 2.0; });
  sim.after(Duration::millis(250), [&] { sampler.stop(); });
  sim.run();
  EXPECT_EQ(sampler.series().size(), 3u);  // 0, 100, 200 ms
  EXPECT_FALSE(sampler.running());
}

// --- flight recorder integration -------------------------------------------

// One heterogeneous-path ECF run shared by the integration assertions below:
// WiFi is the 0.3 Mbps straggler, LTE the 8.6 Mbps fast path, so ECF both
// picks and deliberately waits many times (paper Fig. 11 regime).
struct RecordedEcfRun {
  RecordedEcfRun() {
    rec.set_keep_decisions(true);
    rec.set_event_sink(&sink);
    TestbedConfig tb;
    tb.wifi = wifi_profile(Rate::mbps(0.3));
    tb.lte = lte_profile(Rate::mbps(8.6));
    tb.recorder = &rec;
    bed = std::make_unique<Testbed>(tb);
    conn = bed->make_connection(scheduler_factory("ecf"));
    sender = std::make_unique<BulkSender>(*conn, 4'000'000);
    bed->sim().run_until(TimePoint::origin() + Duration::seconds(60));
  }

  FlightRecorder rec;
  VectorSink sink;
  std::unique_ptr<Testbed> bed;
  std::unique_ptr<Connection> conn;
  std::unique_ptr<BulkSender> sender;
};

TEST(FlightRecorderIntegrationTest, EcfRunRecordsPicksAndDeliberateWaits) {
  RecordedEcfRun run;
  EXPECT_GT(run.rec.total_picks(), 0u);
  EXPECT_GT(run.rec.total_waits(), 0u);
#ifndef MPS_TRACE_DISABLED
  // Macro-emitted stack events; compiled out under -DMPS_TRACE_EVENTS=OFF.
  EXPECT_GT(run.sink.count(EventType::kPktSend), 0u);
#endif
  // Decision events are emitted by the recorder itself, not the macro.
  EXPECT_GT(run.sink.count(EventType::kSchedWait), 0u);
  EXPECT_EQ(run.sink.count(EventType::kSchedWait), run.rec.total_waits());
}

TEST(FlightRecorderIntegrationTest, RecordedEcfTermsReplayTheVerdict) {
  RecordedEcfRun run;
  std::size_t replayed = 0;
  std::size_t waits = 0;
  for (const FlightRecorder::TimedDecision& td : run.rec.decisions()) {
    const SchedDecision& d = td.d;
    if (!d.has_ecf_terms) continue;
    const EcfDecision verdict =
        ecf_decide(d.k_packets, d.cwnd_f, d.ssthresh_f, d.cwnd_s, d.ssthresh_s, d.rtt_f_s,
                   d.rtt_s_s, d.delta_s, d.waiting, d.beta, d.staged_f, d.staged_s);
    if (d.kind == SchedDecision::Kind::kWait) {
      ASSERT_EQ(verdict, EcfDecision::kWait) << "recorded wait does not replay";
      ++waits;
    } else {
      ASSERT_NE(verdict, EcfDecision::kWait) << "recorded pick replays as a wait";
    }
    ++replayed;
  }
  EXPECT_GT(replayed, 0u);
  EXPECT_GT(waits, 0u);
  EXPECT_EQ(waits, run.rec.total_waits());
}

TEST(FlightRecorderIntegrationTest, DecisionCountsAgreeWithMetaAndSubflowStats) {
  RecordedEcfRun run;
  // Every successful scheduling round is one recorded pick.
  EXPECT_EQ(run.rec.total_picks(), run.conn->meta_stats().segments_scheduled);

  const std::int64_t conn_id = run.conn->config().conn_id;
  const auto& counts = run.rec.decision_counts().at({"ecf", conn_id});
  std::uint64_t by_subflow = 0;
  for (const auto& [sf, n] : counts.picks_by_subflow) by_subflow += n;
  EXPECT_EQ(by_subflow, counts.picks);

  // Registry counters track the stack's own statistics site for site.
  std::uint64_t stats_sent = 0;
  for (const Subflow* sf : run.conn->subflows()) {
    const Instrument* inst = run.rec.metrics().find(
        "subflow.segments_sent", labels(conn_id, static_cast<std::int64_t>(sf->id())));
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(inst->count, sf->stats().segments_sent);
    stats_sent += sf->stats().segments_sent;
  }
  EXPECT_EQ(run.rec.metrics().total("subflow.segments_sent"), stats_sent);
  EXPECT_EQ(run.rec.metrics().total("conn.window_stalls"),
            run.conn->meta_stats().window_stalls);
}

TEST(FlightRecorderIntegrationTest, SummaryReportsDecisionTotals) {
  RecordedEcfRun run;
  std::ostringstream os;
  run.rec.summarize(os);
  const std::string out = os.str();

  const auto& counts = run.rec.decision_counts().at({"ecf", 1});
  EXPECT_NE(out.find("=== flight recorder summary ==="), std::string::npos);
  EXPECT_NE(out.find("picks=" + std::to_string(counts.picks)), std::string::npos);
  EXPECT_NE(out.find("waits=" + std::to_string(counts.waits)), std::string::npos);
  EXPECT_NE(out.find("subflow.segments_sent"), std::string::npos);
}

TEST(FlightRecorderIntegrationTest, SchedWaitEventsCarryEcfTerms) {
  RecordedEcfRun run;
  std::size_t checked = 0;
  for (const VectorSink::Recorded& ev : run.sink.events()) {
    if (ev.type != EventType::kSchedWait) continue;
    EXPECT_GT(ev.f64("cwnd_f"), 0.0);
    EXPECT_GT(ev.f64("rtt_s"), ev.f64("rtt_f"));  // slow path really is slower
    EXPECT_GE(ev.f64("k"), 0.0);
    EXPECT_GT(ev.f64("n_rounds"), 1.0);
    if (++checked == 50) break;  // schema is identical across records
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace mps
