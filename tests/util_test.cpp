// Tests for src/util: time/rate strong types, RNG determinism, statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rate.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace mps {
namespace {

// --- Duration / TimePoint ---------------------------------------------------

TEST(DurationTest, Constructors) {
  EXPECT_EQ(Duration::millis(3).ns(), 3'000'000);
  EXPECT_EQ(Duration::micros(5).ns(), 5'000);
  EXPECT_EQ(Duration::seconds(2).ns(), 2'000'000'000);
  EXPECT_EQ(Duration::from_seconds(0.5).ns(), 500'000'000);
  EXPECT_EQ(Duration::zero().ns(), 0);
}

TEST(DurationTest, RoundsToNearestNanosecond) {
  EXPECT_EQ(Duration::from_seconds(1e-9 * 0.4).ns(), 0);
  EXPECT_EQ(Duration::from_seconds(1e-9 * 0.6).ns(), 1);
  EXPECT_EQ(Duration::from_seconds(-1e-9 * 0.6).ns(), -1);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::millis(10);
  const Duration b = Duration::millis(4);
  EXPECT_EQ((a + b).ns(), Duration::millis(14).ns());
  EXPECT_EQ((a - b).ns(), Duration::millis(6).ns());
  EXPECT_EQ((a * std::int64_t{3}).ns(), Duration::millis(30).ns());
  EXPECT_EQ((a / std::int64_t{2}).ns(), Duration::millis(5).ns());
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_NEAR((a * 1.5).to_seconds(), 0.015, 1e-12);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
  EXPECT_TRUE(Duration::infinite().is_infinite());
  EXPECT_GT(Duration::infinite(), Duration::seconds(1'000'000));
}

TEST(DurationTest, Strings) {
  EXPECT_EQ(Duration::seconds(2).str(), "2.000s");
  EXPECT_EQ(Duration::millis(3).str(), "3.000ms");
  EXPECT_EQ(Duration::nanos(42).str(), "42ns");
  EXPECT_EQ(Duration::infinite().str(), "inf");
}

TEST(TimePointTest, Arithmetic) {
  const TimePoint t = TimePoint::origin() + Duration::seconds(5);
  EXPECT_EQ(t.ns(), 5'000'000'000);
  EXPECT_EQ((t - TimePoint::origin()).ns(), Duration::seconds(5).ns());
  EXPECT_EQ((t - Duration::seconds(1)).ns(), 4'000'000'000);
  EXPECT_TRUE(TimePoint::never().is_never());
  EXPECT_GT(TimePoint::never(), t);
}

// --- Rate --------------------------------------------------------------------

TEST(RateTest, TransmitTime) {
  const Rate r = Rate::mbps(8);
  // 1000 bytes = 8000 bits at 8 Mbps -> 1 ms.
  EXPECT_EQ(r.transmit_time(1000).ns(), Duration::millis(1).ns());
  EXPECT_TRUE(Rate::zero().transmit_time(1).is_infinite());
}

TEST(RateTest, BytesOver) {
  EXPECT_DOUBLE_EQ(Rate::mbps(8).bytes_over(Duration::seconds(1)), 1e6);
}

TEST(RateTest, RateOf) {
  EXPECT_DOUBLE_EQ(rate_of(1'000'000, Duration::seconds(1)).to_mbps(), 8.0);
  EXPECT_TRUE(rate_of(100, Duration::zero()).is_zero());
}

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  int counts[10] = {};
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(40.0);
  EXPECT_NEAR(sum / n, 40.0, 0.5);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(st.mean(), 5.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(RngTest, ForkIndependence) {
  Rng a(99);
  Rng child = a.fork();
  // The fork must not replay the parent stream.
  EXPECT_NE(a.next_u64(), child.next_u64());
}

// --- RunningStats ---------------------------------------------------------------

TEST(RunningStatsTest, Basics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

// --- WindowedStats ---------------------------------------------------------------

TEST(WindowedStatsTest, WindowEviction) {
  WindowedStats w(4);
  for (double x : {1.0, 2.0, 3.0, 4.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 2.5);
  w.add(5.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
  EXPECT_EQ(w.count(), 4u);
}

TEST(WindowedStatsTest, StddevMatchesSample) {
  WindowedStats w(8);
  for (double x : {2.0, 4.0, 6.0, 8.0}) w.add(x);
  // Sample stddev of {2,4,6,8} = sqrt(20/3).
  EXPECT_NEAR(w.stddev(), std::sqrt(20.0 / 3.0), 1e-9);
}

TEST(WindowedStatsTest, SingleSampleZeroStddev) {
  WindowedStats w(8);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
}

// --- Samples ----------------------------------------------------------------------

TEST(SamplesTest, Quantiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 1e-9);
}

TEST(SamplesTest, CdfCcdf) {
  Samples s;
  for (double x : {1.0, 2.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.ccdf_at(2.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SamplesTest, CdfPointsCollapseDuplicates) {
  Samples s;
  for (double x : {1.0, 2.0, 2.0, 3.0}) s.add(x);
  const auto pts = s.cdf_points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[1].x, 2.0);
  EXPECT_DOUBLE_EQ(pts[1].y, 0.75);
}

TEST(SamplesTest, MergeCombines) {
  Samples a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(SamplesTest, AddAfterSortedQuery) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(9.0);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

}  // namespace
}  // namespace mps
