// Tests for the fault-injection models (fault/fault.h), the protocol
// invariant checker (check/invariants.h), and a scaled-down version of the
// mps_stress grid (check/stress.h) so ctest exercises every fault profile
// under the checker on every run.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "check/stress.h"
#include "fault/fault.h"
#include "obs/recorder.h"
#include "scenario/world.h"
#include "sched/registry.h"
#include "tcp/cc_registry.h"
#include "util/rng.h"

namespace mps {
namespace {

// --- fault models -----------------------------------------------------------

TEST(FaultModelTest, GilbertElliottNeverLeavesGoodStateWhenTransitionIsZero) {
  GilbertElliottConfig cfg;
  cfg.enabled = true;
  cfg.p_good_bad = 0.0;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;  // would be fatal if the chain ever went bad
  GilbertElliottLoss ge(cfg);
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_FALSE(ge.should_drop(TimePoint::origin(), rng));
  }
  EXPECT_FALSE(ge.in_bad_state());
}

TEST(FaultModelTest, GilbertElliottAbsorbingBadStateDropsEverything) {
  GilbertElliottConfig cfg;
  cfg.enabled = true;
  cfg.p_good_bad = 1.0;  // first packet transitions good -> bad
  cfg.p_bad_good = 0.0;  // and the bad state is absorbing
  cfg.loss_bad = 1.0;
  GilbertElliottLoss ge(cfg);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ge.should_drop(TimePoint::origin(), rng));
  }
  EXPECT_TRUE(ge.in_bad_state());
}

TEST(FaultModelTest, GilbertElliottLongRunLossMatchesStationaryDistribution) {
  // pi_bad = p_gb / (p_gb + p_bg) = 0.05 / 0.30; expected loss = pi_bad * 0.5
  // = 1/12 ~ 0.083. A 50k-packet run should land well within [0.06, 0.11].
  GilbertElliottConfig cfg;
  cfg.enabled = true;
  cfg.p_good_bad = 0.05;
  cfg.p_bad_good = 0.25;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 0.5;
  GilbertElliottLoss ge(cfg);
  Rng rng(42);
  int drops = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (ge.should_drop(TimePoint::origin(), rng)) ++drops;
  }
  const double rate = static_cast<double>(drops) / n;
  EXPECT_GT(rate, 0.06);
  EXPECT_LT(rate, 0.11);
}

TEST(FaultModelTest, OutageWindowsAreHalfOpenAndDrawNoRandomness) {
  OutageSchedule sched({{Duration::seconds(1), Duration::millis(500)}}, FlapConfig{});
  const TimePoint t0 = TimePoint::origin();
  EXPECT_FALSE(sched.down_at(t0 + Duration::millis(999)));
  EXPECT_TRUE(sched.down_at(t0 + Duration::seconds(1)));  // start inclusive
  EXPECT_TRUE(sched.down_at(t0 + Duration::millis(1499)));
  EXPECT_FALSE(sched.down_at(t0 + Duration::millis(1500)));  // end exclusive
  // should_drop must not consume from the RNG stream: draws before and after
  // must line up with a fresh stream of the same seed.
  Rng a(9), b(9);
  (void)sched.should_drop(t0 + Duration::seconds(1), a);
  EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(FaultModelTest, FlapCyclesDownThenUpEachPeriod) {
  FlapConfig flap;
  flap.enabled = true;
  flap.period = Duration::seconds(1);
  flap.down_time = Duration::millis(200);
  flap.phase = Duration::millis(500);
  OutageSchedule sched({}, flap);
  const TimePoint t0 = TimePoint::origin();
  EXPECT_FALSE(sched.down_at(t0));  // before the first down edge
  EXPECT_FALSE(sched.down_at(t0 + Duration::millis(499)));
  for (int cycle = 0; cycle < 3; ++cycle) {
    const Duration base = Duration::millis(500) + Duration::seconds(cycle);
    EXPECT_TRUE(sched.down_at(t0 + base)) << cycle;
    EXPECT_TRUE(sched.down_at(t0 + base + Duration::millis(199))) << cycle;
    EXPECT_FALSE(sched.down_at(t0 + base + Duration::millis(200))) << cycle;
    EXPECT_FALSE(sched.down_at(t0 + base + Duration::millis(999))) << cycle;
  }
}

TEST(FaultModelTest, ReorderJitterDelayStaysWithinConfiguredBounds) {
  ReorderConfig cfg;
  cfg.enabled = true;
  cfg.prob = 1.0;
  cfg.delay = Duration::millis(30);
  cfg.jitter = Duration::millis(30);
  ReorderJitter jitter(cfg);
  Rng rng(11);
  for (int i = 0; i < 1'000; ++i) {
    const Duration d = jitter.extra_delay(TimePoint::origin(), rng);
    EXPECT_GE(d, Duration::millis(30));
    EXPECT_LT(d, Duration::millis(60));
  }
  cfg.prob = 0.0;
  ReorderJitter off(cfg);
  // prob=0 short-circuits: no delay and no RNG draw.
  Rng a(13), b(13);
  EXPECT_EQ(off.extra_delay(TimePoint::origin(), a), Duration::zero());
  EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(FaultModelTest, MakeFaultModelBuildsOnlyWhatIsConfigured) {
  EXPECT_EQ(make_fault_model(FaultConfig{}), nullptr);  // clean link: no model
  FaultConfig one;
  one.gilbert_elliott.enabled = true;
  one.gilbert_elliott.p_good_bad = 0.1;
  auto single = make_fault_model(one);
  ASSERT_NE(single, nullptr);
  EXPECT_STREQ(single->name(), "gilbert_elliott");
  FaultConfig many = one;
  many.reorder.enabled = true;
  many.reorder.prob = 0.1;
  auto composite = make_fault_model(many);
  ASSERT_NE(composite, nullptr);
  EXPECT_STREQ(composite->name(), "composite");
}

// --- invariant checker ------------------------------------------------------

TEST(InvariantCheckerTest, CleanRunReportsNoViolations) {
  StressCell cell;
  cell.bytes = 64 * 1024;
  const StressCellResult r = run_stress_cell(cell);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "stalled" : r.violations.front());
  EXPECT_GT(r.checks_run, 0u);
  EXPECT_EQ(r.drops_random + r.drops_fault, 0u);
}

TEST(InvariantCheckerTest, DetectsCorruptedMetaState) {
  // Drive the receiver side past the sender through the public MetaSink
  // entry point: rcv_data_next overtakes next_data_seq, which violates
  // monotonicity/ordering. The checker must flag it — this is the positive
  // control proving the stress harness can actually see bugs.
  FlightRecorder recorder;
  WorldBuilder builder(stress_spec(StressCell{}));
  auto world = builder.build(&recorder);
  InvariantChecker checker(world->sim());
  auto conn = world->make_connection(scheduler_factory("default"));
  checker.watch(*conn);
  checker.check_now("baseline");
  EXPECT_TRUE(checker.ok());
  conn->on_subflow_deliver(0, 0, 1428, world->sim().now());
  checker.check_now("injected");
  EXPECT_FALSE(checker.ok());
  EXPECT_FALSE(checker.report().empty());
}

// --- scaled-down stress grid ------------------------------------------------

TEST(StressGridTest, AllProfilesPassUnderCheckerAndActuallyBite) {
  std::map<std::string, StressCellResult> agg;
  for (const std::string& profile : stress_profile_names()) {
    for (const char* sched : {"default", "ecf"}) {
      for (std::uint64_t seed : {1u, 2u}) {
        StressCell cell;
        cell.profile = profile;
        cell.scheduler = sched;
        cell.seed = seed;
        // Harness default: long enough that the outage/flap windows (first
        // down edge at 0.2 s) land inside the transfer.
        cell.bytes = 512 * 1024;
        const StressCellResult r = run_stress_cell(cell);
        EXPECT_TRUE(r.ok()) << profile << "/" << sched << " seed=" << seed << ": "
                            << (r.violations.empty() ? "stalled" : r.violations.front());
        StressCellResult& a = agg[profile];
        a.drops_random += r.drops_random;
        a.drops_fault += r.drops_fault;
        a.reordered += r.reordered;
        a.retransmits += r.retransmits;
      }
    }
  }
  // A profile that injects nothing tests nothing: every non-clean profile
  // must have produced observable impairment across its four cells.
  EXPECT_EQ(agg["clean"].drops_random + agg["clean"].drops_fault, 0u);
  EXPECT_GT(agg["iid"].drops_random, 0u);
  EXPECT_GT(agg["ge_wifi"].drops_fault, 0u);
  EXPECT_GT(agg["outage"].drops_fault, 0u);
  EXPECT_GT(agg["reorder"].reordered, 0u);
  EXPECT_GT(agg["reorder"].retransmits, 0u);  // reordering provokes recovery
  EXPECT_GT(agg["storm"].drops_fault, 0u);
  EXPECT_GT(agg["storm"].reordered, 0u);
  EXPECT_GT(agg["handover"].drops_random, 0u);
  EXPECT_GT(agg["crossproduct"].drops_fault, 0u);
}

TEST(StressGridTest, CrossproductProfileRunsEverySchedulerTimesEveryCc) {
  // The full scheduler x congestion-controller cross product under the
  // checker and light burst loss: every registered pairing must complete
  // without tripping an invariant (including the coupled-terms check that
  // recomputes the shared CC aggregates from scratch), and the loss model
  // must actually bite across the grid.
  std::uint64_t drops_fault = 0;
  std::uint64_t retransmits = 0;
  for (const std::string& sched : scheduler_names()) {
    for (const std::string& cc : cc_names()) {
      StressCell cell;
      cell.profile = "crossproduct";
      cell.scheduler = sched;
      cell.cc = cc;
      cell.bytes = 256 * 1024;
      const StressCellResult r = run_stress_cell(cell);
      EXPECT_TRUE(r.ok()) << sched << "/" << cc << ": "
                          << (r.violations.empty() ? "stalled" : r.violations.front());
      EXPECT_GT(r.checks_run, 0u) << sched << "/" << cc;
      drops_fault += r.drops_fault;
      retransmits += r.retransmits;
    }
  }
  EXPECT_GT(drops_fault, 0u);
  EXPECT_GT(retransmits, 0u);
}

TEST(StressGridTest, CrossproductCellPlumbsCcIntoTheSpec) {
  StressCell cell;
  cell.cc = "balia";
  EXPECT_EQ(stress_spec(cell).conn.cc, "balia");
  cell.cc = "no-such-cc";
  // The bad name surfaces when the spec is built into a world, with the
  // registry's enumerating message.
  try {
    run_stress_cell(cell);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-cc"), std::string::npos);
  }
}

TEST(StressGridTest, UnknownProfileNameThrows) {
  StressCell cell;
  cell.profile = "no-such-profile";
  EXPECT_THROW(stress_spec(cell), std::invalid_argument);
}

}  // namespace
}  // namespace mps
