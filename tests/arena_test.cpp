// Tests for the slab arena (traffic/arena.h): block distinctness, free-list
// recycling, and end-to-end reuse of Connection/Subflow/SubflowReceiver
// slots across churned connections. The churn test also runs under the ASan
// suite, where the pool's poisoning keeps stale-pointer reuse detectable.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "exp/testbed.h"
#include "mptcp/connection.h"
#include "sched/registry.h"
#include "traffic/arena.h"

namespace mps {
namespace {

TEST(SlabPoolTest, LiveBlocksAreDistinctAndWritable) {
  SlabPool pool(/*block_size=*/48, /*block_align=*/16, /*blocks_per_slab=*/8);
  std::set<void*> live;
  std::vector<void*> order;
  for (int i = 0; i < 100; ++i) {
    void* p = pool.allocate();
    ASSERT_NE(p, nullptr);
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    ASSERT_TRUE(live.insert(p).second) << "pool handed out a live block twice";
    std::memset(p, i & 0xff, pool.block_size());
    order.push_back(p);
  }
  EXPECT_EQ(pool.stats().outstanding, 100u);
  EXPECT_EQ(pool.stats().slabs, 13u);  // ceil(100 / 8)
  for (void* p : order) pool.deallocate(p);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(SlabPoolTest, FreeListRecyclesLifo) {
  SlabPool pool(/*block_size=*/64, /*block_align=*/8);
  void* a = pool.allocate();
  void* b = pool.allocate();
  pool.deallocate(b);
  pool.deallocate(a);
  EXPECT_EQ(pool.allocate(), a);
  EXPECT_EQ(pool.allocate(), b);
  const SlabPool::Stats st = pool.stats();
  EXPECT_EQ(st.allocated, 4u);
  // b came off the free list carved by the first slab, then both LIFO reuses.
  EXPECT_EQ(st.reused, 3u);
  EXPECT_EQ(st.slabs, 1u);
}

TEST(ArenaTest, ConnectionChurnReusesSlotsWithoutAliasing) {
  const SlabPool::Stats conn_before = slab_pool_for<Connection>().stats();
  const SlabPool::Stats sf_before = slab_pool_for<Subflow>().stats();
  const SlabPool::Stats rx_before = slab_pool_for<SubflowReceiver>().stats();

  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(1.0));
  tb.lte = lte_profile(Rate::mbps(10.0));
  Testbed bed(tb);

  // Overlapping live connections must occupy distinct arena slots...
  std::set<const Connection*> live_ptrs;
  std::vector<std::unique_ptr<Connection>> live;
  for (int i = 0; i < 8; ++i) {
    live.push_back(bed.make_connection(scheduler_factory("default")));
    ASSERT_TRUE(live_ptrs.insert(live.back().get()).second)
        << "two live connections share an arena slot";
  }
  {
    const SlabPool::Stats st = slab_pool_for<Connection>().stats();
    EXPECT_EQ(st.outstanding - conn_before.outstanding, 8u);
  }
  live.clear();

  // ...and steady-state churn must recycle them instead of growing the pool.
  const SlabPool::Stats conn_mid = slab_pool_for<Connection>().stats();
  for (int i = 0; i < 100; ++i) {
    auto conn = bed.make_connection(scheduler_factory("default"));
    conn->send(10'000);
    bed.sim().run_until(bed.sim().now() + Duration::millis(50));
  }
  const SlabPool::Stats conn_after = slab_pool_for<Connection>().stats();
  const SlabPool::Stats sf_after = slab_pool_for<Subflow>().stats();
  const SlabPool::Stats rx_after = slab_pool_for<SubflowReceiver>().stats();
  EXPECT_EQ(conn_after.outstanding, conn_mid.outstanding);
  EXPECT_EQ(conn_after.slabs, conn_mid.slabs) << "churn grew the Connection pool";
  EXPECT_GE(conn_after.reused - conn_before.reused, 100u);
  EXPECT_GE(sf_after.reused - sf_before.reused, 100u);
  EXPECT_GE(rx_after.reused - rx_before.reused, 100u);
  EXPECT_EQ(sf_after.outstanding, sf_before.outstanding);
  EXPECT_EQ(rx_after.outstanding, rx_before.outstanding);
}

}  // namespace
}  // namespace mps
