// Shared test helpers.
#pragma once

#include <cstdint>

#include "mptcp/connection.h"

namespace mps {

// Streams `total` bytes through a connection's bounded send buffer, refilling
// from on_sendable as space frees (what a real sending application does).
class BulkSender {
 public:
  BulkSender(Connection& conn, std::uint64_t total) : conn_(conn), remaining_(total) {
    conn_.on_sendable = [this] { push(); };
    push();
  }

  void push() {
    if (remaining_ == 0) return;
    remaining_ -= conn_.send(remaining_);
  }

  std::uint64_t remaining() const { return remaining_; }

 private:
  Connection& conn_;
  std::uint64_t remaining_;
};

}  // namespace mps
