// Focused tests for subflow loss recovery: SACK scoreboard, FACK marking,
// RACK-style lost-retransmission detection, RTO fallback, and the staging
// queue's interaction with recovery.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "net/path.h"
#include "sim/simulator.h"
#include "tcp/cc_reno.h"
#include "tcp/subflow.h"

namespace mps {
namespace {

class CountingSink final : public MetaSink {
 public:
  void on_subflow_deliver(std::uint32_t, std::uint64_t data_seq, std::uint32_t payload,
                          TimePoint) override {
    delivered += payload;
    data_ack = std::max(data_ack, data_seq + payload);
  }
  std::uint64_t meta_data_ack() const override { return data_ack; }
  std::uint64_t meta_rwnd() const override { return 64 << 20; }

  std::uint64_t delivered = 0;
  std::uint64_t data_ack = 0;
};

struct LossRig {
  explicit LossRig(PathConfig pc = wifi_profile(Rate::mbps(10)))
      : path(sim, pc),
        receiver(sim, 0, 0, path, &sink),
        subflow(sim, SubflowConfig{}, path, std::make_unique<RenoCc>(), nullptr) {
    path.down().set_deliver([this](Packet p) {
      if (drop_next > 0) {
        --drop_next;
        ++dropped;
        return;  // swallow the packet: a precise single-loss injector
      }
      if (drop_fn && drop_fn(p)) {
        ++dropped;
        return;
      }
      receiver.on_data_packet(p);
    });
    path.up().set_deliver([this](Packet p) { subflow.on_ack_packet(p); });
  }

  void send_n(int n) {
    for (int i = 0; i < n; ++i) {
      subflow.send_segment(next, 1428);
      next += 1428;
    }
  }

  Simulator sim;
  CountingSink sink;
  Path path;
  SubflowReceiver receiver;
  Subflow subflow;
  std::uint64_t next = 0;
  int drop_next = 0;
  int dropped = 0;
  // Targeted injector: return true to swallow this packet. Applied after
  // drop_next, so tests can combine both.
  std::function<bool(const Packet&)> drop_fn;
};

TEST(RecoveryTest, SingleLossRepairedByFastRetransmitNotRto) {
  LossRig rig;
  rig.send_n(2);
  rig.sim.run();  // grow cwnd a little and settle
  rig.drop_next = 1;  // exactly the next segment vanishes
  rig.send_n(10);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(3));
  EXPECT_EQ(rig.sink.delivered, 12u * 1428u);
  EXPECT_EQ(rig.subflow.stats().rto_events, 0u);
  EXPECT_EQ(rig.subflow.stats().retransmits, 1u);
  EXPECT_EQ(rig.subflow.stats().fast_retransmits, 1u);
}

TEST(RecoveryTest, SackPreventsSpuriousRetransmits) {
  LossRig rig;
  rig.send_n(2);
  rig.sim.run();
  // Drop one packet out of a 30-segment burst: only that one may be resent.
  rig.drop_next = 1;
  rig.send_n(20);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(3));
  // allow follow-up transmissions gated by cwnd
  while (rig.sink.delivered < 22u * 1428u &&
         rig.sim.now() < TimePoint::origin() + Duration::seconds(10)) {
    rig.subflow.poll();
    rig.sim.run_until(rig.sim.now() + Duration::millis(100));
  }
  EXPECT_EQ(rig.sink.delivered, 22u * 1428u);
  EXPECT_EQ(rig.subflow.stats().retransmits, 1u) << "SACK scoreboard must not resend "
                                                    "segments the receiver already holds";
}

TEST(RecoveryTest, LostRetransmissionRecoveredByRackTimer) {
  LossRig rig;
  rig.send_n(2);
  rig.sim.run();
  // Drop an original AND its first retransmission: the RACK reorder timer
  // (not only the much larger RTO backoff ladder) must re-detect it.
  rig.drop_next = 1;
  rig.send_n(15);
  // Let the original burst (and its loss detection) play out, then swallow
  // whatever flies next — usually the retransmission.
  rig.sim.run_until(rig.sim.now() + Duration::millis(20));
  rig.drop_next = 1;
  rig.sim.run_until(rig.sim.now() + Duration::seconds(8));
  // Whether the second drop hit the retransmission or fresh data, recovery
  // must converge without data loss and without the RTO backoff ladder
  // stalling for seconds.
  EXPECT_EQ(rig.sink.delivered, 17u * 1428u);
  EXPECT_GE(rig.subflow.stats().retransmits, 2u);
}

TEST(RecoveryTest, RtoRecoversFullTailLoss) {
  LossRig rig;
  rig.send_n(2);
  rig.sim.run();
  // Lose the last 3 segments of a burst: no SACKs above them -> RTO path.
  // (Deliver the first 7 before arming the drops; the injector drops in
  // delivery order.)
  rig.send_n(7);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(1));
  rig.drop_next = 3;
  rig.send_n(3);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(10));
  EXPECT_EQ(rig.sink.delivered, 12u * 1428u);
  EXPECT_GE(rig.subflow.stats().rto_events, 1u);
}

TEST(RecoveryTest, SsthreshHalvedOncePerRecoveryEpisode) {
  LossRig rig;
  rig.send_n(2);
  rig.sim.run();
  const double cwnd_before = rig.subflow.cwnd();
  // Several losses in one flight: one multiplicative decrease, not several.
  rig.drop_next = 2;
  rig.send_n(12);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(5));
  EXPECT_EQ(rig.subflow.stats().fast_retransmits, 1u);
  EXPECT_GE(rig.subflow.ssthresh(), cwnd_before * 0.5 - 1.0);
}

TEST(RecoveryTest, StagedSegmentsFlowAfterRecovery) {
  // Assign far beyond CWND: the staging queue must drain through a loss
  // episode without losing or duplicating anything.
  LossRig rig;
  rig.send_n(2);
  rig.sim.run();
  rig.drop_next = 1;
  for (int i = 0; i < 60; ++i) {
    rig.subflow.assign_segment(rig.next, 1428);
    rig.next += 1428;
  }
  // Drive polls so staged segments transmit as the window frees.
  for (int i = 0; i < 200 && rig.sink.delivered < 62u * 1428u; ++i) {
    rig.subflow.poll();
    rig.sim.run_until(rig.sim.now() + Duration::millis(50));
  }
  EXPECT_EQ(rig.sink.delivered, 62u * 1428u);
  EXPECT_EQ(rig.subflow.staged_bytes(), 0u);
}

TEST(RecoveryTest, DeliveredExactlyOnceUnderHeavyLoss) {
  PathConfig pc = wifi_profile(Rate::mbps(10));
  pc.loss_rate = 0.1;  // brutal
  LossRig rig(pc);
  rig.path.down().set_rng(Rng(3));
  for (int round = 0; round < 400 && rig.sink.delivered < 300u * 1428u; ++round) {
    while (rig.subflow.can_send() && rig.next < 300u * 1428u) {
      rig.subflow.send_segment(rig.next, 1428);
      rig.next += 1428;
    }
    rig.sim.run_until(rig.sim.now() + Duration::millis(100));
  }
  EXPECT_EQ(rig.sink.delivered, 300u * 1428u);
  EXPECT_EQ(rig.sink.data_ack, 300u * 1428u);
}

TEST(RecoveryTest, KarnRtoBackoffHeldUntilNewDataAcks) {
  LossRig rig;
  rig.send_n(2);
  rig.sim.run();  // seed SRTT; rto() settles to the 200 ms floor
  // Lose a segment AND its first RTO retransmission: two timeouts on the
  // same data back the RTO off twice.
  rig.drop_next = 2;
  rig.send_n(1);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(2));
  EXPECT_EQ(rig.sink.delivered, 3u * 1428u);
  EXPECT_GE(rig.subflow.stats().rto_events, 2u);
  // The repairing ack was elicited by a retransmission; Karn's algorithm
  // (RFC 6298 5.7) forbids trusting it to reset the backed-off RTO.
  EXPECT_EQ(rig.subflow.rto_backoff(), 2);
  // An ack of fresh, never-retransmitted data does clear it.
  rig.send_n(1);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(1));
  EXPECT_EQ(rig.sink.delivered, 4u * 1428u);
  EXPECT_EQ(rig.subflow.rto_backoff(), 0);
}

TEST(RecoveryTest, NoRttSampleFromRetransmitElicitedAck) {
  LossRig rig;
  rig.send_n(2);
  rig.sim.run();
  const std::uint64_t samples = rig.subflow.stats().rtt_samples;
  rig.drop_next = 1;
  rig.send_n(1);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(1));
  EXPECT_EQ(rig.sink.delivered, 3u * 1428u);
  // Karn: the ack echoes a retransmission's timestamp; sampling it would
  // poison SRTT with an ambiguous (possibly multi-RTO-spanning) value.
  EXPECT_EQ(rig.subflow.stats().rtt_samples, samples);
  rig.send_n(1);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(1));
  EXPECT_EQ(rig.subflow.stats().rtt_samples, samples + 1);
}

TEST(RecoveryTest, SegmentDroppedTwiceStillRecovers) {
  LossRig rig;
  rig.send_n(2);
  rig.sim.run();
  // The burst's head vanishes twice: the original and the fast
  // retransmission triggered by the followers' SACKs. Recovery must converge
  // (RACK re-mark or RTO), never stall waiting for an ack that cannot come.
  const std::uint64_t victim = rig.next;
  int victim_drops = 2;
  rig.drop_fn = [&](const Packet& p) {
    if (p.data_seq == victim && victim_drops > 0) {
      --victim_drops;
      return true;
    }
    return false;
  };
  rig.send_n(12);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(5));
  EXPECT_EQ(rig.sink.delivered, 14u * 1428u);
  EXPECT_EQ(victim_drops, 0);
  EXPECT_GE(rig.subflow.stats().retransmits, 2u);
}

TEST(RecoveryTest, BlackoutRetransmitsFollowRtoBackoffNotRackSpin) {
  LossRig rig;
  rig.send_n(2);
  rig.sim.run();
  // The head of a burst blacks out entirely: every copy dies. Followers
  // deliver and their SACKs trigger one fast retransmission, but with no
  // delivery evidence after it, each further retry must come from the RTO
  // backoff ladder (0.2/0.4/0.8/1.6 s...), not a RACK timer respin every
  // ~40 ms with the backoff never engaging.
  const std::uint64_t victim = rig.next;
  bool blackout = true;
  rig.drop_fn = [&](const Packet& p) { return blackout && p.data_seq == victim; };
  rig.send_n(8);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(3));
  EXPECT_LE(rig.subflow.stats().retransmits, 8u);
  EXPECT_GE(rig.subflow.stats().rto_events, 2u);
  EXPECT_GE(rig.subflow.rto_backoff(), 2);
  blackout = false;
  rig.sim.run_until(rig.sim.now() + Duration::seconds(10));
  EXPECT_EQ(rig.sink.delivered, 10u * 1428u);
}

TEST(RecoveryTest, IdleResetDoesNotFireDuringRecovery) {
  LossRig rig;
  rig.send_n(2);
  rig.sim.run();
  rig.drop_next = 1;
  rig.send_n(10);
  // While segments are outstanding, poll() must not treat the flow as idle.
  rig.subflow.poll();
  EXPECT_EQ(rig.subflow.stats().idle_resets, 0u);
  rig.sim.run_until(rig.sim.now() + Duration::seconds(3));
  EXPECT_EQ(rig.sink.delivered, 12u * 1428u);
}

}  // namespace
}  // namespace mps
