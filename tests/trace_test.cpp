// Tests for the trace module: time series, collectors, text emitters.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/collect.h"
#include "trace/emit.h"
#include "trace/series.h"

namespace mps {
namespace {

TEST(TimeSeriesTest, StepInterpolation) {
  TimeSeries ts;
  ts.add(TimePoint::from_ns(0), 1.0);
  ts.add(TimePoint::origin() + Duration::seconds(10), 5.0);
  EXPECT_DOUBLE_EQ(ts.at(TimePoint::origin() + Duration::seconds(5)), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(TimePoint::origin() + Duration::seconds(10)), 5.0);
  EXPECT_DOUBLE_EQ(ts.at(TimePoint::origin() + Duration::seconds(50)), 5.0);
}

TEST(TimeSeriesTest, TimeMeanWeightsDurations) {
  TimeSeries ts;
  ts.add(TimePoint::from_ns(0), 0.0);
  ts.add(TimePoint::origin() + Duration::seconds(5), 10.0);
  // Over [0, 10): 5 s at 0 plus 5 s at 10 -> mean 5.
  EXPECT_DOUBLE_EQ(
      ts.time_mean(TimePoint::origin(), TimePoint::origin() + Duration::seconds(10)), 5.0);
}

TEST(TimeSeriesTest, TimeMeanWithValueBeforeWindow) {
  TimeSeries ts;
  ts.add(TimePoint::from_ns(0), 3.0);
  const TimePoint from = TimePoint::origin() + Duration::seconds(100);
  EXPECT_DOUBLE_EQ(ts.time_mean(from, from + Duration::seconds(10)), 3.0);
}

TEST(TimeSeriesTest, MaxValue) {
  TimeSeries ts;
  ts.add(TimePoint::from_ns(0), 2.0);
  ts.add(TimePoint::from_ns(5), 9.0);
  ts.add(TimePoint::from_ns(9), 4.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 9.0);
}

TEST(PeriodicSamplerTest, SamplesAtInterval) {
  Simulator sim;
  double value = 1.0;
  PeriodicSampler sampler(sim, Duration::millis(100), [&] { return value; });
  sim.after(Duration::millis(250), [&] { value = 7.0; });
  sim.run_until(TimePoint::origin() + Duration::millis(520));
  // Samples at 0, 100, 200, 300, 400, 500 ms.
  EXPECT_EQ(sampler.series().size(), 6u);
  EXPECT_DOUBLE_EQ(sampler.series().points()[2].value, 1.0);
  EXPECT_DOUBLE_EQ(sampler.series().points()[3].value, 7.0);
}

TEST(EmitTest, HeatmapContainsLabelsAndShades) {
  std::ostringstream os;
  print_heatmap(os, "Test map", "lte", "wifi", {"0.3", "8.6"}, {"0.3", "8.6"},
                [](std::size_t r, std::size_t c) { return r == c ? 1.0 : 0.1; });
  const std::string out = os.str();
  EXPECT_NE(out.find("Test map"), std::string::npos);
  EXPECT_NE(out.find("8.6"), std::string::npos);
  EXPECT_NE(out.find("1.00#"), std::string::npos);  // dark shade for 1.0
  EXPECT_NE(out.find("0.10"), std::string::npos);
}

TEST(EmitTest, DistributionPrintsCcdfValues) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i * 0.01);
  std::ostringstream os;
  print_distribution(os, "dist", "delay", {{"x", &s}}, /*ccdf=*/true, {0.5, 1.0});
  const std::string out = os.str();
  EXPECT_NE(out.find("CCDF"), std::string::npos);
  EXPECT_NE(out.find("0.50000"), std::string::npos);  // P(X > 0.5)
}

TEST(EmitTest, MakeXGridCoversQuantileCap) {
  Samples s;
  for (int i = 1; i <= 1000; ++i) s.add(static_cast<double>(i));
  const auto grid = make_x_grid({{"s", &s}}, 10, 0.999);
  ASSERT_EQ(grid.size(), 10u);
  EXPECT_NEAR(grid.back(), 999.0, 1.5);
  EXPECT_LT(grid.front(), grid.back());
}

TEST(EmitTest, GroupedTableShape) {
  std::ostringstream os;
  print_grouped(os, "tbl", "pair", {"0.3-8.6", "8.6-8.6"}, {"default", "ecf"},
                [](std::size_t g, std::size_t s) { return static_cast<double>(g * 10 + s); });
  const std::string out = os.str();
  EXPECT_NE(out.find("0.3-8.6"), std::string::npos);
  EXPECT_NE(out.find("ecf"), std::string::npos);
  EXPECT_NE(out.find("11.000"), std::string::npos);
}

TEST(EmitTest, TraceBucketsSeries) {
  TimeSeries ts;
  ts.add(TimePoint::from_ns(0), 5.0);
  std::ostringstream os;
  print_trace(os, "trace", {{"cwnd", &ts}}, Duration::seconds(1), TimePoint::origin(),
              TimePoint::origin() + Duration::seconds(3));
  const std::string out = os.str();
  EXPECT_NE(out.find("cwnd"), std::string::npos);
  EXPECT_NE(out.find("5.00"), std::string::npos);
}

TEST(EmitTest, HeaderMentionsScale) {
  std::ostringstream os;
  print_header(os, "bench_fig09", "paper Fig. 9", "quick scale");
  const std::string out = os.str();
  EXPECT_NE(out.find("bench_fig09"), std::string::npos);
  EXPECT_NE(out.find("paper Fig. 9"), std::string::npos);
  EXPECT_NE(out.find("quick scale"), std::string::npos);
}

}  // namespace
}  // namespace mps
