// Tests for the schedulers: the pure ECF decision (paper Algorithm 1), the
// BLEST blocking estimate, and behavioural tests of every scheduler over a
// live connection.
#include <gtest/gtest.h>

#include <tuple>

#include "core/ecf.h"
#include "exp/testbed.h"
#include "test_util.h"
#include "sched/blest.h"
#include "sched/daps.h"
#include "sched/minrtt.h"
#include "sched/oco.h"
#include "sched/qaware.h"
#include "sched/redundant.h"
#include "sched/registry.h"
#include "sched/roundrobin.h"
#include "sched/singlepath.h"

namespace mps {
namespace {

// --- ecf_decide: the paper's own example (Section 3.2) -----------------------
// Two subflows, RTTs 10 ms and 100 ms, CWND 10 each, 11 packets remaining:
// waiting for the 10 ms subflow completes in ~20 ms versus 100 ms when
// splitting, so ECF must wait.

TEST(EcfDecideTest, PaperSection32Example) {
  const auto d = ecf_decide(/*k=*/11, /*cwnd_f=*/10, /*ssthresh_f=*/10, /*cwnd_s=*/10,
                            /*ssthresh_s=*/10, /*rtt_f=*/0.010, /*rtt_s=*/0.100,
                            /*delta=*/0.0, /*waiting=*/false, /*beta=*/0.25);
  EXPECT_EQ(d, EcfDecision::kWait);
}

TEST(EcfDecideTest, LargeBacklogUsesSlowPath) {
  // k large: (1 + k/cwnd_f) * rtt_f >= rtt_s -> use both paths.
  const auto d = ecf_decide(/*k=*/1000, /*cwnd_f=*/10, /*ssthresh_f=*/10, /*cwnd_s=*/10,
                            /*ssthresh_s=*/10, 0.010, 0.100, 0.0, false, 0.25);
  EXPECT_EQ(d, EcfDecision::kUseSlow);
}

TEST(EcfDecideTest, TinyBacklogSlowWouldFinishFirst) {
  // First inequality favours waiting, but k is so small that the slow path
  // would complete before the fast one frees up (second inequality fails):
  // k/cwnd_s * rtt_s < 2*rtt_f + delta.
  const auto d = ecf_decide(/*k=*/1, /*cwnd_f=*/10, /*ssthresh_f=*/10, /*cwnd_s=*/10,
                            /*ssthresh_s=*/10, 0.040, 0.100, 0.0, false, 0.25);
  EXPECT_EQ(d, EcfDecision::kUseSlowSmallK);
}

TEST(EcfDecideTest, HysteresisKeepsWaiting) {
  // Pick k right at the boundary: without `waiting` the first inequality
  // fails; with it (factor 1+beta) it holds.
  const double rtt_f = 0.010, rtt_s = 0.100;
  const double k = 95.0;  // n = 10.5 -> n*rtt_f = 0.105 vs rtt_s = 0.100
  EXPECT_EQ(ecf_decide(k, 10, 10, 10, 10, rtt_f, rtt_s, 0.0, false, 0.25), EcfDecision::kUseSlow);
  EXPECT_EQ(ecf_decide(k, 10, 10, 10, 10, rtt_f, rtt_s, 0.0, true, 0.25), EcfDecision::kWait);
}

TEST(EcfDecideTest, DeltaMarginLoosensWaiting) {
  const double k = 100.0;  // n*rtt_f = 0.11 > rtt_s = 0.10 -> use slow
  EXPECT_EQ(ecf_decide(k, 10, 10, 10, 10, 0.010, 0.100, 0.0, false, 0.25), EcfDecision::kUseSlow);
  // A large delta (noisy RTTs) tips the decision to waiting.
  EXPECT_EQ(ecf_decide(k, 10, 10, 10, 10, 0.010, 0.100, 0.05, false, 0.25), EcfDecision::kWait);
}

TEST(EcfDecideTest, HomogeneousPathsNeverWait) {
  for (double k : {1.0, 10.0, 100.0, 1000.0}) {
    const auto d = ecf_decide(k, 10, 10, 10, 10, 0.050, 0.050, 0.0, false, 0.25);
    EXPECT_NE(d, EcfDecision::kWait) << "k=" << k;
  }
}

TEST(EcfDecideTest, ZeroCwndClamped) {
  // Degenerate inputs must not divide by zero.
  const auto d = ecf_decide(10, 0, 0, 0, 0, 0.010, 0.100, 0.0, false, 0.25);
  (void)d;
  SUCCEED();
}

// Property sweep: whenever ECF waits, the modelled completion time by
// waiting must be smaller than the modelled completion time via the slow
// path; sanity of the paper's inequality across a parameter grid.
struct EcfGridParam {
  double k, cwnd_f, cwnd_s, rtt_f, rtt_s;
};

class EcfGridTest : public ::testing::TestWithParam<EcfGridParam> {};

TEST_P(EcfGridTest, WaitImpliesFasterCompletion) {
  const auto& p = GetParam();
  const auto d = ecf_decide(p.k, p.cwnd_f, p.cwnd_f, p.cwnd_s, p.cwnd_s, p.rtt_f, p.rtt_s,
                            0.0, false, 0.25);
  if (d == EcfDecision::kWait) {
    const double t_wait = (1.0 + ecf_transfer_rounds(p.k, p.cwnd_f, p.cwnd_f)) * p.rtt_f;
    EXPECT_LT(t_wait, p.rtt_s + 1e-12);
    // And the slow path genuinely needs at least ~2 fast RTTs.
    EXPECT_GE(ecf_transfer_rounds(p.k, p.cwnd_s, p.cwnd_s) * p.rtt_s, 2.0 * p.rtt_f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EcfGridTest,
    ::testing::Values(EcfGridParam{5, 10, 10, 0.01, 0.1}, EcfGridParam{20, 10, 10, 0.01, 0.1},
                      EcfGridParam{50, 20, 5, 0.02, 0.3}, EcfGridParam{200, 50, 25, 0.04, 0.9},
                      EcfGridParam{8, 40, 30, 0.08, 0.9}, EcfGridParam{500, 80, 30, 0.09, 0.6},
                      EcfGridParam{3, 10, 2, 0.005, 0.4}, EcfGridParam{64, 32, 16, 0.05, 0.25}));

// --- BLEST estimate -----------------------------------------------------------

TEST(BlestTest, BlocksWhenWindowTight) {
  // Fast path could send ~10 rounds * 50 segs while the slow RTT elapses;
  // with only ~20 segments of window space left, sending on the slow path
  // must be declined.
  EXPECT_TRUE(blest_would_block(/*lambda=*/1.0, /*cwnd_f=*/50, /*rtt_f=*/0.05,
                                /*rtt_s=*/0.5, /*mss=*/1428.0,
                                /*window=*/30'000.0, /*meta_inflight=*/0.0,
                                /*slow_inflight=*/0.0));
}

TEST(BlestTest, AllowsWhenWindowAmple) {
  EXPECT_FALSE(blest_would_block(1.0, 50, 0.05, 0.5, 1428.0,
                                 /*window=*/8'000'000.0, 0.0, 0.0));
}

TEST(BlestTest, LambdaScalesConservatism) {
  const double window = 1'428'000.0;  // exactly 1000 segments
  // sent_f = 10 * (50 + 4.5) * mss = 545 segs -> no block at lambda 1,
  // block at lambda 2.
  EXPECT_FALSE(blest_would_block(1.0, 50, 0.05, 0.5, 1428.0, window, 0.0, 0.0));
  EXPECT_TRUE(blest_would_block(2.0, 50, 0.05, 0.5, 1428.0, window, 0.0, 0.0));
}

TEST(BlestTest, SlowInflightReducesSpace) {
  const double window = 860'000.0;
  EXPECT_FALSE(blest_would_block(1.0, 50, 0.05, 0.5, 1428.0, window, 0.0, 0.0));
  EXPECT_TRUE(blest_would_block(1.0, 50, 0.05, 0.5, 1428.0, window, 0.0,
                                /*slow_inflight=*/100'000.0));
}

// --- registry -------------------------------------------------------------------

TEST(RegistryTest, KnowsAllNames) {
  for (const char* name : {"default", "minrtt", "ecf", "blest", "daps", "rr", "single",
                           "redundant", "qaware", "oco"}) {
    auto factory = scheduler_factory(name);
    EXPECT_NE(factory(), nullptr) << name;
  }
}

TEST(RegistryTest, NamesStayInSyncWithTheFactory) {
  // scheduler_names() is the canonical list: every entry constructs through
  // the factory and reports itself under the same name, so a scheduler added
  // to one side but not the other fails here.
  for (const std::string& name : scheduler_names()) {
    auto sched = scheduler_factory(name)();
    ASSERT_NE(sched, nullptr) << name;
    EXPECT_EQ(std::string(sched->name()), name);
  }
  EXPECT_EQ(scheduler_names().size(), 9u);
  // "minrtt" is an alias, not a canonical name.
  EXPECT_EQ(std::string(scheduler_factory("minrtt")()->name()), "default");
}

TEST(RegistryTest, ThrowsOnUnknown) {
  EXPECT_THROW(scheduler_factory("nope"), std::invalid_argument);
}

TEST(RegistryTest, UnknownNameErrorEnumeratesEveryRegisteredName) {
  try {
    scheduler_factory("nope");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nope"), std::string::npos);
    for (const std::string& name : scheduler_names()) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

TEST(RegistryTest, PaperSchedulersListsFour) {
  EXPECT_EQ(paper_schedulers().size(), 4u);
}

// --- behavioural tests over a live connection -----------------------------------

TestbedConfig hetero() {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(1.0));
  tb.lte = lte_profile(Rate::mbps(10.0));
  return tb;
}

TEST(SchedulerBehaviourTest, SinglePathUsesOnlyPrimary) {
  Testbed bed(hetero());
  auto conn = bed.make_connection([] { return std::make_unique<SinglePathScheduler>(0); });
  conn->send(200'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(20));
  EXPECT_GT(conn->subflows()[0]->stats().segments_sent, 0u);
  EXPECT_EQ(conn->subflows()[1]->stats().segments_sent, 0u);
}

TEST(SchedulerBehaviourTest, RoundRobinBalancesHomogeneousPaths) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(5));
  tb.lte = lte_profile(Rate::mbps(5));
  // Equalize base RTTs: with asymmetric RTTs the faster path legitimately
  // refills its send queue more often even under round robin.
  tb.lte.rtt_base = tb.wifi.rtt_base;
  tb.conn.delayed_secondary_join = false;
  Testbed bed(tb);
  auto conn = bed.make_connection([] { return std::make_unique<RoundRobinScheduler>(); });
  BulkSender sender(*conn, 1'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(20));
  const double a = static_cast<double>(conn->subflows()[0]->stats().segments_sent);
  const double b = static_cast<double>(conn->subflows()[1]->stats().segments_sent);
  EXPECT_NEAR(a / (a + b), 0.5, 0.1);
}

TEST(SchedulerBehaviourTest, MinRttPrefersFastPath) {
  Testbed bed(hetero());
  auto conn = bed.make_connection(scheduler_factory("default"));
  BulkSender sender(*conn, 3'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(20));
  // The 10 Mbps LTE path must carry the bulk of a 3 MB transfer. (The
  // min-RTT default still tops up the slow path's send queue whenever the
  // fast one is saturated — the paper's under-utilization pattern — so the
  // split is far from the 10:1 capacity ratio.)
  const auto wifi = conn->subflows()[0]->stats().bytes_sent;
  const auto lte = conn->subflows()[1]->stats().bytes_sent;
  EXPECT_GT(lte, 2 * wifi);
}

TEST(SchedulerBehaviourTest, EcfReducesSlowPathTailUsage) {
  // On a short transfer over very heterogeneous paths, ECF must send fewer
  // bytes on the slow path than the default scheduler.
  auto bytes_on_wifi = [](const char* sched) {
    TestbedConfig tb;
    tb.wifi = wifi_profile(Rate::mbps(0.3));
    tb.lte = lte_profile(Rate::mbps(10.0));
    // Warm start: both subflows usable from t = 0, so the comparison sees
    // scheduling policy rather than the shared MP_JOIN warm-up phase.
    tb.conn.delayed_secondary_join = false;
    Testbed bed(tb);
    auto conn = bed.make_connection(scheduler_factory(sched));
    BulkSender sender(*conn, 2'000'000);
    bed.sim().run_until(TimePoint::origin() + Duration::seconds(120));
    return conn->subflows()[0]->stats().bytes_sent;
  };
  EXPECT_LT(bytes_on_wifi("ecf"), bytes_on_wifi("default"));
}

TEST(SchedulerBehaviourTest, DapsFollowsRttProportionalPlan) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(5));
  tb.lte = lte_profile(Rate::mbps(5));
  tb.conn.delayed_secondary_join = false;
  Testbed bed(tb);
  auto conn = bed.make_connection([] { return std::make_unique<DapsScheduler>(); });
  BulkSender sender(*conn, 2'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(30));
  const double wifi = static_cast<double>(conn->subflows()[0]->stats().segments_sent);
  const double lte = static_cast<double>(conn->subflows()[1]->stats().segments_sent);
  // WiFi RTT (16 ms) << LTE RTT (80 ms): the plan gives WiFi the larger
  // share even though rates are equal.
  EXPECT_GT(wifi, lte);
}

TEST(SchedulerBehaviourTest, RedundantDuplicatesOnBothPaths) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(5));
  tb.lte = lte_profile(Rate::mbps(5));
  tb.conn.delayed_secondary_join = false;
  Testbed bed(tb);
  auto conn = bed.make_connection([] { return std::make_unique<RedundantScheduler>(); });
  std::uint64_t delivered = 0;
  conn->on_deliver = [&](std::uint64_t b, TimePoint) { delivered += b; };
  BulkSender sender(*conn, 500'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(60));
  // Exactly the payload reaches the app once...
  EXPECT_EQ(delivered, 500'000u);
  // ...but both subflows carried (nearly) the whole stream: originals plus
  // reinjected copies together roughly double the payload on the wire.
  const auto& s0 = conn->subflows()[0]->stats();
  const auto& s1 = conn->subflows()[1]->stats();
  // (Copies are skipped while the sibling's send queue is full, so the
  // duplication factor is below 2x but clearly above 1.2x.)
  const std::uint64_t wire_segments =
      s0.segments_sent + s0.reinjected_segments + s1.segments_sent + s1.reinjected_segments;
  EXPECT_GT(wire_segments, 500'000u / kDefaultMss * 5 / 4);
  EXPECT_GT(s0.reinjected_segments + s1.reinjected_segments, 50u);
  EXPECT_GT(conn->meta_stats().duplicate_segments, 50u);
}

TEST(SchedulerBehaviourTest, RedundantMasksLossLatency) {
  // Redundancy pays off when one path is lossy: the copy on the clean path
  // masks retransmission delays.
  auto ooo_p99 = [](const char* sched) {
    TestbedConfig tb;
    tb.wifi = wifi_profile(Rate::mbps(5));
    tb.lte = lte_profile(Rate::mbps(5));
    tb.wifi.loss_rate = 0.03;
    tb.seed = 11;
    tb.conn.delayed_secondary_join = false;
    Testbed bed(tb);
    auto conn = bed.make_connection(scheduler_factory(sched));
    BulkSender sender(*conn, 1'000'000);
    bed.sim().run_until(TimePoint::origin() + Duration::seconds(120));
    return conn->ooo_delay().quantile(0.99);
  };
  EXPECT_LT(ooo_p99("redundant"), ooo_p99("default"));
}

TEST(SchedulerBehaviourTest, EverySchedulerCompletesTheTransfer) {
  for (const std::string& name : scheduler_names()) {
    Testbed bed(hetero());
    auto conn = bed.make_connection(scheduler_factory(name));
    std::uint64_t delivered = 0;
    conn->on_deliver = [&](std::uint64_t b, TimePoint) { delivered += b; };
    BulkSender sender(*conn, 1'000'000);
    bed.sim().run_until(TimePoint::origin() + Duration::seconds(120));
    EXPECT_EQ(delivered, 1'000'000u) << name;
  }
}

TEST(SchedulerBehaviourTest, QAwarePrefersThePathWithShorterDrainTime) {
  // On 1 Mbps wifi vs 10 Mbps lte, wifi's bottleneck queue fills and its
  // per-packet serialization dominates the drain estimate, so QAware should
  // steer the bulk of the transfer onto lte.
  Testbed bed(hetero());
  auto conn = bed.make_connection(scheduler_factory("qaware"));
  std::uint64_t delivered = 0;
  conn->on_deliver = [&](std::uint64_t b, TimePoint) { delivered += b; };
  BulkSender sender(*conn, 1'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(120));
  EXPECT_EQ(delivered, 1'000'000u);
  EXPECT_GT(conn->subflows()[1]->stats().segments_sent,
            conn->subflows()[0]->stats().segments_sent);
}

TEST(SchedulerBehaviourTest, OcoTracksBothPathsWithNormalizedWeights) {
  OcoScheduler* oco = nullptr;
  Testbed bed(hetero());
  auto conn = bed.make_connection([&] {
    auto s = std::make_unique<OcoScheduler>();
    oco = s.get();
    return s;
  });
  std::uint64_t delivered = 0;
  conn->on_deliver = [&](std::uint64_t b, TimePoint) { delivered += b; };
  BulkSender sender(*conn, 1'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(120));
  EXPECT_EQ(delivered, 1'000'000u);
  ASSERT_NE(oco, nullptr);
  EXPECT_EQ(oco->tracked_paths(), 2u);
  const double w0 = oco->weight_of(conn->subflows()[0]->id());
  const double w1 = oco->weight_of(conn->subflows()[1]->id());
  EXPECT_GT(w0, 0.0);
  EXPECT_GT(w1, 0.0);
  EXPECT_NEAR(w0 + w1, 1.0, 1e-9);
  // No loss anywhere: the redundancy regime must never arm.
  EXPECT_FALSE(oco->armed());
}

}  // namespace
}  // namespace mps
