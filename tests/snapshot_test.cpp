// Snapshot-and-fork tests (exp/snapshot.h).
//
// The core claim under test: a world forked at a mid-run snapshot produces
// output byte-identical to the unforked run — for every golden-corpus
// preset, at serial and parallel sweep widths, at several snapshot times,
// and through chained forks. Plus the satellite regressions for the raw-this
// capture fixes the fork audit surfaced (an HttpExchange or TrafficEngine
// destroyed with callbacks still scheduled used to leave dangling events).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/http.h"
#include "check/invariants.h"
#include "check/stress.h"
#include "exp/snapshot.h"
#include "exp/testbed.h"
#include "obs/recorder.h"
#include "sched/registry.h"

namespace mps {
namespace {

namespace fs = std::filesystem;

const fs::path kScenarioDir = fs::path(MPS_SOURCE_DIR) / "scenarios";

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<fs::path> scenario_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(kScenarioDir)) {
    if (entry.path().extension() == ".json") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

// Same smoke scale as the golden-corpus test, so runtimes stay in ctest
// territory while every workload kind is covered.
void apply_smoke_overrides(ScenarioSpec& spec) {
  if (spec.traffic.enabled) return;
  spec.workload.runs = 1;
  if (spec.workload.kind == WorkloadKind::kStream) spec.workload.video_s = 5.0;
  if (spec.workload.kind == WorkloadKind::kDownload) spec.workload.bytes = 65536;
}

// A time strictly inside the run, so the fork genuinely splits prefix from
// suffix for every workload kind at smoke scale.
double snapshot_time_for(const ScenarioSpec& spec) {
  if (spec.traffic.enabled) return spec.traffic.duration_s * 0.5;
  switch (spec.workload.kind) {
    case WorkloadKind::kStream:
      return spec.workload.video_s * 0.5;
    case WorkloadKind::kDownload:
      return 0.05;
    case WorkloadKind::kWeb:
      return 0.5;
  }
  return 0.5;
}

bool wants_recorder(const ScenarioSpec& spec) {
  return spec.record.summarize &&
         (spec.traffic.enabled || spec.workload.kind == WorkloadKind::kStream);
}

// Renders a scratch (unforked) run exactly as golden_test/mps_run do. When
// the spec asks for a recorder summary it is included, so recorder content
// is part of the byte-identity check; `rec_out` additionally exposes the
// recorder for data_equals assertions.
std::string render_scratch(const ScenarioSpec& spec, FlightRecorder* rec_out) {
  std::string out;
  ScenarioRunOptions opts;
  if (wants_recorder(spec)) opts.recorder = rec_out;
  const ScenarioOutcome outcome = run_scenario(spec, opts);
  out += format_outcome(spec, outcome);
  if (opts.recorder != nullptr) {
    out += "\n--- flight recorder ---\n";
    std::ostringstream report;
    opts.recorder->summarize(report);
    out += report.str();
  }
  return out;
}

std::string render_forked(const ScenarioSpec& spec, double snapshot_at_s, int jobs,
                          FlightRecorder* rec_out) {
  std::string out;
  ScenarioRunOptions opts;
  if (wants_recorder(spec)) opts.recorder = rec_out;
  SweepOptions sweep;
  sweep.jobs = jobs;
  const ScenarioOutcome outcome = run_scenario_forked(spec, snapshot_at_s, opts, sweep);
  out += format_outcome(spec, outcome);
  if (opts.recorder != nullptr) {
    out += "\n--- flight recorder ---\n";
    std::ostringstream report;
    opts.recorder->summarize(report);
    out += report.str();
  }
  return out;
}

class ForkVsScratch : public ::testing::TestWithParam<int> {};

// For every golden-corpus preset: fork at a mid-run snapshot, finish the
// fork, and require output (and recorder data, where the preset records)
// byte-identical to the never-forked run.
TEST_P(ForkVsScratch, EveryPresetByteIdentical) {
  const int jobs = GetParam();
  const auto files = scenario_files();
  ASSERT_FALSE(files.empty()) << "no scenario presets found in " << kScenarioDir;

  for (const fs::path& file : files) {
    SCOPED_TRACE(file.filename().string());
    ScenarioSpec spec = scenario_from_json(Json::parse(slurp(file)));
    apply_smoke_overrides(spec);

    FlightRecorder scratch_rec;
    FlightRecorder forked_rec;
    const std::string scratch = render_scratch(spec, &scratch_rec);
    const std::string forked =
        render_forked(spec, snapshot_time_for(spec), jobs, &forked_rec);

    EXPECT_EQ(scratch, forked) << "fork-vs-scratch output drift in "
                               << file.filename().string();
    if (wants_recorder(spec)) {
      EXPECT_TRUE(scratch_rec.data_equals(forked_rec))
          << "recorder data drift in " << file.filename().string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Jobs, ForkVsScratch, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "jobs" + std::to_string(info.param);
                         });

// The learned-state schedulers through the fork machinery, under loss so the
// state is nontrivial by snapshot time: QAware is stateless by design, but
// OCO carries weights, deficit credits, activity baselines, and the
// redundancy-armed flag, all of which restore_from() must copy exactly for
// the forked suffix to replay byte-identically — at serial and parallel
// sweep widths, and under a coupled controller so the shared CC terms
// rebuild in the fork too.
TEST(SnapshotFork, QAwareAndOcoForkByteIdenticalUnderLoss) {
  for (const char* sched : {"qaware", "oco"}) {
    for (const char* cc : {"balia", "olia"}) {
      for (int jobs : {1, 4}) {
        SCOPED_TRACE(std::string(sched) + "/" + cc + " jobs=" + std::to_string(jobs));
        StressCell cell;
        cell.profile = "crossproduct";
        cell.scheduler = sched;
        cell.cc = cc;
        ScenarioSpec spec = stress_spec(cell);
        spec.workload.bytes = 131072;
        const std::string scratch = render_scratch(spec, nullptr);
        const std::string forked = render_forked(spec, 0.05, jobs, nullptr);
        EXPECT_EQ(scratch, forked);
      }
    }
  }
}

// Forking must be equivalence-preserving wherever the snapshot lands —
// before the first event, mid-run, and after the workload finished.
TEST(SnapshotFork, ForkAtSeveralTimesIsEquivalent) {
  StreamingParams p;
  p.wifi_mbps = 8.0;
  p.lte_mbps = 2.0;
  p.scheduler = "ecf";
  p.video = Duration::seconds(5);
  p.seed = 42;

  const StreamingResult scratch = run_streaming(p);
  const std::string scratch_chunks = [&] {
    std::ostringstream os;
    for (const auto& c : scratch.chunks) {
      os << c.bitrate_mbps << ":" << (c.fetch_end - c.fetch_start).to_seconds() << ";";
    }
    return os.str();
  }();

  for (const double at_s : {0.0, 0.5, 2.0, 4.5, 1000.0}) {
    SCOPED_TRACE(at_s);
    StreamingRun run(p);
    run.start();
    run.run_to(TimePoint::origin() + Duration::from_seconds(at_s));
    std::unique_ptr<StreamingRun> forked = run.fork();
    const StreamingResult res = forked->finish();

    EXPECT_EQ(scratch.mean_bitrate_mbps, res.mean_bitrate_mbps);
    EXPECT_EQ(scratch.mean_throughput_mbps, res.mean_throughput_mbps);
    EXPECT_EQ(scratch.fraction_fast, res.fraction_fast);
    EXPECT_EQ(scratch.rebuffer_time, res.rebuffer_time);
    EXPECT_EQ(scratch.chunks_fetched, res.chunks_fetched);
    std::ostringstream os;
    for (const auto& c : res.chunks) {
      os << c.bitrate_mbps << ":" << (c.fetch_end - c.fetch_start).to_seconds() << ";";
    }
    EXPECT_EQ(scratch_chunks, os.str());
  }
}

// Fork-of-a-fork, and sibling forks from one prefix: all copies are
// independent (finishing one cannot perturb another) and all agree with the
// unforked run. ASan/TSan runs of this test pin the no-dangling claim.
TEST(SnapshotFork, DoubleForkIndependence) {
  DownloadParams p;
  p.wifi_mbps = 1.0;
  p.lte_mbps = 5.0;
  p.bytes = 256 * 1024;
  p.scheduler = "ecf";
  p.seed = 7;

  const DownloadResult scratch = run_download(p);

  DownloadRun run(p);
  run.start();
  run.run_to(TimePoint::origin() + Duration::from_seconds(0.2));
  std::unique_ptr<DownloadRun> fork_a = run.fork();
  std::unique_ptr<DownloadRun> fork_b = run.fork();

  // Advance the first fork further, then fork it again.
  fork_a->run_to(TimePoint::origin() + Duration::from_seconds(0.5));
  std::unique_ptr<DownloadRun> fork_aa = fork_a->fork();

  const DownloadResult res_b = fork_b->finish();
  fork_b.reset();
  const DownloadResult res_aa = fork_aa->finish();
  fork_aa.reset();
  const DownloadResult res_a = fork_a->finish();
  run.set_scheduler(scheduler_factory(p.scheduler));  // exercised, not asserted

  EXPECT_EQ(scratch.completion, res_a.completion);
  EXPECT_EQ(scratch.completion, res_b.completion);
  EXPECT_EQ(scratch.completion, res_aa.completion);
  EXPECT_EQ(scratch.fraction_fast, res_a.fraction_fast);
  EXPECT_EQ(scratch.fraction_fast, res_aa.fraction_fast);
}

// The protocol invariants hold inside a forked world: attach the checker to
// the fork's recorder stream and let it validate every event of the suffix.
TEST(SnapshotFork, InvariantCheckerCleanInForkedWorld) {
  StreamingParams p;
  p.wifi_mbps = 4.0;
  p.lte_mbps = 8.0;
  p.scheduler = "ecf";
  p.video = Duration::seconds(5);
  p.seed = 3;
  FlightRecorder rec;
  p.recorder = &rec;

  StreamingRun run(p);
  run.start();
  run.run_to(TimePoint::origin() + Duration::from_seconds(2.0));
  std::unique_ptr<StreamingRun> forked = run.fork();

  InvariantChecker checker(forked->sim());
  checker.watch(forked->connection());
  forked->finish();
  checker.check_now("forked-world-final");
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.checks_run(), 0u);
}

// The what-if grid's two modes — shared prefix forked per scheduler vs the
// full from-scratch grid — must agree cell-for-cell.
TEST(SnapshotFork, WhatIfGridSharedPrefixMatchesScratch) {
  ScenarioSpec spec;
  spec.name = "whatif";
  spec.scheduler = "minrtt";
  spec.workload.kind = WorkloadKind::kDownload;
  spec.workload.bytes = 512 * 1024;
  spec.workload.runs = 2;
  spec.seed = 11;
  spec.paths = {wifi_path(2.0), lte_path(8.0)};

  const std::vector<std::string> schedulers = {"minrtt", "ecf", "rr"};
  const double switch_at = 0.3;

  const auto shared = run_whatif_grid(spec, schedulers, switch_at, /*share_prefix=*/true);
  const auto scratch = run_whatif_grid(spec, schedulers, switch_at, /*share_prefix=*/false);

  ASSERT_EQ(shared.size(), schedulers.size());
  ASSERT_EQ(scratch.size(), schedulers.size());
  for (std::size_t b = 0; b < schedulers.size(); ++b) {
    SCOPED_TRACE(schedulers[b]);
    EXPECT_EQ(format_outcome(spec, shared[b]), format_outcome(spec, scratch[b]));
    EXPECT_EQ(shared[b].download.completion, scratch[b].download.completion);
  }
  // The divergence is real: different schedulers reach different outcomes.
  EXPECT_NE(shared[1].download.completion, shared[2].download.completion);
}

TEST(SnapshotFork, WhatIfGridRejectsUnsupportedWorkloads) {
  ScenarioSpec spec;
  spec.workload.kind = WorkloadKind::kWeb;
  spec.paths = {wifi_path(5.0), lte_path(5.0)};
  EXPECT_THROW(run_whatif_grid(spec, {"ecf"}, 1.0, true), std::invalid_argument);
}

// --- satellite: raw-`this` capture regressions ------------------------------

// Destroying an HttpExchange with a GET's request event still in flight must
// cancel that event: it used to fire into the freed exchange when the
// simulation kept running (caught by the fork audit, reproduced here).
TEST(DanglingCallbacks, HttpExchangeDestroyedWithInflightRequest) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(8.0));
  tb.lte = lte_profile(Rate::mbps(8.0));
  tb.seed = 1;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("minrtt"));
  auto http = std::make_unique<HttpExchange>(bed.sim(), *conn, bed.request_delay());

  bool done_fired = false;
  http->get(100'000, [&](const ObjectResult&) { done_fired = true; });
  ASSERT_GT(bed.sim().pending_events(), 0u);
  http.reset();  // request event still pending

  bed.sim().run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_FALSE(done_fired);
}

// Destroying a TrafficEngine mid-run (pending arrivals, per-flow teardown
// posts, and an on_tick chain) must cancel everything it scheduled; the
// simulation then keeps running without touching the freed engine.
TEST(DanglingCallbacks, TrafficEngineDestroyedMidRun) {
  const ScenarioSpec spec = fairness_cell_spec("minrtt", 4, 2.0, 200'000, 9);
  WorldBuilder builder(spec);
  std::unique_ptr<World> world = builder.build(nullptr);

  int ticks = 0;
  auto engine = std::make_unique<TrafficEngine>(*world, builder.spec());
  engine->tick_s = 0.1;
  engine->on_tick = [&ticks] { ++ticks; };
  engine->start();

  world->sim().run_until(TimePoint::origin() + Duration::from_seconds(0.7));
  ASSERT_GT(ticks, 0);
  const int ticks_at_destroy = ticks;
  engine.reset();  // arrivals, teardown posts, and the tick chain are pending

  world->sim().run_until(TimePoint::origin() + Duration::from_seconds(3.0));
  EXPECT_EQ(ticks, ticks_at_destroy);
}

}  // namespace
}  // namespace mps
