// Tests for the MPTCP meta connection: send-buffer accounting, data-sequence
// reassembly, out-of-order delay measurement, window autotuning,
// opportunistic retransmission, and multi-connection demultiplexing.
#include <gtest/gtest.h>

#include <memory>

#include "exp/testbed.h"
#include "test_util.h"
#include "sched/registry.h"
#include "sched/minrtt.h"

namespace mps {
namespace {

TestbedConfig hetero_config() {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(1.0));
  tb.lte = lte_profile(Rate::mbps(10.0));
  return tb;
}

TEST(ConnectionTest, SendLimitedBySndbuf) {
  TestbedConfig tb = hetero_config();
  tb.conn.sndbuf_bytes = 100 * 1000;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  const std::uint64_t accepted = conn->send(1'000'000);
  EXPECT_EQ(accepted, 100 * 1000u);
  EXPECT_EQ(conn->sndbuf_free(), 0u);
}

TEST(ConnectionTest, DeliversAllBytesInOrder) {
  Testbed bed(hetero_config());
  auto conn = bed.make_connection(scheduler_factory("default"));
  std::uint64_t delivered = 0;
  TimePoint last;
  conn->on_deliver = [&](std::uint64_t bytes, TimePoint when) {
    delivered += bytes;
    EXPECT_GE(when, last);
    last = when;
  };
  BulkSender sender(*conn, 500'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(30));
  EXPECT_EQ(delivered, 500'000u);
  EXPECT_EQ(conn->delivered_bytes(), 500'000u);
}

TEST(ConnectionTest, DuplicateHeldSegmentWithLongerPayloadExtendsCoverage) {
  // A held out-of-order segment can be followed by a duplicate of the same
  // data_seq that reaches further (e.g. a re-segmented reinjection). The
  // reorder buffer must adopt the longer coverage: the subflow-level
  // cumulative ack already freed the sender copy, so silently keeping the
  // short one would strand the extra bytes and stall the transfer forever.
  Testbed bed(hetero_config());
  auto conn = bed.make_connection(scheduler_factory("default"));
  std::uint64_t delivered = 0;
  conn->on_deliver = [&](std::uint64_t bytes, TimePoint) { delivered += bytes; };
  const TimePoint t = bed.sim().now();
  conn->on_subflow_deliver(0, 1428, 500, t);
  EXPECT_EQ(conn->meta_ooo_bytes(), 500u);
  conn->on_subflow_deliver(0, 1428, 1428, t);  // longer duplicate wins
  EXPECT_EQ(conn->meta_ooo_bytes(), 1428u);
  conn->on_subflow_deliver(0, 1428, 100, t);  // shorter duplicate is ignored
  EXPECT_EQ(conn->meta_ooo_bytes(), 1428u);
  // Fill the hole: the drain must deliver through the extended coverage.
  conn->on_subflow_deliver(0, 0, 1428, t);
  bed.sim().run();
  EXPECT_EQ(conn->rcv_data_next(), 2u * 1428u);
  EXPECT_EQ(delivered, 2u * 1428u);
  EXPECT_EQ(conn->meta_ooo_bytes(), 0u);
}

TEST(ConnectionTest, SendableCallbackRefillsBuffer) {
  TestbedConfig tb = hetero_config();
  tb.conn.sndbuf_bytes = 50'000;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  std::uint64_t remaining = 400'000;
  std::uint64_t queued = 0;
  auto push = [&] {
    const std::uint64_t sent = conn->send(remaining);
    queued += sent;
    remaining -= sent;
  };
  conn->on_sendable = push;
  std::uint64_t delivered = 0;
  conn->on_deliver = [&](std::uint64_t b, TimePoint) { delivered += b; };
  push();
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(60));
  EXPECT_EQ(queued, 400'000u);
  EXPECT_EQ(delivered, 400'000u);
}

TEST(ConnectionTest, OooDelayMeasuredPerPacket) {
  Testbed bed(hetero_config());
  auto conn = bed.make_connection(scheduler_factory("default"));
  BulkSender sender(*conn, 2'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(60));
  const Samples& ooo = conn->ooo_delay();
  // One sample per delivered packet; heterogeneous paths must produce some
  // nonzero delays.
  EXPECT_GT(ooo.count(), 1000u);
  EXPECT_GT(ooo.max(), 0.0);
  EXPECT_GE(ooo.min(), 0.0);
}

TEST(ConnectionTest, HomogeneousPathsLittleOoo) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(5));
  tb.lte = lte_profile(Rate::mbps(5));
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  conn->send(1'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(30));
  // Rates are symmetric but base RTTs differ (16 vs 80 ms), so a small
  // median reordering delay remains; it must stay well under the
  // heterogeneous-bandwidth case (seconds).
  EXPECT_LT(conn->ooo_delay().quantile(0.5), 0.3);
}

TEST(ConnectionTest, RwndAutotuneGrowsWithDelivery) {
  TestbedConfig tb = hetero_config();
  tb.conn.rcv_autotune = true;
  tb.conn.rcv_initial_window = 64 * 1024;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  EXPECT_EQ(conn->meta_rwnd(), 64 * 1024u);
  BulkSender sender(*conn, 2'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(60));
  EXPECT_GT(conn->meta_rwnd(), 1'000'000u);
}

TEST(ConnectionTest, RwndAutotuneDisabledUsesFullBuffer) {
  TestbedConfig tb = hetero_config();
  tb.conn.rcv_autotune = false;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  EXPECT_EQ(conn->meta_rwnd(), tb.conn.rcvbuf_bytes);
}

TEST(ConnectionTest, MetaInflightBoundedByRwnd) {
  TestbedConfig tb = hetero_config();
  tb.conn.rcv_autotune = true;
  tb.conn.rcv_initial_window = 32 * 1024;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  conn->send(1'000'000);
  // Immediately after the first scheduling round the meta inflight must not
  // exceed the advertised window.
  EXPECT_LE(conn->meta_inflight(), 32 * 1024u + kDefaultMss);
}

TEST(ConnectionTest, OpportunisticRetransmissionFiresUnderStall) {
  TestbedConfig tb;
  // Very slow wifi + fast LTE + small window: the wifi subflow blocks the
  // meta window, forcing reinjection + penalization.
  tb.wifi = wifi_profile(Rate::mbps(0.3));
  tb.lte = lte_profile(Rate::mbps(10.0));
  tb.conn.rcv_autotune = true;
  tb.conn.rcv_initial_window = 64 * 1024;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  conn->send(3'000'000);
  std::uint64_t queued = 3'000'000 - (3'000'000 - conn->sndbuf_free());
  (void)queued;
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(40));
  EXPECT_GT(conn->meta_stats().window_stalls, 0u);
  EXPECT_GT(conn->meta_stats().reinjections, 0u);
  // Penalization halved the blocking subflow at least once.
  std::uint64_t penalizations = 0;
  for (Subflow* sf : conn->subflows()) penalizations += sf->stats().penalizations;
  EXPECT_GT(penalizations, 0u);
}

TEST(ConnectionTest, OpportunisticRetransmissionCanBeDisabled) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(0.3));
  tb.lte = lte_profile(Rate::mbps(10.0));
  tb.conn.rcv_autotune = true;
  tb.conn.rcv_initial_window = 64 * 1024;
  tb.conn.opportunistic_retransmission = false;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  conn->send(3'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(20));
  EXPECT_EQ(conn->meta_stats().reinjections, 0u);
}

TEST(ConnectionTest, DuplicatesDroppedAtMetaLevel) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(0.3));
  tb.lte = lte_profile(Rate::mbps(10.0));
  tb.conn.rcv_autotune = true;
  tb.conn.rcv_initial_window = 64 * 1024;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  std::uint64_t delivered = 0;
  conn->on_deliver = [&](std::uint64_t b, TimePoint) { delivered += b; };
  BulkSender sender(*conn, 2'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(120));
  // Reinjection duplicates must not inflate delivery.
  EXPECT_EQ(delivered, 2'000'000u);
  EXPECT_GT(conn->meta_stats().reinjections, 0u);
  EXPECT_GT(conn->meta_stats().duplicate_segments, 0u);
}

TEST(ConnectionTest, TwoConnectionsShareThePaths) {
  Testbed bed(hetero_config());
  auto a = bed.make_connection(scheduler_factory("default"));
  auto b = bed.make_connection(scheduler_factory("ecf"));
  std::uint64_t da = 0, db = 0;
  a->on_deliver = [&](std::uint64_t x, TimePoint) { da += x; };
  b->on_deliver = [&](std::uint64_t x, TimePoint) { db += x; };
  BulkSender sa(*a, 300'000);
  BulkSender sb(*b, 300'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(30));
  EXPECT_EQ(da, 300'000u);
  EXPECT_EQ(db, 300'000u);
}

TEST(ConnectionTest, CcSiblingInfoExposesAllSubflows) {
  Testbed bed(hetero_config());
  auto conn = bed.make_connection(scheduler_factory("default"));
  std::vector<CcSiblingInfo> info;
  conn->cc_sibling_info(info);
  ASSERT_EQ(info.size(), 2u);
  EXPECT_EQ(info[0].subflow_id, 0u);
  EXPECT_EQ(info[1].subflow_id, 1u);
  EXPECT_GT(info[0].cwnd, 0.0);
}

TEST(ConnectionTest, FourSubflowsTwoPerPath) {
  TestbedConfig tb = hetero_config();
  tb.subflows_per_path = 2;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("ecf"));
  EXPECT_EQ(conn->subflows().size(), 4u);
  std::uint64_t delivered = 0;
  conn->on_deliver = [&](std::uint64_t b, TimePoint) { delivered += b; };
  BulkSender sender(*conn, 500'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(30));
  EXPECT_EQ(delivered, 500'000u);
}

TEST(ConnectionTest, SecondarySubflowJoinsLate) {
  TestbedConfig tb = hetero_config();
  tb.conn.delayed_secondary_join = true;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  EXPECT_TRUE(conn->subflows()[0]->established());
  EXPECT_FALSE(conn->subflows()[1]->established());
  bed.sim().run_until(TimePoint::origin() + bed.lte().rtt_base() + Duration::millis(1));
  EXPECT_TRUE(conn->subflows()[1]->established());
}

TEST(ConnectionTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Testbed bed(TestbedConfig{});
    auto conn = bed.make_connection(scheduler_factory("ecf"));
    conn->send(1'000'000);
    bed.sim().run_until(TimePoint::origin() + Duration::seconds(10));
    return std::make_tuple(conn->delivered_bytes(), conn->subflows()[0]->stats().bytes_sent,
                           conn->subflows()[1]->stats().bytes_sent,
                           bed.sim().events_processed());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mps
