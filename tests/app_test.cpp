// Tests for the application layer: HTTP exchange, DASH session + ABR, web
// page model and browser.
#include <gtest/gtest.h>

#include <memory>

#include "app/dash.h"
#include "app/http.h"
#include "app/web.h"
#include "exp/testbed.h"
#include "sched/registry.h"

namespace mps {
namespace {

struct Rig {
  explicit Rig(TestbedConfig tb = {}) : bed(tb) {
    conn = bed.make_connection(scheduler_factory("default"));
    http = std::make_unique<HttpExchange>(bed.sim(), *conn, bed.request_delay());
  }
  Testbed bed;
  std::unique_ptr<Connection> conn;
  std::unique_ptr<HttpExchange> http;
};

TEST(HttpTest, SingleObjectCompletes) {
  Rig rig;
  ObjectResult result;
  bool done = false;
  rig.http->get(100'000, [&](const ObjectResult& r) {
    result = r;
    done = true;
  });
  rig.bed.sim().run_until(TimePoint::origin() + Duration::seconds(30));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.bytes, 100'000u);
  EXPECT_GT(result.completed, result.requested);
  EXPECT_GE(result.started, result.requested + rig.bed.request_delay());
}

TEST(HttpTest, ResponsesServedFifo) {
  Rig rig;
  std::vector<int> order;
  rig.http->get(200'000, [&](const ObjectResult&) { order.push_back(1); });
  rig.http->get(1'000, [&](const ObjectResult&) { order.push_back(2); });
  rig.http->get(1'000, [&](const ObjectResult&) { order.push_back(3); });
  rig.bed.sim().run_until(TimePoint::origin() + Duration::seconds(30));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(HttpTest, BackToBackGetsFromCallback) {
  Rig rig;
  int completed = 0;
  std::function<void(const ObjectResult&)> next = [&](const ObjectResult&) {
    if (++completed < 5) rig.http->get(50'000, next);
  };
  rig.http->get(50'000, next);
  rig.bed.sim().run_until(TimePoint::origin() + Duration::seconds(60));
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(rig.http->total_delivered(), 5u * 50'000u);
}

TEST(HttpTest, ObjectLargerThanSndbufStreams) {
  TestbedConfig tb;
  tb.conn.sndbuf_bytes = 64 * 1024;
  Rig rig(tb);
  bool done = false;
  rig.http->get(1'000'000, [&](const ObjectResult&) { done = true; });
  rig.bed.sim().run_until(TimePoint::origin() + Duration::seconds(60));
  EXPECT_TRUE(done);
}

TEST(HttpTest, LastArrivalTimesTrackBothPaths) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(1));
  tb.lte = lte_profile(Rate::mbps(10));
  Rig rig(tb);
  ObjectResult result;
  rig.http->get(2'000'000, [&](const ObjectResult& r) { result = r; });
  rig.bed.sim().run_until(TimePoint::origin() + Duration::seconds(60));
  EXPECT_FALSE(result.last_arrival_wifi.is_never());
  EXPECT_FALSE(result.last_arrival_lte.is_never());
  EXPECT_LE(result.last_arrival_wifi, result.completed);
  EXPECT_LE(result.last_arrival_lte, result.completed);
}

// --- DASH -----------------------------------------------------------------------

TEST(DashTest, LadderMatchesPaperTable1) {
  DashConfig dc;
  ASSERT_EQ(dc.ladder_mbps.size(), 6u);
  EXPECT_DOUBLE_EQ(dc.ladder_mbps.front(), 0.26);
  EXPECT_DOUBLE_EQ(dc.ladder_mbps.back(), 8.47);
}

TEST(DashTest, SessionFetchesAllChunks) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(4.2));
  tb.lte = lte_profile(Rate::mbps(4.2));
  Rig rig(tb);
  DashConfig dc;
  dc.video_duration = Duration::seconds(60);
  DashSession session(rig.bed.sim(), *rig.http, dc);
  session.on_finished = [&] { rig.bed.sim().request_stop(); };
  session.start();
  rig.bed.sim().run_until(TimePoint::origin() + Duration::seconds(600));
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.chunks().size(), 12u);  // 60 s / 5 s
  EXPECT_GT(session.mean_bitrate_mbps(), 0.0);
}

TEST(DashTest, AbrRampsUpWithAmpleBandwidth) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(8.6));
  tb.lte = lte_profile(Rate::mbps(8.6));
  Rig rig(tb);
  DashConfig dc;
  dc.video_duration = Duration::seconds(120);
  DashSession session(rig.bed.sim(), *rig.http, dc);
  session.on_finished = [&] { rig.bed.sim().request_stop(); };
  session.start();
  rig.bed.sim().run_until(TimePoint::origin() + Duration::seconds(1200));
  // First chunk conservative, later chunks at the top tiers.
  EXPECT_DOUBLE_EQ(session.chunks().front().bitrate_mbps, 0.26);
  double last_rates = 0;
  for (std::size_t i = session.chunks().size() - 4; i < session.chunks().size(); ++i) {
    last_rates += session.chunks()[i].bitrate_mbps;
  }
  EXPECT_GT(last_rates / 4.0, 4.0);
}

TEST(DashTest, LowBandwidthStaysAtLowTiers) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(0.3));
  tb.lte = lte_profile(Rate::mbps(0.3));
  Rig rig(tb);
  DashConfig dc;
  dc.video_duration = Duration::seconds(60);
  DashSession session(rig.bed.sim(), *rig.http, dc);
  session.on_finished = [&] { rig.bed.sim().request_stop(); };
  session.start();
  rig.bed.sim().run_until(TimePoint::origin() + Duration::seconds(3000));
  EXPECT_LT(session.mean_bitrate_mbps(), 1.0);
}

TEST(DashTest, OnOffPatternEmergesWhenBufferFills) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(8.6));
  tb.lte = lte_profile(Rate::mbps(8.6));
  Rig rig(tb);
  DashConfig dc;
  dc.video_duration = Duration::seconds(120);
  DashSession session(rig.bed.sim(), *rig.http, dc);
  session.on_finished = [&] { rig.bed.sim().request_stop(); };
  session.start();
  rig.bed.sim().run_until(TimePoint::origin() + Duration::seconds(1200));
  // At 17.2 Mbps aggregate the top tier (8.47) downloads faster than
  // playback, so OFF gaps must appear between some fetches.
  int gaps = 0;
  for (std::size_t i = 1; i < session.chunks().size(); ++i) {
    const Duration gap = session.chunks()[i].fetch_start - session.chunks()[i - 1].fetch_end;
    if (gap > Duration::millis(100)) ++gaps;
  }
  EXPECT_GT(gaps, 3);
}

TEST(DashTest, RateBasedAbrUsesThroughputEstimate) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(4.2));
  tb.lte = lte_profile(Rate::mbps(4.2));
  Rig rig(tb);
  DashConfig dc;
  dc.video_duration = Duration::seconds(60);
  dc.abr = AbrKind::kRateBased;
  DashSession session(rig.bed.sim(), *rig.http, dc);
  session.on_finished = [&] { rig.bed.sim().request_stop(); };
  session.start();
  rig.bed.sim().run_until(TimePoint::origin() + Duration::seconds(600));
  EXPECT_TRUE(session.finished());
  // Steady state should sit near (not above) the ~8 Mbps aggregate.
  EXPECT_GT(session.mean_bitrate_mbps(), 1.0);
  EXPECT_LE(session.mean_bitrate_mbps(), 8.47);
}

TEST(DashTest, BufferLevelNonNegative) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(0.3));
  tb.lte = lte_profile(Rate::mbps(0.7));
  Rig rig(tb);
  DashConfig dc;
  dc.video_duration = Duration::seconds(60);
  DashSession session(rig.bed.sim(), *rig.http, dc);
  session.on_finished = [&] { rig.bed.sim().request_stop(); };
  session.start();
  for (int i = 0; i < 100; ++i) {
    rig.bed.sim().run_until(rig.bed.sim().now() + Duration::seconds(1));
    EXPECT_GE(session.buffer_level_s(), 0.0);
  }
}

// --- Web ------------------------------------------------------------------------

TEST(WebTest, PageObjectsDeterministicAndCalibrated) {
  WebPageConfig wc;
  Rng a(0xC0FFEE), b(0xC0FFEE);
  const auto pa = make_page_objects(a, wc);
  const auto pb = make_page_objects(b, wc);
  ASSERT_EQ(pa.size(), 107u);
  EXPECT_EQ(pa, pb);
  std::uint64_t total = 0;
  for (auto s : pa) {
    total += s;
    EXPECT_GE(s, wc.min_object_bytes);
    EXPECT_LE(s, wc.max_object_bytes);
  }
  // Rescaling is floor-respecting, so the total lands near the target.
  EXPECT_NEAR(static_cast<double>(total), 2'400'000.0, 300'000.0);
}

TEST(WebTest, BrowserDownloadsWholePage) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(5));
  tb.lte = lte_profile(Rate::mbps(5));
  Testbed bed(tb);
  WebPageConfig wc;
  Rng rng(0xC0FFEE);
  auto objects = make_page_objects(rng, wc);
  const auto factory = scheduler_factory("default");
  WebBrowser browser(bed.sim(), wc, objects,
                     [&] { return bed.make_connection(factory); });
  browser.on_finished = [&] { bed.sim().request_stop(); };
  browser.start();
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(600));
  ASSERT_TRUE(browser.finished());
  EXPECT_EQ(browser.object_times().count(), 107u);
  EXPECT_GT(browser.page_load_time().to_seconds(), 0.0);
  EXPECT_GT(browser.ooo_delays().count(), 0u);
}

TEST(WebTest, KeepaliveExpiryForcesFreshConnections) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(5));
  tb.lte = lte_profile(Rate::mbps(5));
  Testbed bed(tb);
  WebPageConfig wc;
  wc.object_count = 4;
  wc.parallel_connections = 1;
  wc.keepalive = Duration::millis(300);
  std::vector<std::uint64_t> objects = {50'000, 50'000, 50'000, 50'000};
  int connections_made = 0;
  const auto factory = scheduler_factory("default");
  WebBrowser browser(bed.sim(), wc, objects, [&] {
    ++connections_made;
    return bed.make_connection(factory);
  });

  // Stagger: download one object, idle past keep-alive, then continue. The
  // browser downloads back-to-back, so force idleness via a tiny pause by
  // running the page twice... simpler: back-to-back completes on 1 conn.
  browser.start();
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(120));
  EXPECT_TRUE(browser.finished());
  // Back-to-back objects stay under keep-alive: exactly one connection.
  EXPECT_EQ(connections_made, 1);
}

}  // namespace
}  // namespace mps
