// Property-based tests: invariants that must hold for every scheduler,
// bandwidth combination, and seed. Parameterized gtest sweeps the space.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "exp/download.h"
#include "exp/streaming.h"
#include "exp/testbed.h"
#include "net/mux.h"
#include "test_util.h"
#include "sched/registry.h"
#include "traffic/engine.h"

namespace mps {
namespace {

using TransferParam = std::tuple<std::string /*sched*/, double /*wifi*/, double /*lte*/,
                                 std::uint64_t /*bytes*/>;

class TransferPropertyTest : public ::testing::TestWithParam<TransferParam> {};

TEST_P(TransferPropertyTest, InvariantsHold) {
  const auto& [sched, wifi, lte, bytes] = GetParam();

  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(wifi));
  tb.lte = lte_profile(Rate::mbps(lte));
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory(sched));

  std::uint64_t delivered = 0;
  TimePoint last_delivery;
  conn->on_deliver = [&](std::uint64_t b, TimePoint t) {
    EXPECT_GT(b, 0u);
    EXPECT_GE(t, last_delivery);  // delivery times monotone
    last_delivery = t;
    delivered += b;
  };

  std::uint64_t offered = bytes;
  auto push = [&] {
    const std::uint64_t sent = conn->send(offered);
    offered -= sent;
  };
  conn->on_sendable = push;
  push();
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(400));

  // 1. Conservation: every application byte arrives exactly once, in order.
  EXPECT_EQ(delivered, bytes) << sched << " " << wifi << "/" << lte;

  // 2. No phantom bytes: per-subflow original transmissions cover the
  //    stream; combined originals equal the object size.
  std::uint64_t original = 0;
  for (Subflow* sf : conn->subflows()) original += sf->stats().bytes_sent;
  EXPECT_EQ(original, bytes);

  // 3. Out-of-order delays are non-negative and sampled once per delivered
  //    segment. Send-buffer refill boundaries may split a few segments below
  //    the MSS, so the count sits between the minimal segmentation and the
  //    number of segments actually scheduled.
  const Samples& ooo = conn->ooo_delay();
  EXPECT_GE(ooo.min(), 0.0);
  EXPECT_GE(ooo.count(), (bytes + conn->mss() - 1) / conn->mss());
  EXPECT_LE(ooo.count(), conn->meta_stats().segments_scheduled);

  // 4. Meta window respected at rest: nothing outstanding after completion.
  EXPECT_EQ(conn->meta_inflight(), 0u);
  EXPECT_EQ(conn->unscheduled_bytes(), 0u);

  // 5. CWND sanity on every subflow.
  for (Subflow* sf : conn->subflows()) {
    EXPECT_GE(sf->cwnd(), 2.0);
    EXPECT_GE(sf->available_cwnd(), 0);
    EXPECT_EQ(sf->inflight_segments(), 0u);
  }
}

std::string transfer_param_name(const ::testing::TestParamInfo<TransferParam>& info) {
  const std::string sched = std::get<0>(info.param);
  auto fmt = [](double x) {
    std::string s = std::to_string(x);
    for (auto& c : s) {
      if (c == '.') c = '_';
    }
    return s.substr(0, 3);
  };
  return sched + "_w" + fmt(std::get<1>(info.param)) + "_l" + fmt(std::get<2>(info.param)) +
         "_b" + std::to_string(std::get<3>(info.param) / 1000) + "k";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransferPropertyTest,
    ::testing::Combine(::testing::Values("default", "ecf", "blest", "daps", "rr"),
                       ::testing::Values(0.3, 1.7, 8.6),
                       ::testing::Values(1.1, 8.6),
                       ::testing::Values(std::uint64_t{200'000}, std::uint64_t{2'000'000})),
    transfer_param_name);

// --- lossy-path sweep ---------------------------------------------------------

class LossyPropertyTest : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(LossyPropertyTest, ReliableDeliveryUnderLoss) {
  const auto& [sched, loss] = GetParam();
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(2));
  tb.lte = lte_profile(Rate::mbps(8));
  tb.wifi.loss_rate = loss;
  tb.lte.loss_rate = loss / 2;
  tb.seed = 42;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory(sched));
  std::uint64_t delivered = 0;
  conn->on_deliver = [&](std::uint64_t b, TimePoint) { delivered += b; };
  BulkSender sender(*conn, 1'000'000);
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(600));
  EXPECT_EQ(delivered, 1'000'000u) << sched << " loss=" << loss;
}

std::string lossy_param_name(
    const ::testing::TestParamInfo<std::tuple<std::string, double>>& info) {
  return std::get<0>(info.param) + "_l" +
         std::to_string(static_cast<int>(std::get<1>(info.param) * 1000));
}

INSTANTIATE_TEST_SUITE_P(LossSweep, LossyPropertyTest,
                         ::testing::Combine(::testing::Values("default", "ecf", "blest"),
                                            ::testing::Values(0.001, 0.01, 0.05)),
                         lossy_param_name);

// --- determinism sweep -----------------------------------------------------------

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  auto run_once = [&](std::uint64_t seed) {
    StreamingParams p;
    p.wifi_mbps = 0.7;
    p.lte_mbps = 8.6;
    p.video = Duration::seconds(40);
    p.scheduler = GetParam();
    p.seed = seed;
    const auto r = run_streaming(p);
    return std::make_tuple(r.mean_bitrate_mbps, r.mean_throughput_mbps, r.fraction_fast,
                           r.ooo_delay.count(), r.iw_resets_lte);
  };
  EXPECT_EQ(run_once(7), run_once(7));
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, DeterminismTest,
                         ::testing::Values("default", "ecf", "blest", "daps"));

// --- download sweep: completion bounded below by the ideal ----------------------

class DownloadBoundTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {};

TEST_P(DownloadBoundTest, NeverFasterThanAggregateCapacity) {
  const auto& [sched, kb] = GetParam();
  DownloadParams p;
  p.wifi_mbps = 2;
  p.lte_mbps = 8;
  p.bytes = kb * 1024;
  p.scheduler = sched;
  const auto r = run_download(p);
  // Physical lower bound: wire time at aggregate rate plus one-way request
  // latency (headers ignored -> strictly optimistic).
  const double floor_s = p.bytes * 8.0 / ((p.wifi_mbps + p.lte_mbps) * 1e6);
  EXPECT_GT(r.completion.to_seconds(), floor_s);
  EXPECT_LT(r.completion.to_seconds(), 100.0);
  EXPECT_GE(r.fraction_fast, 0.0);
  EXPECT_LE(r.fraction_fast, 1.0);
}

std::string download_param_name(
    const ::testing::TestParamInfo<std::tuple<std::string, std::uint64_t>>& info) {
  return std::get<0>(info.param) + "_" + std::to_string(std::get<1>(info.param)) + "k";
}

INSTANTIATE_TEST_SUITE_P(Sizes, DownloadBoundTest,
                         ::testing::Combine(::testing::Values("default", "ecf"),
                                            ::testing::Values(std::uint64_t{64},
                                                              std::uint64_t{512},
                                                              std::uint64_t{2048})),
                         download_param_name);

// --- mux lifecycle under churn ------------------------------------------------

// After remove_route, an in-flight packet for the removed conn_id must only
// bump the orphan counter — it must never reach the old handler's state.
// The handler's state lives on the heap and is freed before dispatch, so a
// use-after-free here is caught directly by the sanitizer suite
// (check.sh --sanitize) as well as by the sentinel assertions.
TEST(MuxChurn, RemovedRoutePacketsOnlyOrphan) {
  Mux mux;
  auto live_hits = std::make_unique<int>(0);
  auto dead_hits = std::make_unique<int>(0);
  mux.add_route(1, [p = live_hits.get()](Packet) { ++*p; });
  mux.add_route(2, [p = dead_hits.get()](Packet) { ++*p; });

  Packet pkt;
  pkt.conn_id = 2;
  mux.dispatch(pkt);
  EXPECT_EQ(*dead_hits, 1);

  mux.remove_route(2);
  dead_hits.reset();  // the teardown the handler must not outlive
  for (int i = 0; i < 5; ++i) mux.dispatch(pkt);  // in-flight stragglers
  EXPECT_EQ(mux.orphan_count(), 5u);

  pkt.conn_id = 1;
  mux.dispatch(pkt);
  EXPECT_EQ(*live_hits, 1);  // surviving route unaffected by the churn
  EXPECT_EQ(mux.routed_count(), 2u);
  EXPECT_EQ(mux.orphan_count(), 5u);
}

// Conservation across a real churn run: every packet a downlink delivers is
// either routed to a live connection or counted as an orphan — the counters
// must account for each delivered packet exactly, with no leaks on either
// side of a teardown.
TEST(MuxChurn, RoutedPlusOrphansEqualsDelivered) {
  ScenarioSpec spec = fairness_cell_spec("ecf", 4, 6.0, 65536);
  WorldBuilder builder(spec);
  std::unique_ptr<World> world = builder.build();
  TrafficEngine engine(*world, builder.spec());
  const TrafficResult res = engine.run();
  ASSERT_GT(res.completed, 0u);
  ASSERT_GT(res.orphans, 0u) << "churn run produced no teardown stragglers; "
                                "the conservation check would be vacuous";
  // Links count packets_delivered at end-of-transmission but the mux sees
  // them one propagation delay later; drain so every in-flight arrival fires
  // (all connections are torn down, so stragglers land as orphans).
  world->run_for(Duration::from_seconds(2.0));

  std::uint64_t down_delivered = 0;
  std::uint64_t up_delivered = 0;
  for (std::size_t i = 0; i < world->path_count(); ++i) {
    down_delivered += world->path(i).down().stats().packets_delivered;
    up_delivered += world->path(i).up().stats().packets_delivered;
  }
  const Mux& down = world->down_mux();
  const Mux& up = world->up_mux();
  EXPECT_EQ(down.routed_count() + down.orphan_count(), down_delivered);
  EXPECT_EQ(up.routed_count() + up.orphan_count(), up_delivered);
}

}  // namespace
}  // namespace mps
