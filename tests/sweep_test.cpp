// Tests for the parallel sweep engine: index-ordered collection, inline
// serial path, exception propagation, MPS_BENCH_JOBS resolution, and the
// headline property — a parallel sweep is bit-identical to a serial one.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "check/stress.h"
#include "exp/streaming.h"
#include "exp/sweep.h"

namespace mps {
namespace {

// Restores MPS_BENCH_JOBS on scope exit so tests can't leak env state.
class ScopedJobsEnv {
 public:
  explicit ScopedJobsEnv(const char* value) {
    const char* old = std::getenv("MPS_BENCH_JOBS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv("MPS_BENCH_JOBS", value, 1);
    } else {
      ::unsetenv("MPS_BENCH_JOBS");
    }
  }
  ~ScopedJobsEnv() {
    if (had_old_) {
      ::setenv("MPS_BENCH_JOBS", old_.c_str(), 1);
    } else {
      ::unsetenv("MPS_BENCH_JOBS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(SweepTest, JobsEnvOverridesHardwareConcurrency) {
  ScopedJobsEnv env("3");
  EXPECT_EQ(sweep_jobs(), 3);
}

TEST(SweepTest, JobsEnvInvalidFallsBackToHardware) {
  ScopedJobsEnv env("0");
  EXPECT_GE(sweep_jobs(), 1);
  ScopedJobsEnv env2("notanumber");
  EXPECT_GE(sweep_jobs(), 1);
}

TEST(SweepTest, JobsUnsetUsesHardwareConcurrency) {
  ScopedJobsEnv env(nullptr);
  EXPECT_GE(sweep_jobs(), 1);
}

TEST(SweepTest, MapCollectsResultsInIndexOrder) {
  SweepOptions opts;
  opts.jobs = 4;
  const auto out = sweep_map<int>(
      37, [](std::size_t i) { return static_cast<int>(i * i); }, opts);
  ASSERT_EQ(out.size(), 37u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(SweepTest, EachCellRunsExactlyOnce) {
  SweepOptions opts;
  opts.jobs = 4;
  std::vector<std::atomic<int>> hits(64);
  SweepRunner runner(opts);
  runner.run(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepTest, SingleJobRunsInlineOnCallingThread) {
  SweepOptions opts;
  opts.jobs = 1;
  const auto caller = std::this_thread::get_id();
  SweepRunner runner(opts);
  EXPECT_EQ(runner.jobs(), 1);
  runner.run(8, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(SweepTest, CellExceptionPropagatesToCaller) {
  SweepOptions opts;
  opts.jobs = 4;
  SweepRunner runner(opts);
  try {
    runner.run(16, [](std::size_t i) {
      if (i == 9) throw std::runtime_error("cell 9 exploded");
    });
    FAIL() << "expected runner.run to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 9 exploded");
  }
}

TEST(SweepTest, ZeroCellsIsNoop) {
  SweepRunner runner;
  int calls = 0;
  runner.run(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// The headline determinism property: each cell owns its whole world
// (Simulator, RNG streams, recorder), so a parallel sweep must produce
// results bit-identical to the serial sweep — same doubles, same sample
// vectors, independent of worker count or completion order.
TEST(SweepTest, GridParallelMatchesSerialBitExact) {
  const double rates[3] = {2.0, 8.6, 25.0};
  auto run_grid = [&](int jobs) {
    SweepOptions opts;
    opts.jobs = jobs;
    return sweep_map<StreamingResult>(
        9,
        [&](std::size_t i) {
          StreamingParams p;
          p.wifi_mbps = rates[i / 3];
          p.lte_mbps = rates[i % 3];
          p.scheduler = "ecf";
          p.video = Duration::seconds(12);
          p.seed = 1 + i;
          return run_streaming(p);
        },
        opts);
  };
  const auto serial = run_grid(1);
  const auto parallel = run_grid(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& s = serial[i];
    const auto& p = parallel[i];
    EXPECT_GT(s.chunks_fetched, 0) << "cell " << i << " simulated nothing";
    EXPECT_EQ(s.mean_bitrate_mbps, p.mean_bitrate_mbps) << "cell " << i;
    EXPECT_EQ(s.mean_throughput_mbps, p.mean_throughput_mbps) << "cell " << i;
    EXPECT_EQ(s.fraction_fast, p.fraction_fast) << "cell " << i;
    EXPECT_EQ(s.iw_resets_wifi, p.iw_resets_wifi) << "cell " << i;
    EXPECT_EQ(s.iw_resets_lte, p.iw_resets_lte) << "cell " << i;
    EXPECT_EQ(s.reinjections, p.reinjections) << "cell " << i;
    EXPECT_EQ(s.rebuffer_time.ns(), p.rebuffer_time.ns()) << "cell " << i;
    EXPECT_EQ(s.chunks_fetched, p.chunks_fetched) << "cell " << i;
    EXPECT_EQ(s.mean_rtt_wifi_ms, p.mean_rtt_wifi_ms) << "cell " << i;
    EXPECT_EQ(s.mean_rtt_lte_ms, p.mean_rtt_lte_ms) << "cell " << i;
    EXPECT_EQ(s.ooo_delay.raw(), p.ooo_delay.raw()) << "cell " << i;
    EXPECT_EQ(s.last_packet_gap.raw(), p.last_packet_gap.raw()) << "cell " << i;
    ASSERT_EQ(s.chunks.size(), p.chunks.size()) << "cell " << i;
  }
}

// Same property for faulted worlds: the fault models draw from the per-link
// RNG forks, so random loss, burst loss, and reorder jitter must replay
// bit-identically regardless of how many sweep workers run the cells.
TEST(SweepTest, FaultedStressCellsMatchAcrossJobCounts) {
  auto run_grid = [](int jobs) {
    std::vector<StressCell> cells;
    for (const char* profile : {"iid", "ge_wifi", "storm"}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        StressCell c;
        c.profile = profile;
        c.scheduler = "ecf";
        c.seed = seed;
        c.bytes = 256 * 1024;
        cells.push_back(c);
      }
    }
    SweepOptions opts;
    opts.jobs = jobs;
    return sweep_map<StressCellResult>(
        cells.size(), [&](std::size_t i) { return run_stress_cell(cells[i]); }, opts);
  };
  const auto serial = run_grid(1);
  const auto parallel = run_grid(4);
  ASSERT_EQ(serial.size(), parallel.size());
  std::uint64_t total_drops = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& s = serial[i];
    const auto& p = parallel[i];
    EXPECT_TRUE(s.ok()) << "cell " << i << ": "
                        << (s.violations.empty() ? "stalled" : s.violations.front());
    total_drops += s.drops_random + s.drops_fault;
    EXPECT_EQ(s.completion_s, p.completion_s) << "cell " << i;  // bit-exact double
    EXPECT_EQ(s.drops_random, p.drops_random) << "cell " << i;
    EXPECT_EQ(s.drops_fault, p.drops_fault) << "cell " << i;
    EXPECT_EQ(s.reordered, p.reordered) << "cell " << i;
    EXPECT_EQ(s.retransmits, p.retransmits) << "cell " << i;
    EXPECT_EQ(s.rto_events, p.rto_events) << "cell " << i;
  }
  // The grid as a whole must have exercised the fault paths, or the
  // bit-exactness above proves nothing about fault-model RNG discipline.
  EXPECT_GT(total_drops, 0u);
}

}  // namespace
}  // namespace mps
