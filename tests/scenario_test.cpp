// Scenario subsystem: JSON document round trips, spec parse/serialize
// (field-exact), strict error reporting, builder ownership, and
// determinism of spec-driven runs (including serial vs parallel sweeps).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/scenario_run.h"
#include "exp/sweep.h"
#include "obs/recorder.h"
#include "scenario/json.h"
#include "scenario/spec.h"
#include "scenario/world.h"

namespace mps {
namespace {

// --- JSON document ----------------------------------------------------------

TEST(JsonTest, ParseRoundTripPreservesTypes) {
  const Json j = Json::parse(R"({"i": 3, "d": 3.5, "neg": -0.8, "s": "x", "b": true,
                                 "n": null, "a": [1, 2.5]})");
  EXPECT_TRUE(j.find("i")->is_int());
  EXPECT_EQ(j.find("i")->as_int(), 3);
  EXPECT_FALSE(j.find("d")->is_int());
  EXPECT_EQ(j.find("d")->as_double(), 3.5);
  EXPECT_EQ(j.find("neg")->as_double(), -0.8);
  EXPECT_TRUE(j.find("n")->is_null());
  EXPECT_TRUE(j.find("a")->items()[0].is_int());
  EXPECT_FALSE(j.find("a")->items()[1].is_int());
  // Integers print without a decimal point, doubles with one.
  EXPECT_EQ(j.dump(), R"({"i":3,"d":3.5,"neg":-0.8,"s":"x","b":true,"n":null,"a":[1,2.5]})");
}

TEST(JsonTest, DumpIsRoundTripStable) {
  const Json j = Json::parse(R"({"a": 0.1, "b": 8.47, "c": 1e-09, "d": [0.3, 1.1, 1.7]})");
  const std::string once = j.dump(2);
  EXPECT_EQ(Json::parse(once).dump(2), once);
  EXPECT_TRUE(Json::parse(once) == j);
}

TEST(JsonTest, LineCommentsAreAllowed) {
  const Json j = Json::parse("// header\n{\n  \"a\": 1 // trailing\n}\n");
  EXPECT_EQ(j.find("a")->as_int(), 1);
}

TEST(JsonTest, ErrorsCarryLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": }");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonTest, DuplicateKeysRejected) {
  EXPECT_THROW(Json::parse(R"({"a": 1, "a": 2})"), JsonError);
}

// --- spec parse/serialize ---------------------------------------------------

TEST(ScenarioSpecTest, MinimalSpecFillsProfileDefaults) {
  const ScenarioSpec s = parse_scenario(R"({
    "paths": [{"profile": "wifi", "rate_mbps": 0.3},
              {"profile": "lte", "rate_mbps": 8.6}]
  })");
  ASSERT_EQ(s.paths.size(), 2u);
  EXPECT_EQ(s.paths[0].name, "wifi");
  EXPECT_EQ(s.paths[0].rtt_ms, 16.0);
  EXPECT_EQ(s.paths[1].name, "lte");
  EXPECT_EQ(s.paths[1].rtt_ms, 80.0);
  EXPECT_EQ(s.paths[0].queue_packets, 40);
  EXPECT_EQ(s.paths[0].up_mbps, 100.0);
  EXPECT_EQ(s.scheduler, "default");
  EXPECT_EQ(s.conn.cc, "lia");
  EXPECT_EQ(s.workload.kind, WorkloadKind::kStream);
  EXPECT_EQ(s.seed, 1u);
}

// Every field off its default, covering all variation kinds that serialize.
ScenarioSpec full_spec() {
  ScenarioSpec s;
  s.name = "everything";
  PathSpec a;
  a.profile = PathProfile::kCustom;
  a.name = "sat";
  a.rate_mbps = 1.6;
  a.rtt_ms = 612.25;
  a.queue_packets = 17;
  a.loss_rate = 0.013;
  a.up_mbps = 42.5;
  a.variation.kind = VariationKind::kSchedule;
  a.variation.schedule = {{0.0, 1.6}, {30.5, 0.8}};
  PathSpec b = lte_path(8.47);
  b.variation.kind = VariationKind::kJitter;
  b.variation.jitter_frac = 0.35;
  b.variation.jitter_interval_s = 2.5;
  PathSpec c = wifi_path(4.2);
  c.variation.kind = VariationKind::kRandom;
  c.variation.levels_mbps = {0.3, 1.1, 8.6};
  c.variation.mean_interval_s = 12.5;
  s.paths = {a, b, c};
  s.subflows_per_path = 2;
  s.scheduler = "blest";
  s.conn.cc = "olia";
  s.conn.idle_cwnd_reset = false;
  s.conn.opportunistic_rtx = false;
  s.conn.penalization = false;
  s.conn.staging_bytes = 65536;
  s.workload.kind = WorkloadKind::kDownload;
  s.workload.video_s = 60.5;
  s.workload.abr = "rate";
  s.workload.bytes = 1 << 20;
  s.workload.runs = 7;
  s.seed = 123456789;
  s.trace_seed = 42;
  s.record.collect_traces = true;
  s.record.summarize = true;
  return s;
}

TEST(ScenarioSpecTest, SerializeParseRoundTripIsFieldExact) {
  const ScenarioSpec s = full_spec();
  const ScenarioSpec back = parse_scenario(serialize_scenario(s));
  EXPECT_EQ(back, s);
  // And the text form is a fixed point.
  EXPECT_EQ(serialize_scenario(back), serialize_scenario(s));
}

TEST(ScenarioSpecTest, ParsedTextRoundTripsThroughSerializer) {
  const std::string text = R"({
    "name": "preset",
    "paths": [{"profile": "wifi", "rate_mbps": 0.8,
               "variation": {"kind": "random", "levels_mbps": [0.3, 8.6]}},
              {"profile": "lte", "rate_mbps": 9.0, "rtt_ms": 70, "loss_rate": 0.001}],
    "scheduler": "ecf",
    "workload": {"kind": "stream", "video_s": 180, "runs": 3},
    "seed": 509,
    "trace_seed": 9009
  })";
  const ScenarioSpec first = parse_scenario(text);
  const ScenarioSpec second = parse_scenario(serialize_scenario(first));
  EXPECT_EQ(second, first);
}

TEST(ScenarioSpecTest, FaultsBlockRoundTripsFieldExact) {
  // Every fault sub-block populated with non-default values; serialize ->
  // parse must reproduce the spec exactly (this is what makes
  // `mps_run --print-spec` a faithful record of a faulted run).
  ScenarioSpec s;
  s.paths = {wifi_path(8.0), lte_path(10.0)};
  FaultSpec& f = s.paths[0].faults;
  f.gilbert_elliott.enabled = true;
  f.gilbert_elliott.p_good_bad = 0.02;
  f.gilbert_elliott.p_bad_good = 0.3;
  f.gilbert_elliott.loss_good = 0.001;
  f.gilbert_elliott.loss_bad = 0.6;
  f.outages.push_back({1.5, 0.25});
  f.outages.push_back({4.0, 0.1});
  f.flap.enabled = true;
  f.flap.period_s = 0.5;
  f.flap.down_s = 0.15;
  f.flap.start_s = 0.2;
  s.paths[1].faults.reorder.enabled = true;
  s.paths[1].faults.reorder.prob = 0.05;
  s.paths[1].faults.reorder.delay_ms = 30.0;
  s.paths[1].faults.reorder.jitter_ms = 30.0;
  const ScenarioSpec back = parse_scenario(serialize_scenario(s));
  EXPECT_EQ(back, s);
  EXPECT_EQ(serialize_scenario(back), serialize_scenario(s));
  // And a hand-written faults block parses to the same structure.
  const ScenarioSpec parsed = parse_scenario(R"({
    "paths": [{"profile": "wifi", "rate_mbps": 8,
               "faults": {"gilbert_elliott": {"p_good_bad": 0.02, "p_bad_good": 0.3,
                                              "loss_good": 0.001, "loss_bad": 0.6},
                          "outages": [{"at_s": 1.5, "for_s": 0.25},
                                      {"at_s": 4.0, "for_s": 0.1}],
                          "flap": {"period_s": 0.5, "down_s": 0.15, "start_s": 0.2}}},
              {"profile": "lte", "rate_mbps": 10,
               "faults": {"reorder": {"prob": 0.05, "delay_ms": 30, "jitter_ms": 30}}}]
  })");
  EXPECT_EQ(parsed.paths[0].faults, s.paths[0].faults);
  EXPECT_EQ(parsed.paths[1].faults, s.paths[1].faults);
}


// Errors must name the offending key path.
void expect_spec_error(const std::string& text, const std::string& key) {
  try {
    (void)parse_scenario(text);
    FAIL() << "expected invalid_argument mentioning " << key;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(key), std::string::npos)
        << "message '" << e.what() << "' does not mention '" << key << "'";
  }
}

TEST(ScenarioSpecTest, InvalidSpecsNameTheOffendingKey) {
  expect_spec_error(R"({"paths": [{"profile": "wifi"}]})", "paths[0].rate_mbps");
  expect_spec_error(R"({"paths": [{"profile": "wifi", "rate_mbps": 1, "rtt_mss": 20}]})",
                    "paths[0].rtt_mss");
  expect_spec_error(R"({"paths": [{"profile": "dsl", "rate_mbps": 1}]})",
                    "paths[0].profile");
  expect_spec_error(R"({"paths": [{"profile": "wifi", "rate_mbps": 1},
                                  {"profile": "lte", "rate_mbps": 1,
                                   "variation": {"kind": "wobble"}}]})",
                    "paths[1].variation.kind");
  expect_spec_error(R"({"paths": [{"profile": "wifi", "rate_mbps": 1}],
                        "scheduler": "fastest"})",
                    "scheduler");
  expect_spec_error(R"({"paths": [{"profile": "wifi", "rate_mbps": 1}],
                        "conn": {"cc": "bbr"}})",
                    "conn.cc");
  expect_spec_error(R"({"paths": [{"profile": "wifi", "rate_mbps": 1}],
                        "workload": {"runs": 0}})",
                    "workload.runs");
  expect_spec_error(R"({"paths": [{"profile": "wifi", "rate_mbps": 1}], "sede": 3})",
                    "sede");
}

TEST(ScenarioSpecTest, InvalidFaultsNameTheOffendingKey) {
  // p_bad_good = 0 makes the bad state absorbing (that's an outage, not GE).
  expect_spec_error(R"({"paths": [{"profile": "wifi", "rate_mbps": 1,
                        "faults": {"gilbert_elliott": {"p_good_bad": 0.1,
                                                       "p_bad_good": 0}}}]})",
                    "paths[0].faults.gilbert_elliott.p_bad_good");
  expect_spec_error(R"({"paths": [{"profile": "wifi", "rate_mbps": 1,
                        "faults": {"outages": [{"at_s": 1}]}}]})",
                    "faults.outages[0].for_s");
  expect_spec_error(R"({"paths": [{"profile": "wifi", "rate_mbps": 1,
                        "faults": {"flap": {"period_s": 1, "down_s": 2}}}]})",
                    "faults.flap.down_s");
  expect_spec_error(R"({"paths": [{"profile": "wifi", "rate_mbps": 1,
                        "faults": {"reorder": {"prob": 1.5}}}]})",
                    "faults.reorder.prob");
  expect_spec_error(R"({"paths": [{"profile": "wifi", "rate_mbps": 1,
                        "faults": {}}]})",
                    "faults");
}

TEST(ScenarioSpecTest, TrafficBlockRoundTripsFieldExact) {
  ScenarioSpec s;
  s.paths = {wifi_path(8.0), lte_path(10.0)};
  s.scheduler = "ecf";
  s.traffic.enabled = true;
  s.traffic.flows = 4;
  s.traffic.arrival_rate_per_s = 1.5;
  s.traffic.max_arrivals = 64;
  s.traffic.flow_bytes = 131072;
  s.traffic.size_dist = "pareto";
  s.traffic.pareto_alpha = 2.5;
  s.traffic.duration_s = 9.5;
  s.traffic.cross = {CrossTrafficSpec{1, 2, 0.5}, CrossTrafficSpec{0, 1, 0.0}};
  const ScenarioSpec back = parse_scenario(serialize_scenario(s));
  EXPECT_EQ(back, s);
  EXPECT_EQ(serialize_scenario(back), serialize_scenario(s));
  // A hand-written traffic block parses to the same structure.
  const ScenarioSpec parsed = parse_scenario(R"({
    "paths": [{"profile": "wifi", "rate_mbps": 8},
              {"profile": "lte", "rate_mbps": 10}],
    "scheduler": "ecf",
    "traffic": {"flows": 4, "arrival_rate_per_s": 1.5, "max_arrivals": 64,
                "flow_bytes": 131072, "size_dist": "pareto", "pareto_alpha": 2.5,
                "duration_s": 9.5,
                "cross": [{"path": 1, "flows": 2, "start_s": 0.5}, {"path": 0}]}
  })");
  EXPECT_EQ(parsed.traffic, s.traffic);
  // Specs without a traffic block stay traffic-free and serialize without one.
  const ScenarioSpec plain = parse_scenario(
      R"({"paths": [{"profile": "wifi", "rate_mbps": 1}]})");
  EXPECT_FALSE(plain.traffic.enabled);
  EXPECT_EQ(serialize_scenario(plain).find("traffic"), std::string::npos);
}

TEST(ScenarioSpecTest, InvalidTrafficNamesTheOffendingKey) {
  const std::string two_paths = R"("paths": [{"profile": "wifi", "rate_mbps": 1},
                                             {"profile": "lte", "rate_mbps": 1}])";
  expect_spec_error(R"({)" + two_paths + R"(, "traffic": {"flows": 0}})",
                    "traffic.flows");
  expect_spec_error(R"({)" + two_paths + R"(, "traffic": {"arrival_rate_per_s": -1}})",
                    "traffic.arrival_rate_per_s");
  expect_spec_error(R"({)" + two_paths + R"(, "traffic": {"flow_bytes": 0}})",
                    "traffic.flow_bytes");
  expect_spec_error(R"({)" + two_paths + R"(, "traffic": {"size_dist": "uniform"}})",
                    "traffic.size_dist");
  expect_spec_error(R"({)" + two_paths + R"(, "traffic": {"pareto_alpha": 1.0}})",
                    "traffic.pareto_alpha");
  expect_spec_error(R"({)" + two_paths + R"(, "traffic": {"duration_s": 0}})",
                    "traffic.duration_s");
  expect_spec_error(R"({)" + two_paths + R"(, "traffic": {"cross": [{"path": 2}]}})",
                    "traffic.cross[0].path");
  expect_spec_error(R"({)" + two_paths + R"(, "traffic": {"cross": [{"flows": 0}]}})",
                    "traffic.cross[0].flows");
  expect_spec_error(R"({)" + two_paths + R"(, "traffic": {"burst": true}})",
                    "traffic.burst");
}

// --- builder ownership ------------------------------------------------------

ScenarioSpec tiny_stream_spec() {
  ScenarioSpec s;
  s.paths = {wifi_path(0.8), lte_path(8.6)};
  s.scheduler = "ecf";
  s.workload.video_s = 5.0;
  return s;
}

TEST(WorldBuilderTest, NoRecorderUnlessAsked) {
  WorldBuilder b(tiny_stream_spec());
  auto world = b.build();
  EXPECT_EQ(b.recorder(), nullptr);
  EXPECT_EQ(world->path_count(), 2u);
}

TEST(WorldBuilderTest, OwnsRecorderWhenSpecRequestsIt) {
  ScenarioSpec s = tiny_stream_spec();
  s.record.summarize = true;
  WorldBuilder b(s);
  auto world = b.build();
  EXPECT_NE(b.recorder(), nullptr);
}

TEST(WorldBuilderTest, CallerRecorderWinsOverSpec) {
  ScenarioSpec s = tiny_stream_spec();
  s.record.summarize = true;
  WorldBuilder b(s);
  FlightRecorder mine;
  auto world = b.build(&mine);
  EXPECT_EQ(b.recorder(), &mine);
}

TEST(WorldBuilderTest, RandomVariationTakesTraceInitialRate) {
  ScenarioSpec s = tiny_stream_spec();
  s.paths[0].variation.kind = VariationKind::kRandom;
  s.paths[0].variation.levels_mbps = {0.3, 1.1, 8.6};
  s.trace_seed = 7;
  WorldBuilder b(s);
  ASSERT_FALSE(b.path_traces()[0].empty());
  EXPECT_EQ(b.path_configs()[0].down_rate, b.path_traces()[0].front().rate);
  EXPECT_TRUE(b.path_traces()[1].empty());
  EXPECT_TRUE(b.pure_profile(0));  // rate is the only non-profile field
}

// --- determinism ------------------------------------------------------------

class ScopedJobsEnv {
 public:
  explicit ScopedJobsEnv(const char* value) {
    const char* old = std::getenv("MPS_BENCH_JOBS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value) {
      ::setenv("MPS_BENCH_JOBS", value, 1);
    } else {
      ::unsetenv("MPS_BENCH_JOBS");
    }
  }
  ~ScopedJobsEnv() {
    if (had_old_) {
      ::setenv("MPS_BENCH_JOBS", old_.c_str(), 1);
    } else {
      ::unsetenv("MPS_BENCH_JOBS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ScenarioDeterminismTest, SameSpecIsBitIdenticalAcrossBuilds) {
  const ScenarioSpec s = tiny_stream_spec();
  const StreamingResult a = run_scenario(s).streaming;
  const StreamingResult b = run_scenario(s).streaming;
  EXPECT_EQ(a.mean_bitrate_mbps, b.mean_bitrate_mbps);
  EXPECT_EQ(a.mean_throughput_mbps, b.mean_throughput_mbps);
  EXPECT_EQ(a.fraction_fast, b.fraction_fast);
  EXPECT_EQ(a.iw_resets_lte, b.iw_resets_lte);
}

TEST(ScenarioDeterminismTest, SerializedSpecRunsIdenticalToOriginal) {
  ScenarioSpec s = tiny_stream_spec();
  s.paths[0].variation.kind = VariationKind::kJitter;
  s.trace_seed = 11;
  const ScenarioSpec back = parse_scenario(serialize_scenario(s));
  const StreamingResult a = run_scenario(s).streaming;
  const StreamingResult b = run_scenario(back).streaming;
  EXPECT_EQ(a.mean_bitrate_mbps, b.mean_bitrate_mbps);
  EXPECT_EQ(a.mean_throughput_mbps, b.mean_throughput_mbps);
}

TEST(ScenarioDeterminismTest, SerialAndParallelSweepsMatch) {
  const auto run_cells = [] {
    return sweep_map<double>(4, [](std::size_t i) {
      ScenarioSpec s;
      s.paths = {wifi_path(0.8 + 0.4 * static_cast<double>(i)), lte_path(8.6)};
      s.scheduler = i % 2 == 0 ? "default" : "ecf";
      s.workload.video_s = 5.0;
      s.seed = 1 + i;
      return run_scenario(s).streaming.mean_bitrate_mbps;
    });
  };
  std::vector<double> serial, parallel;
  {
    ScopedJobsEnv env("1");
    serial = run_cells();
  }
  {
    ScopedJobsEnv env("4");
    parallel = run_cells();
  }
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace mps
