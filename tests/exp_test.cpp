// Tests for the experiment harness: testbed wiring, ideal references, scale.
#include <gtest/gtest.h>

#include <cstdlib>

#include "exp/ideal.h"
#include "exp/scale.h"
#include "exp/streaming.h"
#include "exp/testbed.h"
#include "sched/registry.h"

namespace mps {
namespace {

TEST(IdealTest, BitrateCappedAtTopTier) {
  EXPECT_DOUBLE_EQ(ideal_bitrate_mbps(8.6, 8.6), 8.47);
  EXPECT_DOUBLE_EQ(ideal_bitrate_mbps(0.3, 0.7), 1.0);
  EXPECT_DOUBLE_EQ(ideal_bitrate_mbps(0.3, 8.6), 8.47);  // paper upper-left case
}

TEST(IdealTest, FastFraction) {
  EXPECT_NEAR(ideal_fast_fraction(8.6, 0.3), 8.6 / 8.9, 1e-12);
  EXPECT_DOUBLE_EQ(ideal_fast_fraction(4.2, 4.2), 0.5);
  EXPECT_DOUBLE_EQ(ideal_fast_fraction(0.0, 0.0), 0.0);
}

TEST(IdealTest, GridMatchesPaper) {
  const auto& grid = paper_bandwidth_grid();
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.3);
  EXPECT_DOUBLE_EQ(grid.back(), 8.6);
}

TEST(ScaleTest, DefaultsAreQuick) {
  // The env var is unset (or quick) in the test harness; defaults must be
  // the fast configuration and the note must mention the switch.
  const BenchScale& s = bench_scale();
  EXPECT_GE(s.streaming_runs, 1);
  EXPECT_NE(scale_note().find("MPS_BENCH_SCALE"), std::string::npos);
}

TEST(TestbedTest, RequestDelayIsHalfPrimaryRtt) {
  TestbedConfig tb;
  Testbed bed(tb);
  EXPECT_EQ(bed.request_delay().ns(), bed.wifi().rtt_base().ns() / 2);
}

TEST(TestbedTest, ConnectionsGetUniqueIds) {
  Testbed bed(TestbedConfig{});
  auto a = bed.make_connection(scheduler_factory("default"));
  auto b = bed.make_connection(scheduler_factory("default"));
  EXPECT_NE(a->config().conn_id, b->config().conn_id);
}

TEST(TestbedTest, SubflowOrderIsWifiThenLte) {
  TestbedConfig tb;
  tb.subflows_per_path = 2;
  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory("default"));
  ASSERT_EQ(conn->subflows().size(), 4u);
  EXPECT_EQ(conn->subflows()[0]->path().name(), "wifi");
  EXPECT_EQ(conn->subflows()[1]->path().name(), "wifi");
  EXPECT_EQ(conn->subflows()[2]->path().name(), "lte");
  EXPECT_EQ(conn->subflows()[3]->path().name(), "lte");
}

TEST(StreamingParamsTest, SchedulerOverrideAndStagingKnobs) {
  StreamingParams p;
  p.wifi_mbps = 1.1;
  p.lte_mbps = 8.6;
  p.video = Duration::seconds(30);
  p.staging_bytes = 16 * 1024;
  bool used = false;
  p.scheduler_override = [&used] {
    used = true;
    return scheduler_factory("ecf")();
  };
  const auto r = run_streaming(p);
  EXPECT_TRUE(used);
  EXPECT_GT(r.chunks_fetched, 0);
}

TEST(TestbedTest, RunForAdvancesClock) {
  Testbed bed(TestbedConfig{});
  bed.run_for(Duration::seconds(3));
  EXPECT_EQ(bed.sim().now().ns(), Duration::seconds(3).ns());
}

}  // namespace
}  // namespace mps
