// Tests for the runtime observability subsystem (obs/prof.h,
// exp/prof_report.h, SweepRunner worker telemetry, heartbeat determinism).
//
// The suite is built in both configurations:
//  * default (-DMPS_PROF=OFF): proves the compile-out contract — empty guard
//    types, all-zero snapshots — and everything that doesn't need live
//    counters (report schema, rendering, worker telemetry, determinism).
//  * scripts/check.sh --prof (-DMPS_PROF=ON): additionally exercises the
//    live accumulators (nesting arithmetic, per-thread merge) and proves the
//    goldens stay byte-identical with profiling compiled in.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/prof_report.h"
#include "exp/scenario_run.h"
#include "exp/sweep.h"
#include "obs/prof.h"
#include "obs/recorder.h"

namespace mps {
namespace {

namespace fs = std::filesystem;

const fs::path kDataDir = fs::path(MPS_SOURCE_DIR) / "tests" / "data";
const fs::path kScenarioDir = fs::path(MPS_SOURCE_DIR) / "scenarios";

bool update_goldens() {
  const char* v = std::getenv("MPS_UPDATE_GOLDENS");
  return v != nullptr && std::string(v) == "1";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- compile-out contract ---------------------------------------------------

#ifndef MPS_PROF
// With profiling compiled out the guard objects are empty and the macros
// expand to nothing; an instrumented site costs literally zero.
static_assert(sizeof(prof::ScopeTimer) == 1, "disabled ScopeTimer must be empty");
static_assert(sizeof(prof::MemScope) == 1, "disabled MemScope must be empty");
static_assert(!prof::compiled());

TEST(Prof, DisabledSnapshotIsAllZero) {
  const prof::Snapshot snap = prof::snapshot();
  EXPECT_EQ(snap.threads, 0u);
  for (const auto& s : snap.scopes) {
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.total_ns, 0u);
  }
  EXPECT_EQ(snap.memory_total.allocs, 0u);
}
#else
// Compiled in, the timer carries real state (accumulator ref); the point of
// the assert is that the two configurations genuinely differ.
static_assert(sizeof(prof::ScopeTimer) > 1, "enabled ScopeTimer must hold state");
static_assert(prof::compiled());

TEST(Prof, NestedScopesSplitSelfAndTotalExactly) {
  prof::reset();
  {
    MPS_PROF_SCOPE(kWorldBuild);
    {
      MPS_PROF_SCOPE(kSpecParse);
      volatile int sink = 0;
      for (int i = 0; i < 10000; ++i) sink = sink + i;
    }
  }
  const prof::Snapshot snap = prof::snapshot();
  const auto& outer = snap.scopes[static_cast<std::size_t>(prof::Scope::kWorldBuild)];
  const auto& inner = snap.scopes[static_cast<std::size_t>(prof::Scope::kSpecParse)];
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 1u);
  // The accumulator subtracts a child's elapsed time from the parent's self
  // using the same clock reads, so the relation is exact, not approximate.
  EXPECT_EQ(outer.self_ns + inner.total_ns, outer.total_ns);
  EXPECT_EQ(inner.self_ns, inner.total_ns);  // leaf scope: self == total
  prof::reset();
}

TEST(Prof, RepeatedScopesAccumulateCounts) {
  prof::reset();
  for (int i = 0; i < 100; ++i) {
    MPS_PROF_SCOPE(kCcUpdate);
  }
  const prof::Snapshot snap = prof::snapshot();
  const auto& s = snap.scopes[static_cast<std::size_t>(prof::Scope::kCcUpdate)];
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.self_ns, s.total_ns);
  prof::reset();
}

TEST(Prof, PerThreadAccumulatorsMergeAcrossThreads) {
  prof::reset();
  constexpr int kThreads = 3;
  constexpr int kScopesPerThread = 50;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kScopesPerThread; ++i) {
        MPS_PROF_SCOPE(kFaultDraw);
      }
    });
  }
  for (auto& t : pool) t.join();
  const prof::Snapshot snap = prof::snapshot();
  const auto& s = snap.scopes[static_cast<std::size_t>(prof::Scope::kFaultDraw)];
  // Merge must be lossless regardless of which thread did the work.
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kScopesPerThread));
  EXPECT_GE(snap.threads, static_cast<std::uint64_t>(kThreads));
  prof::reset();
}

TEST(Prof, MemoryAccountingChargesTaggedSubsystem) {
  prof::reset();
  std::vector<char>* block = nullptr;
  {
    MPS_PROF_MEM_SCOPE(kTraffic);
    block = new std::vector<char>(1 << 16);
  }
  prof::Snapshot snap = prof::snapshot();
  const auto& traffic = snap.memory[static_cast<std::size_t>(prof::MemSubsys::kTraffic)];
  EXPECT_GE(traffic.allocs, 1u);
  EXPECT_GE(traffic.bytes_allocated, static_cast<std::uint64_t>(1 << 16));
  EXPECT_GE(traffic.high_water_bytes, static_cast<std::uint64_t>(1 << 16));
  delete block;  // outside the scope: the free still credits kTraffic's size
  snap = prof::snapshot();
  const auto& after = snap.memory[static_cast<std::size_t>(prof::MemSubsys::kTraffic)];
  EXPECT_GE(after.frees, 1u);
  EXPECT_GE(after.bytes_freed, static_cast<std::uint64_t>(1 << 16));
  prof::reset();
}
#endif  // MPS_PROF

// --- ScopeStats merge algebra (build-independent) ---------------------------

TEST(Prof, MergeIsAssociativeAndCommutative) {
  const prof::ScopeStats a{3, 300, 200};
  const prof::ScopeStats b{5, 500, 400};
  const prof::ScopeStats c{7, 700, 600};

  prof::ScopeStats ab = a;
  ab.merge(b);
  prof::ScopeStats ab_c = ab;
  ab_c.merge(c);

  prof::ScopeStats bc = b;
  bc.merge(c);
  prof::ScopeStats a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab_c, a_bc);

  prof::ScopeStats ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
}

// --- SweepRunner worker telemetry -------------------------------------------

TEST(SweepTelemetry, ConservationHoldsExactlyPerWorker) {
  SweepRunner runner(SweepOptions{3});
  std::atomic<int> ran{0};
  runner.run(8, [&](std::size_t) {
    volatile int sink = 0;
    for (int i = 0; i < 50000; ++i) sink = sink + i;
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 8);

  const SweepTelemetry& t = runner.telemetry();
  EXPECT_EQ(t.jobs, 3);
  ASSERT_EQ(t.workers.size(), 3u);
  std::uint64_t cells = 0;
  for (const WorkerStats& w : t.workers) {
    // Integer nanoseconds: busy + wait + idle must equal the wall exactly.
    EXPECT_EQ(w.busy_ns + w.wait_ns + w.idle_ns, t.wall_ns);
    cells += w.cells;
  }
  EXPECT_EQ(cells, 8u);
}

TEST(SweepTelemetry, SerialPathReportsOneAllAccountedWorker) {
  SweepRunner runner(SweepOptions{1});
  runner.run(4, [](std::size_t) {});
  const SweepTelemetry& t = runner.telemetry();
  EXPECT_EQ(t.jobs, 1);
  ASSERT_EQ(t.workers.size(), 1u);
  EXPECT_EQ(t.workers[0].cells, 4u);
  EXPECT_EQ(t.workers[0].busy_ns + t.workers[0].wait_ns + t.workers[0].idle_ns, t.wall_ns);
}

TEST(SweepTelemetry, EmptySweepReportsNothing) {
  SweepRunner runner(SweepOptions{4});
  runner.run(0, [](std::size_t) { FAIL() << "no cells to run"; });
  EXPECT_TRUE(runner.telemetry().workers.empty());
  EXPECT_EQ(runner.telemetry().wall_ns, 0u);
}

// --- ProfileReport schema ---------------------------------------------------

ProfileReport fixed_report() {
  prof::Snapshot snap;
  snap.scopes[static_cast<std::size_t>(prof::Scope::kEventPop)] = {1000, 2'000'000, 2'000'000};
  snap.scopes[static_cast<std::size_t>(prof::Scope::kEventDispatch)] = {1000, 80'000'000,
                                                                        50'000'000};
  snap.scopes[static_cast<std::size_t>(prof::Scope::kSchedDecide)] = {400, 30'000'000,
                                                                      30'000'000};
  snap.memory[static_cast<std::size_t>(prof::MemSubsys::kConn)] = {50, 40, 1 << 20, 1 << 19,
                                                                   1 << 19, 1 << 20};
  snap.memory_total = {60, 45, 1 << 21, 1 << 19, 3 << 19, 1 << 21};
  snap.threads = 1;
  RunTelemetry telemetry{1000, 60.0};
  ProfileReport r = build_profile_report(snap, 0.5, &telemetry, 16);
  SweepTelemetry sweep;
  sweep.jobs = 2;
  sweep.wall_ns = 400'000'000;
  sweep.workers.push_back({390'000'000, 1'000'000, 9'000'000, 9});
  sweep.workers.push_back({350'000'000, 2'000'000, 48'000'000, 7});
  add_sweep_telemetry(r, sweep);
  return r;
}

TEST(ProfileReport, SubsystemSharesSumToOne) {
  const ProfileReport r = fixed_report();
  double sum = 0.0;
  for (const auto& s : r.subsystems) sum += s.share;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // "other" is the uninstrumented remainder and must be last.
  ASSERT_FALSE(r.subsystems.empty());
  EXPECT_EQ(r.subsystems.back().name, "other");
}

TEST(ProfileReport, BytesPerFlowUsesTotalHighWater) {
  const ProfileReport r = fixed_report();
  EXPECT_EQ(r.flows, 16u);
  EXPECT_DOUBLE_EQ(r.bytes_per_flow, static_cast<double>(1 << 21) / 16.0);
}

TEST(ProfileReport, JsonRoundTripPreservesEverything) {
  const ProfileReport r = fixed_report();
  const Json j = profile_report_to_json(r);
  const ProfileReport back = profile_report_from_json(Json::parse(j.dump()));

  EXPECT_EQ(back.profiling_compiled, r.profiling_compiled);
  EXPECT_DOUBLE_EQ(back.wall_s, r.wall_s);
  EXPECT_EQ(back.events, r.events);
  ASSERT_EQ(back.scopes.size(), r.scopes.size());
  for (std::size_t i = 0; i < r.scopes.size(); ++i) {
    EXPECT_EQ(back.scopes[i].name, r.scopes[i].name);
    EXPECT_EQ(back.scopes[i].count, r.scopes[i].count);
    EXPECT_DOUBLE_EQ(back.scopes[i].self_s, r.scopes[i].self_s);
  }
  ASSERT_EQ(back.memory.size(), r.memory.size());
  EXPECT_EQ(back.memory_total.high_water_bytes, r.memory_total.high_water_bytes);
  EXPECT_EQ(back.flows, r.flows);
  ASSERT_EQ(back.workers.size(), 2u);
  EXPECT_EQ(back.workers[1].idle_ns, 48'000'000u);
  EXPECT_EQ(back.workers_wall_ns, 400'000'000u);
  EXPECT_EQ(back.jobs, 2);
}

TEST(ProfileReport, FromJsonNamesTheMissingKey) {
  Json j = profile_report_to_json(fixed_report());
  Json run = *j.find("run");
  Json stripped = Json::object();
  for (const auto& [k, v] : run.members()) {
    if (k != "events") stripped.set(k, v);
  }
  j.set("run", stripped);
  try {
    profile_report_from_json(j);
    FAIL() << "expected a schema error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("events"), std::string::npos) << e.what();
  }
}

TEST(ProfileReport, FromJsonRejectsWrongSchemaVersion) {
  Json j = profile_report_to_json(fixed_report());
  j.set("schema", Json::string("mps.profile.v999"));
  EXPECT_THROW(profile_report_from_json(j), std::runtime_error);
}

// --- mps_report rendering, pinned byte-for-byte -----------------------------
// The fixture is a fixed ProfileReport JSON (tests/data/prof_fixture.json);
// the expected render lives beside it. MPS_UPDATE_GOLDENS=1 refreshes both
// expected files from the current renderer.

TEST(ProfileReport, RenderMatchesPinnedFixture) {
  const fs::path fixture = kDataDir / "prof_fixture.json";
  ASSERT_TRUE(fs::exists(fixture)) << fixture;
  const ProfileReport r = profile_report_from_json(Json::parse(slurp(fixture)));
  const std::string actual = render_profile_report(r, 10);

  const fs::path expected_path = kDataDir / "prof_fixture.report.txt";
  if (update_goldens()) {
    std::ofstream out(expected_path, std::ios::binary);
    out << actual;
    return;
  }
  ASSERT_TRUE(fs::exists(expected_path))
      << "run: MPS_UPDATE_GOLDENS=1 ./tests/prof_test  (then review + commit)";
  EXPECT_EQ(slurp(expected_path), actual);
}

TEST(ProfileReport, FlowTimelinesMatchPinnedFixture) {
  const fs::path fixture = kDataDir / "prof_fixture.trace.jsonl";
  ASSERT_TRUE(fs::exists(fixture)) << fixture;
  std::ifstream trace(fixture);
  const std::string actual = render_flow_timelines(trace);

  const fs::path expected_path = kDataDir / "prof_fixture.timelines.txt";
  if (update_goldens()) {
    std::ofstream out(expected_path, std::ios::binary);
    out << actual;
    return;
  }
  ASSERT_TRUE(fs::exists(expected_path))
      << "run: MPS_UPDATE_GOLDENS=1 ./tests/prof_test  (then review + commit)";
  EXPECT_EQ(slurp(expected_path), actual);
}

// --- determinism: observability must not perturb the run --------------------
// The contended_bottleneck preset (traffic: churn + cross flows) runs twice:
// bare, and with telemetry + a high-frequency heartbeat attached. The
// rendered output — the exact string the golden corpus pins — must be
// byte-identical, and this holds in both MPS_PROF configurations.

std::string render_like_mps_run(const ScenarioSpec& spec, const ScenarioRunOptions& opts,
                                FlightRecorder* recorder) {
  std::string out;
  if (!spec.name.empty()) out += "scenario: " + spec.name + "\n";
  const ScenarioOutcome outcome = run_scenario(spec, opts);
  out += format_outcome(spec, outcome);
  if (opts.recorder != nullptr) {
    out += "\n--- flight recorder ---\n";
    std::ostringstream report;
    recorder->summarize(report);
    out += report.str();
  }
  return out;
}

TEST(Determinism, ObservabilityCannotPerturbARun) {
  const fs::path preset = kScenarioDir / "contended_bottleneck.json";
  ASSERT_TRUE(fs::exists(preset)) << preset;
  const std::string text = slurp(preset);

  ScenarioSpec spec = scenario_from_json(Json::parse(text));
  FlightRecorder bare_recorder;
  ScenarioRunOptions bare;
  if (spec.record.summarize &&
      (spec.traffic.enabled || spec.workload.kind == WorkloadKind::kStream)) {
    bare.recorder = &bare_recorder;
  }
  const std::string bare_out = render_like_mps_run(spec, bare, &bare_recorder);

  ScenarioSpec spec2 = scenario_from_json(Json::parse(text));
  FlightRecorder obs_recorder;
  ScenarioRunOptions observed;
  if (spec2.record.summarize &&
      (spec2.traffic.enabled || spec2.workload.kind == WorkloadKind::kStream)) {
    observed.recorder = &obs_recorder;
  }
  RunTelemetry telemetry;
  observed.telemetry = &telemetry;
  std::atomic<std::uint64_t> beats{0};
  observed.heartbeat.interval_s = 1e-6;  // beat on effectively every poll
  observed.heartbeat.fn = [&beats](const HeartbeatStats&) { beats.fetch_add(1); };
  const std::string observed_out = render_like_mps_run(spec2, observed, &obs_recorder);

  EXPECT_EQ(bare_out, observed_out)
      << "attaching --prof-out/--progress style observation changed the run";
  EXPECT_GT(telemetry.events, 0u);
  EXPECT_GT(telemetry.sim_s, 0.0);
}

}  // namespace
}  // namespace mps
