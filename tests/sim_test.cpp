// Tests for the discrete-event kernel: ordering, cancellation, timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace mps {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint::from_ns(30), [&] { order.push_back(3); });
  q.schedule(TimePoint::from_ns(10), [&] { order.push_back(1); });
  q.schedule(TimePoint::from_ns(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(TimePoint::from_ns(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(TimePoint::from_ns(10), [&] { ++fired; });
  q.schedule(TimePoint::from_ns(20), [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelUnknownIsNoop) {
  EventQueue q;
  q.cancel(12345);
  q.cancel(kInvalidEventId);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(TimePoint::from_ns(5), [] {});
  q.schedule(TimePoint::from_ns(50), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time().ns(), 50);
}

TEST(EventQueueTest, EmptyAfterAllCancelled) {
  EventQueue q;
  const EventId a = q.schedule(TimePoint::from_ns(5), [] {});
  const EventId b = q.schedule(TimePoint::from_ns(9), [] {});
  q.cancel(b);  // cancel a non-top entry first
  q.cancel(a);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.next_time().is_never());
}

TEST(EventQueueTest, StaleIdAfterSlotReuseIsNoop) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule(TimePoint::from_ns(10), [&] { fired = 1; });
  q.cancel(a);
  // The freed slot is reused by the next schedule; the old id must not be
  // able to reach through to the new occupant.
  const EventId b = q.schedule(TimePoint::from_ns(20), [&] { fired = 2; });
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 2);
  (void)b;
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule(TimePoint::from_ns(10), [&] { ++fired; });
  q.schedule(TimePoint::from_ns(20), [&] { ++fired; });
  q.pop().fn();  // fires a
  q.cancel(a);   // stale; must not disturb the remaining entry
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_EQ(fired, 2);
}

// Regression for dead-entry accumulation: a workload that cancels nearly
// everything it schedules (the RTO-restart pattern) must keep size() exact —
// cancelled entries may not linger in the queue in any observable way.
TEST(EventQueueTest, SizeStaysExactUnderCancelHeavyChurn) {
  EventQueue q;
  std::uint64_t lcg = 42;
  auto rnd = [&lcg](std::uint64_t mod) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return (lcg >> 33) % mod;
  };
  std::vector<EventId> live;
  for (int i = 0; i < 20000; ++i) {
    const auto when = TimePoint::from_ns(static_cast<std::int64_t>(rnd(1000)));
    live.push_back(q.schedule(when, [] {}));
    // Cancel a random live entry ~95% of the time: the live set stays tiny
    // while churn is huge, so any tombstoning would show up as size() drift.
    if (rnd(100) < 95 && !live.empty()) {
      const std::size_t k = rnd(live.size());
      q.cancel(live[k]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
    }
    ASSERT_EQ(q.size(), live.size());
  }
  EXPECT_LT(q.size(), 2000u);
  std::size_t popped = 0;
  TimePoint prev = TimePoint::from_ns(-1);
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GE(ev.when.ns(), prev.ns());
    prev = ev.when;
    ++popped;
  }
  EXPECT_EQ(popped, live.size());
}

// Property test: run a random schedule/cancel/pop workload against a naive
// reference model and require identical firing order — including the FIFO
// tie-break among equal timestamps — and identical size() at every step.
TEST(EventQueueTest, ChurnMatchesReferenceModel) {
  struct Ref {
    std::int64_t when;
    std::uint64_t order;  // global insertion counter = FIFO tie-break key
    int tag;
  };
  EventQueue q;
  std::vector<Ref> model;               // live entries, unordered
  std::vector<std::pair<EventId, std::size_t>> ids;  // queue id -> tag
  std::vector<int> fired_queue, fired_model;
  std::uint64_t order = 0;
  int tag = 0;
  std::uint64_t lcg = 7;
  auto rnd = [&lcg](std::uint64_t mod) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return (lcg >> 33) % mod;
  };
  auto model_pop = [&model]() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < model.size(); ++i) {
      if (model[i].when < model[best].when ||
          (model[i].when == model[best].when &&
           model[i].order < model[best].order)) {
        best = i;
      }
    }
    const int t = model[best].tag;
    model.erase(model.begin() + static_cast<std::ptrdiff_t>(best));
    return t;
  };
  for (int step = 0; step < 8000; ++step) {
    const std::uint64_t op = rnd(10);
    if (op < 5 || model.empty()) {
      // Coarse timestamps force plenty of same-time collisions so the FIFO
      // tie-break is actually exercised.
      const std::int64_t when = static_cast<std::int64_t>(rnd(50));
      const int t = tag++;
      ids.emplace_back(
          q.schedule(TimePoint::from_ns(when),
                     [&fired_queue, t] { fired_queue.push_back(t); }),
          static_cast<std::size_t>(t));
      model.push_back({when, order++, t});
    } else if (op < 8) {
      const std::size_t k = rnd(ids.size());
      q.cancel(ids[k].first);
      const int t = static_cast<int>(ids[k].second);
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(k));
      for (std::size_t i = 0; i < model.size(); ++i) {
        if (model[i].tag == t) {
          model.erase(model.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    } else {
      q.pop().fn();
      fired_model.push_back(model_pop());
      const int t = fired_model.back();
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (static_cast<int>(ids[i].second) == t) {
          ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    ASSERT_EQ(q.size(), model.size()) << "after step " << step;
  }
  while (!q.empty()) {
    q.pop().fn();
    fired_model.push_back(model_pop());
  }
  EXPECT_EQ(fired_queue, fired_model);
  EXPECT_TRUE(model.empty());
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  TimePoint seen;
  sim.after(Duration::millis(7), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.ns(), Duration::millis(7).ns());
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.after(Duration::millis(1), [&] { ++fired; });
  sim.after(Duration::millis(100), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), Duration::millis(10).ns());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsAtDeadlineRun) {
  Simulator sim;
  bool fired = false;
  sim.after(Duration::millis(10), [&] { fired = true; });
  sim.run_until(TimePoint::origin() + Duration::millis(10));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.after(Duration::millis(5), [&] {
    EXPECT_THROW(sim.at(TimePoint::origin(), [] {}), std::logic_error);
  });
  sim.run();
}

TEST(SimulatorTest, NestedSchedulingFromCallback) {
  Simulator sim;
  std::vector<int> order;
  sim.after(Duration::millis(1), [&] {
    order.push_back(1);
    sim.after(Duration::millis(1), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now().ns(), Duration::millis(2).ns());
}

TEST(SimulatorTest, PostRunsAtCurrentTimeAfterQueued) {
  Simulator sim;
  std::vector<int> order;
  sim.after(Duration::millis(1), [&] {
    sim.post([&] { order.push_back(2); });
    order.push_back(1);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RequestStopBreaksRun) {
  Simulator sim;
  int fired = 0;
  sim.after(Duration::millis(1), [&] {
    ++fired;
    sim.request_stop();
  });
  sim.after(Duration::millis(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.after(Duration::millis(1), [&] { ++fired; });
  sim.after(Duration::millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(TimerTest, ReschedulingCancelsPrevious) {
  Simulator sim;
  Timer timer(sim);
  int fired = 0;
  timer.schedule_after(Duration::millis(5), [&] { fired = 5; });
  timer.schedule_after(Duration::millis(2), [&] { fired = 2; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(TimerTest, CancelPreventsFire) {
  Simulator sim;
  Timer timer(sim);
  bool fired = false;
  timer.schedule_after(Duration::millis(5), [&] { fired = true; });
  timer.cancel();
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(timer.pending());
}

TEST(TimerTest, DestructorCancels) {
  Simulator sim;
  bool fired = false;
  {
    Timer timer(sim);
    timer.schedule_after(Duration::millis(5), [&] { fired = true; });
  }
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(TimerTest, PendingAndDeadline) {
  Simulator sim;
  Timer timer(sim);
  EXPECT_FALSE(timer.pending());
  timer.schedule_after(Duration::millis(3), [] {});
  EXPECT_TRUE(timer.pending());
  EXPECT_EQ(timer.deadline().ns(), Duration::millis(3).ns());
  sim.run();
  EXPECT_FALSE(timer.pending());
}

TEST(TimerTest, CanRescheduleFromOwnCallback) {
  Simulator sim;
  Timer timer(sim);
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 3) timer.schedule_after(Duration::millis(1), tick);
  };
  timer.schedule_after(Duration::millis(1), tick);
  sim.run();
  EXPECT_EQ(count, 3);
}

// The wheel-vs-reference equivalence harness: drives an EventQueue and a
// brute-force model (linear-scan min by (when, insertion order)) through the
// same randomized schedule/cancel/pop trace and demands identical fire order
// and identical size() at every step. `span_ns` controls how far apart
// timestamps land, i.e. which wheel levels (or the far-future heap) the
// events exercise; `monotone` anchors timestamps at the last popped time,
// mimicking a real simulation clock.
void RunChurnEquivalence(std::uint64_t seed, std::int64_t span_ns, bool monotone,
                         int steps) {
  struct Ref {
    std::int64_t when;
    std::uint64_t order;
    int tag;
  };
  EventQueue q;
  std::vector<Ref> model;
  std::vector<std::pair<EventId, int>> ids;
  std::vector<int> fired_queue;
  std::uint64_t order = 0;
  int tag = 0;
  std::uint64_t lcg = seed;
  auto rnd = [&lcg](std::uint64_t mod) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return (lcg >> 33) % mod;
  };
  std::int64_t now = 0;
  for (int step = 0; step < steps; ++step) {
    ASSERT_EQ(q.size(), model.size()) << "step " << step;
    const std::uint64_t op = rnd(10);
    if (op < 5 || model.empty()) {
      const std::int64_t when =
          (monotone ? now : std::int64_t{0}) + static_cast<std::int64_t>(rnd(
              static_cast<std::uint64_t>(span_ns)));
      const int t = tag++;
      ids.emplace_back(q.schedule(TimePoint::from_ns(when),
                                  [&fired_queue, t] { fired_queue.push_back(t); }),
                       t);
      model.push_back({when, order++, t});
    } else if (op < 7 && !ids.empty()) {
      const std::size_t k = rnd(ids.size());
      q.cancel(ids[k].first);
      const int t = ids[k].second;
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(k));
      for (std::size_t i = 0; i < model.size(); ++i) {
        if (model[i].tag == t) {
          model.erase(model.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    } else {
      std::size_t best = 0;
      for (std::size_t i = 1; i < model.size(); ++i) {
        if (model[i].when < model[best].when ||
            (model[i].when == model[best].when && model[i].order < model[best].order)) {
          best = i;
        }
      }
      ASSERT_EQ(q.next_time().ns(), model[best].when) << "step " << step;
      q.pop().fn();
      ASSERT_FALSE(fired_queue.empty());
      ASSERT_EQ(fired_queue.back(), model[best].tag) << "step " << step;
      now = std::max(now, model[best].when);
      const int t = model[best].tag;
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(best));
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids[i].second == t) {
          ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
  }
  while (!q.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < model.size(); ++i) {
      if (model[i].when < model[best].when ||
          (model[i].when == model[best].when && model[i].order < model[best].order)) {
        best = i;
      }
    }
    q.pop().fn();
    ASSERT_EQ(fired_queue.back(), model[best].tag);
    model.erase(model.begin() + static_cast<std::ptrdiff_t>(best));
  }
  EXPECT_TRUE(model.empty());
}

// Spans chosen around the wheel geometry (tick = 2^17 ns ~ 131 us; level
// spans ~33.6 ms / ~8.6 s / ~36.7 min): single-tick collisions, level-0
// only, level-0/1 boundary, level-1/2 boundary, and far enough that events
// overflow to the heap and back onto the wheel as the cursor advances.
TEST(EventQueueTest, WheelChurnSingleTick) {
  RunChurnEquivalence(/*seed=*/7, /*span_ns=*/50, /*monotone=*/false, 6000);
}

TEST(EventQueueTest, WheelChurnLevel0) {
  RunChurnEquivalence(/*seed=*/11, /*span_ns=*/20'000'000, /*monotone=*/true, 6000);
}

TEST(EventQueueTest, WheelChurnLevel01Boundary) {
  RunChurnEquivalence(/*seed=*/13, /*span_ns=*/200'000'000, /*monotone=*/true, 6000);
}

TEST(EventQueueTest, WheelChurnLevel12Boundary) {
  RunChurnEquivalence(/*seed=*/17, /*span_ns=*/60'000'000'000, /*monotone=*/true, 4000);
}

TEST(EventQueueTest, WheelChurnBeyondHorizonUsesHeap) {
  RunChurnEquivalence(/*seed=*/19, /*span_ns=*/4'000'000'000'000, /*monotone=*/true, 3000);
}

TEST(EventQueueTest, WheelChurnMixedSpansNonMonotone) {
  RunChurnEquivalence(/*seed=*/23, /*span_ns=*/9'000'000'000, /*monotone=*/false, 6000);
}

// Events scheduled behind the wheel cursor (possible when the simulated
// clock advanced via a heap event) still fire in exact (when, seq) order.
TEST(EventQueueTest, OverdueScheduleAfterCursorAdvance) {
  EventQueue q;
  std::vector<int> fired;
  // Far-future event lands in the heap; popping it does not move the wheel.
  q.schedule(TimePoint::from_ns(7'200'000'000'000), [&] { fired.push_back(0); });
  // Wheel residents establish a cursor near t=1ms; the 2ms one stays put so
  // the cursor cannot reset when the 1ms event pops.
  q.schedule(TimePoint::from_ns(1'000'000), [&] { fired.push_back(1); });
  q.schedule(TimePoint::from_ns(2'000'000), [&] { fired.push_back(5); });
  q.pop().fn();  // t=1ms wheel event
  // Now schedule earlier than the cursor's tick: clamps into the current
  // bucket, but must still fire before the 2ms event, in exact (when, seq)
  // order among themselves.
  q.schedule(TimePoint::from_ns(500), [&] { fired.push_back(2); });
  q.schedule(TimePoint::from_ns(400), [&] { fired.push_back(3); });
  q.schedule(TimePoint::from_ns(500), [&] { fired.push_back(4); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 2, 4, 5, 0}));
}

}  // namespace
}  // namespace mps
