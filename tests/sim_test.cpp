// Tests for the discrete-event kernel: ordering, cancellation, timers.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace mps {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint::from_ns(30), [&] { order.push_back(3); });
  q.schedule(TimePoint::from_ns(10), [&] { order.push_back(1); });
  q.schedule(TimePoint::from_ns(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(TimePoint::from_ns(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(TimePoint::from_ns(10), [&] { ++fired; });
  q.schedule(TimePoint::from_ns(20), [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelUnknownIsNoop) {
  EventQueue q;
  q.cancel(12345);
  q.cancel(kInvalidEventId);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(TimePoint::from_ns(5), [] {});
  q.schedule(TimePoint::from_ns(50), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time().ns(), 50);
}

TEST(EventQueueTest, EmptyAfterAllCancelled) {
  EventQueue q;
  const EventId a = q.schedule(TimePoint::from_ns(5), [] {});
  const EventId b = q.schedule(TimePoint::from_ns(9), [] {});
  q.cancel(b);  // cancel a non-top entry first
  q.cancel(a);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.next_time().is_never());
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  TimePoint seen;
  sim.after(Duration::millis(7), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.ns(), Duration::millis(7).ns());
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.after(Duration::millis(1), [&] { ++fired; });
  sim.after(Duration::millis(100), [&] { ++fired; });
  sim.run_until(TimePoint::origin() + Duration::millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), Duration::millis(10).ns());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsAtDeadlineRun) {
  Simulator sim;
  bool fired = false;
  sim.after(Duration::millis(10), [&] { fired = true; });
  sim.run_until(TimePoint::origin() + Duration::millis(10));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.after(Duration::millis(5), [&] {
    EXPECT_THROW(sim.at(TimePoint::origin(), [] {}), std::logic_error);
  });
  sim.run();
}

TEST(SimulatorTest, NestedSchedulingFromCallback) {
  Simulator sim;
  std::vector<int> order;
  sim.after(Duration::millis(1), [&] {
    order.push_back(1);
    sim.after(Duration::millis(1), [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now().ns(), Duration::millis(2).ns());
}

TEST(SimulatorTest, PostRunsAtCurrentTimeAfterQueued) {
  Simulator sim;
  std::vector<int> order;
  sim.after(Duration::millis(1), [&] {
    sim.post([&] { order.push_back(2); });
    order.push_back(1);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RequestStopBreaksRun) {
  Simulator sim;
  int fired = 0;
  sim.after(Duration::millis(1), [&] {
    ++fired;
    sim.request_stop();
  });
  sim.after(Duration::millis(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, StepProcessesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.after(Duration::millis(1), [&] { ++fired; });
  sim.after(Duration::millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(TimerTest, ReschedulingCancelsPrevious) {
  Simulator sim;
  Timer timer(sim);
  int fired = 0;
  timer.schedule_after(Duration::millis(5), [&] { fired = 5; });
  timer.schedule_after(Duration::millis(2), [&] { fired = 2; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(TimerTest, CancelPreventsFire) {
  Simulator sim;
  Timer timer(sim);
  bool fired = false;
  timer.schedule_after(Duration::millis(5), [&] { fired = true; });
  timer.cancel();
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(timer.pending());
}

TEST(TimerTest, DestructorCancels) {
  Simulator sim;
  bool fired = false;
  {
    Timer timer(sim);
    timer.schedule_after(Duration::millis(5), [&] { fired = true; });
  }
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(TimerTest, PendingAndDeadline) {
  Simulator sim;
  Timer timer(sim);
  EXPECT_FALSE(timer.pending());
  timer.schedule_after(Duration::millis(3), [] {});
  EXPECT_TRUE(timer.pending());
  EXPECT_EQ(timer.deadline().ns(), Duration::millis(3).ns());
  sim.run();
  EXPECT_FALSE(timer.pending());
}

TEST(TimerTest, CanRescheduleFromOwnCallback) {
  Simulator sim;
  Timer timer(sim);
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 3) timer.schedule_after(Duration::millis(1), tick);
  };
  timer.schedule_after(Duration::millis(1), tick);
  sim.run();
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace mps
