// Tests for the contiguous hot-path containers (util/ring.h), the SBO
// callback (sim/callback.h), and the link packet pool (net/packet_pool.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/packet_pool.h"
#include "sim/callback.h"
#include "util/ring.h"

namespace mps {
namespace {

std::uint64_t g_lcg = 42;
std::uint64_t Rnd(std::uint64_t mod) {
  g_lcg = g_lcg * 6364136223846793005ULL + 1442695040888963407ULL;
  return (g_lcg >> 33) % mod;
}

TEST(RingDequeTest, FifoOrderAcrossGrowth) {
  RingDeque<int> q;
  for (int i = 0; i < 100; ++i) q.push_back(i);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(q.front(), i);
    ASSERT_EQ(q.at(0), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingDequeTest, WrapsWhenHeadAdvances) {
  RingDeque<int> q;
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    const std::uint64_t n = Rnd(5);
    for (std::uint64_t i = 0; i < n; ++i) q.push_back(next_in++);
    while (q.size() > Rnd(7)) {
      ASSERT_EQ(q.front(), next_out++);
      q.pop_front();
    }
    for (std::size_t i = 0; i < q.size(); ++i) {
      ASSERT_EQ(q.at(i), next_out + static_cast<int>(i));
    }
  }
}

TEST(RingDequeTest, PopReleasesPayload) {
  RingDeque<std::shared_ptr<int>> q;
  auto p = std::make_shared<int>(7);
  q.push_back(p);
  EXPECT_EQ(p.use_count(), 2);
  q.pop_front();
  // pop_front must drop the stored copy immediately, not on overwrite.
  EXPECT_EQ(p.use_count(), 1);
}

TEST(SeqRingTest, DenseRangeSemantics) {
  SeqRing<int> r;
  r.reset(1000);
  EXPECT_EQ(r.lo(), 1000u);
  EXPECT_EQ(r.hi(), 1000u);
  for (int i = 0; i < 50; ++i) r.push_back(i);
  EXPECT_EQ(r.hi(), 1050u);
  for (std::uint64_t s = r.lo(); s != r.hi(); ++s) {
    ASSERT_EQ(r[s], static_cast<int>(s - 1000));
  }
  r.pop_front();
  r.pop_front();
  EXPECT_EQ(r.lo(), 1002u);
  EXPECT_EQ(r.front(), 2);
  r[1002] = 99;
  EXPECT_EQ(r.front(), 99);
}

TEST(SeqRingTest, SlidingChurnAcrossGrowth) {
  SeqRing<std::uint64_t> r;
  std::uint64_t lo = 0, hi = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::uint64_t pushes = Rnd(6);
    for (std::uint64_t i = 0; i < pushes; ++i) r.push_back(hi++);
    const std::uint64_t pops = r.empty() ? 0 : Rnd(r.size() + 1);
    for (std::uint64_t i = 0; i < pops; ++i) {
      ASSERT_EQ(r.front(), lo);
      r.pop_front();
      ++lo;
    }
    ASSERT_EQ(r.lo(), lo);
    ASSERT_EQ(r.hi(), hi);
    for (std::uint64_t s = lo; s != hi; ++s) ASSERT_EQ(r[s], s);
  }
}

TEST(SeqWindowTest, MatchesStdMapUnderChurn) {
  SeqWindow<int> w;
  std::map<std::uint64_t, int> model;
  std::uint64_t base = 0;
  for (int round = 0; round < 4000; ++round) {
    const std::uint64_t op = Rnd(10);
    if (op < 5) {
      const std::uint64_t key = base + Rnd(200);
      const int val = static_cast<int>(Rnd(1'000'000));
      const bool inserted = w.insert(key, val);
      ASSERT_EQ(inserted, model.emplace(key, val).second);
    } else if (op < 8 && !model.empty()) {
      // Mostly erase the min (drain pattern), sometimes a random key.
      auto it = model.begin();
      if (Rnd(3) == 0) it = std::next(it, static_cast<std::ptrdiff_t>(Rnd(model.size())));
      ASSERT_TRUE(w.contains(it->first));
      w.erase(it->first);
      model.erase(it);
      base += Rnd(20);  // slide the window forward
    } else {
      const std::uint64_t probe = base + Rnd(250);
      const auto it = model.find(probe);
      ASSERT_EQ(w.contains(probe), it != model.end());
      if (it != model.end()) ASSERT_EQ(*w.find(probe), it->second);
      const auto after = model.lower_bound(probe);
      ASSERT_EQ(w.first_at_or_after(probe),
                after == model.end() ? SeqWindow<int>::kNone : after->first);
    }
    ASSERT_EQ(w.size(), model.size());
    ASSERT_EQ(w.min_key(),
              model.empty() ? SeqWindow<int>::kNone : model.begin()->first);
    ASSERT_EQ(w.max_key(),
              model.empty() ? SeqWindow<int>::kNone : model.rbegin()->first);
  }
}

TEST(FlatSeqMapTest, MatchesStdMapUnderChurn) {
  FlatSeqMap<int> m;
  std::map<std::uint64_t, int> model;
  std::uint64_t drained_to = 0;
  for (int round = 0; round < 4000; ++round) {
    const std::uint64_t op = Rnd(10);
    if (op < 6) {
      const std::uint64_t key = drained_to + Rnd(500);
      const int val = static_cast<int>(Rnd(1'000'000));
      const auto [slot, inserted] = m.try_emplace(key, val);
      const auto [it, minserted] = model.emplace(key, val);
      ASSERT_EQ(inserted, minserted);
      ASSERT_EQ(*slot, it->second);
    } else if (!model.empty()) {
      ASSERT_EQ(m.front_key(), model.begin()->first);
      ASSERT_EQ(m.front_value(), model.begin()->second);
      drained_to = model.begin()->first;
      m.pop_front();
      model.erase(model.begin());
    }
    ASSERT_EQ(m.size(), model.size());
    std::size_t i = 0;
    for (const auto& [k, v] : model) {
      ASSERT_EQ(m.at(i).key, k);
      ASSERT_EQ(m.at(i).value, v);
      ++i;
    }
  }
}

TEST(CallbackTest, InlineCaptureNoAllocation) {
  // The kernel Callback holds 24 inline bytes: a pointer plus two scalars,
  // the largest closure the event loop schedules.
  struct Big {
    std::uint64_t a[2];
  };
  Big big{{1, 2}};
  std::uint64_t sum = 0;
  static_assert(sizeof(big) + sizeof(&sum) <= Callback::kInlineBytes);
  Callback cb([big, &sum] {
    for (const std::uint64_t v : big.a) sum += v;
  });
  cb();
  EXPECT_EQ(sum, 3u);
}

TEST(CallbackTest, WideSboVariantHoldsFortyBytesInline) {
  // Link::DeliverFn and other per-packet seams keep the 48-byte default.
  struct Big {
    std::uint64_t a[5];
  };
  static_assert(sizeof(Big) == 40);
  static_assert(BasicCallback<void()>::kInlineBytes == 48);
  Big big{{1, 2, 3, 4, 5}};
  std::uint64_t sum = 0;
  BasicCallback<void()> cb([big, &sum] {
    for (const std::uint64_t v : big.a) sum += v;
  });
  cb();
  EXPECT_EQ(sum, 15u);
}

TEST(CallbackTest, HeapFallbackForOversizeCapture) {
  struct Huge {
    std::uint64_t a[16];
  };
  Huge huge{};
  huge.a[15] = 9;
  std::uint64_t got = 0;
  Callback cb([huge, &got] { got = huge.a[15]; });
  Callback moved = std::move(cb);
  moved();
  EXPECT_EQ(got, 9u);
}

TEST(CallbackTest, MoveTransfersOwnershipAndReset) {
  auto count = std::make_shared<int>(0);
  Callback cb([count] { ++*count; });
  EXPECT_EQ(count.use_count(), 2);
  Callback moved = std::move(cb);
  moved();
  EXPECT_EQ(*count, 1);
  moved.reset();
  EXPECT_EQ(count.use_count(), 1);  // captured state destroyed on reset
}

TEST(CallbackTest, ReturnValueAndArguments) {
  BasicCallback<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

TEST(PacketPoolTest, RecyclesBuffers) {
  PacketPool pool;
  Packet* a = pool.acquire();
  Packet* b = pool.acquire();
  EXPECT_NE(a, b);
  pool.release(a);
  Packet* c = pool.acquire();
  EXPECT_EQ(c, a);  // LIFO reuse of the freed buffer
  pool.release(b);
  pool.release(c);
  // Steady-state churn must not grow capacity.
  const std::size_t cap = pool.capacity();
  for (int i = 0; i < 1000; ++i) {
    Packet* p = pool.acquire();
    pool.release(p);
  }
  EXPECT_EQ(pool.capacity(), cap);
}

TEST(PacketPoolTest, DistinctLiveBuffers) {
  PacketPool pool;
  std::set<Packet*> live;
  std::vector<Packet*> order;
  for (int i = 0; i < 200; ++i) {
    Packet* p = pool.acquire();
    ASSERT_TRUE(live.insert(p).second) << "pool handed out a live buffer twice";
    order.push_back(p);
  }
  for (Packet* p : order) pool.release(p);
}

}  // namespace
}  // namespace mps
