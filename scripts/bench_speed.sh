#!/usr/bin/env bash
# Perf trajectory: builds Release (bench-speed preset) and refreshes
# BENCH_speed.json at the repo root so PRs can compare kernel events/sec and
# grid cells/sec against the committed baseline.
#
#   scripts/bench_speed.sh            # write/update BENCH_speed.json
#   MPS_BENCH_JOBS=8 scripts/bench_speed.sh   # pin the parallel phase
set -euo pipefail

cd "$(dirname "$0")/.."

if cmake --list-presets >/dev/null 2>&1; then
  cmake --preset bench-speed >/dev/null
else
  # CMake without preset support (< 3.21): equivalent manual configure.
  cmake -S . -B build-release -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
cmake --build build-release -j "$(nproc)" --target bench_speed
./build-release/bench/bench_speed BENCH_speed.json
echo "bench_speed.sh: BENCH_speed.json updated"
