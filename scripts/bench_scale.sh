#!/usr/bin/env bash
# Scale trajectory: refreshes BENCH_scale.json at the repo root with the
# world-core scale cells (1k/10k/100k concurrent flows).
#
# Two-build flow: events/sec comes from the plain Release build (bench-speed
# preset), then a -DMPS_PROF=ON build re-runs the cells for memory only and
# merges resident bytes/flow into the same report (--mem-only), so the
# timing numbers are never polluted by accounting overhead.
#
#   scripts/bench_scale.sh                  # write/update BENCH_scale.json
#   MPS_SCALE_CELLS=1000 scripts/bench_scale.sh   # override the cell list
set -euo pipefail

cd "$(dirname "$0")/.."

cells="${MPS_SCALE_CELLS:-1000,10000,100000}"

if cmake --list-presets >/dev/null 2>&1; then
  cmake --preset bench-speed >/dev/null
  cmake --preset prof >/dev/null
else
  cmake -S . -B build-release -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake -S . -B build-prof -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_PROF=ON >/dev/null
fi
cmake --build build-release -j "$(nproc)" --target bench_scale
cmake --build build-prof -j "$(nproc)" --target bench_scale

./build-release/bench/bench_scale --cells "$cells" --out BENCH_scale.json
./build-prof/bench/bench_scale --mem-only BENCH_scale.json --out BENCH_scale.json
echo "bench_scale.sh: BENCH_scale.json updated"
