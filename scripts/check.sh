#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the unit/integration test suite.
#
#   scripts/check.sh               # RelWithDebInfo build + ctest
#   scripts/check.sh --sanitize    # additionally run the suite under ASan+UBSan
#   scripts/check.sh --tsan        # additionally run the sweep/kernel tests under TSan
#   scripts/check.sh --notrace     # additionally prove MPS_TRACE_EVENTS=OFF builds
#
# Exits non-zero on the first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"; shift
  local filter="$1"; shift
  cmake -S . -B "$build_dir" "$@" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)"
  if [[ -n "$filter" ]]; then
    ctest --test-dir "$build_dir" --output-on-failure -R "$filter"
  else
    ctest --test-dir "$build_dir" --output-on-failure
  fi
}

sanitize=0
tsan=0
notrace=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) sanitize=1 ;;
    --tsan) tsan=1 ;;
    --notrace) notrace=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

run_suite build "" -DCMAKE_BUILD_TYPE=RelWithDebInfo

if [[ "$sanitize" == 1 ]]; then
  run_suite build-sanitize "" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_SANITIZE=address
fi

if [[ "$tsan" == 1 ]]; then
  # The thread pool and everything it runs, vetted under ThreadSanitizer:
  # sweep-runner tests (parallel determinism) plus the event-kernel tests.
  run_suite build-tsan "Sweep|EventQueue|Simulator|Timer" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_SANITIZE=thread
fi

if [[ "$notrace" == 1 ]]; then
  run_suite build-notrace "" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_TRACE_EVENTS=OFF
fi

echo "check.sh: all requested suites passed"
