#!/usr/bin/env bash
# Tier-1 check: configure, build, and run the unit/integration test suite.
#
#   scripts/check.sh               # RelWithDebInfo build + ctest + scenario smoke
#   scripts/check.sh --sanitize    # additionally run suite + smoke under ASan+UBSan
#   scripts/check.sh --tsan        # additionally run the sweep/kernel tests + smoke under TSan
#   scripts/check.sh --notrace     # additionally prove MPS_TRACE_EVENTS=OFF builds
#   scripts/check.sh --prof        # additionally run the full suite with -DMPS_PROF=ON
#   scripts/check.sh --scenarios   # only the scenario smoke (assumes ./build exists)
#   scripts/check.sh --stress      # only a full seeded stress sweep (assumes ./build)
#   scripts/check.sh --fairness    # only the fairness smoke (assumes ./build)
#   scripts/check.sh --scale       # only the 1k-flow scale smoke (assumes ./build)
#   scripts/check.sh --snapshot    # only the snapshot-and-fork smoke (assumes ./build)
#   scripts/check.sh --handover    # only the path-churn/handover smoke (assumes ./build)
#   scripts/check.sh --crossproduct # only the scheduler x CC grid smoke (assumes ./build)
#
# The default suite always includes a profiling smoke: a -DMPS_PROF=ON build
# runs its profiler unit tests and the full golden corpus (byte-identical
# with profiling compiled in), mps_run --prof-out must emit a report that
# mps_report --check accepts, and attaching --prof-out/--progress must not
# change mps_run's stdout.
#
# The default suite and the sanitizer suite both end with a bounded
# invariant-checked stress sweep (tools/mps_stress): every fault profile x
# scheduler x seed cell runs a download under check/invariants.h, and any
# violation or stall fails the script.
#
# Exits non-zero on the first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"; shift
  local filter="$1"; shift
  cmake -S . -B "$build_dir" "$@" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)"
  if [[ -n "$filter" ]]; then
    ctest --test-dir "$build_dir" --output-on-failure -R "$filter"
  else
    ctest --test-dir "$build_dir" --output-on-failure
  fi
}

# Every checked-in preset must load and run end to end through mps_run.
# Durations are overridden down so the smoke stays fast at any scale.
run_scenarios_smoke() {
  local build_dir="$1"
  echo "scenario smoke ($build_dir):"
  local spec
  for spec in scenarios/*.json; do
    echo "  $spec"
    "$build_dir/tools/mps_run" "$spec" \
      --set workload.video_s=5 --set workload.bytes=65536 --set workload.runs=1
  done
}

# Competing-traffic smoke: the bench_fairness grid must be bit-identical
# serial vs parallel (the churn engine's core determinism contract), and the
# contended-bottleneck preset must run end to end.
run_fairness_smoke() {
  local build_dir="$1"
  echo "fairness smoke ($build_dir): bench_fairness jobs=1 vs jobs=4"
  cmake --build "$build_dir" -j "$(nproc)" --target bench_fairness mps_run
  local serial parallel
  serial="$(MPS_BENCH_SCALE=quick MPS_BENCH_JOBS=1 "$build_dir/bench/bench_fairness")"
  parallel="$(MPS_BENCH_SCALE=quick MPS_BENCH_JOBS=4 "$build_dir/bench/bench_fairness")"
  if [[ "$serial" != "$parallel" ]]; then
    echo "bench_fairness: jobs=1 vs jobs=4 outputs differ" >&2
    diff <(printf '%s\n' "$serial") <(printf '%s\n' "$parallel") >&2 || true
    return 1
  fi
  echo "  scenarios/contended_bottleneck.json"
  "$build_dir/tools/mps_run" scenarios/contended_bottleneck.json >/dev/null
}

# Profiling smoke: prove the observability layer cannot perturb a run. The
# -DMPS_PROF=ON build must keep the golden corpus byte-identical, mps_run
# --prof-out must emit a report mps_report --check accepts, and attaching
# --prof-out/--progress must leave mps_run's stdout unchanged.
run_prof_smoke() {
  local build_dir="$1"
  echo "prof smoke ($build_dir): goldens + mps_run --prof-out + mps_report --check"
  cmake -S . -B "$build_dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_PROF=ON >/dev/null
  cmake --build "$build_dir" -j "$(nproc)" --target prof_test golden_test mps_run mps_report
  ctest --test-dir "$build_dir" --output-on-failure -R "Prof|ProfileReport|SweepTelemetry|Determinism|GoldenCorpus"
  local tmp bare observed
  tmp="$(mktemp -d)"
  bare="$("$build_dir/tools/mps_run" scenarios/contended_bottleneck.json)"
  observed="$("$build_dir/tools/mps_run" scenarios/contended_bottleneck.json \
    --prof-out "$tmp/prof.json" --progress=0.001 2>/dev/null)"
  if [[ "$bare" != "$observed" ]]; then
    echo "mps_run: --prof-out/--progress changed the run output" >&2
    diff <(printf '%s\n' "$bare") <(printf '%s\n' "$observed") >&2 || true
    rm -rf "$tmp"
    return 1
  fi
  "$build_dir/tools/mps_report" "$tmp/prof.json" --check
  "$build_dir/tools/mps_report" "$tmp/prof.json" >/dev/null
  rm -rf "$tmp"
}

# Scale smoke: a 1k-concurrent-flow traffic cell runs end to end with every
# live connection under the invariant checker (bench_scale --smoke). Guards
# the arena/ring/timer-wheel scale machinery in every suite it runs in.
run_scale_smoke() {
  local build_dir="$1"
  echo "scale smoke ($build_dir): bench_scale --smoke"
  cmake --build "$build_dir" -j "$(nproc)" --target bench_scale
  "$build_dir/bench/bench_scale" --smoke
}

# Snapshot-and-fork smoke: every preset run through mps_run with a mid-run
# snapshot + 2-way fork must print output byte-identical to the plain run
# (exp/snapshot.h's sequential-consistency contract), and mps_run's own
# fork-check must pass. Durations are overridden down like the scenario
# smoke so this stays fast at any scale.
run_snapshot_smoke() {
  local build_dir="$1"
  echo "snapshot smoke ($build_dir): mps_run --snapshot-at=0.5 --fork=2 vs plain"
  cmake --build "$build_dir" -j "$(nproc)" --target mps_run
  local spec plain forked
  for spec in scenarios/*.json; do
    echo "  $spec"
    plain="$("$build_dir/tools/mps_run" "$spec" \
      --set workload.video_s=5 --set workload.bytes=65536 --set workload.runs=1)"
    forked="$("$build_dir/tools/mps_run" "$spec" \
      --set workload.video_s=5 --set workload.bytes=65536 --set workload.runs=1 \
      --snapshot-at=0.5 --fork=2)"
    if [[ "$plain" != "$forked" ]]; then
      echo "mps_run: snapshot+fork changed the output for $spec" >&2
      diff <(printf '%s\n' "$plain") <(printf '%s\n' "$forked") >&2 || true
      return 1
    fi
  done
}

# Handover smoke: dynamic path management end to end. The commuter preset
# (mid-connection subflow churn) must run, snapshot+fork straddling the
# handover window must stay byte-identical to the plain run, the other two
# churn presets must load and run, and the seeded "handover" stress profile
# (every scheduler x seed under the invariant checker while both paths are
# torn down and re-joined) must pass.
run_handover_smoke() {
  local build_dir="$1"
  echo "handover smoke ($build_dir): churn presets + fork-at-handover + stress profile"
  cmake --build "$build_dir" -j "$(nproc)" --target mps_run mps_stress
  local plain forked
  plain="$("$build_dir/tools/mps_run" scenarios/handover_commuter.json \
    --set workload.video_s=5)"
  forked="$("$build_dir/tools/mps_run" scenarios/handover_commuter.json \
    --set workload.video_s=5 --snapshot-at=0.1 --fork=2)"
  if [[ "$plain" != "$forked" ]]; then
    echo "mps_run: snapshot+fork changed the handover_commuter output" >&2
    diff <(printf '%s\n' "$plain") <(printf '%s\n' "$forked") >&2 || true
    return 1
  fi
  "$build_dir/tools/mps_run" scenarios/backup_promotion.json \
    --set workload.bytes=65536 >/dev/null
  "$build_dir/tools/mps_run" scenarios/correlated_loss_pair.json \
    --set workload.video_s=5 >/dev/null
  "$build_dir/tools/mps_stress" --seeds 2 --profiles handover
}

# Cross-product smoke: the scheduler x CC grid must be bit-identical
# serial vs parallel (stdout and the BENCH_crossproduct.json artifact), the
# two pinned cross-product presets must run end to end, and a bounded
# scheduler x CC slice of the "crossproduct" stress profile must pass under
# the invariant checker (including the coupled-terms recompute check).
run_crossproduct_smoke() {
  local build_dir="$1"
  echo "crossproduct smoke ($build_dir): bench_crossproduct jobs=1 vs jobs=4 + stress profile"
  cmake --build "$build_dir" -j "$(nproc)" --target bench_crossproduct mps_run mps_stress
  local tmp
  tmp="$(mktemp -d)"
  local serial parallel
  serial="$(MPS_BENCH_SCALE=quick MPS_BENCH_JOBS=1 \
    "$build_dir/bench/bench_crossproduct" "$tmp/serial.json")"
  parallel="$(MPS_BENCH_SCALE=quick MPS_BENCH_JOBS=4 \
    "$build_dir/bench/bench_crossproduct" "$tmp/parallel.json")"
  if [[ "${serial%wrote *}" != "${parallel%wrote *}" ]]; then
    echo "bench_crossproduct: jobs=1 vs jobs=4 outputs differ" >&2
    diff <(printf '%s\n' "$serial") <(printf '%s\n' "$parallel") >&2 || true
    rm -rf "$tmp"
    return 1
  fi
  if ! diff "$tmp/serial.json" "$tmp/parallel.json"; then
    echo "bench_crossproduct: jobs=1 vs jobs=4 JSON artifacts differ" >&2
    rm -rf "$tmp"
    return 1
  fi
  rm -rf "$tmp"
  echo "  scenarios/crossproduct_qaware_balia.json"
  "$build_dir/tools/mps_run" scenarios/crossproduct_qaware_balia.json \
    --set workload.bytes=65536 --set workload.runs=1 >/dev/null
  echo "  scenarios/oco_correlated_loss.json"
  "$build_dir/tools/mps_run" scenarios/oco_correlated_loss.json \
    --set workload.bytes=65536 --set workload.runs=1 >/dev/null
  "$build_dir/tools/mps_stress" --profiles crossproduct \
    --schedulers default,ecf,qaware,oco --ccs reno,cubic,lia,olia,balia --seeds 1
}

# Seeded stress sweep under the invariant checker. Cell counts are chosen
# for bounded runtime: the quick pass (2 seeds, 72 cells) rides along with
# every default run; the sanitizer pass uses 6 seeds (216 cells) so the
# ASan-clean >= 200-cell bar is part of CI, not a manual step.
run_stress_sweep() {
  local build_dir="$1"; shift
  echo "stress sweep ($build_dir): mps_stress $*"
  cmake --build "$build_dir" -j "$(nproc)" --target mps_stress
  "$build_dir/tools/mps_stress" "$@"
}

sanitize=0
tsan=0
notrace=0
prof=0
scenarios_only=0
stress_only=0
fairness_only=0
scale_only=0
snapshot_only=0
handover_only=0
crossproduct_only=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) sanitize=1 ;;
    --tsan) tsan=1 ;;
    --notrace) notrace=1 ;;
    --prof) prof=1 ;;
    --scenarios) scenarios_only=1 ;;
    --stress) stress_only=1 ;;
    --fairness) fairness_only=1 ;;
    --scale) scale_only=1 ;;
    --snapshot) snapshot_only=1 ;;
    --handover) handover_only=1 ;;
    --crossproduct) crossproduct_only=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

if [[ "$scenarios_only" == 1 ]]; then
  run_scenarios_smoke build
  echo "check.sh: scenario smoke passed"
  exit 0
fi

if [[ "$stress_only" == 1 ]]; then
  run_stress_sweep build --seeds 8
  echo "check.sh: stress sweep passed"
  exit 0
fi

if [[ "$fairness_only" == 1 ]]; then
  run_fairness_smoke build
  echo "check.sh: fairness smoke passed"
  exit 0
fi

if [[ "$scale_only" == 1 ]]; then
  run_scale_smoke build
  echo "check.sh: scale smoke passed"
  exit 0
fi

if [[ "$snapshot_only" == 1 ]]; then
  run_snapshot_smoke build
  echo "check.sh: snapshot smoke passed"
  exit 0
fi

if [[ "$handover_only" == 1 ]]; then
  run_handover_smoke build
  echo "check.sh: handover smoke passed"
  exit 0
fi

if [[ "$crossproduct_only" == 1 ]]; then
  run_crossproduct_smoke build
  echo "check.sh: crossproduct smoke passed"
  exit 0
fi

run_suite build "" -DCMAKE_BUILD_TYPE=RelWithDebInfo
run_scenarios_smoke build
run_snapshot_smoke build
run_handover_smoke build
run_crossproduct_smoke build
run_stress_sweep build --seeds 2
run_fairness_smoke build
run_scale_smoke build
run_prof_smoke build-prof

if [[ "$sanitize" == 1 ]]; then
  run_suite build-sanitize "" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_SANITIZE=address
  run_scenarios_smoke build-sanitize
  run_snapshot_smoke build-sanitize
  run_handover_smoke build-sanitize
  run_crossproduct_smoke build-sanitize
  run_stress_sweep build-sanitize --seeds 6
  run_scale_smoke build-sanitize
fi

if [[ "$tsan" == 1 ]]; then
  # The thread pool and everything it runs, vetted under ThreadSanitizer:
  # sweep-runner tests (parallel determinism) plus the event-kernel tests.
  run_suite build-tsan "Sweep|EventQueue|Simulator|Timer" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_SANITIZE=thread
  run_scenarios_smoke build-tsan
  run_snapshot_smoke build-tsan
  run_handover_smoke build-tsan
  run_crossproduct_smoke build-tsan
fi

if [[ "$notrace" == 1 ]]; then
  run_suite build-notrace "" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_TRACE_EVENTS=OFF
fi

if [[ "$prof" == 1 ]]; then
  # Full suite with the profiler compiled in (the default run already did the
  # targeted prof smoke); proves no test depends on MPS_PROF being off.
  run_suite build-prof "" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DMPS_PROF=ON
  run_scenarios_smoke build-prof
fi

echo "check.sh: all requested suites passed"
