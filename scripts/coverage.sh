#!/usr/bin/env bash
# Line-coverage summary for the tier-1 suite.
#
#   scripts/coverage.sh            # build with -DMPS_COVERAGE=ON, run ctest,
#                                  # print per-directory line coverage
#
# Uses the gcov instrumentation wired up by the MPS_COVERAGE CMake option
# (--coverage -O0). The per-file numbers gcov reports are per translation
# unit; headers included from several TUs are deduplicated by keeping the
# run with the most instrumented lines, so the summary is a best-effort
# union, not a strict line set — good enough to spot an untested directory.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build-coverage
cmake -S . -B "$build_dir" -DCMAKE_BUILD_TYPE=Debug -DMPS_COVERAGE=ON >/dev/null
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" >/dev/null

echo
echo "line coverage by directory (tier-1 suite):"

# gcov -n prints, per source file the object saw:
#   File 'src/net/link.cpp'
#   Lines executed:93.75% of 160
# Feed every .gcda through it and aggregate under the repo's src/ tree.
find "$build_dir" -name '*.gcda' -print0 |
  while IFS= read -r -d '' gcda; do
    gcov -n -o "$(dirname "$gcda")" "$gcda" 2>/dev/null
  done |
  awk -v root="$PWD/" '
    /^File / {
      f = substr($0, 7, length($0) - 7)  # strip File '\''...'\'' quoting
      sub(root, "", f)                   # absolute -> repo-relative
      next
    }
    /^Lines executed:/ {
      if (f !~ /^(src|tools|bench|examples)\//) { f = ""; next }
      split($0, a, /[:% ]+/)   # a[3]=percent, a[5]=line count
      pct = a[3]; n = a[5]
      if (n > best_n[f]) { best_n[f] = n; best_hit[f] = int(pct * n / 100 + 0.5) }
      f = ""
    }
    END {
      for (f in best_n) {
        d = f; sub(/\/[^\/]*$/, "", d)
        dir_n[d] += best_n[f]; dir_hit[d] += best_hit[f]
      }
      for (d in dir_n) printf "%s %d %d\n", d, dir_n[d], dir_hit[d]
    }' |
  sort |
  awk 'BEGIN { printf "  %-20s %8s %8s %7s\n", "directory", "lines", "hit", "%" }
       {
         # parens matter: a bare  a > b ? x : y  in printf args is parsed as
         # output redirection by POSIX awks
         printf "  %-20s %8d %8d %6.1f%%\n", $1, $2, $3, ($2 > 0 ? 100.0 * $3 / $2 : 0.0)
         tn += $2; th += $3
       }
       END {
         printf "  %-20s %8d %8d %6.1f%%\n", "TOTAL", tn, th,
                (tn > 0 ? 100.0 * th / tn : 0.0)
       }'

echo
echo "coverage.sh: done (objects in $build_dir)"
