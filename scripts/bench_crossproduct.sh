#!/usr/bin/env bash
# Scheduler x CC cross-product grid: builds Release (bench-speed preset) and
# refreshes BENCH_crossproduct.json at the repo root so PRs can compare
# per-(scheduler, cc, ratio) completion times and Jain fairness cells
# against the committed baseline.
#
#   scripts/bench_crossproduct.sh                       # write/update BENCH_crossproduct.json
#   MPS_BENCH_SCALE=paper scripts/bench_crossproduct.sh # full-scale grid
set -euo pipefail

cd "$(dirname "$0")/.."

if cmake --list-presets >/dev/null 2>&1; then
  cmake --preset bench-speed >/dev/null
else
  # CMake without preset support (< 3.21): equivalent manual configure.
  cmake -S . -B build-release -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
cmake --build build-release -j "$(nproc)" --target bench_crossproduct
./build-release/bench/bench_crossproduct BENCH_crossproduct.json
echo "bench_crossproduct.sh: BENCH_crossproduct.json updated"
