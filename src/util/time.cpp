#include "util/time.h"

#include <cstdio>

namespace mps {

std::string Duration::str() const {
  char buf[64];
  if (is_infinite()) return "inf";
  if (ns_ >= 1'000'000'000 || ns_ <= -1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds());
  } else if (ns_ >= 1'000'000 || ns_ <= -1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_millis());
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string TimePoint::str() const {
  char buf[64];
  if (is_never()) return "never";
  std::snprintf(buf, sizeof(buf), "t=%.6fs", to_seconds());
  return buf;
}

}  // namespace mps
