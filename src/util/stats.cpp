#include "util/stats.h"

#include <cassert>

namespace mps {

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
}

double Samples::min() const {
  if (data_.empty()) return 0.0;
  ensure_sorted();
  return data_.front();
}

double Samples::max() const {
  if (data_.empty()) return 0.0;
  ensure_sorted();
  return data_.back();
}

double Samples::quantile(double q) const {
  if (data_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(data_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, data_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data_[lo] * (1.0 - frac) + data_[hi] * frac;
}

double Samples::cdf_at(double x) const {
  if (data_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(data_.begin(), data_.end(), x);
  return static_cast<double>(it - data_.begin()) / static_cast<double>(data_.size());
}

std::vector<Samples::Point> Samples::cdf_points() const {
  std::vector<Point> out;
  if (data_.empty()) return out;
  ensure_sorted();
  const double n = static_cast<double>(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    // Emit only the last index of each run of equal values.
    if (i + 1 < data_.size() && data_[i + 1] == data_[i]) continue;
    out.push_back({data_[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

std::vector<Samples::Point> Samples::ccdf_points() const {
  auto pts = cdf_points();
  for (auto& p : pts) p.y = 1.0 - p.y;
  return pts;
}

}  // namespace mps
