// Statistics helpers: running mean/variance, windowed standard deviation
// (used by ECF's delta term), sample collections with quantile/CDF/CCDF
// views.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mps {

// Welford's online mean/variance.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Mean / standard deviation over the most recent `capacity` samples.
// ECF uses this for sigma_f / sigma_s (RTT variability margin).
class WindowedStats {
 public:
  explicit WindowedStats(std::size_t capacity = 16) : buf_(capacity) {}

  void add(double x) {
    if (buf_.empty()) return;
    if (size_ == buf_.size()) {
      sum_ -= buf_[head_];
      sumsq_ -= buf_[head_] * buf_[head_];
    } else {
      ++size_;
    }
    buf_[head_] = x;
    head_ = (head_ + 1) % buf_.size();
    sum_ += x;
    sumsq_ += x * x;
  }

  std::size_t count() const { return size_; }
  bool empty() const { return size_ == 0; }

  double mean() const { return size_ ? sum_ / static_cast<double>(size_) : 0.0; }

  double stddev() const {
    if (size_ < 2) return 0.0;
    const double n = static_cast<double>(size_);
    const double var = (sumsq_ - sum_ * sum_ / n) / (n - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  void reset() {
    size_ = 0;
    head_ = 0;
    sum_ = 0.0;
    sumsq_ = 0.0;
  }

 private:
  std::vector<double> buf_;
  std::size_t size_ = 0;
  std::size_t head_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
};

// A bag of samples with quantile / CDF / CCDF views. Sorting is deferred and
// cached; adding a sample invalidates the cache.
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double mean() const {
    if (data_.empty()) return 0.0;
    double s = 0.0;
    for (double x : data_) s += x;
    return s / static_cast<double>(data_.size());
  }

  double stddev() const {
    if (data_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double x : data_) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(data_.size() - 1));
  }

  double min() const;
  double max() const;

  // Quantile q in [0, 1], linear interpolation between order statistics.
  double quantile(double q) const;

  // Fraction of samples <= x.
  double cdf_at(double x) const;
  // Fraction of samples > x.
  double ccdf_at(double x) const { return 1.0 - cdf_at(x); }

  struct Point {
    double x;
    double y;
  };
  // Staircase CDF points (one per distinct value), suitable for plotting.
  std::vector<Point> cdf_points() const;
  // CCDF points: y = P(X > x).
  std::vector<Point> ccdf_points() const;

  const std::vector<double>& raw() const { return data_; }
  void clear() {
    data_.clear();
    sorted_ = false;
  }

  void merge(const Samples& other) {
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    sorted_ = false;
  }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
};

}  // namespace mps
