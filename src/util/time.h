// Strong types for simulated time.
//
// All simulation time is integer nanoseconds, which keeps event ordering
// exact and runs bit-reproducible across platforms. `Duration` is a length
// of time, `TimePoint` an absolute instant since simulation start.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace mps {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t u) { return Duration{u * 1000}; }
  static constexpr Duration millis(std::int64_t m) { return Duration{m * 1'000'000}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  // Fractional constructor for rate computations; rounds to nearest ns.
  static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration infinite() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_infinite() const { return ns_ == infinite().ns_; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration::from_seconds(a.to_seconds() * k);
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns_ / k}; }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  std::string str() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint origin() { return TimePoint{}; }
  static constexpr TimePoint from_ns(std::int64_t ns) { return TimePoint{ns}; }
  static constexpr TimePoint never() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr bool is_never() const { return ns_ == never().ns_; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint{t.ns_ + d.ns()}; }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint{t.ns_ - d.ns()}; }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.ns(); return *this; }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  std::string str() const;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace mps
