// Minimal leveled logging to stderr.
//
// Simulation hot paths never log unconditionally; use MPS_VLOG which
// evaluates its arguments only when verbose logging is enabled.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace mps {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace log_internal {
LogLevel& threshold();
}  // namespace log_internal

inline void set_log_level(LogLevel level) { log_internal::threshold() = level; }
inline bool log_enabled(LogLevel level) { return level >= log_internal::threshold(); }

void log_write(LogLevel level, const char* file, int line, const std::string& msg);

template <typename... Args>
std::string log_format(const char* fmt, Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return fmt;
  } else {
    const int needed = std::snprintf(nullptr, 0, fmt, std::forward<Args>(args)...);
    std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
    if (needed > 0) std::snprintf(out.data(), out.size() + 1, fmt, std::forward<Args>(args)...);
    return out;
  }
}

}  // namespace mps

#define MPS_LOG(level, ...)                                                       \
  do {                                                                            \
    if (::mps::log_enabled(level)) {                                              \
      ::mps::log_write(level, __FILE__, __LINE__, ::mps::log_format(__VA_ARGS__)); \
    }                                                                             \
  } while (0)

#define MPS_DEBUG(...) MPS_LOG(::mps::LogLevel::kDebug, __VA_ARGS__)
#define MPS_INFO(...) MPS_LOG(::mps::LogLevel::kInfo, __VA_ARGS__)
#define MPS_WARN(...) MPS_LOG(::mps::LogLevel::kWarn, __VA_ARGS__)
#define MPS_ERROR(...) MPS_LOG(::mps::LogLevel::kError, __VA_ARGS__)
