// Contiguous replacements for the node-based containers on the per-packet
// hot paths.
//
// std::map and std::deque put every element (or small chunk) behind its own
// heap node: at 100k flows the sender scoreboards and reorder buffers alone
// were millions of 48-byte map nodes, and every insert/erase was an
// allocation plus pointer chasing. The protocol state they hold has far more
// structure than a general ordered map:
//
//  - A sender's inflight scoreboard is a *dense* sequence range
//    [snd_una, next_seq): segments enter only at the top (next_seq++) and
//    leave only from the bottom (cumulative ack). -> SeqRing.
//  - A subflow receiver's out-of-order buffer holds *sparse* sequence
//    numbers inside the bounded window (rcv_next, rcv_high). -> SeqWindow.
//  - The meta reorder buffer maps sparse byte offsets to held segments,
//    drained from the bottom, inserted mostly near the top. -> FlatSeqMap.
//  - Link queues and subflow staging queues are plain FIFOs. -> RingDeque.
//
// All four store elements in a single contiguous buffer (power-of-two sized,
// grown by doubling) so the steady state does zero allocation and iteration
// is a linear scan.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mps {

// Fixed-capacity-amortized FIFO: push_back / front / pop_front over one
// circular buffer. Replaces std::deque for packet and staging queues.
template <typename T>
class RingDeque {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  void push_back(T v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = std::move(v);
    ++count_;
  }

  T& front() {
    assert(count_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    assert(count_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    assert(count_ > 0);
    buf_[head_] = T{};  // release payload resources eagerly
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  // Element i positions from the front (0 == front()).
  const T& at(std::size_t i) const {
    assert(i < count_);
    return buf_[(head_ + i) & mask_];
  }

  void clear() {
    buf_.clear();
    buf_.shrink_to_fit();
    head_ = count_ = 0;
    mask_ = ~std::size_t{0};
  }

 private:
  void grow() {
    // First allocation is deliberately tiny: at 100k flows the per-subflow
    // staging queues dominated the "other" memory tag, and most queues never
    // hold more than a couple of entries (BENCH_scale.json, ROADMAP item 1).
    const std::size_t new_cap = buf_.empty() ? 2 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) next[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = ~std::size_t{0};  // buf_.size() - 1 once allocated
};

// Dense map over a contiguous key range [lo, hi): every key in the range is
// present. push_back appends at hi, pop_front removes lo, and lookup is one
// masked index. This is exactly the shape of a TCP sender scoreboard.
template <typename T>
class SeqRing {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::uint64_t lo() const { return lo_; }
  std::uint64_t hi() const { return lo_ + count_; }

  // Appends the element for key hi().
  void push_back(T v) {
    if (count_ == buf_.size()) grow();
    buf_[(lo_ + count_) & mask_] = std::move(v);
    ++count_;
  }

  T& front() {
    assert(count_ > 0);
    return buf_[lo_ & mask_];
  }
  const T& front() const {
    assert(count_ > 0);
    return buf_[lo_ & mask_];
  }

  void pop_front() {
    assert(count_ > 0);
    buf_[lo_ & mask_] = T{};
    ++lo_;
    --count_;
  }

  T& operator[](std::uint64_t seq) {
    assert(seq >= lo_ && seq < hi());
    return buf_[seq & mask_];
  }
  const T& operator[](std::uint64_t seq) const {
    assert(seq >= lo_ && seq < hi());
    return buf_[seq & mask_];
  }

  // Resets to an empty range based at `lo` (fresh connection state).
  void reset(std::uint64_t lo) {
    buf_.clear();
    buf_.shrink_to_fit();
    lo_ = lo;
    count_ = 0;
    mask_ = ~std::uint64_t{0};
  }

 private:
  void grow() {
    // Same small-first policy as RingDeque::grow — idle flows keep a handful
    // of in-flight segments, so starting at 8 wasted most of the buffer.
    const std::size_t new_cap = buf_.empty() ? 2 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    const std::uint64_t new_mask = new_cap - 1;
    for (std::uint64_t s = lo_; s != lo_ + count_; ++s) next[s & new_mask] = std::move(buf_[s & mask_]);
    buf_ = std::move(next);
    mask_ = new_mask;
  }

  std::vector<T> buf_;
  std::uint64_t lo_ = 0;
  std::uint64_t mask_ = ~std::uint64_t{0};  // buf_.size() - 1 once allocated
  std::size_t count_ = 0;
};

// Sparse presence map over a bounded sliding key window: the live keys'
// span (max - min + 1) must fit the buffer, which grows by doubling. Lookup
// and insert are one masked index; ordered traversal scans the span, which
// for an out-of-order buffer is bounded by the flight size.
template <typename T>
class SeqWindow {
 public:
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  // Lowest / highest live key; kNone when empty.
  std::uint64_t min_key() const { return count_ == 0 ? kNone : min_; }
  std::uint64_t max_key() const { return count_ == 0 ? kNone : max_; }

  bool contains(std::uint64_t key) const {
    return count_ != 0 && key >= min_ && key <= max_ && present_[key & mask_];
  }

  T* find(std::uint64_t key) {
    return contains(key) ? &vals_[key & mask_] : nullptr;
  }
  const T* find(std::uint64_t key) const {
    return contains(key) ? &vals_[key & mask_] : nullptr;
  }

  // Inserts without overwriting; returns false when the key is present.
  bool insert(std::uint64_t key, T v) {
    if (contains(key)) return false;
    const std::uint64_t new_min = count_ == 0 ? key : std::min(min_, key);
    const std::uint64_t new_max = count_ == 0 ? key : std::max(max_, key);
    if (new_max - new_min + 1 > vals_.size()) grow(new_min, new_max);
    present_[key & mask_] = 1;
    vals_[key & mask_] = std::move(v);
    min_ = new_min;
    max_ = new_max;
    ++count_;
    return true;
  }

  // Erases a present key.
  void erase(std::uint64_t key) {
    assert(contains(key));
    present_[key & mask_] = 0;
    vals_[key & mask_] = T{};
    --count_;
    if (count_ == 0) return;
    // Only the bound that moved needs a rescan; drains erase the min, so
    // this is an amortized forward walk over the window.
    if (key == min_) {
      while (!present_[min_ & mask_]) ++min_;
    } else if (key == max_) {
      while (!present_[max_ & mask_]) --max_;
    }
  }

  // Lowest live key >= key; kNone when there is none.
  std::uint64_t first_at_or_after(std::uint64_t key) const {
    if (count_ == 0 || key > max_) return kNone;
    std::uint64_t k = std::max(key, min_);
    while (!present_[k & mask_]) ++k;
    return k;
  }

 private:
  void grow(std::uint64_t new_min, std::uint64_t new_max) {
    std::size_t new_cap = vals_.empty() ? 8 : vals_.size();
    while (new_max - new_min + 1 > new_cap) new_cap *= 2;
    std::vector<T> vals(new_cap);
    std::vector<std::uint8_t> present(new_cap, 0);
    const std::uint64_t new_mask = new_cap - 1;
    if (count_ != 0) {
      for (std::uint64_t k = min_; k <= max_; ++k) {
        if (!present_[k & mask_]) continue;
        present[k & new_mask] = 1;
        vals[k & new_mask] = std::move(vals_[k & mask_]);
      }
    }
    vals_ = std::move(vals);
    present_ = std::move(present);
    mask_ = new_mask;
  }

  std::vector<T> vals_;
  std::vector<std::uint8_t> present_;
  std::uint64_t mask_ = ~std::uint64_t{0};  // vals_.size() - 1 once allocated
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::size_t count_ = 0;
};

// Sorted flat map over sparse uint64 keys: one contiguous array of entries
// ordered by key, with an amortized-O(1) pop_front (a head offset, compacted
// periodically) because reorder buffers drain strictly from the bottom.
// Inserts shift the tail, but arrivals are mostly near the top, so the
// common shift is short.
template <typename V>
class FlatSeqMap {
 public:
  struct Entry {
    std::uint64_t key;
    V value;
  };

  bool empty() const { return head_ == entries_.size(); }
  std::size_t size() const { return entries_.size() - head_; }

  // Entry i positions above the current front (i in [0, size())).
  const Entry& at(std::size_t i) const {
    assert(head_ + i < entries_.size());
    return entries_[head_ + i];
  }

  std::uint64_t front_key() const {
    assert(!empty());
    return entries_[head_].key;
  }
  V& front_value() {
    assert(!empty());
    return entries_[head_].value;
  }

  void pop_front() {
    assert(!empty());
    ++head_;
    if (head_ == entries_.size()) {
      entries_.clear();
      head_ = 0;
    } else if (head_ >= 32 && head_ * 2 >= entries_.size()) {
      entries_.erase(entries_.begin(), entries_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  // Inserts key -> value if absent; returns (value slot, inserted). The
  // returned pointer is invalidated by the next mutation.
  std::pair<V*, bool> try_emplace(std::uint64_t key, V value) {
    auto it = std::lower_bound(
        entries_.begin() + static_cast<std::ptrdiff_t>(head_), entries_.end(), key,
        [](const Entry& e, std::uint64_t k) { return e.key < k; });
    if (it != entries_.end() && it->key == key) return {&it->value, false};
    it = entries_.insert(it, Entry{key, std::move(value)});
    return {&it->value, true};
  }

 private:
  std::vector<Entry> entries_;
  std::size_t head_ = 0;
};

}  // namespace mps
