#include "util/log.h"

namespace mps {
namespace log_internal {

LogLevel& threshold() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

}  // namespace log_internal

void log_write(LogLevel level, const char* file, int line, const std::string& msg) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const char* name = kNames[static_cast<int>(level)];
  // Strip directories from the file path for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::fprintf(stderr, "[%s] %s:%d %s\n", name, base, line, msg.c_str());
}

}  // namespace mps
