// Deterministic random number generation (xoshiro256++).
//
// Every stochastic element of a scenario draws from a seeded Rng owned by
// that scenario, so identical seeds give bit-identical runs. std::mt19937 is
// avoided because distribution implementations differ across standard
// libraries; all distributions here are implemented explicitly.
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>

namespace mps {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to fill the state from a single word.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    have_gauss_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless method, simplified (bias negligible for
    // simulation n << 2^64).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  bool bernoulli(double p) { return uniform() < p; }

  double exponential(double mean) {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return -mean * std::log(u);
  }

  double normal(double mean = 0.0, double stddev = 1.0) {
    // Box-Muller with caching.
    if (have_gauss_) {
      have_gauss_ = false;
      return mean + stddev * gauss_;
    }
    double u1;
    do { u1 = uniform(); } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    gauss_ = r * std::sin(2.0 * std::numbers::pi * u2);
    have_gauss_ = true;
    return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
  }

  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  // Pareto with scale xm and shape alpha.
  double pareto(double xm, double alpha) {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  // Derive an independent stream (e.g. one per subsystem) from this one.
  Rng fork() { return Rng{next_u64() ^ 0xd1b54a32d192ed03ULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace mps
