// Strong type for link / transfer rates.
#pragma once

#include <cstdint>
#include <compare>

#include "util/time.h"

namespace mps {

class Rate {
 public:
  constexpr Rate() = default;

  static constexpr Rate bits_per_sec(double bps) { return Rate{bps}; }
  static constexpr Rate kbps(double k) { return Rate{k * 1e3}; }
  static constexpr Rate mbps(double m) { return Rate{m * 1e6}; }
  static constexpr Rate gbps(double g) { return Rate{g * 1e9}; }
  static constexpr Rate zero() { return Rate{0.0}; }

  constexpr double bps() const { return bps_; }
  constexpr double to_mbps() const { return bps_ * 1e-6; }
  constexpr bool is_zero() const { return bps_ <= 0.0; }

  // Serialization time for `bytes` at this rate.
  constexpr Duration transmit_time(std::int64_t bytes) const {
    if (bps_ <= 0.0) return Duration::infinite();
    return Duration::from_seconds(static_cast<double>(bytes) * 8.0 / bps_);
  }

  // Bytes deliverable over `d` at this rate.
  constexpr double bytes_over(Duration d) const { return bps_ * d.to_seconds() / 8.0; }

  friend constexpr Rate operator+(Rate a, Rate b) { return Rate{a.bps_ + b.bps_}; }
  friend constexpr Rate operator*(Rate a, double k) { return Rate{a.bps_ * k}; }
  friend constexpr auto operator<=>(Rate, Rate) = default;

 private:
  constexpr explicit Rate(double bps) : bps_(bps) {}
  double bps_ = 0.0;
};

// Rate measured as bytes delivered over an interval.
constexpr Rate rate_of(std::int64_t bytes, Duration d) {
  if (d <= Duration::zero()) return Rate::zero();
  return Rate::bits_per_sec(static_cast<double>(bytes) * 8.0 / d.to_seconds());
}

}  // namespace mps
