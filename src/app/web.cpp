#include "app/web.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mps {

std::vector<std::uint64_t> make_page_objects(Rng& rng, const WebPageConfig& config) {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(static_cast<std::size_t>(config.object_count));
  double sum = 0.0;
  for (int i = 0; i < config.object_count; ++i) {
    const double raw = rng.lognormal(config.lognormal_mu, config.lognormal_sigma);
    const double clamped = std::clamp(raw, static_cast<double>(config.min_object_bytes),
                                      static_cast<double>(config.max_object_bytes));
    sizes.push_back(static_cast<std::uint64_t>(clamped));
    sum += clamped;
  }
  // Rescale to the calibrated page weight, respecting the floor.
  const double scale = static_cast<double>(config.total_bytes) / sum;
  for (auto& s : sizes) {
    s = std::max<std::uint64_t>(config.min_object_bytes,
                                static_cast<std::uint64_t>(static_cast<double>(s) * scale));
  }
  return sizes;
}

WebBrowser::WebBrowser(Simulator& sim, WebPageConfig config,
                       std::vector<std::uint64_t> objects, ConnectionFactory factory)
    : sim_(sim), config_(config), objects_(std::move(objects)), factory_(std::move(factory)) {
  slots_.resize(static_cast<std::size_t>(config_.parallel_connections));
}

void WebBrowser::start() {
  page_start_ = sim_.now();
  for (std::size_t i = 0; i < slots_.size(); ++i) assign_next(i);
}

void WebBrowser::ensure_connection(Slot& slot) {
  const bool expired = !slot.last_activity.is_never() &&
                       sim_.now() - slot.last_activity > config_.keepalive;
  if (slot.conn != nullptr && !expired) return;
  retire_connection(slot);
  slot.conn = factory_();
  const Duration request_delay = slot.conn->subflows()[0]->path().rtt_base() / 2;
  slot.http = std::make_unique<HttpExchange>(sim_, *slot.conn, request_delay);
}

void WebBrowser::retire_connection(Slot& slot) {
  if (slot.conn == nullptr) return;
  ooo_delays_.merge(slot.conn->ooo_delay());
  for (const Subflow* sf : slot.conn->subflows()) {
    retired_iw_resets_ += sf->stats().iw_resets;
  }
  slot.http.reset();
  slot.conn.reset();
}

void WebBrowser::assign_next(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  if (next_object_ >= objects_.size()) {
    slot.busy = false;
    if (outstanding_ == 0 && !finished_) {
      finished_ = true;
      page_end_ = sim_.now();
      // Fold in metrics from connections still open.
      for (auto& s : slots_) retire_connection(s);
      if (on_finished) on_finished();
    }
    return;
  }

  ensure_connection(slot);
  const std::uint64_t bytes = objects_[next_object_++];
  slot.busy = true;
  ++outstanding_;
  slot.http->get(bytes, [this, slot_index](const ObjectResult& r) {
    Slot& s = slots_[slot_index];
    s.last_activity = sim_.now();
    object_times_.add((r.completed - r.requested).to_seconds());
    --outstanding_;
    assign_next(slot_index);
  });
}

void WebBrowser::restore_from(const WebBrowser& src,
                              const std::function<void(std::uint32_t)>& set_next_conn_id) {
  next_object_ = src.next_object_;
  outstanding_ = src.outstanding_;
  finished_ = src.finished_;
  page_start_ = src.page_start_;
  page_end_ = src.page_end_;
  object_times_ = src.object_times_;
  ooo_delays_ = src.ooo_delays_;
  retired_iw_resets_ = src.retired_iw_resets_;
  assert(slots_.size() == src.slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& dst = slots_[i];
    const Slot& s = src.slots_[i];
    dst.last_activity = s.last_activity;
    dst.busy = s.busy;
    if (s.conn == nullptr) continue;
    set_next_conn_id(s.conn->config().conn_id);
    dst.conn = factory_();
    const Duration request_delay = dst.conn->subflows()[0]->path().rtt_base() / 2;
    dst.http = std::make_unique<HttpExchange>(sim_, *dst.conn, request_delay);
    dst.conn->restore_from(*s.conn);
    dst.http->restore_from(*s.http);
    for (std::size_t j = 0; j < dst.http->outstanding(); ++j) {
      dst.http->set_outstanding_done(j, [this, i](const ObjectResult& r) {
        Slot& sl = slots_[i];
        sl.last_activity = sim_.now();
        object_times_.add((r.completed - r.requested).to_seconds());
        --outstanding_;
        assign_next(i);
      });
    }
  }
}

std::uint64_t WebBrowser::iw_resets() const {
  std::uint64_t total = retired_iw_resets_;
  for (const auto& slot : slots_) {
    if (slot.conn == nullptr) continue;
    for (const Subflow* sf : slot.conn->subflows()) total += sf->stats().iw_resets;
  }
  return total;
}

}  // namespace mps
