// HTTP-style object transfer over one MPTCP connection.
//
// Mirrors the paper's Apache + persistent-connection setup: the client
// issues GETs (modelled as a one-way control message on the primary path;
// the upstream direction is never the bottleneck in the testbed), the server
// streams the response through the connection-level send buffer, and
// responses on one connection are serialized FIFO as in HTTP/1.1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mptcp/connection.h"
#include "sim/simulator.h"
#include "util/ring.h"

namespace mps {

struct ObjectResult {
  std::uint64_t bytes = 0;
  TimePoint requested;   // client issued the GET
  TimePoint started;     // server began sending
  TimePoint completed;   // last byte delivered in order to the client app
  // Wire-arrival time of the last packet per subflow during this object
  // (paper Fig. 5's "time difference between last packets"); never() when a
  // subflow carried nothing.
  TimePoint last_arrival_wifi;
  TimePoint last_arrival_lte;
};

class HttpExchange {
 public:
  using DoneFn = std::function<void(const ObjectResult&)>;

  // `request_delay`: one-way latency of the GET (primary path's base
  // one-way delay by default; pass explicitly when known).
  HttpExchange(Simulator& sim, Connection& conn, Duration request_delay);
  ~HttpExchange();

  // Issues a GET for an object of `bytes`. Responses are served FIFO;
  // callers may queue several (browser behaviour differs: see WebBrowser,
  // which serializes per connection).
  void get(std::uint64_t bytes, DoneFn done);

  std::size_t outstanding() const { return objects_.size() - head_; }
  Connection& connection() { return conn_; }

  // Completion time of everything delivered so far.
  std::uint64_t total_delivered() const { return delivered_total_; }

  // --- snapshot support (exp/snapshot.h) ------------------------------------
  // Copies the object FIFO and in-flight GET events from `src` (an exchange
  // over the fork's twin connection) and adopts the request events by
  // EventId. Completion callbacks are deliberately left empty: they capture
  // the source's owners, so each fork owner re-installs its own with
  // set_outstanding_done right after this.
  void restore_from(const HttpExchange& src);
  // Re-installs the completion callback of outstanding object `i` (0 = the
  // object currently being served / next to complete).
  void set_outstanding_done(std::size_t i, DoneFn done) {
    objects_[head_ + i].done = std::move(done);
  }

 private:
  struct PendingObject {
    std::uint64_t bytes;
    std::uint64_t queued_at_server = 0;  // bytes handed to conn.send()
    std::uint64_t delivered = 0;
    bool serving = false;
    ObjectResult result;
    DoneFn done;
  };

  void server_pump();
  void on_request_arrival();
  void on_delivered(std::uint64_t bytes, TimePoint when);
  void on_wire(std::uint32_t subflow_id, TimePoint when);
  void pop_front_object();

  Simulator& sim_;
  Connection& conn_;
  Duration request_delay_;
  // FIFO of pending objects as vector + head index: the common single-object
  // download costs one small allocation, where a std::deque would eagerly
  // allocate a 512-byte chunk per connection (measured as the largest
  // per-flow heap line at 100k flows). Completed prefix is compacted away
  // once it dominates the vector.
  std::vector<PendingObject> objects_;
  std::size_t head_ = 0;  // objects_[head_..) are outstanding
  std::uint64_t delivered_total_ = 0;
  // In-flight GET control messages, in issue order (constant delay => FIFO
  // firing). Tracked so the destructor can cancel them — the closures
  // capture `this`, and an exchange torn down under churn used to leave
  // them dangling — and so snapshot forks can rebind them.
  RingDeque<EventId> request_ids_;
  // Liveness sentinel: a completion callback may destroy this exchange
  // (WebBrowser retires the connection from inside `done`), so on_delivered
  // watches a weak_ptr to it and stops touching members once expired.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mps
