// DASH adaptive-bitrate video streaming client/server model.
//
// Reproduces the paper's workload: the six-step Youtube-style bitrate ladder
// (paper Table 1), 5-second chunks, a playback buffer with initial
// buffering, ON-OFF steady state, and rebuffering (paper Fig. 1), and the
// buffer-based ABR of Huang et al. [12] that the paper's client uses (a
// throughput/rate-based ABR is also provided for ablations).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "app/http.h"
#include "sim/simulator.h"

namespace mps {

enum class AbrKind { kBufferBased, kRateBased };

struct DashConfig {
  // Paper Table 1: bitrate (Mbps) per resolution 144p..1080p.
  std::vector<double> ladder_mbps = {0.26, 0.64, 1.00, 1.60, 4.14, 8.47};
  Duration chunk_duration = Duration::seconds(5);
  Duration video_duration = Duration::seconds(1200);  // paper: 20 min playout
  Duration max_buffer = Duration::seconds(30);
  Duration startup_threshold = Duration::seconds(5);
  AbrKind abr = AbrKind::kBufferBased;
  // Buffer-based ABR (BBA): map buffer in [reservoir, reservoir+cushion]
  // linearly onto the rate ladder.
  double reservoir_s = 5.0;
  double cushion_s = 20.0;
  // Rate-based ABR: harmonic mean of recent chunk throughputs, discounted.
  double rate_safety = 0.85;
  std::size_t rate_window = 5;
};

struct ChunkRecord {
  int index = 0;
  double bitrate_mbps = 0.0;
  std::uint64_t bytes = 0;
  TimePoint fetch_start;
  TimePoint fetch_end;
  double throughput_mbps = 0.0;
  // |last WiFi packet - last LTE packet| for this chunk; negative when a
  // subflow carried no packet (paper Fig. 5 uses both-path chunks).
  double last_packet_gap_s = -1.0;
};

class DashSession {
 public:
  DashSession(Simulator& sim, HttpExchange& http, DashConfig config);

  void start();
  bool finished() const { return finished_; }
  std::function<void()> on_finished;

  // --- snapshot support (exp/snapshot.h) ------------------------------------
  // Copies playback/ABR/fetch state from `src` (same config, over the fork's
  // twin exchange — which must already be restored) and re-installs this
  // session's chunk-completion callback on the exchange's outstanding
  // objects. Owners re-wire on_finished themselves.
  void restore_from(const DashSession& src);

  // --- metrics --------------------------------------------------------------
  const std::vector<ChunkRecord>& chunks() const { return chunks_; }
  double mean_bitrate_mbps() const;
  double mean_throughput_mbps() const;
  Duration rebuffer_time() const { return rebuffer_time_; }
  int rebuffer_events() const { return rebuffer_events_; }
  double buffer_level_s() const;

 private:
  int total_chunks() const;
  void fetch_next();
  void on_chunk_done(const ObjectResult& result);
  void update_playback();
  double pick_bitrate_mbps();

  Simulator& sim_;
  HttpExchange& http_;
  DashConfig config_;

  int next_chunk_ = 0;
  bool started_ = false;
  bool finished_ = false;
  bool playing_ = false;
  double buffer_s_ = 0.0;
  TimePoint last_playback_update_;
  Duration rebuffer_time_ = Duration::zero();
  int rebuffer_events_ = 0;
  Timer off_timer_;

  std::vector<ChunkRecord> chunks_;
  std::vector<double> recent_tput_mbps_;
};

}  // namespace mps
