#include "app/dash.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mps {

DashSession::DashSession(Simulator& sim, HttpExchange& http, DashConfig config)
    : sim_(sim), http_(http), config_(config), off_timer_(sim) {
  assert(!config_.ladder_mbps.empty());
  chunks_.reserve(static_cast<std::size_t>(total_chunks()));
}

int DashSession::total_chunks() const {
  return static_cast<int>(config_.video_duration / config_.chunk_duration);
}

void DashSession::start() {
  assert(!started_);
  started_ = true;
  last_playback_update_ = sim_.now();
  fetch_next();
}

void DashSession::update_playback() {
  const TimePoint now = sim_.now();
  const double elapsed = (now - last_playback_update_).to_seconds();
  last_playback_update_ = now;
  if (!playing_ || elapsed <= 0.0) return;
  if (buffer_s_ >= elapsed) {
    buffer_s_ -= elapsed;
  } else {
    // Buffer ran dry mid-interval: the remainder was a stall.
    const double stall = elapsed - buffer_s_;
    buffer_s_ = 0.0;
    playing_ = false;
    ++rebuffer_events_;
    rebuffer_time_ += Duration::from_seconds(stall);
  }
}

double DashSession::buffer_level_s() const {
  if (!playing_) return buffer_s_;
  const double elapsed = (sim_.now() - last_playback_update_).to_seconds();
  return std::max(0.0, buffer_s_ - elapsed);
}

double DashSession::pick_bitrate_mbps() {
  const auto& ladder = config_.ladder_mbps;
  if (config_.abr == AbrKind::kBufferBased) {
    // BBA (Huang et al., SIGCOMM'14): rate map over the buffer level.
    if (buffer_s_ <= config_.reservoir_s) return ladder.front();
    if (buffer_s_ >= config_.reservoir_s + config_.cushion_s) return ladder.back();
    // Linear map of the cushion onto ladder indices. (Mapping onto a rate
    // threshold instead creates a cliff at the top tier: an OFF period that
    // resumes epsilon below full cushion would never select it.)
    const double f = (buffer_s_ - config_.reservoir_s) / config_.cushion_s;
    const std::size_t idx = std::min(static_cast<std::size_t>(f * static_cast<double>(ladder.size())),
                                     ladder.size() - 1);
    return ladder[idx];
  }
  // Rate-based: discounted harmonic mean of recent chunk throughputs.
  if (recent_tput_mbps_.empty()) return ladder.front();
  double inv_sum = 0.0;
  for (double t : recent_tput_mbps_) inv_sum += 1.0 / std::max(t, 1e-6);
  const double est =
      config_.rate_safety * static_cast<double>(recent_tput_mbps_.size()) / inv_sum;
  double chosen = ladder.front();
  for (double rate : ladder) {
    if (rate <= est) chosen = rate;
  }
  return chosen;
}

void DashSession::fetch_next() {
  if (next_chunk_ >= total_chunks()) return;
  update_playback();

  ChunkRecord rec;
  rec.index = next_chunk_++;
  rec.bitrate_mbps = pick_bitrate_mbps();
  rec.bytes = static_cast<std::uint64_t>(rec.bitrate_mbps * 1e6 / 8.0 *
                                         config_.chunk_duration.to_seconds());
  rec.fetch_start = sim_.now();
  chunks_.push_back(rec);

  http_.get(rec.bytes, [this](const ObjectResult& r) { on_chunk_done(r); });
}

void DashSession::on_chunk_done(const ObjectResult& result) {
  update_playback();
  ChunkRecord& rec = chunks_.back();
  rec.fetch_end = result.completed;
  const double secs = std::max((result.completed - result.requested).to_seconds(), 1e-9);
  rec.throughput_mbps = static_cast<double>(rec.bytes) * 8.0 / secs / 1e6;
  if (!result.last_arrival_wifi.is_never() && !result.last_arrival_lte.is_never()) {
    rec.last_packet_gap_s =
        std::abs((result.last_arrival_wifi - result.last_arrival_lte).to_seconds());
  }

  recent_tput_mbps_.push_back(rec.throughput_mbps);
  if (recent_tput_mbps_.size() > config_.rate_window) {
    recent_tput_mbps_.erase(recent_tput_mbps_.begin());
  }

  buffer_s_ += config_.chunk_duration.to_seconds();
  if (!playing_ && buffer_s_ >= config_.startup_threshold.to_seconds()) {
    playing_ = true;
    last_playback_update_ = sim_.now();
  }

  if (next_chunk_ >= total_chunks()) {
    finished_ = true;
    if (on_finished) on_finished();
    return;
  }

  // ON-OFF pattern: pause while the buffer is (nearly) full, resume once one
  // chunk's worth has drained (paper Fig. 1).
  const double max_buf = config_.max_buffer.to_seconds();
  const double chunk_s = config_.chunk_duration.to_seconds();
  if (playing_ && buffer_s_ + chunk_s > max_buf) {
    const double wait = buffer_s_ + chunk_s - max_buf;
    off_timer_.schedule_after(Duration::from_seconds(wait), [this] { fetch_next(); });
  } else {
    fetch_next();
  }
}

void DashSession::restore_from(const DashSession& src) {
  next_chunk_ = src.next_chunk_;
  started_ = src.started_;
  finished_ = src.finished_;
  playing_ = src.playing_;
  buffer_s_ = src.buffer_s_;
  last_playback_update_ = src.last_playback_update_;
  rebuffer_time_ = src.rebuffer_time_;
  rebuffer_events_ = src.rebuffer_events_;
  chunks_ = src.chunks_;
  recent_tput_mbps_ = src.recent_tput_mbps_;
  off_timer_.clone_from(src.off_timer_, [this] { fetch_next(); });
  for (std::size_t i = 0; i < http_.outstanding(); ++i) {
    http_.set_outstanding_done(i, [this](const ObjectResult& r) { on_chunk_done(r); });
  }
}

double DashSession::mean_bitrate_mbps() const {
  if (chunks_.empty()) return 0.0;
  double sum = 0.0;
  int n = 0;
  for (const auto& c : chunks_) {
    if (c.fetch_end.ns() == 0) continue;  // never completed (run truncated)
    sum += c.bitrate_mbps;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

double DashSession::mean_throughput_mbps() const {
  if (chunks_.empty()) return 0.0;
  double sum = 0.0;
  int n = 0;
  for (const auto& c : chunks_) {
    if (c.fetch_end.ns() == 0) continue;
    sum += c.throughput_mbps;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace mps
