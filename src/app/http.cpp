#include "app/http.h"

#include <cassert>

namespace mps {

HttpExchange::HttpExchange(Simulator& sim, Connection& conn, Duration request_delay)
    : sim_(sim), conn_(conn), request_delay_(request_delay) {
  conn_.on_sendable = [this] { server_pump(); };
  conn_.on_deliver = [this](std::uint64_t bytes, TimePoint when) { on_delivered(bytes, when); };
  conn_.on_wire_arrival_hook = [this](std::uint32_t subflow_id, std::uint64_t, std::uint32_t,
                                      TimePoint when) { on_wire(subflow_id, when); };
}

HttpExchange::~HttpExchange() {
  conn_.on_sendable = nullptr;
  conn_.on_deliver = nullptr;
  conn_.on_wire_arrival_hook = nullptr;
  // Cancel in-flight GETs: their closures capture `this`, and an exchange
  // torn down mid-request (connection churn) must not leave them live.
  while (!request_ids_.empty()) {
    sim_.cancel(request_ids_.front());
    request_ids_.pop_front();
  }
}

void HttpExchange::get(std::uint64_t bytes, DoneFn done) {
  assert(bytes > 0);
  PendingObject obj;
  obj.bytes = bytes;
  obj.result.bytes = bytes;
  obj.result.requested = sim_.now();
  obj.result.last_arrival_wifi = TimePoint::never();
  obj.result.last_arrival_lte = TimePoint::never();
  obj.done = std::move(done);
  objects_.push_back(std::move(obj));

  // The GET reaches the server after the one-way control latency; `serving`
  // marks arrival. Objects are identified positionally: requests arrive in
  // issue order because the delay is constant.
  request_ids_.push_back(sim_.after(request_delay_, [this] { on_request_arrival(); }));
}

void HttpExchange::on_request_arrival() {
  if (!request_ids_.empty()) request_ids_.pop_front();
  for (std::size_t i = head_; i < objects_.size(); ++i) {
    if (!objects_[i].serving) {
      objects_[i].serving = true;
      break;
    }
  }
  server_pump();
}

void HttpExchange::restore_from(const HttpExchange& src) {
  objects_ = src.objects_;
  // Completion callbacks capture the source's owners; each fork owner
  // re-installs its own via set_outstanding_done.
  for (PendingObject& obj : objects_) obj.done = nullptr;
  head_ = src.head_;
  delivered_total_ = src.delivered_total_;
  request_ids_ = src.request_ids_;
  for (std::size_t i = 0; i < request_ids_.size(); ++i) {
    sim_.rebind(request_ids_.at(i), [this] { on_request_arrival(); });
  }
}

void HttpExchange::server_pump() {
  for (std::size_t i = head_; i < objects_.size(); ++i) {
    PendingObject& obj = objects_[i];
    if (!obj.serving) break;  // FIFO responses; GET not at server yet
    if (obj.queued_at_server < obj.bytes) {
      const std::uint64_t accepted = conn_.send(obj.bytes - obj.queued_at_server);
      if (obj.queued_at_server == 0 && accepted > 0) obj.result.started = sim_.now();
      obj.queued_at_server += accepted;
      if (obj.queued_at_server < obj.bytes) break;  // send buffer full
    }
  }
}

void HttpExchange::on_delivered(std::uint64_t bytes, TimePoint when) {
  const std::weak_ptr<bool> alive = alive_;
  delivered_total_ += bytes;
  while (bytes > 0 && head_ < objects_.size()) {
    PendingObject& obj = objects_[head_];
    const std::uint64_t want = obj.bytes - obj.delivered;
    const std::uint64_t take = std::min(bytes, want);
    obj.delivered += take;
    bytes -= take;
    if (obj.delivered < obj.bytes) break;
    obj.result.completed = when;
    // Pop before invoking the callback: it may issue the next GET.
    DoneFn done = std::move(obj.done);
    const ObjectResult result = obj.result;
    pop_front_object();
    if (done) done(result);
    // The callback may have destroyed this exchange (e.g. WebBrowser
    // retiring an expired keepalive connection); nothing left to do then.
    if (alive.expired()) return;
  }
  // Freed receive-side accounting may allow more server writes.
  server_pump();
}

void HttpExchange::pop_front_object() {
  objects_[head_] = PendingObject{};  // release the done callback eagerly
  ++head_;
  if (head_ == objects_.size()) {
    objects_.clear();
    head_ = 0;
  } else if (head_ >= 32 && head_ * 2 >= objects_.size()) {
    objects_.erase(objects_.begin(),
                   objects_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
}

void HttpExchange::on_wire(std::uint32_t subflow_id, TimePoint when) {
  if (head_ == objects_.size()) return;
  PendingObject& obj = objects_[head_];
  const auto& subflows = conn_.subflows();
  if (subflow_id >= subflows.size()) return;
  const std::string& path_name = subflows[subflow_id]->path().name();
  if (path_name.rfind("wifi", 0) == 0) {
    obj.result.last_arrival_wifi = when;
  } else {
    obj.result.last_arrival_lte = when;
  }
}

}  // namespace mps
