// Web-browsing workload (paper Section 5.5 / 6.3): a 107-object page
// downloaded over six parallel persistent MPTCP connections, as the Android
// browser against the paper's CNN-home-page copy.
//
// Object sizes are drawn once from a seeded heavy-tailed distribution
// calibrated to the 2014 CNN page (~2.4 MB total), so every scheduler
// downloads the identical page. Connections respect the server's 5 s
// keep-alive: an idle connection is torn down and a fresh one (new slow
// start, new subflow joins) opened for the next object assigned to it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "app/http.h"
#include "mptcp/connection.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mps {

struct WebPageConfig {
  int object_count = 107;
  std::uint64_t total_bytes = 2'400'000;
  std::uint64_t min_object_bytes = 400;
  std::uint64_t max_object_bytes = 500'000;
  double lognormal_mu = 9.2;   // median ~10 KB before scaling
  double lognormal_sigma = 1.4;
  int parallel_connections = 6;
  Duration keepalive = Duration::seconds(5);
};

// Deterministic page: `object_count` sizes, re-scaled to `total_bytes`.
std::vector<std::uint64_t> make_page_objects(Rng& rng, const WebPageConfig& config);

class WebBrowser {
 public:
  // The factory returns a fresh connection (unique conn_id, fresh subflows)
  // each call; the browser owns the returned connections.
  using ConnectionFactory = std::function<std::unique_ptr<Connection>()>;

  WebBrowser(Simulator& sim, WebPageConfig config, std::vector<std::uint64_t> objects,
             ConnectionFactory factory);

  void start();
  bool finished() const { return finished_; }
  std::function<void()> on_finished;

  // --- snapshot support (exp/snapshot.h) ------------------------------------
  // Rebuilds this browser's per-slot connections as twins of `src`'s live
  // slots — minting each through the factory under the source's conn_id via
  // `set_next_conn_id` (the owner passes World::set_next_conn_id) — then
  // restores connection/exchange state and re-installs the completion
  // callbacks. Owners re-wire on_finished themselves. Call after the world's
  // event queue has been cloned.
  void restore_from(const WebBrowser& src,
                    const std::function<void(std::uint32_t)>& set_next_conn_id);

  // --- metrics --------------------------------------------------------------
  // Per-object download completion times, seconds (paper Figs. 20/23a).
  const Samples& object_times() const { return object_times_; }
  // Out-of-order delays merged across all connections used (Figs. 21/23b).
  const Samples& ooo_delays() const { return ooo_delays_; }
  Duration page_load_time() const { return page_end_ - page_start_; }
  std::uint64_t iw_resets() const;

 private:
  struct Slot {
    std::unique_ptr<Connection> conn;
    std::unique_ptr<HttpExchange> http;
    TimePoint last_activity = TimePoint::never();
    bool busy = false;
  };

  void assign_next(std::size_t slot_index);
  void ensure_connection(Slot& slot);
  void retire_connection(Slot& slot);

  Simulator& sim_;
  WebPageConfig config_;
  std::vector<std::uint64_t> objects_;
  ConnectionFactory factory_;

  std::vector<Slot> slots_;
  std::size_t next_object_ = 0;
  int outstanding_ = 0;
  bool finished_ = false;
  TimePoint page_start_;
  TimePoint page_end_;

  Samples object_times_;
  Samples ooo_delays_;
  std::uint64_t retired_iw_resets_ = 0;
};

}  // namespace mps
