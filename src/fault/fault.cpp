#include "fault/fault.h"

namespace mps {

bool FaultConfig::any() const {
  return gilbert_elliott.enabled || !outages.empty() || flap.enabled || reorder.enabled;
}

Duration FaultModel::extra_delay(TimePoint, Rng&) { return Duration::zero(); }

bool GilbertElliottLoss::should_drop(TimePoint, Rng& rng) {
  // Advance the chain once per offered packet, then draw the per-state loss.
  if (bad_) {
    if (rng.bernoulli(config_.p_bad_good)) bad_ = false;
  } else {
    if (rng.bernoulli(config_.p_good_bad)) bad_ = true;
  }
  const double p = bad_ ? config_.loss_bad : config_.loss_good;
  return p > 0.0 && rng.bernoulli(p);
}

OutageSchedule::OutageSchedule(std::vector<OutageWindow> outages, FlapConfig flap)
    : outages_(std::move(outages)), flap_(flap) {}

bool OutageSchedule::down_at(TimePoint t) const {
  for (const OutageWindow& w : outages_) {
    const TimePoint start = TimePoint::origin() + w.start;
    if (t >= start && t < start + w.duration) return true;
  }
  if (flap_.enabled && flap_.period > Duration::zero()) {
    const Duration since = t - (TimePoint::origin() + flap_.phase);
    if (since >= Duration::zero()) {
      const Duration into_cycle = Duration::nanos(since.ns() % flap_.period.ns());
      if (into_cycle < flap_.down_time) return true;
    }
  }
  return false;
}

bool OutageSchedule::should_drop(TimePoint now, Rng&) { return down_at(now); }

Duration ReorderJitter::extra_delay(TimePoint, Rng& rng) {
  if (config_.prob <= 0.0 || !rng.bernoulli(config_.prob)) return Duration::zero();
  Duration extra = config_.delay;
  if (config_.jitter > Duration::zero()) {
    extra += Duration::nanos(static_cast<std::int64_t>(
        rng.uniform() * static_cast<double>(config_.jitter.ns())));
  }
  return extra;
}

CompositeFault::CompositeFault(std::vector<std::unique_ptr<FaultModel>> models)
    : models_(std::move(models)) {}

bool CompositeFault::should_drop(TimePoint now, Rng& rng) {
  for (auto& m : models_) {
    if (m->should_drop(now, rng)) return true;
  }
  return false;
}

Duration CompositeFault::extra_delay(TimePoint now, Rng& rng) {
  Duration total = Duration::zero();
  for (auto& m : models_) total += m->extra_delay(now, rng);
  return total;
}

std::unique_ptr<FaultModel> make_fault_model(const FaultConfig& config) {
  if (!config.any()) return nullptr;
  std::vector<std::unique_ptr<FaultModel>> models;
  if (!config.outages.empty() || config.flap.enabled) {
    models.push_back(std::make_unique<OutageSchedule>(config.outages, config.flap));
  }
  if (config.gilbert_elliott.enabled) {
    models.push_back(std::make_unique<GilbertElliottLoss>(config.gilbert_elliott));
  }
  if (config.reorder.enabled) {
    models.push_back(std::make_unique<ReorderJitter>(config.reorder));
  }
  if (models.size() == 1) return std::move(models.front());
  return std::make_unique<CompositeFault>(std::move(models));
}

}  // namespace mps
