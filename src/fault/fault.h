// Pluggable link impairment models, layered on Link's iid loss_rate.
//
// The paper's headline results come from lossy WiFi and in-the-wild LTE
// paths; plain iid loss cannot reproduce their burstiness. Three models:
//
//   * Gilbert-Elliott burst loss: a two-state Markov chain (good/bad)
//     advanced once per offered packet, with a per-state drop probability.
//     The classic parameterization for WiFi interference bursts.
//   * Scheduled outages and flaps: deterministic [start, start+duration)
//     windows (or a periodic down-time) during which every packet is
//     dropped. Models handover blackouts and AP roaming.
//   * Reordering via jitter: with some probability a packet gets extra
//     propagation delay (base + uniform jitter), letting later packets
//     overtake it. Models LTE HARQ retransmissions and link-layer ARQ.
//
// Determinism contract: a model draws from the owning Link's RNG stream
// (passed by reference per call), so a link with no faults configured draws
// nothing and clean-link runs stay byte-identical regardless of whether the
// fault subsystem is compiled in. Decisions are made per offered packet in
// arrival order, which is itself deterministic under a fixed seed.
#pragma once

#include <memory>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace mps {

// --- configuration (plain data, carried by LinkConfig/PathConfig) -----------

struct GilbertElliottConfig {
  bool enabled = false;
  double p_good_bad = 0.0;   // per-packet P(good -> bad)
  double p_bad_good = 0.25;  // per-packet P(bad -> good); mean burst = 1/p
  double loss_good = 0.0;    // drop probability while in the good state
  double loss_bad = 0.5;     // drop probability while in the bad state
};

// All packets offered during [start, start + duration) are dropped.
struct OutageWindow {
  Duration start;
  Duration duration;
};

// Periodic outage: starting at `phase`, the link is down for `down_time`
// out of every `period`.
struct FlapConfig {
  bool enabled = false;
  Duration period = Duration::seconds(10);
  Duration down_time = Duration::seconds(1);
  Duration phase = Duration::zero();
};

struct ReorderConfig {
  bool enabled = false;
  double prob = 0.0;                       // per-packet P(extra delay)
  Duration delay = Duration::millis(20);   // base extra propagation delay
  Duration jitter = Duration::millis(10);  // plus U[0, jitter)
};

struct FaultConfig {
  GilbertElliottConfig gilbert_elliott;
  std::vector<OutageWindow> outages;
  FlapConfig flap;
  ReorderConfig reorder;

  // True when any impairment is configured; Link only instantiates a model
  // (and hence only draws from its RNG) when this holds.
  bool any() const;
};

// --- runtime models ---------------------------------------------------------

// One impairment applied to a unidirectional link. Both hooks are consulted
// once per offered/delivered packet; `rng` is the owning link's stream.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  // Called once per packet offered to the link (before queueing). True
  // drops the packet.
  virtual bool should_drop(TimePoint now, Rng& rng) = 0;

  // Extra propagation delay for a packet leaving the serializer. Nonzero
  // values let later packets overtake (reordering at the receiver).
  virtual Duration extra_delay(TimePoint now, Rng& rng);

  virtual const char* name() const = 0;

  // Snapshot support: copies mutable model state from `src`, which must be a
  // model built from the same FaultConfig (same concrete type and layout).
  // Stateless models inherit the no-op.
  virtual void restore_from(const FaultModel& src) { (void)src; }
};

class GilbertElliottLoss final : public FaultModel {
 public:
  explicit GilbertElliottLoss(GilbertElliottConfig config) : config_(config) {}
  bool should_drop(TimePoint now, Rng& rng) override;
  const char* name() const override { return "gilbert_elliott"; }
  bool in_bad_state() const { return bad_; }
  void restore_from(const FaultModel& src) override {
    bad_ = static_cast<const GilbertElliottLoss&>(src).bad_;
  }

 private:
  GilbertElliottConfig config_;
  bool bad_ = false;
};

// Deterministic drop windows: explicit outages plus an optional flap. Draws
// no randomness.
class OutageSchedule final : public FaultModel {
 public:
  OutageSchedule(std::vector<OutageWindow> outages, FlapConfig flap);
  bool should_drop(TimePoint now, Rng& rng) override;
  const char* name() const override { return "outage"; }
  bool down_at(TimePoint t) const;

 private:
  std::vector<OutageWindow> outages_;
  FlapConfig flap_;
};

class ReorderJitter final : public FaultModel {
 public:
  explicit ReorderJitter(ReorderConfig config) : config_(config) {}
  bool should_drop(TimePoint, Rng&) override { return false; }
  Duration extra_delay(TimePoint now, Rng& rng) override;
  const char* name() const override { return "reorder"; }

 private:
  ReorderConfig config_;
};

// Applies sub-models in order: drop if any drops, extra delay is the sum.
// Evaluation short-circuits on the first drop, so a packet killed by an
// outage does not advance the Gilbert-Elliott chain — acceptable, since
// determinism is per-seed, not per-model.
class CompositeFault final : public FaultModel {
 public:
  explicit CompositeFault(std::vector<std::unique_ptr<FaultModel>> models);
  bool should_drop(TimePoint now, Rng& rng) override;
  Duration extra_delay(TimePoint now, Rng& rng) override;
  const char* name() const override { return "composite"; }
  void restore_from(const FaultModel& src) override {
    const auto& other = static_cast<const CompositeFault&>(src);
    for (std::size_t i = 0; i < models_.size(); ++i) {
      models_[i]->restore_from(*other.models_[i]);
    }
  }

 private:
  std::vector<std::unique_ptr<FaultModel>> models_;
};

// Builds the model stack for a config: outages/flap first (cheap, no RNG),
// then Gilbert-Elliott, then reordering. Returns nullptr when config.any()
// is false — the caller skips the fault path entirely.
std::unique_ptr<FaultModel> make_fault_model(const FaultConfig& config);

}  // namespace mps
