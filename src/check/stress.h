// Seeded stress cells: one cell = one fault profile x scheduler x seed,
// run as a two-path (wifi/lte) download with an InvariantChecker attached.
// tools/mps_stress sweeps a grid of cells in parallel; tests/stress_test.cpp
// runs a scaled-down grid under ctest. Both exit nonzero on any invariant
// violation or stalled transfer, so every bug the checker can see fails CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.h"

namespace mps {

struct StressCell {
  std::string profile = "clean";      // one of stress_profile_names()
  std::string scheduler = "default";  // sched/registry name
  std::string cc = "lia";             // tcp/cc_registry name
  std::uint64_t seed = 1;
  std::uint64_t bytes = 512 * 1024;   // object size for the download
  double cap_s = 120.0;               // sim-time budget; hitting it = stall
};

struct StressCellResult {
  bool completed = false;       // transfer finished before the time cap
  double completion_s = 0.0;    // valid when completed
  std::vector<std::string> violations;  // checker output + stall diagnoses
  std::uint64_t checks_run = 0;
  // Aggregate wire/recovery activity, to confirm a profile actually
  // exercised the loss paths (a profile that drops nothing tests nothing).
  std::uint64_t drops_random = 0;
  std::uint64_t drops_fault = 0;
  std::uint64_t reordered = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rto_events = 0;

  bool ok() const { return completed && violations.empty(); }
};

// Fault profiles the harness knows: "clean" (no impairment — must match the
// fault-free goldens), "iid" (plain random loss), "ge_wifi" (Gilbert-Elliott
// burst loss on the wifi path), "outage" (scheduled blackouts + flapping),
// "reorder" (jitter-induced reordering on both paths), "storm" (bursts +
// reordering + flap together), "handover" (path-manager subflow churn: both
// paths torn down and re-joined mid-transfer, drain and abandon modes, under
// light loss), "churn" (competing-traffic run with Poisson
// connection arrivals/departures and light iid loss, every flow watched by
// the checker until it is torn down), "crossproduct" (light Gilbert-Elliott
// bursts on wifi plus light iid loss on lte — gentle enough that every
// scheduler x congestion-controller pairing completes, but lossy enough to
// exercise each controller's loss response and the coupled-terms check).
const std::vector<std::string>& stress_profile_names();

// The two-path download spec a cell runs. Throws std::invalid_argument for
// an unknown profile name. Exposed separately so tests can inspect or edit
// the spec before running it.
ScenarioSpec stress_spec(const StressCell& cell);

// Builds the world from stress_spec(cell), attaches an InvariantChecker,
// drives one HTTP download to completion (or the time cap), and reports.
StressCellResult run_stress_cell(const StressCell& cell);

}  // namespace mps
