// InvariantChecker: protocol-level assertions for the MPTCP stack, evaluated
// continuously while a simulation runs.
//
// The checker subscribes to the flight-recorder event stream (obs/events.h):
// it installs itself as the recorder's event sink, forwards every event to
// the previously installed sink (tee), and re-validates the watched
// connections' state. Cheap structural checks run on every event; checks
// that are only meaningful between events (e.g. RTO-timer liveness, which is
// legitimately false halfway through ack processing) run "settled", via a
// coalesced Simulator::post() that executes after the current event's call
// stack unwinds. Harnesses that run with tracing compiled out can drive the
// same checks manually with check_now().
//
// Invariants (see DESIGN.md §9 for the rationale of each):
//   conservation    every meta byte in [rcv_data_next, next_data_seq) is
//                   covered by a sender copy (subflow inflight/staged) or the
//                   meta reorder buffer — bytes cannot vanish
//   exactly-once    delivered_bytes == rcv_data_next (each in-order byte is
//                   delivered to the application exactly once)
//   monotonicity    rcv_data_next / data_una / next_data_seq and per-subflow
//                   snd_una / sack_high never move backward;
//                   data_una <= rcv_data_next <= next_data_seq
//   meta-ooo        meta_ooo_bytes equals the sum of held payloads; the
//                   first held segment lies strictly above rcv_data_next
//   scoreboard      lost/sacked counters match a recount of the inflight
//                   map; lost and sacked are mutually exclusive; pipe() >= 0
//   cwnd-sanity     cwnd and ssthresh are finite, >= min_cwnd, and bounded
//   rto-liveness    (settled) the RTO timer is pending iff the subflow has
//                   data in flight; the RACK timer implies data in flight
//   rcv-order       per-subflow receiver holds out-of-order segments only
//                   strictly above its cumulative point
//   coupled-terms   the connection's cached cross-subflow CC aggregates
//                   (CoupledCcTerms) match a from-scratch recomputation —
//                   a mismatch means a cwnd/RTT/inter-loss/membership change
//                   was not invalidated and a coupled controller (LIA, OLIA,
//                   BALIA) read stale coupling state
//
// A violation is recorded (never thrown): the harness inspects ok() /
// violations() and fails the run, printing report().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mptcp/connection.h"
#include "obs/events.h"
#include "sim/simulator.h"

namespace mps {

class InvariantChecker final : public EventSink {
 public:
  struct Violation {
    TimePoint t;
    std::string invariant;  // short name from the table above
    std::string detail;     // human-readable state dump
  };

  // Installs the checker as `sim`'s recorder event sink (tee-ing to any sink
  // already installed). The simulator must have a recorder attached; the
  // checker must be destroyed before the recorder (it restores the previous
  // sink on destruction).
  explicit InvariantChecker(Simulator& sim);
  ~InvariantChecker() override;

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // Adds a connection to the watched set. Snapshot state for monotonicity
  // checks starts at the connection's current counters.
  void watch(Connection& conn);

  // Drops a connection from the watched set. Churn harnesses must call this
  // before destroying a watched connection — ConnWatch holds a raw pointer.
  void unwatch(Connection& conn);

  // Runs every check (including the settled-only ones) immediately.
  // `context` labels any violations found. Safe to call between run slices.
  void check_now(const char* context);

  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t checks_run() const { return checks_run_; }
  // One line per violation, truncated after `max_lines`.
  std::string report(std::size_t max_lines = 10) const;

  // EventSink: forwards to the previous sink, then validates.
  void on_event(TimePoint t, EventType type, std::int64_t conn, std::int64_t subflow,
                const EventField* fields, std::size_t n_fields) override;

 private:
  struct SubflowWatch {
    std::uint64_t last_snd_una = 0;
    std::uint64_t last_sack_high = 0;
  };
  struct ConnWatch {
    Connection* conn = nullptr;
    std::uint64_t last_rcv_data_next = 0;
    std::uint64_t last_data_una = 0;
    std::uint64_t last_next_data_seq = 0;
    std::vector<SubflowWatch> subflows;
  };

  void violation(const char* invariant, std::string detail);
  void check_all(const char* context, bool settled);
  void check_connection(ConnWatch& w, const char* context, bool settled);
  void check_conservation(const ConnWatch& w, const char* context);
  void schedule_settled_check();

  Simulator& sim_;
  FlightRecorder* recorder_ = nullptr;
  EventSink* next_ = nullptr;
  bool settled_post_pending_ = false;

  std::vector<ConnWatch> watched_;
  // Scratch buffers reused across checks — these run on every traced event,
  // so per-call vectors would dominate the ACK-path allocation profile.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> held_scratch_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges_scratch_;
  CoupledCcTerms terms_scratch_;  // fresh recomputation for coupled-terms
  std::vector<Violation> violations_;
  std::uint64_t checks_run_ = 0;
  static constexpr std::size_t kMaxViolations = 100;
};

}  // namespace mps
