#include "check/stress.h"

#include <algorithm>
#include <stdexcept>

#include "app/http.h"
#include "check/invariants.h"
#include "mptcp/path_manager.h"
#include "obs/recorder.h"
#include "scenario/world.h"
#include "sched/registry.h"
#include "traffic/engine.h"

namespace mps {

namespace {

FaultSpec ge_wifi_faults() {
  FaultSpec f;
  f.gilbert_elliott.enabled = true;
  f.gilbert_elliott.p_good_bad = 0.02;
  f.gilbert_elliott.p_bad_good = 0.3;
  f.gilbert_elliott.loss_good = 0.0;
  f.gilbert_elliott.loss_bad = 0.6;
  return f;
}

void apply_profile(const std::string& profile, ScenarioSpec& spec) {
  PathSpec& wifi = spec.paths[0];
  PathSpec& lte = spec.paths[1];
  if (profile == "clean") {
    return;
  }
  if (profile == "iid") {
    wifi.loss_rate = 0.02;
    lte.loss_rate = 0.005;
    return;
  }
  if (profile == "ge_wifi") {
    wifi.faults = ge_wifi_faults();
    return;
  }
  if (profile == "crossproduct") {
    // Scheduler x CC grid fodder: light wifi bursts plus trace iid loss on
    // lte. Every pairing must complete well inside the cap, so the bursts
    // are shorter and rarer than "ge_wifi", but each controller still takes
    // real loss events on both paths (the bite-check in stress_test asserts
    // drops_fault > 0 across the grid).
    wifi.faults = ge_wifi_faults();
    wifi.faults.gilbert_elliott.p_good_bad = 0.01;
    wifi.faults.gilbert_elliott.p_bad_good = 0.5;
    wifi.faults.gilbert_elliott.loss_bad = 0.4;
    lte.loss_rate = 0.003;
    return;
  }
  if (profile == "outage") {
    // Timescales sized to the transfer (a few hundred ms): the wifi flap's
    // second down window overlaps the lte blackout, so for ~100 ms both
    // paths are dead and recovery must come back through RTO.
    wifi.faults.flap.enabled = true;
    wifi.faults.flap.period_s = 0.5;
    wifi.faults.flap.down_s = 0.15;
    wifi.faults.flap.start_s = 0.2;
    lte.faults.outages.push_back(OutageSpec{0.45, 0.35});
    return;
  }
  if (profile == "reorder") {
    for (PathSpec* p : {&wifi, &lte}) {
      p->faults.reorder.enabled = true;
      p->faults.reorder.prob = 0.05;
      p->faults.reorder.delay_ms = 30.0;
      p->faults.reorder.jitter_ms = 30.0;
    }
    return;
  }
  if (profile == "churn") {
    // Competing flows arriving and departing mid-run under light iid loss:
    // exercises Connection teardown with packets in flight (mux orphans),
    // checker watch/unwatch, and recovery racing against flow lifetime.
    wifi.loss_rate = 0.01;
    lte.loss_rate = 0.002;
    spec.traffic.enabled = true;
    spec.traffic.flows = 3;
    spec.traffic.arrival_rate_per_s = 1.5;
    spec.traffic.flow_bytes = std::max<std::int64_t>(32 * 1024,
                                                     static_cast<std::int64_t>(spec.workload.bytes / 8));
    spec.traffic.size_dist = "exponential";
    spec.traffic.duration_s = 8.0;
    spec.traffic.cross = {CrossTrafficSpec{1, 1, 0.0}};
    return;
  }
  if (profile == "handover") {
    // Mid-transfer subflow churn under light loss: both paths are torn down
    // and re-joined while data is in flight — the drain path first, then an
    // abandon that pushes unacked ranges through the remap queue. Timescales
    // sized like "outage": a 512 KB transfer runs ~0.3-0.5 s, so every event
    // lands inside it.
    wifi.loss_rate = 0.01;
    spec.path_manager.enabled = true;
    spec.path_manager.tick_ms = 5.0;
    spec.path_manager.drain_timeout_s = 0.1;
    spec.path_manager.events = {
        PathEventSpec{0.04, "remove", 0, "drain"},
        PathEventSpec{0.09, "add", 0, "drain"},
        PathEventSpec{0.14, "remove", 1, "abandon"},
        PathEventSpec{0.20, "add", 1, "drain"},
        PathEventSpec{0.26, "remove", 0, "abandon"},
        PathEventSpec{0.32, "add", 0, "drain"},
    };
    return;
  }
  if (profile == "storm") {
    wifi.faults = ge_wifi_faults();
    wifi.faults.gilbert_elliott.p_good_bad = 0.03;
    wifi.faults.gilbert_elliott.p_bad_good = 0.25;
    wifi.faults.gilbert_elliott.loss_bad = 0.5;
    wifi.faults.reorder.enabled = true;
    wifi.faults.reorder.prob = 0.03;
    wifi.faults.reorder.delay_ms = 20.0;
    wifi.faults.reorder.jitter_ms = 20.0;
    lte.loss_rate = 0.01;
    lte.faults.flap.enabled = true;
    lte.faults.flap.period_s = 0.7;
    lte.faults.flap.down_s = 0.2;
    lte.faults.flap.start_s = 0.35;
    return;
  }
  throw std::invalid_argument("unknown stress profile: " + profile);
}

// A churn cell runs the traffic engine instead of a single download: every
// flow is watched from creation to teardown, the checker runs in 250 ms
// slices (so trace-disabled builds still check), and "completed" means at
// least one sized flow finished — under churn, late arrivals legitimately
// outlive the run.
StressCellResult run_churn_cell(const ScenarioSpec& spec) {
  FlightRecorder recorder;
  WorldBuilder builder(spec);
  std::unique_ptr<World> world = builder.build(&recorder);

  InvariantChecker checker(world->sim());
  TrafficEngine engine(*world, builder.spec());
  engine.on_flow_start = [&](Connection& c) { checker.watch(c); };
  engine.on_flow_end = [&](Connection& c) { checker.unwatch(c); };
  engine.tick_s = 0.25;
  engine.on_tick = [&] { checker.check_now("slice"); };
  const TrafficResult res = engine.run();

  StressCellResult result;
  result.completed = res.completed > 0;
  result.completion_s = res.completion_s.mean();
  if (res.completed == 0) {
    result.violations.push_back("churn: no flow completed (started " +
                                std::to_string(res.started) + ")");
  }
  checker.check_now("final");
  for (const auto& v : checker.violations()) {
    result.violations.push_back("t=" + v.t.str() + " [" + v.invariant + "] " + v.detail);
  }
  result.checks_run = checker.checks_run();

  for (std::size_t i = 0; i < world->path_count(); ++i) {
    const LinkStats& ls = world->path(i).down().stats();
    result.drops_random += ls.drops_random;
    result.drops_fault += ls.drops_fault;
    result.reordered += ls.reordered;
  }
  for (const TrafficFlowRecord& f : res.flows) {
    result.retransmits += f.retransmits;
    result.rto_events += f.rto_events;
  }
  return result;
}

}  // namespace

const std::vector<std::string>& stress_profile_names() {
  static const std::vector<std::string> names = {"clean",  "iid",      "ge_wifi",
                                                 "outage", "reorder",  "storm",
                                                 "handover", "churn",  "crossproduct"};
  return names;
}

ScenarioSpec stress_spec(const StressCell& cell) {
  ScenarioSpec spec;
  spec.name = "stress/" + cell.profile;
  spec.paths.push_back(wifi_path(8.0));
  spec.paths.push_back(lte_path(10.0));
  spec.scheduler = cell.scheduler;
  spec.conn.cc = cell.cc;
  spec.workload.kind = WorkloadKind::kDownload;
  spec.workload.bytes = static_cast<std::int64_t>(cell.bytes);
  spec.seed = cell.seed;
  apply_profile(cell.profile, spec);
  return spec;
}

StressCellResult run_stress_cell(const StressCell& cell) {
  const ScenarioSpec spec = stress_spec(cell);
  if (spec.traffic.enabled) return run_churn_cell(spec);
  FlightRecorder recorder;
  WorldBuilder builder(spec);
  std::unique_ptr<World> world = builder.build(&recorder);
  Simulator& sim = world->sim();

  InvariantChecker checker(sim);
  std::unique_ptr<Connection> conn = world->make_connection(scheduler_factory(spec.scheduler));
  checker.watch(*conn);

  std::unique_ptr<PathManager> pm;
  if (spec.path_manager.enabled) {
    std::vector<Path*> paths;
    for (std::size_t i = 0; i < world->path_count(); ++i) paths.push_back(&world->path(i));
    pm = std::make_unique<PathManager>(*conn, std::move(paths),
                                       path_manager_config_from_spec(spec.path_manager));
    pm->start();
  }

  HttpExchange http(sim, *conn, world->request_delay());
  StressCellResult result;
  TimePoint done_at = TimePoint::never();
  http.get(cell.bytes, [&](const ObjectResult& r) { done_at = r.completed; });

  // Run in slices so check_now() fires even in MPS_TRACE_DISABLED builds
  // (where the per-event hook compiles out) and so a stall is bounded by
  // the cap rather than by queue exhaustion.
  const TimePoint cap = TimePoint::origin() + Duration::from_seconds(cell.cap_s);
  const Duration slice = Duration::millis(250);
  while (done_at == TimePoint::never() && sim.now() < cap) {
    const std::uint64_t processed = sim.run_until(std::min(cap, sim.now() + slice));
    checker.check_now("slice");
    if (processed == 0 && done_at == TimePoint::never() && sim.now() >= cap) break;
  }

  result.completed = done_at != TimePoint::never();
  if (result.completed) {
    result.completion_s = (done_at - TimePoint::origin()).to_seconds();
  } else {
    result.violations.push_back(
        "stall: transfer incomplete at t=" + sim.now().str() + " (delivered " +
        std::to_string(conn->delivered_bytes()) + "/" + std::to_string(cell.bytes) +
        " bytes)");
  }
  checker.check_now("final");
  for (const auto& v : checker.violations()) {
    result.violations.push_back("t=" + v.t.str() + " [" + v.invariant + "] " + v.detail);
  }
  result.checks_run = checker.checks_run();

  for (std::size_t i = 0; i < world->path_count(); ++i) {
    const LinkStats& ls = world->path(i).down().stats();
    result.drops_random += ls.drops_random;
    result.drops_fault += ls.drops_fault;
    result.reordered += ls.reordered;
  }
  // Slot-based so subflows retired by path-manager churn still count.
  for (std::size_t i = 0; i < conn->slot_count(); ++i) {
    const Subflow* sf = conn->subflow_at(i);
    const SubflowStats& st = sf != nullptr ? sf->stats() : conn->retired_stats(i);
    result.retransmits += st.retransmits;
    result.rto_events += st.rto_events;
  }
  return result;
}

}  // namespace mps
