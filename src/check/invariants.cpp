#include "check/invariants.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "obs/recorder.h"

namespace mps {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return std::string(buf);
}

}  // namespace

InvariantChecker::InvariantChecker(Simulator& sim) : sim_(sim) {
  recorder_ = sim_.recorder();
  assert(recorder_ != nullptr && "InvariantChecker needs a recorder on the Simulator");
  if (recorder_ != nullptr) {
    next_ = recorder_->event_sink();
    recorder_->set_event_sink(this);
  }
}

InvariantChecker::~InvariantChecker() {
  if (recorder_ != nullptr && recorder_->event_sink() == this) {
    recorder_->set_event_sink(next_);
  }
}

void InvariantChecker::watch(Connection& conn) {
  ConnWatch w;
  w.conn = &conn;
  w.last_rcv_data_next = conn.rcv_data_next();
  w.last_data_una = conn.data_una();
  w.last_next_data_seq = conn.next_data_seq();
  // Watches are keyed by slot id, not by position in the live list: slot ids
  // are stable under mid-connection churn (mptcp/path_manager.h), while the
  // live list compacts when a subflow is finalized.
  w.subflows.resize(conn.slot_count());
  for (std::size_t slot = 0; slot < conn.slot_count(); ++slot) {
    const Subflow* sf = conn.subflow_at(slot);
    if (sf == nullptr) continue;
    w.subflows[slot].last_snd_una = sf->snd_una();
    w.subflows[slot].last_sack_high = sf->sack_high();
  }
  watched_.push_back(w);
}

void InvariantChecker::unwatch(Connection& conn) {
  for (auto it = watched_.begin(); it != watched_.end(); ++it) {
    if (it->conn == &conn) {
      watched_.erase(it);
      return;
    }
  }
}

void InvariantChecker::violation(const char* invariant, std::string detail) {
  if (violations_.size() >= kMaxViolations) return;
  violations_.push_back(Violation{sim_.now(), invariant, std::move(detail)});
}

std::string InvariantChecker::report(std::size_t max_lines) const {
  std::ostringstream os;
  os << violations_.size() << " invariant violation(s), " << checks_run_ << " checks run\n";
  std::size_t n = 0;
  for (const Violation& v : violations_) {
    if (n++ >= max_lines) {
      os << "  ... (" << violations_.size() - max_lines << " more)\n";
      break;
    }
    os << "  t=" << v.t.str() << " [" << v.invariant << "] " << v.detail << "\n";
  }
  return os.str();
}

void InvariantChecker::on_event(TimePoint t, EventType type, std::int64_t conn,
                                std::int64_t subflow, const EventField* fields,
                                std::size_t n_fields) {
  if (next_ != nullptr) next_->on_event(t, type, conn, subflow, fields, n_fields);
  check_all(event_type_name(type), /*settled=*/false);
  schedule_settled_check();
}

void InvariantChecker::schedule_settled_check() {
  if (settled_post_pending_) return;
  settled_post_pending_ = true;
  sim_.post([this] {
    settled_post_pending_ = false;
    check_all("settled", /*settled=*/true);
  });
}

void InvariantChecker::check_now(const char* context) {
  check_all(context, /*settled=*/true);
}

void InvariantChecker::check_all(const char* context, bool settled) {
  ++checks_run_;
  for (ConnWatch& w : watched_) check_connection(w, context, settled);
}

void InvariantChecker::check_connection(ConnWatch& w, const char* context, bool settled) {
  Connection& c = *w.conn;

  // --- monotonicity + ordering of the meta sequence counters ----------------
  if (c.rcv_data_next() < w.last_rcv_data_next) {
    violation("monotonicity", fmt("rcv_data_next moved back %llu -> %llu (%s)",
                                  (unsigned long long)w.last_rcv_data_next,
                                  (unsigned long long)c.rcv_data_next(), context));
  }
  if (c.data_una() < w.last_data_una) {
    violation("monotonicity",
              fmt("data_una moved back %llu -> %llu (%s)", (unsigned long long)w.last_data_una,
                  (unsigned long long)c.data_una(), context));
  }
  if (c.next_data_seq() < w.last_next_data_seq) {
    violation("monotonicity", fmt("next_data_seq moved back %llu -> %llu (%s)",
                                  (unsigned long long)w.last_next_data_seq,
                                  (unsigned long long)c.next_data_seq(), context));
  }
  w.last_rcv_data_next = c.rcv_data_next();
  w.last_data_una = c.data_una();
  w.last_next_data_seq = c.next_data_seq();

  if (c.data_una() > c.rcv_data_next() || c.rcv_data_next() > c.next_data_seq()) {
    violation("monotonicity",
              fmt("ordering broken: data_una=%llu rcv_data_next=%llu next_data_seq=%llu (%s)",
                  (unsigned long long)c.data_una(), (unsigned long long)c.rcv_data_next(),
                  (unsigned long long)c.next_data_seq(), context));
  }

  // --- exactly-once in-order delivery ---------------------------------------
  if (c.delivered_bytes() != c.rcv_data_next()) {
    violation("exactly-once",
              fmt("delivered_bytes=%llu != rcv_data_next=%llu (%s)",
                  (unsigned long long)c.delivered_bytes(),
                  (unsigned long long)c.rcv_data_next(), context));
  }

  // --- meta reorder-buffer accounting ---------------------------------------
  {
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& held = held_scratch_;
    held.clear();
    c.collect_ooo_ranges(held);
    std::uint64_t recount = 0;
    for (const auto& [lo, hi] : held) recount += hi - lo;
    if (recount != c.meta_ooo_bytes()) {
      violation("meta-ooo", fmt("meta_ooo_bytes=%llu but map holds %llu bytes in %zu segs (%s)",
                                (unsigned long long)c.meta_ooo_bytes(),
                                (unsigned long long)recount, held.size(), context));
    }
    if (!held.empty() && held.front().first <= c.rcv_data_next()) {
      violation("meta-ooo",
                fmt("held segment at %llu not above rcv_data_next=%llu (%s)",
                    (unsigned long long)held.front().first,
                    (unsigned long long)c.rcv_data_next(), context));
    }
  }

  // --- per-subflow sender scoreboard + cwnd sanity --------------------------
  // Slots added after watch() started (path-manager adds) get a fresh watch
  // seeded from the subflow's current counters; finalized slots are null and
  // skipped — their watch entry stays behind as a tombstone so later slots
  // keep their index.
  if (w.subflows.size() < c.slot_count()) {
    const std::size_t old = w.subflows.size();
    w.subflows.resize(c.slot_count());
    for (std::size_t slot = old; slot < c.slot_count(); ++slot) {
      const Subflow* nsf = c.subflow_at(slot);
      if (nsf == nullptr) continue;
      w.subflows[slot].last_snd_una = nsf->snd_una();
      w.subflows[slot].last_sack_high = nsf->sack_high();
    }
  }
  for (std::size_t i = 0; i < c.slot_count(); ++i) {
    if (c.subflow_at(i) == nullptr) continue;
    const Subflow& sf = *c.subflow_at(i);
    SubflowWatch& sw = w.subflows[i];

    if (sf.snd_una() < sw.last_snd_una) {
      violation("monotonicity",
                fmt("sf%zu snd_una moved back %llu -> %llu (%s)", i,
                    (unsigned long long)sw.last_snd_una, (unsigned long long)sf.snd_una(),
                    context));
    }
    if (sf.sack_high() < sw.last_sack_high) {
      violation("monotonicity",
                fmt("sf%zu sack_high moved back %llu -> %llu (%s)", i,
                    (unsigned long long)sw.last_sack_high,
                    (unsigned long long)sf.sack_high(), context));
    }
    sw.last_snd_una = sf.snd_una();
    sw.last_sack_high = sf.sack_high();

    if (sf.snd_una() > sf.next_seq()) {
      violation("scoreboard", fmt("sf%zu snd_una=%llu > next_seq=%llu (%s)", i,
                                  (unsigned long long)sf.snd_una(),
                                  (unsigned long long)sf.next_seq(), context));
    }

    std::size_t lost = 0, sacked = 0, both = 0;
    if (!sf.inflight().empty() && sf.inflight().lo() < sf.snd_una()) {
      violation("scoreboard", fmt("sf%zu inflight seq %llu below snd_una=%llu (%s)", i,
                                  (unsigned long long)sf.inflight().lo(),
                                  (unsigned long long)sf.snd_una(), context));
    }
    for (std::uint64_t seq = sf.inflight().lo(); seq != sf.inflight().hi(); ++seq) {
      const SentSeg& seg = sf.inflight()[seq];
      if (seg.lost && !seg.retransmitted) ++lost;
      if (seg.sacked) ++sacked;
      if (seg.lost && seg.sacked) ++both;
    }
    if (lost != sf.lost_not_rtx() || sacked != sf.sacked_count()) {
      violation("scoreboard",
                fmt("sf%zu counters lost=%zu/%zu sacked=%zu/%zu (counter/recount) (%s)", i,
                    sf.lost_not_rtx(), lost, sf.sacked_count(), sacked, context));
    }
    if (both != 0) {
      violation("scoreboard",
                fmt("sf%zu has %zu segments both lost and sacked (%s)", i, both, context));
    }
    if (sf.lost_not_rtx() + sf.sacked_count() > sf.inflight().size()) {
      violation("scoreboard",
                fmt("sf%zu pipe underflow: inflight=%zu lost=%zu sacked=%zu (%s)", i,
                    sf.inflight().size(), sf.lost_not_rtx(), sf.sacked_count(), context));
    }

    const double cwnd = sf.cwnd(), ssthresh = sf.ssthresh();
    if (!std::isfinite(cwnd) || cwnd < sf.min_cwnd() || cwnd > 1e9) {
      violation("cwnd-sanity", fmt("sf%zu cwnd=%g out of range (%s)", i, cwnd, context));
    }
    if (!std::isfinite(ssthresh) || ssthresh < sf.min_cwnd()) {
      violation("cwnd-sanity", fmt("sf%zu ssthresh=%g out of range (%s)", i, ssthresh, context));
    }

    // --- RTO / RACK timer liveness (settled only: mid-event the timer may
    // legitimately lag the scoreboard it covers) ------------------------------
    if (settled) {
      const bool outstanding = !sf.inflight().empty();
      if (sf.rto_pending() != outstanding) {
        violation("rto-liveness",
                  fmt("sf%zu rto_pending=%d but inflight=%zu (%s)", i, sf.rto_pending() ? 1 : 0,
                      sf.inflight().size(), context));
      }
      if (sf.rack_pending() && !outstanding) {
        violation("rto-liveness", fmt("sf%zu rack timer pending with empty inflight (%s)", i,
                                      context));
      }
    }

    // --- per-subflow receiver ordering ----------------------------------------
    if (c.receiver_at(i) != nullptr) {
      const SubflowReceiver& rx = *c.receiver_at(i);
      if (rx.ooo_min_seq() != UINT64_MAX && rx.ooo_min_seq() <= rx.rcv_next()) {
        violation("rcv-order", fmt("sf%zu receiver holds seq %llu <= rcv_next=%llu (%s)", i,
                                   (unsigned long long)rx.ooo_min_seq(),
                                   (unsigned long long)rx.rcv_next(), context));
      }
      if (rx.rcv_high() < rx.rcv_next()) {
        violation("rcv-order", fmt("sf%zu rcv_high=%llu < rcv_next=%llu (%s)", i,
                                   (unsigned long long)rx.rcv_high(),
                                   (unsigned long long)rx.rcv_next(), context));
      }
    }
  }

  // --- coupled-CC shared-term cache consistency ------------------------------
  // Recompute the cross-subflow aggregates from scratch and require exact
  // equality with the connection's cached CoupledCcTerms. The cached read
  // itself refreshes when marked dirty, so a mismatch can only mean a stale
  // cache served (or would have served) a coupled controller: some input
  // changed without on_cc_input_change() firing. Exact (bitwise) double
  // comparison is intentional — cached and fresh values come from the same
  // deterministic computation over the same snapshot.
  {
    terms_scratch_.siblings.clear();
    c.cc_sibling_info(terms_scratch_.siblings);
    terms_scratch_.recompute();
    const CoupledCcTerms& cached = c.coupled_terms();
    bool same = cached.siblings.size() == terms_scratch_.siblings.size() &&
                cached.olia_flags == terms_scratch_.olia_flags &&
                cached.lia_total_cwnd == terms_scratch_.lia_total_cwnd &&
                cached.lia_best_ratio == terms_scratch_.lia_best_ratio &&
                cached.lia_sum_cwnd_over_rtt == terms_scratch_.lia_sum_cwnd_over_rtt &&
                cached.olia_n == terms_scratch_.olia_n &&
                cached.olia_sum_cwnd_over_rtt == terms_scratch_.olia_sum_cwnd_over_rtt &&
                cached.olia_best_quality == terms_scratch_.olia_best_quality &&
                cached.olia_max_cwnd == terms_scratch_.olia_max_cwnd &&
                cached.olia_b_minus_m == terms_scratch_.olia_b_minus_m &&
                cached.olia_m_count == terms_scratch_.olia_m_count &&
                cached.balia_sum_x == terms_scratch_.balia_sum_x &&
                cached.balia_max_x == terms_scratch_.balia_max_x;
    if (same) {
      for (std::size_t i = 0; i < cached.siblings.size(); ++i) {
        const CcSiblingInfo& a = cached.siblings[i];
        const CcSiblingInfo& b = terms_scratch_.siblings[i];
        if (a.subflow_id != b.subflow_id || a.cwnd != b.cwnd || a.srtt_s != b.srtt_s ||
            a.established != b.established || a.inter_loss_bytes != b.inter_loss_bytes) {
          same = false;
          break;
        }
      }
    }
    if (!same) {
      violation("coupled-terms",
                fmt("cached CcTerms stale: lia_total=%g/%g lia_sum=%g/%g olia_n=%d/%d "
                    "balia_sum_x=%g/%g (cached/fresh, %zu/%zu siblings) (%s)",
                    cached.lia_total_cwnd, terms_scratch_.lia_total_cwnd,
                    cached.lia_sum_cwnd_over_rtt, terms_scratch_.lia_sum_cwnd_over_rtt,
                    cached.olia_n, terms_scratch_.olia_n, cached.balia_sum_x,
                    terms_scratch_.balia_sum_x, cached.siblings.size(),
                    terms_scratch_.siblings.size(), context));
    }
  }

  check_conservation(w, context);
}

void InvariantChecker::check_conservation(const ConnWatch& w, const char* context) {
  Connection& c = *w.conn;
  const std::uint64_t lo = c.rcv_data_next();
  const std::uint64_t hi = c.next_data_seq();
  if (lo >= hi) return;

  // Every byte the sender has scheduled but the receiver has not yet
  // delivered in order must still exist somewhere: as a sender-side copy
  // (in flight or staged on some subflow) or held in the meta reorder
  // buffer. A gap means bytes were dropped irrecoverably — the transfer can
  // never complete.
  std::vector<std::pair<std::uint64_t, std::uint64_t>>& ranges = ranges_scratch_;
  ranges.clear();
  c.collect_ooo_ranges(ranges);
  for (Subflow* sf : c.subflows()) sf->collect_data_ranges(ranges);
  // Ranges abandoned by a torn-down subflow live in the connection's remap
  // queue until a surviving subflow re-schedules them — they count as a
  // sender-side copy, else every abandon teardown would report vanished bytes.
  c.collect_remap_ranges(ranges);
  std::sort(ranges.begin(), ranges.end());

  std::uint64_t covered_to = lo;
  for (const auto& [start, end] : ranges) {
    if (end <= covered_to) continue;
    if (start > covered_to) break;  // gap at covered_to
    covered_to = end;
    if (covered_to >= hi) break;
  }
  if (covered_to < hi) {
    violation("conservation",
              fmt("bytes [%llu, %llu) not covered by any sender/receiver copy "
                  "(window [%llu, %llu), %zu ranges) (%s)",
                  (unsigned long long)covered_to, (unsigned long long)hi,
                  (unsigned long long)lo, (unsigned long long)hi, ranges.size(), context));
  }
}

}  // namespace mps
