// The unit of transfer on a link.
//
// One packet type serves both directions: data segments flow on the forward
// (server -> client) link, cumulative ACKs on the reverse link. Fields not
// relevant to a direction are left zero. Keeping a single POD type avoids
// virtual dispatch on the per-packet hot path.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace mps {

// TCP/IP header overhead carried by every segment: 40 bytes TCP/IPv4 + 12
// bytes timestamp option + 8 bytes MPTCP DSS option, rounded.
inline constexpr std::uint32_t kHeaderBytes = 60;
// Default maximum segment payload (1500 MTU - headers), as in the Linux
// MPTCP testbed the paper uses.
inline constexpr std::uint32_t kDefaultMss = 1428;
// Pure-ACK wire size (headers only).
inline constexpr std::uint32_t kAckBytes = 60;

struct Packet {
  // --- identity -----------------------------------------------------------
  std::uint32_t conn_id = 0;      // demultiplexes connections sharing a path
  std::uint32_t subflow_id = 0;   // which subflow of the connection
  std::uint64_t subflow_seq = 0;  // per-subflow segment sequence number
  std::uint64_t data_seq = 0;     // meta-level data sequence (first byte)
  std::uint32_t payload = 0;      // payload bytes (0 for pure ACK)

  // --- ACK direction ------------------------------------------------------
  bool is_ack = false;
  std::uint64_t ack_seq = 0;    // cumulative subflow-level: next expected seg
  std::uint64_t sack_high = 0;  // highest subflow seg received + 1 (FACK)
  std::uint64_t data_ack = 0;   // cumulative meta-level: next expected byte
  std::uint64_t rwnd = 0;       // advertised meta receive window (bytes)

  // SACK blocks: out-of-order segment ranges [lo, hi) held by the receiver.
  // Real TCP fits 3-4 blocks in the option space; we carry a few more since
  // each ACK refreshes the scoreboard wholesale here.
  static constexpr int kMaxSackBlocks = 8;
  std::uint8_t n_sack = 0;
  std::uint64_t sack_lo[kMaxSackBlocks] = {};
  std::uint64_t sack_hi[kMaxSackBlocks] = {};

  // --- timestamp option (RTT sampling) -------------------------------------
  TimePoint ts_val;             // data: send time; ACK: echoed send time
  bool ts_retransmit = false;   // echoed segment was a retransmission

  // --- bookkeeping ---------------------------------------------------------
  bool retransmit = false;
  std::uint64_t transmit_seq = 0;  // global order stamp for traces
  // Pending delivery event while the packet sits in a link's propagation
  // pool (EventId; 0 = not in propagation). Lets snapshot forks enumerate
  // in-flight packets and re-bind their arrival events (exp/snapshot.h).
  std::uint64_t prop_event = 0;

  std::uint32_t wire_size() const { return is_ack ? kAckBytes : payload + kHeaderBytes; }
};

}  // namespace mps
