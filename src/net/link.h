// A unidirectional bottleneck link: fixed serialization rate, one-way
// propagation delay, drop-tail FIFO queue, optional random loss.
//
// This models the `tc` token-bucket regulation used in the paper's testbed:
// the regulated rate dominates, and queueing at the regulator produces the
// large RTTs of paper Table 2. Rate changes take effect for the next
// serialization (in-flight transmissions complete at the old rate), which is
// exact enough at the tens-of-seconds change intervals used in Section 5.3.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fault/fault.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "obs/metrics.h"
#include "sim/callback.h"
#include "sim/simulator.h"
#include "util/rate.h"
#include "util/ring.h"
#include "util/rng.h"
#include "util/time.h"

namespace mps {

struct LinkConfig {
  Rate rate = Rate::mbps(10);
  Duration prop_delay = Duration::millis(5);
  std::size_t queue_packets = 40;  // drop-tail capacity; reproduces paper Table 2 loaded RTTs
  double loss_rate = 0.0;          // iid random loss probability
  FaultConfig fault;               // burst loss / outages / reordering (fault/fault.h)
};

struct LinkStats {
  std::uint64_t packets_in = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t drops_queue = 0;
  std::uint64_t drops_random = 0;
  std::uint64_t drops_fault = 0;  // dropped by an impairment model
  std::uint64_t reordered = 0;    // packets given extra fault delay
  std::size_t max_queue_depth = 0;
};

class Link {
 public:
  // SBO move-only callback: installing a handler whose captures fit 48 bytes
  // means per-packet delivery does no type-erased heap allocation (the old
  // std::function signature allocated on every assignment above 16 bytes).
  using DeliverFn = BasicCallback<void(const Packet&)>;

  Link(Simulator& sim, LinkConfig config, std::string name = "link");

  // The receiving endpoint. Must be set before the first send().
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  // Random loss and fault-model draws come from this stream; a link with
  // loss_rate == 0 and no faults never touches it, so loss-free runs are
  // RNG-schedule independent.
  void set_rng(Rng rng) { rng_ = rng; }

  // Installs (or clears) an impairment model; normally built from
  // LinkConfig::fault at construction. Tests may swap in custom models.
  void set_fault_model(std::unique_ptr<FaultModel> model) { fault_ = std::move(model); }
  FaultModel* fault_model() const { return fault_.get(); }

  // Offers a packet to the link. May drop (queue overflow or random loss).
  void send(Packet pkt);

  void set_rate(Rate rate) { config_.rate = rate; }
  Rate rate() const { return config_.rate; }
  void set_prop_delay(Duration d) { config_.prop_delay = d; }
  Duration prop_delay() const { return config_.prop_delay; }
  void set_loss_rate(double p) { config_.loss_rate = p; }

  std::size_t queue_depth() const { return queue_.size(); }
  bool busy() const { return busy_; }
  const LinkStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }

  // Current one-packet serialization time (diagnostics).
  Duration serialization_time(std::uint32_t bytes) const {
    return config_.rate.transmit_time(bytes);
  }

  // Snapshot support (exp/snapshot.h): copies `src`'s dynamic state — queue,
  // in-service packet, stats, RNG, fault-model state — and adopts its pending
  // events (serializer timer, every in-propagation delivery) by EventId. The
  // simulator's queue must already be structure-cloned from src's; deliver_
  // is left alone (the fork's mux installed its own at attach time).
  void restore_from(const Link& src);

 private:
  void start_transmission();
  void finish_transmission();

  Simulator& sim_;
  LinkConfig config_;
  std::string name_;
  DeliverFn deliver_;
  Rng rng_{0xabcdef12345678ULL};
  std::unique_ptr<FaultModel> fault_;

  RingDeque<Packet> queue_;
  bool busy_ = false;
  Packet in_service_;
  Timer tx_timer_;
  // Which callback tx_timer_ holds: true = parked zero-rate poll
  // (start_transmission), false = serialization end (finish_transmission).
  // Cannot be inferred from the rate — it may change while parked — and
  // restore_from() needs it to rebuild the right closure.
  bool tx_parked_ = false;
  // Packets in their propagation stage; slots recycle as deliveries fire.
  PacketPool prop_pool_;
  LinkStats stats_;

  // Flight-recorder instruments, labelled entity=name_ (no-ops unless a
  // recorder was attached to the Simulator before construction).
  struct Instruments {
    Counter drops_queue, drops_random, drops_fault, busy_ns;
    Gauge queue_depth;
  };
  Instruments obs_;
};

}  // namespace mps
