// Connection demultiplexer for a link direction.
//
// Web-browsing scenarios run several MPTCP connections over the same pair of
// physical paths; the Mux dispatches delivered packets to the endpoint that
// registered the packet's conn_id. Unroutable packets (e.g. arriving after a
// connection closed) are counted and dropped, mirroring a RST-less teardown.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/link.h"
#include "net/packet.h"

namespace mps {

class Mux {
 public:
  // Handlers take the packet by const reference: the mux borrows each packet
  // from the link's propagation pool, so dispatch moves no packet bytes and
  // the only handler allocation happens once at route-registration time.
  using Handler = std::function<void(const Packet&)>;

  // Installs this mux as the link's deliver function.
  void attach_to(Link& link) {
    link.set_deliver([this](const Packet& p) { dispatch(p); });
  }

  void add_route(std::uint32_t conn_id, Handler handler) {
    routes_[conn_id] = std::move(handler);
  }

  void remove_route(std::uint32_t conn_id) { routes_.erase(conn_id); }

  void dispatch(const Packet& p) {
    const auto it = routes_.find(p.conn_id);
    if (it == routes_.end()) {
      ++orphans_;
      return;
    }
    ++routed_;
    it->second(p);
  }

  std::uint64_t orphan_count() const { return orphans_; }
  // Packets handed to a registered endpoint. Conservation property exploited
  // by the churn tests: every packet a link delivers is routed or orphaned,
  // so routed + orphans equals the links' delivered totals.
  std::uint64_t routed_count() const { return routed_; }

  // Snapshot support: copies the counters only. Routes are re-registered by
  // the fork's own connections at their construction time.
  void restore_from(const Mux& src) {
    orphans_ = src.orphans_;
    routed_ = src.routed_;
  }

 private:
  std::unordered_map<std::uint32_t, Handler> routes_;
  std::uint64_t orphans_ = 0;
  std::uint64_t routed_ = 0;
};

}  // namespace mps
