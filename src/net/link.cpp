#include "net/link.h"

#include <cassert>
#include <utility>

#include "obs/prof.h"
#include "obs/recorder.h"
#include "util/log.h"

namespace mps {

Link::Link(Simulator& sim, LinkConfig config, std::string name)
    : sim_(sim),
      config_(config),
      name_(std::move(name)),
      fault_(make_fault_model(config.fault)),
      tx_timer_(sim) {
  if (FlightRecorder* rec = sim_.recorder(); rec != nullptr) {
    MetricsRegistry& m = rec->metrics();
    MetricLabels labels;
    labels.entity = name_;
    obs_.drops_queue = m.counter("link.drops_queue", labels);
    obs_.drops_random = m.counter("link.drops_random", labels);
    obs_.drops_fault = m.counter("link.drops_fault", labels);
    obs_.busy_ns = m.counter("link.busy_ns", labels);
    obs_.queue_depth = m.gauge("link.queue_depth", labels);
  }
}

void Link::send(Packet pkt) {
  ++stats_.packets_in;
  if (config_.loss_rate > 0.0 && rng_.bernoulli(config_.loss_rate)) {
    ++stats_.drops_random;
    obs_.drops_random.inc();
    MPS_TRACE_EVENT(sim_, EventType::kLinkDrop, pkt.conn_id, pkt.subflow_id,
                    {"link", name_.c_str()}, {"reason", "random"});
    return;
  }
  bool fault_drop = false;
  if (fault_ != nullptr) {
    MPS_PROF_SCOPE(kFaultDraw);
    fault_drop = fault_->should_drop(sim_.now(), rng_);
  }
  if (fault_drop) {
    ++stats_.drops_fault;
    obs_.drops_fault.inc();
    MPS_TRACE_EVENT(sim_, EventType::kLinkDrop, pkt.conn_id, pkt.subflow_id,
                    {"link", name_.c_str()}, {"reason", "fault"});
    return;
  }
  if (busy_) {
    if (queue_.size() >= config_.queue_packets) {
      ++stats_.drops_queue;
      obs_.drops_queue.inc();
      MPS_TRACE_EVENT(sim_, EventType::kLinkDrop, pkt.conn_id, pkt.subflow_id,
                      {"link", name_.c_str()}, {"reason", "queue"},
                      {"depth", static_cast<std::uint64_t>(queue_.size())});
      MPS_DEBUG("%s: drop (queue full, depth=%zu)", name_.c_str(), queue_.size());
      return;
    }
    queue_.push_back(pkt);
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
    obs_.queue_depth.set(sim_.now(), static_cast<double>(queue_.size()));
    return;
  }
  in_service_ = pkt;
  busy_ = true;
  start_transmission();
}

void Link::start_transmission() {
  const Duration tx = config_.rate.transmit_time(in_service_.wire_size());
  if (tx.is_infinite()) {
    // A zero-rate link parks the packet until the rate is raised again; we
    // model this by polling on a coarse timer so rate changes do not need to
    // know about parked packets.
    tx_timer_.schedule_after(Duration::millis(100), [this] { start_transmission(); });
    return;
  }
  obs_.busy_ns.inc(static_cast<std::uint64_t>(tx.ns()));
  tx_timer_.schedule_after(tx, [this] { finish_transmission(); });
}

void Link::finish_transmission() {
  assert(busy_);
  Packet delivered = in_service_;
  ++stats_.packets_delivered;
  stats_.bytes_delivered += delivered.wire_size();

  if (!queue_.empty()) {
    in_service_ = queue_.front();
    queue_.pop_front();
    obs_.queue_depth.set(sim_.now(), static_cast<double>(queue_.size()));
    start_transmission();
  } else {
    busy_ = false;
  }

  // Propagation: schedule the arrival at the far end. Delivery order is
  // preserved because prop_delay changes are rare and monotone arrivals are
  // guaranteed for a constant delay. A fault model may add per-packet extra
  // delay here, which deliberately breaks that monotonicity (reordering).
  Duration prop = config_.prop_delay;
  if (fault_ != nullptr) {
    MPS_PROF_SCOPE(kFaultDraw);
    const Duration extra = fault_->extra_delay(sim_.now(), rng_);
    if (extra > Duration::zero()) {
      ++stats_.reordered;
      prop += extra;
    }
  }
  // Pooled propagation: the closure captures {this, slot} and stays inside
  // Callback's inline buffer — no per-packet allocation (see packet_pool.h).
  Packet* slot = prop_pool_.acquire();
  *slot = delivered;
  sim_.after(prop, [this, slot] {
    if (deliver_) deliver_(*slot);
    prop_pool_.release(slot);
  });
}

}  // namespace mps
