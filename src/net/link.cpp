#include "net/link.h"

#include <cassert>
#include <utility>

#include "obs/prof.h"
#include "obs/recorder.h"
#include "util/log.h"

namespace mps {

Link::Link(Simulator& sim, LinkConfig config, std::string name)
    : sim_(sim),
      config_(config),
      name_(std::move(name)),
      fault_(make_fault_model(config.fault)),
      tx_timer_(sim) {
  if (FlightRecorder* rec = sim_.recorder(); rec != nullptr) {
    MetricsRegistry& m = rec->metrics();
    MetricLabels labels;
    labels.entity = name_;
    obs_.drops_queue = m.counter("link.drops_queue", labels);
    obs_.drops_random = m.counter("link.drops_random", labels);
    obs_.drops_fault = m.counter("link.drops_fault", labels);
    obs_.busy_ns = m.counter("link.busy_ns", labels);
    obs_.queue_depth = m.gauge("link.queue_depth", labels);
  }
}

void Link::send(Packet pkt) {
  ++stats_.packets_in;
  if (config_.loss_rate > 0.0 && rng_.bernoulli(config_.loss_rate)) {
    ++stats_.drops_random;
    obs_.drops_random.inc();
    MPS_TRACE_EVENT(sim_, EventType::kLinkDrop, pkt.conn_id, pkt.subflow_id,
                    {"link", name_.c_str()}, {"reason", "random"});
    return;
  }
  bool fault_drop = false;
  if (fault_ != nullptr) {
    MPS_PROF_SCOPE(kFaultDraw);
    fault_drop = fault_->should_drop(sim_.now(), rng_);
  }
  if (fault_drop) {
    ++stats_.drops_fault;
    obs_.drops_fault.inc();
    MPS_TRACE_EVENT(sim_, EventType::kLinkDrop, pkt.conn_id, pkt.subflow_id,
                    {"link", name_.c_str()}, {"reason", "fault"});
    return;
  }
  if (busy_) {
    if (queue_.size() >= config_.queue_packets) {
      ++stats_.drops_queue;
      obs_.drops_queue.inc();
      MPS_TRACE_EVENT(sim_, EventType::kLinkDrop, pkt.conn_id, pkt.subflow_id,
                      {"link", name_.c_str()}, {"reason", "queue"},
                      {"depth", static_cast<std::uint64_t>(queue_.size())});
      MPS_DEBUG("%s: drop (queue full, depth=%zu)", name_.c_str(), queue_.size());
      return;
    }
    queue_.push_back(pkt);
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
    obs_.queue_depth.set(sim_.now(), static_cast<double>(queue_.size()));
    return;
  }
  in_service_ = pkt;
  busy_ = true;
  start_transmission();
}

void Link::start_transmission() {
  const Duration tx = config_.rate.transmit_time(in_service_.wire_size());
  if (tx.is_infinite()) {
    // A zero-rate link parks the packet until the rate is raised again; we
    // model this by polling on a coarse timer so rate changes do not need to
    // know about parked packets.
    tx_parked_ = true;
    tx_timer_.schedule_after(Duration::millis(100), [this] { start_transmission(); });
    return;
  }
  tx_parked_ = false;
  obs_.busy_ns.inc(static_cast<std::uint64_t>(tx.ns()));
  tx_timer_.schedule_after(tx, [this] { finish_transmission(); });
}

void Link::finish_transmission() {
  assert(busy_);
  Packet delivered = in_service_;
  ++stats_.packets_delivered;
  stats_.bytes_delivered += delivered.wire_size();

  if (!queue_.empty()) {
    in_service_ = queue_.front();
    queue_.pop_front();
    obs_.queue_depth.set(sim_.now(), static_cast<double>(queue_.size()));
    start_transmission();
  } else {
    busy_ = false;
  }

  // Propagation: schedule the arrival at the far end. Delivery order is
  // preserved because prop_delay changes are rare and monotone arrivals are
  // guaranteed for a constant delay. A fault model may add per-packet extra
  // delay here, which deliberately breaks that monotonicity (reordering).
  Duration prop = config_.prop_delay;
  if (fault_ != nullptr) {
    MPS_PROF_SCOPE(kFaultDraw);
    const Duration extra = fault_->extra_delay(sim_.now(), rng_);
    if (extra > Duration::zero()) {
      ++stats_.reordered;
      prop += extra;
    }
  }
  // Pooled propagation: the closure captures {this, slot} and stays inside
  // Callback's inline buffer — no per-packet allocation (see packet_pool.h).
  Packet* slot = prop_pool_.acquire();
  *slot = delivered;
  slot->prop_event = sim_.after(prop, [this, slot] {
    if (deliver_) deliver_(*slot);
    prop_pool_.release(slot);
  });
}

void Link::restore_from(const Link& src) {
  config_ = src.config_;
  rng_ = src.rng_;
  if (fault_ != nullptr && src.fault_ != nullptr) fault_->restore_from(*src.fault_);
  queue_ = src.queue_;
  busy_ = src.busy_;
  in_service_ = src.in_service_;
  stats_ = src.stats_;
  tx_parked_ = src.tx_parked_;
  if (src.tx_timer_.pending()) {
    if (tx_parked_) {
      tx_timer_.clone_from(src.tx_timer_, [this] { start_transmission(); });
    } else {
      tx_timer_.clone_from(src.tx_timer_, [this] { finish_transmission(); });
    }
  }
  // In-propagation packets: mirror each live slot of src's pool into ours and
  // adopt the cloned delivery event. Pool layout may differ from src's (slots
  // are acquired fresh here), which is behavior-neutral: identity lives in
  // the EventId, not the slot address.
  src.prop_pool_.for_each_slot([this](const Packet& p) {
    if (p.prop_event == 0) return;
    Packet* slot = prop_pool_.acquire();
    *slot = p;
    sim_.rebind(p.prop_event, [this, slot] {
      if (deliver_) deliver_(*slot);
      prop_pool_.release(slot);
    });
  });
}

}  // namespace mps
