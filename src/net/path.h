// A bidirectional path between server and client: a forward (data) link and
// a reverse (ACK) link.
//
// All payload in the paper's experiments flows server -> client; the reverse
// direction carries only ACKs and GET requests, is never the bottleneck, and
// is therefore modelled with propagation delay plus a generous rate.
#pragma once

#include <memory>
#include <string>

#include "net/link.h"
#include "sim/simulator.h"

namespace mps {

struct PathConfig {
  std::string name = "path";
  Rate down_rate = Rate::mbps(10);       // regulated bandwidth (the knob)
  Duration rtt_base = Duration::millis(20);  // propagation RTT, no queueing
  std::size_t queue_packets = 40;
  double loss_rate = 0.0;
  Rate up_rate = Rate::mbps(100);        // ACK direction, effectively unconstrained
  FaultConfig fault;                     // downlink impairments (fault/fault.h)
};

// Built-in technology profiles matching the paper's testbed. The base RTTs
// are chosen so that measured loaded RTTs reproduce paper Table 2 (WiFi RTT
// < LTE RTT at equal regulated bandwidth).
PathConfig wifi_profile(Rate down_rate);
PathConfig lte_profile(Rate down_rate);

class Path {
 public:
  Path(Simulator& sim, PathConfig config);

  Link& down() { return down_; }          // server -> client (data)
  Link& up() { return up_; }              // client -> server (ACKs)
  const Link& down() const { return down_; }
  const Link& up() const { return up_; }

  const std::string& name() const { return config_.name; }
  Duration rtt_base() const { return config_.rtt_base; }

  // Changes the regulated downlink bandwidth (Section 5.3 experiments).
  void set_down_rate(Rate rate) { down_.set_rate(rate); }
  Rate down_rate() const { return down_.rate(); }

  // Snapshot support: restores both links' dynamic state from `src`, a path
  // built from the same PathConfig (exp/snapshot.h).
  void restore_from(const Path& src) {
    down_.restore_from(src.down_);
    up_.restore_from(src.up_);
  }

 private:
  PathConfig config_;
  Link down_;
  Link up_;
};

}  // namespace mps
