// Time-varying bandwidth drivers.
//
// BandwidthSchedule replays an explicit (time, rate) schedule onto a path's
// downlink. RandomBandwidthProcess generates the Section 5.3 workload:
// rates drawn uniformly from a set, held for exponentially distributed
// intervals. The full schedule is pre-generated from a seed so that every
// scheduler sees the identical bandwidth trace for a given scenario.
#pragma once

#include <vector>

#include "net/path.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mps {

struct RateChange {
  Duration at;  // offset from schedule start
  Rate rate;
};

// Pre-generated schedule of rate changes applied to one path.
class BandwidthSchedule {
 public:
  BandwidthSchedule(Simulator& sim, Path& path, std::vector<RateChange> changes);

  // Begins applying the schedule, offsets measured from now().
  void start();

  const std::vector<RateChange>& changes() const { return changes_; }

  // Snapshot support (exp/snapshot.h): adopts `src`'s schedule position and
  // pending apply event. Both schedules must hold the identical changes
  // vector; call after the simulator's event queue has been cloned.
  void restore_from(const BandwidthSchedule& src) {
    start_time_ = src.start_time_;
    next_ = src.next_;
    timer_.clone_from(src.timer_, [this] {
      path_.set_down_rate(changes_[next_].rate);
      ++next_;
      apply_next();
    });
  }

 private:
  void apply_next();

  Simulator& sim_;
  Path& path_;
  std::vector<RateChange> changes_;
  std::size_t next_ = 0;
  Timer timer_;
  TimePoint start_time_;
};

// Generates the paper's Section 5.3 random bandwidth trace: values chosen
// uniformly at random from `levels`, change intervals ~ Exp(mean_interval).
std::vector<RateChange> make_random_bandwidth_trace(Rng& rng,
                                                    const std::vector<Rate>& levels,
                                                    Duration mean_interval,
                                                    Duration total_duration);

}  // namespace mps
