#include "net/varbw.h"

#include <utility>

namespace mps {

BandwidthSchedule::BandwidthSchedule(Simulator& sim, Path& path,
                                     std::vector<RateChange> changes)
    : sim_(sim), path_(path), changes_(std::move(changes)), timer_(sim) {}

void BandwidthSchedule::start() {
  start_time_ = sim_.now();
  next_ = 0;
  apply_next();
}

void BandwidthSchedule::apply_next() {
  if (next_ >= changes_.size()) return;
  const RateChange& change = changes_[next_];
  timer_.schedule_at(start_time_ + change.at, [this] {
    path_.set_down_rate(changes_[next_].rate);
    ++next_;
    apply_next();
  });
}

std::vector<RateChange> make_random_bandwidth_trace(Rng& rng,
                                                    const std::vector<Rate>& levels,
                                                    Duration mean_interval,
                                                    Duration total_duration) {
  std::vector<RateChange> out;
  Duration t = Duration::zero();
  while (t < total_duration) {
    const Rate rate = levels[rng.uniform_int(levels.size())];
    out.push_back({t, rate});
    t += Duration::from_seconds(rng.exponential(mean_interval.to_seconds()));
  }
  return out;
}

}  // namespace mps
