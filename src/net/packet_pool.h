// Free-list pool of Packet buffers for in-propagation packets.
//
// A link's propagation stage used to capture each ~200-byte Packet by value
// inside the delivery closure, which overflows Callback's inline buffer and
// heap-allocated on every single delivery. The pool hands out stable Packet
// slots from chunked storage instead: the closure captures only {link,
// Packet*} (16 bytes, always inline) and the slot returns to the free list
// as soon as the delivery fires. Chunks are never freed, so a link's pool
// high-water tracks its maximum packets simultaneously in propagation
// (roughly bandwidth-delay product / packet size), not its traffic volume.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/packet.h"

namespace mps {

class PacketPool {
 public:
  Packet* acquire() {
    if (free_.empty()) grow();
    Packet* p = free_.back();
    free_.pop_back();
    return p;
  }

  void release(Packet* p) {
    p->prop_event = 0;  // free slots must not look in-flight to snapshot scans
    free_.push_back(p);
  }

  // Total slots ever created (diagnostics; equals the in-propagation
  // high-water rounded up to a chunk).
  std::size_t capacity() const { return chunks_.size() * kChunkPackets; }

  // Visits every slot, live and free; callers distinguish in-flight packets
  // by prop_event != 0 (snapshot forks enumerate a link's propagation stage
  // this way — the pool keeps no per-slot liveness bit of its own).
  template <typename Fn>
  void for_each_slot(Fn&& fn) const {
    for (const auto& chunk : chunks_) {
      for (std::size_t i = 0; i < kChunkPackets; ++i) fn(chunk[i]);
    }
  }

 private:
  static constexpr std::size_t kChunkPackets = 32;

  void grow() {
    chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
    Packet* base = chunks_.back().get();
    for (std::size_t i = 0; i < kChunkPackets; ++i) free_.push_back(base + i);
  }

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;
};

}  // namespace mps
