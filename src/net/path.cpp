#include "net/path.h"

namespace mps {

namespace {

LinkConfig down_link_config(const PathConfig& p) {
  LinkConfig c;
  c.rate = p.down_rate;
  c.prop_delay = p.rtt_base / 2;
  c.queue_packets = p.queue_packets;
  c.loss_rate = p.loss_rate;
  c.fault = p.fault;
  return c;
}

LinkConfig up_link_config(const PathConfig& p) {
  LinkConfig c;
  c.rate = p.up_rate;
  c.prop_delay = p.rtt_base / 2;
  // ACKs are tiny; a deep queue avoids spurious ACK loss on the unregulated
  // direction.
  c.queue_packets = 1000;
  c.loss_rate = 0.0;
  return c;
}

}  // namespace

PathConfig wifi_profile(Rate down_rate) {
  PathConfig c;
  c.name = "wifi";
  c.down_rate = down_rate;
  // Campus WiFi: low propagation delay; loaded RTT is dominated by queueing
  // at the regulated rate (paper Table 2: 40 ms at 8.6 Mbps).
  c.rtt_base = Duration::millis(16);
  return c;
}

PathConfig lte_profile(Rate down_rate) {
  PathConfig c;
  c.name = "lte";
  c.down_rate = down_rate;
  // Cellular cores add tens of ms (paper Table 2: 105 ms at 8.6 Mbps).
  c.rtt_base = Duration::millis(80);
  return c;
}

Path::Path(Simulator& sim, PathConfig config)
    : config_(config),
      down_(sim, down_link_config(config), config.name + ".down"),
      up_(sim, up_link_config(config), config.name + ".up") {}

}  // namespace mps
