// "In the wild" network profiles (paper Section 6).
//
// The paper runs nine streaming sessions over a public-town WiFi AP and AT&T
// LTE across two days. Its Fig. 22(a) shows LTE RTT roughly constant
// (~70 ms) while WiFi RTT sweeps from ~40 ms to ~950 ms across runs. We
// reproduce that heterogeneity sweep as nine deterministic profiles: each
// sets base RTTs, nominal bandwidths, residual loss, and mild stochastic
// rate jitter (unregulated real networks fluctuate). The WDC web-browsing
// profile matches the Section 6.3 setup.
#pragma once

#include <vector>

#include "net/path.h"
#include "net/varbw.h"
#include "util/rng.h"

namespace mps {

struct WildRunProfile {
  int run_index = 0;            // 1-based, sorted by WiFi RTT as in Fig. 22
  PathConfig wifi;
  PathConfig lte;
  // Jitter applied as a random bandwidth trace around the nominal rate.
  double rate_jitter_frac = 0.2;
  Duration jitter_interval = Duration::seconds(5);
  // Scalar nominals, set from the same literals as the PathConfigs above.
  // Scenario specs must be built from these: recovering Mbps/ms via
  // Rate::to_mbps()/Duration::to_millis() of the computed values is not
  // bit-exact, and spec-driven runs must feed the runners the identical
  // double literals.
  double wifi_mbps = 0.0;
  double wifi_rtt_ms = 0.0;
  double wifi_loss_rate = 0.0;
  double lte_mbps = 0.0;
  double lte_rtt_ms = 0.0;
  double lte_loss_rate = 0.0;
  double jitter_interval_s = 5.0;
};

// The nine streaming runs of Section 6.2 (Fig. 22). WiFi RTT ascends
// ~45 ms .. ~950 ms; LTE stays ~70 ms.
std::vector<WildRunProfile> wild_streaming_runs();

// The Section 6.3 web-browsing environment (WDC server, public WiFi + LTE).
WildRunProfile wild_web_profile();

// Builds a jitter trace for a path: nominal rate multiplied by a factor in
// [1 - jitter, 1 + jitter], re-drawn every `interval` (exponential).
std::vector<RateChange> make_wild_jitter_trace(Rng& rng, Rate nominal,
                                               double jitter_frac,
                                               Duration mean_interval,
                                               Duration total_duration);

}  // namespace mps
