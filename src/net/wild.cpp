#include "net/wild.h"

namespace mps {

std::vector<WildRunProfile> wild_streaming_runs() {
  // WiFi average RTTs read off paper Fig. 22(a): runs sorted ascending,
  // first two comparable to LTE (~70 ms), then increasingly heterogeneous.
  static constexpr int kWifiRttMs[9] = {55, 75, 140, 230, 330, 450, 560, 700, 950};
  // Public-town WiFi: modest and degrading bandwidth as congestion (and our
  // RTT proxy for it) grows; LTE steady around 8-9 Mbps, matching the ~7.3 to
  // 7.7 Mbps LTE subflow throughputs reported in Section 6.2.
  static constexpr double kWifiMbps[9] = {6.0, 5.0, 4.0, 3.0, 2.5, 2.0, 1.5, 1.2, 0.8};

  std::vector<WildRunProfile> runs;
  runs.reserve(9);
  for (int i = 0; i < 9; ++i) {
    WildRunProfile p;
    p.run_index = i + 1;
    p.wifi_mbps = kWifiMbps[i];
    p.wifi_rtt_ms = kWifiRttMs[i];
    p.wifi_loss_rate = 0.003;  // residual wireless loss
    p.lte_mbps = 9.0;
    p.lte_rtt_ms = 70;
    p.lte_loss_rate = 0.001;
    p.wifi = wifi_profile(Rate::mbps(p.wifi_mbps));
    p.wifi.rtt_base = Duration::millis(kWifiRttMs[i]);
    p.wifi.loss_rate = p.wifi_loss_rate;
    p.lte = lte_profile(Rate::mbps(p.lte_mbps));
    p.lte.rtt_base = Duration::millis(70);
    p.lte.loss_rate = p.lte_loss_rate;
    runs.push_back(p);
  }
  return runs;
}

WildRunProfile wild_web_profile() {
  // Section 6.3: WDC cloud server, public WiFi (slow, high RTT) + AT&T LTE.
  WildRunProfile p;
  p.run_index = 0;
  p.wifi_mbps = 2.0;
  p.wifi_rtt_ms = 320;
  p.wifi_loss_rate = 0.003;
  p.lte_mbps = 9.0;
  p.lte_rtt_ms = 70;
  p.lte_loss_rate = 0.001;
  p.wifi = wifi_profile(Rate::mbps(p.wifi_mbps));
  p.wifi.rtt_base = Duration::millis(320);
  p.wifi.loss_rate = p.wifi_loss_rate;
  p.lte = lte_profile(Rate::mbps(p.lte_mbps));
  p.lte.rtt_base = Duration::millis(70);
  p.lte.loss_rate = p.lte_loss_rate;
  p.rate_jitter_frac = 0.3;
  return p;
}

std::vector<RateChange> make_wild_jitter_trace(Rng& rng, Rate nominal,
                                               double jitter_frac,
                                               Duration mean_interval,
                                               Duration total_duration) {
  std::vector<RateChange> out;
  Duration t = Duration::zero();
  while (t < total_duration) {
    const double factor = rng.uniform(1.0 - jitter_frac, 1.0 + jitter_frac);
    out.push_back({t, nominal * factor});
    t += Duration::from_seconds(rng.exponential(mean_interval.to_seconds()));
  }
  return out;
}

}  // namespace mps
