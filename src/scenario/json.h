// Minimal dependency-free JSON document: parser + serializer.
//
// Exists so scenario specs are plain data files without dragging a JSON
// library into the build. Deliberately small: UTF-8 pass-through strings,
// numbers as int64 or double, objects preserving insertion order. The
// serializer is round-trip stable — dump(parse(dump(x))) == dump(x) — which
// the scenario subsystem relies on for field-exact spec round trips
// (integers stay integers; doubles print in shortest-round-trip form).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mps {

// Parse errors carry 1-based line/column of the offending character.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& msg, int line, int col)
      : std::runtime_error("json: " + msg + " (line " + std::to_string(line) + ", col " +
                           std::to_string(col) + ")"),
        line_(line),
        col_(col) {}

  int line() const { return line_; }
  int col() const { return col_; }

 private:
  int line_;
  int col_;
};

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;  // null
  static Json null() { return Json{}; }
  static Json boolean(bool b) { Json j; j.type_ = Type::kBool; j.bool_ = b; return j; }
  static Json number(std::int64_t i) { Json j; j.type_ = Type::kInt; j.int_ = i; return j; }
  static Json number(double d) { Json j; j.type_ = Type::kDouble; j.double_ = d; return j; }
  static Json string(std::string s) {
    Json j; j.type_ = Type::kString; j.string_ = std::move(s); return j;
  }
  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kInt || type_ == Type::kDouble; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { require(Type::kBool); return bool_; }
  // Any number as double (ints convert exactly for |i| < 2^53).
  double as_double() const {
    if (type_ == Type::kInt) return static_cast<double>(int_);
    require(Type::kDouble);
    return double_;
  }
  std::int64_t as_int() const { require(Type::kInt); return int_; }
  const std::string& as_string() const { require(Type::kString); return string_; }

  // --- arrays ---------------------------------------------------------------
  const std::vector<Json>& items() const { require(Type::kArray); return items_; }
  std::vector<Json>& items() { require(Type::kArray); return items_; }
  void push_back(Json v) { require(Type::kArray); items_.push_back(std::move(v)); }

  // --- objects (insertion-ordered) ------------------------------------------
  const std::vector<std::pair<std::string, Json>>& members() const {
    require(Type::kObject);
    return members_;
  }
  // nullptr when absent.
  const Json* find(const std::string& key) const;
  Json* find(const std::string& key);
  // Insert-or-get; appends to the member list on first use.
  Json& operator[](const std::string& key);
  void set(const std::string& key, Json v) { (*this)[key] = std::move(v); }

  std::size_t size() const {
    return type_ == Type::kArray ? items_.size()
         : type_ == Type::kObject ? members_.size()
                                  : 0;
  }

  // --- serialize / parse ----------------------------------------------------
  // indent < 0: compact one-line form. indent >= 0: pretty-printed with that
  // many spaces per level.
  std::string dump(int indent = -1) const;
  // Throws JsonError on malformed input or trailing garbage.
  static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void require(Type t) const;
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace mps
