#include "scenario/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

#include "obs/prof.h"

namespace mps {

const Json* Json::find(const std::string& key) const {
  require(Type::kObject);
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json* Json::find(const std::string& key) {
  require(Type::kObject);
  for (auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;  // let j["a"]["b"] build nested objects
  require(Type::kObject);
  if (Json* v = find(key)) return *v;
  members_.emplace_back(key, Json{});
  return members_.back().second;
}

void Json::require(Type t) const {
  if (type_ != t) {
    static const char* names[] = {"null", "bool", "int", "double", "string", "array", "object"};
    throw std::logic_error(std::string("json: accessed ") + names[static_cast<int>(type_)] +
                           " value as " + names[static_cast<int>(t)]);
  }
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull: return true;
    case Json::Type::kBool: return a.bool_ == b.bool_;
    case Json::Type::kInt: return a.int_ == b.int_;
    case Json::Type::kDouble: return a.double_ == b.double_;
    case Json::Type::kString: return a.string_ == b.string_;
    case Json::Type::kArray: return a.items_ == b.items_;
    case Json::Type::kObject: return a.members_ == b.members_;
  }
  return false;
}

namespace {

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
}

// Shortest decimal form that parses back to the same double; always contains
// a '.' or 'e' so the int/double distinction survives a round trip.
void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) throw std::logic_error("json: cannot serialize non-finite double");
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  if (ec != std::errc()) throw std::logic_error("json: double serialization failed");
  std::string s(buf, end);
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  out += s;
}

void append_newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kInt: out += std::to_string(int_); return;
    case Type::kDouble: append_double(out, double_); return;
    case Type::kString: append_quoted(out, string_); return;
    case Type::kArray: {
      if (items_.empty()) { out += "[]"; return; }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) append_newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) { out += "{}"; return; }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) append_newline_indent(out, indent, depth + 1);
        append_quoted(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const { throw JsonError(msg, line_, col_); }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    char c = peek();
    ++pos_;
    if (c == '\n') { ++line_; col_ = 1; } else { ++col_; }
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') { advance(); continue; }
      // Allow // line comments: presets are hand-edited files.
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
        continue;
      }
      break;
    }
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + peek() + "'");
    advance();
  }

  bool literal(const char* word) {
    std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    for (std::size_t i = 0; i < n; ++i) advance();
    return true;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json::string(parse_string());
      case 't': if (literal("true")) return Json::boolean(true); fail("invalid literal");
      case 'f': if (literal("false")) return Json::boolean(false); fail("invalid literal");
      case 'n': if (literal("null")) return Json::null(); fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') { advance(); return obj; }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      skip_ws();
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') { advance(); continue; }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') { advance(); return arr; }
    while (true) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') { advance(); continue; }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = advance();
      if (c == '"') return out;
      if (c == '\\') {
        char e = advance();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode BMP code point as UTF-8 (surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail(std::string("invalid escape '\\") + e + "'");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      out += c;
    }
  }

  Json parse_number() {
    std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') advance();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') { advance(); continue; }
      if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        advance();
        continue;
      }
      break;
    }
    if (pos_ == start) fail("invalid value");
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (!is_double) {
      std::int64_t i = 0;
      auto [p, ec] = std::from_chars(first, last, i);
      if (ec == std::errc() && p == last) return Json::number(i);
      // Out-of-range integers fall through to double.
    }
    double d = 0.0;
    auto [p, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || p != last) fail("invalid number");
    return Json::number(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Json Json::parse(const std::string& text) {
  MPS_PROF_SCOPE(kSpecParse);
  MPS_PROF_MEM_SCOPE(kSpec);
  return Parser(text).run();
}

}  // namespace mps
