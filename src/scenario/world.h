// World: the generic N-path testbed a scenario runs in, and WorldBuilder,
// which resolves a ScenarioSpec into low-level configs and constructs the
// world.
//
// World generalizes the original two-path Testbed (exp/testbed.h, now a thin
// wrapper over this class) while preserving its construction order exactly —
// recorder attached first, then paths built in order, then one downlink RNG
// fork per path in order, then the demux attached to every downlink and then
// every uplink. That order is a compatibility contract: it fixes the RNG
// stream assignment and event creation order, so worlds built here are
// bit-identical to historical Testbed worlds.
//
// Ownership: a borrowed FlightRecorder must outlive the World (the simulator
// and every instrumented model object hold pointers into it). WorldBuilder
// removes that footgun for spec-driven runs by owning a recorder when the
// spec requests recording and the caller does not supply one.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mptcp/connection.h"
#include "mptcp/path_manager.h"
#include "net/mux.h"
#include "net/path.h"
#include "net/varbw.h"
#include "scenario/spec.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mps {

struct WorldConfig {
  // Paths in construction order. Index 0 is the primary (request) path.
  std::vector<PathConfig> paths;
  int subflows_per_path = 1;
  ConnectionConfig conn;  // template; conn_id is assigned per connection
  std::uint64_t seed = 1;
  // Borrowed; must outlive the World. Attached to the simulator before the
  // paths are built so link/subflow/connection instruments all register.
  FlightRecorder* recorder = nullptr;
};

class World {
 public:
  explicit World(WorldConfig config);

  Simulator& sim() { return sim_; }
  Path& path(std::size_t i) { return *paths_[i]; }
  std::size_t path_count() const { return paths_.size(); }
  Rng& rng() { return rng_; }
  Mux& down_mux() { return down_mux_; }
  Mux& up_mux() { return up_mux_; }

  // Builds a connection over [path0 x subflows_per_path, path1 x ..., ...]
  // with path 0 primary and a fresh conn_id.
  std::unique_ptr<Connection> make_connection(const SchedulerFactory& scheduler);

  // Builds a connection restricted to the given paths (one subflow each;
  // the first index is primary). A single index yields plain single-path
  // TCP over the existing subflow machinery — used for cross traffic.
  std::unique_ptr<Connection> make_connection_on(const std::vector<std::size_t>& path_indices,
                                                 const SchedulerFactory& scheduler);

  // One-way latency of a GET from client to server on the primary path.
  Duration request_delay() const { return paths_[0]->rtt_base() / 2; }

  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }

  // --- snapshot-and-fork support (exp/snapshot.h) ---------------------------
  // Forces the id the next make_connection assigns. Fork construction uses
  // this to mint connections under the same conn_ids the source's live
  // connections hold (churn means ids are not simply 1..N at snapshot time).
  void set_next_conn_id(std::uint32_t id) { next_conn_id_ = id; }
  std::uint32_t next_conn_id() const { return next_conn_id_; }

  // Copies the world-level dynamic state from `src`, a world built from an
  // identical WorldConfig: the simulator clock + event-queue structure
  // (callbacks empty until owners rebind), link/path state including
  // in-flight packets, mux counters, and the world RNG. Call after all fork
  // objects are constructed and before per-connection restore_from passes.
  void restore_from(const World& src) {
    sim_.clone_events_from(src.sim_);
    rng_ = src.rng_;
    for (std::size_t i = 0; i < paths_.size(); ++i) paths_[i]->restore_from(*src.paths_[i]);
    down_mux_.restore_from(src.down_mux_);
    up_mux_.restore_from(src.up_mux_);
    next_conn_id_ = src.next_conn_id_;
  }

 private:
  WorldConfig config_;
  Simulator sim_;
  Rng rng_;
  std::vector<std::unique_ptr<Path>> paths_;
  Mux down_mux_;  // attached to every downlink (client side)
  Mux up_mux_;    // attached to every uplink (server side)
  std::uint32_t next_conn_id_ = 1;
};

// Resolves a ScenarioSpec into simulator-level configuration and builds
// Worlds from it. Resolution is deterministic and bench-exact:
//  * PathSpec -> PathConfig goes through wifi_profile()/lte_profile() for
//    profile paths, then applies overrides;
//  * generated bandwidth traces (kRandom/kJitter) fork one RNG per varied
//    path, in path order, from Rng(spec.trace_seed); a kRandom path's
//    initial rate becomes its trace's first level (Section 5.3 semantics);
//  * trace durations derive from the workload (video length, or the
//    download/web run caps).
class WorldBuilder {
 public:
  explicit WorldBuilder(ScenarioSpec spec);
  ~WorldBuilder();  // out of line: owns a FlightRecorder, fwd-declared here

  const ScenarioSpec& spec() const { return spec_; }
  const std::vector<PathConfig>& path_configs() const { return paths_; }
  // Per-path bandwidth trace; empty vector = constant rate.
  const std::vector<std::vector<RateChange>>& path_traces() const { return traces_; }
  // True when path i is an unmodified wifi/lte profile (only the rate set):
  // runners use this to keep the historical profile-construction code path.
  bool pure_profile(std::size_t i) const { return pure_[i]; }

  // Connection template with the spec's conn knobs applied.
  ConnectionConfig conn_config() const;
  WorldConfig world_config(FlightRecorder* recorder = nullptr) const;

  // Constructs the world. `recorder` (borrowed, may be null) wins over the
  // spec; otherwise, when the spec asks for recording, the builder owns a
  // recorder (lifetime: the builder, which therefore must outlive the
  // World).
  std::unique_ptr<World> build(FlightRecorder* recorder = nullptr);

  // The recorder the last build() attached: caller's, builder-owned, or null.
  FlightRecorder* recorder() const { return recorder_; }

 private:
  ScenarioSpec spec_;
  std::vector<PathConfig> paths_;
  std::vector<std::vector<RateChange>> traces_;
  std::vector<bool> pure_;
  std::unique_ptr<FlightRecorder> owned_recorder_;
  FlightRecorder* recorder_ = nullptr;
};

// --- path-manager resolution ------------------------------------------------
// PathManagerSpec -> runtime PathManagerConfig (mptcp/path_manager.h):
// seconds/ms literals become Durations, event at_s become TimePoints from the
// simulation origin, and the spec's teardown-mode strings become enum values.
PathManagerConfig path_manager_config_from_spec(const PathManagerSpec& spec);

// The path indices the connection starts with subflows on: all of them,
// minus the spec's backup paths (those join only on promotion).
std::vector<std::size_t> initial_path_indices(const PathManagerSpec& spec,
                                              std::size_t n_paths);

}  // namespace mps
