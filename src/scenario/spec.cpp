#include "scenario/spec.h"

#include <stdexcept>

#include "obs/prof.h"
#include "sched/registry.h"
#include "tcp/cc_registry.h"

namespace mps {

PathSpec wifi_path(double rate_mbps) {
  PathSpec p;
  p.profile = PathProfile::kWifi;
  p.name = "wifi";
  p.rate_mbps = rate_mbps;
  p.rtt_ms = 16.0;
  return p;
}

PathSpec lte_path(double rate_mbps) {
  PathSpec p;
  p.profile = PathProfile::kLte;
  p.name = "lte";
  p.rate_mbps = rate_mbps;
  p.rtt_ms = 80.0;
  return p;
}

const char* path_profile_name(PathProfile p) {
  switch (p) {
    case PathProfile::kWifi: return "wifi";
    case PathProfile::kLte: return "lte";
    case PathProfile::kCustom: return "custom";
  }
  return "?";
}

const char* variation_kind_name(VariationKind k) {
  switch (k) {
    case VariationKind::kNone: return "none";
    case VariationKind::kSchedule: return "schedule";
    case VariationKind::kRandom: return "random";
    case VariationKind::kJitter: return "jitter";
  }
  return "?";
}

const char* workload_kind_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kStream: return "stream";
    case WorkloadKind::kDownload: return "download";
    case WorkloadKind::kWeb: return "web";
  }
  return "?";
}

namespace {

[[noreturn]] void spec_error(const std::string& key, const std::string& msg) {
  throw std::invalid_argument("scenario spec: " + key + ": " + msg);
}

// One object being picked apart: every read is by key, reads are recorded,
// and finish() rejects keys nobody asked for — so typos in a spec file fail
// loudly with the full key path.
class ObjectReader {
 public:
  ObjectReader(const Json& j, std::string path) : j_(j), path_(std::move(path)) {
    if (!j_.is_object()) spec_error(path_, "expected an object");
  }

  const std::string& path() const { return path_; }
  std::string key_path(const std::string& key) const {
    return path_.empty() ? key : path_ + "." + key;
  }

  const Json* get(const std::string& key) {
    used_.push_back(key);
    return j_.find(key);
  }

  double number(const std::string& key, double def) {
    const Json* v = get(key);
    if (v == nullptr) return def;
    if (!v->is_number()) spec_error(key_path(key), "expected a number");
    return v->as_double();
  }

  std::int64_t integer(const std::string& key, std::int64_t def) {
    const Json* v = get(key);
    if (v == nullptr) return def;
    if (!v->is_int()) spec_error(key_path(key), "expected an integer");
    return v->as_int();
  }

  bool boolean(const std::string& key, bool def) {
    const Json* v = get(key);
    if (v == nullptr) return def;
    if (!v->is_bool()) spec_error(key_path(key), "expected true or false");
    return v->as_bool();
  }

  std::string str(const std::string& key, const std::string& def) {
    const Json* v = get(key);
    if (v == nullptr) return def;
    if (!v->is_string()) spec_error(key_path(key), "expected a string");
    return v->as_string();
  }

  void finish() {
    for (const auto& [key, value] : j_.members()) {
      bool known = false;
      for (const auto& u : used_) {
        if (u == key) { known = true; break; }
      }
      if (!known) spec_error(key_path(key), "unknown key");
    }
  }

 private:
  const Json& j_;
  std::string path_;
  std::vector<std::string> used_;
};

VariationSpec parse_variation(const Json& j, const std::string& path) {
  ObjectReader r(j, path);
  VariationSpec v;
  const std::string kind = r.str("kind", "none");
  if (kind == "none") v.kind = VariationKind::kNone;
  else if (kind == "schedule") v.kind = VariationKind::kSchedule;
  else if (kind == "random") v.kind = VariationKind::kRandom;
  else if (kind == "jitter") v.kind = VariationKind::kJitter;
  else spec_error(r.key_path("kind"), "unknown variation kind \"" + kind +
                  "\" (known: none, schedule, random, jitter)");

  if (const Json* s = r.get("schedule")) {
    if (!s->is_array()) spec_error(r.key_path("schedule"), "expected an array");
    for (std::size_t i = 0; i < s->items().size(); ++i) {
      const std::string ppath = r.key_path("schedule") + "[" + std::to_string(i) + "]";
      ObjectReader pr(s->items()[i], ppath);
      RatePoint pt;
      pt.at_s = pr.number("at_s", 0.0);
      pt.mbps = pr.number("mbps", 0.0);
      if (pt.mbps <= 0.0) spec_error(ppath + ".mbps", "must be > 0");
      pr.finish();
      v.schedule.push_back(pt);
    }
  }
  if (const Json* l = r.get("levels_mbps")) {
    if (!l->is_array()) spec_error(r.key_path("levels_mbps"), "expected an array of numbers");
    for (std::size_t i = 0; i < l->items().size(); ++i) {
      const Json& e = l->items()[i];
      if (!e.is_number()) {
        spec_error(r.key_path("levels_mbps") + "[" + std::to_string(i) + "]",
                   "expected a number");
      }
      v.levels_mbps.push_back(e.as_double());
    }
  }
  v.mean_interval_s = r.number("mean_interval_s", v.mean_interval_s);
  v.jitter_frac = r.number("jitter_frac", v.jitter_frac);
  v.jitter_interval_s = r.number("jitter_interval_s", v.jitter_interval_s);
  r.finish();

  if (v.kind == VariationKind::kSchedule && v.schedule.empty()) {
    spec_error(r.key_path("schedule"), "required (non-empty) for kind \"schedule\"");
  }
  if (v.kind == VariationKind::kRandom && v.levels_mbps.empty()) {
    spec_error(r.key_path("levels_mbps"), "required (non-empty) for kind \"random\"");
  }
  if (v.mean_interval_s <= 0.0) spec_error(r.key_path("mean_interval_s"), "must be > 0");
  if (v.jitter_frac < 0.0 || v.jitter_frac >= 1.0) {
    spec_error(r.key_path("jitter_frac"), "must be in [0, 1)");
  }
  if (v.jitter_interval_s <= 0.0) spec_error(r.key_path("jitter_interval_s"), "must be > 0");
  return v;
}

FaultSpec parse_faults(const Json& j, const std::string& path) {
  ObjectReader r(j, path);
  FaultSpec f;

  if (const Json* ge = r.get("gilbert_elliott")) {
    ObjectReader gr(*ge, r.key_path("gilbert_elliott"));
    f.gilbert_elliott.enabled = true;
    f.gilbert_elliott.p_good_bad = gr.number("p_good_bad", f.gilbert_elliott.p_good_bad);
    f.gilbert_elliott.p_bad_good = gr.number("p_bad_good", f.gilbert_elliott.p_bad_good);
    f.gilbert_elliott.loss_good = gr.number("loss_good", f.gilbert_elliott.loss_good);
    f.gilbert_elliott.loss_bad = gr.number("loss_bad", f.gilbert_elliott.loss_bad);
    gr.finish();
    if (f.gilbert_elliott.p_good_bad < 0.0 || f.gilbert_elliott.p_good_bad >= 1.0) {
      spec_error(gr.key_path("p_good_bad"), "must be in [0, 1)");
    }
    // p_bad_good == 0 would make the bad state absorbing; use an outage for
    // a permanent blackout instead.
    if (f.gilbert_elliott.p_bad_good <= 0.0 || f.gilbert_elliott.p_bad_good > 1.0) {
      spec_error(gr.key_path("p_bad_good"), "must be in (0, 1]");
    }
    if (f.gilbert_elliott.loss_good < 0.0 || f.gilbert_elliott.loss_good >= 1.0) {
      spec_error(gr.key_path("loss_good"), "must be in [0, 1)");
    }
    if (f.gilbert_elliott.loss_bad < 0.0 || f.gilbert_elliott.loss_bad > 1.0) {
      spec_error(gr.key_path("loss_bad"), "must be in [0, 1]");
    }
  }

  if (const Json* o = r.get("outages")) {
    if (!o->is_array()) spec_error(r.key_path("outages"), "expected an array");
    for (std::size_t i = 0; i < o->items().size(); ++i) {
      const std::string opath = r.key_path("outages") + "[" + std::to_string(i) + "]";
      ObjectReader orr(o->items()[i], opath);
      OutageSpec w;
      w.at_s = orr.number("at_s", 0.0);
      w.for_s = orr.number("for_s", 0.0);
      orr.finish();
      if (w.at_s < 0.0) spec_error(opath + ".at_s", "must be >= 0");
      if (w.for_s <= 0.0) spec_error(opath + ".for_s", "must be > 0");
      f.outages.push_back(w);
    }
  }

  if (const Json* fl = r.get("flap")) {
    ObjectReader fr(*fl, r.key_path("flap"));
    f.flap.enabled = true;
    f.flap.period_s = fr.number("period_s", f.flap.period_s);
    f.flap.down_s = fr.number("down_s", f.flap.down_s);
    f.flap.start_s = fr.number("start_s", f.flap.start_s);
    fr.finish();
    if (f.flap.period_s <= 0.0) spec_error(fr.key_path("period_s"), "must be > 0");
    if (f.flap.down_s <= 0.0 || f.flap.down_s >= f.flap.period_s) {
      spec_error(fr.key_path("down_s"), "must be in (0, period_s)");
    }
    if (f.flap.start_s < 0.0) spec_error(fr.key_path("start_s"), "must be >= 0");
  }

  if (const Json* re = r.get("reorder")) {
    ObjectReader rr(*re, r.key_path("reorder"));
    f.reorder.enabled = true;
    f.reorder.prob = rr.number("prob", f.reorder.prob);
    f.reorder.delay_ms = rr.number("delay_ms", f.reorder.delay_ms);
    f.reorder.jitter_ms = rr.number("jitter_ms", f.reorder.jitter_ms);
    rr.finish();
    if (f.reorder.prob < 0.0 || f.reorder.prob > 1.0) {
      spec_error(rr.key_path("prob"), "must be in [0, 1]");
    }
    if (f.reorder.delay_ms <= 0.0) spec_error(rr.key_path("delay_ms"), "must be > 0");
    if (f.reorder.jitter_ms < 0.0) spec_error(rr.key_path("jitter_ms"), "must be >= 0");
  }

  r.finish();
  if (!f.enabled()) {
    spec_error(path, "empty faults block (give gilbert_elliott, outages, flap, or reorder)");
  }
  return f;
}

PathSpec parse_path(const Json& j, const std::string& path) {
  ObjectReader r(j, path);
  PathSpec p;
  const std::string profile = r.str("profile", "custom");
  if (profile == "wifi") {
    p.profile = PathProfile::kWifi;
    p.name = "wifi";
    p.rtt_ms = 16.0;
  } else if (profile == "lte") {
    p.profile = PathProfile::kLte;
    p.name = "lte";
    p.rtt_ms = 80.0;
  } else if (profile == "custom") {
    p.profile = PathProfile::kCustom;
    p.name = "path";
    p.rtt_ms = 20.0;
  } else {
    spec_error(r.key_path("profile"),
               "unknown profile \"" + profile + "\" (known: wifi, lte, custom)");
  }

  p.name = r.str("name", p.name);
  const Json* rate = r.get("rate_mbps");
  if (rate == nullptr) spec_error(r.key_path("rate_mbps"), "required");
  if (!rate->is_number()) spec_error(r.key_path("rate_mbps"), "expected a number");
  p.rate_mbps = rate->as_double();
  if (p.rate_mbps <= 0.0) spec_error(r.key_path("rate_mbps"), "must be > 0");
  p.rtt_ms = r.number("rtt_ms", p.rtt_ms);
  if (p.rtt_ms <= 0.0) spec_error(r.key_path("rtt_ms"), "must be > 0");
  p.queue_packets = r.integer("queue_packets", p.queue_packets);
  if (p.queue_packets <= 0) spec_error(r.key_path("queue_packets"), "must be > 0");
  p.loss_rate = r.number("loss_rate", p.loss_rate);
  if (p.loss_rate < 0.0 || p.loss_rate >= 1.0) {
    spec_error(r.key_path("loss_rate"), "must be in [0, 1)");
  }
  p.up_mbps = r.number("up_mbps", p.up_mbps);
  if (p.up_mbps <= 0.0) spec_error(r.key_path("up_mbps"), "must be > 0");
  if (const Json* v = r.get("variation")) p.variation = parse_variation(*v, r.key_path("variation"));
  if (const Json* f = r.get("faults")) p.faults = parse_faults(*f, r.key_path("faults"));
  r.finish();
  return p;
}

ConnSpec parse_conn(const Json& j, const std::string& path) {
  ObjectReader r(j, path);
  ConnSpec c;
  c.cc = r.str("cc", c.cc);
  try {
    (void)cc_kind_from_name(c.cc);
  } catch (const std::invalid_argument& e) {
    spec_error(r.key_path("cc"), e.what());
  }
  c.idle_cwnd_reset = r.boolean("idle_cwnd_reset", c.idle_cwnd_reset);
  c.opportunistic_rtx = r.boolean("opportunistic_rtx", c.opportunistic_rtx);
  c.penalization = r.boolean("penalization", c.penalization);
  c.staging_bytes = r.integer("staging_bytes", c.staging_bytes);
  if (c.staging_bytes < 0) spec_error(r.key_path("staging_bytes"), "must be >= 0");
  r.finish();
  return c;
}

WorkloadSpec parse_workload(const Json& j, const std::string& path) {
  ObjectReader r(j, path);
  WorkloadSpec w;
  const std::string kind = r.str("kind", "stream");
  if (kind == "stream") w.kind = WorkloadKind::kStream;
  else if (kind == "download") w.kind = WorkloadKind::kDownload;
  else if (kind == "web") w.kind = WorkloadKind::kWeb;
  else spec_error(r.key_path("kind"),
                  "unknown workload kind \"" + kind + "\" (known: stream, download, web)");

  w.video_s = r.number("video_s", w.video_s);
  if (w.video_s <= 0.0) spec_error(r.key_path("video_s"), "must be > 0");
  w.abr = r.str("abr", w.abr);
  if (w.abr != "buffer" && w.abr != "rate") {
    spec_error(r.key_path("abr"), "unknown abr \"" + w.abr + "\" (known: buffer, rate)");
  }
  w.bytes = r.integer("bytes", w.bytes);
  if (w.bytes <= 0) spec_error(r.key_path("bytes"), "must be > 0");
  w.runs = r.integer("runs", w.runs);
  if (w.runs <= 0) spec_error(r.key_path("runs"), "must be > 0");
  r.finish();
  return w;
}

TrafficSpec parse_traffic(const Json& j, const std::string& path, std::size_t n_paths) {
  ObjectReader r(j, path);
  TrafficSpec t;
  t.enabled = true;
  t.flows = r.integer("flows", t.flows);
  if (t.flows <= 0) spec_error(r.key_path("flows"), "must be > 0");
  t.arrival_rate_per_s = r.number("arrival_rate_per_s", t.arrival_rate_per_s);
  if (t.arrival_rate_per_s < 0.0) {
    spec_error(r.key_path("arrival_rate_per_s"), "must be >= 0");
  }
  t.max_arrivals = r.integer("max_arrivals", t.max_arrivals);
  if (t.max_arrivals < 0) spec_error(r.key_path("max_arrivals"), "must be >= 0");
  t.flow_bytes = r.integer("flow_bytes", t.flow_bytes);
  if (t.flow_bytes <= 0) spec_error(r.key_path("flow_bytes"), "must be > 0");
  t.size_dist = r.str("size_dist", t.size_dist);
  if (t.size_dist != "fixed" && t.size_dist != "exponential" && t.size_dist != "pareto") {
    spec_error(r.key_path("size_dist"), "unknown size_dist \"" + t.size_dist +
               "\" (known: fixed, exponential, pareto)");
  }
  t.pareto_alpha = r.number("pareto_alpha", t.pareto_alpha);
  if (t.pareto_alpha <= 1.0) {
    spec_error(r.key_path("pareto_alpha"), "must be > 1 (finite mean)");
  }
  t.duration_s = r.number("duration_s", t.duration_s);
  if (t.duration_s <= 0.0) spec_error(r.key_path("duration_s"), "must be > 0");

  if (const Json* c = r.get("cross")) {
    if (!c->is_array()) spec_error(r.key_path("cross"), "expected an array");
    for (std::size_t i = 0; i < c->items().size(); ++i) {
      const std::string cpath = r.key_path("cross") + "[" + std::to_string(i) + "]";
      ObjectReader cr(c->items()[i], cpath);
      CrossTrafficSpec x;
      x.path = cr.integer("path", x.path);
      if (x.path < 0 || static_cast<std::size_t>(x.path) >= n_paths) {
        spec_error(cpath + ".path",
                   "path index out of range (have " + std::to_string(n_paths) + " paths)");
      }
      x.flows = cr.integer("flows", x.flows);
      if (x.flows <= 0) spec_error(cpath + ".flows", "must be > 0");
      x.start_s = cr.number("start_s", x.start_s);
      if (x.start_s < 0.0) spec_error(cpath + ".start_s", "must be >= 0");
      cr.finish();
      t.cross.push_back(x);
    }
  }
  r.finish();
  return t;
}

std::vector<std::int64_t> parse_path_index_array(ObjectReader& r, const std::string& key,
                                                 std::size_t n_paths) {
  std::vector<std::int64_t> out;
  const Json* a = r.get(key);
  if (a == nullptr) return out;
  if (!a->is_array()) spec_error(r.key_path(key), "expected an array of path indices");
  for (std::size_t i = 0; i < a->items().size(); ++i) {
    const Json& e = a->items()[i];
    const std::string epath = r.key_path(key) + "[" + std::to_string(i) + "]";
    if (!e.is_int()) spec_error(epath, "expected an integer path index");
    const std::int64_t idx = e.as_int();
    if (idx < 0 || static_cast<std::size_t>(idx) >= n_paths) {
      spec_error(epath, "path index out of range (have " + std::to_string(n_paths) + " paths)");
    }
    out.push_back(idx);
  }
  return out;
}

PathManagerSpec parse_path_manager(const Json& j, const std::string& path,
                                   std::size_t n_paths) {
  ObjectReader r(j, path);
  PathManagerSpec pm;
  pm.enabled = true;
  pm.tick_ms = r.number("tick_ms", pm.tick_ms);
  if (pm.tick_ms <= 0.0) spec_error(r.key_path("tick_ms"), "must be > 0");
  pm.drain_timeout_s = r.number("drain_timeout_s", pm.drain_timeout_s);
  if (pm.drain_timeout_s <= 0.0) spec_error(r.key_path("drain_timeout_s"), "must be > 0");
  pm.join_delay_rtt = r.boolean("join_delay_rtt", pm.join_delay_rtt);

  if (const Json* ev = r.get("events")) {
    if (!ev->is_array()) spec_error(r.key_path("events"), "expected an array");
    double prev_at = 0.0;
    for (std::size_t i = 0; i < ev->items().size(); ++i) {
      const std::string epath = r.key_path("events") + "[" + std::to_string(i) + "]";
      ObjectReader er(ev->items()[i], epath);
      PathEventSpec e;
      e.at_s = er.number("at_s", e.at_s);
      if (e.at_s < 0.0) spec_error(epath + ".at_s", "must be >= 0");
      if (e.at_s < prev_at) spec_error(epath + ".at_s", "events must be sorted by at_s");
      prev_at = e.at_s;
      e.action = er.str("action", e.action);
      if (e.action != "add" && e.action != "remove") {
        spec_error(epath + ".action",
                   "unknown action \"" + e.action + "\" (known: add, remove)");
      }
      e.path = er.integer("path", e.path);
      if (e.path < 0 || static_cast<std::size_t>(e.path) >= n_paths) {
        spec_error(epath + ".path",
                   "path index out of range (have " + std::to_string(n_paths) + " paths)");
      }
      e.mode = er.str("mode", e.mode);
      if (e.mode != "drain" && e.mode != "abandon") {
        spec_error(epath + ".mode", "unknown mode \"" + e.mode + "\" (known: drain, abandon)");
      }
      er.finish();
      pm.events.push_back(std::move(e));
    }
  }

  if (const Json* cap = r.get("cap")) {
    ObjectReader cr(*cap, r.key_path("cap"));
    pm.cap.enabled = true;
    pm.cap.max_subflows = cr.integer("max_subflows", pm.cap.max_subflows);
    if (pm.cap.max_subflows <= 0) spec_error(cr.key_path("max_subflows"), "must be > 0");
    pm.cap.bytes_per_subflow = cr.integer("bytes_per_subflow", pm.cap.bytes_per_subflow);
    if (pm.cap.bytes_per_subflow <= 0) {
      spec_error(cr.key_path("bytes_per_subflow"), "must be > 0");
    }
    pm.cap.paths = parse_path_index_array(cr, "paths", n_paths);
    if (pm.cap.paths.empty()) spec_error(cr.key_path("paths"), "required (non-empty)");
    cr.finish();
  }

  if (const Json* b = r.get("backup")) {
    ObjectReader br(*b, r.key_path("backup"));
    pm.backup.enabled = true;
    pm.backup.paths = parse_path_index_array(br, "paths", n_paths);
    if (pm.backup.paths.empty()) spec_error(br.key_path("paths"), "required (non-empty)");
    pm.backup.promote_after_rtos = br.integer("promote_after_rtos", pm.backup.promote_after_rtos);
    if (pm.backup.promote_after_rtos <= 0) {
      spec_error(br.key_path("promote_after_rtos"), "must be > 0");
    }
    br.finish();
  }

  r.finish();
  return pm;
}

RecordSpec parse_record(const Json& j, const std::string& path) {
  ObjectReader r(j, path);
  RecordSpec rec;
  rec.collect_traces = r.boolean("collect_traces", rec.collect_traces);
  rec.summarize = r.boolean("summarize", rec.summarize);
  r.finish();
  return rec;
}

}  // namespace

ScenarioSpec scenario_from_json(const Json& j) {
  MPS_PROF_SCOPE(kSpecParse);
  MPS_PROF_MEM_SCOPE(kSpec);
  ObjectReader r(j, "");
  ScenarioSpec s;
  s.name = r.str("name", "");

  const Json* paths = r.get("paths");
  if (paths == nullptr) spec_error("paths", "required");
  if (!paths->is_array() || paths->items().empty()) {
    spec_error("paths", "expected a non-empty array");
  }
  for (std::size_t i = 0; i < paths->items().size(); ++i) {
    s.paths.push_back(parse_path(paths->items()[i], "paths[" + std::to_string(i) + "]"));
  }

  s.subflows_per_path = r.integer("subflows_per_path", s.subflows_per_path);
  if (s.subflows_per_path <= 0) spec_error("subflows_per_path", "must be > 0");
  s.scheduler = r.str("scheduler", s.scheduler);
  try {
    (void)scheduler_factory(s.scheduler);
  } catch (const std::invalid_argument& e) {
    spec_error("scheduler", e.what());
  }
  if (const Json* c = r.get("conn")) s.conn = parse_conn(*c, "conn");
  if (const Json* w = r.get("workload")) s.workload = parse_workload(*w, "workload");
  if (const Json* t = r.get("traffic")) {
    s.traffic = parse_traffic(*t, "traffic", s.paths.size());
  }
  if (const Json* pm = r.get("path_manager")) {
    s.path_manager = parse_path_manager(*pm, "path_manager", s.paths.size());
    if (s.traffic.enabled) {
      spec_error("path_manager", "not supported together with a traffic block");
    }
  }
  const std::int64_t seed = r.integer("seed", static_cast<std::int64_t>(s.seed));
  if (seed < 0) spec_error("seed", "must be >= 0");
  s.seed = static_cast<std::uint64_t>(seed);
  const std::int64_t trace_seed =
      r.integer("trace_seed", static_cast<std::int64_t>(s.trace_seed));
  if (trace_seed < 0) spec_error("trace_seed", "must be >= 0");
  s.trace_seed = static_cast<std::uint64_t>(trace_seed);
  if (const Json* rec = r.get("record")) s.record = parse_record(*rec, "record");
  r.finish();
  return s;
}

namespace {

Json variation_to_json(const VariationSpec& v) {
  Json j = Json::object();
  j.set("kind", Json::string(variation_kind_name(v.kind)));
  if (!v.schedule.empty()) {
    Json arr = Json::array();
    for (const RatePoint& p : v.schedule) {
      Json pt = Json::object();
      pt.set("at_s", Json::number(p.at_s));
      pt.set("mbps", Json::number(p.mbps));
      arr.push_back(std::move(pt));
    }
    j.set("schedule", std::move(arr));
  }
  if (!v.levels_mbps.empty()) {
    Json arr = Json::array();
    for (double l : v.levels_mbps) arr.push_back(Json::number(l));
    j.set("levels_mbps", std::move(arr));
  }
  j.set("mean_interval_s", Json::number(v.mean_interval_s));
  j.set("jitter_frac", Json::number(v.jitter_frac));
  j.set("jitter_interval_s", Json::number(v.jitter_interval_s));
  return j;
}

Json faults_to_json(const FaultSpec& f) {
  Json j = Json::object();
  if (f.gilbert_elliott.enabled) {
    Json ge = Json::object();
    ge.set("p_good_bad", Json::number(f.gilbert_elliott.p_good_bad));
    ge.set("p_bad_good", Json::number(f.gilbert_elliott.p_bad_good));
    ge.set("loss_good", Json::number(f.gilbert_elliott.loss_good));
    ge.set("loss_bad", Json::number(f.gilbert_elliott.loss_bad));
    j.set("gilbert_elliott", std::move(ge));
  }
  if (!f.outages.empty()) {
    Json arr = Json::array();
    for (const OutageSpec& w : f.outages) {
      Json o = Json::object();
      o.set("at_s", Json::number(w.at_s));
      o.set("for_s", Json::number(w.for_s));
      arr.push_back(std::move(o));
    }
    j.set("outages", std::move(arr));
  }
  if (f.flap.enabled) {
    Json fl = Json::object();
    fl.set("period_s", Json::number(f.flap.period_s));
    fl.set("down_s", Json::number(f.flap.down_s));
    fl.set("start_s", Json::number(f.flap.start_s));
    j.set("flap", std::move(fl));
  }
  if (f.reorder.enabled) {
    Json re = Json::object();
    re.set("prob", Json::number(f.reorder.prob));
    re.set("delay_ms", Json::number(f.reorder.delay_ms));
    re.set("jitter_ms", Json::number(f.reorder.jitter_ms));
    j.set("reorder", std::move(re));
  }
  return j;
}

Json path_to_json(const PathSpec& p) {
  Json j = Json::object();
  j.set("profile", Json::string(path_profile_name(p.profile)));
  j.set("name", Json::string(p.name));
  j.set("rate_mbps", Json::number(p.rate_mbps));
  j.set("rtt_ms", Json::number(p.rtt_ms));
  j.set("queue_packets", Json::number(p.queue_packets));
  j.set("loss_rate", Json::number(p.loss_rate));
  j.set("up_mbps", Json::number(p.up_mbps));
  if (p.variation.kind != VariationKind::kNone) {
    j.set("variation", variation_to_json(p.variation));
  }
  if (p.faults.enabled()) {
    j.set("faults", faults_to_json(p.faults));
  }
  return j;
}

}  // namespace

Json scenario_to_json(const ScenarioSpec& s) {
  Json j = Json::object();
  if (!s.name.empty()) j.set("name", Json::string(s.name));
  Json paths = Json::array();
  for (const PathSpec& p : s.paths) paths.push_back(path_to_json(p));
  j.set("paths", std::move(paths));
  j.set("subflows_per_path", Json::number(s.subflows_per_path));
  j.set("scheduler", Json::string(s.scheduler));

  Json conn = Json::object();
  conn.set("cc", Json::string(s.conn.cc));
  conn.set("idle_cwnd_reset", Json::boolean(s.conn.idle_cwnd_reset));
  conn.set("opportunistic_rtx", Json::boolean(s.conn.opportunistic_rtx));
  conn.set("penalization", Json::boolean(s.conn.penalization));
  conn.set("staging_bytes", Json::number(s.conn.staging_bytes));
  j.set("conn", std::move(conn));

  Json w = Json::object();
  w.set("kind", Json::string(workload_kind_name(s.workload.kind)));
  w.set("video_s", Json::number(s.workload.video_s));
  w.set("abr", Json::string(s.workload.abr));
  w.set("bytes", Json::number(s.workload.bytes));
  w.set("runs", Json::number(s.workload.runs));
  j.set("workload", std::move(w));

  if (s.traffic.enabled) {
    Json t = Json::object();
    t.set("flows", Json::number(s.traffic.flows));
    t.set("arrival_rate_per_s", Json::number(s.traffic.arrival_rate_per_s));
    t.set("max_arrivals", Json::number(s.traffic.max_arrivals));
    t.set("flow_bytes", Json::number(s.traffic.flow_bytes));
    t.set("size_dist", Json::string(s.traffic.size_dist));
    t.set("pareto_alpha", Json::number(s.traffic.pareto_alpha));
    t.set("duration_s", Json::number(s.traffic.duration_s));
    if (!s.traffic.cross.empty()) {
      Json arr = Json::array();
      for (const CrossTrafficSpec& x : s.traffic.cross) {
        Json c = Json::object();
        c.set("path", Json::number(x.path));
        c.set("flows", Json::number(x.flows));
        c.set("start_s", Json::number(x.start_s));
        arr.push_back(std::move(c));
      }
      t.set("cross", std::move(arr));
    }
    j.set("traffic", std::move(t));
  }

  if (s.path_manager.enabled) {
    const PathManagerSpec& pm = s.path_manager;
    Json p = Json::object();
    p.set("tick_ms", Json::number(pm.tick_ms));
    p.set("drain_timeout_s", Json::number(pm.drain_timeout_s));
    p.set("join_delay_rtt", Json::boolean(pm.join_delay_rtt));
    if (!pm.events.empty()) {
      Json arr = Json::array();
      for (const PathEventSpec& e : pm.events) {
        Json ev = Json::object();
        ev.set("at_s", Json::number(e.at_s));
        ev.set("action", Json::string(e.action));
        ev.set("path", Json::number(e.path));
        ev.set("mode", Json::string(e.mode));
        arr.push_back(std::move(ev));
      }
      p.set("events", std::move(arr));
    }
    if (pm.cap.enabled) {
      Json c = Json::object();
      c.set("max_subflows", Json::number(pm.cap.max_subflows));
      c.set("bytes_per_subflow", Json::number(pm.cap.bytes_per_subflow));
      Json arr = Json::array();
      for (std::int64_t idx : pm.cap.paths) arr.push_back(Json::number(idx));
      c.set("paths", std::move(arr));
      p.set("cap", std::move(c));
    }
    if (pm.backup.enabled) {
      Json b = Json::object();
      Json arr = Json::array();
      for (std::int64_t idx : pm.backup.paths) arr.push_back(Json::number(idx));
      b.set("paths", std::move(arr));
      b.set("promote_after_rtos", Json::number(pm.backup.promote_after_rtos));
      p.set("backup", std::move(b));
    }
    j.set("path_manager", std::move(p));
  }

  j.set("seed", Json::number(static_cast<std::int64_t>(s.seed)));
  j.set("trace_seed", Json::number(static_cast<std::int64_t>(s.trace_seed)));

  Json rec = Json::object();
  rec.set("collect_traces", Json::boolean(s.record.collect_traces));
  rec.set("summarize", Json::boolean(s.record.summarize));
  j.set("record", std::move(rec));
  return j;
}

ScenarioSpec parse_scenario(const std::string& text) {
  Json j;
  try {
    j = Json::parse(text);
  } catch (const JsonError& e) {
    throw std::invalid_argument(std::string("scenario spec: ") + e.what());
  }
  return scenario_from_json(j);
}

std::string serialize_scenario(const ScenarioSpec& spec, int indent) {
  return scenario_to_json(spec).dump(indent) + "\n";
}

}  // namespace mps
