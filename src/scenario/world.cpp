#include "scenario/world.h"

#include <cmath>

#include "net/wild.h"
#include "obs/prof.h"
#include "obs/recorder.h"
#include "tcp/cc_registry.h"

namespace mps {

World::World(WorldConfig config) : config_(std::move(config)), rng_(config_.seed) {
  sim_.set_recorder(config_.recorder);
  for (const PathConfig& pc : config_.paths) {
    paths_.push_back(std::make_unique<Path>(sim_, pc));
  }
  for (auto& p : paths_) p->down().set_rng(rng_.fork());
  for (auto& p : paths_) down_mux_.attach_to(p->down());
  for (auto& p : paths_) up_mux_.attach_to(p->up());
}

std::unique_ptr<Connection> World::make_connection(const SchedulerFactory& scheduler) {
  MPS_PROF_MEM_SCOPE(kConn);
  ConnectionConfig cc = config_.conn;
  cc.conn_id = next_conn_id_++;

  std::vector<Path*> paths;
  for (auto& p : paths_) {
    for (int i = 0; i < config_.subflows_per_path; ++i) paths.push_back(p.get());
  }

  return std::make_unique<Connection>(sim_, cc, std::move(paths), scheduler(), down_mux_,
                                      up_mux_);
}

std::unique_ptr<Connection> World::make_connection_on(
    const std::vector<std::size_t>& path_indices, const SchedulerFactory& scheduler) {
  MPS_PROF_MEM_SCOPE(kConn);
  ConnectionConfig cc = config_.conn;
  cc.conn_id = next_conn_id_++;

  std::vector<Path*> paths;
  for (std::size_t idx : path_indices) paths.push_back(paths_[idx].get());

  return std::make_unique<Connection>(sim_, cc, std::move(paths), scheduler(), down_mux_,
                                      up_mux_);
}

namespace {

Duration duration_from_ms(double ms) {
  return Duration::nanos(std::llround(ms * 1e6));
}

FaultConfig resolve_faults(const FaultSpec& f) {
  FaultConfig c;
  if (f.gilbert_elliott.enabled) {
    c.gilbert_elliott.enabled = true;
    c.gilbert_elliott.p_good_bad = f.gilbert_elliott.p_good_bad;
    c.gilbert_elliott.p_bad_good = f.gilbert_elliott.p_bad_good;
    c.gilbert_elliott.loss_good = f.gilbert_elliott.loss_good;
    c.gilbert_elliott.loss_bad = f.gilbert_elliott.loss_bad;
  }
  for (const OutageSpec& w : f.outages) {
    c.outages.push_back(OutageWindow{Duration::from_seconds(w.at_s),
                                     Duration::from_seconds(w.for_s)});
  }
  if (f.flap.enabled) {
    c.flap.enabled = true;
    c.flap.period = Duration::from_seconds(f.flap.period_s);
    c.flap.down_time = Duration::from_seconds(f.flap.down_s);
    c.flap.phase = Duration::from_seconds(f.flap.start_s);
  }
  if (f.reorder.enabled) {
    c.reorder.enabled = true;
    c.reorder.prob = f.reorder.prob;
    c.reorder.delay = duration_from_ms(f.reorder.delay_ms);
    c.reorder.jitter = duration_from_ms(f.reorder.jitter_ms);
  }
  return c;
}

// Run length used to size generated bandwidth traces: the video length for
// streaming, the runners' safety caps otherwise.
Duration trace_duration(const WorkloadSpec& w) {
  switch (w.kind) {
    case WorkloadKind::kStream: return Duration::from_seconds(w.video_s);
    case WorkloadKind::kDownload: return Duration::seconds(600);
    case WorkloadKind::kWeb: return Duration::seconds(3600);
  }
  return Duration::seconds(600);
}

PathConfig resolve_path(const PathSpec& p, bool* pure) {
  PathConfig c;
  switch (p.profile) {
    case PathProfile::kWifi: c = wifi_profile(Rate::mbps(p.rate_mbps)); break;
    case PathProfile::kLte: c = lte_profile(Rate::mbps(p.rate_mbps)); break;
    case PathProfile::kCustom:
      c.down_rate = Rate::mbps(p.rate_mbps);
      break;
  }
  // An unmodified profile path must resolve through wifi_profile()/
  // lte_profile() alone — the runners then reconstruct it from the rate
  // literal exactly as the historical parameter structs did.
  const PathConfig defaults = c;
  *pure = p.profile != PathProfile::kCustom && p.name == defaults.name &&
          duration_from_ms(p.rtt_ms) == defaults.rtt_base &&
          p.queue_packets == static_cast<std::int64_t>(defaults.queue_packets) &&
          p.loss_rate == defaults.loss_rate &&
          Rate::mbps(p.up_mbps) == defaults.up_rate && !p.faults.enabled();
  c.name = p.name;
  c.rtt_base = duration_from_ms(p.rtt_ms);
  c.queue_packets = static_cast<std::size_t>(p.queue_packets);
  c.loss_rate = p.loss_rate;
  c.up_rate = Rate::mbps(p.up_mbps);
  c.fault = resolve_faults(p.faults);
  return c;
}

bool generates_trace(VariationKind k) {
  return k == VariationKind::kRandom || k == VariationKind::kJitter;
}

}  // namespace

WorldBuilder::WorldBuilder(ScenarioSpec spec) : spec_(std::move(spec)) {
  paths_.reserve(spec_.paths.size());
  pure_.reserve(spec_.paths.size());
  for (const PathSpec& p : spec_.paths) {
    bool pure = false;
    paths_.push_back(resolve_path(p, &pure));
    pure_.push_back(pure);
  }

  // Generated traces: one master RNG, forked once per varied path in path
  // order, then each trace generated from its fork. This matches the bench
  // drivers (e.g. Fig. 16/22), which fork wifi then lte before generating.
  traces_.resize(spec_.paths.size());
  bool any_generated = false;
  for (const PathSpec& p : spec_.paths) any_generated |= generates_trace(p.variation.kind);
  std::vector<Rng> forks;
  if (any_generated) {
    Rng master(spec_.trace_seed);
    for (const PathSpec& p : spec_.paths) {
      if (generates_trace(p.variation.kind)) forks.push_back(master.fork());
    }
  }

  // Competing-traffic runs are bounded by the traffic block's duration, not
  // the (ignored) workload.
  const Duration total = spec_.traffic.enabled
                             ? Duration::from_seconds(spec_.traffic.duration_s)
                             : trace_duration(spec_.workload);
  std::size_t fork_idx = 0;
  for (std::size_t i = 0; i < spec_.paths.size(); ++i) {
    const VariationSpec& v = spec_.paths[i].variation;
    switch (v.kind) {
      case VariationKind::kNone:
        break;
      case VariationKind::kSchedule:
        for (const RatePoint& pt : v.schedule) {
          traces_[i].push_back({Duration::from_seconds(pt.at_s), Rate::mbps(pt.mbps)});
        }
        break;
      case VariationKind::kRandom: {
        std::vector<Rate> levels;
        for (double l : v.levels_mbps) levels.push_back(Rate::mbps(l));
        traces_[i] = make_random_bandwidth_trace(
            forks[fork_idx++], levels, Duration::from_seconds(v.mean_interval_s), total);
        // Section 5.3 semantics: the path starts at the trace's first level
        // (reconstructed from the Mbps label, as the bench drivers do).
        paths_[i].down_rate = Rate::mbps(traces_[i].front().rate.to_mbps());
        break;
      }
      case VariationKind::kJitter:
        traces_[i] = make_wild_jitter_trace(forks[fork_idx++], paths_[i].down_rate,
                                            v.jitter_frac,
                                            Duration::from_seconds(v.jitter_interval_s), total);
        break;
    }
  }
}

WorldBuilder::~WorldBuilder() = default;

ConnectionConfig WorldBuilder::conn_config() const {
  ConnectionConfig c;
  c.cc = cc_kind_from_name(spec_.conn.cc);
  c.idle_cwnd_reset = spec_.conn.idle_cwnd_reset;
  c.opportunistic_retransmission = spec_.conn.opportunistic_rtx;
  c.penalization = spec_.conn.penalization;
  if (spec_.conn.staging_bytes > 0) {
    c.subflow_staging_bytes = static_cast<std::uint64_t>(spec_.conn.staging_bytes);
  }
  return c;
}

WorldConfig WorldBuilder::world_config(FlightRecorder* recorder) const {
  WorldConfig w;
  w.paths = paths_;
  w.subflows_per_path = static_cast<int>(spec_.subflows_per_path);
  w.conn = conn_config();
  w.seed = spec_.seed;
  w.recorder = recorder;
  return w;
}

std::unique_ptr<World> WorldBuilder::build(FlightRecorder* recorder) {
  MPS_PROF_SCOPE(kWorldBuild);
  MPS_PROF_MEM_SCOPE(kWorld);
  recorder_ = recorder;
  if (recorder_ == nullptr && (spec_.record.collect_traces || spec_.record.summarize)) {
    if (owned_recorder_ == nullptr) owned_recorder_ = std::make_unique<FlightRecorder>();
    recorder_ = owned_recorder_.get();
  }
  if (recorder_ != nullptr && spec_.record.collect_traces) {
    recorder_->metrics().set_keep_series(true);
  }
  return std::make_unique<World>(world_config(recorder_));
}

PathManagerConfig path_manager_config_from_spec(const PathManagerSpec& spec) {
  PathManagerConfig c;
  c.tick = Duration::from_seconds(spec.tick_ms * 1e-3);
  c.drain_timeout = Duration::from_seconds(spec.drain_timeout_s);
  c.join_delay_rtt = spec.join_delay_rtt;
  for (const PathEventSpec& e : spec.events) {
    PathManagerConfig::TimedAction a;
    a.at = TimePoint::origin() + Duration::from_seconds(e.at_s);
    a.op = e.action == "add" ? PathManagerConfig::TimedAction::Op::kAdd
                             : PathManagerConfig::TimedAction::Op::kRemove;
    a.path = static_cast<std::size_t>(e.path);
    a.mode = e.mode == "abandon" ? Connection::TeardownMode::kAbandon
                                 : Connection::TeardownMode::kDrain;
    c.actions.push_back(a);
  }
  if (spec.backup.enabled) {
    for (std::int64_t p : spec.backup.paths) {
      c.backup_paths.push_back(static_cast<std::size_t>(p));
    }
    c.promote_after_rtos = static_cast<int>(spec.backup.promote_after_rtos);
  }
  if (spec.cap.enabled) {
    c.max_subflows = static_cast<int>(spec.cap.max_subflows);
    c.bytes_per_subflow = static_cast<std::uint64_t>(spec.cap.bytes_per_subflow);
    for (std::int64_t p : spec.cap.paths) {
      c.growth_paths.push_back(static_cast<std::size_t>(p));
    }
  }
  return c;
}

std::vector<std::size_t> initial_path_indices(const PathManagerSpec& spec,
                                              std::size_t n_paths) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n_paths; ++i) {
    bool backup = false;
    for (std::int64_t b : spec.backup.paths) {
      if (static_cast<std::size_t>(b) == i) { backup = true; break; }
    }
    if (!backup) out.push_back(i);
  }
  return out;
}

}  // namespace mps
