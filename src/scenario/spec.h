// ScenarioSpec: the declarative description of one experiment — paths (with
// optional bandwidth-variation models), subflow topology, scheduler, CC,
// workload, seeds, and recording options. A spec is plain data: it can be
// written as JSON (scenarios/*.json), parsed, edited, serialized back
// (field-exact round trip), and handed to WorldBuilder (scenario/world.h)
// or the exp runners (exp/scenario_run.h) to execute.
//
// Numeric convention: every rate is stored in Mbps and every time in
// seconds/milliseconds as the *original literal*, exactly as the paper
// states it. Conversion to the simulator's Rate/Duration types happens once
// at build time. Specs never store values recovered from Rate::to_mbps() of
// a computed Rate — that conversion is not bit-exact, and byte-identical
// reproduction of the bench outputs depends on feeding the runners the same
// double literals the benches use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/json.h"

namespace mps {

// Which built-in technology profile a path starts from. kWifi/kLte apply
// wifi_profile()/lte_profile() defaults (net/path.h); kCustom starts from a
// bare PathConfig.
enum class PathProfile { kWifi, kLte, kCustom };

enum class VariationKind {
  kNone,      // constant rate
  kSchedule,  // explicit (at_s, mbps) schedule
  kRandom,    // Section 5.3: rates drawn from levels_mbps at Exp(mean) intervals
  kJitter,    // Section 6: nominal rate x U[1-frac, 1+frac] at Exp(interval)
};

struct RatePoint {
  double at_s = 0.0;
  double mbps = 0.0;

  friend bool operator==(const RatePoint&, const RatePoint&) = default;
};

struct VariationSpec {
  VariationKind kind = VariationKind::kNone;
  std::vector<RatePoint> schedule;    // kSchedule
  std::vector<double> levels_mbps;    // kRandom
  double mean_interval_s = 40.0;      // kRandom (paper Section 5.3 uses 40 s)
  double jitter_frac = 0.2;           // kJitter
  double jitter_interval_s = 5.0;     // kJitter

  friend bool operator==(const VariationSpec&, const VariationSpec&) = default;
};

// Link impairment models for a path's downlink (fault/fault.h). Each
// sub-block is enabled by its presence in the JSON; a default-constructed
// FaultSpec (enabled() == false) resolves to a fault-free link that draws
// nothing from the loss RNG stream.
struct GilbertElliottSpec {
  bool enabled = false;
  double p_good_bad = 0.0;   // per-packet P(good -> bad)
  double p_bad_good = 0.25;  // per-packet P(bad -> good)
  double loss_good = 0.0;    // drop probability in the good state
  double loss_bad = 0.5;     // drop probability in the bad state

  friend bool operator==(const GilbertElliottSpec&, const GilbertElliottSpec&) = default;
};

struct OutageSpec {
  double at_s = 0.0;   // window start
  double for_s = 0.0;  // window length; all packets dropped in [at_s, at_s+for_s)

  friend bool operator==(const OutageSpec&, const OutageSpec&) = default;
};

struct FlapSpec {
  bool enabled = false;
  double period_s = 10.0;  // cycle length
  double down_s = 1.0;     // down-time at the start of each cycle
  double start_s = 0.0;    // offset of the first down edge

  friend bool operator==(const FlapSpec&, const FlapSpec&) = default;
};

struct ReorderSpec {
  bool enabled = false;
  double prob = 0.0;       // per-packet P(extra delay)
  double delay_ms = 20.0;  // base extra propagation delay
  double jitter_ms = 10.0; // plus U[0, jitter_ms)

  friend bool operator==(const ReorderSpec&, const ReorderSpec&) = default;
};

struct FaultSpec {
  GilbertElliottSpec gilbert_elliott;
  std::vector<OutageSpec> outages;
  FlapSpec flap;
  ReorderSpec reorder;

  bool enabled() const {
    return gilbert_elliott.enabled || !outages.empty() || flap.enabled || reorder.enabled;
  }

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

struct PathSpec {
  PathProfile profile = PathProfile::kWifi;
  // Fields below default from the profile at parse time (wifi: "wifi",
  // 16 ms; lte: "lte", 80 ms; custom: "path", 20 ms; all: queue 40 packets,
  // loss 0, uplink 100 Mbps), so a parsed spec is fully explicit.
  std::string name = "wifi";
  double rate_mbps = 10.0;  // regulated downlink; under kRandom the trace's
                            // first level supersedes it as the initial rate
  double rtt_ms = 16.0;
  std::int64_t queue_packets = 40;
  double loss_rate = 0.0;
  double up_mbps = 100.0;
  VariationSpec variation;
  FaultSpec faults;  // downlink impairments ("faults" JSON block)

  friend bool operator==(const PathSpec&, const PathSpec&) = default;
};

// Connection-template knobs the paper's ablations exercise. Everything else
// in ConnectionConfig keeps its library default.
struct ConnSpec {
  std::string cc = "lia";  // tcp/cc_registry name
  bool idle_cwnd_reset = true;
  bool opportunistic_rtx = true;
  bool penalization = true;
  std::int64_t staging_bytes = 0;  // 0 = library default

  friend bool operator==(const ConnSpec&, const ConnSpec&) = default;
};

enum class WorkloadKind { kStream, kDownload, kWeb };

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kStream;
  // kStream
  double video_s = 180.0;
  std::string abr = "buffer";  // "buffer" | "rate"
  // kDownload
  std::int64_t bytes = 512 * 1024;
  // Seeded repetitions: streaming averages, download samples, web page loads.
  std::int64_t runs = 1;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

struct RecordSpec {
  bool collect_traces = false;  // CWND + send-buffer time series
  bool summarize = false;       // print the flight-recorder report after a run

  friend bool operator==(const RecordSpec&, const RecordSpec&) = default;
};

// One group of single-path TCP cross-traffic flows loading a bottleneck
// (traffic/engine.h). Cross flows are plain bulk senders pinned to a single
// path; they never complete — their goodput is measured over the run.
struct CrossTrafficSpec {
  std::int64_t path = 0;   // index into ScenarioSpec::paths
  std::int64_t flows = 1;  // concurrent bulk flows on that path
  double start_s = 0.0;    // when the group starts sending

  friend bool operator==(const CrossTrafficSpec&, const CrossTrafficSpec&) = default;
};

// Competing-traffic model: N concurrent MPTCP flows over the shared paths,
// with optional Poisson connection churn and single-path cross traffic.
// Enabled by the presence of a "traffic" JSON block; when enabled the
// workload block is ignored and the run is driven by traffic/engine.h.
struct TrafficSpec {
  bool enabled = false;
  std::int64_t flows = 1;            // MPTCP flows present at t = 0
  double arrival_rate_per_s = 0.0;   // Poisson churn arrivals (0 = no churn)
  std::int64_t max_arrivals = 1024;  // hard cap on churn arrivals
  std::int64_t flow_bytes = 256 * 1024;  // size parameter (mean for dists)
  std::string size_dist = "fixed";   // "fixed" | "exponential" | "pareto"
  double pareto_alpha = 1.5;         // shape for "pareto" (must be > 1)
  double duration_s = 10.0;          // run length; churn arrivals stop here
  std::vector<CrossTrafficSpec> cross;

  friend bool operator==(const TrafficSpec&, const TrafficSpec&) = default;
};

// One scripted subflow add/remove (mptcp/path_manager.h timed actions).
struct PathEventSpec {
  double at_s = 0.0;
  std::string action = "add";  // "add" | "remove"
  std::int64_t path = 0;       // index into ScenarioSpec::paths
  std::string mode = "drain";  // "remove" teardown: "drain" | "abandon"

  friend bool operator==(const PathEventSpec&, const PathEventSpec&) = default;
};

// Cap-N growth sub-block (htsim subflow_control shape). Enabled by presence.
struct SubflowCapSpec {
  bool enabled = false;
  std::int64_t max_subflows = 4;
  std::int64_t bytes_per_subflow = 64 * 1024;
  std::vector<std::int64_t> paths;  // round-robin growth targets

  friend bool operator==(const SubflowCapSpec&, const SubflowCapSpec&) = default;
};

// Backup-promotion sub-block. Enabled by presence.
struct BackupSpec {
  bool enabled = false;
  std::vector<std::int64_t> paths;   // held in reserve, no subflow at start
  std::int64_t promote_after_rtos = 2;

  friend bool operator==(const BackupSpec&, const BackupSpec&) = default;
};

// Dynamic path management (mptcp/path_manager.h). Enabled by the presence of
// a "path_manager" JSON block. Paths listed in backup.paths start without a
// subflow; everything else gets subflows_per_path as usual.
struct PathManagerSpec {
  bool enabled = false;
  double tick_ms = 10.0;
  double drain_timeout_s = 2.0;
  bool join_delay_rtt = true;
  std::vector<PathEventSpec> events;  // must be sorted by at_s
  SubflowCapSpec cap;
  BackupSpec backup;

  friend bool operator==(const PathManagerSpec&, const PathManagerSpec&) = default;
};

struct ScenarioSpec {
  std::string name;  // free-form label, not used by the builder
  std::vector<PathSpec> paths;  // construction (and RNG fork) order
  std::int64_t subflows_per_path = 1;
  std::string scheduler = "default";  // sched/registry name
  ConnSpec conn;
  WorkloadSpec workload;
  TrafficSpec traffic;  // competing-traffic block; workload ignored when enabled
  PathManagerSpec path_manager;  // subflow churn block; absent = static topology
  std::uint64_t seed = 1;
  // Master seed for generated bandwidth traces (kRandom/kJitter): one
  // Rng(trace_seed) is forked once per varied path, in path order.
  std::uint64_t trace_seed = 0;
  RecordSpec record;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

// Convenience constructors for the common two-path testbed.
PathSpec wifi_path(double rate_mbps);
PathSpec lte_path(double rate_mbps);

// --- enum <-> name ----------------------------------------------------------
const char* path_profile_name(PathProfile p);
const char* variation_kind_name(VariationKind k);
const char* workload_kind_name(WorkloadKind k);

// --- JSON binding -----------------------------------------------------------
// Strict: unknown or mistyped keys throw std::invalid_argument naming the
// offending key path (e.g. "paths[1].variation.levels_mbps").
ScenarioSpec scenario_from_json(const Json& j);
Json scenario_to_json(const ScenarioSpec& spec);

// Text front ends; parse_scenario also converts JsonError into
// std::invalid_argument. serialize_scenario is round-trip stable:
// parse(serialize(s)) == s, field-exact.
ScenarioSpec parse_scenario(const std::string& text);
std::string serialize_scenario(const ScenarioSpec& spec, int indent = 2);

}  // namespace mps
