#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/prof.h"

namespace mps {

EventId Simulator::at(TimePoint when, Callback fn) {
  if (when < now_) {
    throw std::logic_error("Simulator::at: scheduling into the past");
  }
  return queue_.schedule(when, std::move(fn));
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (!queue_.empty()) {
    const TimePoint next = queue_.next_time();
    if (next > deadline) break;
    EventQueue::Fired fired;
    {
      MPS_PROF_SCOPE(kEventPop);
      fired = queue_.pop();
    }
    now_ = fired.when;
    {
      MPS_PROF_SCOPE(kEventDispatch);
      fired.fn();
    }
    ++processed_;
    ++n;
    if (heartbeat_ != nullptr && --heartbeat_->countdown == 0) [[unlikely]] {
      heartbeat_poll();
    }
    if (stop_requested_) break;
  }
  // The clock advances to the deadline even if the queue drained earlier,
  // so wall-clock-style measurements spanning idle tails stay correct.
  if (!deadline.is_never() && now_ < deadline && !stop_requested_) now_ = deadline;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  EventQueue::Fired fired;
  {
    MPS_PROF_SCOPE(kEventPop);
    fired = queue_.pop();
  }
  assert(fired.when >= now_);
  now_ = fired.when;
  {
    MPS_PROF_SCOPE(kEventDispatch);
    fired.fn();
  }
  ++processed_;
  return true;
}

void Simulator::set_heartbeat(double interval_s, HeartbeatFn fn) {
  if (interval_s <= 0.0 || !fn) {
    heartbeat_.reset();
    return;
  }
  auto hb = std::make_unique<Heartbeat>();
  hb->interval_s = interval_s;
  hb->fn = std::move(fn);
  hb->attach_wall = hb->last_wall = std::chrono::steady_clock::now();
  hb->last_events = processed_;
  hb->last_sim = now_;
  heartbeat_ = std::move(hb);
}

void Simulator::heartbeat_poll() {
  Heartbeat& hb = *heartbeat_;
  hb.countdown = kHeartbeatStride;
  const auto now_wall = std::chrono::steady_clock::now();
  const double since_s = std::chrono::duration<double>(now_wall - hb.last_wall).count();
  if (since_s < hb.interval_s) return;

  HeartbeatStats stats;
  stats.events = processed_;
  stats.events_per_sec =
      since_s > 0.0 ? static_cast<double>(processed_ - hb.last_events) / since_s : 0.0;
  stats.sim_s = (now_ - TimePoint::origin()).to_seconds();
  stats.wall_s = std::chrono::duration<double>(now_wall - hb.attach_wall).count();
  stats.sim_per_wall = since_s > 0.0 ? (now_ - hb.last_sim).to_seconds() / since_s : 0.0;

  hb.last_wall = now_wall;
  hb.last_events = processed_;
  hb.last_sim = now_;
  hb.fn(stats);
}

}  // namespace mps
