#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

namespace mps {

EventId Simulator::at(TimePoint when, Callback fn) {
  if (when < now_) {
    throw std::logic_error("Simulator::at: scheduling into the past");
  }
  return queue_.schedule(when, std::move(fn));
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t n = 0;
  stop_requested_ = false;
  while (!queue_.empty()) {
    const TimePoint next = queue_.next_time();
    if (next > deadline) break;
    auto fired = queue_.pop();
    now_ = fired.when;
    fired.fn();
    ++processed_;
    ++n;
    if (stop_requested_) break;
  }
  // The clock advances to the deadline even if the queue drained earlier,
  // so wall-clock-style measurements spanning idle tails stay correct.
  if (!deadline.is_never() && now_ < deadline && !stop_requested_) now_ = deadline;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  assert(fired.when >= now_);
  now_ = fired.when;
  fired.fn();
  ++processed_;
  return true;
}

}  // namespace mps
