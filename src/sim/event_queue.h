// Discrete-event engine primitives: the pending-event queue.
//
// Events scheduled at the same timestamp fire in scheduling order (FIFO),
// which keeps runs deterministic regardless of container internals.
//
// Storage is a generation-stamped slot arena with two homes for pending
// events, selected transparently per event:
//
//  - A hierarchical timer wheel (3 levels x 256 slots, 2^17 ns ~ 131 us per
//    tick) absorbs the dense near-future churn: RTO restarts, RACK timers,
//    link transmissions, churn arrivals. schedule and cancel are O(1) bucket
//    operations with no comparisons against unrelated events; a bucket is
//    sorted lazily, once, when the cursor reaches it.
//  - The indexed binary min-heap keeps events beyond the wheel horizon
//    (different 2^24-tick window, ~36 minutes) — sparse far-future work like
//    scenario phase changes — with O(log n) schedule/cancel.
//
// pop() compares the wheel's earliest (when, seq) against the heap top, so
// the merged fire order is the exact global (when, seq) order regardless of
// which structure holds an event; goldens are byte-identical to the
// heap-only queue by construction. Level placement uses the shared-prefix
// rule (an event goes to the deepest level whose window contains both it and
// the cursor), so no level ever wraps and cascades only move events downward
// as the cursor enters their window.
//
// cancel() removes the entry immediately in both homes — no tombstones, and
// size()/empty() are exact by construction. Stale ids are rejected by the
// slot's generation stamp, making cancel-after-fire and cancel-after-reuse
// safe no-ops.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/callback.h"
#include "util/time.h"

namespace mps {

using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue();

  // Schedules `fn` at absolute time `when`. Returns an id usable with
  // cancel(). Owners must cancel events capturing them before destruction
  // (see Timer for the RAII wrapper).
  EventId schedule(TimePoint when, Callback fn);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op.
  void cancel(EventId id);

  bool empty() const { return heap_.empty() && wheel_count_ == 0; }
  std::size_t size() const { return heap_.size() + wheel_count_; }

  // Time of the earliest live event; TimePoint::never() when empty.
  // Non-const: locating the wheel minimum may advance the cursor, cascade a
  // bucket down a level, or sort the reached bucket (none of which changes
  // the event set or fire order).
  TimePoint next_time();

  struct Fired {
    TimePoint when;
    Callback fn;
  };
  // Pops and returns the earliest live event. Precondition: !empty().
  Fired pop();

  // --- snapshot-and-fork support (exp/snapshot.h) ---------------------------
  // Copies the entire queue structure from `src` — slot arena (when, seq,
  // generation, position), heap order, wheel buckets, occupancy bitmaps and
  // cursor — but leaves every callback empty. Closures capture raw owner
  // pointers and cannot be relocated generically, so each owner of a pending
  // event must re-install its callback with rebind() using the EventId it
  // already holds; ids issued by `src` stay valid against this queue, and the
  // global (when, seq) fire order is preserved verbatim. Any previous content
  // of this queue is discarded.
  void clone_structure_from(const EventQueue& src);

  // Re-installs the callback of a live cloned event. Returns false when `id`
  // does not name a live slot (fired, cancelled, or stale generation).
  bool rebind(EventId id, Callback fn);

  // Appends (id, when) for every live event whose callback is empty. After a
  // fork's rebind pass this must find nothing: a leftover means some owner's
  // pending event was never relocated and still points at the source world.
  void collect_unbound(std::vector<std::pair<EventId, TimePoint>>& out) const;

 private:
  static constexpr std::uint32_t kNoPos = ~std::uint32_t{0};

  // Wheel geometry. tick = 2^17 ns ~ 131 us; level spans ~33.6 ms / ~8.6 s /
  // ~36.7 min. Chosen so RTO/RACK restarts (tens to hundreds of ms) land in
  // levels 0-1 and anything a simulation plausibly schedules stays on-wheel.
  static constexpr int kTickBits = 17;
  static constexpr int kLevelBits = 8;
  static constexpr int kLevels = 3;
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kLevelBits;
  static constexpr std::uint32_t kSlotMask = kSlotsPerLevel - 1;

  enum class Loc : std::uint8_t { kNone, kHeap, kWheel };

  struct Slot {
    TimePoint when;
    std::uint64_t seq = 0;        // FIFO tie-break among equal timestamps
    std::uint32_t generation = 1; // bumped on release; stale ids never match
    std::uint32_t pos = kNoPos;   // index in heap_ or in its wheel bucket
    Loc loc = Loc::kNone;
    std::uint8_t level = 0;       // wheel level (loc == kWheel)
    std::uint8_t bucket = 0;      // wheel bucket index (loc == kWheel)
    Callback fn;
  };

  struct Bucket {
    std::vector<std::uint32_t> items;  // slot numbers
    // Buckets collect unsorted; the one the cursor reaches is sorted once,
    // descending by (when, seq), so the minimum pops from the back in O(1).
    bool sorted = false;
  };

  // Ids pack (generation, slot + 1); the +1 keeps kInvalidEventId unused.
  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | (slot + 1);
  }

  bool earlier(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.when != sb.when) return sa.when < sb.when;
    return sa.seq < sb.seq;
  }

  // --- heap home ----------------------------------------------------------
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  void place(std::uint32_t pos, std::uint32_t slot) {
    heap_[pos] = slot;
    slots_[slot].pos = pos;
  }
  void heap_insert(std::uint32_t slot);
  // Detaches heap_[pos] from the heap and restores heap order.
  void remove_from_heap(std::uint32_t pos);

  // --- wheel home ---------------------------------------------------------
  static std::uint64_t tick_of(TimePoint when) {
    return static_cast<std::uint64_t>(when.ns()) >> kTickBits;
  }
  // Places `slot` in a wheel bucket (true) or reports it belongs in the
  // heap (false). Does not touch wheel_count_.
  bool wheel_insert(std::uint32_t slot);
  void bucket_add(int level, std::uint32_t bucket, std::uint32_t slot);
  void bucket_remove(int level, std::uint32_t bucket, std::uint32_t pos);
  void sort_bucket(Bucket& b);
  // Re-places every event of wheel_[level][bucket] one or more levels down
  // (called when the cursor enters that bucket's window).
  void cascade(int level, std::uint32_t bucket);
  // First occupied bucket index >= from at `level`, or kSlotsPerLevel.
  std::uint32_t scan_occupancy(int level, std::uint32_t from) const;
  // Slot number of the wheel's earliest event, advancing the cursor and
  // cascading as needed; kNoPos when the wheel is empty. After a successful
  // call the result is the back of its (sorted) level-0 bucket.
  std::uint32_t locate_wheel_min();

  void set_occ(int level, std::uint32_t bucket) {
    occ_[level][bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
  }
  void clear_occ(int level, std::uint32_t bucket) {
    occ_[level][bucket >> 6] &= ~(std::uint64_t{1} << (bucket & 63));
  }

  // Returns the slot to the free list (destroys its callback).
  void release(std::uint32_t slot);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> heap_;  // slot numbers, min-heap by (when, seq)
  std::vector<std::uint32_t> free_;  // released slot numbers, reused LIFO
  std::uint64_t next_seq_ = 1;

  std::vector<Bucket> wheel_;  // kLevels * kSlotsPerLevel buckets
  std::uint64_t occ_[kLevels][kSlotsPerLevel / 64] = {};
  std::uint64_t cur_tick_ = 0;  // tick of the wheel's scan cursor (monotone)
  std::size_t wheel_count_ = 0;
  std::vector<std::uint32_t> cascade_scratch_;  // reused by cascade()
};

}  // namespace mps
