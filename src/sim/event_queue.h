// Discrete-event engine primitives: the pending-event queue.
//
// Events scheduled at the same timestamp fire in scheduling order (FIFO),
// which keeps runs deterministic regardless of heap internals.
//
// Storage is a generation-stamped slot arena plus an indexed binary heap of
// slot numbers: schedule/cancel/reschedule — the per-ACK RTO churn — touch
// no hash table and, once the arena is warm and the closure fits Callback's
// inline buffer, perform no heap allocation. cancel() removes the entry from
// the heap immediately (O(log n) sift), so cancelled events never linger as
// tombstones and size()/empty() are exact by construction. Stale ids are
// rejected by the slot's generation stamp, making cancel-after-fire and
// cancel-after-reuse safe no-ops.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.h"
#include "util/time.h"

namespace mps {

using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `when`. Returns an id usable with
  // cancel(). Owners must cancel events capturing them before destruction
  // (see Timer for the RAII wrapper).
  EventId schedule(TimePoint when, Callback fn);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op.
  void cancel(EventId id);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  // Time of the earliest live event; TimePoint::never() when empty.
  TimePoint next_time() const {
    return heap_.empty() ? TimePoint::never() : slots_[heap_.front()].when;
  }

  struct Fired {
    TimePoint when;
    Callback fn;
  };
  // Pops and returns the earliest live event. Precondition: !empty().
  Fired pop();

 private:
  static constexpr std::uint32_t kNotInHeap = ~std::uint32_t{0};

  struct Slot {
    TimePoint when;
    std::uint64_t seq = 0;        // FIFO tie-break among equal timestamps
    std::uint32_t generation = 1; // bumped on release; stale ids never match
    std::uint32_t heap_pos = kNotInHeap;
    Callback fn;
  };

  // Ids pack (generation, slot + 1); the +1 keeps kInvalidEventId unused.
  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | (slot + 1);
  }

  bool earlier(std::uint32_t a, std::uint32_t b) const {
    const Slot& sa = slots_[a];
    const Slot& sb = slots_[b];
    if (sa.when != sb.when) return sa.when < sb.when;
    return sa.seq < sb.seq;
  }

  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  void place(std::uint32_t pos, std::uint32_t slot) {
    heap_[pos] = slot;
    slots_[slot].heap_pos = pos;
  }
  // Detaches heap_[pos] from the heap and restores heap order.
  void remove_from_heap(std::uint32_t pos);
  // Returns the slot to the free list (destroys its callback).
  void release(std::uint32_t slot);

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> heap_;  // slot numbers, min-heap by (when, seq)
  std::vector<std::uint32_t> free_;  // released slot numbers, reused LIFO
  std::uint64_t next_seq_ = 1;
};

}  // namespace mps
