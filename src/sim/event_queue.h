// Discrete-event engine primitives: the pending-event queue.
//
// Events scheduled at the same timestamp fire in scheduling order (FIFO),
// which keeps runs deterministic regardless of heap internals. Cancellation
// is lazy: cancelled entries stay in the heap and are skipped on pop, but a
// pending-id set keeps size()/empty() exact at all times.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace mps {

using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `when`. Returns an id usable with
  // cancel(). Owners must cancel events capturing them before destruction
  // (see Timer for the RAII wrapper).
  EventId schedule(TimePoint when, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired or unknown id is a
  // no-op.
  void cancel(EventId id);

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  // Time of the earliest live event; TimePoint::never() when empty.
  TimePoint next_time();

  struct Fired {
    TimePoint when;
    std::function<void()> fn;
  };
  // Pops and returns the earliest live event. Precondition: !empty().
  Fired pop();

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;  // FIFO tie-break among equal timestamps
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Removes heap entries whose id is no longer pending (cancelled).
  void drop_dead_top();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
};

}  // namespace mps
