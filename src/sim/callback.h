// Small-buffer-optimized callback storage for the event kernel.
//
// The event loop's dominant churn is scheduling closures that capture one or
// two pointers (every link transmission, every RTO restart). std::function
// heap-allocates once captures outgrow its tiny internal buffer (16 bytes on
// libstdc++) and requires copyability; Callback instead keeps up to
// kInlineBytes of capture state inline in the queue's slot arena, accepts
// move-only callables, and only falls back to the heap for oversized ones.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mps {

class Callback {
 public:
  // Inline capacity. Sized so a captured std::function (32 bytes on
  // libstdc++) plus a pointer still fits; every closure the stack schedules
  // today is at most that big.
  static constexpr std::size_t kInlineBytes = 48;

  Callback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst from src and destroys src's residue.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  void move_from(Callback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace mps
