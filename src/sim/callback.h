// Small-buffer-optimized callback storage for the event kernel and the
// per-packet delivery seams.
//
// The event loop's dominant churn is scheduling closures that capture one or
// two pointers (every link transmission, every RTO restart). std::function
// heap-allocates once captures outgrow its tiny internal buffer (16 bytes on
// libstdc++) and requires copyability; BasicCallback instead keeps up to
// kInlineBytes of capture state inline, accepts move-only callables, and
// only falls back to the heap for oversized ones. The signature is a
// template parameter so the same storage serves the event queue
// (Callback = void()) and the per-packet link delivery hook
// (Link::DeliverFn = void(const Packet&)) without a type-erasure allocation
// on either path.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mps {

// InlineBytes is the inline capture capacity. The default (48) is sized so a
// captured std::function (32 bytes on libstdc++) plus a pointer still fits;
// the event kernel's Callback alias narrows it to 24 because its closures
// capture at most a pointer and two 8-byte scalars, and the queue stores one
// callback per pending event — at 100k flows the slot array is a measurable
// share of resident memory.
template <typename Signature, std::size_t InlineBytes = 48>
class BasicCallback;

template <typename R, typename... Args, std::size_t InlineBytes>
class BasicCallback<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;

  BasicCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, BasicCallback> &&
                std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>>>
  BasicCallback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  BasicCallback(BasicCallback&& other) noexcept { move_from(other); }

  BasicCallback& operator=(BasicCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  BasicCallback(const BasicCallback&) = delete;
  BasicCallback& operator=(const BasicCallback&) = delete;

  ~BasicCallback() { reset(); }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args... args);
    // Move-constructs dst from src and destroys src's residue.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s, Args... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* s, Args... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(s)))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  void move_from(BasicCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

// The event kernel's closure type; kept as the short name because it is by
// far the most common instantiation. 24 inline bytes cover every closure the
// kernel schedules today ([this] timers, {this, slot} link deliveries, the
// engine's [this, at, end] tick); anything bigger spills to the heap rather
// than failing, so the bound is a size/perf knob, not a correctness limit.
using Callback = BasicCallback<void(), 24>;

}  // namespace mps
