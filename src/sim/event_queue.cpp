#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "obs/prof.h"

namespace mps {

EventQueue::EventQueue() : wheel_(kLevels * kSlotsPerLevel) {}

EventId EventQueue::schedule(TimePoint when, Callback fn) {
  MPS_PROF_MEM_SCOPE(kEvents);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.when = when;
  s.seq = next_seq_++;
  s.fn = std::move(fn);

  // With no wheel residents the cursor carries no placement history, so it
  // can jump (even backwards) to this event's tick: the wheel then keeps
  // covering near-future work however far simulated time has advanced.
  if (wheel_count_ == 0) cur_tick_ = tick_of(when);
  if (wheel_insert(slot)) {
    ++wheel_count_;
  } else {
    heap_insert(slot);
  }
  return make_id(slot, s.generation);
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.generation != static_cast<std::uint32_t>(id >> 32) || s.loc == Loc::kNone) {
    return;  // already fired, already cancelled, or a stale id on a reused slot
  }
  if (s.loc == Loc::kHeap) {
    remove_from_heap(s.pos);
  } else {
    bucket_remove(s.level, s.bucket, s.pos);
    --wheel_count_;
  }
  release(slot);
}

TimePoint EventQueue::next_time() {
  MPS_PROF_MEM_SCOPE(kEvents);
  const std::uint32_t wmin = locate_wheel_min();
  if (wmin == kNoPos) {
    return heap_.empty() ? TimePoint::never() : slots_[heap_.front()].when;
  }
  if (heap_.empty() || earlier(wmin, heap_.front())) return slots_[wmin].when;
  return slots_[heap_.front()].when;
}

EventQueue::Fired EventQueue::pop() {
  MPS_PROF_MEM_SCOPE(kEvents);
  const std::uint32_t wmin = locate_wheel_min();
  if (wmin != kNoPos && (heap_.empty() || earlier(wmin, heap_.front()))) {
    Slot& s = slots_[wmin];
    Fired fired{s.when, std::move(s.fn)};
    bucket_remove(0, s.bucket, s.pos);  // min sits at the back: O(1) erase
    --wheel_count_;
    release(wmin);
    return fired;
  }
  assert(!heap_.empty());
  const std::uint32_t slot = heap_.front();
  Slot& s = slots_[slot];
  Fired fired{s.when, std::move(s.fn)};
  remove_from_heap(0);
  release(slot);
  return fired;
}

void EventQueue::sift_up(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!earlier(slot, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, slot);
}

void EventQueue::sift_down(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  while (true) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], slot)) break;
    place(pos, heap_[child]);
    pos = child;
  }
  place(pos, slot);
}

void EventQueue::heap_insert(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.loc = Loc::kHeap;
  const std::uint32_t pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(slot);
  s.pos = pos;
  sift_up(pos);
}

void EventQueue::remove_from_heap(std::uint32_t pos) {
  slots_[heap_[pos]].pos = kNoPos;
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry
  place(pos, last);
  // The moved entry may violate order in either direction.
  sift_down(pos);
  sift_up(slots_[last].pos);
}

bool EventQueue::wheel_insert(std::uint32_t slot) {
  Slot& s = slots_[slot];
  std::uint64_t t = tick_of(s.when);
  // An event at or behind the cursor's tick joins the current bucket; its
  // exact (when, seq) rank is restored by the bucket sort, so overdue
  // timestamps (scheduled after the cursor advanced) still fire in global
  // order.
  if (t <= cur_tick_) t = cur_tick_;
  int level;
  if ((t >> kLevelBits) == (cur_tick_ >> kLevelBits)) {
    level = 0;
  } else if ((t >> (2 * kLevelBits)) == (cur_tick_ >> (2 * kLevelBits))) {
    level = 1;
  } else if ((t >> (3 * kLevelBits)) == (cur_tick_ >> (3 * kLevelBits))) {
    level = 2;
  } else {
    return false;  // beyond the wheel horizon: heap
  }
  bucket_add(level, static_cast<std::uint32_t>(t >> (level * kLevelBits)) & kSlotMask, slot);
  return true;
}

void EventQueue::bucket_add(int level, std::uint32_t bucket, std::uint32_t slot) {
  Bucket& b = wheel_[static_cast<std::size_t>(level) * kSlotsPerLevel + bucket];
  Slot& s = slots_[slot];
  s.loc = Loc::kWheel;
  s.level = static_cast<std::uint8_t>(level);
  s.bucket = static_cast<std::uint8_t>(bucket);
  if (b.sorted) {
    // Keep descending (when, seq) order: insert before the first entry that
    // is not later than `slot`.
    const auto it = std::lower_bound(
        b.items.begin(), b.items.end(), slot,
        [this](std::uint32_t lhs, std::uint32_t rhs) { return earlier(rhs, lhs); });
    const std::uint32_t idx = static_cast<std::uint32_t>(it - b.items.begin());
    b.items.insert(it, slot);
    for (std::uint32_t i = idx; i < b.items.size(); ++i) slots_[b.items[i]].pos = i;
  } else {
    s.pos = static_cast<std::uint32_t>(b.items.size());
    b.items.push_back(slot);
  }
  set_occ(level, bucket);
}

void EventQueue::bucket_remove(int level, std::uint32_t bucket, std::uint32_t pos) {
  Bucket& b = wheel_[static_cast<std::size_t>(level) * kSlotsPerLevel + bucket];
  assert(pos < b.items.size());
  if (b.sorted) {
    b.items.erase(b.items.begin() + pos);
    for (std::uint32_t i = pos; i < b.items.size(); ++i) slots_[b.items[i]].pos = i;
  } else {
    b.items[pos] = b.items.back();
    slots_[b.items[pos]].pos = pos;
    b.items.pop_back();
  }
  if (b.items.empty()) {
    b.sorted = false;
    clear_occ(level, bucket);
  }
}

void EventQueue::sort_bucket(Bucket& b) {
  std::sort(b.items.begin(), b.items.end(),
            [this](std::uint32_t lhs, std::uint32_t rhs) { return earlier(rhs, lhs); });
  for (std::uint32_t i = 0; i < b.items.size(); ++i) slots_[b.items[i]].pos = i;
  b.sorted = true;
}

void EventQueue::cascade(int level, std::uint32_t bucket) {
  Bucket& b = wheel_[static_cast<std::size_t>(level) * kSlotsPerLevel + bucket];
  std::swap(cascade_scratch_, b.items);
  b.sorted = false;
  clear_occ(level, bucket);
  for (const std::uint32_t slot : cascade_scratch_) {
    // Every resident of this bucket shares the cursor's new window prefix,
    // so it re-places strictly below `level` (never back to the heap).
    const bool placed = wheel_insert(slot);
    (void)placed;
    assert(placed && slots_[slot].level < level);
  }
  cascade_scratch_.clear();
}

std::uint32_t EventQueue::scan_occupancy(int level, std::uint32_t from) const {
  if (from >= kSlotsPerLevel) return kSlotsPerLevel;
  std::uint32_t word = from >> 6;
  std::uint64_t bits = occ_[level][word] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) {
      return (word << 6) + static_cast<std::uint32_t>(__builtin_ctzll(bits));
    }
    if (++word >= kSlotsPerLevel / 64) return kSlotsPerLevel;
    bits = occ_[level][word];
  }
}

std::uint32_t EventQueue::locate_wheel_min() {
  if (wheel_count_ == 0) return kNoPos;
  while (true) {
    // Occupied level-0 buckets only exist at or after the cursor's position
    // within the current window (placements behind the cursor clamp to its
    // bucket; the cursor never passes a non-empty bucket), so the first
    // occupied position holds the wheel-wide earliest tick.
    const std::uint32_t p0 =
        scan_occupancy(0, static_cast<std::uint32_t>(cur_tick_) & kSlotMask);
    if (p0 < kSlotsPerLevel) {
      cur_tick_ = (cur_tick_ & ~std::uint64_t{kSlotMask}) | p0;
      Bucket& b = wheel_[p0];
      if (!b.sorted) sort_bucket(b);
      return b.items.back();
    }
    // Level-0 window exhausted; enter the next occupied level-1 bucket and
    // spill it into level 0 (level-1 residents are strictly after the old
    // window, so this preserves fire order).
    const std::uint32_t pos1 =
        static_cast<std::uint32_t>(cur_tick_ >> kLevelBits) & kSlotMask;
    const std::uint32_t p1 = scan_occupancy(1, pos1 + 1);
    if (p1 < kSlotsPerLevel) {
      cur_tick_ = ((cur_tick_ >> (2 * kLevelBits)) << (2 * kLevelBits)) |
                  (std::uint64_t{p1} << kLevelBits);
      cascade(1, p1);
      continue;
    }
    const std::uint32_t pos2 =
        static_cast<std::uint32_t>(cur_tick_ >> (2 * kLevelBits)) & kSlotMask;
    const std::uint32_t p2 = scan_occupancy(2, pos2 + 1);
    // wheel_count_ > 0 with levels 0-1 drained means level 2 is occupied.
    assert(p2 < kSlotsPerLevel);
    cur_tick_ = ((cur_tick_ >> (3 * kLevelBits)) << (3 * kLevelBits)) |
                (std::uint64_t{p2} << (2 * kLevelBits));
    cascade(2, p2);
  }
}

void EventQueue::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.pos = kNoPos;
  s.loc = Loc::kNone;
  ++s.generation;
  free_.push_back(slot);
}

void EventQueue::clone_structure_from(const EventQueue& src) {
  slots_.clear();
  slots_.resize(src.slots_.size());
  for (std::size_t i = 0; i < src.slots_.size(); ++i) {
    const Slot& from = src.slots_[i];
    Slot& to = slots_[i];
    to.when = from.when;
    to.seq = from.seq;
    to.generation = from.generation;
    to.pos = from.pos;
    to.loc = from.loc;
    to.level = from.level;
    to.bucket = from.bucket;
    // to.fn stays empty until the owner rebinds it.
  }
  heap_ = src.heap_;
  free_ = src.free_;
  next_seq_ = src.next_seq_;
  for (std::size_t i = 0; i < wheel_.size(); ++i) {
    wheel_[i].items = src.wheel_[i].items;
    wheel_[i].sorted = src.wheel_[i].sorted;
  }
  std::memcpy(occ_, src.occ_, sizeof(occ_));
  cur_tick_ = src.cur_tick_;
  wheel_count_ = src.wheel_count_;
}

bool EventQueue::rebind(EventId id, Callback fn) {
  if (id == kInvalidEventId) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (s.generation != static_cast<std::uint32_t>(id >> 32) || s.loc == Loc::kNone) {
    return false;
  }
  s.fn = std::move(fn);
  return true;
}

void EventQueue::collect_unbound(std::vector<std::pair<EventId, TimePoint>>& out) const {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.loc != Loc::kNone && !s.fn) out.emplace_back(make_id(i, s.generation), s.when);
  }
}

}  // namespace mps
