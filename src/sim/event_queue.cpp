#include "sim/event_queue.h"

#include <cassert>

#include "obs/prof.h"

namespace mps {

EventId EventQueue::schedule(TimePoint when, Callback fn) {
  MPS_PROF_MEM_SCOPE(kEvents);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.when = when;
  s.seq = next_seq_++;
  s.fn = std::move(fn);

  const std::uint32_t pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(slot);
  s.heap_pos = pos;
  sift_up(pos);
  return make_id(slot, s.generation);
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.generation != static_cast<std::uint32_t>(id >> 32) || s.heap_pos == kNotInHeap) {
    return;  // already fired, already cancelled, or a stale id on a reused slot
  }
  remove_from_heap(s.heap_pos);
  release(slot);
}

EventQueue::Fired EventQueue::pop() {
  assert(!heap_.empty());
  const std::uint32_t slot = heap_.front();
  Slot& s = slots_[slot];
  Fired fired{s.when, std::move(s.fn)};
  remove_from_heap(0);
  release(slot);
  return fired;
}

void EventQueue::sift_up(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!earlier(slot, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, slot);
}

void EventQueue::sift_down(std::uint32_t pos) {
  const std::uint32_t slot = heap_[pos];
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  while (true) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], slot)) break;
    place(pos, heap_[child]);
    pos = child;
  }
  place(pos, slot);
}

void EventQueue::remove_from_heap(std::uint32_t pos) {
  slots_[heap_[pos]].heap_pos = kNotInHeap;
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry
  place(pos, last);
  // The moved entry may violate order in either direction.
  sift_down(pos);
  sift_up(slots_[last].heap_pos);
}

void EventQueue::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  s.heap_pos = kNotInHeap;
  ++s.generation;
  free_.push_back(slot);
}

}  // namespace mps
