#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace mps {

EventId EventQueue::schedule(TimePoint when, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) {
  pending_.erase(id);
}

void EventQueue::drop_dead_top() {
  while (!heap_.empty() && !pending_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

TimePoint EventQueue::next_time() {
  drop_dead_top();
  return heap_.empty() ? TimePoint::never() : heap_.front().when;
}

EventQueue::Fired EventQueue::pop() {
  drop_dead_top();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  return Fired{e.when, std::move(e.fn)};
}

}  // namespace mps
