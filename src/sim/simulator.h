// The simulation kernel: a clock plus the event loop.
//
// Usage:
//   Simulator sim;
//   sim.at(Duration::millis(5), [] { ... });
//   sim.run_until(TimePoint::origin() + Duration::seconds(60));
//
// All model objects hold a Simulator& and schedule their activity through
// it. The simulator is strictly single-threaded; determinism follows from
// the FIFO tie-break in EventQueue plus seeded RNGs.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/callback.h"
#include "sim/event_queue.h"
#include "util/time.h"

namespace mps {

class FlightRecorder;  // obs/recorder.h; the simulator only carries the pointer

// Progress heartbeat payload: a wall-clock-timed snapshot of the run loop,
// handed to the callback installed with Simulator::set_heartbeat. Rates are
// computed over the interval since the previous beat.
struct HeartbeatStats {
  std::uint64_t events = 0;        // total events processed so far
  double events_per_sec = 0.0;     // since the previous beat
  double sim_s = 0.0;              // sim clock, seconds since origin
  double wall_s = 0.0;             // wall clock, seconds since attach
  double sim_per_wall = 0.0;       // sim seconds advanced per wall second, since last beat
};
using HeartbeatFn = std::function<void(const HeartbeatStats&)>;

// Heartbeat knobs carried by runner parameter structs (exp/). interval_s <= 0
// or a null fn means off; the runner then never touches the simulator.
struct HeartbeatConfig {
  double interval_s = 0.0;
  HeartbeatFn fn;

  bool enabled() const { return interval_s > 0.0 && static_cast<bool>(fn); }
};

// Per-run kernel accounting the runners add into (borrowed out-param on the
// runner parameter structs): total events executed and sim time covered,
// accumulated across a scenario's repeated runs. Wall-clock-free, so filling
// it can never perturb a run.
struct RunTelemetry {
  std::uint64_t events = 0;
  double sim_s = 0.0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }

  // Observability root for this simulation (borrowed, may be null). Attach
  // *before* constructing model objects: Subflow/Connection/Link register
  // their instruments at construction time and never re-check later.
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }
  FlightRecorder* recorder() const { return recorder_; }

  // Schedule at an absolute time (must be >= now()).
  EventId at(TimePoint when, Callback fn);
  // Schedule after a delay from now.
  EventId after(Duration delay, Callback fn) {
    return at(now_ + delay, std::move(fn));
  }
  // Schedule to run at the current time, after already-queued same-time
  // events (useful to break call-stack re-entrancy).
  EventId post(Callback fn) { return at(now_, std::move(fn)); }

  void cancel(EventId id) { queue_.cancel(id); }

  // Runs until the queue drains or the clock would pass `deadline`.
  // Events exactly at `deadline` are executed. Returns the number of events
  // processed.
  std::uint64_t run_until(TimePoint deadline);

  // Runs until the queue drains entirely.
  std::uint64_t run() { return run_until(TimePoint::never()); }

  // Executes at most one event. Returns false if none are pending.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return processed_; }

  // Requests run loops to stop after the current event; used by scenario
  // drivers that detect their stop condition from inside a callback.
  void request_stop() { stop_requested_ = true; }

  // Installs a progress heartbeat: `fn` fires from inside the run loop
  // roughly every `interval_s` wall seconds (checked every kHeartbeatStride
  // events, so an idle queue never beats). The callback must not touch the
  // simulation — it exists for stderr progress lines, which is why it is
  // driven purely by the wall clock: enabling it cannot change event
  // ordering or RNG draws. Pass interval_s <= 0 or a null fn to detach.
  void set_heartbeat(double interval_s, HeartbeatFn fn);
  bool heartbeat_attached() const { return heartbeat_ != nullptr; }

  // --- snapshot-and-fork support (exp/snapshot.h) ---------------------------
  // Copies the clock and pending-event structure from `src`. Every cloned
  // event's callback is empty; owners must rebind() with the EventIds they
  // hold before the loop runs. Only valid between runs (never re-entrantly).
  void clone_events_from(const Simulator& src) {
    queue_.clone_structure_from(src.queue_);
    now_ = src.now_;
    processed_ = src.processed_;
  }
  // Re-installs a cloned event's callback; false if `id` is not live.
  bool rebind(EventId id, Callback fn) { return queue_.rebind(id, std::move(fn)); }
  void collect_unbound_events(std::vector<std::pair<EventId, TimePoint>>& out) const {
    queue_.collect_unbound(out);
  }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  // Wall-clock polling cadence for the heartbeat, in events. At the kernel's
  // measured ~7M events/s this checks the clock a few thousand times per
  // second; off the heartbeat path the cost is one null check per event.
  static constexpr std::uint32_t kHeartbeatStride = 2048;

  struct Heartbeat {
    double interval_s = 1.0;
    HeartbeatFn fn;
    std::chrono::steady_clock::time_point attach_wall;
    std::chrono::steady_clock::time_point last_wall;
    std::uint64_t last_events = 0;
    TimePoint last_sim = TimePoint::origin();
    std::uint32_t countdown = kHeartbeatStride;
  };

  void heartbeat_poll();

  EventQueue queue_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;
  FlightRecorder* recorder_ = nullptr;
  std::unique_ptr<Heartbeat> heartbeat_;
};

// RAII one-shot timer. Owns at most one pending event; rescheduling or
// destroying the timer cancels the previous event, so callbacks can never
// fire into a destroyed owner.
//
// The user callback lives in the timer itself, so the closure handed to the
// event queue captures only `this` — a reschedule (every ACK restarts the
// RTO timer) moves the new callback into place and never heap-allocates.
class Timer {
 public:
  explicit Timer(Simulator& sim) : sim_(sim) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  void schedule_at(TimePoint when, Callback fn) {
    cancel();
    fn_ = std::move(fn);
    deadline_ = when;
    id_ = sim_.at(when, [this] { fire(); });
  }

  void schedule_after(Duration delay, Callback fn) {
    schedule_at(sim_.now() + delay, std::move(fn));
  }

  void cancel() {
    if (id_ != kInvalidEventId) {
      sim_.cancel(id_);
      id_ = kInvalidEventId;
      deadline_ = TimePoint::never();
      fn_.reset();
    }
  }

  bool pending() const { return id_ != kInvalidEventId; }
  TimePoint deadline() const { return deadline_; }

  // Snapshot support: adopt `src`'s pending event (same EventId) onto this
  // timer, whose simulator's queue was structure-cloned from src's. `fn` is
  // the owner's freshly built callback — the source's closure captures the
  // source owner and cannot be reused.
  void clone_from(const Timer& src, Callback fn) {
    cancel();
    if (src.id_ == kInvalidEventId) return;
    id_ = src.id_;
    deadline_ = src.deadline_;
    fn_ = std::move(fn);
    sim_.rebind(id_, [this] { fire(); });
  }

 private:
  void fire() {
    id_ = kInvalidEventId;
    deadline_ = TimePoint::never();
    // Move the callback out first so it may freely reschedule this timer.
    Callback fn = std::move(fn_);
    fn_.reset();
    fn();
  }

  Simulator& sim_;
  EventId id_ = kInvalidEventId;
  TimePoint deadline_ = TimePoint::never();
  Callback fn_;
};

}  // namespace mps
