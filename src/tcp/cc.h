// Congestion controller interface.
//
// The Subflow owns the generic state machine (slow start, fast recovery,
// RTO, idle CWND reset); controllers plug in the congestion-avoidance
// increase rule and the multiplicative-decrease factor. Coupled controllers
// (LIA, OLIA) additionally read their sibling subflows' state through the
// CcGroup interface, which mptcp::Connection implements — this is the
// coupling the paper identifies as the amplifier of idle CWND resets.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/time.h"

namespace mps {

// Snapshot of one subflow's congestion state, as seen by a coupled
// controller.
struct CcSiblingInfo {
  std::uint32_t subflow_id = 0;
  double cwnd = 0.0;    // segments
  double srtt_s = 0.0;  // seconds
  bool established = false;
  // Bytes acked since the most recent loss event on that subflow (OLIA's
  // l_r estimate).
  double inter_loss_bytes = 0.0;
};

// Implemented by mptcp::Connection; exposes all subflows of the connection.
class CcGroup {
 public:
  virtual ~CcGroup() = default;
  virtual void cc_sibling_info(std::vector<CcSiblingInfo>& out) const = 0;
};

class CongestionController {
 public:
  struct AckContext {
    std::uint32_t self_id = 0;
    double cwnd = 0.0;       // segments, before the increase
    double ssthresh = 0.0;   // segments
    double srtt_s = 0.0;     // seconds
    double inter_loss_bytes = 0.0;
    const CcGroup* group = nullptr;  // nullptr for single-path use
    TimePoint now;
  };

  virtual ~CongestionController() = default;

  // Additive increase (in segments) to apply for one newly acked full-size
  // segment during congestion avoidance. Slow start is handled uniformly by
  // the Subflow.
  virtual double ca_increase(const AckContext& ctx) = 0;

  // Multiplicative decrease on a fast-retransmit loss event:
  // ssthresh = cwnd * loss_factor().
  virtual double loss_factor() const { return 0.5; }

  // Hooks for controllers with epoch state (CUBIC).
  virtual void on_loss_event(const AckContext& /*ctx*/) {}
  virtual void on_rto(const AckContext& /*ctx*/) {}
  virtual void reset() {}

  virtual const char* name() const = 0;

  // Snapshot support: copies mutable controller state from `src`, which must
  // be the same concrete type. Stateless controllers inherit the no-op.
  virtual void restore_from(const CongestionController& src) { (void)src; }
};

enum class CcKind { kReno, kCubic, kLia, kOlia };

const char* cc_kind_name(CcKind kind);
std::unique_ptr<CongestionController> make_cc(CcKind kind);

}  // namespace mps
