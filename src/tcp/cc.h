// Congestion controller interface.
//
// The Subflow owns the generic state machine (slow start, fast recovery,
// RTO, idle CWND reset); controllers plug in the congestion-avoidance
// increase rule and the multiplicative-decrease factor. Coupled controllers
// (LIA, OLIA) additionally read their sibling subflows' state through the
// CcGroup interface, which mptcp::Connection implements — this is the
// coupling the paper identifies as the amplifier of idle CWND resets.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/time.h"

namespace mps {

// Snapshot of one subflow's congestion state, as seen by a coupled
// controller.
struct CcSiblingInfo {
  std::uint32_t subflow_id = 0;
  double cwnd = 0.0;    // segments
  double srtt_s = 0.0;  // seconds
  bool established = false;
  // Bytes acked since the most recent loss event on that subflow (OLIA's
  // l_r estimate).
  double inter_loss_bytes = 0.0;
};

// Cross-subflow aggregates shared by the coupled controllers (LIA, OLIA,
// BALIA). One recomputation serves every controller's per-ack read: the
// aggregates are pure functions of the sibling snapshot, computed in the
// exact per-sibling order (and with the exact skip conditions) the
// controllers' original private loops used, so cached and fresh values are
// bit-identical. Connection owns the canonical cached instance and
// invalidates it on every cwnd/RTT/inter-loss/membership change
// (SubflowEnv::on_cc_input_change); the invariant checker recomputes from
// scratch and compares, so a missed invalidation is a checkable bug rather
// than a silent drift.
struct CoupledCcTerms {
  std::vector<CcSiblingInfo> siblings;

  // LIA (RFC 6356): over established siblings with srtt > 0.
  double lia_total_cwnd = 0.0;
  double lia_best_ratio = 0.0;  // max_i cwnd_i / rtt_i^2
  double lia_sum_cwnd_over_rtt = 0.0;

  // OLIA: over established siblings with srtt > 0 and cwnd > 0 (a stricter
  // filter than LIA's, hence the separate aggregates).
  int olia_n = 0;
  double olia_sum_cwnd_over_rtt = 0.0;
  double olia_best_quality = -1.0;  // max l_r^2 / cwnd_r
  double olia_max_cwnd = -1.0;
  int olia_b_minus_m = 0;  // |B \ M|
  int olia_m_count = 0;    // |M|
  // Parallel to `siblings`: set-membership of each sibling.
  enum : std::uint8_t { kOliaCounted = 1, kOliaInB = 2, kOliaInM = 4 };
  std::vector<std::uint8_t> olia_flags;

  // BALIA: x_i = cwnd_i / rtt_i over the LIA-filtered sibling set.
  double balia_sum_x = 0.0;
  double balia_max_x = 0.0;

  static double olia_quality(const CcSiblingInfo& s) {
    return s.cwnd > 0.0 ? (s.inter_loss_bytes * s.inter_loss_bytes) / s.cwnd : 0.0;
  }

  // Recomputes every aggregate from `siblings` in place.
  void recompute();
};

// Implemented by mptcp::Connection; exposes all subflows of the connection.
class CcGroup {
 public:
  virtual ~CcGroup() = default;
  virtual void cc_sibling_info(std::vector<CcSiblingInfo>& out) const = 0;

  // Shared coupled-controller aggregates over the current sibling snapshot.
  // The default recomputes on every call (correct for test fakes);
  // Connection overrides with an invalidation-tracked cache.
  virtual const CoupledCcTerms& coupled_terms() const;

 private:
  mutable CoupledCcTerms uncached_terms_;  // backs the recompute-always default
};

class CongestionController {
 public:
  struct AckContext {
    std::uint32_t self_id = 0;
    double cwnd = 0.0;       // segments, before the increase
    double ssthresh = 0.0;   // segments
    double srtt_s = 0.0;     // seconds
    double inter_loss_bytes = 0.0;
    const CcGroup* group = nullptr;  // nullptr for single-path use
    TimePoint now;
  };

  virtual ~CongestionController() = default;

  // Additive increase (in segments) to apply for one newly acked full-size
  // segment during congestion avoidance. Slow start is handled uniformly by
  // the Subflow.
  virtual double ca_increase(const AckContext& ctx) = 0;

  // Multiplicative decrease on a fast-retransmit loss event:
  // ssthresh = cwnd * loss_factor().
  virtual double loss_factor() const { return 0.5; }

  // Hooks for controllers with epoch state (CUBIC).
  virtual void on_loss_event(const AckContext& /*ctx*/) {}
  virtual void on_rto(const AckContext& /*ctx*/) {}
  virtual void reset() {}

  virtual const char* name() const = 0;

  // Snapshot support: copies mutable controller state from `src`, which must
  // be the same concrete type. Stateless controllers inherit the no-op.
  virtual void restore_from(const CongestionController& src) { (void)src; }
};

enum class CcKind { kReno, kCubic, kLia, kOlia, kBalia };

const char* cc_kind_name(CcKind kind);
std::unique_ptr<CongestionController> make_cc(CcKind kind);

}  // namespace mps
