// NewReno congestion avoidance: +1 segment per RTT (1/cwnd per ack).
#pragma once

#include "tcp/cc.h"

namespace mps {

class RenoCc final : public CongestionController {
 public:
  double ca_increase(const AckContext& ctx) override {
    return ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
  }
  const char* name() const override { return "reno"; }
};

}  // namespace mps
