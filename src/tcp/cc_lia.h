// LIA — the coupled MPTCP congestion control of RFC 6356 ("Linked
// Increases"), the Linux MPTCP default in the 0.89 release the paper uses.
//
// Per ack of one segment on subflow i:
//   cwnd_i += min(alpha / cwnd_total, 1 / cwnd_i)
// with
//   alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2.
//
// The coupling is what makes idle CWND resets expensive (paper Section 3.2):
// a reset fast subflow drags down the aggregate increase rate.
//
// The cross-subflow aggregates come from the group's shared CoupledCcTerms
// (recomputed once per cwnd/RTT event and cached by Connection) rather than
// a private per-controller sibling walk; see CoupledCcTerms in cc.h.
#pragma once

#include <algorithm>

#include "tcp/cc.h"

namespace mps {

class LiaCc final : public CongestionController {
 public:
  double ca_increase(const AckContext& ctx) override {
    if (ctx.group == nullptr) {
      return ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
    }
    const CoupledCcTerms& t = ctx.group->coupled_terms();
    if (t.lia_total_cwnd <= 0.0 || t.lia_sum_cwnd_over_rtt <= 0.0) {
      return ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
    }
    const double alpha = t.lia_total_cwnd * t.lia_best_ratio /
                         (t.lia_sum_cwnd_over_rtt * t.lia_sum_cwnd_over_rtt);
    const double coupled = alpha / t.lia_total_cwnd;
    const double uncoupled = ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
    return std::min(coupled, uncoupled);
  }

  const char* name() const override { return "lia"; }
};

}  // namespace mps
