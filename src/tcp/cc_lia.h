// LIA — the coupled MPTCP congestion control of RFC 6356 ("Linked
// Increases"), the Linux MPTCP default in the 0.89 release the paper uses.
//
// Per ack of one segment on subflow i:
//   cwnd_i += min(alpha / cwnd_total, 1 / cwnd_i)
// with
//   alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2.
//
// The coupling is what makes idle CWND resets expensive (paper Section 3.2):
// a reset fast subflow drags down the aggregate increase rate.
#pragma once

#include <algorithm>
#include <vector>

#include "tcp/cc.h"

namespace mps {

class LiaCc final : public CongestionController {
 public:
  double ca_increase(const AckContext& ctx) override {
    if (ctx.group == nullptr) {
      return ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
    }
    siblings_.clear();
    ctx.group->cc_sibling_info(siblings_);

    double total_cwnd = 0.0;
    double best_ratio = 0.0;       // max_i cwnd_i / rtt_i^2
    double sum_cwnd_over_rtt = 0.0;
    for (const auto& s : siblings_) {
      if (!s.established || s.srtt_s <= 0.0) continue;
      total_cwnd += s.cwnd;
      best_ratio = std::max(best_ratio, s.cwnd / (s.srtt_s * s.srtt_s));
      sum_cwnd_over_rtt += s.cwnd / s.srtt_s;
    }
    if (total_cwnd <= 0.0 || sum_cwnd_over_rtt <= 0.0) {
      return ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
    }
    const double alpha =
        total_cwnd * best_ratio / (sum_cwnd_over_rtt * sum_cwnd_over_rtt);
    const double coupled = alpha / total_cwnd;
    const double uncoupled = ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
    return std::min(coupled, uncoupled);
  }

  const char* name() const override { return "lia"; }

 private:
  std::vector<CcSiblingInfo> siblings_;  // reused to avoid per-ack allocation
};

}  // namespace mps
