#include "tcp/rtt.h"

#include <algorithm>

namespace mps {

void RttEstimator::add_sample(Duration rtt) {
  if (rtt < Duration::zero()) return;
  last_ = rtt;
  min_rtt_ = std::min(min_rtt_, rtt);
  window_.add(rtt.to_seconds());
  lifetime_.add(rtt.to_seconds());
  if (n_samples_ == 0) {
    // RFC 6298 (2.2): first measurement.
    srtt_ = rtt;
    rttvar_ = rtt / 2;
  } else {
    // RFC 6298 (2.3): alpha = 1/8, beta = 1/4.
    const Duration err = rtt >= srtt_ ? rtt - srtt_ : srtt_ - rtt;
    rttvar_ = Duration::nanos((3 * rttvar_.ns() + err.ns()) / 4);
    srtt_ = Duration::nanos((7 * srtt_.ns() + rtt.ns()) / 8);
  }
  ++n_samples_;
}

Duration RttEstimator::rto() const {
  if (n_samples_ == 0) return config_.initial_rto;
  const Duration raw = srtt_ + Duration::nanos(4 * rttvar_.ns());
  return std::clamp(raw, config_.min_rto, config_.max_rto);
}

}  // namespace mps
