// OLIA — the Opportunistic Linked Increases Algorithm (Khalili et al.,
// CoNEXT 2012), the other coupled controller the paper evaluates against.
//
// Per ack of one segment on subflow r:
//   cwnd_r += (cwnd_r / rtt_r^2) / (sum_p cwnd_p / rtt_p)^2 + alpha_r / cwnd_r
// where alpha_r shifts increase toward "best" paths (largest inter-loss
// transfer l_r^2 / cwnd_r) that do not already hold the largest window:
//   alpha_r =  1 / (n |B \ M|)  if r in B \ M (collected paths)
//   alpha_r = -1 / (n |M|)      if r in M and B \ M nonempty
//   alpha_r =  0                otherwise.
//
// The aggregates and the B/M set memberships come from the group's shared
// CoupledCcTerms (cached by Connection); only the self lookup remains
// per-ack. See CoupledCcTerms in cc.h.
#pragma once

#include <algorithm>

#include "tcp/cc.h"

namespace mps {

class OliaCc final : public CongestionController {
 public:
  double ca_increase(const AckContext& ctx) override {
    if (ctx.group == nullptr) {
      return ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
    }
    const CoupledCcTerms& t = ctx.group->coupled_terms();
    if (t.olia_n == 0 || t.olia_sum_cwnd_over_rtt <= 0.0) {
      return ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
    }

    bool self_in_b = false, self_in_m = false;
    for (std::size_t i = 0; i < t.siblings.size(); ++i) {
      if (t.siblings[i].subflow_id != ctx.self_id) continue;
      self_in_b = (t.olia_flags[i] & CoupledCcTerms::kOliaInB) != 0;
      self_in_m = (t.olia_flags[i] & CoupledCcTerms::kOliaInM) != 0;
      break;
    }

    double alpha = 0.0;
    if (t.olia_b_minus_m > 0) {
      if (self_in_b && !self_in_m) {
        alpha = 1.0 / (static_cast<double>(t.olia_n) * t.olia_b_minus_m);
      } else if (self_in_m) {
        alpha = -1.0 / (static_cast<double>(t.olia_n) * t.olia_m_count);
      }
    }

    const double rtt = ctx.srtt_s > 0.0 ? ctx.srtt_s : 1e-3;
    double inc = (ctx.cwnd / (rtt * rtt)) /
                     (t.olia_sum_cwnd_over_rtt * t.olia_sum_cwnd_over_rtt) +
                 alpha / std::max(ctx.cwnd, 1.0);
    // Never decrease below a minimal positive growth; OLIA's alpha can make
    // the sum slightly negative for max-window paths.
    return std::max(inc, 0.0);
  }

  const char* name() const override { return "olia"; }
};

}  // namespace mps
