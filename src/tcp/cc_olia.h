// OLIA — the Opportunistic Linked Increases Algorithm (Khalili et al.,
// CoNEXT 2012), the other coupled controller the paper evaluates against.
//
// Per ack of one segment on subflow r:
//   cwnd_r += (cwnd_r / rtt_r^2) / (sum_p cwnd_p / rtt_p)^2 + alpha_r / cwnd_r
// where alpha_r shifts increase toward "best" paths (largest inter-loss
// transfer l_r^2 / cwnd_r) that do not already hold the largest window:
//   alpha_r =  1 / (n |B \ M|)  if r in B \ M (collected paths)
//   alpha_r = -1 / (n |M|)      if r in M and B \ M nonempty
//   alpha_r =  0                otherwise.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "tcp/cc.h"

namespace mps {

class OliaCc final : public CongestionController {
 public:
  double ca_increase(const AckContext& ctx) override {
    if (ctx.group == nullptr) {
      return ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
    }
    siblings_.clear();
    ctx.group->cc_sibling_info(siblings_);

    double sum_cwnd_over_rtt = 0.0;
    int n = 0;
    double best_quality = -1.0;  // max l_r^2 / cwnd_r
    double max_cwnd = -1.0;
    for (const auto& s : siblings_) {
      if (!s.established || s.srtt_s <= 0.0 || s.cwnd <= 0.0) continue;
      ++n;
      sum_cwnd_over_rtt += s.cwnd / s.srtt_s;
      best_quality = std::max(best_quality, quality(s));
      max_cwnd = std::max(max_cwnd, s.cwnd);
    }
    if (n == 0 || sum_cwnd_over_rtt <= 0.0) {
      return ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
    }

    // Membership of self in B (best paths) and M (max-window paths); sets
    // compared with a small tolerance since values are continuous here.
    int b_minus_m = 0, m_count = 0;
    bool self_in_b = false, self_in_m = false;
    for (const auto& s : siblings_) {
      if (!s.established || s.srtt_s <= 0.0 || s.cwnd <= 0.0) continue;
      const bool in_b = quality(s) >= best_quality * (1.0 - kTol);
      const bool in_m = s.cwnd >= max_cwnd * (1.0 - kTol);
      if (in_m) ++m_count;
      if (in_b && !in_m) ++b_minus_m;
      if (s.subflow_id == ctx.self_id) {
        self_in_b = in_b;
        self_in_m = in_m;
      }
    }

    double alpha = 0.0;
    if (b_minus_m > 0) {
      if (self_in_b && !self_in_m) {
        alpha = 1.0 / (static_cast<double>(n) * b_minus_m);
      } else if (self_in_m) {
        alpha = -1.0 / (static_cast<double>(n) * m_count);
      }
    }

    const double rtt = ctx.srtt_s > 0.0 ? ctx.srtt_s : 1e-3;
    double inc = (ctx.cwnd / (rtt * rtt)) / (sum_cwnd_over_rtt * sum_cwnd_over_rtt) +
                 alpha / std::max(ctx.cwnd, 1.0);
    // Never decrease below a minimal positive growth; OLIA's alpha can make
    // the sum slightly negative for max-window paths.
    return std::max(inc, 0.0);
  }

  const char* name() const override { return "olia"; }

 private:
  static constexpr double kTol = 1e-6;

  static double quality(const CcSiblingInfo& s) {
    return s.cwnd > 0.0 ? (s.inter_loss_bytes * s.inter_loss_bytes) / s.cwnd : 0.0;
  }

  std::vector<CcSiblingInfo> siblings_;
};

}  // namespace mps
