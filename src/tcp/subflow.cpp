#include "tcp/subflow.h"

#include <algorithm>
#include <cassert>

#include "obs/prof.h"
#include "obs/recorder.h"
#include "util/log.h"

namespace mps {

Subflow::Subflow(Simulator& sim, SubflowConfig config, Path& path,
                 std::unique_ptr<CongestionController> cc, SubflowEnv* env)
    : sim_(sim),
      config_(config),
      path_(path),
      cc_(std::move(cc)),
      env_(env),
      rtt_(config.rtt),
      cwnd_(config.initial_cwnd),
      rto_timer_(sim),
      rack_timer_(sim),
      established_at_(sim.now() + config.join_delay) {
  assert(cc_ != nullptr);
  obs_ = &detached_instruments();
  if (FlightRecorder* rec = sim.recorder()) {
    obs_owned_ = std::make_unique<Instruments>();
    obs_ = obs_owned_.get();
    MetricsRegistry& m = rec->metrics();
    const MetricLabels l{static_cast<std::int64_t>(config_.conn_id),
                         static_cast<std::int64_t>(config_.id), {}};
    obs_->segments_sent = m.counter("subflow.segments_sent", l);
    obs_->retransmits = m.counter("subflow.retransmits", l);
    obs_->fast_recoveries = m.counter("subflow.fast_recoveries", l);
    obs_->rtos = m.counter("subflow.rtos", l);
    obs_->idle_resets = m.counter("subflow.idle_cwnd_resets", l);
    obs_->penalizations = m.counter("subflow.penalizations", l);
    obs_->reinjections_carried = m.counter("subflow.reinjections_carried", l);
    obs_->cwnd = m.gauge("subflow.cwnd", l);
    obs_->srtt_ms = m.gauge("subflow.srtt_ms", l);
    obs_->rtt_sample_ms = m.histogram("subflow.rtt_sample_ms", l);
    obs_->cwnd.set(sim_.now(), cwnd_);
  }
}

Subflow::Instruments& Subflow::detached_instruments() {
  static Instruments detached;  // all handles unattached: every op is a no-op
  return detached;
}

CongestionController::AckContext Subflow::make_ctx() const {
  CongestionController::AckContext ctx;
  ctx.self_id = config_.id;
  ctx.cwnd = cwnd_;
  ctx.ssthresh = ssthresh_;
  ctx.srtt_s = rtt_estimate().to_seconds();
  ctx.inter_loss_bytes = inter_loss_bytes_;
  ctx.group = env_ != nullptr ? env_->cc_group() : nullptr;
  ctx.now = sim_.now();
  return ctx;
}

void Subflow::set_cwnd(double cwnd) {
  cwnd = std::max(cwnd, config_.min_cwnd);
  if (cwnd == cwnd_) return;
  cwnd_ = cwnd;
  if (env_ != nullptr) env_->on_cc_input_change();
  obs_->cwnd.set(sim_.now(), cwnd_);
  if (on_cwnd_change) on_cwnd_change(sim_.now(), cwnd_);
}

void Subflow::poll() {
  maybe_idle_reset();
  transmit_staged();
}

void Subflow::maybe_idle_reset() {
  if (!config_.idle_cwnd_reset) return;
  if (last_send_time_.is_never() || !inflight_.empty()) return;
  const Duration idle = sim_.now() - last_send_time_;
  if (idle < rto()) return;
  // Linux tcp_cwnd_restart: decay toward the restart window; the paper's
  // description ("resets the CWND to the initial window value and restarts
  // from the slow-start phase") corresponds to the full decay, which an OFF
  // period of a second or more always reaches.
  if (cwnd_ > config_.initial_cwnd) {
    ++stats_.iw_resets;
    ++stats_.idle_resets;
    obs_->idle_resets.inc();
    MPS_TRACE_EVENT(sim_, EventType::kIdleReset, config_.conn_id, config_.id,
                    {"old_cwnd", cwnd_}, {"idle_s", idle.to_seconds()});
    // RFC 2861 congestion window validation, as in Linux
    // tcp_cwnd_application_limited: remember the achieved operating point in
    // ssthresh so slow start can return to 3/4 of it quickly.
    ssthresh_ = std::max(ssthresh_, 0.75 * cwnd_);
    set_cwnd(config_.initial_cwnd);
  }
  // Prevent re-counting the same idle period.
  last_send_time_ = TimePoint::never();
}

bool Subflow::can_send() const {
  return established() && !draining_ && available_cwnd() >= 1;
}

bool Subflow::can_accept() const {
  return established() && !draining_ && staged_bytes_ < config_.staging_limit_bytes;
}

void Subflow::assign_segment(std::uint64_t data_seq, std::uint32_t payload,
                             bool reinjection) {
  assert(established());
  if (available_cwnd() >= 1 && staged_.empty()) {
    send_segment(data_seq, payload, reinjection);
    return;
  }
  staged_.push_back(StagedSeg{data_seq, payload, reinjection});
  staged_bytes_ += payload;
}

void Subflow::transmit_staged() {
  while (!staged_.empty() && available_cwnd() >= 1) {
    const StagedSeg seg = staged_.front();
    staged_.pop_front();
    staged_bytes_ -= seg.payload;
    send_segment(seg.data_seq, seg.payload, seg.reinjection);
  }
}

std::int64_t Subflow::available_cwnd() const {
  return static_cast<std::int64_t>(cwnd_) - static_cast<std::int64_t>(pipe());
}

void Subflow::send_segment(std::uint64_t data_seq, std::uint32_t payload, bool reinjection) {
  assert(established());
  maybe_idle_reset();

  Packet pkt;
  pkt.conn_id = config_.conn_id;
  pkt.subflow_id = config_.id;
  pkt.subflow_seq = next_seq_++;
  pkt.data_seq = data_seq;
  pkt.payload = payload;
  pkt.ts_val = sim_.now();
  pkt.transmit_seq = transmit_counter_++;

  assert(pkt.subflow_seq == inflight_.hi());  // dense scoreboard: new seqs only at the top
  inflight_.push_back(SentSeg{data_seq, sim_.now(), payload, false, false, false});
  if (static_cast<double>(pipe()) >= cwnd_ - 1.0) cwnd_full_at_send_ = true;
  path_.down().send(pkt);

  last_send_time_ = sim_.now();
  if (reinjection) {
    ++stats_.reinjected_segments;
    obs_->reinjections_carried.inc();
  } else {
    ++stats_.segments_sent;
    stats_.bytes_sent += payload;
    obs_->segments_sent.inc();
  }
  MPS_TRACE_EVENT(sim_, EventType::kPktSend, config_.conn_id, config_.id,
                  {"seq", pkt.subflow_seq}, {"dseq", data_seq}, {"len", payload},
                  {"reinjection", reinjection}, {"cwnd", cwnd_});
  if (!rto_timer_.pending()) arm_rto();
}

void Subflow::collect_data_ranges(
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) const {
  for (std::uint64_t seq = inflight_.lo(); seq != inflight_.hi(); ++seq) {
    const SentSeg& seg = inflight_[seq];
    out.emplace_back(seg.data_seq, seg.data_seq + seg.payload);
  }
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    const StagedSeg& seg = staged_.at(i);
    out.emplace_back(seg.data_seq, seg.data_seq + seg.payload);
  }
}

SegmentRef Subflow::oldest_unacked() const {
  assert(!inflight_.empty());
  const SentSeg& s = inflight_.front();
  return SegmentRef{s.data_seq, s.payload};
}

void Subflow::penalize() {
  // Raiciu et al.: halve the slow subflow's CWND, at most once per RTT, when
  // it blocks the meta send window.
  const TimePoint now = sim_.now();
  if (!last_penalty_.is_never() && now - last_penalty_ < rtt_estimate()) return;
  last_penalty_ = now;
  ++stats_.penalizations;
  obs_->penalizations.inc();
  MPS_TRACE_EVENT(sim_, EventType::kPenalize, config_.conn_id, config_.id,
                  {"cwnd", cwnd_});
  ssthresh_ = std::max(cwnd_ / 2.0, config_.min_cwnd);
  set_cwnd(ssthresh_);
}

void Subflow::on_ack_packet(const Packet& ack) {
  assert(ack.is_ack);
  if (env_ != nullptr) {
    env_->on_rwnd_update(ack.rwnd);
    env_->on_data_ack(ack.data_ack);
  }
  const std::uint64_t prev_una = snd_una_;
  const std::uint64_t prev_sack_high = sack_high_;
  sack_high_ = std::max(sack_high_, ack.sack_high);
  const bool newly_sacked = apply_sack(ack);

  if (ack.ack_seq > snd_una_) {
    process_new_ack(ack);
  } else if (!inflight_.empty()) {
    process_dupack(ack);
  }

  // Delivery evidence for RACK: this ack confirmed new data at the receiver,
  // and its echoed timestamp tells us when the newest confirmed transmission
  // left this sender.
  if (snd_una_ > prev_una || sack_high_ > prev_sack_high || newly_sacked) {
    rack_delivered_ts_ = std::max(rack_delivered_ts_, ack.ts_val);
  }

  update_loss_marks();
  pump_retransmissions();
  // Freed window space first serves this subflow's committed backlog; only
  // then may the connection schedule new data.
  transmit_staged();
  if (env_ != nullptr) env_->on_subflow_ack(*this);
}

void Subflow::process_new_ack(const Packet& ack) {
  std::uint32_t acked_segments = 0;
  std::uint64_t acked_bytes = 0;
  while (!inflight_.empty() && inflight_.lo() < ack.ack_seq) {
    const SentSeg& seg = inflight_.front();
    if (seg.lost && !seg.retransmitted) {
      assert(lost_not_rtx_ > 0);
      --lost_not_rtx_;
    }
    if (seg.sacked) {
      assert(sacked_count_ > 0);
      --sacked_count_;
    }
    acked_bytes += seg.payload;
    ++acked_segments;
    inflight_.pop_front();
  }
  snd_una_ = ack.ack_seq;
  dupacks_ = 0;
  // Karn's algorithm (RFC 6298 5.7): keep the backed-off RTO until an ack
  // for data that was *not* retransmitted arrives; an ack elicited by a
  // retransmission says nothing about the path's current RTT regime.
  if (!ack.ts_retransmit) rto_backoff_ = 0;
  inter_loss_bytes_ += static_cast<double>(acked_bytes);

  // Karn's algorithm: only sample RTT from echoes of original transmissions.
  if (!ack.ts_retransmit) {
    const Duration sample = sim_.now() - ack.ts_val;
    rtt_.add_sample(sample);
    ++stats_.rtt_samples;
    obs_->srtt_ms.set(sim_.now(), rtt_.srtt().to_millis());
    obs_->rtt_sample_ms.record(sample.to_millis());
  }
  // inter_loss_bytes_ advanced (and possibly the RTT estimate): the group's
  // cached coupled-CC terms must not serve the ca_increase calls below.
  if (env_ != nullptr) env_->on_cc_input_change();
  MPS_TRACE_EVENT(sim_, EventType::kPktAck, config_.conn_id, config_.id,
                  {"ack", ack.ack_seq}, {"acked", acked_segments},
                  {"srtt_ms", rtt_.srtt().to_millis()}, {"cwnd", cwnd_});

  if (in_recovery_) {
    if (ack.ack_seq >= recover_point_) {
      in_recovery_ = false;
      MPS_TRACE_EVENT(sim_, EventType::kRecoveryExit, config_.conn_id, config_.id,
                      {"ack", ack.ack_seq}, {"ssthresh", ssthresh_});
      set_cwnd(ssthresh_);
    }
    // Partial acks: loss marking + the retransmission pump (caller) handle
    // the remaining holes; no window growth during recovery.
  } else {
    // Window growth per acked full segment — but only when the window was
    // actually the limiting factor (Linux tcp_is_cwnd_limited, recorded at
    // transmit time); an application-limited subflow must not inflate its
    // window.
    if (cwnd_full_at_send_) {
      MPS_PROF_SCOPE(kCcUpdate);
      for (std::uint32_t i = 0; i < acked_segments; ++i) {
        if (in_slow_start()) {
          set_cwnd(cwnd_ + 1.0);
        } else {
          set_cwnd(cwnd_ + cc_->ca_increase(make_ctx()));
        }
      }
    }
  }

  if (inflight_.empty()) {
    rto_timer_.cancel();
    cwnd_full_at_send_ = false;  // flight drained; re-evaluate at next send
  } else {
    arm_rto();
  }
}

void Subflow::process_dupack(const Packet& ack) {
  (void)ack;
  ++dupacks_;
  // With SACK feedback, loss marking (update_loss_marks) is the primary
  // detector. The classic three-dupack rule remains as a fallback for
  // patterns SACK cannot flag (e.g. a single loss with exactly three
  // following segments).
  if (!in_recovery_ && dupacks_ >= config_.dupack_threshold && lost_not_rtx_ == 0 &&
      !inflight_.empty()) {
    SentSeg& lowest = inflight_.front();
    if (!lowest.lost && !lowest.sacked) {
      lowest.lost = true;
      lowest.retransmitted = false;
      ++lost_not_rtx_;
      enter_fast_recovery();
    }
  }
}

bool Subflow::apply_sack(const Packet& ack) {
  bool newly_sacked = false;
  for (int b = 0; b < ack.n_sack; ++b) {
    // The dense scoreboard makes lower_bound a max(): intersect the SACK
    // block with [lo, hi) and walk it directly.
    const std::uint64_t from = std::max(inflight_.lo(), ack.sack_lo[b]);
    const std::uint64_t to = std::min(inflight_.hi(), ack.sack_hi[b]);
    for (std::uint64_t seq = from; seq < to; ++seq) {
      SentSeg& seg = inflight_[seq];
      if (seg.sacked) continue;
      seg.sacked = true;
      newly_sacked = true;
      ++sacked_count_;
      if (seg.lost) {
        seg.lost = false;
        if (!seg.retransmitted) {
          assert(lost_not_rtx_ > 0);
          --lost_not_rtx_;
        }
      }
    }
  }
  return newly_sacked;
}

Duration Subflow::rack_timeout() const {
  // ~1.25 smoothed RTTs, floored for very low-latency paths.
  return std::max(rtt_.srtt() + Duration::nanos(rtt_.srtt().ns() / 4), Duration::millis(40));
}

void Subflow::update_loss_marks() {
  // FACK rule: a non-SACKed segment is lost once >= dupack_threshold
  // segments above it have been received. Retransmissions are covered by a
  // RACK-style rule: a retransmission not SACKed within rack_timeout() of
  // its (re)send was itself lost.
  bool newly_lost = false;
  for (std::uint64_t seq = inflight_.lo(); seq != inflight_.hi(); ++seq) {
    if (seq + config_.dupack_threshold > sack_high_) break;
    SentSeg& seg = inflight_[seq];
    if (seg.lost || seg.sacked) continue;
    if (seg.retransmitted) {
      // Re-mark only with delivery evidence newer than the retransmission
      // itself (RFC 8985): the peer confirmed something sent after it, so
      // the retransmission had its chance and died. Pure elapsed time is
      // not evidence — during a blackout this would otherwise resend every
      // rack_timeout() forever, re-arming the RTO each time and never
      // engaging the exponential backoff ladder.
      if (rack_delivered_ts_ > seg.sent_at && sim_.now() - seg.sent_at > rack_timeout()) {
        seg.retransmitted = false;
        seg.lost = true;
        ++lost_not_rtx_;
        newly_lost = true;
        MPS_TRACE_EVENT(sim_, EventType::kLossMark, config_.conn_id, config_.id,
                        {"seq", seq}, {"rule", "rack"});
      }
      continue;
    }
    seg.lost = true;
    ++lost_not_rtx_;
    newly_lost = true;
    MPS_TRACE_EVENT(sim_, EventType::kLossMark, config_.conn_id, config_.id,
                    {"seq", seq}, {"rule", "fack"});
  }
  if (newly_lost && !in_recovery_) enter_fast_recovery();
  arm_rack_timer();
}

void Subflow::arm_rack_timer() {
  // Find the earliest outstanding retransmission below the FACK point; when
  // the ack clock dies (everything in flight), the timer re-detects its loss.
  TimePoint earliest = TimePoint::never();
  for (std::uint64_t seq = inflight_.lo(); seq != inflight_.hi(); ++seq) {
    if (seq + config_.dupack_threshold > sack_high_) break;
    const SentSeg& seg = inflight_[seq];
    if (seg.lost || seg.sacked || !seg.retransmitted) continue;
    // No delivery evidence since this retransmission -> the RTO owns it; a
    // later ack re-runs update_loss_marks() and re-evaluates this timer.
    if (rack_delivered_ts_ <= seg.sent_at) continue;
    earliest = std::min(earliest, seg.sent_at);
  }
  if (earliest.is_never()) {
    rack_timer_.cancel();
    return;
  }
  const TimePoint deadline = earliest + rack_timeout() + Duration::millis(1);
  rack_timer_.schedule_at(std::max(deadline, sim_.now() + Duration::millis(1)), [this] {
    update_loss_marks();
    pump_retransmissions();
  });
}

void Subflow::enter_fast_recovery() {
  in_recovery_ = true;
  recover_point_ = next_seq_;  // recovery ends once everything sent so far acks
  {
    MPS_PROF_SCOPE(kCcUpdate);
    cc_->on_loss_event(make_ctx());
  }
  MPS_TRACE_EVENT(sim_, EventType::kFastRecovery, config_.conn_id, config_.id,
                  {"cwnd", cwnd_}, {"recover_point", recover_point_});
  ssthresh_ = std::max(cwnd_ * cc_->loss_factor(), config_.min_cwnd);
  set_cwnd(ssthresh_);
  inter_loss_bytes_ = 0.0;
  // Reset explicitly: set_cwnd() above may have been a no-op (cwnd already
  // at the target), yet inter_loss_bytes_ changed.
  if (env_ != nullptr) env_->on_cc_input_change();
  ++stats_.fast_retransmits;
  obs_->fast_recoveries.inc();
}

void Subflow::pump_retransmissions() {
  if (lost_not_rtx_ == 0) return;
  for (std::uint64_t seq = inflight_.lo(); seq != inflight_.hi(); ++seq) {
    if (pipe() >= static_cast<std::size_t>(std::max(cwnd_, 1.0))) break;
    SentSeg& seg = inflight_[seq];
    if (!seg.lost || seg.retransmitted) continue;
    retransmit(seq, seg);
    if (lost_not_rtx_ == 0) break;
  }
  // Fresh retransmissions need RACK coverage in case they are lost too and
  // the ack clock dies.
  arm_rack_timer();
}

void Subflow::retransmit(std::uint64_t seq, SentSeg& seg) {
  Packet pkt;
  pkt.conn_id = config_.conn_id;
  pkt.subflow_id = config_.id;
  pkt.subflow_seq = seq;
  pkt.data_seq = seg.data_seq;
  pkt.payload = seg.payload;
  pkt.ts_val = sim_.now();
  pkt.retransmit = true;
  pkt.transmit_seq = transmit_counter_++;

  assert(seg.lost && !seg.retransmitted);
  seg.lost = false;  // presumed repaired; RACK re-marks if the rtx dies too
  seg.retransmitted = true;
  seg.sent_at = sim_.now();
  --lost_not_rtx_;
  path_.down().send(pkt);
  last_send_time_ = sim_.now();
  ++stats_.retransmits;
  obs_->retransmits.inc();
  MPS_TRACE_EVENT(sim_, EventType::kPktRetransmit, config_.conn_id, config_.id,
                  {"seq", seq}, {"dseq", seg.data_seq}, {"len", seg.payload});
  arm_rto();
}

void Subflow::arm_rto() {
  const Duration timeout = rto() * (std::int64_t{1} << std::min(rto_backoff_, 6));
  rto_timer_.schedule_after(timeout, [this] { on_rto_fire(); });
}

void Subflow::on_rto_fire() {
  if (inflight_.empty()) return;
  ++stats_.rto_events;
  ++stats_.iw_resets;  // back into slow start from a minimal window
  obs_->rtos.inc();
  MPS_TRACE_EVENT(sim_, EventType::kRtoFire, config_.conn_id, config_.id,
                  {"backoff", rto_backoff_}, {"cwnd", cwnd_},
                  {"inflight", static_cast<std::uint64_t>(inflight_.size())});
  {
    MPS_PROF_SCOPE(kCcUpdate);
    cc_->on_rto(make_ctx());
  }
  ssthresh_ = std::max(cwnd_ / 2.0, config_.min_cwnd);
  set_cwnd(config_.min_cwnd);
  in_recovery_ = false;
  dupacks_ = 0;
  inter_loss_bytes_ = 0.0;
  if (env_ != nullptr) env_->on_cc_input_change();  // see enter_fast_recovery
  ++rto_backoff_;

  // Everything outstanding that the receiver has not SACKed is presumed
  // lost and must be resent.
  lost_not_rtx_ = 0;
  for (std::uint64_t seq = inflight_.lo(); seq != inflight_.hi(); ++seq) {
    SentSeg& seg = inflight_[seq];
    if (seg.sacked) {
      seg.lost = false;
      continue;
    }
    seg.lost = true;
    seg.retransmitted = false;
    ++lost_not_rtx_;
  }
  pump_retransmissions();
  // The pump is pipe-gated and skips SACKed segments; whatever it managed to
  // send, data is still outstanding, so this timer must never go quiet with
  // a nonempty flight (invariant: rto-liveness).
  if (!inflight_.empty() && !rto_timer_.pending()) arm_rto();
  if (env_ != nullptr) env_->on_subflow_ack(*this);
}

// ---------------------------------------------------------------------------
// SubflowReceiver

SubflowReceiver::SubflowReceiver(Simulator& sim, std::uint32_t conn_id,
                                 std::uint32_t subflow_id, Path& path, MetaSink* sink)
    : sim_(sim), conn_id_(conn_id), subflow_id_(subflow_id), path_(path), sink_(sink) {}

void SubflowReceiver::on_data_packet(const Packet& pkt) {
  assert(!pkt.is_ack);
  const TimePoint now = sim_.now();
  sink_->on_wire_arrival(subflow_id_, pkt.data_seq, pkt.payload, now);
  rcv_high_ = std::max(rcv_high_, pkt.subflow_seq + 1);

  if (pkt.subflow_seq == rcv_next_) {
    ++rcv_next_;
    sink_->on_subflow_deliver(subflow_id_, pkt.data_seq, pkt.payload, now);
    // Drain any contiguous held segments.
    while (const Held* h = ooo_.find(rcv_next_)) {
      const Held held = *h;
      ooo_.erase(rcv_next_);
      ++rcv_next_;
      sink_->on_subflow_deliver(subflow_id_, held.data_seq, held.payload, held.arrival);
    }
  } else if (pkt.subflow_seq > rcv_next_) {
    ooo_.insert(pkt.subflow_seq, Held{pkt.data_seq, now, pkt.payload});
  }
  // else: duplicate of an already-delivered segment; ack it again below.

  send_ack(pkt);
}

void SubflowReceiver::send_ack(const Packet& trigger) {
  Packet ack;
  ack.conn_id = conn_id_;
  ack.subflow_id = subflow_id_;
  ack.is_ack = true;
  ack.ack_seq = rcv_next_;
  ack.sack_high = rcv_high_;

  // SACK blocks: contiguous runs of out-of-order segments, lowest first.
  std::uint64_t run = ooo_.min_key();
  while (run != SeqWindow<Held>::kNone && ack.n_sack < Packet::kMaxSackBlocks) {
    const std::uint64_t lo = run;
    std::uint64_t hi = lo + 1;
    while (ooo_.contains(hi)) ++hi;
    ack.sack_lo[ack.n_sack] = lo;
    ack.sack_hi[ack.n_sack] = hi;
    ++ack.n_sack;
    run = ooo_.first_at_or_after(hi + 1);
  }
  ack.data_ack = sink_->meta_data_ack();
  ack.rwnd = sink_->meta_rwnd();
  ack.ts_val = trigger.ts_val;
  ack.ts_retransmit = trigger.retransmit;
  path_.up().send(ack);
}

void Subflow::restore_from(const Subflow& src) {
  rtt_ = src.rtt_;
  cwnd_ = src.cwnd_;
  ssthresh_ = src.ssthresh_;
  next_seq_ = src.next_seq_;
  snd_una_ = src.snd_una_;
  inflight_ = src.inflight_;
  staged_ = src.staged_;
  staged_bytes_ = src.staged_bytes_;
  dupacks_ = src.dupacks_;
  in_recovery_ = src.in_recovery_;
  recover_point_ = src.recover_point_;
  sack_high_ = src.sack_high_;
  lost_not_rtx_ = src.lost_not_rtx_;
  sacked_count_ = src.sacked_count_;
  rto_backoff_ = src.rto_backoff_;
  rack_delivered_ts_ = src.rack_delivered_ts_;
  established_at_ = src.established_at_;
  draining_ = src.draining_;
  cwnd_full_at_send_ = src.cwnd_full_at_send_;
  last_send_time_ = src.last_send_time_;
  last_penalty_ = src.last_penalty_;
  inter_loss_bytes_ = src.inter_loss_bytes_;
  stats_ = src.stats_;
  transmit_counter_ = src.transmit_counter_;
  cc_->restore_from(*src.cc_);
  if (env_ != nullptr) env_->on_cc_input_change();
  // The timers hold fixed callbacks per owner (arm_rto / arm_rack_timer), so
  // cloning re-creates the exact closures the source installed.
  rto_timer_.clone_from(src.rto_timer_, [this] { on_rto_fire(); });
  rack_timer_.clone_from(src.rack_timer_, [this] {
    update_loss_marks();
    pump_retransmissions();
  });
}

}  // namespace mps
