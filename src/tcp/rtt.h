// RTT estimation per RFC 6298 (SRTT/RTTVAR, RTO computation) plus a
// windowed standard deviation of recent samples.
//
// The windowed stddev is what ECF uses for its variability margin
// delta = max(sigma_f, sigma_s); the kernel implementation derives it from
// the same RTT samples feeding SRTT.
#pragma once

#include "util/stats.h"
#include "util/time.h"

namespace mps {

struct RttConfig {
  Duration min_rto = Duration::millis(200);  // Linux TCP_RTO_MIN
  Duration max_rto = Duration::seconds(60);
  Duration initial_rto = Duration::seconds(1);
  std::size_t stddev_window = 16;  // samples feeding ECF's sigma
};

class RttEstimator {
 public:
  explicit RttEstimator(RttConfig config = {}) : config_(config), window_(config.stddev_window) {}

  void add_sample(Duration rtt);

  bool has_sample() const { return n_samples_ > 0; }
  std::size_t sample_count() const { return n_samples_; }

  // Smoothed RTT; zero until the first sample.
  Duration srtt() const { return srtt_; }
  Duration rttvar() const { return rttvar_; }
  Duration min_rtt() const { return min_rtt_; }
  Duration last_rtt() const { return last_; }

  // Standard deviation over the recent sample window (ECF's sigma).
  Duration stddev() const { return Duration::from_seconds(window_.stddev()); }

  // Lifetime statistics over all samples (testbed Table 2 reporting).
  const RunningStats& lifetime() const { return lifetime_; }

  // Retransmission timeout: srtt + 4 * rttvar, clamped.
  Duration rto() const;

  void reset() { *this = RttEstimator{config_}; }

 private:
  RttConfig config_;
  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();
  Duration min_rtt_ = Duration::infinite();
  Duration last_ = Duration::zero();
  std::size_t n_samples_ = 0;
  WindowedStats window_;
  RunningStats lifetime_;
};

}  // namespace mps
