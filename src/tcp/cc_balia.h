// BALIA — the Balanced Linked Adaptation algorithm (Peng, Walid, Hwang, Low;
// IEEE/ACM ToN 2016, draft-walid-mptcp-congestion-control), the fourth
// coupled controller beside LIA/OLIA and the one the Linux out-of-tree MPTCP
// stack ships as `balia`. Designed to sit between LIA's friendliness and
// OLIA's responsiveness.
//
// With x_i = cwnd_i / rtt_i (the subflow rates) and, for subflow r,
//   alpha_r = max_i(x_i) / x_r  (>= 1),
// each ack of one segment on r grows the window by
//   cwnd_r += (x_r / rtt_r) / (sum_i x_i)^2
//             * ((1 + alpha_r) / 2) * ((4 + alpha_r) / 5)
// and each loss event on r shrinks it by
//   cwnd_r -= (cwnd_r / 2) * min(alpha_r, 1.5),
// i.e. the remaining fraction is 1 - min(alpha_r, 1.5) / 2 in [0.25, 0.5].
// On a single path (alpha = 1) both rules collapse to Reno's 1/cwnd and a
// plain halving.
//
// The Subflow loss path calls on_loss_event() (where alpha_r is captured
// from the group's shared CoupledCcTerms) before reading loss_factor(), so
// the group-dependent decrement fits the controller interface unchanged.
#pragma once

#include <algorithm>

#include "tcp/cc.h"

namespace mps {

class BaliaCc final : public CongestionController {
 public:
  double ca_increase(const AckContext& ctx) override {
    const double uncoupled = ctx.cwnd > 0.0 ? 1.0 / ctx.cwnd : 1.0;
    if (ctx.group == nullptr) return uncoupled;
    const CoupledCcTerms& t = ctx.group->coupled_terms();
    const double rtt = ctx.srtt_s > 0.0 ? ctx.srtt_s : 1e-3;
    const double x_r = ctx.cwnd / rtt;
    if (t.balia_sum_x <= 0.0 || x_r <= 0.0) return uncoupled;
    const double alpha = std::max(1.0, t.balia_max_x / x_r);
    return (x_r / rtt) / (t.balia_sum_x * t.balia_sum_x) * ((1.0 + alpha) / 2.0) *
           ((4.0 + alpha) / 5.0);
  }

  // Capture alpha_r at the loss event; enter_fast_recovery() reads
  // loss_factor() immediately afterwards.
  void on_loss_event(const AckContext& ctx) override {
    alpha_at_loss_ = 1.0;
    if (ctx.group == nullptr) return;
    const CoupledCcTerms& t = ctx.group->coupled_terms();
    const double rtt = ctx.srtt_s > 0.0 ? ctx.srtt_s : 1e-3;
    const double x_r = ctx.cwnd / rtt;
    if (x_r > 0.0 && t.balia_max_x > 0.0) {
      alpha_at_loss_ = std::max(1.0, t.balia_max_x / x_r);
    }
  }

  double loss_factor() const override {
    return 1.0 - std::min(alpha_at_loss_, 1.5) / 2.0;
  }

  void reset() override { alpha_at_loss_ = 1.0; }

  const char* name() const override { return "balia"; }

  void restore_from(const CongestionController& src) override {
    alpha_at_loss_ = static_cast<const BaliaCc&>(src).alpha_at_loss_;
  }

 private:
  double alpha_at_loss_ = 1.0;  // alpha_r captured by the last loss event
};

}  // namespace mps
