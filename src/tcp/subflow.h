// One MPTCP subflow: the sender-side TCP state machine and the client-side
// receiver.
//
// The sender implements NewReno-style loss recovery (dupack fast retransmit,
// partial-ack hole filling), RFC 6298 RTO with exponential backoff, and the
// idle CWND reset the paper identifies as the root cause of fast-path
// under-utilization: a subflow idle for longer than its RTO restarts from
// the initial window (RFC 5681 / Linux tcp_cwnd_restart). Congestion
// avoidance increase is delegated to a pluggable CongestionController, so
// the same subflow runs Reno, CUBIC, or the coupled LIA/OLIA controllers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "net/path.h"
#include "obs/hook.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "tcp/cc.h"
#include "tcp/rtt.h"
#include "traffic/arena.h"
#include "util/ring.h"
#include "util/time.h"

namespace mps {

class Subflow;

// Callbacks from a subflow into its owning MPTCP connection (server side).
class SubflowEnv {
 public:
  virtual ~SubflowEnv() = default;
  // New data was cumulatively acked on `sf`; the connection should try to
  // schedule more segments.
  virtual void on_subflow_ack(Subflow& sf) = 0;
  // Meta-level cumulative ack advanced (frees connection send buffer).
  virtual void on_data_ack(std::uint64_t data_ack) = 0;
  // Advertised meta receive window update.
  virtual void on_rwnd_update(std::uint64_t rwnd) = 0;
  // Group view for coupled congestion controllers (may return nullptr).
  virtual const CcGroup* cc_group() const = 0;
  // An input of the group's shared CoupledCcTerms changed on this subflow
  // (cwnd, RTT estimate, or inter-loss bytes); the group's cached aggregates
  // are stale. Default: no cache to invalidate.
  virtual void on_cc_input_change() {}
};

struct SubflowConfig {
  std::uint32_t id = 0;
  std::uint32_t conn_id = 0;
  std::uint32_t mss = kDefaultMss;
  double initial_cwnd = 10.0;  // RFC 6928
  double min_cwnd = 2.0;
  std::uint32_t dupack_threshold = 3;
  // RFC 5681 7.1 / Linux tcp_slow_start_after_idle: restart from IW after an
  // idle period >= RTO. Switchable to reproduce paper Fig. 6.
  bool idle_cwnd_reset = true;
  // Per-subflow send-queue limit: segments a scheduler may stage on this
  // subflow beyond its CWND (TSQ-style). In the MPTCP 0.89 stack the paper
  // uses, segments are committed to a subflow's send queue at scheduling
  // time and cannot be rescheduled — paper Fig. 3 shows ~130 KB staged on
  // the 0.3 Mbps WiFi subflow. This committed backlog is what makes default
  // scheduling so costly on slow paths, and what ECF's waiting avoids.
  std::uint64_t staging_limit_bytes = 64 * 1024;
  // Secondary subflows join via MP_JOIN one handshake after the connection
  // starts; primary subflows have zero delay.
  Duration join_delay = Duration::zero();
  RttConfig rtt;
};

struct SubflowStats {
  std::uint64_t segments_sent = 0;      // original transmissions
  std::uint64_t bytes_sent = 0;         // original payload bytes
  std::uint64_t reinjected_segments = 0;  // opportunistic reinjections carried
  std::uint64_t retransmits = 0;        // subflow-level loss retransmissions
  std::uint64_t fast_retransmits = 0;
  std::uint64_t rto_events = 0;
  std::uint64_t iw_resets = 0;  // CWND pulled back to <= IW (idle or RTO)
  std::uint64_t idle_resets = 0;
  std::uint64_t penalizations = 0;
  std::uint64_t rtt_samples = 0;
};

// A segment's meta-level identity, used for opportunistic reinjection.
struct SegmentRef {
  std::uint64_t data_seq = 0;
  std::uint32_t payload = 0;
};

// Sender-side scoreboard entry for one transmitted segment, keyed by subflow
// sequence number. Exposed read-only for the invariant checker
// (check/invariants.h); the state machine in subflow.cpp is the only writer.
// Segments are assigned consecutive sequence numbers and retired only by the
// cumulative ack, so the scoreboard is the dense range [snd_una, next_seq)
// and lives in a SeqRing rather than a node-based map.
// Members are ordered 8/8/4/1/1/1 so the struct packs into 24 bytes: the
// scoreboard ring is the largest per-flow heap line at 100k flows, and the
// u32/TimePoint padding hole of the naive order costs 8 bytes per segment.
struct SentSeg {
  std::uint64_t data_seq = 0;
  TimePoint sent_at;
  std::uint32_t payload = 0;
  bool retransmitted = false;
  bool sacked = false;  // receiver holds it out of order
  bool lost = false;    // FACK-deemed lost, awaiting retransmission
};
static_assert(sizeof(SentSeg) == 24);

class Subflow final {
 public:
  // Churned subflows recycle fixed-size arena slots instead of hitting the
  // global heap (traffic/arena.h).
  static void* operator new(std::size_t size) { return arena_allocate<Subflow>(size); }
  static void operator delete(void* p, std::size_t size) {
    arena_deallocate<Subflow>(p, size);
  }


  Subflow(Simulator& sim, SubflowConfig config, Path& path,
          std::unique_ptr<CongestionController> cc, SubflowEnv* env);

  // --- wiring -------------------------------------------------------------
  // Handler for ACK packets demuxed from the path's uplink.
  void on_ack_packet(const Packet& ack);

  // --- scheduler-facing state ---------------------------------------------
  std::uint32_t id() const { return config_.id; }
  Path& path() { return path_; }
  const Path& path() const { return path_; }
  bool established() const { return sim_.now() >= established_at_; }
  // --- teardown state (mptcp/path_manager.h) -------------------------------
  // A draining subflow keeps its ack clock and loss-recovery machinery but
  // takes no new work: can_send()/can_accept() go false, so schedulers, the
  // redundant duplicate loop, and opportunistic reinjection all skip it. The
  // owning connection finalizes (destroys) it once drained().
  bool draining() const { return draining_; }
  void begin_drain() { draining_ = true; }
  // Every committed byte delivered: nothing staged, nothing in flight.
  bool drained() const { return staged_.empty() && inflight_.empty(); }
  // Eligible for scheduler picks: established and not being torn down.
  bool schedulable() const { return established() && !draining_; }
  // Applies lazy state transitions (idle CWND reset). The connection calls
  // this on every subflow before a scheduling round.
  void poll();
  // True when established with at least one free segment slot in CWND.
  bool can_send() const;
  // True when a scheduler may stage another segment on this subflow (the
  // mptcp.org availability notion: room in the subflow send queue).
  bool can_accept() const;
  std::uint64_t staged_bytes() const { return staged_bytes_; }
  std::size_t staged_segments() const { return staged_.size(); }
  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  bool in_slow_start() const { return cwnd_ < ssthresh_; }
  std::uint32_t inflight_segments() const { return static_cast<std::uint32_t>(inflight_.size()); }
  // Free CWND space in whole segments (>= 0).
  std::int64_t available_cwnd() const;
  std::uint32_t mss() const { return config_.mss; }

  const RttEstimator& rtt() const { return rtt_; }
  Duration srtt() const { return rtt_.srtt(); }
  // ECF's sigma: RTT variability. The kernel derives it from the smoothed
  // mean deviation (mdev/rttvar); the windowed sample stddev alone reacts
  // too slowly to queue sawtooth, so take the larger of the two.
  Duration rtt_stddev() const { return std::max(rtt_.stddev(), rtt_.rttvar()); }
  Duration rto() const { return rtt_.rto(); }
  // Before any sample, fall back to the path's base RTT so schedulers have a
  // usable ordering from the first decision (mirrors the kernel seeding the
  // estimate from the SYN/ACK exchange).
  Duration rtt_estimate() const {
    return rtt_.has_sample() ? rtt_.srtt() : path_.rtt_base();
  }

  // --- transmission -------------------------------------------------------
  // Commits one segment to this subflow (the scheduler's decision is final,
  // as in MPTCP 0.89): transmitted immediately if CWND allows, staged in the
  // subflow send queue otherwise. `reinjection` marks duplicate copies
  // (redundant scheduling / opportunistic retransmission accounting).
  void assign_segment(std::uint64_t data_seq, std::uint32_t payload,
                      bool reinjection = false);
  // Sends one segment carrying [data_seq, data_seq + payload) immediately.
  // `reinjection` marks opportunistic retransmissions of data owned by
  // another subflow. Precondition: available_cwnd() >= 1.
  void send_segment(std::uint64_t data_seq, std::uint32_t payload, bool reinjection = false);

  // --- opportunistic retransmission / penalization support -----------------
  bool has_unacked() const { return !inflight_.empty(); }
  SegmentRef oldest_unacked() const;
  // Halves CWND (at most once per SRTT), per Raiciu et al.'s penalization.
  void penalize();

  // --- diagnostics ----------------------------------------------------------
  const SubflowStats& stats() const { return stats_; }
  TimePoint last_send_time() const { return last_send_time_; }
  TimePoint established_at() const { return established_at_; }
  const char* cc_name() const { return cc_->name(); }
  double inter_loss_bytes() const { return inter_loss_bytes_; }

  // Fired on every CWND change with (time, cwnd); used by trace sinks.
  // Multi-listener: several tracers (and the flight recorder) compose
  // instead of overwriting each other.
  Hook<TimePoint, double> on_cwnd_change;

  // --- invariant-checker inspection (check/invariants.h) --------------------
  // Read-only views of the sender state machine; no test or checker may
  // mutate through these.
  const SeqRing<SentSeg>& inflight() const { return inflight_; }
  std::uint64_t snd_una() const { return snd_una_; }
  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t sack_high() const { return sack_high_; }
  std::size_t lost_not_rtx() const { return lost_not_rtx_; }
  std::size_t sacked_count() const { return sacked_count_; }
  bool in_recovery() const { return in_recovery_; }
  int rto_backoff() const { return rto_backoff_; }
  bool rto_pending() const { return rto_timer_.pending(); }
  bool rack_pending() const { return rack_timer_.pending(); }
  double min_cwnd() const { return config_.min_cwnd; }
  // Appends the meta-level [data_seq, data_seq + payload) range of every
  // segment this subflow still holds a copy of (in flight or staged).
  void collect_data_ranges(std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) const;

  // Snapshot support (exp/snapshot.h): copies the whole sender state machine
  // from `src` — scoreboard, staging queue, CWND/recovery/RTT/CC state,
  // stats — and adopts src's pending RTO/RACK timers by EventId. The
  // simulator's queue must already be structure-cloned from src's.
  void restore_from(const Subflow& src);

 private:
  CongestionController::AckContext make_ctx() const;
  void set_cwnd(double cwnd);
  void maybe_idle_reset();
  void process_new_ack(const Packet& ack);
  void process_dupack(const Packet& ack);
  // Applies the ACK's SACK blocks to the scoreboard; returns true when the
  // ack newly SACKed at least one segment (delivery evidence for RACK).
  bool apply_sack(const Packet& ack);
  // Marks segments lost by the FACK rule (>= 3 segments SACKed above them).
  void update_loss_marks();
  void enter_fast_recovery();
  // Segments presumed in the network: everything in flight that is neither
  // SACKed nor deemed lost, plus retransmissions of lost segments.
  std::size_t pipe() const { return inflight_.size() - lost_not_rtx_ - sacked_count_; }
  // Retransmits deemed-lost segments while pipe() < cwnd.
  void pump_retransmissions();
  void retransmit(std::uint64_t seq, SentSeg& seg);
  void arm_rto();
  void on_rto_fire();
  // Arms the RACK reorder timer for the earliest outstanding retransmission
  // (lost retransmissions have no ack clock to re-detect them otherwise).
  Duration rack_timeout() const;
  void arm_rack_timer();
  // Moves staged segments into the network while CWND space allows.
  void transmit_staged();

  Simulator& sim_;
  SubflowConfig config_;
  Path& path_;
  std::unique_ptr<CongestionController> cc_;
  SubflowEnv* env_;

  RttEstimator rtt_;
  double cwnd_;
  double ssthresh_ = 1e9;
  std::uint64_t next_seq_ = 0;   // next subflow sequence number to assign
  std::uint64_t snd_una_ = 0;    // lowest unacked subflow seq
  // Dense scoreboard over [snd_una_, next_seq_): inflight_.lo() == snd_una_
  // and inflight_.hi() == next_seq_ at every quiescent point.
  SeqRing<SentSeg> inflight_;

  // Segments committed by the scheduler, awaiting CWND space.
  struct StagedSeg {
    std::uint64_t data_seq;
    std::uint32_t payload;
    bool reinjection;
  };
  RingDeque<StagedSeg> staged_;
  std::uint64_t staged_bytes_ = 0;

  std::uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_point_ = 0;  // recovery ends when ack_seq reaches it
  std::uint64_t sack_high_ = 0;      // highest sack_high seen from the peer
  std::size_t lost_not_rtx_ = 0;     // deemed lost, not yet retransmitted
  std::size_t sacked_count_ = 0;     // in inflight_, received out of order

  Timer rto_timer_;
  Timer rack_timer_;
  int rto_backoff_ = 0;
  // Send timestamp of the newest transmission whose delivery the peer has
  // confirmed (cumulative or SACK). RACK-style lost-retransmission detection
  // requires this to pass the retransmission's own send time — evidence the
  // path delivered something sent after it (RFC 8985); with no such evidence
  // (total blackout) recovery belongs to the RTO ladder. origin() = none yet.
  TimePoint rack_delivered_ts_ = TimePoint::origin();

  TimePoint established_at_;
  bool draining_ = false;
  bool cwnd_full_at_send_ = false;  // Linux tcp_is_cwnd_limited analogue
  TimePoint last_send_time_ = TimePoint::never();
  TimePoint last_penalty_ = TimePoint::never();
  double inter_loss_bytes_ = 0.0;  // OLIA's l_r

  SubflowStats stats_;
  std::uint64_t transmit_counter_ = 0;

  // Flight-recorder instruments; no-op handles when the owning Simulator has
  // no recorder attached (see obs/metrics.h naming convention in DESIGN.md).
  // Behind a pointer: the handle block is 80 bytes, and in unrecorded runs
  // (every scale cell, every golden) all subflows share one static detached
  // block whose handles no-op, so each subflow carries 16 bytes instead.
  struct Instruments {
    Counter segments_sent, retransmits, fast_recoveries, rtos, idle_resets;
    Counter penalizations, reinjections_carried;
    Gauge cwnd, srtt_ms;
    Histogram rtt_sample_ms;
  };
  static Instruments& detached_instruments();
  std::unique_ptr<Instruments> obs_owned_;  // populated only when recording
  Instruments* obs_ = nullptr;              // obs_owned_ or the shared detached block
};

// Client-side receiver for one subflow: enforces subflow-level in-order
// delivery toward the meta receiver (a loss on a subflow blocks later
// segments of that subflow, as in real TCP) and generates cumulative ACKs
// carrying the meta-level data ack and advertised window.
class MetaSink {
 public:
  virtual ~MetaSink() = default;
  // A segment became deliverable in subflow order. `wire_arrival` is when
  // the packet physically arrived at the client.
  virtual void on_subflow_deliver(std::uint32_t subflow_id, std::uint64_t data_seq,
                                  std::uint32_t payload, TimePoint wire_arrival) = 0;
  // Every data packet arrival, before any ordering (trace granularity).
  virtual void on_wire_arrival(std::uint32_t /*subflow_id*/, std::uint64_t /*data_seq*/,
                               std::uint32_t /*payload*/, TimePoint /*arrival*/) {}
  // Current meta-level cumulative ack / advertised window for outgoing ACKs.
  virtual std::uint64_t meta_data_ack() const = 0;
  virtual std::uint64_t meta_rwnd() const = 0;
};

class SubflowReceiver final {
 public:
  static void* operator new(std::size_t size) {
    return arena_allocate<SubflowReceiver>(size);
  }
  static void operator delete(void* p, std::size_t size) {
    arena_deallocate<SubflowReceiver>(p, size);
  }

  SubflowReceiver(Simulator& sim, std::uint32_t conn_id, std::uint32_t subflow_id,
                  Path& path, MetaSink* sink);

  // Handler for data packets demuxed from the path's downlink.
  void on_data_packet(const Packet& pkt);

  std::uint64_t rcv_next() const { return rcv_next_; }
  std::uint64_t rcv_high() const { return rcv_high_; }
  std::size_t ooo_held() const { return ooo_.size(); }
  // Lowest held out-of-order subflow sequence; UINT64_MAX when none held
  // (invariant: always > rcv_next()).
  std::uint64_t ooo_min_seq() const {
    return ooo_.empty() ? UINT64_MAX : ooo_.min_key();
  }

  // Snapshot support: copies the receive state from `src` (no pending events
  // of its own — ACK emission is synchronous).
  void restore_from(const SubflowReceiver& src) {
    rcv_next_ = src.rcv_next_;
    rcv_high_ = src.rcv_high_;
    ooo_ = src.ooo_;
  }

 private:
  void send_ack(const Packet& trigger);

  Simulator& sim_;
  std::uint32_t conn_id_;
  std::uint32_t subflow_id_;
  Path& path_;
  MetaSink* sink_;

  std::uint64_t rcv_next_ = 0;
  std::uint64_t rcv_high_ = 0;  // highest received + 1 (SACK summary)
  struct Held {  // 8/8/4 order packs to 24 bytes (no u32/TimePoint hole)
    std::uint64_t data_seq;
    TimePoint arrival;
    std::uint32_t payload;
  };
  // Sparse holdings inside (rcv_next_, rcv_high_); the window span is
  // bounded by the sender's flight, so a presence ring beats a map.
  SeqWindow<Held> ooo_;
};

}  // namespace mps
