// CUBIC (RFC 8312) congestion avoidance.
//
// The canonical formulation computes a target window W(t) from the time
// since the last loss event; we convert it to a per-ack increase
// (W_target - cwnd) / cwnd, matching the Linux `cnt` pacing approach.
#pragma once

#include <algorithm>
#include <cmath>

#include "tcp/cc.h"

namespace mps {

class CubicCc final : public CongestionController {
 public:
  double ca_increase(const AckContext& ctx) override {
    if (epoch_start_.is_never()) {
      epoch_start_ = ctx.now;
      if (w_max_ < ctx.cwnd) w_max_ = ctx.cwnd;
      k_ = std::cbrt(w_max_ * (1.0 - kBeta) / kC);
      origin_ = w_max_;
    }
    const double t = (ctx.now - epoch_start_).to_seconds() + ctx.srtt_s;
    const double w_cubic = kC * std::pow(t - k_, 3.0) + origin_;
    // TCP-friendly region (RFC 8312 4.2).
    const double w_est = origin_ * kBeta +
                         (3.0 * (1.0 - kBeta) / (1.0 + kBeta)) *
                             (ctx.srtt_s > 0 ? t / ctx.srtt_s : 0.0);
    const double target = std::max(w_cubic, w_est);
    if (target <= ctx.cwnd) return 0.01 / ctx.cwnd;  // minimal growth
    const double inc = (target - ctx.cwnd) / ctx.cwnd;
    return std::min(inc, 0.5);  // cap per-ack growth as Linux does
  }

  double loss_factor() const override { return kBeta; }

  void on_loss_event(const AckContext& ctx) override {
    // Fast convergence (RFC 8312 4.6).
    w_max_ = ctx.cwnd < w_max_ ? ctx.cwnd * (2.0 - kBeta) / 2.0 : ctx.cwnd;
    epoch_start_ = TimePoint::never();
  }

  void on_rto(const AckContext&) override { epoch_start_ = TimePoint::never(); }

  void reset() override {
    w_max_ = 0.0;
    epoch_start_ = TimePoint::never();
    k_ = 0.0;
    origin_ = 0.0;
  }

  const char* name() const override { return "cubic"; }

  void restore_from(const CongestionController& src) override {
    const auto& other = static_cast<const CubicCc&>(src);
    w_max_ = other.w_max_;
    epoch_start_ = other.epoch_start_;
    k_ = other.k_;
    origin_ = other.origin_;
  }

 private:
  static constexpr double kC = 0.4;
  static constexpr double kBeta = 0.7;

  double w_max_ = 0.0;
  TimePoint epoch_start_ = TimePoint::never();
  double k_ = 0.0;
  double origin_ = 0.0;
};

}  // namespace mps
