// Name<->kind registry for congestion controllers, mirroring sched/registry.
// One parsing point shared by the scenario spec parser, mps_run, benches,
// and examples — no more per-binary string switches.
#pragma once

#include <string>
#include <vector>

#include "tcp/cc.h"

namespace mps {

// Known names: "reno", "cubic", "lia", "olia", "balia" (same strings
// cc_kind_name returns). Throws std::invalid_argument for unknown names,
// enumerating the registered names in the message.
CcKind cc_kind_from_name(const std::string& name);

// All registered controller names, in kind order.
const std::vector<std::string>& cc_names();

}  // namespace mps
