#include "tcp/cc_registry.h"

#include <stdexcept>

namespace mps {

namespace {
constexpr CcKind kAllKinds[] = {CcKind::kReno, CcKind::kCubic, CcKind::kLia, CcKind::kOlia,
                                CcKind::kBalia};
}

CcKind cc_kind_from_name(const std::string& name) {
  for (CcKind kind : kAllKinds) {
    if (name == cc_kind_name(kind)) return kind;
  }
  std::string known;
  for (CcKind kind : kAllKinds) {
    if (!known.empty()) known += ", ";
    known += cc_kind_name(kind);
  }
  throw std::invalid_argument("unknown congestion control \"" + name + "\" (known: " + known +
                              ")");
}

const std::vector<std::string>& cc_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (CcKind kind : kAllKinds) out.emplace_back(cc_kind_name(kind));
    return out;
  }();
  return names;
}

}  // namespace mps
