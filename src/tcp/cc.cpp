#include "tcp/cc.h"

#include "tcp/cc_cubic.h"
#include "tcp/cc_lia.h"
#include "tcp/cc_olia.h"
#include "tcp/cc_reno.h"

namespace mps {

const char* cc_kind_name(CcKind kind) {
  switch (kind) {
    case CcKind::kReno: return "reno";
    case CcKind::kCubic: return "cubic";
    case CcKind::kLia: return "lia";
    case CcKind::kOlia: return "olia";
  }
  return "?";
}

std::unique_ptr<CongestionController> make_cc(CcKind kind) {
  switch (kind) {
    case CcKind::kReno: return std::make_unique<RenoCc>();
    case CcKind::kCubic: return std::make_unique<CubicCc>();
    case CcKind::kLia: return std::make_unique<LiaCc>();
    case CcKind::kOlia: return std::make_unique<OliaCc>();
  }
  return nullptr;
}

}  // namespace mps
