#include "tcp/cc.h"

#include <algorithm>

#include "tcp/cc_balia.h"
#include "tcp/cc_cubic.h"
#include "tcp/cc_lia.h"
#include "tcp/cc_olia.h"
#include "tcp/cc_reno.h"

namespace mps {

void CoupledCcTerms::recompute() {
  // Each controller family keeps its own loop: LIA/BALIA and OLIA filter the
  // sibling set differently, and the aggregates must accumulate in the same
  // per-sibling order the controllers' original private loops used so cached
  // reads stay bit-identical with a fresh recomputation.
  lia_total_cwnd = 0.0;
  lia_best_ratio = 0.0;
  lia_sum_cwnd_over_rtt = 0.0;
  balia_sum_x = 0.0;
  balia_max_x = 0.0;
  for (const auto& s : siblings) {
    if (!s.established || s.srtt_s <= 0.0) continue;
    lia_total_cwnd += s.cwnd;
    lia_best_ratio = std::max(lia_best_ratio, s.cwnd / (s.srtt_s * s.srtt_s));
    lia_sum_cwnd_over_rtt += s.cwnd / s.srtt_s;
    const double x = s.cwnd / s.srtt_s;
    balia_sum_x += x;
    balia_max_x = std::max(balia_max_x, x);
  }

  olia_n = 0;
  olia_sum_cwnd_over_rtt = 0.0;
  olia_best_quality = -1.0;
  olia_max_cwnd = -1.0;
  for (const auto& s : siblings) {
    if (!s.established || s.srtt_s <= 0.0 || s.cwnd <= 0.0) continue;
    ++olia_n;
    olia_sum_cwnd_over_rtt += s.cwnd / s.srtt_s;
    olia_best_quality = std::max(olia_best_quality, olia_quality(s));
    olia_max_cwnd = std::max(olia_max_cwnd, s.cwnd);
  }

  // OLIA set membership (B = best inter-loss quality, M = largest window),
  // compared with a small tolerance since the values are continuous here.
  constexpr double kTol = 1e-6;
  olia_b_minus_m = 0;
  olia_m_count = 0;
  olia_flags.assign(siblings.size(), 0);
  for (std::size_t i = 0; i < siblings.size(); ++i) {
    const CcSiblingInfo& s = siblings[i];
    if (!s.established || s.srtt_s <= 0.0 || s.cwnd <= 0.0) continue;
    const bool in_b = olia_quality(s) >= olia_best_quality * (1.0 - kTol);
    const bool in_m = s.cwnd >= olia_max_cwnd * (1.0 - kTol);
    if (in_m) ++olia_m_count;
    if (in_b && !in_m) ++olia_b_minus_m;
    olia_flags[i] = static_cast<std::uint8_t>(kOliaCounted | (in_b ? kOliaInB : 0) |
                                              (in_m ? kOliaInM : 0));
  }
}

const CoupledCcTerms& CcGroup::coupled_terms() const {
  uncached_terms_.siblings.clear();
  cc_sibling_info(uncached_terms_.siblings);
  uncached_terms_.recompute();
  return uncached_terms_;
}

const char* cc_kind_name(CcKind kind) {
  switch (kind) {
    case CcKind::kReno: return "reno";
    case CcKind::kCubic: return "cubic";
    case CcKind::kLia: return "lia";
    case CcKind::kOlia: return "olia";
    case CcKind::kBalia: return "balia";
  }
  return "?";
}

std::unique_ptr<CongestionController> make_cc(CcKind kind) {
  switch (kind) {
    case CcKind::kReno: return std::make_unique<RenoCc>();
    case CcKind::kCubic: return std::make_unique<CubicCc>();
    case CcKind::kLia: return std::make_unique<LiaCc>();
    case CcKind::kOlia: return std::make_unique<OliaCc>();
    case CcKind::kBalia: return std::make_unique<BaliaCc>();
  }
  return nullptr;
}

}  // namespace mps
