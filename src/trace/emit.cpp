#include "trace/emit.h"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace mps {

namespace {

char shade_for(double v, double lo, double hi) {
  static constexpr char kShades[] = {'.', ':', '-', '=', '+', '*', '%', '#'};
  if (hi <= lo) return kShades[0];
  const double x = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
  const int idx = std::min<int>(static_cast<int>(x * 8.0), 7);
  return kShades[idx];
}

}  // namespace

void print_heatmap(std::ostream& os, const std::string& title,
                   const std::string& row_axis, const std::string& col_axis,
                   const std::vector<std::string>& row_labels,
                   const std::vector<std::string>& col_labels,
                   const std::function<double(std::size_t, std::size_t)>& value,
                   double lo, double hi) {
  os << "\n" << title << "\n";
  os << "  rows: " << row_axis << ", cols: " << col_axis
     << "  (shade: '.'=low '#'=high)\n";
  os << std::setw(10) << "";
  for (const auto& c : col_labels) os << std::setw(8) << c;
  os << "\n";
  // Paper heat maps put the first row label at the bottom; iterate reversed
  // so the text layout matches the figures.
  for (std::size_t r = row_labels.size(); r-- > 0;) {
    os << std::setw(10) << row_labels[r];
    for (std::size_t c = 0; c < col_labels.size(); ++c) {
      const double v = value(r, c);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f%c", v, shade_for(v, lo, hi));
      os << std::setw(8) << buf;
    }
    os << "\n";
  }
}

std::vector<double> make_x_grid(
    const std::vector<std::pair<std::string, const Samples*>>& series, std::size_t points,
    double quantile_cap) {
  double xmax = 0.0;
  for (const auto& [name, s] : series) {
    if (s != nullptr && !s->empty()) xmax = std::max(xmax, s->quantile(quantile_cap));
  }
  if (xmax <= 0.0) xmax = 1.0;
  std::vector<double> grid;
  grid.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    grid.push_back(xmax * static_cast<double>(i) / static_cast<double>(points));
  }
  return grid;
}

void print_distribution(std::ostream& os, const std::string& title,
                        const std::string& x_label,
                        const std::vector<std::pair<std::string, const Samples*>>& series,
                        bool ccdf, const std::vector<double>& x_grid) {
  os << "\n" << title << (ccdf ? "  [CCDF: P(X > x)]" : "  [CDF: P(X <= x)]") << "\n";
  os << std::setw(14) << x_label;
  for (const auto& [name, s] : series) {
    os << std::setw(12) << name << "(n=" << (s ? s->count() : 0) << ")";
  }
  os << "\n";
  for (double x : x_grid) {
    os << std::setw(14) << std::fixed << std::setprecision(4) << x;
    for (const auto& [name, s] : series) {
      const double y = s == nullptr || s->empty() ? 0.0 : (ccdf ? s->ccdf_at(x) : s->cdf_at(x));
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%.5f", y);
      os << std::setw(12 + 4 + static_cast<int>(std::to_string(s ? s->count() : 0).size()))
         << buf;
    }
    os << "\n";
  }
  os.unsetf(std::ios::fixed);
}

void print_grouped(std::ostream& os, const std::string& title,
                   const std::string& group_label,
                   const std::vector<std::string>& groups,
                   const std::vector<std::string>& series_names,
                   const std::function<double(std::size_t, std::size_t)>& value,
                   int precision) {
  os << "\n" << title << "\n";
  os << std::setw(16) << group_label;
  for (const auto& name : series_names) os << std::setw(12) << name;
  os << "\n";
  for (std::size_t g = 0; g < groups.size(); ++g) {
    os << std::setw(16) << groups[g];
    for (std::size_t s = 0; s < series_names.size(); ++s) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.*f", precision, value(g, s));
      os << std::setw(12) << buf;
    }
    os << "\n";
  }
}

void print_trace(std::ostream& os, const std::string& title,
                 const std::vector<std::pair<std::string, const TimeSeries*>>& series,
                 Duration bucket, TimePoint from, TimePoint to) {
  os << "\n" << title << "\n";
  os << std::setw(12) << "time(s)";
  for (const auto& [name, s] : series) os << std::setw(14) << name;
  os << "\n";
  for (TimePoint t = from; t < to; t += bucket) {
    os << std::setw(12) << std::fixed << std::setprecision(1) << t.to_seconds();
    for (const auto& [name, s] : series) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", s->time_mean(t, t + bucket));
      os << std::setw(14) << buf;
    }
    os << "\n";
  }
  os.unsetf(std::ios::fixed);
}

void print_header(std::ostream& os, const std::string& experiment,
                  const std::string& paper_ref, const std::string& scale_note) {
  os << "==============================================================\n";
  os << experiment << "\n";
  os << "reproduces: " << paper_ref << "\n";
  if (!scale_note.empty()) os << "scale: " << scale_note << "\n";
  os << "==============================================================\n";
}

}  // namespace mps
