// Text emitters that render results in the shapes the paper uses: heat maps
// (Figs. 2/9/15/19), CDF/CCDF tables (Figs. 5/13/14/20/21/23), grouped bars
// (Figs. 6/7/10/16/18), and time-series traces (Figs. 3/11/12/17).
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "trace/series.h"
#include "util/stats.h"

namespace mps {

// Grid of value(row, col) with labels; renders numeric cells plus a coarse
// ASCII shade ('#' dark = high) echoing the paper's grey-scale maps.
void print_heatmap(std::ostream& os, const std::string& title,
                   const std::string& row_axis, const std::string& col_axis,
                   const std::vector<std::string>& row_labels,
                   const std::vector<std::string>& col_labels,
                   const std::function<double(std::size_t row, std::size_t col)>& value,
                   double lo = 0.0, double hi = 1.0);

// One column per named series; rows are distribution points at the given
// quantile-ish x grid. `ccdf` prints P(X > x), else P(X <= x).
void print_distribution(std::ostream& os, const std::string& title,
                        const std::string& x_label,
                        const std::vector<std::pair<std::string, const Samples*>>& series,
                        bool ccdf, const std::vector<double>& x_grid);

// Convenience: builds a uniform x grid covering all series.
std::vector<double> make_x_grid(const std::vector<std::pair<std::string, const Samples*>>& series,
                                std::size_t points, double quantile_cap = 0.999);

// Grouped values table: one row per group, one column per named series.
void print_grouped(std::ostream& os, const std::string& title,
                   const std::string& group_label,
                   const std::vector<std::string>& groups,
                   const std::vector<std::string>& series_names,
                   const std::function<double(std::size_t group, std::size_t series)>& value,
                   int precision = 3);

// Down-sampled time-series trace: one row per time bucket.
void print_trace(std::ostream& os, const std::string& title,
                 const std::vector<std::pair<std::string, const TimeSeries*>>& series,
                 Duration bucket, TimePoint from, TimePoint to);

// Section header used by every bench binary.
void print_header(std::ostream& os, const std::string& experiment,
                  const std::string& paper_ref, const std::string& scale_note);

}  // namespace mps
