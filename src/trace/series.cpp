#include "trace/series.h"

namespace mps {

double TimeSeries::time_mean(TimePoint from, TimePoint to) const {
  if (to <= from || points_.empty()) return 0.0;
  double area = 0.0;
  double current = 0.0;
  TimePoint cursor = from;
  for (const auto& p : points_) {
    if (p.t <= from) {
      current = p.value;
      continue;
    }
    if (p.t >= to) break;
    area += current * (p.t - cursor).to_seconds();
    cursor = p.t;
    current = p.value;
  }
  area += current * (to - cursor).to_seconds();
  return area / (to - from).to_seconds();
}

}  // namespace mps
