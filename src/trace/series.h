// Time series container for traces (CWND, buffer occupancy, throughput).
#pragma once

#include <vector>

#include "util/time.h"

namespace mps {

struct TimeSeriesPoint {
  TimePoint t;
  double value;
};

class TimeSeries {
 public:
  void add(TimePoint t, double value) { points_.push_back({t, value}); }

  const std::vector<TimeSeriesPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  // Value in effect at time t (step interpolation); 0 before first point.
  double at(TimePoint t) const {
    double v = 0.0;
    for (const auto& p : points_) {
      if (p.t > t) break;
      v = p.value;
    }
    return v;
  }

  double max_value() const {
    double m = 0.0;
    for (const auto& p : points_) m = std::max(m, p.value);
    return m;
  }

  // Time-weighted mean over [from, to], step interpolation.
  double time_mean(TimePoint from, TimePoint to) const;

  void clear() { points_.clear(); }

 private:
  std::vector<TimeSeriesPoint> points_;
};

}  // namespace mps
