// Collectors that attach to the stack's trace hooks.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mptcp/connection.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"
#include "trace/series.h"

namespace mps {

// Records every CWND change of a subflow (paper Figs. 11/12). Registers as
// one listener on the subflow's on_cwnd_change hook, so several tracers (or
// a tracer plus the flight recorder) can observe the same subflow; the
// listener is removed on destruction.
class CwndTracer {
 public:
  explicit CwndTracer(Subflow& sf) : sf_(&sf) {
    hook_id_ = sf.on_cwnd_change.add(
        [this](TimePoint t, double cwnd) { series_.add(t, cwnd); });
    series_.add(TimePoint::origin(), sf.cwnd());
  }
  ~CwndTracer() {
    if (sf_ != nullptr) sf_->on_cwnd_change.remove(hook_id_);
  }
  CwndTracer(const CwndTracer&) = delete;
  CwndTracer& operator=(const CwndTracer&) = delete;

  const TimeSeries& series() const { return series_; }

  // Snapshot support (exp/snapshot.h): replaces the recorded series with
  // `src`'s, discarding the initial point this tracer's own constructor
  // added. The hook registration on the fork's subflow is kept.
  void restore_from(const CwndTracer& src) { series_ = src.series_; }

 private:
  Subflow* sf_;
  Hook<TimePoint, double>::Id hook_id_{};
  TimeSeries series_;
};

// Samples a value periodically (paper Fig. 3's send-buffer occupancy).
// `until` bounds the sampling: once the simulation clock passes it, the
// sampler stops rescheduling itself, so Simulator::run() (which drains the
// event queue) terminates. The default never-deadline preserves the old
// behaviour for run_until()-style drivers.
class PeriodicSampler {
 public:
  PeriodicSampler(Simulator& sim, Duration interval, std::function<double()> probe,
                  TimePoint until = TimePoint::never())
      : sim_(sim), interval_(interval), until_(until), probe_(std::move(probe)), timer_(sim) {
    tick();
  }

  // Snapshot support (exp/snapshot.h): tag for constructing a sampler that
  // takes no initial sample and schedules nothing — restore_from supplies
  // the recorded points and the pending tick event.
  struct deferred_t {};
  PeriodicSampler(deferred_t, Simulator& sim, Duration interval, std::function<double()> probe,
                  TimePoint until = TimePoint::never())
      : sim_(sim), interval_(interval), until_(until), probe_(std::move(probe)), timer_(sim) {}

  // Adopts `src`'s series, running flag, and pending tick. Call after the
  // simulator's event queue has been cloned.
  void restore_from(const PeriodicSampler& src) {
    series_ = src.series_;
    running_ = src.running_;
    timer_.clone_from(src.timer_, [this] { tick(); });
  }

  // Stops future samples; already-recorded points are kept.
  void stop() {
    running_ = false;
    timer_.cancel();
  }
  bool running() const { return running_; }

  const TimeSeries& series() const { return series_; }

 private:
  void tick() {
    if (!running_) return;
    series_.add(sim_.now(), probe_());
    if (!until_.is_never() && sim_.now() + interval_ > until_) {
      running_ = false;
      return;
    }
    timer_.schedule_after(interval_, [this] { tick(); });
  }

  Simulator& sim_;
  Duration interval_;
  TimePoint until_;
  std::function<double()> probe_;
  Timer timer_;
  TimeSeries series_;
  bool running_ = true;
};

// Per-subflow send-buffer occupancy: staged (scheduled, awaiting CWND) plus
// un-acked in-flight bytes — "including in-flight packets" as in paper
// Fig. 3.
inline double subflow_sndbuf_bytes(const Subflow& sf) {
  return static_cast<double>(sf.staged_bytes()) +
         static_cast<double>(sf.inflight_segments()) * sf.mss();
}

}  // namespace mps
