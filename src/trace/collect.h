// Collectors that attach to the stack's trace hooks.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "mptcp/connection.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"
#include "trace/series.h"

namespace mps {

// Records every CWND change of a subflow (paper Figs. 11/12).
class CwndTracer {
 public:
  explicit CwndTracer(Subflow& sf) {
    sf.on_cwnd_change = [this](TimePoint t, double cwnd) { series_.add(t, cwnd); };
    series_.add(TimePoint::origin(), sf.cwnd());
  }
  const TimeSeries& series() const { return series_; }

 private:
  TimeSeries series_;
};

// Samples a value periodically (paper Fig. 3's send-buffer occupancy).
class PeriodicSampler {
 public:
  PeriodicSampler(Simulator& sim, Duration interval, std::function<double()> probe)
      : sim_(sim), interval_(interval), probe_(std::move(probe)), timer_(sim) {
    tick();
  }

  const TimeSeries& series() const { return series_; }

 private:
  void tick() {
    series_.add(sim_.now(), probe_());
    timer_.schedule_after(interval_, [this] { tick(); });
  }

  Simulator& sim_;
  Duration interval_;
  std::function<double()> probe_;
  Timer timer_;
  TimeSeries series_;
};

// Per-subflow send-buffer occupancy: staged (scheduled, awaiting CWND) plus
// un-acked in-flight bytes — "including in-flight packets" as in paper
// Fig. 3.
inline double subflow_sndbuf_bytes(const Subflow& sf) {
  return static_cast<double>(sf.staged_bytes()) +
         static_cast<double>(sf.inflight_segments()) * sf.mss();
}

}  // namespace mps
