// Snapshot-and-fork: pause a running experiment at a simulation time and
// fork it into independent, bit-reproducible copies that share the computed
// prefix (DESIGN.md §13).
//
// Mechanism, shared by every Run class (StreamingRun, DownloadRun,
// WebPageRun, TrafficRun here):
//  1. clone the source's FlightRecorder *first*, so the fork's construction
//     resolves instrument handles into the copied storage;
//  2. re-run the normal construction path ("fork shell") — construction is
//     event-free by design, which require_construction_event_free asserts;
//  3. structure-clone the event queue (EventIds and ordering preserved,
//     callbacks dropped), then per-object restore_from copies dynamic state
//     and rebinds each adopted event to the fork's objects;
//  4. undo construction-time instrument writes via restore_data_from;
//  5. require_fully_rebound audits that no live event was left without a
//     callback — the mechanism that surfaces forgotten capture sites.
//
// Forks are sequential-consistent: fork-then-finish produces output
// byte-identical to an unforked run, so a prefix shared by many sweep cells
// (same seed, divergent suffix) is simulated once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/scenario_run.h"
#include "exp/sweep.h"
#include "scenario/world.h"
#include "sim/simulator.h"
#include "traffic/engine.h"

namespace mps {

namespace snapshot {

// Throws std::logic_error when `sim` has pending events: a fork shell's
// construction scheduled something, which would collide with the adopted
// source events. `who` names the offending fork path in the message.
void require_construction_event_free(Simulator& sim, const char* who);

// Throws std::logic_error when any live event has no callback bound — a
// restore_from path forgot to adopt it. Run as the last step of every fork.
void require_fully_rebound(Simulator& sim, const char* who);

}  // namespace snapshot

// One competing-traffic run held as an object so it can be paused and forked
// (spec.traffic workloads). Mirrors StreamingRun's shape; the engine's
// staged-driving API (TrafficEngine::start/finish/collect) does the work.
class TrafficRun {
 public:
  TrafficRun(const ScenarioSpec& spec, const ScenarioRunOptions& opts = {});
  ~TrafficRun();
  TrafficRun(const TrafficRun&) = delete;
  TrafficRun& operator=(const TrafficRun&) = delete;

  void start();
  void run_to(TimePoint t);
  bool done() const;
  Simulator& sim();
  FlightRecorder* recorder() const;
  TrafficEngine& engine() { return *engine_; }

  std::unique_ptr<TrafficRun> fork() const;

  TrafficResult finish();

 private:
  struct ForkTag {};
  TrafficRun(const TrafficRun& src, ForkTag);
  void construct(const ScenarioSpec& spec, FlightRecorder* recorder);

  ScenarioRunOptions opts_;
  std::unique_ptr<FlightRecorder> owned_rec_;
  std::unique_ptr<WorldBuilder> builder_;
  std::unique_ptr<World> world_;
  std::unique_ptr<TrafficEngine> engine_;
  TimePoint base_;
  std::uint64_t events_before_ = 0;
  bool started_ = false;
  bool finished_ = false;
};

// run_scenario, but with a snapshot-and-fork inserted at origin +
// `snapshot_at_s` into every repetition: the original run is advanced to the
// snapshot point, forked, discarded, and the fork runs to completion. Output
// is byte-identical to run_scenario (same aggregation, same seed
// conventions); the golden-corpus fork tests pin this. Repetitions sweep in
// parallel per `sweep` (jobs=1 forced when opts.recorder is set — a shared
// recorder cannot take concurrent cells).
ScenarioOutcome run_scenario_forked(const ScenarioSpec& spec, double snapshot_at_s,
                                    const ScenarioRunOptions& opts = {},
                                    const SweepOptions& sweep = {});

// Same, but forks `k` sibling copies of every repetition at the snapshot
// point and finishes each: returns one outcome per fork index. All k
// outcomes must be identical (independent copies of the same state); the
// mps_run --fork=K check asserts exactly that. run_scenario_forked is the
// k=1 case.
std::vector<ScenarioOutcome> run_scenario_fork_k(const ScenarioSpec& spec,
                                                 double snapshot_at_s, int k,
                                                 const ScenarioRunOptions& opts = {},
                                                 const SweepOptions& sweep = {});

// What-if scheduler grid: for each repetition of the spec's workload, run
// the shared prefix to origin + `switch_at_s`, then diverge one branch per
// scheduler name (set_scheduler takes effect at the next pick) and run each
// branch to completion. Returns one aggregated outcome per scheduler, in
// order.
//
// share_prefix=true simulates each repetition's prefix once and forks K
// branches from it; false runs the full K×reps grid from scratch (each cell
// still switches scheduler at switch_at_s, so the two modes are
// byte-identical — the bench's prefix-dedupe speedup cell times both).
// Stream and download workloads only (single-connection; set_scheduler has a
// well-defined target).
std::vector<ScenarioOutcome> run_whatif_grid(const ScenarioSpec& spec,
                                             const std::vector<std::string>& schedulers,
                                             double switch_at_s, bool share_prefix,
                                             const ScenarioRunOptions& opts = {},
                                             const SweepOptions& sweep = {});

}  // namespace mps
