#include "exp/scale.h"

#include <cstdlib>

namespace mps {

namespace {

BenchScale make_scale() {
  BenchScale s;
  const char* env = std::getenv("MPS_BENCH_SCALE");
  const std::string mode = env != nullptr ? env : "quick";
  if (mode == "paper") {
    s.name = "paper";
    s.video = Duration::seconds(1200);
    s.streaming_runs = 5;
    s.wget_runs = 30;
    s.web_runs = 10;
    s.random_scenarios = 10;
    s.random_run = Duration::seconds(1200);
    s.grid_step = 1;
  } else if (mode == "full") {
    s.name = "full";
    s.video = Duration::seconds(600);
    s.streaming_runs = 3;
    s.wget_runs = 15;
    s.web_runs = 5;
    s.random_scenarios = 10;
    s.random_run = Duration::seconds(600);
    s.grid_step = 1;
  }
  return s;
}

}  // namespace

const BenchScale& bench_scale() {
  static const BenchScale scale = make_scale();
  return scale;
}

std::string scale_note() {
  const BenchScale& s = bench_scale();
  return "MPS_BENCH_SCALE=" + s.name + " (video " + std::to_string(s.video.ns() / 1000000000) +
         "s, runs " + std::to_string(s.streaming_runs) + "; set MPS_BENCH_SCALE=paper for full scale)";
}

}  // namespace mps
