// Simple-download (wget) experiment runner: one object over a fresh MPTCP
// connection (paper Section 5.4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "mptcp/scheduler.h"
#include "sim/simulator.h"
#include "tcp/cc.h"
#include "util/stats.h"
#include "util/time.h"

namespace mps {

class HttpExchange;
class Testbed;

struct DownloadParams {
  double wifi_mbps = 1.0;
  double lte_mbps = 5.0;
  std::uint64_t bytes = 512 * 1024;
  std::string scheduler = "default";
  CcKind cc = CcKind::kLia;
  std::uint64_t seed = 1;
  // Kernel accounting out-param and progress heartbeat (sim/simulator.h).
  RunTelemetry* telemetry = nullptr;
  HeartbeatConfig heartbeat;
};

struct DownloadResult {
  Duration completion = Duration::zero();
  double fraction_fast = 0.0;
  Samples ooo_delay;
};

// One download run held as an object so it can be paused mid-simulation and
// forked (exp/snapshot.h). run_download() is construct + start + finish.
class DownloadRun {
 public:
  explicit DownloadRun(const DownloadParams& params);
  ~DownloadRun();
  DownloadRun(const DownloadRun&) = delete;
  DownloadRun& operator=(const DownloadRun&) = delete;

  // Issues the GET and attaches the heartbeat. Call once.
  void start();
  // Advances to absolute time `t` (clamped to the 600 s safety cap); no-op
  // once the download has completed.
  void run_to(TimePoint t);
  bool done() const { return done_; }
  Simulator& sim();
  Connection& connection() { return *conn_; }

  // Independent copy at the current simulation time (see StreamingRun::fork).
  std::unique_ptr<DownloadRun> fork() const;

  // What-if divergence: replaces the connection's scheduler.
  void set_scheduler(const SchedulerFactory& factory);

  // Runs to completion (or the cap) and gathers the result.
  DownloadResult finish();

 private:
  struct ForkTag {};
  DownloadRun(const DownloadRun& src, ForkTag);
  void construct();
  void install_done();

  DownloadParams params_;
  TimePoint cap_;
  std::unique_ptr<Testbed> bed_;
  std::unique_ptr<Connection> conn_;
  std::unique_ptr<HttpExchange> http_;
  DownloadResult res_;
  bool started_ = false;
  bool done_ = false;
};

DownloadResult run_download(const DownloadParams& params);

// `runs` seeded repetitions; returns per-run completion times in seconds.
Samples run_download_samples(DownloadParams params, int runs);

}  // namespace mps
