// Simple-download (wget) experiment runner: one object over a fresh MPTCP
// connection (paper Section 5.4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mptcp/path_manager.h"
#include "mptcp/scheduler.h"
#include "net/path.h"
#include "sim/simulator.h"
#include "tcp/cc.h"
#include "util/stats.h"
#include "util/time.h"

namespace mps {

class HttpExchange;
class World;

struct DownloadParams {
  double wifi_mbps = 1.0;
  double lte_mbps = 5.0;
  std::uint64_t bytes = 512 * 1024;
  std::string scheduler = "default";
  CcKind cc = CcKind::kLia;
  std::uint64_t seed = 1;
  // Kernel accounting out-param and progress heartbeat (sim/simulator.h).
  RunTelemetry* telemetry = nullptr;
  HeartbeatConfig heartbeat;
  // When non-empty, these paths replace the wifi/lte profile pair (N-path
  // worlds for the path-manager presets). Index 0 is primary.
  std::vector<PathConfig> paths;
  // When non-empty, the connection starts with one subflow per listed path
  // index (backup paths stay in reserve); empty = one per path as before.
  std::vector<std::size_t> initial_paths;
  // Dynamic path management (mptcp/path_manager.h); off by default.
  bool use_path_manager = false;
  PathManagerConfig path_manager;
};

struct DownloadResult {
  Duration completion = Duration::zero();
  double fraction_fast = 0.0;
  Samples ooo_delay;
  // Payload bytes sent per world path (index order), live + retired subflows.
  std::vector<std::uint64_t> path_bytes;
  // Segments re-scheduled after an abandon teardown (meta_stats mirror).
  std::uint64_t remapped_segments = 0;
};

// One download run held as an object so it can be paused mid-simulation and
// forked (exp/snapshot.h). run_download() is construct + start + finish.
class DownloadRun {
 public:
  explicit DownloadRun(const DownloadParams& params);
  ~DownloadRun();
  DownloadRun(const DownloadRun&) = delete;
  DownloadRun& operator=(const DownloadRun&) = delete;

  // Issues the GET and attaches the heartbeat. Call once.
  void start();
  // Advances to absolute time `t` (clamped to the 600 s safety cap); no-op
  // once the download has completed.
  void run_to(TimePoint t);
  bool done() const { return done_; }
  Simulator& sim();
  Connection& connection() { return *conn_; }
  World& world() { return *world_; }
  // Null unless params.use_path_manager.
  PathManager* path_manager() { return pm_.get(); }

  // Independent copy at the current simulation time (see StreamingRun::fork).
  std::unique_ptr<DownloadRun> fork() const;

  // What-if divergence: replaces the connection's scheduler.
  void set_scheduler(const SchedulerFactory& factory);

  // Runs to completion (or the cap) and gathers the result.
  DownloadResult finish();

 private:
  struct ForkTag {};
  DownloadRun(const DownloadRun& src, ForkTag);
  void construct();
  void install_done();

  DownloadParams params_;
  TimePoint cap_;
  std::unique_ptr<World> world_;
  std::unique_ptr<Connection> conn_;
  std::unique_ptr<PathManager> pm_;
  std::unique_ptr<HttpExchange> http_;
  std::size_t fast_path_ = 0;  // path index with the highest downlink rate
  DownloadResult res_;
  bool started_ = false;
  bool done_ = false;
};

DownloadResult run_download(const DownloadParams& params);

// `runs` seeded repetitions; returns per-run completion times in seconds.
Samples run_download_samples(DownloadParams params, int runs);

}  // namespace mps
