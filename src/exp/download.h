// Simple-download (wget) experiment runner: one object over a fresh MPTCP
// connection (paper Section 5.4).
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.h"
#include "tcp/cc.h"
#include "util/stats.h"
#include "util/time.h"

namespace mps {

struct DownloadParams {
  double wifi_mbps = 1.0;
  double lte_mbps = 5.0;
  std::uint64_t bytes = 512 * 1024;
  std::string scheduler = "default";
  CcKind cc = CcKind::kLia;
  std::uint64_t seed = 1;
  // Kernel accounting out-param and progress heartbeat (sim/simulator.h).
  RunTelemetry* telemetry = nullptr;
  HeartbeatConfig heartbeat;
};

struct DownloadResult {
  Duration completion = Duration::zero();
  double fraction_fast = 0.0;
  Samples ooo_delay;
};

DownloadResult run_download(const DownloadParams& params);

// `runs` seeded repetitions; returns per-run completion times in seconds.
Samples run_download_samples(DownloadParams params, int runs);

}  // namespace mps
