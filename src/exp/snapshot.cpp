#include "exp/snapshot.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/recorder.h"
#include "sched/registry.h"

namespace mps {

namespace snapshot {

void require_construction_event_free(Simulator& sim, const char* who) {
  if (sim.pending_events() != 0) {
    throw std::logic_error(std::string(who) + ": fork-shell construction scheduled " +
                           std::to_string(sim.pending_events()) +
                           " event(s); model construction must be event-free");
  }
}

void require_fully_rebound(Simulator& sim, const char* who) {
  std::vector<std::pair<EventId, TimePoint>> unbound;
  sim.collect_unbound_events(unbound);
  if (unbound.empty()) return;
  std::string msg = std::string(who) + ": " + std::to_string(unbound.size()) +
                    " pending event(s) not rebound after fork:";
  const std::size_t show = unbound.size() < 8 ? unbound.size() : 8;
  for (std::size_t i = 0; i < show; ++i) {
    msg += " [id " + std::to_string(unbound[i].first) + " @ " +
           std::to_string((unbound[i].second - TimePoint::origin()).to_seconds()) + "s]";
  }
  throw std::logic_error(msg);
}

}  // namespace snapshot

// --- TrafficRun -------------------------------------------------------------

TrafficRun::TrafficRun(const ScenarioSpec& spec, const ScenarioRunOptions& opts)
    : opts_(opts) {
  construct(spec, opts_.recorder);
}

TrafficRun::TrafficRun(const TrafficRun& src, ForkTag) : opts_(src.opts_) {
  FlightRecorder* rec = nullptr;
  if (src.builder_->recorder() != nullptr) {
    owned_rec_ = std::make_unique<FlightRecorder>();
    owned_rec_->clone_from(*src.builder_->recorder());
    rec = owned_rec_.get();
  }
  construct(src.builder_->spec(), rec);
  snapshot::require_construction_event_free(sim(), "TrafficRun::fork");
  world_->restore_from(*src.world_);
  engine_->restore_from(*src.engine_);
  base_ = src.base_;
  events_before_ = src.events_before_;
  started_ = src.started_;
  finished_ = src.finished_;
  if (started_ && opts_.heartbeat.enabled()) {
    world_->sim().set_heartbeat(opts_.heartbeat.interval_s, opts_.heartbeat.fn);
  }
  if (rec != nullptr) rec->restore_data_from(*src.builder_->recorder());
  snapshot::require_fully_rebound(sim(), "TrafficRun::fork");
}

TrafficRun::~TrafficRun() = default;

void TrafficRun::construct(const ScenarioSpec& spec, FlightRecorder* recorder) {
  builder_ = std::make_unique<WorldBuilder>(spec);
  world_ = builder_->build(recorder);
  engine_ = std::make_unique<TrafficEngine>(*world_, builder_->spec());
  engine_->telemetry = opts_.telemetry;
  engine_->heartbeat = &opts_.heartbeat;
}

Simulator& TrafficRun::sim() { return world_->sim(); }

FlightRecorder* TrafficRun::recorder() const { return builder_->recorder(); }

void TrafficRun::start() {
  assert(!started_);
  started_ = true;
  base_ = world_->sim().now();
  engine_->start();
  if (opts_.heartbeat.enabled()) {
    world_->sim().set_heartbeat(opts_.heartbeat.interval_s, opts_.heartbeat.fn);
  }
  events_before_ = world_->sim().events_processed();
}

void TrafficRun::run_to(TimePoint t) {
  if (finished_) return;
  const TimePoint end = engine_->end_time();
  world_->sim().run_until(t < end ? t : end);
}

bool TrafficRun::done() const {
  return finished_ || !(world_->sim().now() < engine_->end_time());
}

std::unique_ptr<TrafficRun> TrafficRun::fork() const {
  return std::unique_ptr<TrafficRun>(new TrafficRun(*this, ForkTag{}));
}

TrafficResult TrafficRun::finish() {
  if (!finished_) {
    world_->sim().run_until(engine_->end_time());
    if (world_->sim().heartbeat_attached()) world_->sim().set_heartbeat(0.0, nullptr);
    if (opts_.telemetry != nullptr) {
      opts_.telemetry->events += world_->sim().events_processed() - events_before_;
      opts_.telemetry->sim_s += (world_->sim().now() - base_).to_seconds();
    }
    engine_->finish();
    finished_ = true;
  }
  return engine_->collect();
}

// --- forked scenario driver -------------------------------------------------

namespace {

// run_streaming_avg's exact aggregation, over per-repetition results already
// computed (rep order).
StreamingResult aggregate_streaming(std::vector<StreamingResult> reps) {
  StreamingResult acc;
  const int runs = static_cast<int>(reps.size());
  for (int r = 0; r < runs; ++r) {
    StreamingResult one = std::move(reps[static_cast<std::size_t>(r)]);
    if (r == 0) {
      acc = std::move(one);
      continue;
    }
    acc.mean_bitrate_mbps += one.mean_bitrate_mbps;
    acc.mean_throughput_mbps += one.mean_throughput_mbps;
    acc.fraction_fast += one.fraction_fast;
    acc.iw_resets_wifi += one.iw_resets_wifi;
    acc.iw_resets_lte += one.iw_resets_lte;
    acc.reinjections += one.reinjections;
    acc.mean_rtt_wifi_ms += one.mean_rtt_wifi_ms;
    acc.mean_rtt_lte_ms += one.mean_rtt_lte_ms;
    acc.ooo_delay.merge(one.ooo_delay);
    acc.last_packet_gap.merge(one.last_packet_gap);
  }
  if (runs > 1) {
    const double n = runs;
    acc.mean_bitrate_mbps /= n;
    acc.mean_throughput_mbps /= n;
    acc.fraction_fast /= n;
    acc.iw_resets_wifi = static_cast<std::uint64_t>(acc.iw_resets_wifi / runs);
    acc.iw_resets_lte = static_cast<std::uint64_t>(acc.iw_resets_lte / runs);
    acc.reinjections = static_cast<std::uint64_t>(acc.reinjections / runs);
    acc.mean_rtt_wifi_ms /= n;
    acc.mean_rtt_lte_ms /= n;
  }
  return acc;
}

// Shared out-params (a caller recorder, telemetry accumulation) cannot take
// concurrent cells; degrade those sweeps to serial.
SweepOptions effective_sweep(const SweepOptions& sweep, const ScenarioRunOptions& opts) {
  SweepOptions sw = sweep;
  if (opts.recorder != nullptr || opts.telemetry != nullptr) sw.jobs = 1;
  return sw;
}

struct WebCell {
  WebRunResult res;
  double page_load = 0.0;
};

}  // namespace

ScenarioOutcome run_scenario_forked(const ScenarioSpec& spec, double snapshot_at_s,
                                    const ScenarioRunOptions& opts,
                                    const SweepOptions& sweep) {
  return std::move(run_scenario_fork_k(spec, snapshot_at_s, 1, opts, sweep).front());
}

std::vector<ScenarioOutcome> run_scenario_fork_k(const ScenarioSpec& spec,
                                                 double snapshot_at_s, int k,
                                                 const ScenarioRunOptions& opts,
                                                 const SweepOptions& sweep) {
  if (k < 1) throw std::invalid_argument("run_scenario_fork_k: k must be >= 1");
  const auto kk = static_cast<std::size_t>(k);
  std::vector<ScenarioOutcome> outs(kk);
  for (ScenarioOutcome& o : outs) o.kind = spec.workload.kind;
  const TimePoint snap = TimePoint::origin() + Duration::from_seconds(snapshot_at_s);
  const SweepOptions sw = effective_sweep(sweep, opts);

  if (spec.traffic.enabled) {
    std::vector<std::unique_ptr<TrafficRun>> forks;
    {
      TrafficRun run(spec, opts);
      run.start();
      run.run_to(snap);
      for (std::size_t j = 0; j < kk; ++j) forks.push_back(run.fork());
    }
    for (std::size_t j = 0; j < kk; ++j) outs[j].traffic = forks[j]->finish();
    // A caller-supplied recorder only saw the prefix (each fork owns a
    // clone); wholesale-copy a finished fork's data back so the caller reads
    // exactly what an unforked run would have recorded.
    if (opts.recorder != nullptr && forks.front()->recorder() != nullptr) {
      opts.recorder->clone_from(*forks.front()->recorder());
    }
    return outs;
  }

  switch (spec.workload.kind) {
    case WorkloadKind::kStream: {
      const StreamingParams base = streaming_params_from_spec(spec, opts);
      const auto runs = static_cast<std::size_t>(spec.workload.runs);
      auto groups = sweep_map<std::vector<StreamingResult>>(
          runs,
          [&](std::size_t r) {
            StreamingParams p = base;
            p.seed = base.seed + r;
            std::vector<std::unique_ptr<StreamingRun>> forks;
            {
              StreamingRun run(p);
              run.start();
              run.run_to(snap);
              for (std::size_t j = 0; j < kk; ++j) forks.push_back(run.fork());
            }
            std::vector<StreamingResult> branch(kk);
            for (std::size_t j = 0; j < kk; ++j) branch[j] = forks[j]->finish();
            // See the traffic branch: publish a fork's recorder data back
            // into a caller recorder (the sweep is serial in that case, so
            // the next repetition's prefix sees this repetition's data
            // exactly as an unforked sequential run would).
            if (opts.recorder != nullptr && forks.front()->recorder() != nullptr) {
              opts.recorder->clone_from(*forks.front()->recorder());
            }
            return branch;
          },
          sw);
      for (std::size_t j = 0; j < kk; ++j) {
        std::vector<StreamingResult> reps(runs);
        for (std::size_t r = 0; r < runs; ++r) reps[r] = std::move(groups[r][j]);
        outs[j].streaming = aggregate_streaming(std::move(reps));
      }
      break;
    }
    case WorkloadKind::kDownload: {
      DownloadParams base = download_params_from_spec(spec);
      base.telemetry = opts.telemetry;
      base.heartbeat = opts.heartbeat;
      const auto runs = static_cast<std::size_t>(spec.workload.runs);
      auto groups = sweep_map<std::vector<DownloadResult>>(
          runs,
          [&](std::size_t r) {
            DownloadParams p = base;
            p.seed = base.seed + r + 1;  // run_download_samples advances first
            std::vector<std::unique_ptr<DownloadRun>> forks;
            {
              DownloadRun run(p);
              run.start();
              run.run_to(snap);
              for (std::size_t j = 0; j < kk; ++j) forks.push_back(run.fork());
            }
            std::vector<DownloadResult> branch(kk);
            for (std::size_t j = 0; j < kk; ++j) branch[j] = forks[j]->finish();
            return branch;
          },
          sw);
      for (std::size_t j = 0; j < kk; ++j) {
        for (std::size_t r = 0; r < runs; ++r) {
          outs[j].download_completions.add(groups[r][j].completion.to_seconds());
          if (r + 1 == runs) outs[j].download = groups[r][j];
        }
      }
      break;
    }
    case WorkloadKind::kWeb: {
      WebRunParams base = web_params_from_spec(spec);
      base.telemetry = opts.telemetry;
      base.heartbeat = opts.heartbeat;
      const auto runs = static_cast<std::size_t>(base.runs);
      auto groups = sweep_map<std::vector<WebCell>>(
          runs,
          [&](std::size_t r) {
            std::vector<std::unique_ptr<WebPageRun>> forks;
            {
              WebPageRun run(base, static_cast<int>(r));
              run.start();
              run.run_to(snap);
              for (std::size_t j = 0; j < kk; ++j) forks.push_back(run.fork());
            }
            std::vector<WebCell> branch(kk);
            for (std::size_t j = 0; j < kk; ++j) {
              forks[j]->finish(branch[j].res, branch[j].page_load);
            }
            return branch;
          },
          sw);
      for (std::size_t j = 0; j < kk; ++j) {
        double page_load_sum = 0.0;
        for (std::size_t r = 0; r < runs; ++r) {
          const WebCell& c = groups[r][j];
          outs[j].web.object_times.merge(c.res.object_times);
          outs[j].web.ooo_delay.merge(c.res.ooo_delay);
          outs[j].web.iw_resets += c.res.iw_resets;
          page_load_sum += c.page_load;
        }
        outs[j].web.mean_page_load_s = page_load_sum / base.runs;
      }
      break;
    }
  }
  return outs;
}

// --- what-if scheduler grid -------------------------------------------------

std::vector<ScenarioOutcome> run_whatif_grid(const ScenarioSpec& spec,
                                             const std::vector<std::string>& schedulers,
                                             double switch_at_s, bool share_prefix,
                                             const ScenarioRunOptions& opts,
                                             const SweepOptions& sweep) {
  if (spec.traffic.enabled || (spec.workload.kind != WorkloadKind::kStream &&
                               spec.workload.kind != WorkloadKind::kDownload)) {
    throw std::invalid_argument(
        "run_whatif_grid: only stream and download workloads (single connection) support "
        "a scheduler switch");
  }
  const TimePoint switch_at = TimePoint::origin() + Duration::from_seconds(switch_at_s);
  const SweepOptions sw = effective_sweep(sweep, opts);
  const std::size_t k = schedulers.size();
  const auto runs = static_cast<std::size_t>(spec.workload.runs);

  std::vector<SchedulerFactory> factories;
  factories.reserve(k);
  for (const std::string& name : schedulers) factories.push_back(scheduler_factory(name));

  std::vector<ScenarioOutcome> out(k);
  for (ScenarioOutcome& o : out) o.kind = spec.workload.kind;
  if (k == 0 || runs == 0) return out;

  if (spec.workload.kind == WorkloadKind::kStream) {
    const StreamingParams base = streaming_params_from_spec(spec, opts);
    // cells[r * k + b]: repetition r diverged into branch b.
    std::vector<StreamingResult> cells(runs * k);
    if (share_prefix) {
      auto groups = sweep_map<std::vector<StreamingResult>>(
          runs,
          [&](std::size_t r) {
            StreamingParams p = base;
            p.seed = base.seed + r;
            StreamingRun prefix(p);
            prefix.start();
            prefix.run_to(switch_at);
            std::vector<StreamingResult> branch(k);
            for (std::size_t b = 0; b < k; ++b) {
              auto f = prefix.fork();
              f->set_scheduler(factories[b]);
              branch[b] = f->finish();
            }
            return branch;
          },
          sw);
      for (std::size_t r = 0; r < runs; ++r) {
        for (std::size_t b = 0; b < k; ++b) cells[r * k + b] = std::move(groups[r][b]);
      }
    } else {
      cells = sweep_map<StreamingResult>(
          runs * k,
          [&](std::size_t i) {
            const std::size_t r = i / k;
            const std::size_t b = i % k;
            StreamingParams p = base;
            p.seed = base.seed + r;
            StreamingRun run(p);
            run.start();
            run.run_to(switch_at);
            run.set_scheduler(factories[b]);
            return run.finish();
          },
          sw);
    }
    for (std::size_t b = 0; b < k; ++b) {
      std::vector<StreamingResult> reps(runs);
      for (std::size_t r = 0; r < runs; ++r) reps[r] = std::move(cells[r * k + b]);
      out[b].streaming = aggregate_streaming(std::move(reps));
    }
    return out;
  }

  // Download.
  DownloadParams base = download_params_from_spec(spec);
  base.telemetry = opts.telemetry;
  base.heartbeat = opts.heartbeat;
  std::vector<DownloadResult> cells(runs * k);
  if (share_prefix) {
    auto groups = sweep_map<std::vector<DownloadResult>>(
        runs,
        [&](std::size_t r) {
          DownloadParams p = base;
          p.seed = base.seed + r + 1;
          DownloadRun prefix(p);
          prefix.start();
          prefix.run_to(switch_at);
          std::vector<DownloadResult> branch(k);
          for (std::size_t b = 0; b < k; ++b) {
            auto f = prefix.fork();
            f->set_scheduler(factories[b]);
            branch[b] = f->finish();
          }
          return branch;
        },
        sw);
    for (std::size_t r = 0; r < runs; ++r) {
      for (std::size_t b = 0; b < k; ++b) cells[r * k + b] = std::move(groups[r][b]);
    }
  } else {
    cells = sweep_map<DownloadResult>(
        runs * k,
        [&](std::size_t i) {
          const std::size_t r = i / k;
          const std::size_t b = i % k;
          DownloadParams p = base;
          p.seed = base.seed + r + 1;
          DownloadRun run(p);
          run.start();
          run.run_to(switch_at);
          run.set_scheduler(factories[b]);
          return run.finish();
        },
        sw);
  }
  for (std::size_t b = 0; b < k; ++b) {
    for (std::size_t r = 0; r < runs; ++r) {
      const DownloadResult& res = cells[r * k + b];
      out[b].download_completions.add(res.completion.to_seconds());
      if (r + 1 == runs) out[b].download = res;
    }
  }
  return out;
}

}  // namespace mps
