#include "exp/download.h"

#include "app/http.h"
#include "exp/testbed.h"
#include "sched/registry.h"

namespace mps {

DownloadResult run_download(const DownloadParams& params) {
  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(params.wifi_mbps));
  tb.lte = lte_profile(Rate::mbps(params.lte_mbps));
  tb.seed = params.seed;
  tb.conn.cc = params.cc;

  Testbed bed(tb);
  auto conn = bed.make_connection(scheduler_factory(params.scheduler));
  HttpExchange http(bed.sim(), *conn, bed.request_delay());

  DownloadResult res;
  http.get(params.bytes, [&](const ObjectResult& r) {
    res.completion = r.completed - r.requested;
    bed.sim().request_stop();
  });
  if (params.heartbeat.enabled()) {
    bed.sim().set_heartbeat(params.heartbeat.interval_s, params.heartbeat.fn);
  }
  bed.sim().run_until(TimePoint::origin() + Duration::seconds(600));
  if (params.telemetry != nullptr) {
    params.telemetry->events += bed.sim().events_processed();
    params.telemetry->sim_s += (bed.sim().now() - TimePoint::origin()).to_seconds();
  }

  const bool lte_fast = params.lte_mbps > params.wifi_mbps;
  const auto& subflows = conn->subflows();
  const std::uint64_t wifi_bytes = subflows[0]->stats().bytes_sent;
  const std::uint64_t lte_bytes = subflows[1]->stats().bytes_sent;
  const std::uint64_t total = wifi_bytes + lte_bytes;
  res.fraction_fast =
      total > 0 ? static_cast<double>(lte_fast ? lte_bytes : wifi_bytes) / total : 0.0;
  res.ooo_delay = conn->ooo_delay();
  return res;
}

Samples run_download_samples(DownloadParams params, int runs) {
  Samples out;
  for (int r = 0; r < runs; ++r) {
    params.seed += 1;
    out.add(run_download(params).completion.to_seconds());
  }
  return out;
}

}  // namespace mps
