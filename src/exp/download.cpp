#include "exp/download.h"

#include <cassert>

#include "app/http.h"
#include "exp/snapshot.h"
#include "scenario/world.h"
#include "sched/registry.h"

namespace mps {

DownloadRun::DownloadRun(const DownloadParams& params) : params_(params) { construct(); }

DownloadRun::DownloadRun(const DownloadRun& src, ForkTag) : params_(src.params_) {
  construct();
  snapshot::require_construction_event_free(sim(), "DownloadRun::fork");
  world_->restore_from(*src.world_);
  if (pm_ != nullptr) pm_->restore_topology(*src.pm_);
  conn_->restore_from(*src.conn_);
  if (pm_ != nullptr) pm_->restore_from(*src.pm_);
  http_->restore_from(*src.http_);
  if (http_->outstanding() > 0) install_done();
  res_ = src.res_;
  started_ = src.started_;
  done_ = src.done_;
  if (started_ && params_.heartbeat.enabled()) {
    world_->sim().set_heartbeat(params_.heartbeat.interval_s, params_.heartbeat.fn);
  }
  snapshot::require_fully_rebound(sim(), "DownloadRun::fork");
}

DownloadRun::~DownloadRun() = default;

void DownloadRun::construct() {
  cap_ = TimePoint::origin() + Duration::seconds(600);

  // World construction is bit-identical to the historical Testbed veneer for
  // the default wifi/lte pair (scenario/world.h's compatibility contract).
  WorldConfig wc;
  if (params_.paths.empty()) {
    wc.paths.push_back(wifi_profile(Rate::mbps(params_.wifi_mbps)));
    wc.paths.push_back(lte_profile(Rate::mbps(params_.lte_mbps)));
  } else {
    wc.paths = params_.paths;
  }
  wc.seed = params_.seed;
  wc.conn.cc = params_.cc;

  fast_path_ = 0;
  for (std::size_t i = 1; i < wc.paths.size(); ++i) {
    if (wc.paths[i].down_rate > wc.paths[fast_path_].down_rate) fast_path_ = i;
  }

  world_ = std::make_unique<World>(wc);
  conn_ = params_.initial_paths.empty()
              ? world_->make_connection(scheduler_factory(params_.scheduler))
              : world_->make_connection_on(params_.initial_paths,
                                           scheduler_factory(params_.scheduler));
  if (params_.use_path_manager) {
    std::vector<Path*> paths;
    for (std::size_t i = 0; i < world_->path_count(); ++i) paths.push_back(&world_->path(i));
    pm_ = std::make_unique<PathManager>(*conn_, std::move(paths), params_.path_manager);
  }
  http_ = std::make_unique<HttpExchange>(world_->sim(), *conn_, world_->request_delay());
}

void DownloadRun::install_done() {
  http_->set_outstanding_done(0, [this](const ObjectResult& r) {
    res_.completion = r.completed - r.requested;
    done_ = true;
    world_->sim().request_stop();
  });
}

Simulator& DownloadRun::sim() { return world_->sim(); }

void DownloadRun::start() {
  assert(!started_);
  started_ = true;
  http_->get(params_.bytes, nullptr);
  install_done();
  if (pm_ != nullptr) pm_->start();
  if (params_.heartbeat.enabled()) {
    world_->sim().set_heartbeat(params_.heartbeat.interval_s, params_.heartbeat.fn);
  }
}

void DownloadRun::run_to(TimePoint t) {
  if (done_) return;
  world_->sim().run_until(t < cap_ ? t : cap_);
}

std::unique_ptr<DownloadRun> DownloadRun::fork() const {
  return std::unique_ptr<DownloadRun>(new DownloadRun(*this, ForkTag{}));
}

void DownloadRun::set_scheduler(const SchedulerFactory& factory) {
  conn_->set_scheduler(factory());
}

DownloadResult DownloadRun::finish() {
  if (!done_) world_->sim().run_until(cap_);
  if (params_.telemetry != nullptr) {
    params_.telemetry->events += world_->sim().events_processed();
    params_.telemetry->sim_s += (world_->sim().now() - TimePoint::origin()).to_seconds();
  }

  // Per-path byte totals via the connection's slot accounting, which
  // survives mid-connection subflow teardown (retired slots keep their
  // stats). Identical to summing the live subflows for static topologies.
  res_.path_bytes.assign(world_->path_count(), 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < world_->path_count(); ++i) {
    res_.path_bytes[i] = conn_->bytes_sent_on(world_->path(i));
    total += res_.path_bytes[i];
  }
  res_.fraction_fast =
      total > 0 ? static_cast<double>(res_.path_bytes[fast_path_]) / total : 0.0;
  res_.ooo_delay = conn_->ooo_delay();
  res_.remapped_segments = conn_->meta_stats().remapped_segments;
  return res_;
}

DownloadResult run_download(const DownloadParams& params) {
  DownloadRun run(params);
  run.start();
  return run.finish();
}

Samples run_download_samples(DownloadParams params, int runs) {
  Samples out;
  for (int r = 0; r < runs; ++r) {
    params.seed += 1;
    out.add(run_download(params).completion.to_seconds());
  }
  return out;
}

}  // namespace mps
