#include "exp/download.h"

#include <cassert>

#include "app/http.h"
#include "exp/snapshot.h"
#include "exp/testbed.h"
#include "sched/registry.h"

namespace mps {

DownloadRun::DownloadRun(const DownloadParams& params) : params_(params) { construct(); }

DownloadRun::DownloadRun(const DownloadRun& src, ForkTag) : params_(src.params_) {
  construct();
  snapshot::require_construction_event_free(sim(), "DownloadRun::fork");
  bed_->world().restore_from(src.bed_->world());
  conn_->restore_from(*src.conn_);
  http_->restore_from(*src.http_);
  if (http_->outstanding() > 0) install_done();
  res_ = src.res_;
  started_ = src.started_;
  done_ = src.done_;
  if (started_ && params_.heartbeat.enabled()) {
    bed_->sim().set_heartbeat(params_.heartbeat.interval_s, params_.heartbeat.fn);
  }
  snapshot::require_fully_rebound(sim(), "DownloadRun::fork");
}

DownloadRun::~DownloadRun() = default;

void DownloadRun::construct() {
  cap_ = TimePoint::origin() + Duration::seconds(600);

  TestbedConfig tb;
  tb.wifi = wifi_profile(Rate::mbps(params_.wifi_mbps));
  tb.lte = lte_profile(Rate::mbps(params_.lte_mbps));
  tb.seed = params_.seed;
  tb.conn.cc = params_.cc;

  bed_ = std::make_unique<Testbed>(tb);
  conn_ = bed_->make_connection(scheduler_factory(params_.scheduler));
  http_ = std::make_unique<HttpExchange>(bed_->sim(), *conn_, bed_->request_delay());
}

void DownloadRun::install_done() {
  http_->set_outstanding_done(0, [this](const ObjectResult& r) {
    res_.completion = r.completed - r.requested;
    done_ = true;
    bed_->sim().request_stop();
  });
}

Simulator& DownloadRun::sim() { return bed_->sim(); }

void DownloadRun::start() {
  assert(!started_);
  started_ = true;
  http_->get(params_.bytes, nullptr);
  install_done();
  if (params_.heartbeat.enabled()) {
    bed_->sim().set_heartbeat(params_.heartbeat.interval_s, params_.heartbeat.fn);
  }
}

void DownloadRun::run_to(TimePoint t) {
  if (done_) return;
  bed_->sim().run_until(t < cap_ ? t : cap_);
}

std::unique_ptr<DownloadRun> DownloadRun::fork() const {
  return std::unique_ptr<DownloadRun>(new DownloadRun(*this, ForkTag{}));
}

void DownloadRun::set_scheduler(const SchedulerFactory& factory) {
  conn_->set_scheduler(factory());
}

DownloadResult DownloadRun::finish() {
  if (!done_) bed_->sim().run_until(cap_);
  if (params_.telemetry != nullptr) {
    params_.telemetry->events += bed_->sim().events_processed();
    params_.telemetry->sim_s += (bed_->sim().now() - TimePoint::origin()).to_seconds();
  }

  const bool lte_fast = params_.lte_mbps > params_.wifi_mbps;
  const auto& subflows = conn_->subflows();
  const std::uint64_t wifi_bytes = subflows[0]->stats().bytes_sent;
  const std::uint64_t lte_bytes = subflows[1]->stats().bytes_sent;
  const std::uint64_t total = wifi_bytes + lte_bytes;
  res_.fraction_fast =
      total > 0 ? static_cast<double>(lte_fast ? lte_bytes : wifi_bytes) / total : 0.0;
  res_.ooo_delay = conn_->ooo_delay();
  return res_;
}

DownloadResult run_download(const DownloadParams& params) {
  DownloadRun run(params);
  run.start();
  return run.finish();
}

Samples run_download_samples(DownloadParams params, int runs) {
  Samples out;
  for (int r = 0; r < runs; ++r) {
    params.seed += 1;
    out.add(run_download(params).completion.to_seconds());
  }
  return out;
}

}  // namespace mps
