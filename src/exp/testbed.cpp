#include "exp/testbed.h"

namespace mps {

WorldConfig Testbed::to_world_config(const TestbedConfig& config) {
  WorldConfig w;
  w.paths = {config.wifi, config.lte};
  w.subflows_per_path = config.subflows_per_path;
  w.conn = config.conn;
  w.seed = config.seed;
  w.recorder = config.recorder;
  return w;
}

Testbed::Testbed(TestbedConfig config) : world_(to_world_config(config)) {}

}  // namespace mps
