#include "exp/testbed.h"

namespace mps {

Testbed::Testbed(TestbedConfig config) : config_(config), rng_(config.seed) {
  sim_.set_recorder(config_.recorder);
  wifi_ = std::make_unique<Path>(sim_, config_.wifi);
  lte_ = std::make_unique<Path>(sim_, config_.lte);
  wifi_->down().set_rng(rng_.fork());
  lte_->down().set_rng(rng_.fork());

  down_mux_.attach_to(wifi_->down());
  down_mux_.attach_to(lte_->down());
  up_mux_.attach_to(wifi_->up());
  up_mux_.attach_to(lte_->up());
}

std::unique_ptr<Connection> Testbed::make_connection(const SchedulerFactory& scheduler) {
  ConnectionConfig cc = config_.conn;
  cc.conn_id = next_conn_id_++;

  std::vector<Path*> paths;
  for (int i = 0; i < config_.subflows_per_path; ++i) paths.push_back(wifi_.get());
  for (int i = 0; i < config_.subflows_per_path; ++i) paths.push_back(lte_.get());

  return std::make_unique<Connection>(sim_, cc, std::move(paths), scheduler(), down_mux_,
                                      up_mux_);
}

}  // namespace mps
