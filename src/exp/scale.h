// Bench scaling: paper-scale runs take tens of minutes; the default "quick"
// scale keeps every bench faithful in shape but minutes-fast. Controlled by
// the MPS_BENCH_SCALE environment variable ("quick" | "full" | "paper").
#pragma once

#include <string>

#include "util/time.h"

namespace mps {

struct BenchScale {
  std::string name = "quick";
  Duration video = Duration::seconds(180);  // paper: 1200 s
  int streaming_runs = 1;                   // paper: 5
  int wget_runs = 5;                        // paper: 30
  int web_runs = 2;                         // paper: 10 (30 in the wild)
  int random_scenarios = 4;                 // paper: 10
  Duration random_run = Duration::seconds(200);  // paper: full video
  int grid_step = 1;  // use every grid_step-th point of 10x10 wget grids
};

// Reads MPS_BENCH_SCALE once.
const BenchScale& bench_scale();

// Human-readable note for bench headers.
std::string scale_note();

}  // namespace mps
