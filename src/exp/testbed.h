// The controlled-lab testbed of paper Section 5.1: one WiFi path (primary)
// and one LTE path between server and client, with `tc`-style bandwidth
// regulation, shared by all connections of a scenario.
//
// Testbed is now a thin two-path veneer over scenario/world.h's World, which
// generalizes the same construction to N paths and is what the declarative
// scenario pipeline builds. Construction order (and therefore RNG stream
// assignment) is owned by World and unchanged from the original Testbed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mptcp/connection.h"
#include "net/path.h"
#include "scenario/world.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mps {

struct TestbedConfig {
  PathConfig wifi = wifi_profile(Rate::mbps(8.6));
  PathConfig lte = lte_profile(Rate::mbps(8.6));
  // Subflows per interface (paper Section 5.2.5 uses 2 for four subflows).
  int subflows_per_path = 1;
  ConnectionConfig conn;  // template; conn_id is assigned per connection
  std::uint64_t seed = 1;
  // Optional flight recorder. BORROWED: the testbed/world holds pointers
  // into it (simulator, link/subflow/connection instruments), so it must
  // outlive the Testbed and every connection built from it. Spec-driven
  // runs avoid the footgun entirely — WorldBuilder owns the recorder there.
  // Attached to the simulator before the paths are built so all instruments
  // register.
  FlightRecorder* recorder = nullptr;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  Simulator& sim() { return world_.sim(); }
  Path& wifi() { return world_.path(0); }
  Path& lte() { return world_.path(1); }
  Rng& rng() { return world_.rng(); }
  World& world() { return world_; }

  // Builds a connection over [wifi x subflows_per_path, lte x
  // subflows_per_path] with WiFi primary, a fresh conn_id, and the given
  // scheduler.
  std::unique_ptr<Connection> make_connection(const SchedulerFactory& scheduler) {
    return world_.make_connection(scheduler);
  }

  // One-way latency of a GET from client to server on the primary path.
  Duration request_delay() const { return world_.request_delay(); }

  // Runs the simulation until `deadline` or until the event queue drains.
  void run_for(Duration d) { world_.run_for(d); }

 private:
  static WorldConfig to_world_config(const TestbedConfig& config);

  World world_;
};

}  // namespace mps
