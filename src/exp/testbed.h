// The controlled-lab testbed of paper Section 5.1: one WiFi path (primary)
// and one LTE path between server and client, with `tc`-style bandwidth
// regulation, shared by all connections of a scenario.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mptcp/connection.h"
#include "net/mux.h"
#include "net/path.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mps {

struct TestbedConfig {
  PathConfig wifi = wifi_profile(Rate::mbps(8.6));
  PathConfig lte = lte_profile(Rate::mbps(8.6));
  // Subflows per interface (paper Section 5.2.5 uses 2 for four subflows).
  int subflows_per_path = 1;
  ConnectionConfig conn;  // template; conn_id is assigned per connection
  std::uint64_t seed = 1;
  // Optional flight recorder (borrowed; must outlive the testbed). Attached
  // to the simulator before the paths are built so link/subflow/connection
  // instruments all register.
  FlightRecorder* recorder = nullptr;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  Simulator& sim() { return sim_; }
  Path& wifi() { return *wifi_; }
  Path& lte() { return *lte_; }
  Rng& rng() { return rng_; }

  // Builds a connection over [wifi x subflows_per_path, lte x
  // subflows_per_path] with WiFi primary, a fresh conn_id, and the given
  // scheduler.
  std::unique_ptr<Connection> make_connection(const SchedulerFactory& scheduler);

  // One-way latency of a GET from client to server on the primary path.
  Duration request_delay() const { return wifi_->rtt_base() / 2; }

  // Runs the simulation until `deadline` or until the event queue drains.
  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }

 private:
  TestbedConfig config_;
  Simulator sim_;
  Rng rng_;
  std::unique_ptr<Path> wifi_;
  std::unique_ptr<Path> lte_;
  Mux down_mux_;  // attached to both downlinks (client side)
  Mux up_mux_;    // attached to both uplinks (server side)
  std::uint32_t next_conn_id_ = 1;
};

}  // namespace mps
