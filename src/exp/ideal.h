// Ideal-performance reference values used by the paper's figures.
#pragma once

#include <algorithm>
#include <vector>

namespace mps {

// Paper Table 1 ladder; shared by the ideal-bitrate definition.
inline const std::vector<double>& paper_ladder_mbps() {
  static const std::vector<double> kLadder = {0.26, 0.64, 1.00, 1.60, 4.14, 8.47};
  return kLadder;
}

// Paper Section 3.1: "the minimum of the aggregate total bandwidth and the
// bandwidth required for the highest resolution".
inline double ideal_bitrate_mbps(double wifi_mbps, double lte_mbps) {
  return std::min(wifi_mbps + lte_mbps, paper_ladder_mbps().back());
}

// Ideal fraction of traffic on the fast subflow: its share of the aggregate
// bandwidth (both paths fully utilized during ON periods).
inline double ideal_fast_fraction(double fast_mbps, double slow_mbps) {
  const double total = fast_mbps + slow_mbps;
  return total > 0.0 ? fast_mbps / total : 0.0;
}

// The regulated-bandwidth grid of paper Sections 3 and 5.2.
inline const std::vector<double>& paper_bandwidth_grid() {
  static const std::vector<double> kGrid = {0.3, 0.7, 1.1, 1.7, 4.2, 8.6};
  return kGrid;
}

}  // namespace mps
