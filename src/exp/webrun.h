// Web-browsing experiment runner (paper Sections 5.5 and 6.3).
#pragma once

#include <string>

#include "net/path.h"
#include "sim/simulator.h"
#include "tcp/cc.h"
#include "util/stats.h"
#include "util/time.h"

namespace mps {

struct WebRunParams {
  double wifi_mbps = 5.0;
  double lte_mbps = 5.0;
  std::string scheduler = "default";
  CcKind cc = CcKind::kLia;
  std::uint64_t seed = 1;
  int runs = 2;
  // Optional full path overrides (wild profiles).
  bool use_path_overrides = false;
  PathConfig wifi_override;
  PathConfig lte_override;
  // Kernel accounting out-param and progress heartbeat (sim/simulator.h).
  RunTelemetry* telemetry = nullptr;
  HeartbeatConfig heartbeat;
};

struct WebRunResult {
  Samples object_times;  // seconds, per object across all runs
  Samples ooo_delay;     // seconds, per packet across all runs
  double mean_page_load_s = 0.0;
  std::uint64_t iw_resets = 0;
};

WebRunResult run_web(const WebRunParams& params);

}  // namespace mps
