// Web-browsing experiment runner (paper Sections 5.5 and 6.3).
#pragma once

#include <memory>
#include <string>

#include "mptcp/scheduler.h"
#include "net/path.h"
#include "sim/simulator.h"
#include "tcp/cc.h"
#include "util/stats.h"
#include "util/time.h"

namespace mps {

class Testbed;
class WebBrowser;

struct WebRunParams {
  double wifi_mbps = 5.0;
  double lte_mbps = 5.0;
  std::string scheduler = "default";
  CcKind cc = CcKind::kLia;
  std::uint64_t seed = 1;
  int runs = 2;
  // Optional full path overrides (wild profiles).
  bool use_path_overrides = false;
  PathConfig wifi_override;
  PathConfig lte_override;
  // Kernel accounting out-param and progress heartbeat (sim/simulator.h).
  RunTelemetry* telemetry = nullptr;
  HeartbeatConfig heartbeat;
};

struct WebRunResult {
  Samples object_times;  // seconds, per object across all runs
  Samples ooo_delay;     // seconds, per packet across all runs
  double mean_page_load_s = 0.0;
  std::uint64_t iw_resets = 0;
};

// One repetition of the web workload (one page load at seed + rep) held as
// an object so it can be paused and forked (exp/snapshot.h). run_web() loops
// construct + start + finish over params.runs repetitions.
class WebPageRun {
 public:
  WebPageRun(const WebRunParams& params, int rep);
  ~WebPageRun();
  WebPageRun(const WebPageRun&) = delete;
  WebPageRun& operator=(const WebPageRun&) = delete;

  // Starts the page load and attaches the heartbeat. Call once.
  void start();
  // Advances to absolute time `t` (clamped to the 3600 s safety cap); no-op
  // once the page has finished loading.
  void run_to(TimePoint t);
  bool done() const { return done_; }
  Simulator& sim();

  // Independent copy at the current simulation time (see StreamingRun::fork).
  std::unique_ptr<WebPageRun> fork() const;

  // Merges this repetition's observables into `res` exactly as run_web's
  // per-rep block does (runs to completion first if needed).
  void finish(WebRunResult& res, double& page_load_sum);

 private:
  struct ForkTag {};
  WebPageRun(const WebPageRun& src, ForkTag);
  void construct();

  WebRunParams params_;
  int rep_;
  TimePoint cap_;
  SchedulerFactory factory_;
  std::unique_ptr<Testbed> bed_;
  std::unique_ptr<WebBrowser> browser_;
  bool started_ = false;
  bool done_ = false;
};

WebRunResult run_web(const WebRunParams& params);

}  // namespace mps
