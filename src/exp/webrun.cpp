#include "exp/webrun.h"

#include <cassert>

#include "app/web.h"
#include "exp/snapshot.h"
#include "exp/testbed.h"
#include "sched/registry.h"

namespace mps {

WebPageRun::WebPageRun(const WebRunParams& params, int rep) : params_(params), rep_(rep) {
  construct();
}

WebPageRun::WebPageRun(const WebPageRun& src, ForkTag)
    : params_(src.params_), rep_(src.rep_) {
  construct();
  snapshot::require_construction_event_free(sim(), "WebPageRun::fork");
  bed_->world().restore_from(src.bed_->world());
  browser_->restore_from(*src.browser_,
                         [this](std::uint32_t id) { bed_->world().set_next_conn_id(id); });
  browser_->on_finished = [this] {
    done_ = true;
    bed_->sim().request_stop();
  };
  started_ = src.started_;
  done_ = src.done_;
  if (started_ && params_.heartbeat.enabled()) {
    bed_->sim().set_heartbeat(params_.heartbeat.interval_s, params_.heartbeat.fn);
  }
  snapshot::require_fully_rebound(sim(), "WebPageRun::fork");
}

WebPageRun::~WebPageRun() = default;

void WebPageRun::construct() {
  cap_ = TimePoint::origin() + Duration::seconds(3600);

  TestbedConfig tb;
  if (params_.use_path_overrides) {
    tb.wifi = params_.wifi_override;
    tb.lte = params_.lte_override;
  } else {
    tb.wifi = wifi_profile(Rate::mbps(params_.wifi_mbps));
    tb.lte = lte_profile(Rate::mbps(params_.lte_mbps));
  }
  tb.seed = params_.seed + static_cast<std::uint64_t>(rep_);
  tb.conn.cc = params_.cc;

  bed_ = std::make_unique<Testbed>(tb);
  WebPageConfig wc;
  // The page content is fixed across runs and schedulers (same seed).
  Rng page_rng(0xC0FFEE);
  auto objects = make_page_objects(page_rng, wc);

  factory_ = scheduler_factory(params_.scheduler);
  browser_ = std::make_unique<WebBrowser>(bed_->sim(), wc, std::move(objects),
                                          [this] { return bed_->make_connection(factory_); });
  browser_->on_finished = [this] {
    done_ = true;
    bed_->sim().request_stop();
  };
}

Simulator& WebPageRun::sim() { return bed_->sim(); }

void WebPageRun::start() {
  assert(!started_);
  started_ = true;
  browser_->start();
  if (params_.heartbeat.enabled()) {
    bed_->sim().set_heartbeat(params_.heartbeat.interval_s, params_.heartbeat.fn);
  }
}

void WebPageRun::run_to(TimePoint t) {
  if (done_) return;
  bed_->sim().run_until(t < cap_ ? t : cap_);
}

std::unique_ptr<WebPageRun> WebPageRun::fork() const {
  return std::unique_ptr<WebPageRun>(new WebPageRun(*this, ForkTag{}));
}

void WebPageRun::finish(WebRunResult& res, double& page_load_sum) {
  if (!done_) bed_->sim().run_until(cap_);
  if (params_.telemetry != nullptr) {
    params_.telemetry->events += bed_->sim().events_processed();
    params_.telemetry->sim_s += (bed_->sim().now() - TimePoint::origin()).to_seconds();
  }

  res.object_times.merge(browser_->object_times());
  res.ooo_delay.merge(browser_->ooo_delays());
  res.iw_resets += browser_->iw_resets();
  page_load_sum += browser_->page_load_time().to_seconds();
}

WebRunResult run_web(const WebRunParams& params) {
  WebRunResult res;
  double page_load_sum = 0.0;

  for (int r = 0; r < params.runs; ++r) {
    WebPageRun run(params, r);
    run.start();
    run.finish(res, page_load_sum);
  }
  res.mean_page_load_s = page_load_sum / params.runs;
  return res;
}

}  // namespace mps
