#include "exp/webrun.h"

#include "app/web.h"
#include "exp/testbed.h"
#include "sched/registry.h"

namespace mps {

WebRunResult run_web(const WebRunParams& params) {
  WebRunResult res;
  double page_load_sum = 0.0;

  for (int r = 0; r < params.runs; ++r) {
    TestbedConfig tb;
    if (params.use_path_overrides) {
      tb.wifi = params.wifi_override;
      tb.lte = params.lte_override;
    } else {
      tb.wifi = wifi_profile(Rate::mbps(params.wifi_mbps));
      tb.lte = lte_profile(Rate::mbps(params.lte_mbps));
    }
    tb.seed = params.seed + static_cast<std::uint64_t>(r);
    tb.conn.cc = params.cc;

    Testbed bed(tb);
    WebPageConfig wc;
    // The page content is fixed across runs and schedulers (same seed).
    Rng page_rng(0xC0FFEE);
    auto objects = make_page_objects(page_rng, wc);

    const SchedulerFactory factory = scheduler_factory(params.scheduler);
    WebBrowser browser(bed.sim(), wc, std::move(objects),
                       [&bed, &factory] { return bed.make_connection(factory); });
    browser.on_finished = [&bed] { bed.sim().request_stop(); };
    browser.start();
    if (params.heartbeat.enabled()) {
      bed.sim().set_heartbeat(params.heartbeat.interval_s, params.heartbeat.fn);
    }
    bed.sim().run_until(TimePoint::origin() + Duration::seconds(3600));
    if (params.telemetry != nullptr) {
      params.telemetry->events += bed.sim().events_processed();
      params.telemetry->sim_s += (bed.sim().now() - TimePoint::origin()).to_seconds();
    }

    res.object_times.merge(browser.object_times());
    res.ooo_delay.merge(browser.ooo_delays());
    res.iw_resets += browser.iw_resets();
    page_load_sum += browser.page_load_time().to_seconds();
  }
  res.mean_page_load_s = page_load_sum / params.runs;
  return res;
}

}  // namespace mps
