// Parallel sweep engine: runs the independent cells of a parameter sweep
// (bandwidth grids, scheduler cross-products, seeded scenario repeats) on a
// thread pool.
//
// Determinism contract: each cell owns its whole world — Simulator,
// FlightRecorder, seeded RNGs — so a cell computes bit-identical results no
// matter which worker runs it or in what order. Callers collect results *by
// cell index* and render only after run() returns; output is then
// byte-identical to a serial sweep. MPS_BENCH_JOBS=1 restores strictly
// serial in-order execution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace mps {

// Worker count for sweeps: MPS_BENCH_JOBS when set to a positive integer,
// otherwise std::thread::hardware_concurrency() (at least 1). Read per call,
// so tests may change the environment between sweeps.
int sweep_jobs();

struct SweepOptions {
  int jobs = 0;  // 0 = resolve via sweep_jobs()
};

// Per-worker accounting for one SweepRunner::run. All fields are integer
// nanoseconds so the conservation law is exact: for every worker,
//   busy_ns + wait_ns + idle_ns == telemetry.wall_ns
// busy covers cell bodies, wait covers the work-claim (the fetch_add on the
// shared counter), and idle is the remainder — time between this worker
// finishing and the slowest worker (which defines wall_ns) finishing.
struct WorkerStats {
  std::uint64_t busy_ns = 0;
  std::uint64_t wait_ns = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t cells = 0;
};

struct SweepTelemetry {
  std::vector<WorkerStats> workers;
  std::uint64_t wall_ns = 0;  // pool start -> last worker done
  int jobs = 0;               // resolved worker count actually used
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  // Executes cell(0..n-1), blocking until all complete. jobs()==1 (or n<=1)
  // runs inline in index order with no threads. Cells must not touch shared
  // mutable state; the first exception thrown by any cell is rethrown here
  // after the pool drains. Each call replaces telemetry() with this run's
  // worker accounting (the serial path reports a single all-busy worker).
  void run(std::size_t n, const std::function<void(std::size_t)>& cell);

  int jobs() const { return jobs_; }

  // Worker accounting for the most recent run(); empty before the first.
  const SweepTelemetry& telemetry() const { return telemetry_; }

 private:
  int jobs_;
  SweepTelemetry telemetry_;
};

// Convenience: maps cell(i) -> R over [0, n), collecting results by index.
// R must be default-constructible. Pass `telemetry` to receive the worker
// accounting of the underlying run.
template <typename R, typename F>
std::vector<R> sweep_map(std::size_t n, F&& cell, SweepOptions opts = {},
                         SweepTelemetry* telemetry = nullptr) {
  std::vector<R> out(n);
  SweepRunner runner(opts);
  runner.run(n, [&out, &cell](std::size_t i) { out[i] = cell(i); });
  if (telemetry != nullptr) *telemetry = runner.telemetry();
  return out;
}

}  // namespace mps
