// Parallel sweep engine: runs the independent cells of a parameter sweep
// (bandwidth grids, scheduler cross-products, seeded scenario repeats) on a
// thread pool.
//
// Determinism contract: each cell owns its whole world — Simulator,
// FlightRecorder, seeded RNGs — so a cell computes bit-identical results no
// matter which worker runs it or in what order. Callers collect results *by
// cell index* and render only after run() returns; output is then
// byte-identical to a serial sweep. MPS_BENCH_JOBS=1 restores strictly
// serial in-order execution.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace mps {

// Worker count for sweeps: MPS_BENCH_JOBS when set to a positive integer,
// otherwise std::thread::hardware_concurrency() (at least 1). Read per call,
// so tests may change the environment between sweeps.
int sweep_jobs();

struct SweepOptions {
  int jobs = 0;  // 0 = resolve via sweep_jobs()
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});

  // Executes cell(0..n-1), blocking until all complete. jobs()==1 (or n<=1)
  // runs inline in index order with no threads. Cells must not touch shared
  // mutable state; the first exception thrown by any cell is rethrown here
  // after the pool drains.
  void run(std::size_t n, const std::function<void(std::size_t)>& cell) const;

  int jobs() const { return jobs_; }

 private:
  int jobs_;
};

// Convenience: maps cell(i) -> R over [0, n), collecting results by index.
// R must be default-constructible.
template <typename R, typename F>
std::vector<R> sweep_map(std::size_t n, F&& cell, SweepOptions opts = {}) {
  std::vector<R> out(n);
  SweepRunner runner(opts);
  runner.run(n, [&out, &cell](std::size_t i) { out[i] = cell(i); });
  return out;
}

}  // namespace mps
