// Streaming experiment runner: one DASH session over the testbed, with all
// the observables the paper's streaming figures need.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "app/dash.h"
#include "mptcp/path_manager.h"
#include "net/varbw.h"
#include "sim/simulator.h"
#include "tcp/cc.h"
#include "trace/series.h"
#include "util/stats.h"
#include "util/time.h"

namespace mps {

class FlightRecorder;
class PeriodicSampler;
class Testbed;

struct StreamingParams {
  double wifi_mbps = 8.6;
  double lte_mbps = 8.6;
  std::string scheduler = "default";
  // When set, used instead of `scheduler` (ablations with custom scheduler
  // parameters, e.g. ECF's beta).
  SchedulerFactory scheduler_override;
  CcKind cc = CcKind::kLia;
  // 0 = library default; otherwise overrides the per-subflow send-queue
  // limit (staging ablation).
  std::uint64_t staging_bytes = 0;
  bool idle_cwnd_reset = true;   // Fig. 6 ablation switch
  bool opportunistic_rtx = true;
  bool penalization = true;
  Duration video = Duration::seconds(180);
  AbrKind abr = AbrKind::kBufferBased;
  int subflows_per_path = 1;     // Fig. 15 uses 2
  std::uint64_t seed = 1;
  bool collect_traces = false;   // CWND + send-buffer time series
  // Optional flight recorder (borrowed; must outlive the run). When set, all
  // instruments/events of the run land there; when unset and collect_traces
  // is on, the runner owns a private recorder for the CWND series.
  FlightRecorder* recorder = nullptr;
  // Kernel accounting out-param (events/sim-seconds accumulate across runs)
  // and progress heartbeat; both optional, see sim/simulator.h.
  RunTelemetry* telemetry = nullptr;
  HeartbeatConfig heartbeat;
  // Optional time-varying bandwidth (Section 5.3); offsets from t = 0.
  std::vector<RateChange> wifi_trace;
  std::vector<RateChange> lte_trace;
  // Optional full path overrides (Section 6 wild profiles). When set, the
  // *_mbps fields above are ignored for path construction but still label
  // which path is "fast".
  bool use_path_overrides = false;
  PathConfig wifi_override;
  PathConfig lte_override;
  // When non-empty, the connection starts with one subflow per listed path
  // index (0 = wifi, 1 = lte); backup paths join only on promotion.
  std::vector<std::size_t> initial_paths;
  // Dynamic path management (mptcp/path_manager.h); off by default.
  bool use_path_manager = false;
  PathManagerConfig path_manager;
};

struct StreamingResult {
  double mean_bitrate_mbps = 0.0;
  double mean_throughput_mbps = 0.0;
  // Fraction of original payload bytes sent on the faster path.
  double fraction_fast = 0.0;
  std::uint64_t iw_resets_wifi = 0;
  std::uint64_t iw_resets_lte = 0;
  std::uint64_t reinjections = 0;
  // Segments re-scheduled after an abandon teardown (path-manager churn).
  std::uint64_t remapped_segments = 0;
  Duration rebuffer_time = Duration::zero();
  int chunks_fetched = 0;
  Samples ooo_delay;        // seconds, per delivered packet
  Samples last_packet_gap;  // seconds, per chunk using both paths
  std::vector<ChunkRecord> chunks;
  // Collected when collect_traces is set.
  TimeSeries cwnd_wifi, cwnd_lte;
  TimeSeries sndbuf_wifi, sndbuf_lte;
  // Average measured RTT per path (paper Table 2).
  double mean_rtt_wifi_ms = 0.0;
  double mean_rtt_lte_ms = 0.0;
};

// One streaming run held as an object so it can be paused mid-simulation and
// forked (exp/snapshot.h). run_streaming() is construct + start + finish;
// the snapshot paths insert run_to()/fork() between start and finish.
class StreamingRun {
 public:
  explicit StreamingRun(const StreamingParams& params);
  ~StreamingRun();
  StreamingRun(const StreamingRun&) = delete;
  StreamingRun& operator=(const StreamingRun&) = delete;

  // Schedules the session's first fetch and attaches the heartbeat. Call
  // once, before run_to()/finish().
  void start();
  // Advances the simulation to absolute time `t` (clamped to the safety
  // cap); no-op once the session has finished.
  void run_to(TimePoint t);
  bool done() const { return done_; }
  Simulator& sim();
  FlightRecorder* recorder() const { return rec_; }
  Connection& connection() { return *conn_; }
  // Null unless params.use_path_manager.
  PathManager* path_manager() { return pm_.get(); }

  // Forks this run at the current simulation time: an independent copy with
  // its own world, event queue, and recorder clone, bit-identical from here
  // on. Source and fork may both continue; either may be discarded.
  std::unique_ptr<StreamingRun> fork() const;

  // What-if divergence: replaces the connection's scheduler (takes effect at
  // the next pick).
  void set_scheduler(const SchedulerFactory& factory);

  // Runs to completion (or the safety cap) and gathers the result.
  StreamingResult finish();

 private:
  struct ForkTag {};
  StreamingRun(const StreamingRun& src, ForkTag);
  void construct(bool fork_shell);

  StreamingParams params_;
  TimePoint cap_;
  std::unique_ptr<FlightRecorder> owned_rec_;
  FlightRecorder* rec_ = nullptr;
  std::unique_ptr<Testbed> bed_;
  std::unique_ptr<Connection> conn_;
  std::unique_ptr<PathManager> pm_;
  std::unique_ptr<HttpExchange> http_;
  std::unique_ptr<DashSession> session_;
  std::unique_ptr<BandwidthSchedule> wifi_sched_, lte_sched_;
  std::unique_ptr<PeriodicSampler> buf_wifi_, buf_lte_;
  bool started_ = false;
  bool done_ = false;
};

StreamingResult run_streaming(const StreamingParams& params);

// Averages `runs` seeded repetitions of the scalar metrics (sample sets are
// merged). Seeds are base_seed, base_seed+1, ...
StreamingResult run_streaming_avg(StreamingParams params, int runs);

}  // namespace mps
