// Streaming experiment runner: one DASH session over the testbed, with all
// the observables the paper's streaming figures need.
#pragma once

#include <string>
#include <vector>

#include "app/dash.h"
#include "net/varbw.h"
#include "sim/simulator.h"
#include "tcp/cc.h"
#include "trace/series.h"
#include "util/stats.h"
#include "util/time.h"

namespace mps {

class FlightRecorder;

struct StreamingParams {
  double wifi_mbps = 8.6;
  double lte_mbps = 8.6;
  std::string scheduler = "default";
  // When set, used instead of `scheduler` (ablations with custom scheduler
  // parameters, e.g. ECF's beta).
  SchedulerFactory scheduler_override;
  CcKind cc = CcKind::kLia;
  // 0 = library default; otherwise overrides the per-subflow send-queue
  // limit (staging ablation).
  std::uint64_t staging_bytes = 0;
  bool idle_cwnd_reset = true;   // Fig. 6 ablation switch
  bool opportunistic_rtx = true;
  bool penalization = true;
  Duration video = Duration::seconds(180);
  AbrKind abr = AbrKind::kBufferBased;
  int subflows_per_path = 1;     // Fig. 15 uses 2
  std::uint64_t seed = 1;
  bool collect_traces = false;   // CWND + send-buffer time series
  // Optional flight recorder (borrowed; must outlive the run). When set, all
  // instruments/events of the run land there; when unset and collect_traces
  // is on, the runner owns a private recorder for the CWND series.
  FlightRecorder* recorder = nullptr;
  // Kernel accounting out-param (events/sim-seconds accumulate across runs)
  // and progress heartbeat; both optional, see sim/simulator.h.
  RunTelemetry* telemetry = nullptr;
  HeartbeatConfig heartbeat;
  // Optional time-varying bandwidth (Section 5.3); offsets from t = 0.
  std::vector<RateChange> wifi_trace;
  std::vector<RateChange> lte_trace;
  // Optional full path overrides (Section 6 wild profiles). When set, the
  // *_mbps fields above are ignored for path construction but still label
  // which path is "fast".
  bool use_path_overrides = false;
  PathConfig wifi_override;
  PathConfig lte_override;
};

struct StreamingResult {
  double mean_bitrate_mbps = 0.0;
  double mean_throughput_mbps = 0.0;
  // Fraction of original payload bytes sent on the faster path.
  double fraction_fast = 0.0;
  std::uint64_t iw_resets_wifi = 0;
  std::uint64_t iw_resets_lte = 0;
  std::uint64_t reinjections = 0;
  Duration rebuffer_time = Duration::zero();
  int chunks_fetched = 0;
  Samples ooo_delay;        // seconds, per delivered packet
  Samples last_packet_gap;  // seconds, per chunk using both paths
  std::vector<ChunkRecord> chunks;
  // Collected when collect_traces is set.
  TimeSeries cwnd_wifi, cwnd_lte;
  TimeSeries sndbuf_wifi, sndbuf_lte;
  // Average measured RTT per path (paper Table 2).
  double mean_rtt_wifi_ms = 0.0;
  double mean_rtt_lte_ms = 0.0;
};

StreamingResult run_streaming(const StreamingParams& params);

// Averages `runs` seeded repetitions of the scalar metrics (sample sets are
// merged). Seeds are base_seed, base_seed+1, ...
StreamingResult run_streaming_avg(StreamingParams params, int runs);

}  // namespace mps
