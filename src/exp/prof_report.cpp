#include "exp/prof_report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <istream>
#include <map>
#include <stdexcept>

namespace mps {

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

double ns_to_s(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

Json mem_to_json(const ProfileReport::MemEntry& m) {
  Json j = Json::object();
  j.set("name", Json::string(m.name));
  j.set("allocs", Json::number(static_cast<std::int64_t>(m.allocs)));
  j.set("frees", Json::number(static_cast<std::int64_t>(m.frees)));
  j.set("bytes_allocated", Json::number(static_cast<std::int64_t>(m.bytes_allocated)));
  j.set("bytes_freed", Json::number(static_cast<std::int64_t>(m.bytes_freed)));
  j.set("live_bytes", Json::number(static_cast<std::int64_t>(m.live_bytes)));
  j.set("high_water_bytes", Json::number(static_cast<std::int64_t>(m.high_water_bytes)));
  return j;
}

// --- validating readers -----------------------------------------------------

[[noreturn]] void schema_error(const std::string& where, const std::string& what) {
  throw std::runtime_error("profile report: " + where + ": " + what);
}

const Json& need(const Json& j, const std::string& key, const std::string& where) {
  if (!j.is_object()) schema_error(where, "expected an object");
  const Json* v = j.find(key);
  if (v == nullptr) schema_error(where, "missing key \"" + key + "\"");
  return *v;
}

double need_num(const Json& j, const std::string& key, const std::string& where) {
  const Json& v = need(j, key, where);
  if (!v.is_number()) schema_error(where + "." + key, "expected a number");
  return v.as_double();
}

std::uint64_t need_u64(const Json& j, const std::string& key, const std::string& where) {
  const Json& v = need(j, key, where);
  if (!v.is_int() || v.as_int() < 0) {
    schema_error(where + "." + key, "expected a non-negative integer");
  }
  return static_cast<std::uint64_t>(v.as_int());
}

std::string need_str(const Json& j, const std::string& key, const std::string& where) {
  const Json& v = need(j, key, where);
  if (!v.is_string()) schema_error(where + "." + key, "expected a string");
  return v.as_string();
}

ProfileReport::MemEntry mem_from_json(const Json& j, const std::string& where) {
  ProfileReport::MemEntry m;
  m.name = need_str(j, "name", where);
  m.allocs = need_u64(j, "allocs", where);
  m.frees = need_u64(j, "frees", where);
  m.bytes_allocated = need_u64(j, "bytes_allocated", where);
  m.bytes_freed = need_u64(j, "bytes_freed", where);
  m.live_bytes = need_u64(j, "live_bytes", where);
  m.high_water_bytes = need_u64(j, "high_water_bytes", where);
  return m;
}

std::string human_bytes(std::uint64_t b) {
  char buf[64];
  const double d = static_cast<double>(b);
  if (b >= 1024ull * 1024 * 1024) std::snprintf(buf, sizeof buf, "%.2f GiB", d / (1024.0 * 1024.0 * 1024.0));
  else if (b >= 1024ull * 1024) std::snprintf(buf, sizeof buf, "%.2f MiB", d / (1024.0 * 1024.0));
  else if (b >= 1024ull) std::snprintf(buf, sizeof buf, "%.2f KiB", d / 1024.0);
  else std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(b));
  return buf;
}

}  // namespace

ProfileReport build_profile_report(const prof::Snapshot& snap, double wall_s,
                                   const RunTelemetry* telemetry, std::uint64_t flows) {
  ProfileReport r;
  r.profiling_compiled = prof::compiled();
  r.wall_s = wall_s;
  if (telemetry != nullptr) {
    r.events = telemetry->events;
    r.sim_s = telemetry->sim_s;
  }

  // Scopes in taxonomy order; accumulate disjoint self time per subsystem.
  std::vector<std::pair<std::string, double>> subsys;  // insertion-ordered
  double accounted_s = 0.0;
  for (std::size_t i = 0; i < prof::kScopeCount; ++i) {
    const auto scope = static_cast<prof::Scope>(i);
    const prof::ScopeStats& s = snap.scopes[i];
    ProfileReport::ScopeEntry e;
    e.name = prof::scope_name(scope);
    e.subsystem = prof::scope_subsystem(scope);
    e.count = s.count;
    e.total_s = ns_to_s(s.total_ns);
    e.self_s = ns_to_s(s.self_ns);
    r.scopes.push_back(e);

    auto it = std::find_if(subsys.begin(), subsys.end(),
                           [&](const auto& p) { return p.first == e.subsystem; });
    if (it == subsys.end()) subsys.emplace_back(e.subsystem, e.self_s);
    else it->second += e.self_s;
    accounted_s += e.self_s;
  }
  for (const auto& [name, self_s] : subsys) {
    r.subsystems.push_back({name, self_s, wall_s > 0.0 ? self_s / wall_s : 0.0});
  }
  const double other_s = wall_s > accounted_s ? wall_s - accounted_s : 0.0;
  r.subsystems.push_back({"other", other_s, wall_s > 0.0 ? other_s / wall_s : 0.0});

  for (std::size_t i = 0; i < prof::kMemSubsysCount; ++i) {
    const prof::MemStats& m = snap.memory[i];
    r.memory.push_back({prof::mem_subsys_name(static_cast<prof::MemSubsys>(i)), m.allocs,
                        m.frees, m.bytes_allocated, m.bytes_freed, m.live_bytes,
                        m.high_water_bytes});
  }
  const prof::MemStats& t = snap.memory_total;
  r.memory_total = {"total",       t.allocs,      t.frees, t.bytes_allocated,
                    t.bytes_freed, t.live_bytes,  t.high_water_bytes};

  r.flows = flows;
  r.bytes_per_flow =
      flows > 0 ? static_cast<double>(t.high_water_bytes) / static_cast<double>(flows) : 0.0;
  return r;
}

void add_sweep_telemetry(ProfileReport& report, const SweepTelemetry& t) {
  report.workers = t.workers;
  report.workers_wall_ns = t.wall_ns;
  report.jobs = t.jobs;
}

Json profile_report_to_json(const ProfileReport& report) {
  Json j = Json::object();
  j.set("schema", Json::string(ProfileReport::kSchema));
  j.set("profiling_compiled", Json::boolean(report.profiling_compiled));

  Json run = Json::object();
  run.set("wall_s", Json::number(report.wall_s));
  run.set("events", Json::number(static_cast<std::int64_t>(report.events)));
  run.set("sim_s", Json::number(report.sim_s));
  j.set("run", run);

  Json scopes = Json::array();
  for (const auto& s : report.scopes) {
    Json e = Json::object();
    e.set("name", Json::string(s.name));
    e.set("subsystem", Json::string(s.subsystem));
    e.set("count", Json::number(static_cast<std::int64_t>(s.count)));
    e.set("total_s", Json::number(s.total_s));
    e.set("self_s", Json::number(s.self_s));
    scopes.push_back(std::move(e));
  }
  j.set("scopes", scopes);

  Json subsystems = Json::array();
  for (const auto& s : report.subsystems) {
    Json e = Json::object();
    e.set("name", Json::string(s.name));
    e.set("self_s", Json::number(s.self_s));
    e.set("share", Json::number(s.share));
    subsystems.push_back(std::move(e));
  }
  j.set("subsystems", subsystems);

  Json memory = Json::object();
  Json mem_subsys = Json::array();
  for (const auto& m : report.memory) mem_subsys.push_back(mem_to_json(m));
  memory.set("subsystems", mem_subsys);
  memory.set("total", mem_to_json(report.memory_total));
  memory.set("flows", Json::number(static_cast<std::int64_t>(report.flows)));
  memory.set("bytes_per_flow", Json::number(report.bytes_per_flow));
  j.set("memory", memory);

  if (!report.workers.empty()) {
    Json workers = Json::object();
    workers.set("jobs", Json::number(static_cast<std::int64_t>(report.jobs)));
    workers.set("wall_ns", Json::number(static_cast<std::int64_t>(report.workers_wall_ns)));
    Json per = Json::array();
    for (const auto& w : report.workers) {
      Json e = Json::object();
      e.set("busy_ns", Json::number(static_cast<std::int64_t>(w.busy_ns)));
      e.set("wait_ns", Json::number(static_cast<std::int64_t>(w.wait_ns)));
      e.set("idle_ns", Json::number(static_cast<std::int64_t>(w.idle_ns)));
      e.set("cells", Json::number(static_cast<std::int64_t>(w.cells)));
      per.push_back(std::move(e));
    }
    workers.set("per_worker", per);
    j.set("workers", workers);
  }
  return j;
}

ProfileReport profile_report_from_json(const Json& j) {
  const std::string schema = need_str(j, "schema", "root");
  if (schema != ProfileReport::kSchema) {
    schema_error("root.schema", "expected \"" + std::string(ProfileReport::kSchema) +
                                    "\", got \"" + schema + "\"");
  }
  ProfileReport r;
  const Json& compiled = need(j, "profiling_compiled", "root");
  if (!compiled.is_bool()) schema_error("root.profiling_compiled", "expected a bool");
  r.profiling_compiled = compiled.as_bool();

  const Json& run = need(j, "run", "root");
  r.wall_s = need_num(run, "wall_s", "run");
  r.events = need_u64(run, "events", "run");
  r.sim_s = need_num(run, "sim_s", "run");

  const Json& scopes = need(j, "scopes", "root");
  if (!scopes.is_array()) schema_error("root.scopes", "expected an array");
  for (const Json& e : scopes.items()) {
    ProfileReport::ScopeEntry s;
    s.name = need_str(e, "name", "scopes[]");
    s.subsystem = need_str(e, "subsystem", "scopes[]");
    s.count = need_u64(e, "count", "scopes[]");
    s.total_s = need_num(e, "total_s", "scopes[]");
    s.self_s = need_num(e, "self_s", "scopes[]");
    r.scopes.push_back(std::move(s));
  }

  const Json& subsystems = need(j, "subsystems", "root");
  if (!subsystems.is_array()) schema_error("root.subsystems", "expected an array");
  for (const Json& e : subsystems.items()) {
    ProfileReport::SubsystemEntry s;
    s.name = need_str(e, "name", "subsystems[]");
    s.self_s = need_num(e, "self_s", "subsystems[]");
    s.share = need_num(e, "share", "subsystems[]");
    r.subsystems.push_back(std::move(s));
  }

  const Json& memory = need(j, "memory", "root");
  const Json& mem_subsys = need(memory, "subsystems", "memory");
  if (!mem_subsys.is_array()) schema_error("memory.subsystems", "expected an array");
  for (const Json& e : mem_subsys.items()) {
    r.memory.push_back(mem_from_json(e, "memory.subsystems[]"));
  }
  r.memory_total = mem_from_json(need(memory, "total", "memory"), "memory.total");
  r.flows = need_u64(memory, "flows", "memory");
  r.bytes_per_flow = need_num(memory, "bytes_per_flow", "memory");

  if (const Json* workers = j.find("workers"); workers != nullptr) {
    const long long jobs = static_cast<long long>(need_u64(*workers, "jobs", "workers"));
    r.jobs = static_cast<int>(jobs);
    r.workers_wall_ns = need_u64(*workers, "wall_ns", "workers");
    const Json& per = need(*workers, "per_worker", "workers");
    if (!per.is_array()) schema_error("workers.per_worker", "expected an array");
    for (const Json& e : per.items()) {
      WorkerStats w;
      w.busy_ns = need_u64(e, "busy_ns", "workers.per_worker[]");
      w.wait_ns = need_u64(e, "wait_ns", "workers.per_worker[]");
      w.idle_ns = need_u64(e, "idle_ns", "workers.per_worker[]");
      w.cells = need_u64(e, "cells", "workers.per_worker[]");
      r.workers.push_back(w);
    }
  }
  return r;
}

std::string render_profile_report(const ProfileReport& report, int top_n) {
  std::string out;
  appendf(out, "profile (%s): wall %.3f s", report.profiling_compiled ? "compiled" : "stub",
          report.wall_s);
  if (report.events > 0) {
    appendf(out, ", %llu events", static_cast<unsigned long long>(report.events));
    if (report.wall_s > 0.0) {
      appendf(out, " (%.0f events/s)", static_cast<double>(report.events) / report.wall_s);
    }
  }
  if (report.sim_s > 0.0) {
    appendf(out, ", sim %.1f s", report.sim_s);
    if (report.wall_s > 0.0) appendf(out, " (sim/wall %.1f)", report.sim_s / report.wall_s);
  }
  out += "\n";

  if (!report.subsystems.empty()) {
    out += "\nsubsystem breakdown (self time):\n";
    for (const auto& s : report.subsystems) {
      appendf(out, "  %-10s %9.4f s  %5.1f%%\n", s.name.c_str(), s.self_s, s.share * 100.0);
    }
  }

  // Hottest scopes by self time; zero-count scopes never make the list.
  std::vector<const ProfileReport::ScopeEntry*> hot;
  for (const auto& s : report.scopes) {
    if (s.count > 0) hot.push_back(&s);
  }
  std::stable_sort(hot.begin(), hot.end(),
                   [](const auto* a, const auto* b) { return a->self_s > b->self_s; });
  if (top_n >= 0 && hot.size() > static_cast<std::size_t>(top_n)) hot.resize(top_n);
  if (!hot.empty()) {
    appendf(out, "\ntop %zu scopes by self time:\n", hot.size());
    for (const auto* s : hot) {
      const double per_call_ns =
          s->count > 0 ? s->self_s * 1e9 / static_cast<double>(s->count) : 0.0;
      appendf(out, "  %-18s %-9s count %-10llu total %9.4f s  self %9.4f s  (%.0f ns/call)\n",
              s->name.c_str(), s->subsystem.c_str(),
              static_cast<unsigned long long>(s->count), s->total_s, s->self_s, per_call_ns);
    }
  }

  if (report.memory_total.allocs > 0) {
    out += "\nmemory (bytes charged to the allocating subsystem):\n";
    for (const auto& m : report.memory) {
      if (m.allocs == 0 && m.high_water_bytes == 0) continue;
      appendf(out, "  %-10s allocs %-10llu live %-12s high-water %s\n", m.name.c_str(),
              static_cast<unsigned long long>(m.allocs), human_bytes(m.live_bytes).c_str(),
              human_bytes(m.high_water_bytes).c_str());
    }
    appendf(out, "  %-10s allocs %-10llu live %-12s high-water %s\n", "total",
            static_cast<unsigned long long>(report.memory_total.allocs),
            human_bytes(report.memory_total.live_bytes).c_str(),
            human_bytes(report.memory_total.high_water_bytes).c_str());
    if (report.flows > 0) {
      appendf(out, "  %llu flows -> %s high-water per flow\n",
              static_cast<unsigned long long>(report.flows),
              human_bytes(static_cast<std::uint64_t>(report.bytes_per_flow)).c_str());
    }
  }

  if (!report.workers.empty()) {
    appendf(out, "\nworkers (%d job%s, wall %.3f s):\n", report.jobs,
            report.jobs == 1 ? "" : "s", ns_to_s(report.workers_wall_ns));
    const double wall = static_cast<double>(report.workers_wall_ns);
    for (std::size_t i = 0; i < report.workers.size(); ++i) {
      const WorkerStats& w = report.workers[i];
      const double busy = wall > 0.0 ? static_cast<double>(w.busy_ns) / wall * 100.0 : 0.0;
      const double wait = wall > 0.0 ? static_cast<double>(w.wait_ns) / wall * 100.0 : 0.0;
      const double idle = wall > 0.0 ? static_cast<double>(w.idle_ns) / wall * 100.0 : 0.0;
      appendf(out, "  w%-2zu busy %5.1f%%  wait %5.1f%%  idle %5.1f%%  cells %llu\n", i, busy,
              wait, idle, static_cast<unsigned long long>(w.cells));
    }
  }
  return out;
}

std::string render_flow_timelines(std::istream& jsonl) {
  struct FlowLine {
    double first_t = 0.0;
    double last_t = 0.0;
    std::uint64_t events = 0;
    std::map<std::string, std::uint64_t> types;
  };
  std::map<std::int64_t, FlowLine> flows;  // ordered by conn id
  std::uint64_t bad_lines = 0;
  std::uint64_t no_conn = 0;

  std::string line;
  while (std::getline(jsonl, line)) {
    if (line.empty()) continue;
    Json j;
    try {
      j = Json::parse(line);
    } catch (const JsonError&) {
      ++bad_lines;
      continue;
    }
    if (!j.is_object()) {
      ++bad_lines;
      continue;
    }
    const Json* t = j.find("t");
    const Json* conn = j.find("conn");
    if (t == nullptr || !t->is_number() || conn == nullptr || !conn->is_int()) {
      ++no_conn;
      continue;
    }
    FlowLine& f = flows[conn->as_int()];
    const double ts = t->as_double();
    if (f.events == 0) f.first_t = ts;
    f.last_t = ts;
    ++f.events;
    if (const Json* ev = j.find("ev"); ev != nullptr && ev->is_string()) {
      ++f.types[ev->as_string()];
    }
  }

  std::string out;
  appendf(out, "flow timelines (%zu conns):\n", flows.size());
  for (const auto& [conn, f] : flows) {
    appendf(out, "  conn %-4lld %9.3f .. %9.3f s  %-8llu events  ",
            static_cast<long long>(conn), f.first_t, f.last_t,
            static_cast<unsigned long long>(f.events));
    // Top three event types, ties broken by name for determinism.
    std::vector<std::pair<std::string, std::uint64_t>> top(f.types.begin(), f.types.end());
    std::stable_sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (top.size() > 3) top.resize(3);
    for (std::size_t i = 0; i < top.size(); ++i) {
      appendf(out, "%s%s:%llu", i == 0 ? "" : " ", top[i].first.c_str(),
              static_cast<unsigned long long>(top[i].second));
    }
    out += "\n";
  }
  if (bad_lines > 0) appendf(out, "  (%llu unparseable lines skipped)\n",
                             static_cast<unsigned long long>(bad_lines));
  if (no_conn > 0) appendf(out, "  (%llu lines without t/conn skipped)\n",
                           static_cast<unsigned long long>(no_conn));
  return out;
}

}  // namespace mps
