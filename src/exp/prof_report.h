// ProfileReport: the machine-readable output of a profiled run.
//
// obs/prof.h collects raw per-thread counters; this layer (exp/, because it
// needs the scenario Json type and the sweep telemetry) folds a
// prof::Snapshot plus run context into a schema-stable JSON document:
//
//   { "schema": "mps.profile.v1",
//     "profiling_compiled": true,
//     "run":        { wall_s, events, sim_s },
//     "scopes":     [ {name, subsystem, count, total_s, self_s}, ... ],
//     "subsystems": [ {name, self_s, share}, ... ],   // + "other"; shares sum ~1
//     "memory":     { "subsystems": [...], "total": {...},
//                     "flows": N, "bytes_per_flow": B },
//     "workers":    { jobs, wall_ns, per_worker: [{busy_ns, wait_ns,
//                     idle_ns, cells}, ...] } }        // sweeps only
//
// Emitted by mps_run --prof-out and the bench drivers; consumed by
// tools/mps_report. The schema string gates from_json, so downstream
// tooling fails loudly on a version break instead of misreading fields.
//
// Scope "self" seconds are disjoint by construction (a nested instrumented
// scope's time is subtracted from its parent), so grouping self time by
// subsystem and adding an "other" bucket (wall minus every scope's self)
// yields shares that sum to ~1.0 — the per-subsystem breakdown the scaling
// work steers by.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "obs/prof.h"
#include "scenario/json.h"
#include "sim/simulator.h"

namespace mps {

struct ProfileReport {
  static constexpr const char* kSchema = "mps.profile.v1";

  bool profiling_compiled = false;
  double wall_s = 0.0;         // caller-measured wall time of the run
  std::uint64_t events = 0;    // kernel events executed (RunTelemetry)
  double sim_s = 0.0;          // sim seconds covered (RunTelemetry)

  struct ScopeEntry {
    std::string name;        // wire name, e.g. "event.dispatch"
    std::string subsystem;   // grouping, e.g. "sim"
    std::uint64_t count = 0;
    double total_s = 0.0;    // inclusive
    double self_s = 0.0;     // exclusive of nested instrumented scopes
  };
  std::vector<ScopeEntry> scopes;  // fixed taxonomy order, zero entries kept

  struct SubsystemEntry {
    std::string name;
    double self_s = 0.0;
    double share = 0.0;  // self_s / wall_s; entries (incl. "other") sum ~1
  };
  std::vector<SubsystemEntry> subsystems;

  struct MemEntry {
    std::string name;
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t bytes_allocated = 0;
    std::uint64_t bytes_freed = 0;
    std::uint64_t live_bytes = 0;
    std::uint64_t high_water_bytes = 0;
  };
  std::vector<MemEntry> memory;  // per MemSubsys, taxonomy order
  MemEntry memory_total;         // process-wide counters ("total")

  std::uint64_t flows = 0;        // flows the run started (0 = not a traffic run)
  double bytes_per_flow = 0.0;    // total high-water / flows, 0 when flows == 0

  // Sweep-worker telemetry (absent unless add_sweep_telemetry was called).
  std::vector<WorkerStats> workers;
  std::uint64_t workers_wall_ns = 0;
  int jobs = 0;
};

// Folds a snapshot plus run context into a report. `telemetry` and `flows`
// are optional context; wall_s is measured by the caller around the run.
ProfileReport build_profile_report(const prof::Snapshot& snap, double wall_s,
                                   const RunTelemetry* telemetry = nullptr,
                                   std::uint64_t flows = 0);

// Attaches a sweep's worker accounting to the report.
void add_sweep_telemetry(ProfileReport& report, const SweepTelemetry& t);

Json profile_report_to_json(const ProfileReport& report);

// Parses and validates; throws std::runtime_error naming the missing or
// mistyped key (including on a schema-version mismatch).
ProfileReport profile_report_from_json(const Json& j);

// Human-readable rendering (tools/mps_report): run header, per-subsystem
// breakdown, the top_n hottest scopes by self time, memory table, worker
// utilization. Deterministic for a fixed report (no clocks, no locale).
std::string render_profile_report(const ProfileReport& report, int top_n = 10);

// Per-flow timeline summaries from a JSONL trace stream (obs/events.h
// format): first/last event time, event count and a type tally per conn id.
// Lines that fail to parse are counted and reported, not fatal.
std::string render_flow_timelines(std::istream& jsonl);

}  // namespace mps
