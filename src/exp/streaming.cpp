#include "exp/streaming.h"

#include <memory>

#include "app/http.h"
#include "exp/testbed.h"
#include "obs/recorder.h"
#include "sched/registry.h"
#include "trace/collect.h"

namespace mps {

namespace {

// Safety cap: streaming can stall indefinitely only through a modelling bug;
// a generous multiple of the nominal video length bounds every run.
Duration run_cap(Duration video) { return video * std::int64_t{30} + Duration::seconds(600); }

}  // namespace

StreamingResult run_streaming(const StreamingParams& params) {
  TestbedConfig tb;
  if (params.use_path_overrides) {
    tb.wifi = params.wifi_override;
    tb.lte = params.lte_override;
  } else {
    tb.wifi = wifi_profile(Rate::mbps(params.wifi_mbps));
    tb.lte = lte_profile(Rate::mbps(params.lte_mbps));
  }
  tb.subflows_per_path = params.subflows_per_path;
  tb.seed = params.seed;

  // Flight recorder: use the caller's if given, otherwise own one when the
  // CWND/send-buffer series are requested (they are read back from the
  // metrics registry).
  std::unique_ptr<FlightRecorder> owned_rec;
  FlightRecorder* rec = params.recorder;
  if (rec == nullptr && params.collect_traces) {
    owned_rec = std::make_unique<FlightRecorder>();
    rec = owned_rec.get();
  }
  if (rec != nullptr && params.collect_traces) rec->metrics().set_keep_series(true);
  tb.recorder = rec;
  tb.conn.cc = params.cc;
  tb.conn.idle_cwnd_reset = params.idle_cwnd_reset;
  tb.conn.opportunistic_retransmission = params.opportunistic_rtx;
  tb.conn.penalization = params.penalization;
  if (params.staging_bytes > 0) tb.conn.subflow_staging_bytes = params.staging_bytes;

  Testbed bed(tb);
  auto conn = bed.make_connection(params.scheduler_override
                                      ? params.scheduler_override
                                      : scheduler_factory(params.scheduler));
  HttpExchange http(bed.sim(), *conn, bed.request_delay());

  DashConfig dc;
  dc.video_duration = params.video;
  dc.abr = params.abr;
  DashSession session(bed.sim(), http, dc);

  // Optional time-varying bandwidth.
  std::unique_ptr<BandwidthSchedule> wifi_sched, lte_sched;
  if (!params.wifi_trace.empty()) {
    wifi_sched = std::make_unique<BandwidthSchedule>(bed.sim(), bed.wifi(), params.wifi_trace);
    wifi_sched->start();
  }
  if (!params.lte_trace.empty()) {
    lte_sched = std::make_unique<BandwidthSchedule>(bed.sim(), bed.lte(), params.lte_trace);
    lte_sched->start();
  }

  // Trace collectors (paper Figs. 3, 11, 12). The CWND series come straight
  // from the flight recorder's "subflow.cwnd" gauge history; the send-buffer
  // occupancy still uses a periodic sampler, bounded by the run cap so the
  // drain-style Simulator::run() terminates.
  const std::size_t wifi_idx = 0;
  const std::size_t lte_idx = static_cast<std::size_t>(params.subflows_per_path);
  auto& subflows = conn->subflows();
  std::unique_ptr<PeriodicSampler> buf_wifi, buf_lte;
  if (params.collect_traces) {
    const TimePoint sample_until = TimePoint::origin() + run_cap(params.video);
    buf_wifi = std::make_unique<PeriodicSampler>(
        bed.sim(), Duration::millis(100),
        [&subflows, wifi_idx] { return subflow_sndbuf_bytes(*subflows[wifi_idx]); },
        sample_until);
    buf_lte = std::make_unique<PeriodicSampler>(
        bed.sim(), Duration::millis(100),
        [&subflows, lte_idx] { return subflow_sndbuf_bytes(*subflows[lte_idx]); },
        sample_until);
  }

  session.on_finished = [&bed] { bed.sim().request_stop(); };
  session.start();
  if (params.heartbeat.enabled()) {
    bed.sim().set_heartbeat(params.heartbeat.interval_s, params.heartbeat.fn);
  }
  bed.sim().run_until(TimePoint::origin() + run_cap(params.video));
  if (params.telemetry != nullptr) {
    params.telemetry->events += bed.sim().events_processed();
    params.telemetry->sim_s += (bed.sim().now() - TimePoint::origin()).to_seconds();
  }

  // --- collect --------------------------------------------------------------
  StreamingResult res;
  res.mean_bitrate_mbps = session.mean_bitrate_mbps();
  res.mean_throughput_mbps = session.mean_throughput_mbps();
  res.rebuffer_time = session.rebuffer_time();
  res.chunks_fetched = static_cast<int>(session.chunks().size());
  res.chunks = session.chunks();
  res.ooo_delay = conn->ooo_delay();
  for (const auto& c : session.chunks()) {
    if (c.last_packet_gap_s >= 0.0) res.last_packet_gap.add(c.last_packet_gap_s);
  }

  const double wifi_mbps =
      params.use_path_overrides ? params.wifi_override.down_rate.to_mbps() : params.wifi_mbps;
  const double lte_mbps =
      params.use_path_overrides ? params.lte_override.down_rate.to_mbps() : params.lte_mbps;
  const bool lte_fast = lte_mbps > wifi_mbps;  // tie -> WiFi (smaller base RTT)

  std::uint64_t bytes_wifi = 0, bytes_lte = 0;
  RunningStats rtt_wifi, rtt_lte;
  for (std::size_t i = 0; i < subflows.size(); ++i) {
    const Subflow& sf = *subflows[i];
    const bool is_wifi = i < lte_idx;
    if (is_wifi) {
      bytes_wifi += sf.stats().bytes_sent;
      res.iw_resets_wifi += sf.stats().iw_resets;
      if (sf.rtt().lifetime().count() > 0) rtt_wifi.add(sf.rtt().lifetime().mean());
    } else {
      bytes_lte += sf.stats().bytes_sent;
      res.iw_resets_lte += sf.stats().iw_resets;
      if (sf.rtt().lifetime().count() > 0) rtt_lte.add(sf.rtt().lifetime().mean());
    }
  }
  const std::uint64_t total = bytes_wifi + bytes_lte;
  const std::uint64_t fast_bytes = lte_fast ? bytes_lte : bytes_wifi;
  res.fraction_fast = total > 0 ? static_cast<double>(fast_bytes) / total : 0.0;
  res.reinjections = conn->meta_stats().reinjections;
  res.mean_rtt_wifi_ms = rtt_wifi.mean() * 1e3;
  res.mean_rtt_lte_ms = rtt_lte.mean() * 1e3;

  if (params.collect_traces) {
    MetricLabels labels;
    labels.conn = static_cast<std::int64_t>(conn->config().conn_id);
    labels.subflow = static_cast<std::int64_t>(wifi_idx);
    if (const TimeSeries* s = rec->metrics().series("subflow.cwnd", labels)) {
      res.cwnd_wifi = *s;
    }
    labels.subflow = static_cast<std::int64_t>(lte_idx);
    if (const TimeSeries* s = rec->metrics().series("subflow.cwnd", labels)) {
      res.cwnd_lte = *s;
    }
    res.sndbuf_wifi = buf_wifi->series();
    res.sndbuf_lte = buf_lte->series();
  }
  return res;
}

StreamingResult run_streaming_avg(StreamingParams params, int runs) {
  StreamingResult acc;
  for (int r = 0; r < runs; ++r) {
    params.seed = params.seed + static_cast<std::uint64_t>(r == 0 ? 0 : 1);
    StreamingResult one = run_streaming(params);
    if (r == 0) {
      acc = std::move(one);
      continue;
    }
    acc.mean_bitrate_mbps += one.mean_bitrate_mbps;
    acc.mean_throughput_mbps += one.mean_throughput_mbps;
    acc.fraction_fast += one.fraction_fast;
    acc.iw_resets_wifi += one.iw_resets_wifi;
    acc.iw_resets_lte += one.iw_resets_lte;
    acc.reinjections += one.reinjections;
    acc.mean_rtt_wifi_ms += one.mean_rtt_wifi_ms;
    acc.mean_rtt_lte_ms += one.mean_rtt_lte_ms;
    acc.ooo_delay.merge(one.ooo_delay);
    acc.last_packet_gap.merge(one.last_packet_gap);
  }
  if (runs > 1) {
    const double n = runs;
    acc.mean_bitrate_mbps /= n;
    acc.mean_throughput_mbps /= n;
    acc.fraction_fast /= n;
    acc.iw_resets_wifi = static_cast<std::uint64_t>(acc.iw_resets_wifi / runs);
    acc.iw_resets_lte = static_cast<std::uint64_t>(acc.iw_resets_lte / runs);
    acc.reinjections = static_cast<std::uint64_t>(acc.reinjections / runs);
    acc.mean_rtt_wifi_ms /= n;
    acc.mean_rtt_lte_ms /= n;
  }
  return acc;
}

}  // namespace mps
