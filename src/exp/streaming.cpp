#include "exp/streaming.h"

#include <cassert>
#include <memory>

#include "app/http.h"
#include "exp/snapshot.h"
#include "exp/testbed.h"
#include "obs/recorder.h"
#include "sched/registry.h"
#include "trace/collect.h"

namespace mps {

namespace {

// Safety cap: streaming can stall indefinitely only through a modelling bug;
// a generous multiple of the nominal video length bounds every run.
Duration run_cap(Duration video) { return video * std::int64_t{30} + Duration::seconds(600); }

}  // namespace

StreamingRun::StreamingRun(const StreamingParams& params) : params_(params) {
  // Flight recorder: use the caller's if given, otherwise own one when the
  // CWND/send-buffer series are requested (they are read back from the
  // metrics registry).
  rec_ = params_.recorder;
  if (rec_ == nullptr && params_.collect_traces) {
    owned_rec_ = std::make_unique<FlightRecorder>();
    rec_ = owned_rec_.get();
  }
  construct(/*fork_shell=*/false);
}

StreamingRun::StreamingRun(const StreamingRun& src, ForkTag) : params_(src.params_) {
  // The fork owns a private clone of the source's recorder, seeded before
  // construction so the fork's instrument handles resolve into the copied
  // storage index-for-index.
  if (src.rec_ != nullptr) {
    owned_rec_ = std::make_unique<FlightRecorder>();
    owned_rec_->clone_from(*src.rec_);
    rec_ = owned_rec_.get();
  }
  construct(/*fork_shell=*/true);
  snapshot::require_construction_event_free(sim(), "StreamingRun::fork");
  bed_->world().restore_from(src.bed_->world());
  if (pm_ != nullptr) pm_->restore_topology(*src.pm_);
  conn_->restore_from(*src.conn_);
  if (pm_ != nullptr) pm_->restore_from(*src.pm_);
  http_->restore_from(*src.http_);
  session_->restore_from(*src.session_);
  if (wifi_sched_ != nullptr) wifi_sched_->restore_from(*src.wifi_sched_);
  if (lte_sched_ != nullptr) lte_sched_->restore_from(*src.lte_sched_);
  if (buf_wifi_ != nullptr) buf_wifi_->restore_from(*src.buf_wifi_);
  if (buf_lte_ != nullptr) buf_lte_->restore_from(*src.buf_lte_);
  started_ = src.started_;
  done_ = src.done_;
  if (started_ && params_.heartbeat.enabled()) {
    bed_->sim().set_heartbeat(params_.heartbeat.interval_s, params_.heartbeat.fn);
  }
  if (rec_ != nullptr) rec_->restore_data_from(*src.rec_);
  snapshot::require_fully_rebound(sim(), "StreamingRun::fork");
}

StreamingRun::~StreamingRun() = default;

void StreamingRun::construct(bool fork_shell) {
  cap_ = TimePoint::origin() + run_cap(params_.video);

  TestbedConfig tb;
  if (params_.use_path_overrides) {
    tb.wifi = params_.wifi_override;
    tb.lte = params_.lte_override;
  } else {
    tb.wifi = wifi_profile(Rate::mbps(params_.wifi_mbps));
    tb.lte = lte_profile(Rate::mbps(params_.lte_mbps));
  }
  tb.subflows_per_path = params_.subflows_per_path;
  tb.seed = params_.seed;
  if (rec_ != nullptr && params_.collect_traces) rec_->metrics().set_keep_series(true);
  tb.recorder = rec_;
  tb.conn.cc = params_.cc;
  tb.conn.idle_cwnd_reset = params_.idle_cwnd_reset;
  tb.conn.opportunistic_retransmission = params_.opportunistic_rtx;
  tb.conn.penalization = params_.penalization;
  if (params_.staging_bytes > 0) tb.conn.subflow_staging_bytes = params_.staging_bytes;

  bed_ = std::make_unique<Testbed>(tb);
  const SchedulerFactory& factory = params_.scheduler_override
                                        ? params_.scheduler_override
                                        : scheduler_factory(params_.scheduler);
  conn_ = params_.initial_paths.empty()
              ? bed_->make_connection(factory)
              : bed_->world().make_connection_on(params_.initial_paths, factory);
  if (params_.use_path_manager) {
    std::vector<Path*> pm_paths = {&bed_->wifi(), &bed_->lte()};
    pm_ = std::make_unique<PathManager>(*conn_, std::move(pm_paths), params_.path_manager);
  }
  http_ = std::make_unique<HttpExchange>(bed_->sim(), *conn_, bed_->request_delay());

  DashConfig dc;
  dc.video_duration = params_.video;
  dc.abr = params_.abr;
  session_ = std::make_unique<DashSession>(bed_->sim(), *http_, dc);

  // Optional time-varying bandwidth. A fork shell constructs the schedules
  // but leaves them idle; restore_from adopts the source's pending event.
  if (!params_.wifi_trace.empty()) {
    wifi_sched_ =
        std::make_unique<BandwidthSchedule>(bed_->sim(), bed_->wifi(), params_.wifi_trace);
    if (!fork_shell) wifi_sched_->start();
  }
  if (!params_.lte_trace.empty()) {
    lte_sched_ =
        std::make_unique<BandwidthSchedule>(bed_->sim(), bed_->lte(), params_.lte_trace);
    if (!fork_shell) lte_sched_->start();
  }

  // Trace collectors (paper Figs. 3, 11, 12). The CWND series come straight
  // from the flight recorder's "subflow.cwnd" gauge history; the send-buffer
  // occupancy still uses a periodic sampler, bounded by the run cap so the
  // drain-style Simulator::run() terminates. Fork shells defer the initial
  // tick; the source's samples arrive via restore_from.
  // Samplers address subflows by slot id, not live-list position: the live
  // list compacts under path-manager churn, and a torn-down slot samples 0.
  const std::size_t wifi_idx = 0;
  const std::size_t lte_idx = params_.initial_paths.empty()
                                  ? static_cast<std::size_t>(params_.subflows_per_path)
                                  : 1;
  Connection* conn = conn_.get();
  const auto sample_slot = [conn](std::size_t slot) {
    const Subflow* sf = conn->subflow_at(slot);
    return sf != nullptr ? subflow_sndbuf_bytes(*sf) : 0.0;
  };
  if (params_.collect_traces) {
    const TimePoint sample_until = cap_;
    if (fork_shell) {
      buf_wifi_ = std::make_unique<PeriodicSampler>(
          PeriodicSampler::deferred_t{}, bed_->sim(), Duration::millis(100),
          [sample_slot, wifi_idx] { return sample_slot(wifi_idx); }, sample_until);
      buf_lte_ = std::make_unique<PeriodicSampler>(
          PeriodicSampler::deferred_t{}, bed_->sim(), Duration::millis(100),
          [sample_slot, lte_idx] { return sample_slot(lte_idx); }, sample_until);
    } else {
      buf_wifi_ = std::make_unique<PeriodicSampler>(
          bed_->sim(), Duration::millis(100),
          [sample_slot, wifi_idx] { return sample_slot(wifi_idx); }, sample_until);
      buf_lte_ = std::make_unique<PeriodicSampler>(
          bed_->sim(), Duration::millis(100),
          [sample_slot, lte_idx] { return sample_slot(lte_idx); }, sample_until);
    }
  }

  session_->on_finished = [this] {
    done_ = true;
    bed_->sim().request_stop();
  };
}

Simulator& StreamingRun::sim() { return bed_->sim(); }

void StreamingRun::start() {
  assert(!started_);
  started_ = true;
  session_->start();
  if (pm_ != nullptr) pm_->start();
  if (params_.heartbeat.enabled()) {
    bed_->sim().set_heartbeat(params_.heartbeat.interval_s, params_.heartbeat.fn);
  }
}

void StreamingRun::run_to(TimePoint t) {
  if (done_) return;
  bed_->sim().run_until(t < cap_ ? t : cap_);
}

std::unique_ptr<StreamingRun> StreamingRun::fork() const {
  return std::unique_ptr<StreamingRun>(new StreamingRun(*this, ForkTag{}));
}

void StreamingRun::set_scheduler(const SchedulerFactory& factory) {
  conn_->set_scheduler(factory());
}

StreamingResult StreamingRun::finish() {
  if (!done_) bed_->sim().run_until(cap_);
  if (params_.telemetry != nullptr) {
    params_.telemetry->events += bed_->sim().events_processed();
    params_.telemetry->sim_s += (bed_->sim().now() - TimePoint::origin()).to_seconds();
  }

  // --- collect --------------------------------------------------------------
  StreamingResult res;
  res.mean_bitrate_mbps = session_->mean_bitrate_mbps();
  res.mean_throughput_mbps = session_->mean_throughput_mbps();
  res.rebuffer_time = session_->rebuffer_time();
  res.chunks_fetched = static_cast<int>(session_->chunks().size());
  res.chunks = session_->chunks();
  res.ooo_delay = conn_->ooo_delay();
  for (const auto& c : session_->chunks()) {
    if (c.last_packet_gap_s >= 0.0) res.last_packet_gap.add(c.last_packet_gap_s);
  }

  const double wifi_mbps = params_.use_path_overrides
                               ? params_.wifi_override.down_rate.to_mbps()
                               : params_.wifi_mbps;
  const double lte_mbps = params_.use_path_overrides
                              ? params_.lte_override.down_rate.to_mbps()
                              : params_.lte_mbps;
  const bool lte_fast = lte_mbps > wifi_mbps;  // tie -> WiFi (smaller base RTT)

  // Aggregate per slot so subflows torn down mid-run (path-manager churn)
  // still contribute their bytes and IW resets via the retired-slot stats.
  // Value-identical to walking the live list for static topologies.
  std::uint64_t bytes_wifi = 0, bytes_lte = 0;
  RunningStats rtt_wifi, rtt_lte;
  for (std::size_t slot = 0; slot < conn_->slot_count(); ++slot) {
    const bool is_wifi = conn_->slot_path(slot) == &bed_->wifi();
    const Subflow* sf = conn_->subflow_at(slot);
    const SubflowStats& st = sf != nullptr ? sf->stats() : conn_->retired_stats(slot);
    if (is_wifi) {
      bytes_wifi += st.bytes_sent;
      res.iw_resets_wifi += st.iw_resets;
      if (sf != nullptr && sf->rtt().lifetime().count() > 0) {
        rtt_wifi.add(sf->rtt().lifetime().mean());
      }
    } else {
      bytes_lte += st.bytes_sent;
      res.iw_resets_lte += st.iw_resets;
      if (sf != nullptr && sf->rtt().lifetime().count() > 0) {
        rtt_lte.add(sf->rtt().lifetime().mean());
      }
    }
  }
  const std::uint64_t total = bytes_wifi + bytes_lte;
  const std::uint64_t fast_bytes = lte_fast ? bytes_lte : bytes_wifi;
  res.fraction_fast = total > 0 ? static_cast<double>(fast_bytes) / total : 0.0;
  res.reinjections = conn_->meta_stats().reinjections;
  res.remapped_segments = conn_->meta_stats().remapped_segments;
  res.mean_rtt_wifi_ms = rtt_wifi.mean() * 1e3;
  res.mean_rtt_lte_ms = rtt_lte.mean() * 1e3;

  if (params_.collect_traces) {
    const std::size_t wifi_idx = 0;
    const std::size_t lte_idx = params_.initial_paths.empty()
                                    ? static_cast<std::size_t>(params_.subflows_per_path)
                                    : 1;
    MetricLabels labels;
    labels.conn = static_cast<std::int64_t>(conn_->config().conn_id);
    labels.subflow = static_cast<std::int64_t>(wifi_idx);
    if (const TimeSeries* s = rec_->metrics().series("subflow.cwnd", labels)) {
      res.cwnd_wifi = *s;
    }
    labels.subflow = static_cast<std::int64_t>(lte_idx);
    if (const TimeSeries* s = rec_->metrics().series("subflow.cwnd", labels)) {
      res.cwnd_lte = *s;
    }
    res.sndbuf_wifi = buf_wifi_->series();
    res.sndbuf_lte = buf_lte_->series();
  }
  return res;
}

StreamingResult run_streaming(const StreamingParams& params) {
  StreamingRun run(params);
  run.start();
  return run.finish();
}

StreamingResult run_streaming_avg(StreamingParams params, int runs) {
  StreamingResult acc;
  for (int r = 0; r < runs; ++r) {
    params.seed = params.seed + static_cast<std::uint64_t>(r == 0 ? 0 : 1);
    StreamingResult one = run_streaming(params);
    if (r == 0) {
      acc = std::move(one);
      continue;
    }
    acc.mean_bitrate_mbps += one.mean_bitrate_mbps;
    acc.mean_throughput_mbps += one.mean_throughput_mbps;
    acc.fraction_fast += one.fraction_fast;
    acc.iw_resets_wifi += one.iw_resets_wifi;
    acc.iw_resets_lte += one.iw_resets_lte;
    acc.reinjections += one.reinjections;
    acc.remapped_segments += one.remapped_segments;
    acc.mean_rtt_wifi_ms += one.mean_rtt_wifi_ms;
    acc.mean_rtt_lte_ms += one.mean_rtt_lte_ms;
    acc.ooo_delay.merge(one.ooo_delay);
    acc.last_packet_gap.merge(one.last_packet_gap);
  }
  if (runs > 1) {
    const double n = runs;
    acc.mean_bitrate_mbps /= n;
    acc.mean_throughput_mbps /= n;
    acc.fraction_fast /= n;
    acc.iw_resets_wifi = static_cast<std::uint64_t>(acc.iw_resets_wifi / runs);
    acc.iw_resets_lte = static_cast<std::uint64_t>(acc.iw_resets_lte / runs);
    acc.reinjections = static_cast<std::uint64_t>(acc.reinjections / runs);
    acc.remapped_segments = static_cast<std::uint64_t>(acc.remapped_segments / runs);
    acc.mean_rtt_wifi_ms /= n;
    acc.mean_rtt_lte_ms /= n;
  }
  return acc;
}

}  // namespace mps
