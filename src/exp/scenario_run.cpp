#include "exp/scenario_run.h"

#include <stdexcept>

#include "tcp/cc_registry.h"

namespace mps {

namespace {

void require_kind(const ScenarioSpec& spec, WorkloadKind kind, const char* fn) {
  if (spec.workload.kind != kind) {
    throw std::invalid_argument(std::string(fn) + ": spec workload kind is \"" +
                                workload_kind_name(spec.workload.kind) + "\", expected \"" +
                                workload_kind_name(kind) + "\"");
  }
}

void require_two_paths(const ScenarioSpec& spec, const char* fn) {
  if (spec.paths.size() != 2) {
    throw std::invalid_argument(std::string(fn) + ": the exp runners model exactly 2 paths " +
                                "(wifi primary, lte secondary); spec has " +
                                std::to_string(spec.paths.size()));
  }
}

// Label rate for a pure-profile path: the spec's Mbps literal, except that a
// random-bandwidth path is labelled by its trace's first level — both exactly
// as the hand-wired bench drivers computed them.
double pure_label_mbps(const PathSpec& p, const std::vector<RateChange>& trace) {
  if (p.variation.kind == VariationKind::kRandom && !trace.empty()) {
    return trace.front().rate.to_mbps();
  }
  return p.rate_mbps;
}

}  // namespace

StreamingParams streaming_params_from_spec(const ScenarioSpec& spec,
                                           const ScenarioRunOptions& opts) {
  require_kind(spec, WorkloadKind::kStream, "streaming_params_from_spec");
  require_two_paths(spec, "streaming_params_from_spec");
  WorldBuilder b(spec);

  StreamingParams p;
  const bool pure = b.pure_profile(0) && b.pure_profile(1);
  p.use_path_overrides = !pure;
  if (pure) {
    p.wifi_mbps = pure_label_mbps(spec.paths[0], b.path_traces()[0]);
    p.lte_mbps = pure_label_mbps(spec.paths[1], b.path_traces()[1]);
  } else {
    p.wifi_override = b.path_configs()[0];
    p.lte_override = b.path_configs()[1];
    p.wifi_mbps = p.wifi_override.down_rate.to_mbps();
    p.lte_mbps = p.lte_override.down_rate.to_mbps();
  }
  p.wifi_trace = b.path_traces()[0];
  p.lte_trace = b.path_traces()[1];
  p.scheduler = spec.scheduler;
  p.scheduler_override = opts.scheduler_override;
  p.cc = cc_kind_from_name(spec.conn.cc);
  p.staging_bytes = static_cast<std::uint64_t>(spec.conn.staging_bytes);
  p.idle_cwnd_reset = spec.conn.idle_cwnd_reset;
  p.opportunistic_rtx = spec.conn.opportunistic_rtx;
  p.penalization = spec.conn.penalization;
  p.video = Duration::from_seconds(spec.workload.video_s);
  p.abr = spec.workload.abr == "rate" ? AbrKind::kRateBased : AbrKind::kBufferBased;
  p.subflows_per_path = static_cast<int>(spec.subflows_per_path);
  p.seed = spec.seed;
  p.collect_traces = spec.record.collect_traces;
  p.recorder = opts.recorder;
  return p;
}

DownloadParams download_params_from_spec(const ScenarioSpec& spec) {
  require_kind(spec, WorkloadKind::kDownload, "download_params_from_spec");
  require_two_paths(spec, "download_params_from_spec");
  WorldBuilder b(spec);
  if (!b.pure_profile(0) || !b.pure_profile(1)) {
    throw std::invalid_argument(
        "download_params_from_spec: the download runner supports only unmodified "
        "wifi/lte profile paths");
  }
  for (const PathSpec& path : spec.paths) {
    if (path.variation.kind != VariationKind::kNone) {
      throw std::invalid_argument(
          "download_params_from_spec: bandwidth variation is not supported for downloads");
    }
  }
  if (spec.subflows_per_path != 1) {
    throw std::invalid_argument(
        "download_params_from_spec: downloads use 1 subflow per path");
  }

  DownloadParams p;
  p.wifi_mbps = spec.paths[0].rate_mbps;
  p.lte_mbps = spec.paths[1].rate_mbps;
  p.bytes = static_cast<std::uint64_t>(spec.workload.bytes);
  p.scheduler = spec.scheduler;
  p.cc = cc_kind_from_name(spec.conn.cc);
  p.seed = spec.seed;
  return p;
}

WebRunParams web_params_from_spec(const ScenarioSpec& spec) {
  require_kind(spec, WorkloadKind::kWeb, "web_params_from_spec");
  require_two_paths(spec, "web_params_from_spec");
  WorldBuilder b(spec);
  for (const PathSpec& path : spec.paths) {
    if (path.variation.kind != VariationKind::kNone) {
      throw std::invalid_argument(
          "web_params_from_spec: bandwidth variation is not supported for web runs");
    }
  }
  if (spec.subflows_per_path != 1) {
    throw std::invalid_argument("web_params_from_spec: web runs use 1 subflow per path");
  }

  WebRunParams p;
  const bool pure = b.pure_profile(0) && b.pure_profile(1);
  p.use_path_overrides = !pure;
  if (pure) {
    p.wifi_mbps = spec.paths[0].rate_mbps;
    p.lte_mbps = spec.paths[1].rate_mbps;
  } else {
    p.wifi_override = b.path_configs()[0];
    p.lte_override = b.path_configs()[1];
  }
  p.scheduler = spec.scheduler;
  p.cc = cc_kind_from_name(spec.conn.cc);
  p.seed = spec.seed;
  p.runs = static_cast<int>(spec.workload.runs);
  return p;
}

StreamingResult run_streaming(const ScenarioSpec& spec, const ScenarioRunOptions& opts) {
  return run_streaming(streaming_params_from_spec(spec, opts));
}

DownloadResult run_download(const ScenarioSpec& spec) {
  return run_download(download_params_from_spec(spec));
}

WebRunResult run_web(const ScenarioSpec& spec) {
  return run_web(web_params_from_spec(spec));
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec, const ScenarioRunOptions& opts) {
  ScenarioOutcome out;
  out.kind = spec.workload.kind;
  switch (spec.workload.kind) {
    case WorkloadKind::kStream:
      out.streaming = run_streaming_avg(streaming_params_from_spec(spec, opts),
                                        static_cast<int>(spec.workload.runs));
      break;
    case WorkloadKind::kDownload: {
      // Mirrors run_download_samples' seed advance (seed+1 before each run)
      // while also keeping the last run's detail.
      DownloadParams p = download_params_from_spec(spec);
      for (std::int64_t r = 0; r < spec.workload.runs; ++r) {
        p.seed += 1;
        out.download = run_download(p);
        out.download_completions.add(out.download.completion.to_seconds());
      }
      break;
    }
    case WorkloadKind::kWeb:
      out.web = run_web(web_params_from_spec(spec));
      break;
  }
  return out;
}

}  // namespace mps
