#include "exp/scenario_run.h"

#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "exp/ideal.h"
#include "tcp/cc_registry.h"

namespace mps {

namespace {

void require_kind(const ScenarioSpec& spec, WorkloadKind kind, const char* fn) {
  if (spec.workload.kind != kind) {
    throw std::invalid_argument(std::string(fn) + ": spec workload kind is \"" +
                                workload_kind_name(spec.workload.kind) + "\", expected \"" +
                                workload_kind_name(kind) + "\"");
  }
}

void require_two_paths(const ScenarioSpec& spec, const char* fn) {
  if (spec.paths.size() != 2) {
    throw std::invalid_argument(std::string(fn) + ": the exp runners model exactly 2 paths " +
                                "(wifi primary, lte secondary); spec has " +
                                std::to_string(spec.paths.size()));
  }
}

// Label rate for a pure-profile path: the spec's Mbps literal, except that a
// random-bandwidth path is labelled by its trace's first level — both exactly
// as the hand-wired bench drivers computed them.
double pure_label_mbps(const PathSpec& p, const std::vector<RateChange>& trace) {
  if (p.variation.kind == VariationKind::kRandom && !trace.empty()) {
    return trace.front().rate.to_mbps();
  }
  return p.rate_mbps;
}

}  // namespace

StreamingParams streaming_params_from_spec(const ScenarioSpec& spec,
                                           const ScenarioRunOptions& opts) {
  require_kind(spec, WorkloadKind::kStream, "streaming_params_from_spec");
  require_two_paths(spec, "streaming_params_from_spec");
  WorldBuilder b(spec);

  StreamingParams p;
  const bool pure = b.pure_profile(0) && b.pure_profile(1);
  p.use_path_overrides = !pure;
  if (pure) {
    p.wifi_mbps = pure_label_mbps(spec.paths[0], b.path_traces()[0]);
    p.lte_mbps = pure_label_mbps(spec.paths[1], b.path_traces()[1]);
  } else {
    p.wifi_override = b.path_configs()[0];
    p.lte_override = b.path_configs()[1];
    p.wifi_mbps = p.wifi_override.down_rate.to_mbps();
    p.lte_mbps = p.lte_override.down_rate.to_mbps();
  }
  p.wifi_trace = b.path_traces()[0];
  p.lte_trace = b.path_traces()[1];
  p.scheduler = spec.scheduler;
  p.scheduler_override = opts.scheduler_override;
  p.cc = cc_kind_from_name(spec.conn.cc);
  p.staging_bytes = static_cast<std::uint64_t>(spec.conn.staging_bytes);
  p.idle_cwnd_reset = spec.conn.idle_cwnd_reset;
  p.opportunistic_rtx = spec.conn.opportunistic_rtx;
  p.penalization = spec.conn.penalization;
  p.video = Duration::from_seconds(spec.workload.video_s);
  p.abr = spec.workload.abr == "rate" ? AbrKind::kRateBased : AbrKind::kBufferBased;
  p.subflows_per_path = static_cast<int>(spec.subflows_per_path);
  p.seed = spec.seed;
  p.collect_traces = spec.record.collect_traces;
  p.recorder = opts.recorder;
  p.telemetry = opts.telemetry;
  p.heartbeat = opts.heartbeat;
  if (spec.path_manager.enabled) {
    p.use_path_manager = true;
    p.path_manager = path_manager_config_from_spec(spec.path_manager);
    if (spec.path_manager.backup.enabled) {
      p.initial_paths = initial_path_indices(spec.path_manager, spec.paths.size());
      if (p.initial_paths.empty()) {
        throw std::invalid_argument(
            "streaming_params_from_spec: every path is a backup path");
      }
    }
  }
  return p;
}

DownloadParams download_params_from_spec(const ScenarioSpec& spec) {
  require_kind(spec, WorkloadKind::kDownload, "download_params_from_spec");
  if (spec.paths.size() < 2) {
    throw std::invalid_argument("download_params_from_spec: need at least 2 paths");
  }
  WorldBuilder b(spec);
  for (const PathSpec& path : spec.paths) {
    if (path.variation.kind != VariationKind::kNone) {
      throw std::invalid_argument(
          "download_params_from_spec: bandwidth variation is not supported for downloads");
    }
  }
  if (spec.subflows_per_path != 1) {
    throw std::invalid_argument(
        "download_params_from_spec: downloads use 1 subflow per path");
  }

  DownloadParams p;
  // The historical two-path pure-profile form keeps the legacy construction
  // (bench/golden byte-identity); anything else — more paths, tweaked path
  // knobs — ships resolved PathConfigs to the runner's N-path world.
  if (spec.paths.size() == 2 && b.pure_profile(0) && b.pure_profile(1)) {
    p.wifi_mbps = spec.paths[0].rate_mbps;
    p.lte_mbps = spec.paths[1].rate_mbps;
  } else {
    p.paths = b.path_configs();
  }
  p.bytes = static_cast<std::uint64_t>(spec.workload.bytes);
  p.scheduler = spec.scheduler;
  p.cc = cc_kind_from_name(spec.conn.cc);
  p.seed = spec.seed;
  if (spec.path_manager.enabled) {
    p.use_path_manager = true;
    p.path_manager = path_manager_config_from_spec(spec.path_manager);
    if (spec.path_manager.backup.enabled) {
      p.initial_paths = initial_path_indices(spec.path_manager, spec.paths.size());
      if (p.initial_paths.empty()) {
        throw std::invalid_argument(
            "download_params_from_spec: every path is a backup path");
      }
    }
  }
  return p;
}

WebRunParams web_params_from_spec(const ScenarioSpec& spec) {
  require_kind(spec, WorkloadKind::kWeb, "web_params_from_spec");
  require_two_paths(spec, "web_params_from_spec");
  WorldBuilder b(spec);
  for (const PathSpec& path : spec.paths) {
    if (path.variation.kind != VariationKind::kNone) {
      throw std::invalid_argument(
          "web_params_from_spec: bandwidth variation is not supported for web runs");
    }
  }
  if (spec.subflows_per_path != 1) {
    throw std::invalid_argument("web_params_from_spec: web runs use 1 subflow per path");
  }

  WebRunParams p;
  const bool pure = b.pure_profile(0) && b.pure_profile(1);
  p.use_path_overrides = !pure;
  if (pure) {
    p.wifi_mbps = spec.paths[0].rate_mbps;
    p.lte_mbps = spec.paths[1].rate_mbps;
  } else {
    p.wifi_override = b.path_configs()[0];
    p.lte_override = b.path_configs()[1];
  }
  p.scheduler = spec.scheduler;
  p.cc = cc_kind_from_name(spec.conn.cc);
  p.seed = spec.seed;
  p.runs = static_cast<int>(spec.workload.runs);
  return p;
}

StreamingResult run_streaming(const ScenarioSpec& spec, const ScenarioRunOptions& opts) {
  return run_streaming(streaming_params_from_spec(spec, opts));
}

DownloadResult run_download(const ScenarioSpec& spec) {
  return run_download(download_params_from_spec(spec));
}

WebRunResult run_web(const ScenarioSpec& spec) {
  return run_web(web_params_from_spec(spec));
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec, const ScenarioRunOptions& opts) {
  ScenarioOutcome out;
  out.kind = spec.workload.kind;
  if (spec.traffic.enabled) {
    out.traffic = run_traffic(spec, opts.recorder, opts.telemetry, &opts.heartbeat);
    return out;
  }
  switch (spec.workload.kind) {
    case WorkloadKind::kStream:
      out.streaming = run_streaming_avg(streaming_params_from_spec(spec, opts),
                                        static_cast<int>(spec.workload.runs));
      break;
    case WorkloadKind::kDownload: {
      // Mirrors run_download_samples' seed advance (seed+1 before each run)
      // while also keeping the last run's detail.
      DownloadParams p = download_params_from_spec(spec);
      p.telemetry = opts.telemetry;
      p.heartbeat = opts.heartbeat;
      for (std::int64_t r = 0; r < spec.workload.runs; ++r) {
        p.seed += 1;
        out.download = run_download(p);
        out.download_completions.add(out.download.completion.to_seconds());
      }
      break;
    }
    case WorkloadKind::kWeb: {
      WebRunParams p = web_params_from_spec(spec);
      p.telemetry = opts.telemetry;
      p.heartbeat = opts.heartbeat;
      out.web = run_web(p);
      break;
    }
  }
  return out;
}

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

std::string format_traffic(const ScenarioSpec& spec, const TrafficResult& t) {
  std::size_t mptcp_started = 0;
  std::size_t cross_flows = 0;
  for (const TrafficFlowRecord& f : t.flows) {
    if (f.cross) ++cross_flows;
    else if (f.started) ++mptcp_started;
  }
  std::string s;
  appendf(s, "traffic %s: %lld initial + %zu churned + %zu cross flows, %.1f s\n",
          spec.scheduler.c_str(), static_cast<long long>(spec.traffic.flows), t.churned,
          cross_flows, t.duration_s);
  appendf(s, "  agg goodput %.2f Mbps (mptcp %.2f, cross %.2f), capacity %.1f, util %.2f\n",
          t.aggregate_goodput_mbps, t.mptcp_goodput_mbps, t.cross_goodput_mbps,
          t.capacity_mbps, t.utilization);
  appendf(s,
          "  jain %.3f over %zu mptcp flows, completed %zu, fct mean/p95 %.3f/%.3f s, "
          "orphans %llu\n",
          t.jain, mptcp_started, t.completed, t.completion_s.mean(),
          t.completion_s.quantile(0.95), static_cast<unsigned long long>(t.orphans));
  return s;
}

}  // namespace

std::string format_outcome(const ScenarioSpec& spec, const ScenarioOutcome& out) {
  std::string s;
  if (spec.traffic.enabled) return format_traffic(spec, out.traffic);
  switch (out.kind) {
    case WorkloadKind::kStream: {
      const StreamingParams p = streaming_params_from_spec(spec);
      const StreamingResult& r = out.streaming;
      appendf(s,
              "stream %s %.2f/%.2f Mbps (%lld run%s): bitrate %.2f Mbps (ideal %.2f),\n"
              "  tput %.2f Mbps, fast-path fraction %.2f, lte IW resets %llu,\n"
              "  rtt wifi/lte %.0f/%.0f ms, ooo p50/p99 %.3f/%.3f s, rebuffer %.1f s\n",
              spec.scheduler.c_str(), p.wifi_mbps, p.lte_mbps,
              static_cast<long long>(spec.workload.runs), spec.workload.runs == 1 ? "" : "s",
              r.mean_bitrate_mbps, ideal_bitrate_mbps(p.wifi_mbps, p.lte_mbps),
              r.mean_throughput_mbps, r.fraction_fast,
              static_cast<unsigned long long>(r.iw_resets_lte), r.mean_rtt_wifi_ms,
              r.mean_rtt_lte_ms, r.ooo_delay.quantile(0.5), r.ooo_delay.quantile(0.99),
              r.rebuffer_time.to_seconds());
      break;
    }
    case WorkloadKind::kDownload:
      appendf(s, "download %s %lld bytes (%lld run%s): mean %.3f s",
              spec.scheduler.c_str(), static_cast<long long>(spec.workload.bytes),
              static_cast<long long>(spec.workload.runs), spec.workload.runs == 1 ? "" : "s",
              out.download_completions.mean());
      if (spec.workload.runs > 1) {
        appendf(s, " (min %.3f, max %.3f)", out.download_completions.min(),
                out.download_completions.max());
      }
      appendf(s, ", fast-path fraction %.2f\n", out.download.fraction_fast);
      break;
    case WorkloadKind::kWeb: {
      const WebRunResult& r = out.web;
      appendf(s,
              "web %s (%lld run%s): page %.2f s, object mean/p90/p99 %.3f/%.3f/%.3f s, "
              "ooo p99 %.3f s\n",
              spec.scheduler.c_str(), static_cast<long long>(spec.workload.runs),
              spec.workload.runs == 1 ? "" : "s", r.mean_page_load_s, r.object_times.mean(),
              r.object_times.quantile(0.9), r.object_times.quantile(0.99),
              r.ooo_delay.quantile(0.99));
      break;
    }
  }
  return s;
}

}  // namespace mps
