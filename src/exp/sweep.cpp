#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace mps {

int sweep_jobs() {
  if (const char* env = std::getenv("MPS_BENCH_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(SweepOptions opts)
    : jobs_(opts.jobs > 0 ? opts.jobs : sweep_jobs()) {}

void SweepRunner::run(std::size_t n, const std::function<void(std::size_t)>& cell) const {
  if (n == 0) return;
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) cell(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto work = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        cell(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mps
