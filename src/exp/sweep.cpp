#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace mps {

int sweep_jobs() {
  if (const char* env = std::getenv("MPS_BENCH_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepRunner::SweepRunner(SweepOptions opts)
    : jobs_(opts.jobs > 0 ? opts.jobs : sweep_jobs()) {}

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

void SweepRunner::run(std::size_t n, const std::function<void(std::size_t)>& cell) {
  telemetry_ = SweepTelemetry{};
  if (n == 0) return;
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs_), n);

  if (workers <= 1) {
    const auto start = Clock::now();
    WorkerStats ws;
    for (std::size_t i = 0; i < n; ++i) {
      const auto t0 = Clock::now();
      cell(i);
      ws.busy_ns += ns_between(t0, Clock::now());
      ++ws.cells;
    }
    telemetry_.wall_ns = ns_between(start, Clock::now());
    // The serial path still times cells individually, so the gaps between
    // them (loop overhead, the Clock::now() calls themselves) land in idle.
    ws.idle_ns = telemetry_.wall_ns - ws.busy_ns - ws.wait_ns;
    telemetry_.workers.push_back(ws);
    telemetry_.jobs = 1;
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  std::vector<WorkerStats> stats(workers);
  std::vector<Clock::time_point> done(workers);
  const auto pool_start = Clock::now();

  auto work = [&](std::size_t w) {
    WorkerStats& ws = stats[w];
    auto mark = Clock::now();
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      const auto claimed = Clock::now();
      ws.wait_ns += ns_between(mark, claimed);
      if (i >= n) {
        done[w] = claimed;
        return;
      }
      try {
        cell(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      mark = Clock::now();
      ws.busy_ns += ns_between(claimed, mark);
      ++ws.cells;
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work, w);
  for (auto& t : pool) t.join();

  // Wall spans pool start to the slowest worker; a worker's idle is then the
  // wall minus its own accounted time, covering both thread-spawn latency
  // before its loop began and the tail where it waited (joined) on stragglers.
  auto last_done = pool_start;
  for (const auto& d : done) last_done = std::max(last_done, d);
  telemetry_.wall_ns = ns_between(pool_start, last_done);
  for (auto& ws : stats) {
    const std::uint64_t accounted = ws.busy_ns + ws.wait_ns;
    ws.idle_ns = telemetry_.wall_ns > accounted ? telemetry_.wall_ns - accounted : 0;
    // Clamp so busy+wait+idle == wall holds exactly even if scheduling skew
    // made one worker's accounted time exceed the measured wall.
    if (accounted > telemetry_.wall_ns) {
      telemetry_.wall_ns = accounted;
    }
  }
  // A wall_ns bumped by the clamp above would break earlier workers' sums;
  // recompute idle against the final wall value.
  for (auto& ws : stats) {
    ws.idle_ns = telemetry_.wall_ns - ws.busy_ns - ws.wait_ns;
  }
  telemetry_.workers = std::move(stats);
  telemetry_.jobs = static_cast<int>(workers);

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mps
