// Declarative entry point for the exp/ runners: resolve a ScenarioSpec into
// the runner parameter structs (bench-exact — same double literals, same RNG
// fork order as the hand-wired bench drivers) and dispatch on the workload
// kind. Every bench cell and the mps_run CLI go through these conversions,
// so a spec file and the equivalent hand-written parameters produce
// byte-identical output.
#pragma once

#include <string>

#include "exp/download.h"
#include "exp/streaming.h"
#include "exp/webrun.h"
#include "scenario/world.h"
#include "traffic/engine.h"

namespace mps {

// Per-run knobs that are code, not data: a custom scheduler factory (e.g.
// ECF with a non-default beta) and a caller-owned recorder (must outlive the
// run; when null, spec.record decides whether the run owns one).
struct ScenarioRunOptions {
  SchedulerFactory scheduler_override;  // streaming only
  FlightRecorder* recorder = nullptr;
  // Kernel accounting out-param and progress heartbeat (sim/simulator.h);
  // forwarded to whichever runner the workload dispatches to. Telemetry
  // accumulates across a workload's repeated runs.
  RunTelemetry* telemetry = nullptr;
  HeartbeatConfig heartbeat;
};

// spec -> runner params. The workload kind must match the function
// (checked); workload.runs rides along via run_scenario / the *_samples and
// *_avg helpers.
StreamingParams streaming_params_from_spec(const ScenarioSpec& spec,
                                           const ScenarioRunOptions& opts = {});
DownloadParams download_params_from_spec(const ScenarioSpec& spec);
WebRunParams web_params_from_spec(const ScenarioSpec& spec);

// Spec-accepting runner overloads (single streaming run ignores
// workload.runs; use run_scenario for the averaged form).
StreamingResult run_streaming(const ScenarioSpec& spec, const ScenarioRunOptions& opts = {});
DownloadResult run_download(const ScenarioSpec& spec);
WebRunResult run_web(const ScenarioSpec& spec);

// One result slot per workload kind; `kind` says which one is live. When the
// spec has a traffic block, `traffic` is live instead and `kind` is unused.
struct ScenarioOutcome {
  WorkloadKind kind = WorkloadKind::kStream;
  StreamingResult streaming;       // kStream: averaged over workload.runs
  Samples download_completions;    // kDownload: per-run completion seconds
  DownloadResult download;         // kDownload: last run's detail
  WebRunResult web;                // kWeb: merged over workload.runs
  TrafficResult traffic;           // spec.traffic.enabled: competing-traffic run
};

// Runs the spec's workload: streaming -> run_streaming_avg(workload.runs),
// download -> run_download_samples(workload.runs), web -> run_web. A spec
// with a traffic block dispatches to traffic/engine.h instead.
ScenarioOutcome run_scenario(const ScenarioSpec& spec, const ScenarioRunOptions& opts = {});

// Renders the outcome exactly as tools/mps_run prints it — shared so the
// golden-corpus test (tests/golden_test.cpp) locks the CLI's numbers
// byte-for-byte.
std::string format_outcome(const ScenarioSpec& spec, const ScenarioOutcome& out);

}  // namespace mps
