#include "mptcp/connection.h"

#include <algorithm>
#include <cassert>

#include "obs/prof.h"
#include "obs/recorder.h"
#include "util/log.h"

namespace mps {

Connection::Connection(Simulator& sim, ConnectionConfig config, std::vector<Path*> paths,
                       std::unique_ptr<Scheduler> scheduler, Mux& down_mux, Mux& up_mux)
    : sim_(sim),
      config_(config),
      scheduler_(std::move(scheduler)),
      down_mux_(down_mux),
      up_mux_(up_mux),
      rwnd_(config.rcv_autotune ? config.rcv_initial_window : config.rcvbuf_bytes),
      drs_window_(config.rcv_initial_window) {
  assert(!paths.empty());
  assert(scheduler_ != nullptr);

  scheduler_->bind(sim_, config_.conn_id);
  obs_ = &detached_instruments();
  if (FlightRecorder* rec = sim_.recorder(); rec != nullptr) {
    obs_owned_ = std::make_unique<Instruments>();
    obs_ = obs_owned_.get();
    MetricsRegistry& m = rec->metrics();
    MetricLabels labels;
    labels.conn = static_cast<std::int64_t>(config_.conn_id);
    obs_->ooo_bytes_total = m.counter("conn.ooo_bytes_total", labels);
    obs_->reinjections = m.counter("conn.reinjections", labels);
    obs_->window_stalls = m.counter("conn.window_stalls", labels);
    obs_->sndbuf_blocked_ns = m.counter("conn.sndbuf_blocked_ns", labels);
    obs_->meta_ooo_bytes = m.gauge("conn.meta_ooo_bytes", labels);
    obs_->reorder_segments = m.gauge("conn.reorder_segments", labels);
  }

  subflows_.reserve(paths.size());
  receivers_.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const Duration join_delay = i > 0 && config_.delayed_secondary_join
                                    ? paths[i]->rtt_base()  // MP_JOIN handshake
                                    : Duration::zero();
    const SubflowConfig sc =
        subflow_config_for(static_cast<std::uint32_t>(i), join_delay);
    subflows_.push_back(
        std::make_unique<Subflow>(sim_, sc, *paths[i], make_cc(config_.cc), this));
    subflow_ptrs_.push_back(subflows_.back().get());
    receivers_.push_back(std::make_unique<SubflowReceiver>(
        sim_, config_.conn_id, sc.id, *paths[i], this));
    slot_paths_.push_back(paths[i]);
    retired_stats_.emplace_back();
  }

  // Slots may be null after mid-connection teardown; stray packets for a
  // finalized subflow (late duplicate acks, post-abandon data) are dropped,
  // the RST-less analogue of landing on a closed port.
  down_mux_.add_route(config_.conn_id, [this](const Packet& p) {
    if (p.subflow_id < receivers_.size() && receivers_[p.subflow_id] != nullptr) {
      receivers_[p.subflow_id]->on_data_packet(p);
    }
  });
  up_mux_.add_route(config_.conn_id, [this](const Packet& p) {
    if (p.subflow_id < subflows_.size() && subflows_[p.subflow_id] != nullptr) {
      subflows_[p.subflow_id]->on_ack_packet(p);
    }
  });
}

SubflowConfig Connection::subflow_config_for(std::uint32_t id, Duration join_delay) const {
  SubflowConfig sc;
  sc.id = id;
  sc.conn_id = config_.conn_id;
  sc.mss = config_.mss;
  sc.initial_cwnd = config_.initial_cwnd;
  sc.idle_cwnd_reset = config_.idle_cwnd_reset;
  sc.staging_limit_bytes = config_.subflow_staging_bytes;
  sc.join_delay = join_delay;
  return sc;
}

Connection::Instruments& Connection::detached_instruments() {
  static Instruments detached;  // all handles unattached: every op is a no-op
  return detached;
}

Connection::~Connection() {
  down_mux_.remove_route(config_.conn_id);
  up_mux_.remove_route(config_.conn_id);
  // Under churn a connection can die with a deferred sendable/deliver post
  // still queued; those lambdas capture `this` and must not fire.
  if (sendable_post_pending_) sim_.cancel(sendable_post_id_);
  if (deliver_post_pending_) sim_.cancel(deliver_post_id_);
}

// ---------------------------------------------------------------------------
// Dynamic path management

std::uint32_t Connection::add_subflow(Path& path, Duration join_delay) {
  const std::uint32_t id = static_cast<std::uint32_t>(subflows_.size());
  subflows_.push_back(std::make_unique<Subflow>(
      sim_, subflow_config_for(id, join_delay), path, make_cc(config_.cc), this));
  receivers_.push_back(
      std::make_unique<SubflowReceiver>(sim_, config_.conn_id, id, path, this));
  slot_paths_.push_back(&path);
  retired_stats_.emplace_back();
  rebuild_subflow_ptrs();
  cc_terms_valid_ = false;  // new sibling (and a new establishment horizon)
  scheduler_->on_subflow_change(*this);
  MPS_TRACE_EVENT(sim_, EventType::kSubflowChange, config_.conn_id, id, {"op", "add"});
  return id;
}

void Connection::remove_subflow(std::uint32_t id, TeardownMode mode) {
  assert(id < subflows_.size() && subflows_[id] != nullptr);
  Subflow& sf = *subflows_[id];
  if (mode == TeardownMode::kDrain && !sf.drained()) {
    sf.begin_drain();
    // Membership is unchanged (a draining subflow stays visible so its
    // in-flight data keeps counting), but its eligibility flipped.
    scheduler_->on_subflow_change(*this);
    MPS_TRACE_EVENT(sim_, EventType::kSubflowChange, config_.conn_id, id,
                    {"op", "drain"});
    return;
  }
  // Abandon (or drain with nothing outstanding): every data range the
  // subflow still holds a sender copy of moves to the remap queue before the
  // slot dies, so the conservation invariant never sees a gap. Ranges whose
  // data the peer already meta-acked are skipped; remapped duplicates of
  // SACKed data are dropped by the meta receiver.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  sf.collect_data_ranges(ranges);
  std::sort(ranges.begin(), ranges.end());
  for (const auto& [begin, end] : ranges) {
    if (end <= data_una_) continue;
    remap_queue_.push_back(
        SegmentRef{begin, static_cast<std::uint32_t>(end - begin)});
    remap_bytes_ += end - begin;
  }
  finalize_subflow(id);
  scheduler_->on_subflow_change(*this);
  MPS_TRACE_EVENT(sim_, EventType::kSubflowChange, config_.conn_id, id,
                  {"op", "abandon"}, {"remap_bytes", remap_bytes_});
  if (!remap_queue_.empty()) try_send();
}

std::size_t Connection::finalize_drained() {
  std::size_t finalized = 0;
  for (std::uint32_t id = 0; id < subflows_.size(); ++id) {
    Subflow* sf = subflows_[id].get();
    if (sf == nullptr || !sf->draining() || !sf->drained()) continue;
    finalize_subflow(id);
    ++finalized;
  }
  if (finalized > 0) scheduler_->on_subflow_change(*this);
  return finalized;
}

void Connection::finalize_subflow(std::uint32_t id) {
  retired_stats_[id] = subflows_[id]->stats();
  subflows_[id].reset();
  receivers_[id].reset();
  rebuild_subflow_ptrs();
  cc_terms_valid_ = false;  // sibling left the coupled group
}

void Connection::rebuild_subflow_ptrs() {
  subflow_ptrs_.clear();
  for (const auto& sf : subflows_) {
    if (sf != nullptr) subflow_ptrs_.push_back(sf.get());
  }
}

std::uint64_t Connection::bytes_sent_on(const Path& path) const {
  std::uint64_t total = 0;
  for (std::size_t slot = 0; slot < subflows_.size(); ++slot) {
    if (slot_paths_[slot] != &path) continue;
    total += subflows_[slot] != nullptr ? subflows_[slot]->stats().bytes_sent
                                        : retired_stats_[slot].bytes_sent;
  }
  return total;
}

void Connection::collect_remap_ranges(
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) const {
  for (std::size_t i = 0; i < remap_queue_.size(); ++i) {
    const SegmentRef& seg = remap_queue_.at(i);
    out.emplace_back(seg.data_seq, seg.data_seq + seg.payload);
  }
}

void Connection::service_remap_queue() {
  while (!remap_queue_.empty()) {
    const SegmentRef seg = remap_queue_.front();
    if (seg.data_seq + seg.payload <= data_una_) {
      // Meta-acked while queued (a duplicate copy elsewhere delivered it).
      remap_queue_.pop_front();
      remap_bytes_ -= seg.payload;
      continue;
    }
    Subflow* sf = scheduler_->pick(*this);
    if (sf == nullptr || !sf->can_accept()) break;
    scheduler_->note_scheduled(sf->id());
    sf->assign_segment(seg.data_seq, seg.payload, /*reinjection=*/true);
    remap_queue_.pop_front();
    remap_bytes_ -= seg.payload;
    ++meta_stats_.remapped_segments;
  }
}

// ---------------------------------------------------------------------------
// Sender side

std::uint64_t Connection::sndbuf_used() const {
  return send_queue_bytes_ + meta_inflight();
}

std::uint64_t Connection::sndbuf_free() const {
  const std::uint64_t used = sndbuf_used();
  return used >= config_.sndbuf_bytes ? 0 : config_.sndbuf_bytes - used;
}

std::uint64_t Connection::send(std::uint64_t len) {
  const std::uint64_t accepted = std::min(len, sndbuf_free());
  send_queue_bytes_ += accepted;
  if (accepted < len && !sndbuf_blocked_) {
    sndbuf_blocked_ = true;
    sndbuf_blocked_since_ = sim_.now();
  }
  if (accepted > 0) try_send();
  return accepted;
}

void Connection::try_send() {
  if (in_try_send_) return;  // no re-entrant scheduling rounds
  in_try_send_ = true;

  for (Subflow* sf : subflow_ptrs_) sf->poll();

  service_remap_queue();

  while (send_queue_bytes_ > 0) {
    if (meta_inflight() >= rwnd_) {
      ++meta_stats_.window_stalls;
      obs_->window_stalls.inc();
      MPS_TRACE_EVENT(sim_, EventType::kWindowStall, config_.conn_id, -1,
                      {"inflight", meta_inflight()}, {"rwnd", rwnd_});
      try_opportunistic_retransmit();
      break;
    }
    Subflow* sf = nullptr;
    {
      MPS_PROF_SCOPE(kSchedDecide);
      sf = scheduler_->pick(*this);
    }
    if (sf == nullptr || !sf->can_accept()) break;
    scheduler_->note_scheduled(sf->id());
    const std::uint32_t payload =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(config_.mss, send_queue_bytes_));
    sf->assign_segment(next_data_seq_, payload);
    if (scheduler_->duplicate_to_all()) {
      // Redundant semantics: a copy committed to every other subflow with
      // send-queue room, de-duplicated by the meta receiver. Never onto a
      // draining subflow — a duplicate staged there would keep it from ever
      // reaching drained(), and an abandon would re-queue the copy again.
      for (Subflow* other : subflow_ptrs_) {
        if (other == sf || other->draining() || !other->can_accept()) continue;
        other->assign_segment(next_data_seq_, payload, /*reinjection=*/true);
      }
    }
    next_data_seq_ += payload;
    send_queue_bytes_ -= payload;
    ++meta_stats_.segments_scheduled;
  }

  in_try_send_ = false;
}

void Connection::try_opportunistic_retransmit() {
  if (!config_.opportunistic_retransmission) return;
  // Find the subflow owning the lowest outstanding (un-data-acked) segment:
  // that segment is what stalls the meta window.
  Subflow* blocker = nullptr;
  SegmentRef oldest{};
  for (Subflow* sf : subflow_ptrs_) {
    if (!sf->has_unacked()) continue;
    const SegmentRef ref = sf->oldest_unacked();
    if (blocker == nullptr || ref.data_seq < oldest.data_seq) {
      blocker = sf;
      oldest = ref;
    }
  }
  if (blocker == nullptr) return;
  if (oldest.data_seq == last_reinjected_seq_) return;  // once per segment

  // Reinject on the fastest other subflow with free CWND.
  Subflow* carrier = nullptr;
  for (Subflow* sf : subflow_ptrs_) {
    if (sf == blocker || !sf->can_send()) continue;
    if (carrier == nullptr || sf->rtt_estimate() < carrier->rtt_estimate()) carrier = sf;
  }
  if (carrier == nullptr || carrier->rtt_estimate() >= blocker->rtt_estimate()) return;

  carrier->send_segment(oldest.data_seq, oldest.payload, /*reinjection=*/true);
  last_reinjected_seq_ = oldest.data_seq;
  ++meta_stats_.reinjections;
  obs_->reinjections.inc();
  MPS_TRACE_EVENT(sim_, EventType::kReinjection, config_.conn_id, carrier->id(),
                  {"dseq", oldest.data_seq}, {"len", oldest.payload},
                  {"blocker", static_cast<std::int64_t>(blocker->id())});
  if (config_.penalization) blocker->penalize();
}

void Connection::on_subflow_ack(Subflow&) { try_send(); }

void Connection::on_data_ack(std::uint64_t data_ack) {
  if (data_ack <= data_una_) return;
  data_una_ = std::min(data_ack, next_data_seq_);
  if (sndbuf_blocked_ && sndbuf_free() > 0) {
    sndbuf_blocked_ = false;
    obs_->sndbuf_blocked_ns.inc(
        static_cast<std::uint64_t>((sim_.now() - sndbuf_blocked_since_).ns()));
  }
  notify_sendable();
}

void Connection::on_rwnd_update(std::uint64_t rwnd) { rwnd_ = rwnd; }

void Connection::notify_sendable() {
  if (!on_sendable || sendable_post_pending_ || sndbuf_free() == 0) return;
  sendable_post_pending_ = true;
  sendable_post_id_ = sim_.post([this] { fire_sendable(); });
}

void Connection::fire_sendable() {
  sendable_post_pending_ = false;
  if (on_sendable && sndbuf_free() > 0) on_sendable();
}

void Connection::cc_sibling_info(std::vector<CcSiblingInfo>& out) const {
  out.reserve(subflows_.size());
  for (const auto& sf : subflows_) {
    if (sf == nullptr) continue;
    CcSiblingInfo info;
    info.subflow_id = sf->id();
    info.cwnd = sf->cwnd();
    info.srtt_s = sf->rtt_estimate().to_seconds();
    info.established = sf->established();
    info.inter_loss_bytes = sf->inter_loss_bytes();
    out.push_back(info);
  }
}

const CoupledCcTerms& Connection::coupled_terms() const {
  const bool horizon_passed =
      !cc_terms_horizon_.is_never() && sim_.now() >= cc_terms_horizon_;
  if (!cc_terms_valid_ || horizon_passed) {
    cc_terms_.siblings.clear();
    cc_sibling_info(cc_terms_.siblings);
    cc_terms_.recompute();
    cc_terms_horizon_ = TimePoint::never();
    for (const auto& sf : subflows_) {
      if (sf == nullptr || sf->established()) continue;
      cc_terms_horizon_ = std::min(cc_terms_horizon_, sf->established_at());
    }
    cc_terms_valid_ = true;
  }
  return cc_terms_;
}

void Connection::collect_ooo_ranges(
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) const {
  for (std::size_t i = 0; i < meta_ooo_.size(); ++i) {
    const auto& e = meta_ooo_.at(i);
    out.emplace_back(e.key, e.key + e.value.payload);
  }
}

// ---------------------------------------------------------------------------
// Receiver side

std::uint64_t Connection::meta_rwnd() const {
  // In-order data is consumed immediately by the application model, so only
  // out-of-order held bytes occupy the receive buffer.
  const std::uint64_t window =
      config_.rcv_autotune ? std::min(drs_window_, config_.rcvbuf_bytes) : config_.rcvbuf_bytes;
  return meta_ooo_bytes_ >= window ? 0 : window - meta_ooo_bytes_;
}

void Connection::on_wire_arrival(std::uint32_t subflow_id, std::uint64_t data_seq,
                                 std::uint32_t payload, TimePoint arrival) {
  if (on_wire_arrival_hook) on_wire_arrival_hook(subflow_id, data_seq, payload, arrival);
}

void Connection::on_subflow_deliver(std::uint32_t /*subflow_id*/, std::uint64_t data_seq,
                                    std::uint32_t payload, TimePoint wire_arrival) {
  const TimePoint now = sim_.now();
  if (data_seq + payload <= rcv_data_next_) {
    ++meta_stats_.duplicate_segments;  // reinjection or spurious retransmit
    return;
  }
  if (data_seq > rcv_data_next_) {
    // Hold out of order; duplicates of held segments are dropped.
    auto [held, inserted] = meta_ooo_.try_emplace(data_seq, HeldSeg{payload, wire_arrival});
    if (inserted) {
      meta_ooo_bytes_ += payload;
      obs_->ooo_bytes_total.inc(payload);
      obs_->meta_ooo_bytes.set(now, static_cast<double>(meta_ooo_bytes_));
      obs_->reorder_segments.set(now, static_cast<double>(meta_ooo_.size()));
    } else {
      ++meta_stats_.duplicate_segments;
      // A duplicate that reaches past the held copy carries bytes the held
      // segment does not cover; adopt the longer coverage. Dropping it would
      // strand [held_end, new_end): the subflow has acked the carrier, so no
      // sender copy remains, and the drained hole could never fill.
      if (payload > held->payload) {
        const std::uint32_t extra = payload - held->payload;
        held->payload = payload;
        meta_ooo_bytes_ += extra;
        obs_->ooo_bytes_total.inc(extra);
        obs_->meta_ooo_bytes.set(now, static_cast<double>(meta_ooo_bytes_));
      }
    }
    return;
  }

  // In meta order (possibly overlapping the cumulative point after a partial
  // duplicate; deliver only the new part).
  const std::uint64_t new_bytes = data_seq + payload - rcv_data_next_;
  rcv_data_next_ += new_bytes;
  meta_stats_.delivered_bytes += new_bytes;
  ooo_delay_.add((now - wire_arrival).to_seconds());
  pending_deliver_bytes_ += new_bytes;

  // Drain contiguous held segments.
  const bool had_held = !meta_ooo_.empty();
  while (!meta_ooo_.empty() && meta_ooo_.front_key() <= rcv_data_next_) {
    const HeldSeg& held = meta_ooo_.front_value();
    const std::uint64_t seg_end = meta_ooo_.front_key() + held.payload;
    if (seg_end > rcv_data_next_) {
      const std::uint64_t drained = seg_end - rcv_data_next_;
      rcv_data_next_ = seg_end;
      meta_stats_.delivered_bytes += drained;
      ooo_delay_.add((now - held.arrival).to_seconds());
      pending_deliver_bytes_ += drained;
    } else {
      ++meta_stats_.duplicate_segments;
    }
    meta_ooo_bytes_ -= held.payload;
    meta_ooo_.pop_front();
  }
  if (had_held) {
    obs_->meta_ooo_bytes.set(now, static_cast<double>(meta_ooo_bytes_));
    obs_->reorder_segments.set(now, static_cast<double>(meta_ooo_.size()));
  }

  // Dynamic right-sizing: once a full window of in-order data has been
  // consumed since the last adjustment, double the advertised window (the
  // sender saturating the window implies it could use more).
  if (config_.rcv_autotune && drs_window_ < config_.rcvbuf_bytes &&
      meta_stats_.delivered_bytes - drs_mark_bytes_ >= drs_window_) {
    drs_window_ = std::min(drs_window_ * 2, config_.rcvbuf_bytes);
    drs_mark_bytes_ = meta_stats_.delivered_bytes;
  }

  flush_deliveries();
}

void Connection::flush_deliveries() {
  if (pending_deliver_bytes_ == 0 || deliver_post_pending_) return;
  deliver_post_pending_ = true;
  pending_deliver_when_ = sim_.now();
  // Deferred so application reactions (next GET, more send()) run outside
  // the packet-processing call stack.
  deliver_post_id_ = sim_.post([this] { fire_deliveries(); });
}

void Connection::fire_deliveries() {
  deliver_post_pending_ = false;
  const std::uint64_t bytes = pending_deliver_bytes_;
  pending_deliver_bytes_ = 0;
  if (on_deliver && bytes > 0) on_deliver(bytes, pending_deliver_when_);
}

// ---------------------------------------------------------------------------
// Snapshot support

void Connection::set_scheduler(std::unique_ptr<Scheduler> scheduler) {
  assert(scheduler != nullptr);
  scheduler_ = std::move(scheduler);
  scheduler_->bind(sim_, config_.conn_id);
}

void Connection::restore_from(const Connection& src) {
  // Slot-topology reconciliation. The fork shell was constructed with the
  // connection's initial slots; slots the source added later must already
  // have been re-created in id order (PathManager::restore_topology does
  // this before the connection restore). Slots the source finalized are
  // destroyed here, so the per-slot restores below are null-isomorphic.
  assert(subflows_.size() == src.subflows_.size());
  bool slots_changed = false;
  for (std::size_t i = 0; i < subflows_.size(); ++i) {
    if (src.subflows_[i] == nullptr && subflows_[i] != nullptr) {
      subflows_[i].reset();
      receivers_[i].reset();
      slots_changed = true;
    }
    assert((subflows_[i] == nullptr) == (src.subflows_[i] == nullptr));
  }
  if (slots_changed) rebuild_subflow_ptrs();
  retired_stats_ = src.retired_stats_;
  remap_queue_ = src.remap_queue_;
  remap_bytes_ = src.remap_bytes_;

  // Sender state.
  send_queue_bytes_ = src.send_queue_bytes_;
  next_data_seq_ = src.next_data_seq_;
  data_una_ = src.data_una_;
  rwnd_ = src.rwnd_;
  last_reinjected_seq_ = src.last_reinjected_seq_;
  sendable_post_pending_ = src.sendable_post_pending_;
  sendable_post_id_ = src.sendable_post_id_;
  if (sendable_post_pending_) {
    sim_.rebind(sendable_post_id_, [this] { fire_sendable(); });
  }

  // Receiver state.
  rcv_data_next_ = src.rcv_data_next_;
  drs_window_ = src.drs_window_;
  drs_mark_bytes_ = src.drs_mark_bytes_;
  meta_ooo_ = src.meta_ooo_;
  meta_ooo_bytes_ = src.meta_ooo_bytes_;
  pending_deliver_bytes_ = src.pending_deliver_bytes_;
  pending_deliver_when_ = src.pending_deliver_when_;
  deliver_post_pending_ = src.deliver_post_pending_;
  deliver_post_id_ = src.deliver_post_id_;
  if (deliver_post_pending_) {
    sim_.rebind(deliver_post_id_, [this] { fire_deliveries(); });
  }

  meta_stats_ = src.meta_stats_;
  ooo_delay_ = src.ooo_delay_;
  sndbuf_blocked_ = src.sndbuf_blocked_;
  sndbuf_blocked_since_ = src.sndbuf_blocked_since_;

  cc_terms_valid_ = false;  // per-subflow restores below rewrite every input

  scheduler_->restore_from(*src.scheduler_);
  for (std::size_t i = 0; i < subflows_.size(); ++i) {
    if (subflows_[i] != nullptr) subflows_[i]->restore_from(*src.subflows_[i]);
  }
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    if (receivers_[i] != nullptr) receivers_[i]->restore_from(*src.receivers_[i]);
  }
}

}  // namespace mps
