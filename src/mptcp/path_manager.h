// PathManager: mid-connection subflow lifecycle (ROADMAP item 4).
//
// Real MPTCP stacks establish and tear down subflows continuously — a phone
// walks out of WiFi range mid-download, LTE joins late, backup paths sit
// idle until the primary dies. This object drives Connection's
// add_subflow/remove_subflow from a periodic scan tick (the htsim
// subflow_control shape: policies run from a scan loop, never from packet
// stacks, so a subflow is never destroyed under its own ack).
//
// Three policy families compose, all driven from the same tick:
//  * timed actions — a scripted add/remove sequence (break-before-make and
//    make-before-break handover scenarios, scenario `path_manager.events`);
//  * backup promotion — paths held in reserve are established when a live
//    subflow's RTO backoff reaches the outage threshold (the PR 4 outage
//    fault signature);
//  * cap-N growth — subflows are added, round-robin over the growth paths,
//    while the connection has delivered one `bytes_per_subflow` quantum per
//    live subflow and the count is below `max_subflows` (htsim
//    subflow_control's byte-counter threshold).
//
// The tick also finalizes drained subflows, escalates drains stuck past
// `drain_timeout` to abandon-and-remap, and kicks the connection so a newly
// established subflow starts carrying data even when no ack clock runs
// (break-before-make windows have zero live subflows).
#pragma once

#include <cstdint>
#include <vector>

#include "mptcp/connection.h"
#include "net/path.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace mps {

struct PathManagerConfig {
  // Scan period. Every policy decision happens on a tick edge, which is
  // what makes churn deterministic and snapshot-exact.
  Duration tick = Duration::millis(10);
  // A drain stuck longer than this is escalated to abandon-and-remap.
  Duration drain_timeout = Duration::seconds(2);
  // New subflows join one path RTT after the add (MP_JOIN handshake
  // analogue), matching how construction delays secondary joins.
  bool join_delay_rtt = true;

  struct TimedAction {
    enum class Op { kAdd, kRemove };
    TimePoint at;  // executed at the first tick >= at
    Op op = Op::kAdd;
    std::size_t path = 0;  // index into the manager's path list
    Connection::TeardownMode mode = Connection::TeardownMode::kDrain;
  };
  std::vector<TimedAction> actions;  // must be sorted by `at`

  // Backup promotion: paths established only once a live subflow's RTO
  // backoff reaches `promote_after_rtos` consecutive timeouts.
  std::vector<std::size_t> backup_paths;
  int promote_after_rtos = 2;

  // Cap-N growth; 0 disables.
  int max_subflows = 0;
  std::uint64_t bytes_per_subflow = 0;
  std::vector<std::size_t> growth_paths;
};

class PathManager {
 public:
  struct Stats {
    std::uint64_t subflows_added = 0;   // all adds (actions + policies)
    std::uint64_t drains_started = 0;
    std::uint64_t abandons = 0;         // explicit abandon removals
    std::uint64_t drain_timeouts = 0;   // drains escalated to abandon
    std::uint64_t finalized = 0;        // drained slots destroyed
    std::uint64_t promotions = 0;       // backup paths established
    std::uint64_t cap_adds = 0;         // growth-policy adds
  };

  // `paths` is the world's path list in index order (borrowed; must outlive
  // the manager). Every slot the connection starts with must run over one of
  // these paths.
  PathManager(Connection& conn, std::vector<Path*> paths, PathManagerConfig config);

  // Arms the scan tick. Separate from construction so fork shells stay
  // event-free (exp/snapshot.h); the fork adopts the source's pending tick
  // in restore_from instead.
  void start();

  const Stats& stats() const { return stats_; }
  const PathManagerConfig& config() const { return config_; }
  // World path index slot `slot` runs (ran) over.
  std::size_t slot_path_index(std::size_t slot) const { return slot_path_idx_[slot]; }
  std::size_t live_subflows() const;
  std::size_t draining_subflows() const;

  // --- snapshot support (exp/snapshot.h) ------------------------------------
  // Step one of a fork's connection restore: re-creates, in id order, every
  // slot the source added after construction, so the fork's slot topology is
  // isomorphic to the source's before Connection::restore_from reconciles
  // per-slot state (slots the source finalized are re-created too, then
  // destroyed there). Must run after the world restore and before the
  // connection restore.
  void restore_topology(const PathManager& src);
  // Copies policy state and adopts the source's pending tick by EventId.
  void restore_from(const PathManager& src);

 private:
  void tick();
  void execute_due_actions();
  void escalate_stuck_drains();
  void promote_backups();
  void grow_to_cap();
  std::uint32_t add_on_path(std::size_t path_idx);
  void remove_on_path(std::size_t path_idx, Connection::TeardownMode mode);
  // True when no future tick could do work: all actions executed, nothing
  // draining, and no monitoring policy armed. The tick stops re-arming then
  // so finished runs drain their event queues.
  bool idle() const;
  bool path_has_live_subflow(std::size_t path_idx) const;

  Connection& conn_;
  std::vector<Path*> paths_;
  PathManagerConfig config_;
  Timer tick_timer_;

  std::size_t action_idx_ = 0;          // next unexecuted timed action
  std::size_t growth_cursor_ = 0;       // round-robin over growth_paths
  std::vector<std::size_t> slot_path_idx_;  // per conn slot; grows with adds
  std::vector<TimePoint> drain_started_;    // per slot; never() = not draining
  Stats stats_;
};

}  // namespace mps
