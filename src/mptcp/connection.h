// The MPTCP connection: meta-level sender and receiver.
//
// Server side (sender): a connection-level send buffer holds application
// bytes; the scheduler maps them to subflows as whole segments; data
// sequence numbers stitch the subflows back together. The meta send window
// is bounded by the receiver's advertised window. When the window stalls on
// a segment owned by a slow subflow, opportunistic retransmission reinjects
// it on a faster subflow and penalization halves the blocker's CWND
// (Raiciu et al., NSDI'12), both enabled by default as in the paper.
//
// Client side (receiver): per-subflow receivers enforce subflow-level order;
// the meta receiver then reorders across subflows by data sequence number,
// measuring the out-of-order delay every packet experiences (paper's
// Figs. 13/14/21/23).
//
// Both endpoints live in one object because the simulation runs them in one
// process; the public API is split into sender-side and receiver-side
// sections below.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "net/mux.h"
#include "net/path.h"
#include "mptcp/scheduler.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "tcp/cc.h"
#include "tcp/subflow.h"
#include "traffic/arena.h"
#include "util/ring.h"
#include "util/stats.h"

namespace mps {

struct ConnectionConfig {
  std::uint32_t conn_id = 1;
  std::uint32_t mss = kDefaultMss;
  // Connection-level send buffer (queued + in-flight-unacked bytes). The
  // paper's Apache server pins SO_SNDBUF (~256 KB; cf. the ~200 KB ceiling
  // in paper Fig. 3), which disables Linux autotuning.
  std::uint64_t sndbuf_bytes = 256 << 10;
  // Per-subflow send-queue limit (see SubflowConfig::staging_limit_bytes).
  std::uint64_t subflow_staging_bytes = 64 << 10;
  // Meta receive buffer backing the advertised window (tcp_rmem max).
  std::uint64_t rcvbuf_bytes = 6 << 20;
  CcKind cc = CcKind::kLia;
  bool opportunistic_retransmission = true;
  bool penalization = true;
  bool idle_cwnd_reset = true;
  double initial_cwnd = 10.0;
  // Linux-style dynamic right-sizing of the advertised receive window: start
  // small, double each time a full window's worth of in-order data is
  // consumed, up to rcvbuf_bytes. Makes the meta send window bind early in a
  // connection's life, as in the real stack.
  bool rcv_autotune = true;
  std::uint64_t rcv_initial_window = 256 * 1024;
  // Secondary subflows join one handshake RTT after the connection opens.
  bool delayed_secondary_join = true;
};

struct MetaStats {
  std::uint64_t delivered_bytes = 0;       // in-order bytes handed to the app
  std::uint64_t duplicate_segments = 0;    // dropped at meta level
  std::uint64_t reinjections = 0;          // opportunistic retransmissions
  std::uint64_t remapped_segments = 0;     // re-scheduled after abandon teardown
  std::uint64_t window_stalls = 0;         // scheduling blocked by meta rwnd
  std::uint64_t segments_scheduled = 0;
};

class Connection final : public SubflowEnv, public CcGroup, public MetaSink {
 public:
  // Churned connections recycle fixed-size arena slots instead of hitting
  // the global heap (traffic/arena.h).
  static void* operator new(std::size_t size) { return arena_allocate<Connection>(size); }
  static void operator delete(void* p, std::size_t size) {
    arena_deallocate<Connection>(p, size);
  }


  // `paths` may contain duplicates (several subflows per interface, paper
  // Section 5.2.5); index 0 is the primary subflow. `down_mux`/`up_mux`
  // demultiplex the shared links; the connection registers itself for
  // config.conn_id and unregisters on destruction.
  Connection(Simulator& sim, ConnectionConfig config, std::vector<Path*> paths,
             std::unique_ptr<Scheduler> scheduler, Mux& down_mux, Mux& up_mux);
  ~Connection() override;

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // --- sender-side application API -----------------------------------------
  // Enqueues `len` bytes for transfer; returns the bytes accepted (limited
  // by free send-buffer space). The remainder must be re-offered from
  // on_sendable.
  std::uint64_t send(std::uint64_t len);
  std::uint64_t sndbuf_free() const;
  std::uint64_t sndbuf_used() const;
  // Bytes accepted but not yet handed to any subflow — ECF's k.
  std::uint64_t unscheduled_bytes() const { return send_queue_bytes_; }
  // Fires (deferred) when send-buffer space frees up.
  std::function<void()> on_sendable;

  // --- receiver-side application API ---------------------------------------
  // In-order meta-level delivery of `bytes` at `when`.
  std::function<void(std::uint64_t bytes, TimePoint when)> on_deliver;
  // Raw per-packet wire arrivals (before reordering), for trace analyses.
  std::function<void(std::uint32_t subflow_id, std::uint64_t data_seq,
                     std::uint32_t payload, TimePoint when)>
      on_wire_arrival_hook;

  // --- scheduler-facing state ----------------------------------------------
  Simulator& sim() { return sim_; }
  const ConnectionConfig& config() const { return config_; }
  std::vector<Subflow*>& subflows() { return subflow_ptrs_; }
  std::uint32_t mss() const { return config_.mss; }
  // Meta-level bytes in flight (scheduled, not yet data-acked).
  std::uint64_t meta_inflight() const { return next_data_seq_ - data_una_; }
  std::uint64_t send_window() const { return rwnd_; }

  // --- dynamic path management (mptcp/path_manager.h) -----------------------
  // Subflows live in id-indexed slots: slot index == subflow id, ids are
  // never reused, and teardown leaves a null slot behind. subflows() is the
  // compacted live list (including draining members) that schedulers
  // iterate; the slot views below are for the invariant checker, snapshot
  // restore, and per-path reporting.
  //
  // Opens a new subflow on `path`, established after `join_delay` (the
  // MP_JOIN handshake analogue). Event-free, like construction; the caller
  // (normally the PathManager tick) is responsible for kicking the
  // connection once the subflow establishes. Returns the new subflow's id.
  std::uint32_t add_subflow(Path& path, Duration join_delay);
  enum class TeardownMode {
    kDrain,    // stop new work; deliver everything committed, then finalize
    kAbandon,  // tear down now; unacked data re-queued for other subflows
  };
  // Begins RST-less teardown of subflow `id`. kDrain marks the subflow
  // draining (finalized later via finalize_drained); kAbandon destroys it
  // immediately after moving every data range it still held a copy of onto
  // the remap queue, which try_send re-schedules onto surviving subflows —
  // this is what keeps the checker's conservation invariant intact.
  void remove_subflow(std::uint32_t id, TeardownMode mode);
  // Destroys draining subflows that have delivered everything they held.
  // Never called from packet-processing stacks (the PathManager tick drives
  // it), so a subflow is never destroyed under its own ack. Returns the
  // number of slots finalized.
  std::size_t finalize_drained();
  // Runs a scheduling round; the PathManager tick calls this so newly
  // established subflows start carrying data even when no ack clock is
  // running (e.g. a break-before-make window with zero live subflows).
  void kick() { try_send(); }

  std::size_t slot_count() const { return subflows_.size(); }
  const Subflow* subflow_at(std::size_t slot) const { return subflows_[slot].get(); }
  const SubflowReceiver* receiver_at(std::size_t slot) const {
    return receivers_[slot].get();
  }
  // The path slot `slot`'s subflow runs (ran) over; survives finalization.
  const Path* slot_path(std::size_t slot) const { return slot_paths_[slot]; }
  // Final stats of a finalized slot (zeros while the subflow is live).
  const SubflowStats& retired_stats(std::size_t slot) const {
    return retired_stats_[slot];
  }
  // Payload bytes originally sent over `path`, live and retired slots
  // combined (per-interface reporting that survives subflow churn).
  std::uint64_t bytes_sent_on(const Path& path) const;
  // Bytes awaiting re-scheduling after an abandon teardown.
  std::uint64_t remap_bytes() const { return remap_bytes_; }

  // --- diagnostics -----------------------------------------------------------
  const MetaStats& meta_stats() const { return meta_stats_; }
  // Out-of-order delay samples (seconds), one per delivered packet.
  const Samples& ooo_delay() const { return ooo_delay_; }
  Samples& mutable_ooo_delay() { return ooo_delay_; }
  std::uint64_t delivered_bytes() const { return meta_stats_.delivered_bytes; }
  Scheduler& scheduler() { return *scheduler_; }

  // Replaces the scheduler mid-connection (what-if divergence after a
  // snapshot fork; exp/snapshot.h). The new scheduler starts from its
  // initial state and takes effect at the next scheduling round.
  void set_scheduler(std::unique_ptr<Scheduler> scheduler);

  // Snapshot support: copies all meta-level sender/receiver state plus every
  // subflow's, receiver's, and the scheduler's state from `src`, a
  // connection built with an identical configuration over the fork's paths,
  // and adopts src's pending deferred posts by EventId. The simulator's
  // queue must already be structure-cloned.
  void restore_from(const Connection& src);

  // --- invariant-checker inspection (check/invariants.h) ---------------------
  std::uint64_t next_data_seq() const { return next_data_seq_; }
  std::uint64_t data_una() const { return data_una_; }
  std::uint64_t rcv_data_next() const { return rcv_data_next_; }
  std::uint64_t meta_ooo_bytes() const { return meta_ooo_bytes_; }
  std::size_t meta_ooo_segments() const { return meta_ooo_.size(); }
  std::uint64_t pending_deliver_bytes() const { return pending_deliver_bytes_; }
  std::size_t receiver_count() const { return receivers_.size(); }
  // Appends the [data_seq, data_seq + payload) range of every segment held
  // in the meta reorder buffer.
  void collect_ooo_ranges(std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) const;
  // Appends the range of every remap-queue entry (sender-side copies of data
  // abandoned with its subflow, not yet re-scheduled).
  void collect_remap_ranges(std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) const;

  // --- SubflowEnv ------------------------------------------------------------
  void on_subflow_ack(Subflow& sf) override;
  void on_data_ack(std::uint64_t data_ack) override;
  void on_rwnd_update(std::uint64_t rwnd) override;
  const CcGroup* cc_group() const override { return this; }
  void on_cc_input_change() override { cc_terms_valid_ = false; }

  // --- CcGroup ---------------------------------------------------------------
  void cc_sibling_info(std::vector<CcSiblingInfo>& out) const override;
  // Cached coupled-controller aggregates, recomputed lazily after any
  // subflow cwnd/RTT/inter-loss change (on_cc_input_change), membership
  // change, restore, or the establishment horizon passing: established() is
  // clock-derived, so a join flips a sibling's eligibility without any event
  // on this connection — the cache records the earliest future
  // established_at and expires itself at that instant.
  const CoupledCcTerms& coupled_terms() const override;

  // --- MetaSink ---------------------------------------------------------------
  void on_subflow_deliver(std::uint32_t subflow_id, std::uint64_t data_seq,
                          std::uint32_t payload, TimePoint wire_arrival) override;
  void on_wire_arrival(std::uint32_t subflow_id, std::uint64_t data_seq,
                       std::uint32_t payload, TimePoint arrival) override;
  std::uint64_t meta_data_ack() const override { return rcv_data_next_; }
  std::uint64_t meta_rwnd() const override;

 private:
  void try_send();
  void try_opportunistic_retransmit();
  // Re-schedules remap-queue entries (data abandoned with a torn-down
  // subflow) onto scheduler-picked survivors. Runs before the regular
  // scheduling loop and outside the meta-window check: remapped bytes are
  // already inside meta_inflight(), so gating them on rwnd would deadlock.
  void service_remap_queue();
  SubflowConfig subflow_config_for(std::uint32_t id, Duration join_delay) const;
  void rebuild_subflow_ptrs();
  // Destroys slot `id` (sender + receiver), recording its final stats.
  void finalize_subflow(std::uint32_t id);
  void flush_deliveries();
  void notify_sendable();
  // Deferred-post bodies, named so restore_from can rebind the cloned posts
  // to byte-identical behavior.
  void fire_sendable();
  void fire_deliveries();

  Simulator& sim_;
  ConnectionConfig config_;
  std::unique_ptr<Scheduler> scheduler_;
  Mux& down_mux_;
  Mux& up_mux_;

  // Id-indexed slots (null after teardown) plus the compacted live list.
  std::vector<std::unique_ptr<Subflow>> subflows_;
  std::vector<Subflow*> subflow_ptrs_;
  std::vector<std::unique_ptr<SubflowReceiver>> receivers_;
  std::vector<Path*> slot_paths_;           // per slot; survives finalization
  std::vector<SubflowStats> retired_stats_;  // per slot; zeros while live
  // Data ranges abandoned with a torn-down subflow, awaiting re-scheduling.
  RingDeque<SegmentRef> remap_queue_;
  std::uint64_t remap_bytes_ = 0;

  // Sender state.
  std::uint64_t send_queue_bytes_ = 0;  // accepted, not yet scheduled
  std::uint64_t next_data_seq_ = 0;     // next byte to hand to a subflow
  std::uint64_t data_una_ = 0;          // lowest un-data-acked byte
  std::uint64_t rwnd_;                  // peer-advertised meta window
  std::uint64_t last_reinjected_seq_ = UINT64_MAX;
  bool sendable_post_pending_ = false;
  EventId sendable_post_id_ = kInvalidEventId;  // cancelled in the dtor
  bool in_try_send_ = false;

  // Receiver state.
  std::uint64_t rcv_data_next_ = 0;
  std::uint64_t drs_window_ = 0;      // current auto-tuned window
  std::uint64_t drs_mark_bytes_ = 0;  // delivered count at last resize
  struct HeldSeg {
    std::uint32_t payload;
    TimePoint arrival;
  };
  // Sorted flat storage: drained from the bottom as the cumulative point
  // advances, inserted mostly near the top as new data arrives out of order.
  FlatSeqMap<HeldSeg> meta_ooo_;
  std::uint64_t meta_ooo_bytes_ = 0;
  std::uint64_t pending_deliver_bytes_ = 0;
  TimePoint pending_deliver_when_;
  bool deliver_post_pending_ = false;
  EventId deliver_post_id_ = kInvalidEventId;  // cancelled in the dtor

  MetaStats meta_stats_;
  Samples ooo_delay_;

  // Shared coupled-CC aggregate cache (see coupled_terms()).
  mutable CoupledCcTerms cc_terms_;
  mutable bool cc_terms_valid_ = false;
  mutable TimePoint cc_terms_horizon_ = TimePoint::never();

  // Flight-recorder instruments (no-ops unless a recorder was attached to
  // the Simulator before construction). Pointer to a per-connection block
  // when recording, else to one shared static detached block — same scheme
  // as Subflow::Instruments, for the same per-flow footprint reason.
  struct Instruments {
    Counter ooo_bytes_total, reinjections, window_stalls, sndbuf_blocked_ns;
    Gauge meta_ooo_bytes, reorder_segments;
  };
  static Instruments& detached_instruments();
  std::unique_ptr<Instruments> obs_owned_;  // populated only when recording
  Instruments* obs_ = nullptr;
  // Time the send buffer has been full with the application wanting to send
  // more (conn.sndbuf_blocked_ns) — the paper's "server is sndbuf-limited".
  bool sndbuf_blocked_ = false;
  TimePoint sndbuf_blocked_since_;
};

}  // namespace mps
