#include "mptcp/path_manager.h"

#include <cassert>

namespace mps {

PathManager::PathManager(Connection& conn, std::vector<Path*> paths,
                         PathManagerConfig config)
    : conn_(conn),
      paths_(std::move(paths)),
      config_(std::move(config)),
      tick_timer_(conn.sim()) {
  assert(!paths_.empty());
  assert(config_.tick > Duration::zero());
  for (const auto& action : config_.actions) {
    assert(action.path < paths_.size());
    static_cast<void>(action);
  }
  for (std::size_t p : config_.backup_paths) {
    assert(p < paths_.size());
    static_cast<void>(p);
  }
  for (std::size_t p : config_.growth_paths) {
    assert(p < paths_.size());
    static_cast<void>(p);
  }

  // Record which world path each initial slot runs over by matching the
  // connection's slot paths against our list. Slots over paths outside the
  // list are a wiring error.
  slot_path_idx_.reserve(conn_.slot_count());
  for (std::size_t slot = 0; slot < conn_.slot_count(); ++slot) {
    const Path* slot_path = conn_.slot_path(slot);
    std::size_t idx = paths_.size();
    for (std::size_t p = 0; p < paths_.size(); ++p) {
      if (paths_[p] == slot_path) {
        idx = p;
        break;
      }
    }
    assert(idx < paths_.size() && "connection slot runs over an unmanaged path");
    slot_path_idx_.push_back(idx);
  }
  drain_started_.assign(conn_.slot_count(), TimePoint::never());
}

void PathManager::start() { tick_timer_.schedule_after(config_.tick, [this] { tick(); }); }

std::size_t PathManager::live_subflows() const {
  std::size_t n = 0;
  for (std::size_t slot = 0; slot < conn_.slot_count(); ++slot) {
    const Subflow* sf = conn_.subflow_at(slot);
    if (sf != nullptr && !sf->draining()) ++n;
  }
  return n;
}

std::size_t PathManager::draining_subflows() const {
  std::size_t n = 0;
  for (std::size_t slot = 0; slot < conn_.slot_count(); ++slot) {
    const Subflow* sf = conn_.subflow_at(slot);
    if (sf != nullptr && sf->draining()) ++n;
  }
  return n;
}

bool PathManager::path_has_live_subflow(std::size_t path_idx) const {
  for (std::size_t slot = 0; slot < conn_.slot_count(); ++slot) {
    const Subflow* sf = conn_.subflow_at(slot);
    if (sf != nullptr && !sf->draining() && slot_path_idx_[slot] == path_idx) return true;
  }
  return false;
}

std::uint32_t PathManager::add_on_path(std::size_t path_idx) {
  Path& path = *paths_[path_idx];
  const Duration join_delay =
      config_.join_delay_rtt ? path.rtt_base() : Duration::zero();
  const std::uint32_t id = conn_.add_subflow(path, join_delay);
  // add_subflow appends exactly one slot; mirror it in our per-slot arrays.
  assert(conn_.slot_count() == slot_path_idx_.size() + 1);
  slot_path_idx_.push_back(path_idx);
  drain_started_.push_back(TimePoint::never());
  ++stats_.subflows_added;
  return id;
}

void PathManager::remove_on_path(std::size_t path_idx, Connection::TeardownMode mode) {
  // Tear down every live subflow the path carries (usually one). Draining
  // slots are already on their way out; abandon requests still escalate them.
  for (std::size_t slot = 0; slot < conn_.slot_count(); ++slot) {
    const Subflow* sf = conn_.subflow_at(slot);
    if (sf == nullptr || slot_path_idx_[slot] != path_idx) continue;
    if (sf->draining() && mode == Connection::TeardownMode::kDrain) continue;
    conn_.remove_subflow(static_cast<std::uint32_t>(slot), mode);
    if (conn_.subflow_at(slot) == nullptr) {
      // Abandon (or an already-drained drain request) finalized in place.
      drain_started_[slot] = TimePoint::never();
      ++stats_.abandons;
    } else {
      drain_started_[slot] = conn_.sim().now();
      ++stats_.drains_started;
    }
  }
}

void PathManager::execute_due_actions() {
  const TimePoint now = conn_.sim().now();
  while (action_idx_ < config_.actions.size() && config_.actions[action_idx_].at <= now) {
    const auto& action = config_.actions[action_idx_];
    if (action.op == PathManagerConfig::TimedAction::Op::kAdd) {
      add_on_path(action.path);
    } else {
      remove_on_path(action.path, action.mode);
    }
    ++action_idx_;
  }
}

void PathManager::escalate_stuck_drains() {
  const TimePoint now = conn_.sim().now();
  for (std::size_t slot = 0; slot < drain_started_.size(); ++slot) {
    if (drain_started_[slot].is_never()) continue;
    const Subflow* sf = conn_.subflow_at(slot);
    if (sf == nullptr || !sf->draining()) {
      drain_started_[slot] = TimePoint::never();
      continue;
    }
    if (now - drain_started_[slot] >= config_.drain_timeout) {
      // The drain is stuck — typically the path died under it and its
      // retransmissions go nowhere. Abandon: unacked ranges remap to the
      // surviving subflows.
      conn_.remove_subflow(static_cast<std::uint32_t>(slot),
                           Connection::TeardownMode::kAbandon);
      drain_started_[slot] = TimePoint::never();
      ++stats_.drain_timeouts;
    }
  }
}

void PathManager::promote_backups() {
  if (config_.backup_paths.empty()) return;
  bool outage = false;
  for (std::size_t slot = 0; slot < conn_.slot_count(); ++slot) {
    const Subflow* sf = conn_.subflow_at(slot);
    if (sf != nullptr && !sf->draining() &&
        sf->rto_backoff() >= config_.promote_after_rtos) {
      outage = true;
      break;
    }
  }
  if (!outage) return;
  // One promotion per tick: establish the first backup path not already
  // carrying a live subflow. A promoted path that later dies re-qualifies.
  for (std::size_t p : config_.backup_paths) {
    if (path_has_live_subflow(p)) continue;
    add_on_path(p);
    ++stats_.promotions;
    return;
  }
}

void PathManager::grow_to_cap() {
  if (config_.max_subflows <= 0 || config_.growth_paths.empty()) return;
  const std::size_t live = live_subflows();
  if (live >= static_cast<std::size_t>(config_.max_subflows)) return;
  // htsim subflow_control's byte-counter threshold: one subflow per
  // `bytes_per_subflow` quantum of delivered data, one add per tick.
  const std::uint64_t quanta = config_.bytes_per_subflow > 0
                                   ? conn_.delivered_bytes() / config_.bytes_per_subflow
                                   : static_cast<std::uint64_t>(config_.max_subflows);
  if (quanta + 1 <= live) return;
  add_on_path(config_.growth_paths[growth_cursor_ % config_.growth_paths.size()]);
  ++growth_cursor_;
  ++stats_.cap_adds;
}

bool PathManager::idle() const {
  if (action_idx_ < config_.actions.size()) return false;
  if (draining_subflows() > 0) return false;
  if (!config_.backup_paths.empty()) return false;
  if (config_.max_subflows > 0 && !config_.growth_paths.empty() &&
      live_subflows() < static_cast<std::size_t>(config_.max_subflows)) {
    return false;
  }
  return true;
}

void PathManager::tick() {
  execute_due_actions();
  escalate_stuck_drains();
  stats_.finalized += conn_.finalize_drained();
  promote_backups();
  grow_to_cap();
  // Restart scheduling: after a break-before-make window no ack clock runs,
  // and a freshly joined subflow would otherwise idle until one does.
  conn_.kick();
  if (!idle()) tick_timer_.schedule_after(config_.tick, [this] { tick(); });
}

void PathManager::restore_topology(const PathManager& src) {
  assert(paths_.size() == src.paths_.size());
  assert(conn_.slot_count() <= src.conn_.slot_count());
  // Re-create, in id order, every slot the source added after construction.
  // Source-finalized slots get a throwaway subflow here; the connection
  // restore destroys them when it reconciles against the source's nulls.
  for (std::size_t slot = conn_.slot_count(); slot < src.conn_.slot_count(); ++slot) {
    add_on_path(src.slot_path_idx_[slot]);
  }
  // add_on_path counted the re-creations; restore_from overwrites stats_.
}

void PathManager::restore_from(const PathManager& src) {
  assert(conn_.slot_count() == src.conn_.slot_count());
  action_idx_ = src.action_idx_;
  growth_cursor_ = src.growth_cursor_;
  slot_path_idx_ = src.slot_path_idx_;
  drain_started_ = src.drain_started_;
  stats_ = src.stats_;
  tick_timer_.clone_from(src.tick_timer_, [this] { tick(); });
}

}  // namespace mps
