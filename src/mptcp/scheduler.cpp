#include "mptcp/scheduler.h"

#include "obs/recorder.h"
#include "sim/simulator.h"

namespace mps {

void Scheduler::bind(Simulator& sim, std::uint32_t conn_id) {
  sim_ = &sim;
  recorder_ = sim.recorder();
  conn_id_ = static_cast<std::int64_t>(conn_id);
  explain_ = recorder_ != nullptr || static_cast<bool>(on_decision_);
}

MPS_SCHED_COLD void Scheduler::note_pick(std::int64_t subflow) const {
  SchedDecision d;
  d.kind = SchedDecision::Kind::kPick;
  d.subflow = subflow;
  note_decision(d);
}

MPS_SCHED_COLD void Scheduler::note_wait(std::int64_t subflow) const {
  SchedDecision d;
  d.kind = SchedDecision::Kind::kWait;
  d.subflow = subflow;
  note_decision(d);
}

MPS_SCHED_COLD void Scheduler::note_scheduled_slow(std::int64_t subflow) const {
  if (last_terms_pick_ == subflow) {
    last_terms_pick_ = -1;  // pick() already recorded this one, with terms
    return;
  }
  last_terms_pick_ = -1;
  note_pick(subflow);
}

void Scheduler::note_decision(SchedDecision d) const {
  d.scheduler = name();
  if (d.conn < 0) d.conn = conn_id_;
  if (d.kind == SchedDecision::Kind::kPick && d.has_ecf_terms) last_terms_pick_ = d.subflow;
  const TimePoint t = sim_ != nullptr ? sim_->now() : TimePoint::origin();
  if (recorder_ != nullptr) recorder_->record_decision(t, d);
  if (on_decision_) on_decision_(t, d);
}

}  // namespace mps
