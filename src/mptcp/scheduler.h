// The path-scheduler extension point.
//
// A Scheduler answers one question, exactly as in the Linux MPTCP
// implementation: "which subflow should carry the next unscheduled
// segment?" Returning nullptr means "no subflow right now" — either all
// subflows are CWND-limited, or the scheduler deliberately waits for a
// faster subflow to free up (the ECF/BLEST behaviour).
//
// The paper's contribution (ECF) lives in src/core; baseline schedulers in
// src/sched. Connection calls pick() in a loop until it returns nullptr or
// the send queue / meta window is exhausted.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "obs/decision.h"
#include "util/time.h"

// Keeps decision-recording bodies out of the pick() hot path: the explain
// branch then costs one predicted test, with the cold body behind a call.
#if defined(__GNUC__)
#define MPS_SCHED_COLD __attribute__((noinline, cold))
#else
#define MPS_SCHED_COLD
#endif

namespace mps {

class Connection;
class FlightRecorder;
class Simulator;
class Subflow;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Chooses the subflow for the next segment, or nullptr to wait. A non-null
  // result must satisfy Subflow::can_send().
  virtual Subflow* pick(Connection& conn) = 0;

  virtual const char* name() const = 0;

  // When true, the connection transmits a copy of every scheduled segment
  // on each other subflow with free window space (mptcp.org `redundant`
  // semantics); the meta receiver de-duplicates.
  virtual bool duplicate_to_all() const { return false; }

  // Clears per-connection state (a fresh connection reuses the object).
  virtual void reset() {}

  // The connection's subflow set changed: a subflow was added, entered the
  // draining teardown state, or was finalized (mptcp/path_manager.h).
  // Schedulers holding references into the subflow list — DAPS's departure
  // plan, round-robin's cursor — revalidate or rebuild here. Called after
  // the membership change is visible through conn.subflows(). Default: no
  // state to fix up.
  virtual void on_subflow_change(Connection& conn) { static_cast<void>(conn); }

  // Snapshot support (exp/snapshot.h): copies mutable scheduling state from
  // `src`, which must be the same concrete type. Stateful schedulers (ECF's
  // waiting flag, BLEST's lambda, DAPS's plan, round-robin's cursor)
  // override and chain up; wiring done by bind() is left untouched.
  virtual void restore_from(const Scheduler& src) {
    last_terms_pick_ = src.last_terms_pick_;
  }

  // --- decision tracing (Explain) -------------------------------------------
  // Connection calls this at construction, wiring the scheduler to the
  // simulator clock and its flight recorder (if one was attached to the
  // Simulator before the connection was built).
  void bind(Simulator& sim, std::uint32_t conn_id);

  // Optional per-decision hook, fired in addition to the flight recorder.
  void set_on_decision(std::function<void(TimePoint, const SchedDecision&)> fn) {
    on_decision_ = std::move(fn);
    explain_ = recorder_ != nullptr || static_cast<bool>(on_decision_);
  }

  // Called by Connection right after a successful pick() is committed to a
  // segment. Recording picks here — instead of on pick()'s hot return paths —
  // keeps the per-decision cost at zero when nothing is listening (the
  // microbenchmark calls pick() directly and must not regress). Skips the
  // record when the scheduler already logged this pick with its full
  // decision terms (ECF's explain path).
  void note_scheduled(std::int64_t subflow) const {
    if (!explain_) [[likely]] {
      return;
    }
    note_scheduled_slow(subflow);
  }

 protected:
  // Schedulers guard their decision bookkeeping with this: a single
  // well-predicted bool test, so pick() stays at its uninstrumented cost
  // when nothing is listening. Pair it with [[unlikely]] and keep the
  // recording body outlined (note_pick / a MPS_SCHED_COLD helper) so the
  // compiler does not bloat the hot path with the SchedDecision fill.
  bool explain_enabled() const { return explain_; }
  std::int64_t bound_conn_id() const { return conn_id_; }

  // Stamps `d` with conn id + sim time and routes it to the recorder's
  // decision log (aggregates + optional full log + event sink) and the hook.
  void note_decision(SchedDecision d) const;

  // Outlined plain pick/wait records, for the schedulers whose decision
  // carries no extra quantities.
  void note_pick(std::int64_t subflow) const;
  void note_wait(std::int64_t subflow) const;

 private:
  void note_scheduled_slow(std::int64_t subflow) const;

  Simulator* sim_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  std::int64_t conn_id_ = -1;
  bool explain_ = false;
  std::function<void(TimePoint, const SchedDecision&)> on_decision_;
  // Subflow of the last terms-bearing pick note_decision recorded, so
  // note_scheduled does not double-count it. -1 when none is pending.
  mutable std::int64_t last_terms_pick_ = -1;
};

// Factory so scenario code can instantiate one scheduler per connection.
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

}  // namespace mps
