// The path-scheduler extension point.
//
// A Scheduler answers one question, exactly as in the Linux MPTCP
// implementation: "which subflow should carry the next unscheduled
// segment?" Returning nullptr means "no subflow right now" — either all
// subflows are CWND-limited, or the scheduler deliberately waits for a
// faster subflow to free up (the ECF/BLEST behaviour).
//
// The paper's contribution (ECF) lives in src/core; baseline schedulers in
// src/sched. Connection calls pick() in a loop until it returns nullptr or
// the send queue / meta window is exhausted.
#pragma once

#include <functional>
#include <memory>

namespace mps {

class Connection;
class Subflow;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Chooses the subflow for the next segment, or nullptr to wait. A non-null
  // result must satisfy Subflow::can_send().
  virtual Subflow* pick(Connection& conn) = 0;

  virtual const char* name() const = 0;

  // When true, the connection transmits a copy of every scheduled segment
  // on each other subflow with free window space (mptcp.org `redundant`
  // semantics); the meta receiver de-duplicates.
  virtual bool duplicate_to_all() const { return false; }

  // Clears per-connection state (a fresh connection reuses the object).
  virtual void reset() {}
};

// Factory so scenario code can instantiate one scheduler per connection.
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

}  // namespace mps
