// FlightRecorder: the stack-wide observability root.
//
// One recorder is attached to a Simulator (Simulator::set_recorder) *before*
// the model objects are built; Subflow/Connection/Link/Scheduler then
// register their instruments and route trace events through it. With no
// recorder attached every instrumented site degrades to a null-pointer
// check, and the MPS_TRACE_EVENT macro can additionally be compiled out
// entirely with -DMPS_TRACE_DISABLED (CMake: -DMPS_TRACE_EVENTS=OFF).
//
// Three coordinated surfaces:
//  * metrics(): Counter/Gauge/Histogram registry (obs/metrics.h)
//  * event sink: typed JSONL-able trace records (obs/events.h)
//  * decision log: per-pick / per-wait scheduler records incl. ECF terms
//    (obs/decision.h), aggregated always and kept in full on request.
//
// summarize() prints the end-of-run report the bench/exp drivers attach.
//
// Thread confinement: a recorder is single-threaded state, owned by one
// simulation world. Parallel sweeps (exp/sweep.h) give every cell its own
// recorder and never share one across workers; nothing here is locked.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/decision.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "util/time.h"

namespace mps {

class FlightRecorder {
 public:
  // --- metrics --------------------------------------------------------------
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // --- structured events ----------------------------------------------------
  // Sink is borrowed; pass nullptr to stop tracing. With no sink, event
  // emission short-circuits before any field is materialized.
  void set_event_sink(EventSink* sink) { sink_ = sink; }
  EventSink* event_sink() const { return sink_; }
  bool tracing() const { return sink_ != nullptr; }

  void record_event(TimePoint t, EventType type, std::int64_t conn, std::int64_t subflow,
                    std::initializer_list<EventField> fields) {
    if (sink_ == nullptr) return;
    MPS_PROF_SCOPE(kRecorderEvent);
    ++events_recorded_;
    sink_->on_event(t, type, conn, subflow, fields.begin(), fields.size());
  }
  std::uint64_t events_recorded() const { return events_recorded_; }

  // --- scheduler decisions --------------------------------------------------
  struct TimedDecision {
    TimePoint t;
    SchedDecision d;
  };

  // Keep every decision in memory (tests / offline analysis). Off by
  // default: long runs make millions of picks; aggregates are always kept.
  void set_keep_decisions(bool keep) { keep_decisions_ = keep; }
  void record_decision(TimePoint t, const SchedDecision& d);
  const std::vector<TimedDecision>& decisions() const { return decisions_; }

  struct DecisionCounts {
    std::uint64_t picks = 0;
    std::uint64_t waits = 0;
    std::map<std::int64_t, std::uint64_t> picks_by_subflow;

    friend bool operator==(const DecisionCounts&, const DecisionCounts&) = default;
  };
  // Aggregated per (scheduler name, conn id).
  const std::map<std::pair<std::string, std::int64_t>, DecisionCounts>& decision_counts()
      const {
    return decision_counts_;
  }
  std::uint64_t total_picks() const;
  std::uint64_t total_waits() const;

  // --- snapshot-and-fork support (exp/snapshot.h) ---------------------------
  // Copies `src`'s whole state — metrics, decision log and aggregates, event
  // counter — and carries the borrowed sink pointer. Call *before* the fork's
  // model objects register instruments, so their handles resolve into the
  // copied storage. A fork that will run concurrently with other forks of
  // the same source should set_event_sink(nullptr): the sink is shared,
  // unsynchronized state.
  void clone_from(const FlightRecorder& src) {
    metrics_.clone_from(src.metrics_);
    sink_ = src.sink_;
    events_recorded_ = src.events_recorded_;
    keep_decisions_ = src.keep_decisions_;
    decisions_ = src.decisions_;
    decision_counts_ = src.decision_counts_;
  }

  // Re-copies recorded data from an isomorphic recorder (same instruments in
  // the same order). Used twice per fork: after fork-time construction to
  // undo constructor-time instrument writes, and at collect time to publish a
  // finished fork's data back into a caller-supplied recorder.
  void restore_data_from(const FlightRecorder& src) {
    metrics_.restore_data_from(src.metrics_);
    events_recorded_ = src.events_recorded_;
    keep_decisions_ = src.keep_decisions_;
    decisions_ = src.decisions_;
    decision_counts_ = src.decision_counts_;
  }

  // True when `other` recorded the same observable data: identical metrics
  // (instruments and values), event count, and decision aggregates. The
  // fork-vs-scratch tests assert this between a forked run's recorder and a
  // from-scratch run's.
  bool data_equals(const FlightRecorder& other) const {
    return metrics_.data_equals(other.metrics_) &&
           events_recorded_ == other.events_recorded_ &&
           decisions_.size() == other.decisions_.size() &&
           decision_counts_ == other.decision_counts_;
  }

  // --- report ---------------------------------------------------------------
  void summarize(std::ostream& os) const;

 private:
  MetricsRegistry metrics_;
  EventSink* sink_ = nullptr;
  std::uint64_t events_recorded_ = 0;

  bool keep_decisions_ = false;
  std::vector<TimedDecision> decisions_;
  std::map<std::pair<std::string, std::int64_t>, DecisionCounts> decision_counts_;
};

}  // namespace mps

// Emits a structured trace event through `sim`'s recorder. `sim` is any
// expression yielding a Simulator&; fields are brace-enclosed EventField
// initializers. The whole site compiles out under MPS_TRACE_DISABLED, and
// otherwise costs one pointer load + branch when no recorder (or no sink)
// is attached — field expressions are not evaluated in that case.
#ifndef MPS_TRACE_DISABLED
#define MPS_TRACE_EVENT(sim, type, conn, sf, ...)                                       \
  do {                                                                                  \
    ::mps::FlightRecorder* mps_trace_rec_ = (sim).recorder();                           \
    if (mps_trace_rec_ != nullptr && mps_trace_rec_->tracing()) {                       \
      mps_trace_rec_->record_event((sim).now(), (type), (conn), (sf), {__VA_ARGS__});   \
    }                                                                                   \
  } while (0)
#else
#define MPS_TRACE_EVENT(sim, type, conn, sf, ...) \
  do {                                            \
  } while (0)
#endif
