#include "obs/events.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace mps {

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kPktSend: return "pkt_send";
    case EventType::kPktRetransmit: return "pkt_retransmit";
    case EventType::kPktAck: return "pkt_ack";
    case EventType::kLossMark: return "loss_mark";
    case EventType::kRtoFire: return "rto";
    case EventType::kFastRecovery: return "fast_recovery";
    case EventType::kRecoveryExit: return "recovery_exit";
    case EventType::kIdleReset: return "idle_reset";
    case EventType::kPenalize: return "penalize";
    case EventType::kReinjection: return "reinjection";
    case EventType::kWindowStall: return "window_stall";
    case EventType::kLinkDrop: return "link_drop";
    case EventType::kSchedPick: return "sched_pick";
    case EventType::kSchedWait: return "sched_wait";
    case EventType::kSubflowChange: return "subflow_change";
  }
  return "unknown";
}

namespace {

void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_f64(std::ostream& os, double v) {
  char buf[32];
  // Shortest form that still distinguishes the values schedulers compare;
  // full round-trip is not needed for a human-facing trace.
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

void JsonlSink::on_event(TimePoint t, EventType type, std::int64_t conn,
                         std::int64_t subflow, const EventField* fields,
                         std::size_t n_fields) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9f", t.to_seconds());
  os_ << "{\"t\":" << buf << ",\"ev\":\"" << event_type_name(type) << '"';
  if (conn >= 0) os_ << ",\"conn\":" << conn;
  if (subflow >= 0) os_ << ",\"sf\":" << subflow;
  for (std::size_t i = 0; i < n_fields; ++i) {
    const EventField& f = fields[i];
    os_ << ",\"";
    write_escaped(os_, f.key);
    os_ << "\":";
    switch (f.tag) {
      case EventField::Tag::kU64: os_ << f.u; break;
      case EventField::Tag::kI64: os_ << f.i; break;
      case EventField::Tag::kF64: write_f64(os_, f.f); break;
      case EventField::Tag::kBool: os_ << (f.u != 0 ? "true" : "false"); break;
      case EventField::Tag::kStr:
        os_ << '"';
        write_escaped(os_, f.s != nullptr ? f.s : "");
        os_ << '"';
        break;
    }
  }
  os_ << "}\n";
  ++events_written_;
}

namespace {

const EventField* find_field(const std::vector<EventField>& fields, const char* key) {
  for (const EventField& f : fields) {
    if (std::strcmp(f.key, key) == 0) return &f;
  }
  return nullptr;
}

}  // namespace

double VectorSink::Recorded::f64(const char* key, double fallback) const {
  const EventField* f = find_field(fields, key);
  if (f == nullptr) return fallback;
  switch (f->tag) {
    case EventField::Tag::kF64: return f->f;
    case EventField::Tag::kU64: return static_cast<double>(f->u);
    case EventField::Tag::kI64: return static_cast<double>(f->i);
    case EventField::Tag::kBool: return f->u != 0 ? 1.0 : 0.0;
    case EventField::Tag::kStr: return fallback;
  }
  return fallback;
}

std::int64_t VectorSink::Recorded::i64(const char* key, std::int64_t fallback) const {
  const EventField* f = find_field(fields, key);
  if (f == nullptr) return fallback;
  switch (f->tag) {
    case EventField::Tag::kI64: return f->i;
    case EventField::Tag::kU64: return static_cast<std::int64_t>(f->u);
    case EventField::Tag::kF64: return static_cast<std::int64_t>(f->f);
    case EventField::Tag::kBool: return f->u != 0 ? 1 : 0;
    case EventField::Tag::kStr: return fallback;
  }
  return fallback;
}

std::uint64_t VectorSink::Recorded::u64(const char* key, std::uint64_t fallback) const {
  const EventField* f = find_field(fields, key);
  if (f == nullptr) return fallback;
  switch (f->tag) {
    case EventField::Tag::kU64: return f->u;
    case EventField::Tag::kI64: return static_cast<std::uint64_t>(f->i);
    case EventField::Tag::kF64: return static_cast<std::uint64_t>(f->f);
    case EventField::Tag::kBool: return f->u;
    case EventField::Tag::kStr: return fallback;
  }
  return fallback;
}

bool VectorSink::Recorded::boolean(const char* key, bool fallback) const {
  const EventField* f = find_field(fields, key);
  if (f == nullptr) return fallback;
  return f->u != 0 || f->i != 0 || f->f != 0.0;
}

std::size_t VectorSink::count(EventType type) const {
  std::size_t n = 0;
  for (const Recorded& r : events_) {
    if (r.type == type) ++n;
  }
  return n;
}

}  // namespace mps
