// Structured trace events: typed records with sim-timestamps, emitted by the
// stack through the MPS_TRACE_EVENT macro (see obs/recorder.h) and consumed
// by pluggable sinks. The reference sink writes JSONL — one self-describing
// object per line — which is what `--trace-out events.jsonl` produces.
//
// Field keys and string values must be string literals (or otherwise outlive
// the sink call); events are built on the stack with zero heap allocation so
// the tracing-enabled path stays cheap.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/time.h"

namespace mps {

enum class EventType : std::uint8_t {
  kPktSend,        // original transmission committed to the wire
  kPktRetransmit,  // loss-recovery retransmission
  kPktAck,         // new cumulative ack processed by the sender
  kLossMark,       // segment deemed lost (FACK/RACK/dupack scoreboard)
  kRtoFire,        // retransmission timeout fired
  kFastRecovery,   // sender entered fast recovery
  kRecoveryExit,   // sender left fast recovery
  kIdleReset,      // idle CWND restart (the paper's Fig. 6 mechanism)
  kPenalize,       // CWND halved by meta-level penalization
  kReinjection,    // opportunistic retransmission on another subflow
  kWindowStall,    // meta send window blocked scheduling
  kLinkDrop,       // packet dropped at a link (queue overflow / random)
  kSchedPick,      // scheduler chose a subflow for the next segment
  kSchedWait,      // scheduler deliberately declined all subflows
  kSubflowChange,  // subflow added, set draining, or finalized (path manager)
};

// Stable wire name ("pkt_send", "sched_wait", ...).
const char* event_type_name(EventType t);

// One key/value pair of an event payload. Keys/string values are borrowed.
struct EventField {
  enum class Tag : std::uint8_t { kU64, kI64, kF64, kBool, kStr };

  const char* key;
  Tag tag;
  std::uint64_t u = 0;
  std::int64_t i = 0;
  double f = 0.0;
  const char* s = nullptr;

  EventField(const char* k, std::uint64_t v) : key(k), tag(Tag::kU64), u(v) {}
  EventField(const char* k, std::uint32_t v) : EventField(k, static_cast<std::uint64_t>(v)) {}
  EventField(const char* k, std::int64_t v) : key(k), tag(Tag::kI64), i(v) {}
  EventField(const char* k, int v) : EventField(k, static_cast<std::int64_t>(v)) {}
  EventField(const char* k, double v) : key(k), tag(Tag::kF64), f(v) {}
  EventField(const char* k, bool v) : key(k), tag(Tag::kBool), u(v ? 1 : 0) {}
  EventField(const char* k, const char* v) : key(k), tag(Tag::kStr), s(v) {}
};

class EventSink {
 public:
  virtual ~EventSink() = default;
  // `conn`/`subflow` are -1 when the event is not scoped to one.
  virtual void on_event(TimePoint t, EventType type, std::int64_t conn, std::int64_t subflow,
                        const EventField* fields, std::size_t n_fields) = 0;
};

// Writes one JSON object per event:
//   {"t":1.234000000,"ev":"sched_wait","conn":1,"k":12,"cwnd_f":10,...}
// `t` is simulated seconds with nanosecond precision; `conn`/`sf` are present
// only when scoped. Schema is covered by a golden test (tests/obs_test.cpp).
class JsonlSink final : public EventSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(os) {}

  void on_event(TimePoint t, EventType type, std::int64_t conn, std::int64_t subflow,
                const EventField* fields, std::size_t n_fields) override;

  std::uint64_t events_written() const { return events_written_; }

 private:
  std::ostream& os_;
  std::uint64_t events_written_ = 0;
};

// Captures events in memory (tests, programmatic consumers).
class VectorSink final : public EventSink {
 public:
  struct Recorded {
    TimePoint t;
    EventType type;
    std::int64_t conn;
    std::int64_t subflow;
    std::vector<EventField> fields;

    // Field access by key; returns fallback when missing.
    double f64(const char* key, double fallback = 0.0) const;
    std::int64_t i64(const char* key, std::int64_t fallback = 0) const;
    std::uint64_t u64(const char* key, std::uint64_t fallback = 0) const;
    bool boolean(const char* key, bool fallback = false) const;
  };

  void on_event(TimePoint t, EventType type, std::int64_t conn, std::int64_t subflow,
                const EventField* fields, std::size_t n_fields) override {
    events_.push_back(Recorded{t, type, conn, subflow,
                               std::vector<EventField>(fields, fields + n_fields)});
  }

  const std::vector<Recorded>& events() const { return events_; }
  std::size_t count(EventType type) const;
  void clear() { events_.clear(); }

 private:
  std::vector<Recorded> events_;
};

}  // namespace mps
