#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/prof.h"

namespace mps {

void HistogramData::record(double v) {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;

  int idx = 0;
  if (v > 0.0) {
    idx = static_cast<int>(std::ceil(std::log2(v))) + kOffset;
    idx = std::clamp(idx, 0, kBuckets - 1);
  }
  ++buckets[static_cast<std::size_t>(idx)];
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (seen >= target) {
      return std::min(max, std::exp2(static_cast<double>(i - kOffset)));
    }
  }
  return max;
}

Instrument& MetricsRegistry::get_or_create(std::string_view name, InstrumentKind kind,
                                           MetricLabels labels) {
  MPS_PROF_SCOPE(kMetricsRegister);
  MPS_PROF_MEM_SCOPE(kObs);
  for (Instrument& inst : instruments_) {
    if (inst.kind == kind && inst.name == name && inst.labels == labels) return inst;
  }
  Instrument& inst = instruments_.emplace_back();
  inst.name = std::string(name);
  inst.labels = std::move(labels);
  inst.kind = kind;
  inst.keep_series = keep_series_;
  return inst;
}

Counter MetricsRegistry::counter(std::string_view name, MetricLabels labels) {
  return Counter(&get_or_create(name, InstrumentKind::kCounter, std::move(labels)));
}

Gauge MetricsRegistry::gauge(std::string_view name, MetricLabels labels) {
  return Gauge(&get_or_create(name, InstrumentKind::kGauge, std::move(labels)));
}

Histogram MetricsRegistry::histogram(std::string_view name, MetricLabels labels) {
  return Histogram(&get_or_create(name, InstrumentKind::kHistogram, std::move(labels)));
}

const Instrument* MetricsRegistry::find(std::string_view name,
                                        const MetricLabels& labels) const {
  for (const Instrument& inst : instruments_) {
    if (inst.name == name && inst.labels == labels) return &inst;
  }
  return nullptr;
}

const TimeSeries* MetricsRegistry::series(std::string_view name,
                                          const MetricLabels& labels) const {
  const Instrument* inst = find(name, labels);
  if (inst == nullptr || !inst->keep_series) return nullptr;
  return &inst->series;
}

std::uint64_t MetricsRegistry::total(std::string_view name) const {
  std::uint64_t sum = 0;
  for (const Instrument& inst : instruments_) {
    if (inst.kind == InstrumentKind::kCounter && inst.name == name) sum += inst.count;
  }
  return sum;
}

void MetricsRegistry::restore_data_from(const MetricsRegistry& src) {
  if (instruments_.size() != src.instruments_.size()) {
    throw std::logic_error("MetricsRegistry::restore_data_from: registries not isomorphic");
  }
  auto it = instruments_.begin();
  auto sit = src.instruments_.begin();
  for (; it != instruments_.end(); ++it, ++sit) {
    if (it->name != sit->name || !(it->labels == sit->labels) || it->kind != sit->kind) {
      throw std::logic_error("MetricsRegistry::restore_data_from: instrument mismatch");
    }
    it->count = sit->count;
    it->value = sit->value;
    it->hist = sit->hist;
    it->series = sit->series;
    it->keep_series = sit->keep_series;
  }
}

bool MetricsRegistry::data_equals(const MetricsRegistry& other) const {
  if (instruments_.size() != other.instruments_.size()) return false;
  auto it = instruments_.begin();
  auto ot = other.instruments_.begin();
  for (; it != instruments_.end(); ++it, ++ot) {
    if (it->name != ot->name || !(it->labels == ot->labels) || it->kind != ot->kind) {
      return false;
    }
    if (it->count != ot->count || it->value != ot->value) return false;
    const HistogramData& a = it->hist;
    const HistogramData& b = ot->hist;
    if (a.count != b.count || a.sum != b.sum || a.min != b.min || a.max != b.max ||
        a.buckets != b.buckets) {
      return false;
    }
    const auto& ap = it->series.points();
    const auto& bp = ot->series.points();
    if (ap.size() != bp.size()) return false;
    for (std::size_t i = 0; i < ap.size(); ++i) {
      if (!(ap[i].t == bp[i].t) || ap[i].value != bp[i].value) return false;
    }
  }
  return true;
}

}  // namespace mps
