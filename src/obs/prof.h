// Runtime performance observability: compile-out-able scoped profilers and a
// memory-accounting layer. This is the *runtime* flight recorder, sibling to
// the protocol one (obs/recorder.h): where recorder.h answers "what did the
// stack decide", prof.h answers "where did the wall-clock and the bytes go".
//
// Two coordinated facilities, both default-off (CMake -DMPS_PROF=ON, same
// discipline as MPS_TRACE_EVENTS):
//
//  * MPS_PROF_SCOPE(id): an RAII timer at a hot seam (event pop/dispatch,
//    scheduler decide, CC update, fault draw, recorder sink, spec build).
//    Each thread accumulates into its own ProfileAccumulator — no locks, no
//    atomics on the timed path — and prof::snapshot() merges the per-thread
//    accumulators at report time. Nesting is tracked so every scope reports
//    both inclusive (total) and exclusive (self) time.
//  * MPS_PROF_MEM_SCOPE(subsys): tags the current thread so that global
//    operator new/delete (replaced only under MPS_PROF, in prof.cpp) charge
//    allocations to a subsystem: alloc/free counts, byte totals, live bytes
//    and high-water bytes, surfaced as resident-bytes-per-flow for traffic
//    runs.
//
// Determinism contract: profiling reads the wall clock and thread-locals
// only — never an Rng, never the simulator — so enabling it cannot perturb
// event ordering, and every golden stays byte-identical with MPS_PROF on.
// With MPS_PROF off, both macros expand to nothing and the guard types are
// empty (static_assert-ed in tests/prof_test.cpp), so instrumented sites
// cost zero.
//
// Thread model: accumulators register themselves in a global registry (one
// mutex acquisition per thread lifetime). snapshot()/reset() take that mutex
// and expect quiescence — call them between sweeps, not while workers run.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mps::prof {

// --- scope taxonomy ---------------------------------------------------------
// Fixed enum rather than registered strings: accumulators are plain arrays
// indexed by scope, so the timed path is two clock reads and a handful of
// adds. Extend here (and in kScopeInfo, prof.cpp) when instrumenting a new
// seam.
enum class Scope : std::uint8_t {
  kEventPop,         // EventQueue::pop — heap sift + slot release
  kEventDispatch,    // firing the popped callback (everything the model does)
  kSchedDecide,      // Scheduler::pick from the connection's transmit loop
  kCcUpdate,         // congestion-controller hooks (ack increase, loss, RTO)
  kFaultDraw,        // fault-model should_drop / extra_delay per packet
  kRecorderEvent,    // FlightRecorder::record_event -> sink
  kRecorderDecision, // FlightRecorder::record_decision (aggregates + log)
  kMetricsRegister,  // MetricsRegistry instrument lookup/creation
  kSpecParse,        // Json::parse + scenario_from_json
  kWorldBuild,       // WorldBuilder::build — paths, links, recorder wiring
  kTrafficPlan,      // TrafficEngine::run planning (RNG forks, flow table)
  kCount
};
inline constexpr std::size_t kScopeCount = static_cast<std::size_t>(Scope::kCount);

// Stable wire name ("event.pop", ...) and subsystem grouping ("sim", ...)
// used by the ProfileReport schema. Both are string literals.
const char* scope_name(Scope s);
const char* scope_subsystem(Scope s);

// --- memory subsystems ------------------------------------------------------
// Coarser than Scope on purpose: allocations are charged to whatever tag the
// allocating thread carries, and the interesting split is "what kind of
// state is resident", not "which function allocated".
enum class MemSubsys : std::uint8_t {
  kOther,    // untagged (app payloads, queue growth mid-run, stdlib)
  kWorld,    // world construction: paths, links, muxes, variation traces
  kConn,     // connection + subflow state, per-flow app objects
  kEvents,   // event-queue slot arena and spilled callbacks
  kObs,      // recorder, metrics registry, trace sinks
  kTraffic,  // traffic-engine plan and flow table
  kSpec,     // JSON documents and ScenarioSpec resolution
  kCount
};
inline constexpr std::size_t kMemSubsysCount = static_cast<std::size_t>(MemSubsys::kCount);

const char* mem_subsys_name(MemSubsys s);

// --- merged counters --------------------------------------------------------

struct ScopeStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // inclusive
  std::uint64_t self_ns = 0;   // exclusive of nested instrumented scopes

  void merge(const ScopeStats& o) {
    count += o.count;
    total_ns += o.total_ns;
    self_ns += o.self_ns;
  }
  friend bool operator==(const ScopeStats&, const ScopeStats&) = default;
};

struct MemStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t bytes_freed = 0;
  std::uint64_t live_bytes = 0;        // at snapshot time (clamped at 0)
  std::uint64_t high_water_bytes = 0;  // max simultaneous live bytes
};

struct Snapshot {
  std::array<ScopeStats, kScopeCount> scopes{};
  std::array<MemStats, kMemSubsysCount> memory{};
  MemStats memory_total;       // process-wide (single high-water series)
  std::uint64_t threads = 0;   // accumulators merged
};

// True when the profiler is compiled in (-DMPS_PROF).
constexpr bool compiled() {
#ifdef MPS_PROF
  return true;
#else
  return false;
#endif
}

// Merges every thread's accumulator. With MPS_PROF off this is all zeros.
Snapshot snapshot();

// Zeroes all accumulators and memory counters (high-water restarts from the
// current live level). Call only while no other thread is inside a profiled
// scope. Frees of pre-reset allocations may underflow live byte counts;
// snapshot() clamps those at zero.
void reset();

#ifdef MPS_PROF

namespace internal {

struct Accumulator;  // prof.cpp
Accumulator& thread_accumulator();
std::uint64_t now_ns();
void scope_enter(Accumulator& a, Scope s, std::uint64_t t);
void scope_exit(Accumulator& a, std::uint64_t t);
MemSubsys mem_tag_swap(MemSubsys next);

}  // namespace internal

// RAII scope timer. Holds the thread accumulator pointer so the destructor
// does not re-derive the thread_local.
class ScopeTimer {
 public:
  explicit ScopeTimer(Scope s) : acc_(internal::thread_accumulator()) {
    internal::scope_enter(acc_, s, internal::now_ns());
  }
  ~ScopeTimer() { internal::scope_exit(acc_, internal::now_ns()); }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  internal::Accumulator& acc_;
};

// RAII memory tag: allocations on this thread are charged to `subsys` until
// the guard dies (restores the previous tag, so tags nest).
class MemScope {
 public:
  explicit MemScope(MemSubsys subsys) : prev_(internal::mem_tag_swap(subsys)) {}
  ~MemScope() { internal::mem_tag_swap(prev_); }
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

 private:
  MemSubsys prev_;
};

#define MPS_PROF_CONCAT2(a, b) a##b
#define MPS_PROF_CONCAT(a, b) MPS_PROF_CONCAT2(a, b)
#define MPS_PROF_SCOPE(id) \
  ::mps::prof::ScopeTimer MPS_PROF_CONCAT(mps_prof_scope_, __COUNTER__)(::mps::prof::Scope::id)
#define MPS_PROF_MEM_SCOPE(id)                             \
  ::mps::prof::MemScope MPS_PROF_CONCAT(mps_prof_mem_, __COUNTER__)( \
      ::mps::prof::MemSubsys::id)

#else  // !MPS_PROF

// Empty stand-ins so sizeof-based compile-out proofs have a subject; the
// macros themselves expand to nothing, so instrumented sites contain no code
// at all in default builds.
class ScopeTimer {
 public:
  explicit ScopeTimer(Scope) {}
};
class MemScope {
 public:
  explicit MemScope(MemSubsys) {}
};

#define MPS_PROF_SCOPE(id)
#define MPS_PROF_MEM_SCOPE(id)

#endif  // MPS_PROF

}  // namespace mps::prof
