// Metrics registry: named Counter/Gauge/Histogram instruments with
// per-connection / per-subflow / per-entity labels.
//
// Design constraints (see DESIGN.md "Observability"):
//  * Handles are plain pointers into registry-owned storage (a deque, so
//    addresses are stable); a default-constructed handle is a no-op. The
//    instrumented hot paths therefore cost one predictable branch when no
//    recorder is attached, and one add/store when one is.
//  * Instruments are created once at object construction (Subflow, Link,
//    Connection), never on the per-packet path.
//  * Gauges optionally keep their full history as a TimeSeries
//    (MetricsRegistry::set_keep_series), which is how the paper's CWND trace
//    figures are reproduced from the registry instead of bespoke collectors.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "trace/series.h"
#include "util/time.h"

namespace mps {

// Instrument identity beyond the name. `conn`/`subflow` are -1 when the
// instrument is not scoped to a connection/subflow; `entity` names
// non-connection objects (links).
struct MetricLabels {
  std::int64_t conn = -1;
  std::int64_t subflow = -1;
  std::string entity;

  friend bool operator==(const MetricLabels&, const MetricLabels&) = default;
};

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

// Log2-bucketed histogram; covers ~[2^-20, 2^43] with one bucket per octave,
// which is plenty for latencies in seconds, byte counts, and queue depths.
struct HistogramData {
  static constexpr int kBuckets = 64;
  static constexpr int kOffset = 20;  // bucket 0 holds values <= 2^-20

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void record(double v);
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  // Upper bucket bound containing quantile q (0..1]; exact min/max at the ends.
  double quantile(double q) const;
};

struct Instrument {
  std::string name;
  MetricLabels labels;
  InstrumentKind kind = InstrumentKind::kCounter;
  std::uint64_t count = 0;   // Counter value
  double value = 0.0;        // Gauge current value
  HistogramData hist;        // Histogram state
  TimeSeries series;         // Gauge history when keep_series was on
  bool keep_series = false;
};

class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (inst_ != nullptr) inst_->count += n;
  }
  std::uint64_t value() const { return inst_ != nullptr ? inst_->count : 0; }
  bool attached() const { return inst_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(Instrument* inst) : inst_(inst) {}
  Instrument* inst_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void set(TimePoint t, double v) {
    if (inst_ == nullptr) return;
    inst_->value = v;
    if (inst_->keep_series) inst_->series.add(t, v);
  }
  double value() const { return inst_ != nullptr ? inst_->value : 0.0; }
  bool attached() const { return inst_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(Instrument* inst) : inst_(inst) {}
  Instrument* inst_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  void record(double v) {
    if (inst_ != nullptr) inst_->hist.record(v);
  }
  std::uint64_t count() const { return inst_ != nullptr ? inst_->hist.count : 0; }
  double sum() const { return inst_ != nullptr ? inst_->hist.sum : 0.0; }
  bool attached() const { return inst_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(Instrument* inst) : inst_(inst) {}
  Instrument* inst_ = nullptr;
};

class MetricsRegistry {
 public:
  // Creating an instrument that already exists (same name + labels + kind)
  // returns a handle to the existing storage, so several owners may share a
  // counter.
  Counter counter(std::string_view name, MetricLabels labels = {});
  Gauge gauge(std::string_view name, MetricLabels labels = {});
  Histogram histogram(std::string_view name, MetricLabels labels = {});

  // Gauges created after this call record their full history.
  void set_keep_series(bool keep) { keep_series_ = keep; }
  bool keep_series() const { return keep_series_; }

  const std::deque<Instrument>& instruments() const { return instruments_; }
  const Instrument* find(std::string_view name, const MetricLabels& labels) const;

  // --- snapshot-and-fork support (exp/snapshot.h) ---------------------------
  // Wholesale copy of `src`'s instruments. Seeds a fork's registry *before*
  // its model objects are constructed: get_or_create then resolves each
  // (name, labels, kind) to the copied storage, so handles land on
  // instruments holding the source's data, index-for-index.
  void clone_from(const MetricsRegistry& src) {
    instruments_ = src.instruments_;
    keep_series_ = src.keep_series_;
  }
  // Re-copies every instrument's data (count, value, histogram, series) from
  // `src` by index, undoing mutations done during fork-time construction
  // (e.g. Subflow's constructor publishing its initial cwnd). Registries
  // must be isomorphic — same instruments in the same order — which holds
  // when the fork repeated the source's construction sequence.
  void restore_data_from(const MetricsRegistry& src);
  // True when `other` holds the same instruments (name/labels/kind, in
  // order) with identical recorded data — the fork-vs-scratch equivalence
  // check the snapshot tests assert.
  bool data_equals(const MetricsRegistry& other) const;
  // Gauge history for an instrument, or nullptr when absent/not kept.
  const TimeSeries* series(std::string_view name, const MetricLabels& labels) const;
  // Sum of a counter over all label sets (e.g. total retransmits).
  std::uint64_t total(std::string_view name) const;

 private:
  Instrument& get_or_create(std::string_view name, InstrumentKind kind, MetricLabels labels);

  std::deque<Instrument> instruments_;  // deque: stable addresses for handles
  bool keep_series_ = false;
};

}  // namespace mps
