// Scheduler decision records: what a scheduler chose (a pick of one subflow,
// or a deliberate wait) and the quantities that drove it. For ECF these are
// exactly the Algorithm 1 terms, so a decision can be replayed through
// ecf_decide() and checked against what the live scheduler did — that is the
// contract tests/obs_test.cpp enforces.
//
// Plain data only: obs/ must not depend on mptcp/, so the scheduler base
// class includes this header, not the other way round.
#pragma once

#include <cstdint>

namespace mps {

struct SchedDecision {
  enum class Kind : std::uint8_t {
    kPick,  // `subflow` carries the next segment
    kWait,  // all subflows declined on purpose (ECF/BLEST/DAPS waiting)
  };

  const char* scheduler = "";
  Kind kind = Kind::kPick;
  std::int64_t conn = -1;
  std::int64_t subflow = -1;  // picked subflow id; for kWait, the subflow waited for

  // ECF Algorithm 1 inputs, captured when the scheduler evaluated the
  // inequalities (has_ecf_terms). Replaying ecf_decide(k_packets, cwnd_f,
  // ssthresh_f, cwnd_s, ssthresh_s, rtt_f_s, rtt_s_s, delta_s, waiting,
  // beta, staged_f, staged_s) must reproduce `kind`.
  bool has_ecf_terms = false;
  double k_packets = 0.0;  // unscheduled packets (ECF's k)
  double cwnd_f = 0.0, ssthresh_f = 0.0;
  double cwnd_s = 0.0, ssthresh_s = 0.0;
  double rtt_f_s = 0.0, rtt_s_s = 0.0;  // seconds
  double delta_s = 0.0;                 // max(sigma_f, sigma_s), seconds
  double staged_f = 0.0, staged_s = 0.0;
  bool waiting = false;  // hysteresis state *before* this decision
  double beta = 0.0;
  double n_rounds = 0.0;  // 1 + transfer_rounds(k + staged_f, cwnd_f, ssthresh_f)
};

}  // namespace mps
