#include "obs/prof.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

namespace mps::prof {

namespace {

struct ScopeInfo {
  const char* name;
  const char* subsystem;
};

// Indexed by Scope. Names are the ProfileReport wire schema — append-only.
constexpr std::array<ScopeInfo, kScopeCount> kScopeInfo = {{
    {"event.pop", "sim"},
    {"event.dispatch", "sim"},
    {"sched.decide", "sched"},
    {"cc.update", "tcp"},
    {"fault.draw", "fault"},
    {"recorder.event", "obs"},
    {"recorder.decision", "obs"},
    {"metrics.register", "obs"},
    {"spec.parse", "scenario"},
    {"world.build", "scenario"},
    {"traffic.plan", "traffic"},
}};

constexpr std::array<const char*, kMemSubsysCount> kMemSubsysNames = {
    "other", "world", "conn", "events", "obs", "traffic", "spec",
};

}  // namespace

const char* scope_name(Scope s) { return kScopeInfo[static_cast<std::size_t>(s)].name; }
const char* scope_subsystem(Scope s) {
  return kScopeInfo[static_cast<std::size_t>(s)].subsystem;
}
const char* mem_subsys_name(MemSubsys s) {
  return kMemSubsysNames[static_cast<std::size_t>(s)];
}

#ifdef MPS_PROF

// ---------------------------------------------------------------------------
// Scoped timers: per-thread accumulators, merged under a registry mutex.
// ---------------------------------------------------------------------------

namespace internal {

struct Accumulator {
  std::array<ScopeStats, kScopeCount> scopes{};

  // Explicit frame stack for self-time: on exit, a frame's elapsed time is
  // added to its parent's child_ns so the parent's self time excludes it.
  // Fixed depth: realistic nesting is <= 4 (dispatch -> decide -> recorder);
  // deeper frames are still timed inclusively but no longer split out.
  struct Frame {
    Scope scope;
    std::uint64_t start_ns;
    std::uint64_t child_ns;
  };
  static constexpr int kMaxDepth = 32;
  std::array<Frame, kMaxDepth> stack;
  int depth = 0;
  int overflow = 0;  // frames ignored because the stack was full
};

namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Accumulator>> threads;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: threads may outlive main's statics
  return *r;
}

}  // namespace

Accumulator& thread_accumulator() {
  thread_local Accumulator* acc = [] {
    auto owned = std::make_unique<Accumulator>();
    Accumulator* raw = owned.get();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.threads.push_back(std::move(owned));
    return raw;
  }();
  return *acc;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void scope_enter(Accumulator& a, Scope s, std::uint64_t t) {
  if (a.depth >= Accumulator::kMaxDepth) {
    ++a.overflow;
    return;
  }
  a.stack[a.depth++] = Accumulator::Frame{s, t, 0};
}

void scope_exit(Accumulator& a, std::uint64_t t) {
  if (a.overflow > 0) {
    --a.overflow;
    return;
  }
  const Accumulator::Frame frame = a.stack[--a.depth];
  const std::uint64_t elapsed = t - frame.start_ns;
  ScopeStats& st = a.scopes[static_cast<std::size_t>(frame.scope)];
  ++st.count;
  st.total_ns += elapsed;
  st.self_ns += elapsed > frame.child_ns ? elapsed - frame.child_ns : 0;
  if (a.depth > 0) a.stack[a.depth - 1].child_ns += elapsed;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Memory accounting: global operator new/delete replacement. Every heap
// allocation carries a 16-byte header recording its size and the subsystem
// tag the allocating thread held, so the matching delete credits the right
// subsystem no matter which thread frees.
// ---------------------------------------------------------------------------

namespace {

struct alignas(16) AllocHeader {
  std::uint64_t size;
  std::uint32_t subsys;
  std::uint32_t magic;
};
static_assert(sizeof(AllocHeader) == 16);
constexpr std::uint32_t kAllocMagic = 0x4d505331;  // "MPS1"

// Zero-initialized at constant-initialization time: safe to touch from
// allocations that run before any dynamic initializer.
struct MemCounters {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> bytes_allocated{0};
  std::atomic<std::uint64_t> bytes_freed{0};
  std::atomic<std::int64_t> live{0};
  std::atomic<std::int64_t> high_water{0};
};
constinit MemCounters g_mem[kMemSubsysCount];
constinit MemCounters g_mem_total;

thread_local MemSubsys t_mem_tag = MemSubsys::kOther;

void mem_charge(MemCounters& c, std::uint64_t n) {
  c.allocs.fetch_add(1, std::memory_order_relaxed);
  c.bytes_allocated.fetch_add(n, std::memory_order_relaxed);
  const std::int64_t live =
      c.live.fetch_add(static_cast<std::int64_t>(n), std::memory_order_relaxed) +
      static_cast<std::int64_t>(n);
  std::int64_t hw = c.high_water.load(std::memory_order_relaxed);
  while (live > hw &&
         !c.high_water.compare_exchange_weak(hw, live, std::memory_order_relaxed)) {
  }
}

void mem_credit(MemCounters& c, std::uint64_t n) {
  c.frees.fetch_add(1, std::memory_order_relaxed);
  c.bytes_freed.fetch_add(n, std::memory_order_relaxed);
  c.live.fetch_sub(static_cast<std::int64_t>(n), std::memory_order_relaxed);
}

void* prof_alloc(std::size_t n, std::size_t align) {
  // Returned pointer must keep the caller's alignment; the header occupies
  // the `pad` bytes just below it. pad is a multiple of `align` (both are
  // powers of two, pad >= 16 >= sizeof(AllocHeader)).
  const std::size_t pad = align > sizeof(AllocHeader) ? align : sizeof(AllocHeader);
  void* raw = align > alignof(std::max_align_t)
                  ? std::aligned_alloc(align, (pad + n + align - 1) / align * align)
                  : std::malloc(pad + n);
  if (raw == nullptr) return nullptr;
  char* user = static_cast<char*>(raw) + pad;
  auto* hdr = reinterpret_cast<AllocHeader*>(user - sizeof(AllocHeader));
  const auto tag = static_cast<std::uint32_t>(t_mem_tag);
  hdr->size = n;
  hdr->subsys = tag;
  hdr->magic = kAllocMagic;
  mem_charge(g_mem[tag], n);
  mem_charge(g_mem_total, n);
  return user;
}

void prof_free(void* p, std::size_t align) {
  if (p == nullptr) return;
  const std::size_t pad = align > sizeof(AllocHeader) ? align : sizeof(AllocHeader);
  char* user = static_cast<char*>(p);
  auto* hdr = reinterpret_cast<AllocHeader*>(user - sizeof(AllocHeader));
  if (hdr->magic != kAllocMagic || hdr->subsys >= kMemSubsysCount) {
    // Not one of ours (foreign allocator handed across a boundary); pass
    // through unaccounted rather than corrupting the heap.
    std::free(p);
    return;
  }
  hdr->magic = 0;
  mem_credit(g_mem[hdr->subsys], hdr->size);
  mem_credit(g_mem_total, hdr->size);
  std::free(user - pad);
}

MemStats mem_snapshot_of(const MemCounters& c) {
  MemStats m;
  m.allocs = c.allocs.load(std::memory_order_relaxed);
  m.frees = c.frees.load(std::memory_order_relaxed);
  m.bytes_allocated = c.bytes_allocated.load(std::memory_order_relaxed);
  m.bytes_freed = c.bytes_freed.load(std::memory_order_relaxed);
  const std::int64_t live = c.live.load(std::memory_order_relaxed);
  const std::int64_t hw = c.high_water.load(std::memory_order_relaxed);
  m.live_bytes = live > 0 ? static_cast<std::uint64_t>(live) : 0;
  m.high_water_bytes = hw > 0 ? static_cast<std::uint64_t>(hw) : 0;
  return m;
}

void mem_reset(MemCounters& c) {
  c.allocs.store(0, std::memory_order_relaxed);
  c.frees.store(0, std::memory_order_relaxed);
  c.bytes_allocated.store(0, std::memory_order_relaxed);
  c.bytes_freed.store(0, std::memory_order_relaxed);
  c.live.store(0, std::memory_order_relaxed);
  c.high_water.store(0, std::memory_order_relaxed);
}

}  // namespace

MemSubsys internal::mem_tag_swap(MemSubsys next) {
  const MemSubsys prev = t_mem_tag;
  t_mem_tag = next;
  return prev;
}

Snapshot snapshot() {
  Snapshot snap;
  internal::Registry& r = internal::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  snap.threads = r.threads.size();
  for (const auto& acc : r.threads) {
    for (std::size_t i = 0; i < kScopeCount; ++i) snap.scopes[i].merge(acc->scopes[i]);
  }
  for (std::size_t i = 0; i < kMemSubsysCount; ++i) snap.memory[i] = mem_snapshot_of(g_mem[i]);
  snap.memory_total = mem_snapshot_of(g_mem_total);
  return snap;
}

void reset() {
  internal::Registry& r = internal::registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& acc : r.threads) acc->scopes = {};
  for (std::size_t i = 0; i < kMemSubsysCount; ++i) mem_reset(g_mem[i]);
  mem_reset(g_mem_total);
}

#else  // !MPS_PROF

Snapshot snapshot() { return Snapshot{}; }
void reset() {}

#endif  // MPS_PROF

}  // namespace mps::prof

// ---------------------------------------------------------------------------
// Global allocation operators (MPS_PROF builds only). Defined at namespace
// scope outside mps:: as the standard requires.
// ---------------------------------------------------------------------------
#ifdef MPS_PROF

namespace {
using mps::prof::prof_alloc;  // NOLINT: anonymous-namespace helpers above
using mps::prof::prof_free;
}  // namespace

void* operator new(std::size_t n) {
  void* p = prof_alloc(n, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return prof_alloc(n, alignof(std::max_align_t));
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return prof_alloc(n, alignof(std::max_align_t));
}
void* operator new(std::size_t n, std::align_val_t al) {
  void* p = prof_alloc(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }
void* operator new(std::size_t n, std::align_val_t al, const std::nothrow_t&) noexcept {
  return prof_alloc(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al, const std::nothrow_t&) noexcept {
  return prof_alloc(n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { prof_free(p, alignof(std::max_align_t)); }
void operator delete[](void* p) noexcept { prof_free(p, alignof(std::max_align_t)); }
void operator delete(void* p, std::size_t) noexcept { prof_free(p, alignof(std::max_align_t)); }
void operator delete[](void* p, std::size_t) noexcept {
  prof_free(p, alignof(std::max_align_t));
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  prof_free(p, alignof(std::max_align_t));
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  prof_free(p, alignof(std::max_align_t));
}
void operator delete(void* p, std::align_val_t al) noexcept {
  prof_free(p, static_cast<std::size_t>(al));
}
void operator delete[](void* p, std::align_val_t al) noexcept {
  prof_free(p, static_cast<std::size_t>(al));
}
void operator delete(void* p, std::size_t, std::align_val_t al) noexcept {
  prof_free(p, static_cast<std::size_t>(al));
}
void operator delete[](void* p, std::size_t, std::align_val_t al) noexcept {
  prof_free(p, static_cast<std::size_t>(al));
}
void operator delete(void* p, std::align_val_t al, const std::nothrow_t&) noexcept {
  prof_free(p, static_cast<std::size_t>(al));
}
void operator delete[](void* p, std::align_val_t al, const std::nothrow_t&) noexcept {
  prof_free(p, static_cast<std::size_t>(al));
}

#endif  // MPS_PROF
