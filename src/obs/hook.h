// Multi-listener dispatch for stack trace hooks.
//
// The original single-slot `std::function` hooks meant that two observers of
// the same signal (e.g. a CwndTracer and the flight recorder) silently
// clobbered each other. `Hook` keeps an ordered listener list; `add` returns
// an id the owner uses to detach, so observers with shorter lifetimes than
// the observed object can unregister safely.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace mps {

template <typename... Args>
class Hook {
 public:
  using Fn = std::function<void(Args...)>;
  using Id = std::size_t;
  static constexpr Id kInvalidId = static_cast<Id>(-1);

  // Registers a listener; listeners fire in registration order.
  Id add(Fn fn) {
    listeners_.push_back(Listener{next_id_, std::move(fn)});
    return next_id_++;
  }

  // Detaches a listener. Safe to call with an already-removed id.
  void remove(Id id) {
    for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
      if (it->id == id) {
        listeners_.erase(it);
        return;
      }
    }
  }

  // Compatibility with the previous single-slot `std::function` interface:
  // assignment replaces all listeners, operator bool tests for any.
  Hook& operator=(Fn fn) {
    listeners_.clear();
    if (fn) add(std::move(fn));
    return *this;
  }
  explicit operator bool() const { return !listeners_.empty(); }
  bool empty() const { return listeners_.empty(); }
  std::size_t size() const { return listeners_.size(); }

  // Dispatch. Listeners must not add/remove listeners of this hook while it
  // fires.
  void operator()(Args... args) const {
    for (const Listener& l : listeners_) l.fn(args...);
  }

 private:
  struct Listener {
    Id id;
    Fn fn;
  };
  std::vector<Listener> listeners_;
  Id next_id_ = 0;
};

}  // namespace mps
