#include "obs/recorder.h"

#include <cstdio>

namespace mps {

void FlightRecorder::record_decision(TimePoint t, const SchedDecision& d) {
  MPS_PROF_SCOPE(kRecorderDecision);
  DecisionCounts& c = decision_counts_[{std::string(d.scheduler), d.conn}];
  if (d.kind == SchedDecision::Kind::kPick) {
    ++c.picks;
    ++c.picks_by_subflow[d.subflow];
  } else {
    ++c.waits;
  }

  if (keep_decisions_) decisions_.push_back(TimedDecision{t, d});

  if (sink_ != nullptr) {
    const EventType type = d.kind == SchedDecision::Kind::kPick ? EventType::kSchedPick
                                                                : EventType::kSchedWait;
    if (d.has_ecf_terms) {
      record_event(t, type, d.conn, d.subflow,
                   {{"sched", d.scheduler},
                    {"k", d.k_packets},
                    {"cwnd_f", d.cwnd_f},
                    {"ssthresh_f", d.ssthresh_f},
                    {"cwnd_s", d.cwnd_s},
                    {"ssthresh_s", d.ssthresh_s},
                    {"rtt_f", d.rtt_f_s},
                    {"rtt_s", d.rtt_s_s},
                    {"delta", d.delta_s},
                    {"staged_f", d.staged_f},
                    {"staged_s", d.staged_s},
                    {"waiting", d.waiting},
                    {"beta", d.beta},
                    {"n_rounds", d.n_rounds}});
    } else {
      record_event(t, type, d.conn, d.subflow, {{"sched", d.scheduler}});
    }
  }
}

std::uint64_t FlightRecorder::total_picks() const {
  std::uint64_t n = 0;
  for (const auto& [key, c] : decision_counts_) n += c.picks;
  return n;
}

std::uint64_t FlightRecorder::total_waits() const {
  std::uint64_t n = 0;
  for (const auto& [key, c] : decision_counts_) n += c.waits;
  return n;
}

namespace {

void print_labels(std::ostream& os, const MetricLabels& l) {
  char buf[96];
  if (!l.entity.empty()) {
    std::snprintf(buf, sizeof(buf), "%-14s", l.entity.c_str());
    os << buf;
    return;
  }
  std::string tag;
  if (l.conn >= 0) tag += "conn=" + std::to_string(l.conn);
  if (l.subflow >= 0) {
    if (!tag.empty()) tag += ' ';
    tag += "sf=" + std::to_string(l.subflow);
  }
  std::snprintf(buf, sizeof(buf), "%-14s", tag.c_str());
  os << buf;
}

}  // namespace

void FlightRecorder::summarize(std::ostream& os) const {
  char buf[160];
  os << "=== flight recorder summary ===\n";
  os << "events recorded: " << events_recorded_ << "\n";

  if (!decision_counts_.empty()) {
    os << "scheduler decisions:\n";
    for (const auto& [key, c] : decision_counts_) {
      os << "  " << key.first << " conn=" << key.second << ": picks=" << c.picks;
      if (!c.picks_by_subflow.empty()) {
        os << " [";
        bool first = true;
        for (const auto& [sf, n] : c.picks_by_subflow) {
          if (!first) os << ' ';
          os << "sf" << sf << '=' << n;
          first = false;
        }
        os << ']';
      }
      os << " waits=" << c.waits << "\n";
    }
  }

  bool header = false;
  for (const Instrument& inst : metrics_.instruments()) {
    if (inst.kind != InstrumentKind::kCounter || inst.count == 0) continue;
    if (!header) {
      os << "counters:\n";
      header = true;
    }
    std::snprintf(buf, sizeof(buf), "  %-32s ", inst.name.c_str());
    os << buf;
    print_labels(os, inst.labels);
    os << " = " << inst.count << "\n";
  }

  header = false;
  for (const Instrument& inst : metrics_.instruments()) {
    if (inst.kind != InstrumentKind::kGauge) continue;
    if (!header) {
      os << "gauges (final value):\n";
      header = true;
    }
    std::snprintf(buf, sizeof(buf), "  %-32s ", inst.name.c_str());
    os << buf;
    print_labels(os, inst.labels);
    std::snprintf(buf, sizeof(buf), " = %.3f", inst.value);
    os << buf << "\n";
  }

  header = false;
  for (const Instrument& inst : metrics_.instruments()) {
    if (inst.kind != InstrumentKind::kHistogram || inst.hist.count == 0) continue;
    if (!header) {
      os << "histograms:\n";
      header = true;
    }
    std::snprintf(buf, sizeof(buf), "  %-32s ", inst.name.c_str());
    os << buf;
    print_labels(os, inst.labels);
    std::snprintf(buf, sizeof(buf),
                  " n=%llu mean=%.3f p50<=%.3f p99<=%.3f max=%.3f",
                  static_cast<unsigned long long>(inst.hist.count), inst.hist.mean(),
                  inst.hist.quantile(0.50), inst.hist.quantile(0.99), inst.hist.max);
    os << buf << "\n";
  }
}

}  // namespace mps
