#include "core/scheduler_util.h"

namespace mps {

Subflow* fastest_established(Connection& conn) {
  Subflow* best = nullptr;
  for (Subflow* sf : conn.subflows()) {
    // schedulable(), not established(): a draining subflow can never accept
    // a segment, and treating it as the fast path would make ECF/BLEST wait
    // forever for window space that cannot open.
    if (!sf->schedulable()) continue;
    if (best == nullptr || sf->rtt_estimate() < best->rtt_estimate()) best = sf;
  }
  return best;
}

Subflow* fastest_available(Connection& conn, const Subflow* exclude) {
  Subflow* best = nullptr;
  for (Subflow* sf : conn.subflows()) {
    if (sf == exclude || !sf->can_accept()) continue;
    if (best == nullptr || sf->rtt_estimate() < best->rtt_estimate()) best = sf;
  }
  return best;
}

double unscheduled_packets(const Connection& conn) {
  return static_cast<double>(conn.unscheduled_bytes()) / static_cast<double>(conn.mss());
}

}  // namespace mps
