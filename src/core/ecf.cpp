#include "core/ecf.h"

#include <algorithm>

namespace mps {

double ecf_transfer_rounds(double k_packets, double cwnd, double ssthresh) {
  cwnd = std::max(cwnd, 1.0);
  ssthresh = std::max(ssthresh, 1.0);
  if (cwnd >= ssthresh) return k_packets / cwnd;  // paper's CA form
  double rounds = 0.0;
  double remaining = k_packets;
  double w = cwnd;
  while (remaining > 0.0 && rounds < 128.0) {
    remaining -= w;
    rounds += 1.0;
    w = w < ssthresh ? std::min(2.0 * w, ssthresh) : w + 1.0;
  }
  // Fractional last round.
  if (remaining < 0.0 && rounds >= 1.0) rounds += remaining / (w / 2.0 + 1e-9);
  return std::max(rounds, 0.0);
}

EcfDecision ecf_decide(double k_packets, double cwnd_f, double ssthresh_f, double cwnd_s,
                       double ssthresh_s, double rtt_f_s, double rtt_s_s, double delta_s,
                       bool waiting, double beta, double staged_f, double staged_s) {
  const double n = 1.0 + ecf_transfer_rounds(k_packets + staged_f, cwnd_f, ssthresh_f);
  const double waiting_factor = 1.0 + (waiting ? beta : 0.0);

  if (n * rtt_f_s < waiting_factor * (rtt_s_s + delta_s)) {
    // Waiting for x_f would complete the k packets sooner than starting on
    // x_s — provided x_s could not finish the backlog before x_f even gets
    // a chance (second inequality).
    if (ecf_transfer_rounds(k_packets + staged_s, cwnd_s, ssthresh_s) * rtt_s_s >=
        2.0 * rtt_f_s + delta_s) {
      return EcfDecision::kWait;
    }
    return EcfDecision::kUseSlowSmallK;  // Algorithm 1 leaves `waiting` untouched
  }
  return EcfDecision::kUseSlow;  // Algorithm 1 sets waiting = 0
}

Subflow* EcfScheduler::pick(Connection& conn) {
  Subflow* xf = fastest_established(conn);
  if (xf == nullptr) return nullptr;
  // Hysteresis is keyed to the subflow that armed it. If the fastest-subflow
  // identity changed since (RTT estimates crossed, or the armed subflow was
  // torn down), the pending beta bonus argues about a race that no longer
  // exists — drop it and decide fresh for the new pair.
  if (waiting_ && waiting_for_ != xf->id()) {
    waiting_ = false;
    waiting_for_ = kNoSubflow;
  }
  if (xf->can_accept()) {
    // The fastest subflow is available: use it (identical to the default
    // scheduler in this case; Connection records the pick).
    return xf;
  }

  // Fall back to what the default scheduler would select.
  Subflow* xs = fastest_available(conn, xf);
  if (xs == nullptr) return nullptr;

  const double delta =
      std::max(xf->rtt_stddev().to_seconds(), xs->rtt_stddev().to_seconds());
  const double mss = static_cast<double>(conn.mss());
  const double k = unscheduled_packets(conn);
  const double staged_f = static_cast<double>(xf->staged_bytes()) / mss;
  const double staged_s = static_cast<double>(xs->staged_bytes()) / mss;
  const bool was_waiting = waiting_;
  const EcfDecision decision = ecf_decide(
      k, xf->cwnd(), xf->ssthresh(), xs->cwnd(), xs->ssthresh(),
      xf->rtt_estimate().to_seconds(), xs->rtt_estimate().to_seconds(), delta, was_waiting,
      config_.beta, staged_f, staged_s);

  if (explain_enabled()) [[unlikely]] {
    note_ecf_decision(decision, *xf, *xs, k, delta, staged_f, staged_s, was_waiting);
  }

  switch (decision) {
    case EcfDecision::kWait:
      waiting_ = true;
      waiting_for_ = xf->id();
      return nullptr;  // wait for x_f
    case EcfDecision::kUseSlow:
      waiting_ = false;
      waiting_for_ = kNoSubflow;
      return xs;
    case EcfDecision::kUseSlowSmallK:
      return xs;  // `waiting` untouched, as in Algorithm 1
  }
  return xs;
}

void EcfScheduler::on_subflow_change(Connection& conn) {
  if (!waiting_) return;
  for (Subflow* sf : conn.subflows()) {
    if (sf->id() == waiting_for_ && sf->schedulable()) return;
  }
  // The subflow the hysteresis was waiting for left the schedulable set.
  waiting_ = false;
  waiting_for_ = kNoSubflow;
}

MPS_SCHED_COLD void EcfScheduler::note_ecf_decision(EcfDecision decision, const Subflow& xf,
                                                    const Subflow& xs, double k, double delta,
                                                    double staged_f, double staged_s,
                                                    bool was_waiting) const {
  SchedDecision d;
  d.kind = decision == EcfDecision::kWait ? SchedDecision::Kind::kWait
                                          : SchedDecision::Kind::kPick;
  d.subflow = decision == EcfDecision::kWait ? static_cast<std::int64_t>(xf.id())
                                             : static_cast<std::int64_t>(xs.id());
  d.has_ecf_terms = true;
  d.k_packets = k;
  d.cwnd_f = xf.cwnd();
  d.ssthresh_f = xf.ssthresh();
  d.cwnd_s = xs.cwnd();
  d.ssthresh_s = xs.ssthresh();
  d.rtt_f_s = xf.rtt_estimate().to_seconds();
  d.rtt_s_s = xs.rtt_estimate().to_seconds();
  d.delta_s = delta;
  d.staged_f = staged_f;
  d.staged_s = staged_s;
  d.waiting = was_waiting;
  d.beta = config_.beta;
  d.n_rounds = 1.0 + ecf_transfer_rounds(k + staged_f, xf.cwnd(), xf.ssthresh());
  note_decision(d);
}

}  // namespace mps
