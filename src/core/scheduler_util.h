// Shared subflow-selection helpers used by ECF and the baseline schedulers.
#pragma once

#include "mptcp/connection.h"
#include "tcp/subflow.h"

namespace mps {

// Schedulable (established, not draining) subflow with the smallest RTT
// estimate (may be CWND-limited); nullptr if none qualify.
Subflow* fastest_established(Connection& conn);

// The default-scheduler choice: among subflows that can send now, the one
// with the smallest RTT estimate; nullptr if none can send.
Subflow* fastest_available(Connection& conn, const Subflow* exclude = nullptr);

// ECF's k: unscheduled packets waiting in the connection-level send buffer.
double unscheduled_packets(const Connection& conn);

}  // namespace mps
