// ECF — Earliest Completion First (the paper's contribution, Algorithm 1).
//
// When the fastest subflow x_f is CWND-limited and the default scheduler
// would fall back to a slower subflow x_s, ECF asks whether waiting for x_f
// finishes the k pending packets sooner than using x_s now:
//
//   (1 + k / CWND_f) * RTT_f  <  (1 + waiting * beta) * (RTT_s + delta)
//
// with delta = max(sigma_f, sigma_s) absorbing RTT/CWND variability, and a
// second guard that x_s really would not complete first:
//
//   (k / CWND_s) * RTT_s  >=  2 * RTT_f + delta.
//
// If both hold, ECF returns no subflow (waits for x_f) and sets the
// `waiting` hysteresis bit; the beta term then keeps the decision sticky
// until the inequality clearly flips, preventing rapid oscillation.
#pragma once

#include "core/scheduler_util.h"
#include "mptcp/scheduler.h"

namespace mps {

struct EcfConfig {
  // Hysteresis factor; the paper sets 0.25 throughout its evaluation and
  // reports other values behave similarly.
  double beta = 0.25;
};

// Estimated RTT-rounds to transfer k packets starting from `cwnd`,
// accounting for slow-start doubling up to `ssthresh` and +1/round beyond.
// With cwnd >= ssthresh (congestion avoidance) this reduces to ~k / cwnd,
// the paper's Algorithm 1 term. The paper notes its CA assumption "can
// cause incorrect estimations ... during the slow-start phase"; in the
// ON-OFF streaming pattern the fast subflow restarts from the initial
// window at every chunk, so the projection matters and we model it.
double ecf_transfer_rounds(double k_packets, double cwnd, double ssthresh);

// The pure decision at the heart of Algorithm 1, exposed for direct testing.
// Inputs are the quantities the scheduler reads from the stack; `waiting` is
// the hysteresis state, which the caller updates from the returned decision.
enum class EcfDecision {
  kUseSlow,          // backlog large: using x_s shortens completion; clear `waiting`
  kUseSlowSmallK,    // waiting favoured but x_s would finish first anyway; keep `waiting`
  kWait,             // decline x_s and wait for x_f; set `waiting`
};
// `staged_f`/`staged_s` are the segments already committed to each subflow's
// send queue but not yet transmitted: they drain ahead of any new assignment
// and therefore extend both completion estimates. (In the kernel, segments
// are only handed over against CWND space, so this term is zero there; the
// 0.89-style send queues this library models make it material.)
EcfDecision ecf_decide(double k_packets, double cwnd_f, double ssthresh_f, double cwnd_s,
                       double ssthresh_s, double rtt_f_s, double rtt_s_s, double delta_s,
                       bool waiting, double beta, double staged_f = 0.0, double staged_s = 0.0);

class EcfScheduler final : public Scheduler {
 public:
  explicit EcfScheduler(EcfConfig config = {}) : config_(config) {}

  Subflow* pick(Connection& conn) override;
  const char* name() const override { return "ecf"; }
  void reset() override {
    waiting_ = false;
    waiting_for_ = kNoSubflow;
  }

  bool waiting() const { return waiting_; }
  // Id of the fast subflow the armed hysteresis waits for; kNoSubflow when
  // not waiting.
  static constexpr std::uint32_t kNoSubflow = UINT32_MAX;
  std::uint32_t waiting_for() const { return waiting_for_; }

  // The beta bonus is an argument about one specific (x_f, x_s) race; when
  // the fast-subflow identity changes — RTT estimates crossing, or the
  // armed subflow leaving in a handover — the stuck bit would hand the
  // bonus to a pair that never earned it. pick() clears it on identity
  // change, and a subflow-set change forces the same re-check.
  void on_subflow_change(Connection& conn) override;

  void restore_from(const Scheduler& src) override {
    Scheduler::restore_from(src);
    waiting_ = static_cast<const EcfScheduler&>(src).waiting_;
    waiting_for_ = static_cast<const EcfScheduler&>(src).waiting_for_;
  }

 private:
  // Outlined Explain record carrying the full Algorithm 1 terms; cold so the
  // per-segment pick() path keeps its uninstrumented cost.
  void note_ecf_decision(EcfDecision decision, const Subflow& xf, const Subflow& xs, double k,
                         double delta, double staged_f, double staged_s, bool was_waiting) const;

  EcfConfig config_;
  bool waiting_ = false;
  std::uint32_t waiting_for_ = kNoSubflow;  // subflow id that armed waiting_
};

}  // namespace mps
