// Fairness and utilization metrics for competing-traffic runs.
//
// Jain's fairness index J(x) = (sum x)^2 / (n * sum x^2) for non-negative
// per-flow allocations x (goodputs here): 1.0 when every flow gets the same
// share, 1/n when one flow gets everything. Degenerate inputs are defined so
// harness code never special-cases them: an empty or all-zero allocation is
// vacuously fair (1.0) — there is no flow being starved relative to another.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace mps {

inline double jain_index(const std::vector<double>& x) {
  if (x.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero: vacuously fair
  return (sum * sum) / (static_cast<double>(x.size()) * sum_sq);
}

struct FairnessSummary {
  std::size_t flows = 0;
  double jain = 1.0;
  double total = 0.0;  // sum of allocations
  double min = 0.0;
  double max = 0.0;
};

inline FairnessSummary fairness_summary(const std::vector<double>& x) {
  FairnessSummary s;
  s.flows = x.size();
  s.jain = jain_index(x);
  for (double v : x) s.total += v;
  if (!x.empty()) {
    s.min = *std::min_element(x.begin(), x.end());
    s.max = *std::max_element(x.begin(), x.end());
  }
  return s;
}

// Fraction of the aggregate nominal capacity the flows actually carried.
// Both arguments in the same unit (Mbps here); capacity <= 0 yields 0.
inline double link_utilization(double total_goodput_mbps, double capacity_mbps) {
  if (capacity_mbps <= 0.0) return 0.0;
  return total_goodput_mbps / capacity_mbps;
}

}  // namespace mps
