// TrafficEngine: the competing-traffic workload — N concurrent MPTCP flows
// sharing the world's bottleneck links, with deterministic Poisson
// connection churn and single-path TCP cross traffic.
//
// Determinism contract (the reason serial == parallel stays bit-exact):
// every random quantity is pre-drawn before the simulation starts, from a
// fixed fork tree. The engine forks one master RNG from the world's RNG at
// run() time; the master's first fork drives the Poisson arrival process,
// then each planned flow gets its own fork, in plan order (initial MPTCP
// flows, churn arrivals, cross groups). A flow's size is the only draw made
// from its fork today; cross flows draw nothing but still own a fork so
// future per-flow randomness cannot shift any other flow's stream.
//
// Lifecycle: each flow is a Connection registered with the per-link Mux (and
// the flight recorder, when one is attached). Sized MPTCP flows run an
// HttpExchange GET and are destroyed via a deferred post when the response
// completes; packets still in flight for a destroyed conn_id are counted by
// the Mux orphan counters — the RST-less teardown the churn property tests
// pin down. Cross flows are bulk senders pinned to one path; they never
// complete and are torn down at the end of the run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "scenario/spec.h"
#include "scenario/world.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace mps {

class HttpExchange;

struct TrafficFlowRecord {
  std::uint32_t conn_id = 0;
  bool cross = false;
  std::int64_t cross_path = -1;  // path index for cross flows
  std::uint64_t bytes = 0;       // requested size; 0 for open-ended cross flows
  double arrival_s = 0.0;        // relative to the start of the run
  bool started = false;
  bool completed = false;
  double completion_s = 0.0;     // flow completion time (FCT), when completed
  std::uint64_t delivered = 0;   // in-order bytes the app received
  std::uint64_t retransmits = 0;
  std::uint64_t rto_events = 0;
  // delivered over [arrival, completion] (or the end of the run).
  double goodput_mbps = 0.0;
};

struct TrafficResult {
  std::vector<TrafficFlowRecord> flows;  // plan order
  std::size_t started = 0;    // flows that began sending
  std::size_t completed = 0;  // sized MPTCP flows that finished
  std::size_t churned = 0;    // Poisson arrivals planned
  double duration_s = 0.0;
  double aggregate_goodput_mbps = 0.0;  // all delivered bytes over the run
  double mptcp_goodput_mbps = 0.0;
  double cross_goodput_mbps = 0.0;
  double capacity_mbps = 0.0;  // sum of nominal downlink rates (spec literals)
  double utilization = 0.0;    // aggregate_goodput / capacity
  double jain = 1.0;           // Jain's index over started MPTCP flows
  Samples completion_s;        // FCT samples of completed MPTCP flows
  std::uint64_t orphans = 0;   // down + up mux orphan packets
};

class TrafficEngine {
 public:
  // `world` must have been built from `spec` (paths resolved, seed applied);
  // the engine reads spec.traffic and spec.scheduler.
  TrafficEngine(World& world, const ScenarioSpec& spec);
  ~TrafficEngine();

  TrafficEngine(const TrafficEngine&) = delete;
  TrafficEngine& operator=(const TrafficEngine&) = delete;

  // Fired right after a flow's connection is created / just before it is
  // destroyed. The stress harness uses these to watch/unwatch the
  // InvariantChecker (which holds raw Connection pointers).
  std::function<void(Connection&)> on_flow_start;
  std::function<void(Connection&)> on_flow_end;

  // Optional periodic callback while the run advances (e.g. check_now
  // slices for trace-disabled builds). 0 = off.
  double tick_s = 0.0;
  std::function<void()> on_tick;

  // Kernel accounting out-param and progress heartbeat (sim/simulator.h);
  // both borrowed, both optional. run() attaches the heartbeat for the
  // duration of the simulation and adds this run's events into telemetry.
  RunTelemetry* telemetry = nullptr;
  const HeartbeatConfig* heartbeat = nullptr;

  // Plans the flow population, runs the simulation for traffic.duration_s,
  // tears everything down, and reports. Call once.
  TrafficResult run();

  // --- staged driving (exp/snapshot.h) --------------------------------------
  // run() is start() + run_until(end_time()) + finish() + collect(), split so
  // a run can be paused at a snapshot point and forked. Set tick_s/on_tick/
  // telemetry/heartbeat before start().
  void start();                 // plan + schedule arrivals and ticks
  TimePoint end_time() const { return end_; }
  void finish();                // tear down surviving flows
  TrafficResult collect() const;

  // Copies flow records and rebuilds the live connections/exchanges from
  // `src` (same spec, over a world already restored from src's): twin
  // connections are minted under the source conn_ids, pending arrival /
  // teardown / tick events are adopted by EventId and rebound to this
  // engine. on_flow_start/on_flow_end fire for live flows so watchers can
  // re-attach.
  void restore_from(const TrafficEngine& src);

 private:
  struct Flow;

  void start_flow(std::size_t idx);
  void finish_flow(std::size_t idx, double fct_s);
  void end_flow(std::size_t idx);  // record stats, fire hook, destroy
  void schedule_tick(TimePoint at, TimePoint end);
  void install_done(std::size_t idx);  // http completion -> finish_flow

  World& world_;
  const ScenarioSpec& spec_;
  TimePoint base_;
  TimePoint end_;
  std::vector<std::unique_ptr<Flow>> flows_;
  std::size_t active_ = 0;
  std::size_t churned_ = 0;
  bool ran_ = false;
  // Pending on_tick chain event (0 = none), with the arguments of the
  // schedule_tick call that created it so a fork can rebind it.
  EventId tick_event_ = 0;
  TimePoint tick_at_;
  TimePoint tick_end_;

  // Aggregate instruments (no-ops when the world has no recorder).
  Counter flows_started_;
  Counter flows_completed_;
  Gauge active_flows_;
  Histogram completion_hist_;
  Histogram goodput_hist_;
};

// Convenience driver: builds the world from the spec (via WorldBuilder) and
// runs the engine. `recorder` is borrowed and wins over spec.record;
// `telemetry`/`heartbeat` are forwarded to the engine (both optional).
TrafficResult run_traffic(const ScenarioSpec& spec, FlightRecorder* recorder = nullptr,
                          RunTelemetry* telemetry = nullptr,
                          const HeartbeatConfig* heartbeat = nullptr);

// One bench_fairness grid cell, shared by the bench, the determinism tests,
// and the stress churn profile: `flows` competing MPTCP flows on the
// wifi(8)/lte(10) testbed, Poisson churn at flows/4 per second, exponential
// flow sizes, and one single-path cross flow on the LTE bottleneck.
ScenarioSpec fairness_cell_spec(const std::string& scheduler, int flows, double duration_s,
                                std::int64_t flow_bytes, std::uint64_t seed = 7);

}  // namespace mps
