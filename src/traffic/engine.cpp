#include "traffic/engine.h"

#include <cmath>
#include <cstddef>

#include "app/http.h"
#include "obs/prof.h"
#include "obs/recorder.h"
#include "sched/registry.h"
#include "traffic/fairness.h"
#include "util/rng.h"

namespace mps {

struct TrafficEngine::Flow {
  TrafficFlowRecord rec;
  std::unique_ptr<Connection> conn;
  std::unique_ptr<HttpExchange> http;
  // Pending engine events for this flow (0 = none): the scheduled arrival
  // and the deferred post-completion teardown. Tracked so the destructor can
  // cancel them — their closures capture the engine — and forks can rebind.
  EventId arrival_event = 0;
  EventId end_event = 0;
};

TrafficEngine::TrafficEngine(World& world, const ScenarioSpec& spec)
    : world_(world), spec_(spec) {
  if (FlightRecorder* rec = world_.sim().recorder()) {
    MetricsRegistry& m = rec->metrics();
    flows_started_ = m.counter("traffic.flows_started");
    flows_completed_ = m.counter("traffic.flows_completed");
    active_flows_ = m.gauge("traffic.active_flows");
    completion_hist_ = m.histogram("traffic.completion_s");
    goodput_hist_ = m.histogram("traffic.goodput_mbps");
  }
}

TrafficEngine::~TrafficEngine() {
  // Cancel every pending event whose closure captures this engine: an engine
  // destroyed mid-run (harness teardown, a fork discarded early) must not
  // leave arrival / deferred-teardown / tick callbacks live in the queue.
  for (auto& f : flows_) {
    if (f->arrival_event != 0) world_.sim().cancel(f->arrival_event);
    if (f->end_event != 0) world_.sim().cancel(f->end_event);
  }
  if (tick_event_ != 0) world_.sim().cancel(tick_event_);
}

namespace {

std::uint64_t draw_size(Rng& rng, const TrafficSpec& t) {
  const double mean = static_cast<double>(t.flow_bytes);
  double v = mean;
  if (t.size_dist == "exponential") {
    v = rng.exponential(mean);
  } else if (t.size_dist == "pareto") {
    // Scale xm so the distribution's mean is flow_bytes: E = xm*a/(a-1).
    const double xm = mean * (t.pareto_alpha - 1.0) / t.pareto_alpha;
    v = rng.pareto(xm, t.pareto_alpha);
  }
  const double r = std::llround(v);
  return r < 1.0 ? 1 : static_cast<std::uint64_t>(r);
}

}  // namespace

void TrafficEngine::start_flow(std::size_t idx) {
  MPS_PROF_MEM_SCOPE(kConn);
  Flow& f = *flows_[idx];
  f.arrival_event = 0;  // the arrival event just fired
  if (f.rec.cross) {
    f.conn = world_.make_connection_on({static_cast<std::size_t>(f.rec.cross_path)},
                                       scheduler_factory("default"));
  } else {
    f.conn = world_.make_connection(scheduler_factory(spec_.scheduler));
  }
  f.rec.conn_id = f.conn->config().conn_id;
  f.rec.started = true;
  ++active_;
  flows_started_.inc();
  active_flows_.set(world_.sim().now(), static_cast<double>(active_));
  if (on_flow_start) on_flow_start(*f.conn);

  if (f.rec.cross) {
    // Open-ended bulk sender: keep the send buffer full for the whole run.
    Connection* c = f.conn.get();
    c->on_sendable = [c] { c->send(1u << 30); };
    c->send(1u << 30);
  } else {
    f.http = std::make_unique<HttpExchange>(world_.sim(), *f.conn, world_.request_delay());
    f.http->get(f.rec.bytes, [this, idx](const ObjectResult& r) {
      const double fct = (r.completed - base_).to_seconds() - flows_[idx]->rec.arrival_s;
      finish_flow(idx, fct);
    });
  }
}

void TrafficEngine::install_done(std::size_t idx) {
  flows_[idx]->http->set_outstanding_done(0, [this, idx](const ObjectResult& r) {
    const double fct = (r.completed - base_).to_seconds() - flows_[idx]->rec.arrival_s;
    finish_flow(idx, fct);
  });
}

void TrafficEngine::finish_flow(std::size_t idx, double fct_s) {
  Flow& f = *flows_[idx];
  f.rec.completed = true;
  f.rec.completion_s = fct_s;
  flows_completed_.inc();
  completion_hist_.record(fct_s);
  // Deferred teardown: destroying the connection from inside its own
  // delivery callback chain would free the executing closure. By the time
  // the post fires, the stack has unwound; packets still in flight for the
  // dead conn_id become mux orphans.
  f.end_event = world_.sim().post([this, idx] { end_flow(idx); });
}

void TrafficEngine::end_flow(std::size_t idx) {
  Flow& f = *flows_[idx];
  // Cancel the deferred post when entered from teardown; when entered from
  // the post itself the id is stale (the slot was freed on fire) and cancel
  // is a generation-checked no-op.
  if (f.end_event != 0) {
    world_.sim().cancel(f.end_event);
    f.end_event = 0;
  }
  if (f.conn == nullptr) return;
  f.rec.delivered = f.conn->delivered_bytes();
  for (Subflow* sf : f.conn->subflows()) {
    f.rec.retransmits += sf->stats().retransmits;
    f.rec.rto_events += sf->stats().rto_events;
  }
  const double now_s = (world_.sim().now() - base_).to_seconds();
  const double end_s = f.rec.completed ? f.rec.arrival_s + f.rec.completion_s : now_s;
  const double elapsed = end_s - f.rec.arrival_s;
  f.rec.goodput_mbps =
      elapsed > 0.0 ? static_cast<double>(f.rec.delivered) * 8.0 / 1e6 / elapsed : 0.0;
  goodput_hist_.record(f.rec.goodput_mbps);
  if (FlightRecorder* rec = world_.sim().recorder()) {
    MetricLabels labels;
    labels.conn = f.rec.conn_id;
    rec->metrics().gauge("flow.goodput_mbps", labels).set(world_.sim().now(),
                                                          f.rec.goodput_mbps);
  }
  if (on_flow_end) on_flow_end(*f.conn);
  f.http.reset();
  f.conn.reset();
  --active_;
  active_flows_.set(world_.sim().now(), static_cast<double>(active_));
}

void TrafficEngine::schedule_tick(TimePoint at, TimePoint end) {
  if (at >= end) {
    tick_event_ = 0;
    return;
  }
  tick_at_ = at;
  tick_end_ = end;
  tick_event_ = world_.sim().at(at, [this, at, end] {
    if (on_tick) on_tick();
    schedule_tick(at + Duration::from_seconds(tick_s), end);
  });
}

TrafficResult TrafficEngine::run() {
  start();
  if (heartbeat != nullptr && heartbeat->enabled()) {
    world_.sim().set_heartbeat(heartbeat->interval_s, heartbeat->fn);
  }
  const std::uint64_t events_before = world_.sim().events_processed();
  world_.sim().run_until(end_);
  if (world_.sim().heartbeat_attached()) world_.sim().set_heartbeat(0.0, nullptr);
  if (telemetry != nullptr) {
    telemetry->events += world_.sim().events_processed() - events_before;
    telemetry->sim_s += (world_.sim().now() - base_).to_seconds();
  }
  ran_ = true;
  finish();
  return collect();
}

void TrafficEngine::start() {
  const TrafficSpec& t = spec_.traffic;
  base_ = world_.sim().now();
  end_ = base_ + Duration::from_seconds(t.duration_s);

  // --- plan: every random draw happens here, before any sim event ---------
  churned_ = 0;
  {
    MPS_PROF_SCOPE(kTrafficPlan);
    MPS_PROF_MEM_SCOPE(kTraffic);
    Rng master = world_.rng().fork();
    Rng arrivals = master.fork();

    struct Plan {
      bool cross = false;
      std::int64_t path = -1;
      double arrival_s = 0.0;
    };
    std::vector<Plan> plan;
    for (std::int64_t i = 0; i < t.flows; ++i) plan.push_back(Plan{false, -1, 0.0});

    if (t.arrival_rate_per_s > 0.0) {
      double at = 0.0;
      while (static_cast<std::int64_t>(churned_) < t.max_arrivals) {
        at += arrivals.exponential(1.0 / t.arrival_rate_per_s);
        if (at >= t.duration_s) break;
        plan.push_back(Plan{false, -1, at});
        ++churned_;
      }
    }
    for (const CrossTrafficSpec& x : t.cross) {
      for (std::int64_t i = 0; i < x.flows; ++i) {
        plan.push_back(Plan{true, x.path, x.start_s});
      }
    }

    flows_.clear();
    flows_.reserve(plan.size());
    for (const Plan& p : plan) {
      auto f = std::make_unique<Flow>();
      // Fork unconditionally (cross flows too) so the draw sequence is
      // independent of each flow's kind; the fork is consumed here rather
      // than stored per flow.
      Rng flow_rng = master.fork();
      f->rec.cross = p.cross;
      f->rec.cross_path = p.path;
      f->rec.arrival_s = p.arrival_s;
      if (!p.cross) f->rec.bytes = draw_size(flow_rng, t);
      flows_.push_back(std::move(f));
    }
  }

  // --- schedule arrivals and ticks ------------------------------------------
  for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
    const double arr = flows_[idx]->rec.arrival_s;
    if (arr >= t.duration_s) continue;  // e.g. a cross group starting too late
    flows_[idx]->arrival_event =
        world_.sim().at(base_ + Duration::from_seconds(arr), [this, idx] { start_flow(idx); });
  }
  if (on_tick && tick_s > 0.0) schedule_tick(base_ + Duration::from_seconds(tick_s), end_);
}

void TrafficEngine::finish() {
  for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
    if (flows_[idx]->conn != nullptr) end_flow(idx);
  }
}

TrafficResult TrafficEngine::collect() const {
  const TrafficSpec& t = spec_.traffic;
  TrafficResult res;
  res.duration_s = t.duration_s;
  res.churned = churned_;
  std::vector<double> mptcp_goodputs;
  std::uint64_t delivered_mptcp = 0;
  std::uint64_t delivered_cross = 0;
  for (const auto& f : flows_) {
    res.flows.push_back(f->rec);
    if (!f->rec.started) continue;
    ++res.started;
    if (f->rec.cross) {
      delivered_cross += f->rec.delivered;
    } else {
      delivered_mptcp += f->rec.delivered;
      mptcp_goodputs.push_back(f->rec.goodput_mbps);
      if (f->rec.completed) {
        ++res.completed;
        res.completion_s.add(f->rec.completion_s);
      }
    }
  }
  for (const PathSpec& p : spec_.paths) res.capacity_mbps += p.rate_mbps;
  res.mptcp_goodput_mbps = static_cast<double>(delivered_mptcp) * 8.0 / 1e6 / t.duration_s;
  res.cross_goodput_mbps = static_cast<double>(delivered_cross) * 8.0 / 1e6 / t.duration_s;
  res.aggregate_goodput_mbps = res.mptcp_goodput_mbps + res.cross_goodput_mbps;
  res.utilization = link_utilization(res.aggregate_goodput_mbps, res.capacity_mbps);
  res.jain = jain_index(mptcp_goodputs);
  res.orphans = world_.down_mux().orphan_count() + world_.up_mux().orphan_count();
  return res;
}

void TrafficEngine::restore_from(const TrafficEngine& src) {
  // World::restore_from already ran, so the world's next_conn_id matches the
  // source; minting twins below clobbers it, so put it back when done.
  const std::uint32_t saved_next_id = world_.next_conn_id();
  base_ = src.base_;
  end_ = src.end_;
  active_ = src.active_;
  churned_ = src.churned_;
  ran_ = src.ran_;
  flows_.clear();
  flows_.reserve(src.flows_.size());
  for (const auto& s : src.flows_) {
    auto f = std::make_unique<Flow>();
    f->rec = s->rec;
    flows_.push_back(std::move(f));
  }
  for (std::size_t idx = 0; idx < flows_.size(); ++idx) {
    const Flow& s = *src.flows_[idx];
    Flow& f = *flows_[idx];
    if (s.conn != nullptr) {
      world_.set_next_conn_id(s.conn->config().conn_id);
      if (f.rec.cross) {
        f.conn = world_.make_connection_on({static_cast<std::size_t>(f.rec.cross_path)},
                                           scheduler_factory("default"));
        Connection* c = f.conn.get();
        c->on_sendable = [c] { c->send(1u << 30); };
      } else {
        f.conn = world_.make_connection(scheduler_factory(spec_.scheduler));
        f.http = std::make_unique<HttpExchange>(world_.sim(), *f.conn, world_.request_delay());
      }
      f.conn->restore_from(*s.conn);
      if (f.http != nullptr) {
        f.http->restore_from(*s.http);
        if (f.http->outstanding() > 0) install_done(idx);
      }
      if (on_flow_start) on_flow_start(*f.conn);
    }
    if (s.arrival_event != 0) {
      f.arrival_event = s.arrival_event;
      world_.sim().rebind(f.arrival_event, [this, idx] { start_flow(idx); });
    }
    if (s.end_event != 0) {
      f.end_event = s.end_event;
      world_.sim().rebind(f.end_event, [this, idx] { end_flow(idx); });
    }
  }
  if (src.tick_event_ != 0) {
    tick_at_ = src.tick_at_;
    tick_end_ = src.tick_end_;
    tick_event_ = src.tick_event_;
    const TimePoint at = tick_at_;
    const TimePoint end = tick_end_;
    world_.sim().rebind(tick_event_, [this, at, end] {
      if (on_tick) on_tick();
      schedule_tick(at + Duration::from_seconds(tick_s), end);
    });
  }
  world_.set_next_conn_id(saved_next_id);
}

ScenarioSpec fairness_cell_spec(const std::string& scheduler, int flows, double duration_s,
                                std::int64_t flow_bytes, std::uint64_t seed) {
  ScenarioSpec s;
  s.name = "fairness-cell";
  s.paths = {wifi_path(8.0), lte_path(10.0)};
  s.scheduler = scheduler;
  s.traffic.enabled = true;
  s.traffic.flows = flows;
  s.traffic.arrival_rate_per_s = static_cast<double>(flows) / 4.0;
  s.traffic.max_arrivals = 256;
  s.traffic.flow_bytes = flow_bytes;
  s.traffic.size_dist = "exponential";
  s.traffic.duration_s = duration_s;
  s.traffic.cross = {CrossTrafficSpec{1, 1, 0.0}};
  s.seed = seed;
  return s;
}

TrafficResult run_traffic(const ScenarioSpec& spec, FlightRecorder* recorder,
                          RunTelemetry* telemetry, const HeartbeatConfig* heartbeat) {
  WorldBuilder builder(spec);
  std::unique_ptr<World> world = builder.build(recorder);
  TrafficEngine engine(*world, builder.spec());
  engine.telemetry = telemetry;
  engine.heartbeat = heartbeat;
  return engine.run();
}

}  // namespace mps
