// Pooled slab allocator for churned per-flow protocol state.
//
// The traffic engine creates and destroys a Connection (plus its Subflows
// and SubflowReceivers) for every arrival; at 100k+ flows that is millions
// of same-sized global-heap round trips, each paying allocator locking and
// scattering flow state across the heap. SlabPool carves fixed-size blocks
// out of large slabs and recycles them through a LIFO free list, so steady-
// state churn reuses hot, cache-resident slots and never touches the global
// allocator.
//
// Connection/Subflow/SubflowReceiver opt in with class-level operator
// new/delete forwarding to arena_allocate<T>() / arena_deallocate<T>() (one
// shared pool per type, sized exactly to the type). Slabs themselves come
// from ::operator new, so MPS_PROF's memory accounting still attributes the
// bytes to the subsystem that allocated the first block of each slab.
//
// Recycling would normally blind AddressSanitizer to use-after-free on dead
// flows; under ASan the pool poisons every free-listed block and unpoisons
// on reuse, so a stale Connection* dereference still faults the sanitizer
// suite (tests/traffic arena tests rely on this).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__) && __has_include(<sanitizer/asan_interface.h>)
#include <sanitizer/asan_interface.h>
#define MPS_ARENA_POISON(ptr, size) ASAN_POISON_MEMORY_REGION(ptr, size)
#define MPS_ARENA_UNPOISON(ptr, size) ASAN_UNPOISON_MEMORY_REGION(ptr, size)
#else
#define MPS_ARENA_POISON(ptr, size) ((void)0)
#define MPS_ARENA_UNPOISON(ptr, size) ((void)0)
#endif

namespace mps {

class SlabPool {
 public:
  struct Stats {
    std::uint64_t allocated = 0;    // blocks handed out in total
    std::uint64_t reused = 0;       // of those, served from the free list
    std::uint64_t outstanding = 0;  // live blocks right now
    std::uint64_t slabs = 0;        // slabs carved so far
  };

  SlabPool(std::size_t block_size, std::size_t block_align,
           std::size_t blocks_per_slab = 64)
      : block_size_(round_up(block_size, block_align)),
        block_align_(block_align),
        blocks_per_slab_(blocks_per_slab) {
    assert(block_size_ > 0 && blocks_per_slab_ > 0);
  }

  ~SlabPool() {
    for (void* slab : slabs_) {
      MPS_ARENA_UNPOISON(slab, block_size_ * blocks_per_slab_);
      ::operator delete(slab, std::align_val_t(block_align_));
    }
  }

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  void* allocate() {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.allocated;
    ++stats_.outstanding;
    if (!free_.empty()) {
      ++stats_.reused;
      void* p = free_.back();
      free_.pop_back();
      MPS_ARENA_UNPOISON(p, block_size_);
      return p;
    }
    return carve();
  }

  void deallocate(void* p) {
    std::lock_guard<std::mutex> lock(mu_);
    assert(stats_.outstanding > 0);
    --stats_.outstanding;
    MPS_ARENA_POISON(p, block_size_);
    free_.push_back(p);
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  std::size_t block_size() const { return block_size_; }

 private:
  static std::size_t round_up(std::size_t n, std::size_t align) {
    return (n + align - 1) / align * align;
  }

  void* carve() {
    char* slab = static_cast<char*>(
        ::operator new(block_size_ * blocks_per_slab_, std::align_val_t(block_align_)));
    slabs_.push_back(slab);
    ++stats_.slabs;
    // Hand the first block out; the rest join the free list (poisoned).
    free_.reserve(free_.size() + blocks_per_slab_ - 1);
    for (std::size_t i = blocks_per_slab_; i-- > 1;) {
      void* block = slab + i * block_size_;
      MPS_ARENA_POISON(block, block_size_);
      free_.push_back(block);
    }
    return slab;
  }

  const std::size_t block_size_;
  const std::size_t block_align_;
  const std::size_t blocks_per_slab_;

  // One pool instance per type is shared by every world, and sweep workers
  // run worlds on separate threads — churn is rare relative to packet
  // events, so a plain mutex is cheap and keeps the TSan suite clean.
  mutable std::mutex mu_;
  std::vector<void*> slabs_;
  std::vector<void*> free_;
  Stats stats_;
};

// The process-wide pool for type T (function-local static: one instance
// across all translation units).
template <typename T>
SlabPool& slab_pool_for() {
  static SlabPool pool(sizeof(T), alignof(T));
  return pool;
}

// Class-level operator new/delete bodies. The size check routes any
// unexpected request (a hypothetical derived class; the pooled types are
// final so this is defensive) to the global heap.
template <typename T>
void* arena_allocate(std::size_t size) {
  if (size == sizeof(T)) return slab_pool_for<T>().allocate();
  return ::operator new(size);
}

template <typename T>
void arena_deallocate(void* p, std::size_t size) {
  if (p == nullptr) return;
  if (size == sizeof(T)) {
    slab_pool_for<T>().deallocate(p);
    return;
  }
  ::operator delete(p);
}

}  // namespace mps
