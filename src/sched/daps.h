// DAPS — Delay-Aware Packet Scheduling (Kuhn, Lochin, Mifdaoui, Sarwar,
// Mehani, Boreli, IEEE ICC 2014).
//
// DAPS pre-computes a transmission schedule from the subflows' RTT ratio
// and CWNDs: over one period (the largest RTT), subflow i is planned
// cwnd_i * rtt_max / rtt_i segment slots, interleaved by expected departure
// time — traffic "inversely proportional to RTT" in the ECF paper's words.
// The plan is then followed strictly: if the planned subflow is momentarily
// CWND-limited, DAPS waits for it rather than substituting another path.
//
// Both properties the ECF paper criticizes follow from this design: the
// schedule keeps feeding the slow subflow its proportional share no matter
// how little data remains in the send buffer, and a stale RTT estimate
// locks in a bad plan until the period rolls over.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scheduler_util.h"
#include "mptcp/scheduler.h"

namespace mps {

class DapsScheduler final : public Scheduler {
 public:
  Subflow* pick(Connection& conn) override;
  const char* name() const override { return "daps"; }
  void reset() override {
    plan_.clear();
    pos_ = 0;
  }

  // Exposed for tests: remaining planned slots.
  std::size_t plan_remaining() const { return plan_.size() - pos_; }

  // A subflow joined, started draining, or was finalized: the departure
  // plan's slot mix (and possibly its subflow ids) is stale — drop it and
  // re-plan from the surviving subflows at the next pick. Keeping the old
  // plan would strictly wait on a subflow that can no longer accept.
  void on_subflow_change(Connection& conn) override {
    static_cast<void>(conn);
    plan_.clear();
    pos_ = 0;
  }

  void restore_from(const Scheduler& src) override {
    Scheduler::restore_from(src);
    const auto& other = static_cast<const DapsScheduler&>(src);
    plan_ = other.plan_;
    pos_ = other.pos_;
  }

 private:
  struct Slot {
    double departure;  // expected departure offset within the period
    std::uint32_t subflow_id;
  };

  void rebuild_plan(Connection& conn);

  std::vector<std::uint32_t> plan_;  // subflow ids in planned departure order
  std::size_t pos_ = 0;
  std::vector<Slot> slots_scratch_;  // reused across plan rebuilds
};

}  // namespace mps
