#include "sched/daps.h"

#include <algorithm>
#include <cmath>

namespace mps {

namespace {
constexpr std::size_t kMaxPlanSlots = 512;
}

void DapsScheduler::rebuild_plan(Connection& conn) {
  plan_.clear();
  pos_ = 0;

  std::vector<Slot>& slots = slots_scratch_;
  slots.clear();

  double rtt_max = 0.0;
  for (Subflow* sf : conn.subflows()) {
    if (!sf->schedulable()) continue;
    rtt_max = std::max(rtt_max, sf->rtt_estimate().to_seconds());
  }
  if (rtt_max <= 0.0) return;

  for (Subflow* sf : conn.subflows()) {
    if (!sf->schedulable()) continue;
    const double rtt = std::max(sf->rtt_estimate().to_seconds(), 1e-6);
    const double cwnd = std::max(sf->cwnd(), 1.0);
    // Slots this subflow can serve during one period of rtt_max.
    const std::size_t n = static_cast<std::size_t>(
        std::min(std::round(cwnd * rtt_max / rtt), 256.0));
    const double spacing = rtt / cwnd;  // one segment per cwnd share of RTT
    for (std::size_t j = 0; j < std::max<std::size_t>(n, 1); ++j) {
      slots.push_back({static_cast<double>(j) * spacing, sf->id()});
      if (slots.size() >= kMaxPlanSlots) break;
    }
    if (slots.size() >= kMaxPlanSlots) break;
  }

  std::stable_sort(slots.begin(), slots.end(),
                   [](const Slot& a, const Slot& b) { return a.departure < b.departure; });
  plan_.reserve(slots.size());
  for (const Slot& s : slots) plan_.push_back(s.subflow_id);
}

Subflow* DapsScheduler::pick(Connection& conn) {
  if (pos_ >= plan_.size()) rebuild_plan(conn);
  if (plan_.empty()) return fastest_available(conn);

  auto& subflows = conn.subflows();
  while (pos_ < plan_.size()) {
    const std::uint32_t id = plan_[pos_];
    // Resolve the planned id by search: the live list compacts under
    // mid-connection teardown, so ids and indices diverge — indexing by id
    // would hand the slot to a different subflow (or read past the end).
    Subflow* sf = nullptr;
    for (Subflow* candidate : subflows) {
      if (candidate->id() == id) {
        sf = candidate;
        break;
      }
    }
    if (sf == nullptr || !sf->schedulable()) {
      ++pos_;  // subflow vanished or is draining; skip its slots
      continue;
    }
    if (sf->can_accept()) {
      ++pos_;
      return sf;  // pick recorded by Connection
    }
    // Strict plan adherence: wait for the planned subflow's CWND space.
    if (explain_enabled()) [[unlikely]] {
      note_wait(sf->id());
    }
    return nullptr;
  }
  return nullptr;
}

}  // namespace mps
