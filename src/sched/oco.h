// OCO — online-convex-optimization gradient-weight scheduler, modeled on
// the learned path-weighting loop of mpquic-fec's PathScheduler (see
// SNIPPETS.md Snippet 1): each path carries a weight, updated online by a
// multiplicative-weights (exponentiated-gradient) step against an observed
// per-path cost, and segments are spread by a deterministic weighted
// deficit round instead of argmin-RTT.
//
// Every `update_period` picks, each live path's cost is refreshed:
//
//   cost_i = (rtt_i / min_rtt - 1) + loss_weight * loss_ewma_i
//   w_i   *= exp(-eta * cost_i);  floor at min_weight / n;  renormalize
//
// where loss_ewma_i tracks the path's recent retransmit fraction (delta
// retransmits over delta transmissions since the last update). The deficit
// round then credits every schedulable path by its weight and sends on the
// highest-credit path that can accept (ties toward the lowest id), so the
// long-run share of segments tracks the learned weights deterministically.
//
// Cross-path redundancy: in a loss-correlated regime — every live path's
// loss EWMA above `arm_threshold`, so no single path can be trusted with
// sole custody of a segment — the scheduler arms duplicate_to_all() and the
// connection mirrors each scheduled segment onto the other subflows
// (mpquic-fec reaches the same decision with its FEC/redundancy
// controller). The armed state disarms, with hysteresis, once some path's
// EWMA falls back below `disarm_threshold`.
//
// All learned state (weights, credits, activity baselines, the armed flag)
// is copied by restore_from(), and on_subflow_change() drops departed paths
// and renormalizes — the PR 8 fork and PR 9 churn contracts.
#pragma once

#include <cstdint>
#include <vector>

#include "mptcp/scheduler.h"

namespace mps {

struct OcoConfig {
  int update_period = 16;         // picks between weight updates
  double eta = 0.25;              // exponentiated-gradient step size
  double loss_weight = 4.0;       // cost units per unit loss fraction
  double min_weight = 0.05;       // aggregate exploration floor (split over n)
  double ewma_gain = 0.3;         // loss EWMA update gain
  double credit_cap = 4.0;        // deficit credit bound per path
  bool redundancy = true;         // allow arming duplicate_to_all()
  double arm_threshold = 0.02;    // every live path above this -> arm
  double disarm_threshold = 0.005;  // any live path below this -> disarm
};

class OcoScheduler final : public Scheduler {
 public:
  explicit OcoScheduler(OcoConfig config = {}) : config_(config) {}

  Subflow* pick(Connection& conn) override;
  const char* name() const override { return "oco"; }
  bool duplicate_to_all() const override { return armed_; }

  void reset() override {
    paths_.clear();
    picks_since_update_ = 0;
    armed_ = false;
  }

  // Membership changed: drop departed/draining paths, renormalize what
  // remains, and re-evaluate the redundancy regime (a single surviving path
  // has nothing to duplicate onto).
  void on_subflow_change(Connection& conn) override;

  void restore_from(const Scheduler& src) override {
    Scheduler::restore_from(src);
    const auto& other = static_cast<const OcoScheduler&>(src);
    paths_ = other.paths_;
    picks_since_update_ = other.picks_since_update_;
    armed_ = other.armed_;
  }

  // --- test/diagnostic inspection -------------------------------------------
  bool armed() const { return armed_; }
  double weight_of(std::uint32_t subflow_id) const;
  std::size_t tracked_paths() const { return paths_.size(); }

 private:
  struct PathState {
    std::uint32_t id = 0;
    double weight = 1.0;
    double credit = 0.0;
    double loss_ewma = 0.0;
    // Activity baselines for the per-update deltas.
    std::uint64_t last_sent = 0;
    std::uint64_t last_retx = 0;
  };

  // Adds states for newly schedulable subflows (id order, deterministic).
  void sync_paths(Connection& conn);
  void update_weights(Connection& conn);
  void normalize_weights();
  PathState* state_of(std::uint32_t id);

  OcoConfig config_;
  std::vector<PathState> paths_;  // id-ascending
  int picks_since_update_ = 0;
  bool armed_ = false;
};

}  // namespace mps
