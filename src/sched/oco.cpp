#include "sched/oco.h"

#include <algorithm>
#include <cmath>

#include "mptcp/connection.h"
#include "tcp/subflow.h"

namespace mps {

OcoScheduler::PathState* OcoScheduler::state_of(std::uint32_t id) {
  for (PathState& p : paths_) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

double OcoScheduler::weight_of(std::uint32_t subflow_id) const {
  for (const PathState& p : paths_) {
    if (p.id == subflow_id) return p.weight;
  }
  return 0.0;
}

void OcoScheduler::normalize_weights() {
  double sum = 0.0;
  for (const PathState& p : paths_) sum += p.weight;
  if (sum <= 0.0) {
    const double even = paths_.empty() ? 1.0 : 1.0 / static_cast<double>(paths_.size());
    for (PathState& p : paths_) p.weight = even;
    return;
  }
  for (PathState& p : paths_) p.weight /= sum;
}

void OcoScheduler::sync_paths(Connection& conn) {
  // The live list is id-ascending, so appending newcomers in iteration order
  // keeps paths_ id-ascending too (ids are never reused).
  bool added = false;
  for (Subflow* sf : conn.subflows()) {
    if (!sf->schedulable() || state_of(sf->id()) != nullptr) continue;
    PathState p;
    p.id = sf->id();
    p.weight = paths_.empty() ? 1.0 : 1.0 / static_cast<double>(paths_.size());
    p.last_sent = sf->stats().segments_sent;
    p.last_retx = sf->stats().retransmits;
    paths_.push_back(p);
    added = true;
  }
  if (added) {
    std::sort(paths_.begin(), paths_.end(),
              [](const PathState& a, const PathState& b) { return a.id < b.id; });
    normalize_weights();
  }
}

void OcoScheduler::on_subflow_change(Connection& conn) {
  // Keep only paths still present and not being torn down; learned weights
  // of the survivors are preserved and renormalized.
  std::vector<PathState> kept;
  kept.reserve(paths_.size());
  for (const PathState& p : paths_) {
    for (Subflow* sf : conn.subflows()) {
      if (sf->id() == p.id && !sf->draining()) {
        kept.push_back(p);
        break;
      }
    }
  }
  paths_ = std::move(kept);
  normalize_weights();
  if (paths_.size() < 2) armed_ = false;  // nothing left to duplicate onto
}

void OcoScheduler::update_weights(Connection& conn) {
  // Refresh per-path loss EWMAs and find the fastest live RTT.
  double min_rtt_s = 0.0;
  std::size_t live = 0;
  for (PathState& p : paths_) {
    Subflow* sf = nullptr;
    for (Subflow* cand : conn.subflows()) {
      if (cand->id() == p.id) {
        sf = cand;
        break;
      }
    }
    if (sf == nullptr || !sf->schedulable()) continue;
    const std::uint64_t sent = sf->stats().segments_sent;
    const std::uint64_t retx = sf->stats().retransmits;
    const std::uint64_t d_sent = sent - p.last_sent;
    const std::uint64_t d_retx = retx - p.last_retx;
    p.last_sent = sent;
    p.last_retx = retx;
    const std::uint64_t activity = d_sent + d_retx;
    if (activity > 0) {
      const double rate = static_cast<double>(d_retx) / static_cast<double>(activity);
      p.loss_ewma += config_.ewma_gain * (rate - p.loss_ewma);
    }
    const double rtt_s = sf->rtt_estimate().to_seconds();
    if (live == 0 || rtt_s < min_rtt_s) min_rtt_s = rtt_s;
    ++live;
  }
  if (live == 0) return;

  // Exponentiated-gradient step against the per-path cost, with an
  // exploration floor so a path can recover after its cost falls.
  const double floor = config_.min_weight / static_cast<double>(paths_.size());
  for (PathState& p : paths_) {
    Subflow* sf = nullptr;
    for (Subflow* cand : conn.subflows()) {
      if (cand->id() == p.id) {
        sf = cand;
        break;
      }
    }
    if (sf == nullptr || !sf->schedulable()) continue;
    const double rtt_s = sf->rtt_estimate().to_seconds();
    const double rtt_cost = min_rtt_s > 0.0 ? rtt_s / min_rtt_s - 1.0 : 0.0;
    const double cost = rtt_cost + config_.loss_weight * p.loss_ewma;
    p.weight = std::max(p.weight * std::exp(-config_.eta * cost), floor);
  }
  normalize_weights();

  // Redundancy regime: arm when at least two live paths all show material
  // loss (loss-correlated regime — no clean path to prefer); disarm once any
  // path's EWMA decays back under the lower hysteresis threshold.
  if (config_.redundancy && live >= 2) {
    bool all_lossy = true;
    bool any_clean = false;
    for (const PathState& p : paths_) {
      if (p.loss_ewma <= config_.arm_threshold) all_lossy = false;
      if (p.loss_ewma < config_.disarm_threshold) any_clean = true;
    }
    if (!armed_ && all_lossy) armed_ = true;
    if (armed_ && any_clean) armed_ = false;
  } else {
    armed_ = false;
  }
}

Subflow* OcoScheduler::pick(Connection& conn) {
  sync_paths(conn);
  if (paths_.empty()) return nullptr;

  if (++picks_since_update_ >= config_.update_period) {
    picks_since_update_ = 0;
    update_weights(conn);
  }

  // Weighted deficit round. Credits accrue only when some subflow could
  // actually take the segment, so an all-blocked stretch cannot bank
  // unbounded credit; the cap bounds what a long-blocked path can claim
  // back-to-back once it frees up.
  Subflow* best = nullptr;
  PathState* best_state = nullptr;
  bool any_accepting = false;
  for (Subflow* sf : conn.subflows()) {
    if (sf->can_accept()) {
      any_accepting = true;
      break;
    }
  }
  if (!any_accepting) return nullptr;

  for (PathState& p : paths_) {
    Subflow* sf = nullptr;
    for (Subflow* cand : conn.subflows()) {
      if (cand->id() == p.id) {
        sf = cand;
        break;
      }
    }
    if (sf == nullptr || !sf->schedulable()) continue;
    p.credit = std::min(p.credit + p.weight, config_.credit_cap);
    if (!sf->can_accept()) continue;
    if (best_state == nullptr || p.credit > best_state->credit) {
      best = sf;
      best_state = &p;
    }
  }
  if (best_state == nullptr) return nullptr;
  best_state->credit -= 1.0;
  return best;
}

}  // namespace mps
