// Redundant scheduler (mptcp.org `redundant`): every segment is transmitted
// on all subflows with window space; the meta receiver keeps whichever copy
// arrives first and drops the rest. Trades aggregate goodput for latency —
// out-of-order delay collapses because the fast path always carries a copy.
// Included as the classic latency-oriented baseline beyond the paper's set.
#pragma once

#include "core/scheduler_util.h"
#include "mptcp/scheduler.h"

namespace mps {

class RedundantScheduler final : public Scheduler {
 public:
  Subflow* pick(Connection& conn) override {
    // Primary copy rides the fastest available subflow; Connection
    // duplicates onto the remaining subflows (duplicate_to_all()).
    return fastest_available(conn);
  }
  bool duplicate_to_all() const override { return true; }
  const char* name() const override { return "redundant"; }
};

}  // namespace mps
