// QAware — cross-layer queue-aware scheduling (after Shailendra et al.,
// arXiv 1808.04390 / 1711.07565): pick the subflow whose next segment is
// expected to *drain* first, estimated from the NIC/device queue occupancy
// plus the path's RTT, instead of from RTT alone.
//
// For each subflow that can accept a segment the score is
//
//   wait  = (queue_depth + busy) * serialization_time(segment)   [device queue]
//   drain = wait + serialization_time(segment) + rtt_estimate / 2
//
// i.e. time for the segment to clear the local queue, serialize, and reach
// the receiver over the one-way (RTT/2) path. The smallest score wins; ties
// break toward the lowest subflow id (the live list is id-ascending).
//
// Oracle caveat: `Link::queue_depth()` is the simulator's ground-truth
// bottleneck occupancy. The real QAware reads the local NIC ring via
// cross-layer hooks — a *local* approximation — and cannot see the
// bottleneck queue when it sits deeper in the network, so this scheduler is
// an upper bound on what queue-awareness buys, not a kernel-faithful
// implementation (see DESIGN.md).
//
// QAware keeps no learned state: restore_from/on_subflow_change need only
// the base-class behavior, which makes it trivially fork- and churn-safe.
#pragma once

#include "mptcp/connection.h"
#include "mptcp/scheduler.h"
#include "net/packet.h"
#include "tcp/subflow.h"

namespace mps {

class QAwareScheduler final : public Scheduler {
 public:
  Subflow* pick(Connection& conn) override {
    Subflow* best = nullptr;
    double best_score = 0.0;
    for (Subflow* sf : conn.subflows()) {
      if (!sf->can_accept()) continue;
      const double score = drain_score(*sf, conn.mss());
      if (best == nullptr || score < best_score) {
        best = sf;
        best_score = score;
      }
    }
    return best;
  }

  const char* name() const override { return "qaware"; }

  // The pure per-subflow estimate, exposed for direct testing.
  static double drain_score(Subflow& sf, std::uint32_t mss) {
    const Link& down = sf.path().down();
    const double serialize_s =
        down.serialization_time(mss + kHeaderBytes).to_seconds();
    const double queued =
        static_cast<double>(down.queue_depth()) + (down.busy() ? 1.0 : 0.0);
    return (queued + 1.0) * serialize_s + sf.rtt_estimate().to_seconds() / 2.0;
  }
};

}  // namespace mps
