// Name-based scheduler factory used by benches, tests, and examples.
#pragma once

#include <string>
#include <vector>

#include "mptcp/scheduler.h"

namespace mps {

// Known names: "default" (min-RTT), "ecf", "blest", "daps", "rr", "single",
// "redundant", "qaware", "oco". "minrtt" is accepted as an alias of
// "default". Throws std::invalid_argument for unknown names, enumerating the
// registered names in the message.
SchedulerFactory scheduler_factory(const std::string& name);

// Every constructible canonical scheduler name (aliases excluded), in the
// order above. scheduler_factory() succeeds for exactly these plus aliases,
// and its unknown-name error lists exactly this set.
const std::vector<std::string>& scheduler_names();

// The four schedulers the paper compares (Section 5 ordering).
const std::vector<std::string>& paper_schedulers();

}  // namespace mps
