// Name-based scheduler factory used by benches, tests, and examples.
#pragma once

#include <string>
#include <vector>

#include "mptcp/scheduler.h"

namespace mps {

// Known names: "default" (min-RTT), "ecf", "blest", "daps", "rr", "single",
// "redundant".
// Throws std::invalid_argument for unknown names.
SchedulerFactory scheduler_factory(const std::string& name);

// The four schedulers the paper compares (Section 5 ordering).
const std::vector<std::string>& paper_schedulers();

}  // namespace mps
