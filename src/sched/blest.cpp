#include "sched/blest.h"

#include <algorithm>

namespace mps {

bool blest_would_block(double lambda, double cwnd_f, double rtt_f_s, double rtt_s_s,
                       double mss, double window_bytes, double meta_inflight_bytes,
                       double slow_inflight_bytes) {
  rtt_f_s = std::max(rtt_f_s, 1e-6);
  rtt_s_s = std::max(rtt_s_s, rtt_f_s);
  const double rounds = rtt_s_s / rtt_f_s;
  // Bytes the fast subflow could send while a slow-path segment is in
  // flight, assuming +1 segment growth per round.
  const double sent_f = rounds * (cwnd_f + (rounds - 1.0) / 2.0) * mss;
  const double space = window_bytes - meta_inflight_bytes;
  const double space_after = space - (slow_inflight_bytes + mss);
  return lambda * sent_f > space_after;
}

Subflow* BlestScheduler::pick(Connection& conn) {
  Subflow* xf = fastest_established(conn);
  if (xf == nullptr) return nullptr;
  if (xf->can_accept()) return xf;  // pick recorded by Connection

  Subflow* xs = fastest_available(conn, xf);
  if (xs == nullptr) return nullptr;

  // lambda adaptation: if the meta window stalled since the last decision,
  // our estimate was too permissive — grow lambda; otherwise decay it.
  const std::uint64_t stalls = conn.meta_stats().window_stalls;
  if (stalls > last_stalls_) {
    lambda_ = std::min(lambda_ * (1.0 + config_.lambda_step), config_.lambda_max);
  } else {
    lambda_ = std::max(lambda_ / (1.0 + config_.lambda_step / 8.0), config_.lambda_min);
  }
  last_stalls_ = stalls;

  // BLEST's |W| is the MPTCP connection-level send window, i.e. the peer's
  // advertised (auto-tuned) receive window — not the local send buffer.
  const double window = static_cast<double>(conn.send_window());
  const double mss = static_cast<double>(conn.mss());

  const bool blocked =
      blest_would_block(lambda_, xf->cwnd(), xf->rtt_estimate().to_seconds(),
                        xs->rtt_estimate().to_seconds(), mss, window,
                        static_cast<double>(conn.meta_inflight()),
                        static_cast<double>(xs->inflight_segments()) * mss);
  if (blocked) {
    // Deliberate wait for the fast subflow: only pick() knows this is not a
    // plain "everyone is CWND-limited" null, so it is recorded here.
    if (explain_enabled()) [[unlikely]] {
      note_wait(xf->id());
    }
    return nullptr;
  }
  return xs;
}

}  // namespace mps
