// Round-robin scheduler (mptcp.org `rr`): cycles through available subflows
// regardless of RTT. Included as an extra baseline and for tests.
#pragma once

#include "mptcp/scheduler.h"
#include "mptcp/connection.h"
#include "tcp/subflow.h"

namespace mps {

class RoundRobinScheduler final : public Scheduler {
 public:
  Subflow* pick(Connection& conn) override {
    auto& subflows = conn.subflows();
    const std::size_t n = subflows.size();
    for (std::size_t i = 0; i < n; ++i) {
      Subflow* sf = subflows[(next_ + i) % n];
      if (sf->can_accept()) {
        next_ = (sf->id() + 1) % n;
        return sf;
      }
    }
    return nullptr;
  }
  const char* name() const override { return "rr"; }
  void reset() override { next_ = 0; }

  void restore_from(const Scheduler& src) override {
    Scheduler::restore_from(src);
    next_ = static_cast<const RoundRobinScheduler&>(src).next_;
  }

 private:
  std::size_t next_ = 0;
};

}  // namespace mps
