// Round-robin scheduler (mptcp.org `rr`): cycles through available subflows
// regardless of RTT. Included as an extra baseline and for tests.
//
// The rotation cursor is the *id* of the last subflow picked, not an index
// into conn.subflows(): the live list compacts when a subflow is torn down
// mid-connection (mptcp/path_manager.h), so a stored index would skew onto
// a different subflow — or past the end — after churn. Ids are stable and
// ascending in the live list, which makes "first subflow with a larger id"
// the exact successor the old index cursor meant.
#pragma once

#include <cstdint>

#include "mptcp/scheduler.h"
#include "mptcp/connection.h"
#include "tcp/subflow.h"

namespace mps {

class RoundRobinScheduler final : public Scheduler {
 public:
  Subflow* pick(Connection& conn) override {
    auto& subflows = conn.subflows();
    const std::size_t n = subflows.size();
    std::size_t start = 0;
    while (start < n && last_id_ >= 0 &&
           subflows[start]->id() <= static_cast<std::uint32_t>(last_id_)) {
      ++start;
    }
    for (std::size_t i = 0; i < n; ++i) {
      Subflow* sf = subflows[(start + i) % n];
      if (sf->can_accept()) {
        last_id_ = sf->id();
        return sf;
      }
    }
    return nullptr;
  }
  const char* name() const override { return "rr"; }
  void reset() override { last_id_ = -1; }

  void restore_from(const Scheduler& src) override {
    Scheduler::restore_from(src);
    last_id_ = static_cast<const RoundRobinScheduler&>(src).last_id_;
  }

 private:
  std::int64_t last_id_ = -1;  // id of the last subflow picked; -1 = none yet
};

}  // namespace mps
