// BLEST — BLocking ESTimation-based scheduler (Ferlin, Alay, Mehani, Boreli,
// IFIP Networking 2016).
//
// When the fast subflow is CWND-limited, BLEST estimates whether occupying
// the meta send window with a segment on the slow subflow would block the
// fast subflow once it frees up: during one slow-path RTT the fast path
// could send roughly
//
//   X = rtt_s / rtt_f rounds,  sent_f = X * (CWND_f + (X - 1) / 2) * MSS
//
// bytes (CWND_f grows by one per round in congestion avoidance). If
// lambda * sent_f exceeds the free meta send-window space left after the
// slow transmission, BLEST skips the slow subflow and waits. lambda is
// adapted: scaled up whenever blocking happened anyway, decayed back toward
// one otherwise.
//
// Contrast with ECF (paper Section 5): the decision is driven by send-window
// *space*, not by the amount of data waiting in the send buffer, so BLEST
// keeps using the slow path when the window is large even if that leaves the
// fast path idle between application bursts.
#pragma once

#include "core/scheduler_util.h"
#include "mptcp/scheduler.h"

namespace mps {

// The pure blocking estimate, exposed for direct testing: true when sending
// one more segment on the slow subflow risks starving the fast one of meta
// send-window space during the slow RTT.
bool blest_would_block(double lambda, double cwnd_f, double rtt_f_s, double rtt_s_s,
                       double mss, double window_bytes, double meta_inflight_bytes,
                       double slow_inflight_bytes);

struct BlestConfig {
  double lambda_initial = 1.0;
  double lambda_step = 0.05;   // multiplicative adaptation per event
  double lambda_min = 1.0;
  double lambda_max = 3.0;
};

class BlestScheduler final : public Scheduler {
 public:
  explicit BlestScheduler(BlestConfig config = {})
      : config_(config), lambda_(config.lambda_initial) {}

  Subflow* pick(Connection& conn) override;
  const char* name() const override { return "blest"; }
  void reset() override {
    lambda_ = config_.lambda_initial;
    last_stalls_ = 0;
  }

  double lambda() const { return lambda_; }

  void restore_from(const Scheduler& src) override {
    Scheduler::restore_from(src);
    const auto& other = static_cast<const BlestScheduler&>(src);
    lambda_ = other.lambda_;
    last_stalls_ = other.last_stalls_;
  }

 private:
  BlestConfig config_;
  double lambda_;
  std::uint64_t last_stalls_ = 0;
};

}  // namespace mps
