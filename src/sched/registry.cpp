#include "sched/registry.h"

#include <stdexcept>

#include "core/ecf.h"
#include "sched/blest.h"
#include "sched/daps.h"
#include "sched/minrtt.h"
#include "sched/redundant.h"
#include "sched/roundrobin.h"
#include "sched/singlepath.h"

namespace mps {

SchedulerFactory scheduler_factory(const std::string& name) {
  if (name == "default" || name == "minrtt") {
    return [] { return std::make_unique<MinRttScheduler>(); };
  }
  if (name == "ecf") {
    return [] { return std::make_unique<EcfScheduler>(); };
  }
  if (name == "blest") {
    return [] { return std::make_unique<BlestScheduler>(); };
  }
  if (name == "daps") {
    return [] { return std::make_unique<DapsScheduler>(); };
  }
  if (name == "rr") {
    return [] { return std::make_unique<RoundRobinScheduler>(); };
  }
  if (name == "single") {
    return [] { return std::make_unique<SinglePathScheduler>(0); };
  }
  if (name == "redundant") {
    return [] { return std::make_unique<RedundantScheduler>(); };
  }
  throw std::invalid_argument("unknown scheduler: " + name);
}

const std::vector<std::string>& paper_schedulers() {
  static const std::vector<std::string> kNames = {"default", "ecf", "daps", "blest"};
  return kNames;
}

}  // namespace mps
