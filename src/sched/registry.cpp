#include "sched/registry.h"

#include <stdexcept>

#include "core/ecf.h"
#include "sched/blest.h"
#include "sched/daps.h"
#include "sched/minrtt.h"
#include "sched/oco.h"
#include "sched/qaware.h"
#include "sched/redundant.h"
#include "sched/roundrobin.h"
#include "sched/singlepath.h"

namespace mps {

SchedulerFactory scheduler_factory(const std::string& name) {
  if (name == "default" || name == "minrtt") {
    return [] { return std::make_unique<MinRttScheduler>(); };
  }
  if (name == "ecf") {
    return [] { return std::make_unique<EcfScheduler>(); };
  }
  if (name == "blest") {
    return [] { return std::make_unique<BlestScheduler>(); };
  }
  if (name == "daps") {
    return [] { return std::make_unique<DapsScheduler>(); };
  }
  if (name == "rr") {
    return [] { return std::make_unique<RoundRobinScheduler>(); };
  }
  if (name == "single") {
    return [] { return std::make_unique<SinglePathScheduler>(0); };
  }
  if (name == "redundant") {
    return [] { return std::make_unique<RedundantScheduler>(); };
  }
  if (name == "qaware") {
    return [] { return std::make_unique<QAwareScheduler>(); };
  }
  if (name == "oco") {
    return [] { return std::make_unique<OcoScheduler>(); };
  }
  // Enumerate the registered names so a typo in a spec or CLI flag reads as
  // "pick one of these" rather than a dead end (tests assert this list stays
  // in sync with the factory).
  std::string known;
  for (const std::string& n : scheduler_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown scheduler \"" + name + "\" (known: " + known + ")");
}

const std::vector<std::string>& scheduler_names() {
  static const std::vector<std::string> kNames = {"default", "ecf",    "blest",
                                                  "daps",    "rr",     "single",
                                                  "redundant", "qaware", "oco"};
  return kNames;
}

const std::vector<std::string>& paper_schedulers() {
  static const std::vector<std::string> kNames = {"default", "ecf", "daps", "blest"};
  return kNames;
}

}  // namespace mps
