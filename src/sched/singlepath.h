// Pins all traffic to one subflow; the single-path TCP baseline ("WiFi only"
// / "LTE only") used in examples and sanity tests.
//
// Under dynamic path management the pinned subflow can be torn down
// mid-connection. A single-path user survives a handover by reconnecting on
// whatever interface remains, so the scheduler mirrors that: when the pinned
// subflow is gone or draining, pick() fails over to the lowest-id
// schedulable subflow and re-pins there. (Lazy, in pick() rather than
// on_subflow_change(): during a break-before-make window the replacement
// subflow exists but is not yet established, and no change notification
// fires at establishment time.)
#pragma once

#include "mptcp/scheduler.h"
#include "mptcp/connection.h"
#include "tcp/subflow.h"

namespace mps {

class SinglePathScheduler final : public Scheduler {
 public:
  explicit SinglePathScheduler(std::uint32_t subflow_id = 0) : subflow_id_(subflow_id) {}

  Subflow* pick(Connection& conn) override {
    Subflow* pinned = nullptr;
    for (Subflow* sf : conn.subflows()) {
      if (sf->id() == subflow_id_) {
        pinned = sf;
        break;
      }
    }
    if (pinned == nullptr || pinned->draining()) {
      pinned = nullptr;
      for (Subflow* sf : conn.subflows()) {
        if (sf->schedulable()) {
          pinned = sf;
          subflow_id_ = sf->id();
          break;
        }
      }
    }
    return pinned != nullptr && pinned->can_accept() ? pinned : nullptr;
  }
  const char* name() const override { return "single"; }

  std::uint32_t pinned_id() const { return subflow_id_; }

  void restore_from(const Scheduler& src) override {
    Scheduler::restore_from(src);
    subflow_id_ = static_cast<const SinglePathScheduler&>(src).subflow_id_;
  }

 private:
  std::uint32_t subflow_id_;  // re-pinned on failover, so forks must copy it
};

}  // namespace mps
