// Pins all traffic to one subflow; the single-path TCP baseline ("WiFi only"
// / "LTE only") used in examples and sanity tests.
#pragma once

#include "mptcp/scheduler.h"
#include "mptcp/connection.h"
#include "tcp/subflow.h"

namespace mps {

class SinglePathScheduler final : public Scheduler {
 public:
  explicit SinglePathScheduler(std::uint32_t subflow_id = 0) : subflow_id_(subflow_id) {}

  Subflow* pick(Connection& conn) override {
    for (Subflow* sf : conn.subflows()) {
      if (sf->id() == subflow_id_) return sf->can_accept() ? sf : nullptr;
    }
    return nullptr;
  }
  const char* name() const override { return "single"; }

 private:
  std::uint32_t subflow_id_;
};

}  // namespace mps
