// The default MPTCP path scheduler: among subflows with free CWND space,
// pick the one with the smallest RTT estimate (mptcp.org `default`).
#pragma once

#include "core/scheduler_util.h"
#include "mptcp/scheduler.h"

namespace mps {

class MinRttScheduler final : public Scheduler {
 public:
  // Picks are recorded by Connection via note_scheduled(); nothing to
  // explain here beyond the choice itself.
  Subflow* pick(Connection& conn) override { return fastest_available(conn); }
  const char* name() const override { return "default"; }
};

}  // namespace mps
