// Micro-benchmarks (google-benchmark): per-decision cost of each scheduler's
// pick() on a live mid-transfer connection, plus the simulator's raw event
// throughput. The kernel context for ECF is a per-packet decision, so its
// cost must stay within tens of nanoseconds of the default scheduler's.
#include <benchmark/benchmark.h>

#include "exp/testbed.h"
#include "sched/registry.h"

namespace mps {
namespace {

// A connection frozen mid-transfer: both subflows have RTT estimates and
// partially used windows, so every scheduler exercises its full logic.
struct MidTransferRig {
  explicit MidTransferRig(const std::string& sched) {
    TestbedConfig tb;
    tb.wifi = wifi_profile(Rate::mbps(0.7));
    tb.lte = lte_profile(Rate::mbps(8.6));
    bed = std::make_unique<Testbed>(tb);
    conn = bed->make_connection(scheduler_factory(sched));
    conn->send(6'000'000);
    bed->sim().run_until(TimePoint::origin() + Duration::seconds(2));
  }
  std::unique_ptr<Testbed> bed;
  std::unique_ptr<Connection> conn;
};

void BM_SchedulerPick(benchmark::State& state, const std::string& sched) {
  MidTransferRig rig(sched);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.conn->scheduler().pick(*rig.conn));
  }
}

BENCHMARK_CAPTURE(BM_SchedulerPick, default_sched, std::string("default"));
BENCHMARK_CAPTURE(BM_SchedulerPick, ecf, std::string("ecf"));
BENCHMARK_CAPTURE(BM_SchedulerPick, blest, std::string("blest"));
BENCHMARK_CAPTURE(BM_SchedulerPick, daps, std::string("daps"));
BENCHMARK_CAPTURE(BM_SchedulerPick, rr, std::string("rr"));

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    int counter = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.after(Duration::micros(i), [&counter] { ++counter; });
    }
    state.ResumeTiming();
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_EndToEndTransferSimulation(benchmark::State& state) {
  // Wall cost of simulating a full 1 MB two-path transfer.
  for (auto _ : state) {
    TestbedConfig tb;
    tb.wifi = wifi_profile(Rate::mbps(2));
    tb.lte = lte_profile(Rate::mbps(8));
    Testbed bed(tb);
    auto conn = bed.make_connection(scheduler_factory("ecf"));
    conn->send(1'000'000);
    bed.sim().run_until(TimePoint::origin() + Duration::seconds(30));
    benchmark::DoNotOptimize(conn->delivered_bytes());
  }
}
BENCHMARK(BM_EndToEndTransferSimulation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mps

BENCHMARK_MAIN();
