// Paper Figs. 11 and 12: WiFi and LTE CWND traces for each scheduler at
// 0.3 Mbps WiFi / 8.6 Mbps LTE. ECF must hold the LTE window high (few
// resets to the initial window) while the other schedulers collapse it
// repeatedly.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig11_12_cwnd_traces",
               "Figs. 11/12 — CWND traces, 0.3 Mbps WiFi / 8.6 Mbps LTE", scale_note());

  const auto& scheds = paper_schedulers();
  std::vector<StreamingResult> results;
  // One flight recorder per scheduler run: the CWND series now come from its
  // metrics registry, and the decision aggregates feed the report below.
  std::vector<std::unique_ptr<FlightRecorder>> recorders;
  for (const auto& s : scheds) {
    recorders.push_back(std::make_unique<FlightRecorder>());
    ScenarioSpec spec = streaming_spec(0.3, 8.6, s);
    spec.record.collect_traces = true;
    ScenarioRunOptions opts;
    opts.recorder = recorders.back().get();
    results.push_back(run_streaming(spec, opts));
  }

  const TimePoint from = TimePoint::origin();
  const TimePoint to = TimePoint::origin() + bench_scale().video;
  const Duration bucket = bench_scale().video / 30;

  {
    std::vector<std::pair<std::string, const TimeSeries*>> series;
    for (std::size_t i = 0; i < scheds.size(); ++i) {
      series.emplace_back(scheds[i], &results[i].cwnd_wifi);
    }
    print_trace(std::cout, "Fig. 11 — WiFi CWND (segments, bucket means)", series, bucket, from,
                to);
  }
  {
    std::vector<std::pair<std::string, const TimeSeries*>> series;
    for (std::size_t i = 0; i < scheds.size(); ++i) {
      series.emplace_back(scheds[i], &results[i].cwnd_lte);
    }
    print_trace(std::cout, "Fig. 12 — LTE CWND (segments, bucket means)", series, bucket, from,
                to);
  }

  std::printf("\nLTE CWND time-means: ");
  for (std::size_t i = 0; i < scheds.size(); ++i) {
    std::printf("%s=%.1f ", scheds[i].c_str(), results[i].cwnd_lte.time_mean(from, to));
  }
  std::printf("\npaper shape: ecf highest LTE utilization, then blest, daps, default\n");
  std::fflush(stdout);

  for (std::size_t i = 0; i < scheds.size(); ++i) {
    print_recorder_summary(std::cout, scheds[i], *recorders[i]);
  }
  std::cout.flush();
  return 0;
}
