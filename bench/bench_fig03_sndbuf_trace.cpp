// Paper Fig. 3: per-subflow send-buffer occupancy (including in-flight
// packets) over time for 0.3 Mbps WiFi + 8.6 Mbps LTE under the default
// scheduler. The LTE buffer must drain quickly each chunk while WiFi stays
// occupied, exposing the pauses the paper describes.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig03_sndbuf_trace",
               "Fig. 3 — send buffer occupancy, 0.3 Mbps WiFi / 8.6 Mbps LTE", scale_note());

  ScenarioSpec spec = streaming_spec(0.3, 8.6, "default");
  spec.record.collect_traces = true;
  const auto r = run_streaming(spec);

  // The paper shows a 20 s steady-state window; print the same length from
  // mid-run in KB.
  const TimePoint from = TimePoint::origin() + bench_scale().video / 3;
  const TimePoint to = from + Duration::seconds(20);
  TimeSeries wifi_kb, lte_kb;
  for (const auto& pt : r.sndbuf_wifi.points()) wifi_kb.add(pt.t, pt.value / 1024.0);
  for (const auto& pt : r.sndbuf_lte.points()) lte_kb.add(pt.t, pt.value / 1024.0);
  print_trace(std::cout, "sndbuf occupancy (KB)", {{"wifi", &wifi_kb}, {"lte", &lte_kb}},
              Duration::millis(500), from, to);

  std::printf("\npeak occupancy: wifi %.1f KB, lte %.1f KB\n", wifi_kb.max_value(),
              lte_kb.max_value());
  return 0;
}
