// Paper Fig. 15: four subflows (two per interface), 0.3 Mbps WiFi with LTE
// swept over the grid: measured/ideal bit-rate ratio for default vs ECF.
// ECF must mitigate the degradation with more subflows too.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig15_four_subflows",
               "Fig. 15 — 4 subflows (2 per interface), default vs ECF", scale_note());

  const auto& grid = paper_bandwidth_grid();
  std::vector<std::vector<double>> ratio(2, std::vector<double>(grid.size()));
  const char* scheds[2] = {"ecf", "default"};  // rows: ECF on top as in the figure

  for (int s = 0; s < 2; ++s) {
    for (std::size_t l = 0; l < grid.size(); ++l) {
      ScenarioSpec spec = streaming_spec(0.3, grid[l], scheds[s]);
      spec.subflows_per_path = 2;
      const auto r = run_scenario(spec).streaming;
      ratio[s][l] = r.mean_bitrate_mbps / ideal_bitrate_mbps(0.3, grid[l]);
    }
  }

  print_heatmap(std::cout, "Ratio of measured vs ideal bit rate (0.3 Mbps WiFi, 4 subflows)",
                "scheduler", "LTE (Mbps)", {"Default", "ECF"}, grid_labels(),
                [&](std::size_t row, std::size_t col) {
                  // row 0 -> Default (bottom), row 1 -> ECF (top).
                  return row == 0 ? ratio[1][col] : ratio[0][col];
                });

  double mean_def = 0, mean_ecf = 0;
  for (std::size_t l = 0; l < grid.size(); ++l) {
    mean_ecf += ratio[0][l];
    mean_def += ratio[1][l];
  }
  std::printf("\nrow means: ecf %.3f, default %.3f (paper: ecf mitigates degradation)\n",
              mean_ecf / grid.size(), mean_def / grid.size());
  return 0;
}
