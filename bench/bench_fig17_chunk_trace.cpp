// Paper Fig. 17: per-chunk download throughput trace for one random
// bandwidth scenario, default vs ECF. ECF must match or beat the default on
// (nearly) every chunk, with up to ~2x gains during heterogeneous phases.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig17_chunk_trace",
               "Fig. 17 — per-chunk throughput, random bandwidth scenario", scale_note());

  const std::vector<Rate> levels = {Rate::mbps(0.3), Rate::mbps(1.1), Rate::mbps(1.7),
                                    Rate::mbps(4.2), Rate::mbps(8.6)};
  const Duration run_len = bench_scale().random_run;
  // "Scenario 6" of the fig16 seeding.
  Rng rng(1000 + 5);
  Rng wifi_rng = rng.fork();
  Rng lte_rng = rng.fork();
  const auto wifi_trace =
      make_random_bandwidth_trace(wifi_rng, levels, Duration::seconds(40), run_len);
  const auto lte_trace =
      make_random_bandwidth_trace(lte_rng, levels, Duration::seconds(40), run_len);

  StreamingResult results[2];
  const char* scheds[2] = {"default", "ecf"};
  for (int s = 0; s < 2; ++s) {
    StreamingParams p;
    p.wifi_mbps = wifi_trace.front().rate.to_mbps();
    p.lte_mbps = lte_trace.front().rate.to_mbps();
    p.wifi_trace = wifi_trace;
    p.lte_trace = lte_trace;
    p.scheduler = scheds[s];
    p.video = run_len;
    p.seed = 77 + 5;
    results[s] = run_streaming(p);
  }

  std::printf("\n%10s %14s %14s\n", "chunk", "default", "ecf");
  const std::size_t n =
      std::min(results[0].chunks.size(), results[1].chunks.size());
  double best_gain = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%10zu %14.2f %14.2f\n", i, results[0].chunks[i].throughput_mbps,
                results[1].chunks[i].throughput_mbps);
    if (results[0].chunks[i].throughput_mbps > 0.1) {
      best_gain = std::max(best_gain, results[1].chunks[i].throughput_mbps /
                                          results[0].chunks[i].throughput_mbps);
    }
  }
  std::printf("\nbest per-chunk ECF/default gain: %.2fx (paper: up to ~2x)\n", best_gain);
  return 0;
}
