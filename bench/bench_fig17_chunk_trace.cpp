// Paper Fig. 17: per-chunk download throughput trace for one random
// bandwidth scenario, default vs ECF. ECF must match or beat the default on
// (nearly) every chunk, with up to ~2x gains during heterogeneous phases.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig17_chunk_trace",
               "Fig. 17 — per-chunk throughput, random bandwidth scenario", scale_note());

  const std::vector<double> levels = {0.3, 1.1, 1.7, 4.2, 8.6};
  const Duration run_len = bench_scale().random_run;

  StreamingResult results[2];
  const char* scheds[2] = {"default", "ecf"};
  for (int s = 0; s < 2; ++s) {
    // "Scenario 6" of the fig16 seeding; the builder re-derives the same
    // bandwidth traces from trace_seed for both schedulers.
    ScenarioSpec spec = streaming_spec(8.6, 8.6, scheds[s]);
    for (PathSpec& path : spec.paths) {
      path.variation.kind = VariationKind::kRandom;
      path.variation.levels_mbps = levels;
      path.variation.mean_interval_s = 40.0;
    }
    spec.workload.video_s = run_len.to_seconds();
    spec.seed = 77 + 5;
    spec.trace_seed = 1000 + 5;
    results[s] = run_streaming(spec);
  }

  std::printf("\n%10s %14s %14s\n", "chunk", "default", "ecf");
  const std::size_t n =
      std::min(results[0].chunks.size(), results[1].chunks.size());
  double best_gain = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%10zu %14.2f %14.2f\n", i, results[0].chunks[i].throughput_mbps,
                results[1].chunks[i].throughput_mbps);
    if (results[0].chunks[i].throughput_mbps > 0.1) {
      best_gain = std::max(best_gain, results[1].chunks[i].throughput_mbps /
                                          results[0].chunks[i].throughput_mbps);
    }
  }
  std::printf("\nbest per-chunk ECF/default gain: %.2fx (paper: up to ~2x)\n", best_gain);
  return 0;
}
