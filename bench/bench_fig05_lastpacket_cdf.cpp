// Paper Fig. 5: CDF of the time difference between the last packets
// delivered over WiFi and LTE per chunk download, default scheduler, for
// {0.3, 0.7, 1.1, 4.2} Mbps WiFi vs 8.6 Mbps LTE. More heterogeneity must
// shift the CDF right.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig05_lastpacket_cdf",
               "Fig. 5 — time difference between last packets (default)", scale_note());

  const std::vector<double> wifi_rates = {0.3, 0.7, 1.1, 4.2};
  const CellConfig cell;
  const auto results = sweep_map<StreamingResult>(wifi_rates.size(), [&](std::size_t i) {
    return run_streaming_cell(wifi_rates[i], 8.6, "default", cell);
  });
  std::vector<std::pair<std::string, const Samples*>> series;
  for (std::size_t i = 0; i < wifi_rates.size(); ++i) {
    series.emplace_back(pair_label(wifi_rates[i], 8.6) + "Mbps", &results[i].last_packet_gap);
  }

  print_distribution(std::cout, "Time difference between last packets (s)", "diff(s)", series,
                     /*ccdf=*/false, make_x_grid(series, 12));

  std::printf("\nmedians: ");
  for (std::size_t i = 0; i < wifi_rates.size(); ++i) {
    std::printf("%s=%.3fs ", pair_label(wifi_rates[i], 8.6).c_str(),
                results[i].last_packet_gap.quantile(0.5));
  }
  std::printf("(paper: increases with heterogeneity)\n");
  return 0;
}
