// Performance microbench: the repo's perf trajectory anchor.
//
// Two measurements, written to BENCH_speed.json (path overridable as
// argv[1]) so successive PRs can compare:
//
//  * kernel: events/sec through the EventQueue under the stack's dominant
//    churn pattern (every pop schedules a near-future replacement and
//    restarts a far-future RTO-style timer via cancel+reschedule). Run both
//    on the current queue and on a replica of the seed's queue
//    (std::function storage, pending-id hash set, lazy tombstone cancel) so
//    the speedup is measured, not asserted.
//  * grid: wall-clock for the Fig. 9 reference sweep (6x6 bandwidth grid x
//    4 schedulers) at jobs = 1, 4, and MPS_BENCH_JOBS (default: hardware
//    concurrency), deduplicated, in one invocation — each run carries the
//    SweepRunner's per-worker busy/wait/idle telemetry so the grid speedup
//    (or its absence) is explained, not just reported.
//  * prefix_dedupe: wall-clock for a what-if scheduler grid (one prefix,
//    four divergent suffixes; exp/snapshot.h) with the shared prefix
//    simulated once and forked vs every branch run from scratch. Both modes
//    are byte-identical by construction; this cell measures the speedup the
//    snapshot-and-fork machinery buys.
//
// With --prof-out FILE, additionally writes a ProfileReport
// (exp/prof_report.h) carrying the profiler scope/memory tables (populated
// under -DMPS_PROF=ON) and the final grid run's worker telemetry.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <unordered_set>

#include "bench/common.h"
#include "exp/prof_report.h"
#include "exp/snapshot.h"
#include "obs/prof.h"
#include "scenario/json.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace mps::bench {
namespace {

// ---- seed-replica queue ----------------------------------------------------
// Copy of the pre-overhaul EventQueue (heap of full entries, pending-id
// unordered_set, cancelled entries dropped lazily at the root only).
class LegacyEventQueue {
 public:
  EventId schedule(TimePoint when, std::function<void()> fn) {
    const EventId id = next_id_++;
    heap_.push_back(Entry{when, next_seq_++, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    pending_.insert(id);
    return id;
  }

  void cancel(EventId id) { pending_.erase(id); }

  bool empty() const { return pending_.empty(); }

  struct Fired {
    TimePoint when;
    std::function<void()> fn;
  };
  Fired pop() {
    drop_dead_top();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    pending_.erase(e.id);
    return Fired{e.when, std::move(e.fn)};
  }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_dead_top() {
    while (!heap_.empty() && !pending_.contains(heap_.front().id)) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
};

// ---- kernel churn ----------------------------------------------------------

constexpr std::size_t kLiveTransmissions = 1024;
constexpr std::size_t kLiveTimers = 256;
constexpr std::uint64_t kChurnPops = 1'000'000;

// Keeps the churn payload observable so the loop can't be optimized away.
volatile std::uint64_t g_churn_sink = 0;

// Each pop: fire, schedule a near-future replacement (a link transmission),
// and restart one far-future timer (the per-ACK RTO pattern). Capture three
// words, the typical closure size across the stack.
template <typename Queue>
double churn_events_per_sec() {
  Queue q;
  std::uint64_t sink = 0;
  std::uint64_t now_ns = 0;
  std::uint64_t ticks = 0;
  Rng rng(42);
  auto payload = [&sink, &now_ns, &ticks] { sink += now_ns + ++ticks; };

  std::vector<EventId> timer_ids(kLiveTimers);
  for (std::size_t i = 0; i < kLiveTransmissions; ++i) {
    q.schedule(TimePoint::from_ns(static_cast<std::int64_t>(1 + rng.uniform_int(1'000'000))),
               payload);
  }
  for (std::size_t i = 0; i < kLiveTimers; ++i) {
    timer_ids[i] = q.schedule(
        TimePoint::from_ns(static_cast<std::int64_t>(200'000'000 + rng.uniform_int(1'000'000))),
        payload);
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t pops = 0; pops < kChurnPops; ++pops) {
    auto fired = q.pop();
    now_ns = static_cast<std::uint64_t>(fired.when.ns());
    fired.fn();
    // Replacement transmission, 50us..1ms out.
    q.schedule(
        TimePoint::from_ns(static_cast<std::int64_t>(now_ns + 50'000 + rng.uniform_int(950'000))),
        payload);
    // RTO restart: cancel + reschedule 200ms out.
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(kLiveTimers));
    q.cancel(timer_ids[k]);
    timer_ids[k] = q.schedule(
        TimePoint::from_ns(static_cast<std::int64_t>(now_ns + 200'000'000)), payload);
  }
  const auto stop = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(stop - start).count();
  g_churn_sink = sink;
  // Reported as pops/sec so the number maps directly to Simulator events/sec
  // (each pop also carries one schedule and one cancel+reschedule).
  return static_cast<double>(kChurnPops) / secs;
}

// ---- reference grid --------------------------------------------------------

struct GridRun {
  int jobs = 0;
  double seconds = 0.0;
  SweepTelemetry telemetry;
};

GridRun grid_sweep(int jobs, const CellConfig& cell) {
  const auto& grid = paper_bandwidth_grid();
  const auto& scheds = paper_schedulers();
  const std::size_t n = grid.size();
  const std::size_t cells = scheds.size() * n * n;
  const auto start = std::chrono::steady_clock::now();
  SweepRunner runner(SweepOptions{jobs});
  std::vector<double> out(cells);
  runner.run(cells, [&](std::size_t i) {
    const std::size_t s = i / (n * n);
    const std::size_t w = (i % (n * n)) / n;
    const std::size_t l = i % n;
    out[i] = run_streaming_cell(grid[w], grid[l], scheds[s], cell).mean_bitrate_mbps;
  });
  const auto stop = std::chrono::steady_clock::now();
  GridRun r;
  r.jobs = jobs;
  r.seconds = std::chrono::duration<double>(stop - start).count();
  r.telemetry = runner.telemetry();
  return r;
}

// ---- prefix-dedupe what-if grid --------------------------------------------

struct WhatIfRun {
  double seconds = 0.0;
  std::vector<ScenarioOutcome> outcomes;
};

// Serial (jobs=1) on purpose: the cell measures the algorithmic win of
// sharing the prefix, not thread-pool scaling (the grid runs above cover
// that).
WhatIfRun whatif_sweep(const ScenarioSpec& spec, const std::vector<std::string>& scheds,
                       double switch_at_s, bool share_prefix) {
  const auto start = std::chrono::steady_clock::now();
  WhatIfRun r;
  r.outcomes = run_whatif_grid(spec, scheds, switch_at_s, share_prefix, {}, SweepOptions{1});
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return r;
}

Json telemetry_to_json(const SweepTelemetry& t) {
  Json j = Json::object();
  j.set("wall_ns", Json::number(static_cast<std::int64_t>(t.wall_ns)));
  Json per = Json::array();
  for (const WorkerStats& w : t.workers) {
    Json e = Json::object();
    e.set("busy_ns", Json::number(static_cast<std::int64_t>(w.busy_ns)));
    e.set("wait_ns", Json::number(static_cast<std::int64_t>(w.wait_ns)));
    e.set("idle_ns", Json::number(static_cast<std::int64_t>(w.idle_ns)));
    e.set("cells", Json::number(static_cast<std::int64_t>(w.cells)));
    per.push_back(std::move(e));
  }
  j.set("per_worker", per);
  return j;
}

}  // namespace
}  // namespace mps::bench

int main(int argc, char** argv) {
  using namespace mps;
  using namespace mps::bench;

  const auto wall_start = std::chrono::steady_clock::now();
  const char* out_path = "BENCH_speed.json";
  std::string prof_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--prof-out" && i + 1 < argc) {
      prof_out = argv[++i];
    } else {
      out_path = argv[i];
    }
  }
  print_header(std::cout, "bench_speed",
               "perf microbench — kernel events/sec + Fig. 9 grid cells/sec", scale_note());

  std::printf("\nkernel churn (%llu pops, %zu live transmissions, %zu timers):\n",
              static_cast<unsigned long long>(kChurnPops), kLiveTransmissions, kLiveTimers);
  const double seed_eps = churn_events_per_sec<LegacyEventQueue>();
  const double eps = churn_events_per_sec<EventQueue>();
  std::printf("  seed queue      %12.0f events/s\n", seed_eps);
  std::printf("  current queue   %12.0f events/s  (%.2fx)\n", eps, eps / seed_eps);

  const CellConfig cell;  // current MPS_BENCH_SCALE, resolved once
  const auto& grid = paper_bandwidth_grid();
  const int cells = static_cast<int>(paper_schedulers().size() * grid.size() * grid.size());
  const int hw_jobs = sweep_jobs();

  // jobs = 1, 4, hw in one invocation (deduplicated, order kept) so the
  // speedup curve and its worker telemetry land in a single file.
  std::vector<int> deduped;
  for (int j : {1, 4, hw_jobs}) {
    if (std::find(deduped.begin(), deduped.end(), j) == deduped.end()) deduped.push_back(j);
  }

  std::printf("\nFig. 9 reference grid (%d cells, hw=%d):\n", cells, hw_jobs);
  std::vector<GridRun> runs;
  for (int j : deduped) runs.push_back(grid_sweep(j, cell));
  const double serial_s = runs.front().seconds;
  for (const GridRun& r : runs) {
    std::uint64_t busy_ns = 0;
    for (const WorkerStats& w : r.telemetry.workers) busy_ns += w.busy_ns;
    const double util = r.telemetry.wall_ns > 0
                            ? static_cast<double>(busy_ns) /
                                  (static_cast<double>(r.telemetry.wall_ns) *
                                   static_cast<double>(r.telemetry.workers.size()))
                            : 0.0;
    std::printf("  %2d job(s)       %8.2f s  (%.1f cells/s, %.2fx, worker busy %.0f%%)\n",
                r.jobs, r.seconds, cells / r.seconds, serial_s / r.seconds, util * 100.0);
  }

  // What-if scheduler grid: all four schedulers diverge from one minrtt
  // prefix at 75% of the video, so the shared-prefix mode simulates ~3/4 of
  // the work once instead of four times.
  const std::vector<std::string> whatif_scheds = {"minrtt", "ecf", "blest", "daps"};
  const double video_s = cell.scale.video.to_seconds();
  const double switch_at_s = 0.75 * video_s;
  const ScenarioSpec whatif_spec = streaming_spec(2.0, 8.0, "minrtt", cell);
  std::printf(
      "\nprefix-dedupe what-if grid (%zu schedulers, switch at %.0f of %.0f s, %d rep(s)):\n",
      whatif_scheds.size(), switch_at_s, video_s, whatif_spec.workload.runs);
  const WhatIfRun scratch = whatif_sweep(whatif_spec, whatif_scheds, switch_at_s, false);
  const WhatIfRun shared = whatif_sweep(whatif_spec, whatif_scheds, switch_at_s, true);
  bool whatif_identical = scratch.outcomes.size() == shared.outcomes.size();
  for (std::size_t i = 0; whatif_identical && i < scratch.outcomes.size(); ++i) {
    whatif_identical = format_outcome(whatif_spec, scratch.outcomes[i]) ==
                       format_outcome(whatif_spec, shared.outcomes[i]);
  }
  std::printf("  scratch         %8.2f s\n", scratch.seconds);
  std::printf("  shared prefix   %8.2f s  (%.2fx, outcomes %s)\n", shared.seconds,
              scratch.seconds / shared.seconds, whatif_identical ? "identical" : "MISMATCH");

  Json doc = Json::object();
  doc.set("bench", Json::string("bench_speed"));
  doc.set("scale", Json::string(bench_scale().name));
  Json kernel = Json::object();
  kernel.set("pops", Json::number(static_cast<std::int64_t>(kChurnPops)));
  kernel.set("live_transmissions", Json::number(static_cast<std::int64_t>(kLiveTransmissions)));
  kernel.set("live_timers", Json::number(static_cast<std::int64_t>(kLiveTimers)));
  kernel.set("events_per_sec", Json::number(eps));
  kernel.set("seed_events_per_sec", Json::number(seed_eps));
  kernel.set("speedup_vs_seed", Json::number(eps / seed_eps));
  doc.set("kernel", kernel);

  Json grid_doc = Json::object();
  grid_doc.set("cells", Json::number(static_cast<std::int64_t>(cells)));
  grid_doc.set("hw_jobs", Json::number(static_cast<std::int64_t>(hw_jobs)));
  Json runs_doc = Json::array();
  for (const GridRun& r : runs) {
    Json e = Json::object();
    e.set("jobs", Json::number(static_cast<std::int64_t>(r.jobs)));
    e.set("seconds", Json::number(r.seconds));
    e.set("cells_per_sec", Json::number(cells / r.seconds));
    e.set("speedup_vs_serial", Json::number(serial_s / r.seconds));
    e.set("workers", telemetry_to_json(r.telemetry));
    runs_doc.push_back(std::move(e));
  }
  grid_doc.set("runs", runs_doc);
  // Trajectory anchor: serial time and the final (hw-jobs) run's speedup keep
  // their old names so PR-over-PR comparisons still line up.
  grid_doc.set("serial_s", Json::number(serial_s));
  grid_doc.set("parallel_s", Json::number(runs.back().seconds));
  grid_doc.set("jobs", Json::number(static_cast<std::int64_t>(runs.back().jobs)));
  grid_doc.set("speedup", Json::number(serial_s / runs.back().seconds));
  doc.set("grid", grid_doc);

  Json dedupe = Json::object();
  Json scheds_doc = Json::array();
  for (const std::string& s : whatif_scheds) scheds_doc.push_back(Json::string(s));
  dedupe.set("schedulers", scheds_doc);
  dedupe.set("video_s", Json::number(video_s));
  dedupe.set("switch_at_s", Json::number(switch_at_s));
  dedupe.set("reps", Json::number(static_cast<std::int64_t>(whatif_spec.workload.runs)));
  dedupe.set("scratch_s", Json::number(scratch.seconds));
  dedupe.set("shared_s", Json::number(shared.seconds));
  dedupe.set("speedup", Json::number(scratch.seconds / shared.seconds));
  dedupe.set("outcomes_identical", Json::boolean(whatif_identical));
  doc.set("prefix_dedupe", dedupe);

  std::ofstream f(out_path);
  if (!f) {
    std::perror("bench_speed: open");
    return 1;
  }
  f << doc.dump(2) << "\n";
  f.close();
  std::printf("\nwrote %s\n", out_path);

  if (!prof_out.empty()) {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    ProfileReport report = build_profile_report(prof::snapshot(), wall_s);
    add_sweep_telemetry(report, runs.back().telemetry);
    std::ofstream pf(prof_out);
    if (!pf) {
      std::perror("bench_speed: open --prof-out");
      return 1;
    }
    pf << profile_report_to_json(report).dump(2) << "\n";
    std::printf("wrote %s\n", prof_out.c_str());
  }
  return 0;
}
