// Performance microbench: the repo's perf trajectory anchor.
//
// Two measurements, written to BENCH_speed.json (path overridable as
// argv[1]) so successive PRs can compare:
//
//  * kernel: events/sec through the EventQueue under the stack's dominant
//    churn pattern (every pop schedules a near-future replacement and
//    restarts a far-future RTO-style timer via cancel+reschedule). Run both
//    on the current queue and on a replica of the seed's queue
//    (std::function storage, pending-id hash set, lazy tombstone cancel) so
//    the speedup is measured, not asserted.
//  * grid: wall-clock for the Fig. 9 reference sweep (6x6 bandwidth grid x
//    4 schedulers) serially and with MPS_BENCH_JOBS workers (default:
//    hardware concurrency) through the SweepRunner.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <unordered_set>

#include "bench/common.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace mps::bench {
namespace {

// ---- seed-replica queue ----------------------------------------------------
// Copy of the pre-overhaul EventQueue (heap of full entries, pending-id
// unordered_set, cancelled entries dropped lazily at the root only).
class LegacyEventQueue {
 public:
  EventId schedule(TimePoint when, std::function<void()> fn) {
    const EventId id = next_id_++;
    heap_.push_back(Entry{when, next_seq_++, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    pending_.insert(id);
    return id;
  }

  void cancel(EventId id) { pending_.erase(id); }

  bool empty() const { return pending_.empty(); }

  struct Fired {
    TimePoint when;
    std::function<void()> fn;
  };
  Fired pop() {
    drop_dead_top();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    pending_.erase(e.id);
    return Fired{e.when, std::move(e.fn)};
  }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_dead_top() {
    while (!heap_.empty() && !pending_.contains(heap_.front().id)) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
};

// ---- kernel churn ----------------------------------------------------------

constexpr std::size_t kLiveTransmissions = 1024;
constexpr std::size_t kLiveTimers = 256;
constexpr std::uint64_t kChurnPops = 1'000'000;

// Keeps the churn payload observable so the loop can't be optimized away.
volatile std::uint64_t g_churn_sink = 0;

// Each pop: fire, schedule a near-future replacement (a link transmission),
// and restart one far-future timer (the per-ACK RTO pattern). Capture three
// words, the typical closure size across the stack.
template <typename Queue>
double churn_events_per_sec() {
  Queue q;
  std::uint64_t sink = 0;
  std::uint64_t now_ns = 0;
  std::uint64_t ticks = 0;
  Rng rng(42);
  auto payload = [&sink, &now_ns, &ticks] { sink += now_ns + ++ticks; };

  std::vector<EventId> timer_ids(kLiveTimers);
  for (std::size_t i = 0; i < kLiveTransmissions; ++i) {
    q.schedule(TimePoint::from_ns(static_cast<std::int64_t>(1 + rng.uniform_int(1'000'000))),
               payload);
  }
  for (std::size_t i = 0; i < kLiveTimers; ++i) {
    timer_ids[i] = q.schedule(
        TimePoint::from_ns(static_cast<std::int64_t>(200'000'000 + rng.uniform_int(1'000'000))),
        payload);
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t pops = 0; pops < kChurnPops; ++pops) {
    auto fired = q.pop();
    now_ns = static_cast<std::uint64_t>(fired.when.ns());
    fired.fn();
    // Replacement transmission, 50us..1ms out.
    q.schedule(
        TimePoint::from_ns(static_cast<std::int64_t>(now_ns + 50'000 + rng.uniform_int(950'000))),
        payload);
    // RTO restart: cancel + reschedule 200ms out.
    const std::size_t k = static_cast<std::size_t>(rng.uniform_int(kLiveTimers));
    q.cancel(timer_ids[k]);
    timer_ids[k] = q.schedule(
        TimePoint::from_ns(static_cast<std::int64_t>(now_ns + 200'000'000)), payload);
  }
  const auto stop = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(stop - start).count();
  g_churn_sink = sink;
  // Reported as pops/sec so the number maps directly to Simulator events/sec
  // (each pop also carries one schedule and one cancel+reschedule).
  return static_cast<double>(kChurnPops) / secs;
}

// ---- reference grid --------------------------------------------------------

double grid_sweep_seconds(int jobs, const CellConfig& cell) {
  const auto& grid = paper_bandwidth_grid();
  const auto& scheds = paper_schedulers();
  const std::size_t n = grid.size();
  const std::size_t cells = scheds.size() * n * n;
  const auto start = std::chrono::steady_clock::now();
  SweepRunner runner(SweepOptions{jobs});
  std::vector<double> out(cells);
  runner.run(cells, [&](std::size_t i) {
    const std::size_t s = i / (n * n);
    const std::size_t w = (i % (n * n)) / n;
    const std::size_t l = i % n;
    out[i] = run_streaming_cell(grid[w], grid[l], scheds[s], cell).mean_bitrate_mbps;
  });
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace
}  // namespace mps::bench

int main(int argc, char** argv) {
  using namespace mps;
  using namespace mps::bench;

  const char* out_path = argc > 1 ? argv[1] : "BENCH_speed.json";
  print_header(std::cout, "bench_speed",
               "perf microbench — kernel events/sec + Fig. 9 grid cells/sec", scale_note());

  std::printf("\nkernel churn (%llu pops, %zu live transmissions, %zu timers):\n",
              static_cast<unsigned long long>(kChurnPops), kLiveTransmissions, kLiveTimers);
  const double seed_eps = churn_events_per_sec<LegacyEventQueue>();
  const double eps = churn_events_per_sec<EventQueue>();
  std::printf("  seed queue      %12.0f events/s\n", seed_eps);
  std::printf("  current queue   %12.0f events/s  (%.2fx)\n", eps, eps / seed_eps);

  const CellConfig cell;  // current MPS_BENCH_SCALE, resolved once
  const auto& grid = paper_bandwidth_grid();
  const int cells = static_cast<int>(paper_schedulers().size() * grid.size() * grid.size());
  const int jobs = sweep_jobs();
  std::printf("\nFig. 9 reference grid (%d cells):\n", cells);
  const double serial_s = grid_sweep_seconds(1, cell);
  std::printf("  serial          %8.2f s  (%.1f cells/s)\n", serial_s, cells / serial_s);
  const double parallel_s = grid_sweep_seconds(jobs, cell);
  std::printf("  %2d job(s)       %8.2f s  (%.1f cells/s, %.2fx)\n", jobs, parallel_s,
              cells / parallel_s, serial_s / parallel_s);

  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("bench_speed: fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_speed\",\n"
               "  \"scale\": \"%s\",\n"
               "  \"kernel\": {\n"
               "    \"pops\": %llu,\n"
               "    \"live_transmissions\": %zu,\n"
               "    \"live_timers\": %zu,\n"
               "    \"events_per_sec\": %.0f,\n"
               "    \"seed_events_per_sec\": %.0f,\n"
               "    \"speedup_vs_seed\": %.3f\n"
               "  },\n"
               "  \"grid\": {\n"
               "    \"cells\": %d,\n"
               "    \"jobs\": %d,\n"
               "    \"serial_s\": %.3f,\n"
               "    \"parallel_s\": %.3f,\n"
               "    \"cells_per_sec_serial\": %.2f,\n"
               "    \"cells_per_sec_parallel\": %.2f,\n"
               "    \"speedup\": %.3f\n"
               "  }\n"
               "}\n",
               bench_scale().name.c_str(), static_cast<unsigned long long>(kChurnPops),
               kLiveTransmissions, kLiveTimers, eps, seed_eps, eps / seed_eps, cells, jobs,
               serial_s, parallel_s, cells / serial_s, cells / parallel_s, serial_s / parallel_s);
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
  return 0;
}
