// Paper Fig. 18: average wget completion time for 128 KB - 1 MB files with
// WiFi fixed at 1 Mbps and LTE swept 1..10 Mbps, all four schedulers. ECF
// must never lose to the default and win modestly for >= 256 KB under
// heterogeneity; DAPS is frequently worse.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig18_wget",
               "Fig. 18 — wget completion time, 1 Mbps WiFi, LTE 1..10 Mbps", scale_note());

  const std::vector<std::uint64_t> sizes_kb = {128, 256, 512, 1024};
  const auto& scheds = paper_schedulers();
  const int runs = bench_scale().wget_runs;

  // One flat sweep over size x LTE rate x scheduler (size-major).
  const std::size_t ns = scheds.size();
  const auto flat = sweep_map<double>(sizes_kb.size() * 10 * ns, [&](std::size_t i) {
    const std::uint64_t kb = sizes_kb[i / (10 * ns)];
    const int lte = static_cast<int>((i / ns) % 10) + 1;
    const ScenarioSpec spec = download_spec(1.0, lte, scheds[i % ns], kb * 1024,
                                            10 * static_cast<std::uint64_t>(lte), runs);
    return run_scenario(spec).download_completions.mean();
  });

  for (std::size_t k = 0; k < sizes_kb.size(); ++k) {
    const std::uint64_t kb = sizes_kb[k];
    std::vector<std::string> rows = int_labels(1, 10);
    std::vector<std::vector<double>> mean_s(rows.size(), std::vector<double>(scheds.size()));
    for (int lte = 1; lte <= 10; ++lte) {
      for (std::size_t s = 0; s < scheds.size(); ++s) {
        mean_s[static_cast<std::size_t>(lte - 1)][s] =
            flat[k * 10 * ns + static_cast<std::size_t>(lte - 1) * ns + s];
      }
    }
    print_grouped(std::cout,
                  "(" + std::to_string(kb) + " KB) avg completion time (s), WiFi 1 Mbps",
                  "LTE Mbps", rows,
                  {"Default", "ECF", "DAPS", "BLEST"},
                  [&](std::size_t g, std::size_t s) {
                    // paper_schedulers() order is default, ecf, daps, blest.
                    return mean_s[g][s];
                  });
  }
  std::printf("\npaper shape: ecf <= default everywhere; differences grow with size and\n"
              "heterogeneity; daps frequently worst\n");
  return 0;
}
