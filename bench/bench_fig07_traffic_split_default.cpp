// Paper Fig. 7: fraction of traffic the default scheduler places on the
// fast subflow during streaming, against the ideal bandwidth share, for all
// 36 WiFi-LTE pairs. The default must under-use the fast path when paths
// are heterogeneous.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig07_traffic_split_default",
               "Fig. 7 — fraction of traffic on fast subflow (default vs ideal)", scale_note());

  const auto& grid = paper_bandwidth_grid();
  const std::size_t n = grid.size();
  const CellConfig cell;
  const auto results = sweep_map<StreamingResult>(n * n, [&](std::size_t i) {
    return run_streaming_cell(grid[i / n], grid[i % n], "default", cell);
  });
  std::vector<std::string> pairs;
  std::vector<double> measured, ideal;
  double under_use = 0;
  int hetero_cells = 0;
  for (double w : grid) {
    for (double l : grid) {
      const auto& r = results[pairs.size()];
      pairs.push_back(pair_label(w, l));
      measured.push_back(r.fraction_fast);
      const double fast = std::max(w, l);
      const double slow = std::min(w, l);
      ideal.push_back(ideal_fast_fraction(fast, slow));
      if (fast / slow >= 4.0) {
        under_use += ideal.back() - measured.back();
        ++hetero_cells;
      }
    }
  }

  print_grouped(std::cout, "Fraction over fast subflow", "WiFi-LTE", pairs,
                {"default", "ideal"},
                [&](std::size_t g, std::size_t s) { return s == 0 ? measured[g] : ideal[g]; });

  std::printf("\nmean (ideal - measured) over strongly heterogeneous cells: %.3f (n=%d)\n",
              hetero_cells ? under_use / hetero_cells : 0.0, hetero_cells);
  return 0;
}
