// Paper Fig. 22: in-the-wild streaming — nine runs sorted by WiFi RTT (LTE
// steady around 70 ms), default vs ECF average throughput per run. The ECF
// gain must appear as WiFi RTT heterogeneity grows, with parity on the
// symmetric early runs (paper: 7.79 vs 6.72 Mbps overall, +16%).
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig22_wild_streaming",
               "Fig. 22 — in-the-wild streaming, 9 runs, default vs ECF", scale_note());

  const auto runs = wild_streaming_runs();
  std::printf("\n%6s %12s %12s %14s %14s %12s\n", "run", "wifi rtt", "lte rtt", "default Mbps",
              "ecf Mbps", "ecf gain");

  // One cell per profile x scheduler (profile-major, default then ECF); the
  // jitter traces are re-derived per cell from the profile's seed, identical
  // for both schedulers.
  const Duration video = bench_scale().video;
  const auto results = sweep_map<StreamingResult>(runs.size() * 2, [&](std::size_t i) {
    const auto& profile = runs[i / 2];
    const char* scheds[2] = {"default", "ecf"};
    // Unregulated real networks fluctuate: the spec carries the profile's
    // rate jitter, re-derived from trace_seed identically for both schedulers.
    ScenarioSpec spec = wild_spec(profile, scheds[i % 2], /*jitter=*/true);
    spec.workload.video_s = video.to_seconds();
    spec.seed = 500 + static_cast<std::uint64_t>(profile.run_index);
    spec.trace_seed = 9000 + static_cast<std::uint64_t>(profile.run_index);
    return run_streaming(spec);
  });

  double mean_def = 0, mean_ecf = 0;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const auto& profile = runs[r];
    const double tput[2] = {results[2 * r].mean_throughput_mbps,
                            results[2 * r + 1].mean_throughput_mbps};
    const double rtt_wifi_ms = results[2 * r].mean_rtt_wifi_ms;
    mean_def += tput[0];
    mean_ecf += tput[1];
    std::printf("%6d %10.0fms %10dms %14.2f %14.2f %11.0f%%\n", profile.run_index, rtt_wifi_ms,
                70, tput[0], tput[1], tput[0] > 0 ? (tput[1] / tput[0] - 1.0) * 100.0 : 0.0);
  }

  mean_def /= static_cast<double>(runs.size());
  mean_ecf /= static_cast<double>(runs.size());
  std::printf("\noverall: default %.2f Mbps, ecf %.2f Mbps, gain %.0f%% (paper: 6.72 vs 7.79, "
              "+16%%)\n",
              mean_def, mean_ecf, (mean_ecf / mean_def - 1.0) * 100.0);
  return 0;
}
