// Paper Fig. 13: CCDF of per-packet out-of-order delay under the default
// scheduler for {0.3, 0.7, 1.1, 4.2} Mbps WiFi vs 8.6 Mbps LTE. Delays must
// grow with heterogeneity.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_fig13_ooo_default",
               "Fig. 13 — out-of-order delay CCDF (default scheduler)", scale_note());

  const std::vector<double> wifi_rates = {0.3, 0.7, 1.1, 4.2};
  const CellConfig cell;
  const auto results = sweep_map<StreamingResult>(wifi_rates.size(), [&](std::size_t i) {
    return run_streaming_cell(wifi_rates[i], 8.6, "default", cell);
  });

  std::vector<std::pair<std::string, const Samples*>> series;
  for (std::size_t i = 0; i < wifi_rates.size(); ++i) {
    series.emplace_back(pair_label(wifi_rates[i], 8.6) + "Mbps", &results[i].ooo_delay);
  }
  print_distribution(std::cout, "Out-of-order delay (s)", "delay(s)", series, /*ccdf=*/true,
                     make_x_grid(series, 14));

  std::printf("\nmedians: ");
  for (std::size_t i = 0; i < wifi_rates.size(); ++i) {
    std::printf("%s=%.3fs ", pair_label(wifi_rates[i], 8.6).c_str(),
                results[i].ooo_delay.quantile(0.5));
  }
  std::printf("(paper: ~1 s median at 0.3-8.6, shrinking as paths homogenize)\n");
  return 0;
}
