// Ablation (beyond the paper's figures): congestion-controller choice.
// The paper reports "similar performance degradation regardless of the
// congestion controller (e.g., Olia)" for the default scheduler; this bench
// verifies that claim in our stack and shows ECF's gain is CC-agnostic.
#include "bench/common.h"

int main() {
  using namespace mps;
  using namespace mps::bench;

  print_header(std::cout, "bench_ablation_cc",
               "ablation — congestion controller (paper Section 3.1 claim)", scale_note());

  const std::pair<double, double> configs[2] = {{0.3, 8.6}, {4.2, 8.6}};
  const CcKind kinds[4] = {CcKind::kLia, CcKind::kOlia, CcKind::kReno, CcKind::kCubic};

  for (const auto& [wifi, lte] : configs) {
    std::printf("\n%.1f Mbps WiFi / %.1f Mbps LTE (bitrate ratio vs ideal %.2f Mbps)\n", wifi,
                lte, ideal_bitrate_mbps(wifi, lte));
    std::printf("%10s %12s %12s %14s\n", "cc", "default", "ecf", "ecf gain");
    for (CcKind cc : kinds) {
      ScenarioSpec spec = streaming_spec(wifi, lte, "default");
      spec.conn.cc = cc_kind_name(cc);
      const double def =
          run_streaming(spec).mean_bitrate_mbps / ideal_bitrate_mbps(wifi, lte);
      spec.scheduler = "ecf";
      const double ecf =
          run_streaming(spec).mean_bitrate_mbps / ideal_bitrate_mbps(wifi, lte);
      std::printf("%10s %12.3f %12.3f %13.0f%%\n", cc_kind_name(cc), def, ecf,
                  def > 0 ? (ecf / def - 1.0) * 100.0 : 0.0);
    }
  }
  std::printf("\nexpected: default degrades under heterogeneity for every controller;\n"
              "ecf's advantage persists across controllers (paper Section 3.1)\n");
  return 0;
}
